package apujoin

import (
	"context"

	"apujoin/internal/service"
)

// Pipeline describes a multi-way join over N ≥ 2 sources on the shared key
// attribute, executed as a chain of the engine's pairwise joins: the first
// two sources of the chosen order join first, and every later source
// probes the previous step's intermediate (a left-deep plan).
//
// By default intermediates are streamed: each step's matches are produced
// morsel-parallel directly into the next step's build input, their bytes
// reserved transiently against the engine's residency budget and freed as
// soon as the consumer step has built from them — at most one intermediate
// is resident at a time, and none is registered (no catalog statistics are
// built for it). Set Materialize to route intermediates through the
// catalog instead: registered, measured at ingest like any relation, and
// charged until the pipeline finishes. Results are bit-identical on both
// paths; only PipelineResult.PeakIntermediateBytes differs. A streamed
// intermediate the budget cannot hold does not fail the pipeline: the
// remaining chain spills — hybrid-hash partitioned through a simulated
// spill store, as many partitions resident as the budget allows — and
// completes with the same matches, reported by the PipelineResult's
// SpilledPartitions/SpillBytes/SpillNS/SpillDepth. The materialized path
// keeps the strict contract and fails with ErrNoSpace before the
// intermediate is allocated.
//
// Unless DeclaredOrder is set, a greedy cost-based orderer picks the
// cheapest left-deep order from the catalog's ingest-time skew and
// selectivity statistics; a pipeline with any Inline source has no
// statistics for the orderer and runs in declaration order. Mid-pipeline,
// a step whose observed matches deviate from the orderer's estimate by
// more than the estimate itself triggers a re-plan of the remaining steps
// (PipelineResult.Replans counts them). Neither ordering, re-planning nor
// spilling ever changes the final match count.
//
//	pr, err := eng.JoinPipeline(ctx, apujoin.Pipeline{Sources: []apujoin.Source{
//		apujoin.Ref("orders"), apujoin.Ref("lineitem"), apujoin.Ref("returns"),
//	}}, apujoin.WithAuto())
//	fmt.Println(pr.Final.Matches, pr.Order, pr.PeakIntermediateBytes)
type Pipeline struct {
	// Sources are the pipeline's inputs (Ref or Inline), N ≥ 2.
	Sources []Source
	// DeclaredOrder skips the cost-based orderer and joins the sources
	// exactly as declared.
	DeclaredOrder bool
	// Materialize forces every intermediate through the catalog (pinned and
	// charged, with ingest statistics, until the pipeline finishes) instead
	// of the default streamed hand-off. Results are identical; use it when
	// a consumer requires catalog-resident intermediates or to compare the
	// two paths' footprints.
	Materialize bool
}

// PipelineResult reports one executed pipeline: the chosen order, every
// pairwise step's full Result (and plan decision under WithAuto), the
// final Result whose Matches is the multi-way count, and the intermediate
// footprint. The result is bit-identical for any worker count and to
// executing the steps one at a time by hand in the same order.
type PipelineResult = service.PipelineResult

// PipelineStep is one executed pairwise step of a PipelineResult.
type PipelineStep = service.PipelineStep

// JoinPipeline executes a multi-way join pipeline on the engine. Options
// configure every pairwise step exactly as in Join; WithAuto plans each
// step through the engine's shared plan cache (catalog-resident inputs —
// named sources and materialized intermediates — plan from ingest-time
// statistics). JoinPipeline is synchronous and runs outside the service
// admission layer, like Join; apujoind's POST /v1/pipeline layers bounded
// admission on the same primitives.
//
// On a sharded engine (WithShards) the chosen order is global — computed
// once from the full-relation statistics — and each fixed hash partition
// then runs the whole chain independently before the deterministic
// per-step merge; every reported number, including PeakIntermediateBytes,
// is bit-identical for any shard count. Per-step Plan reports aggregate
// the per-partition planners' decisions (representative algo/scheme,
// predictions summed in partition order, CacheHit only when every planned
// partition hit). Sharded pipelines do not re-plan mid-query — the global
// order is part of the merge contract.
func (e *Engine) JoinPipeline(ctx context.Context, p Pipeline, opts ...JoinOption) (*PipelineResult, error) {
	cfg := applyJoinOptions(opts)
	spec := service.PipelineSpec{
		Opt:           cfg.opt,
		Auto:          cfg.auto,
		DeclaredOrder: p.DeclaredOrder,
		Materialized:  p.Materialize,
	}
	for _, src := range p.Sources {
		spec.Sources = append(spec.Sources, service.PipelineSource{Name: src.name, Rel: src.rel})
	}
	e.injectPool(&spec.Opt)
	return e.svc.RunPipeline(ctx, spec)
}
