package apujoin

import (
	"context"

	"apujoin/internal/service"
)

// Pipeline describes a multi-way join over N ≥ 2 sources on the shared key
// attribute, executed as a chain of the engine's pairwise joins: the first
// two sources of the chosen order join first, and every later source
// probes the materialized intermediate (a left-deep plan). Intermediates
// are materialized through the engine's catalog — measured at ingest like
// any registered relation and charged against the residency budget until
// the pipeline finishes.
//
// Unless DeclaredOrder is set, a greedy cost-based orderer picks the
// cheapest left-deep order from the catalog's ingest-time skew and
// selectivity statistics; a pipeline with any Inline source has no
// statistics for the orderer and runs in declaration order. Ordering never
// changes the final match count.
//
//	pr, err := eng.JoinPipeline(ctx, apujoin.Pipeline{Sources: []apujoin.Source{
//		apujoin.Ref("orders"), apujoin.Ref("lineitem"), apujoin.Ref("returns"),
//	}}, apujoin.WithAuto())
//	fmt.Println(pr.Final.Matches, pr.Order)
type Pipeline struct {
	// Sources are the pipeline's inputs (Ref or Inline), N ≥ 2.
	Sources []Source
	// DeclaredOrder skips the cost-based orderer and joins the sources
	// exactly as declared.
	DeclaredOrder bool
}

// PipelineResult reports one executed pipeline: the chosen order, every
// pairwise step's full Result (and plan decision under WithAuto), the
// final Result whose Matches is the multi-way count, and the intermediate
// footprint. The result is bit-identical for any worker count and to
// executing the steps one at a time by hand in the same order.
type PipelineResult = service.PipelineResult

// PipelineStep is one executed pairwise step of a PipelineResult.
type PipelineStep = service.PipelineStep

// JoinPipeline executes a multi-way join pipeline on the engine. Options
// configure every pairwise step exactly as in Join; WithAuto plans each
// step through the engine's shared plan cache (catalog-resident inputs —
// named sources and materialized intermediates — plan from ingest-time
// statistics). JoinPipeline is synchronous and runs outside the service
// admission layer, like Join; apujoind's POST /v1/pipeline layers bounded
// admission on the same primitives.
func (e *Engine) JoinPipeline(ctx context.Context, p Pipeline, opts ...JoinOption) (*PipelineResult, error) {
	cfg := applyJoinOptions(opts)
	spec := service.PipelineSpec{
		Opt:           cfg.opt,
		Auto:          cfg.auto,
		DeclaredOrder: p.DeclaredOrder,
	}
	for _, src := range p.Sources {
		spec.Sources = append(spec.Sources, service.PipelineSource{Name: src.name, Rel: src.rel})
	}
	e.injectPool(&spec.Opt)
	return e.svc.RunPipeline(ctx, spec)
}
