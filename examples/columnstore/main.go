// Columnstore: the workload the paper's introduction motivates — a
// foreign-key join between a dimension table and a fact table in a
// column-oriented main-memory database, where R and S are the (key, rid)
// columns extracted from wider relations.
//
// The example compares the co-processing schemes on the coupled
// architecture, reproducing the paper's headline: fine-grained pipelined
// co-processing (PL) beats CPU-only, GPU-only and conventional
// co-processing (DD).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"apujoin"
)

func main() {
	// Dimension table: 256K rows with unique keys. Fact table: 2M rows,
	// every row referencing a dimension key (FK selectivity 100%).
	dim := apujoin.Gen{N: 1 << 18, Seed: 7}.Build()
	fact := apujoin.Gen{N: 1 << 21, Seed: 8}.Probe(dim, 1.0)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\ttotal (ms)\tbuild\tprobe\tvs CPU-only")

	var cpuOnly float64
	run := func(name string, opt apujoin.Options) {
		res, err := apujoin.Join(dim, fact, opt)
		if err != nil {
			log.Fatal(err)
		}
		if cpuOnly == 0 {
			cpuOnly = res.TotalNS
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%+.0f%%\n", name,
			res.TotalNS/1e6, res.BuildNS/1e6, res.ProbeNS/1e6,
			100*(res.TotalNS-cpuOnly)/cpuOnly)
	}

	run("SHJ CPU-only", apujoin.Options{Algo: apujoin.SHJ, Scheme: apujoin.CPUOnly})
	run("SHJ GPU-only", apujoin.Options{Algo: apujoin.SHJ, Scheme: apujoin.GPUOnly})
	run("SHJ-DD", apujoin.Options{Algo: apujoin.SHJ, Scheme: apujoin.DD})
	run("SHJ-PL", apujoin.Options{Algo: apujoin.SHJ, Scheme: apujoin.PL})
	run("PHJ-PL", apujoin.Options{Algo: apujoin.PHJ, Scheme: apujoin.PL})
	w.Flush()

	fmt.Println("\nFine-grained PL keeps both devices busy and routes each step")
	fmt.Println("to the processor that executes it best (hash computation → GPU,")
	fmt.Println("key-list walks → CPU), the paper's central result.")
}
