// Parallel: the morsel-driven execution runtime. The simulated APU was
// always parallel; this example shows the *host* process joining in — the
// same 1M-tuple PHJ executed with 1 worker and with one worker per core,
// demonstrating the runtime's contract: wall-clock drops on multi-core
// hosts while the match count and every simulated time stay bit-identical,
// because the morsel and shard decomposition never depends on the worker
// count (see DESIGN.md).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"apujoin"
)

func main() {
	r := apujoin.Gen{N: 1 << 20, Seed: 1}.Build()
	s := apujoin.Gen{N: 1 << 20, Seed: 2}.Probe(r, 1.0)

	type outcome struct {
		workers int
		wall    time.Duration
		matches int64
		simNS   float64
	}
	var runs []outcome
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		opt := apujoin.Options{
			Algo:    apujoin.PHJ,
			Scheme:  apujoin.PL,
			Workers: workers,
		}
		start := time.Now()
		res, err := apujoin.Join(r, s, opt)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, outcome{workers, time.Since(start), res.Matches, res.TotalNS})
	}

	fmt.Printf("PHJ-PL, %d ⋈ %d tuples:\n", r.Len(), s.Len())
	for _, o := range runs {
		fmt.Printf("  workers=%-2d  wall %8v   matches %d   simulated %.2f ms\n",
			o.workers, o.wall.Round(time.Microsecond), o.matches, o.simNS/1e6)
	}

	a, b := runs[0], runs[len(runs)-1]
	if a.matches != b.matches || a.simNS != b.simNS {
		log.Fatalf("worker count changed results — this is a bug: %+v vs %+v", a, b)
	}
	if b.workers > 1 {
		fmt.Printf("\nspeedup %0.2fx on %d workers; results and simulated times identical.\n",
			float64(a.wall)/float64(b.wall), b.workers)
	} else {
		fmt.Println("\nsingle-core host: no speedup to show, but results are worker-independent.")
	}
}
