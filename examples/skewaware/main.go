// Skewaware: joins on skewed data, the case the simple hash join handles
// surprisingly well (Blanas et al., confirmed by the paper): the heavy
// key's rid list stays cache-resident, compensating latch contention.
//
// The example runs the uniform, low-skew (s=10) and high-skew (s=25)
// datasets with and without the workload-divergence grouping optimization
// (paper Sec. 3.3), which reorders probe tuples so GPU wavefronts perform
// homogeneous work.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"apujoin"
)

func main() {
	const n = 1 << 20

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tgrouping\tmatches\ttotal (ms)\tprobe (ms)")

	for _, dist := range []apujoin.Distribution{apujoin.Uniform, apujoin.LowSkew, apujoin.HighSkew} {
		r := apujoin.Gen{N: n, Dist: dist, Seed: 11}.Build()
		s := apujoin.Gen{N: n, Dist: dist, Seed: 12}.Probe(r, 0.5)
		for _, grouping := range []bool{false, true} {
			res, err := apujoin.Join(r, s, apujoin.Options{
				Algo:     apujoin.SHJ,
				Scheme:   apujoin.PL,
				Grouping: grouping,
				Groups:   32,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%v\t%v\t%d\t%.2f\t%.2f\n",
				dist, grouping, res.Matches, res.TotalNS/1e6, res.ProbeNS/1e6)
		}
	}
	w.Flush()

	fmt.Println("\nSkew multiplies matches (one heavy key joins s%×s% of both")
	fmt.Println("relations) yet per-tuple cost stays moderate: the heavy rid list")
	fmt.Println("is cache-resident. Grouping trims the GPU's wavefront divergence,")
	fmt.Println("the paper reports 5-10% end to end.")
}
