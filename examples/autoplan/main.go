// Autoplan: the adaptive planner in front of the join service. Queries
// are submitted with SubmitAuto — no algorithm, no scheme — and the
// planner fingerprints each workload (sizes, tuple widths, measured skew
// and selectivity buckets, device pair), builds the cheapest full plan on
// the first sighting of a shape (one pilot run, both algorithms, every
// applicable scheme) and serves every repeat of that shape from the plan
// cache, skipping the pilot and the ratio searches entirely. The example
// runs three distinct workload shapes, each several times (note different
// seeds — equivalent relations fingerprint identically), then prints what
// was chosen, the cache hit rate, and the cost model's
// predicted-vs-simulated error.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"apujoin/internal/core"
	"apujoin/internal/rel"
	"apujoin/internal/service"
)

type shape struct {
	name string
	nr   int
	ns   int
	dist rel.Distribution
	sel  float64
}

func main() {
	shapes := []shape{
		{"balanced 1Mi ⋈ 1Mi uniform", 1 << 20, 1 << 20, rel.Uniform, 1.0},
		{"small-build 16Ki ⋈ 256Ki high-skew", 1 << 14, 1 << 18, rel.HighSkew, 0.2},
		{"half-selective 128Ki ⋈ 128Ki low-skew", 1 << 17, 1 << 17, rel.LowSkew, 0.5},
	}
	const repeats = 3
	opt := core.Options{Delta: 0.1, PilotItems: 1 << 13}

	svc := service.New(service.Options{MaxConcurrent: 2})
	defer svc.Close()

	start := time.Now()
	for round := 0; round < repeats; round++ {
		for i, sh := range shapes {
			// A fresh seed every round: the data differs, the shape — and
			// therefore the fingerprint and the plan — does not.
			seed := int64(round*100 + i*10 + 1)
			r := rel.Gen{N: sh.nr, Dist: sh.dist, Seed: seed}.Build()
			s := rel.Gen{N: sh.ns, Dist: sh.dist, Seed: seed + 1}.Probe(r, sh.sel)

			q, err := svc.SubmitAuto(context.Background(), r, s, opt)
			if err != nil {
				log.Fatal(err)
			}
			res, err := q.Wait(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			info := q.Snapshot()
			cache := "miss — planned"
			if info.Plan.CacheHit {
				cache = "hit"
			}
			if round == 0 || round == repeats-1 {
				fmt.Printf("round %d  %-38s → %s-%-4s (cache %-13s) %8d matches, %7.2f ms simulated\n",
					round+1, sh.name, info.Plan.Algo, info.Plan.Scheme, cache,
					res.Matches, res.TotalNS/1e6)
			}
		}
		if round == 0 {
			fmt.Println("...")
		}
	}

	st := svc.Stats()
	fmt.Printf("\n%d auto-planned queries in %v: %d plan misses (one pilot each), %d cache hits\n",
		st.AutoPlanned, time.Since(start).Round(time.Millisecond), st.PlanMisses, st.PlanHits)
	fmt.Printf("cost model: %.2f ms predicted vs %.2f ms simulated — mean error %.1f%%\n",
		st.PlanPredictedNS/1e6, st.PlanSimulatedNS/1e6, st.MeanPlanErr()*100)
}
