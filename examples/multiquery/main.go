// Multiquery: the join service layer. A resident worker pool serves many
// concurrent queries — heterogeneous algorithms, schemes and datasets —
// through bounded admission, and the determinism contract survives the
// interleaving: every query's match count and simulated times are
// bit-identical to the same query run alone (see DESIGN.md). The example
// runs a small mixed workload twice, serially and fully interleaved, and
// verifies the results agree before printing the service metrics.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"apujoin/internal/core"
	"apujoin/internal/rel"
	"apujoin/internal/service"
)

type workload struct {
	name string
	opt  core.Options
	dist rel.Distribution
	seed int64
}

func main() {
	queries := []workload{
		{"PHJ-PL uniform", core.Options{Algo: core.PHJ, Scheme: core.PL}, rel.Uniform, 1},
		{"SHJ-PL uniform", core.Options{Algo: core.SHJ, Scheme: core.PL}, rel.Uniform, 2},
		{"PHJ-DD high-skew", core.Options{Algo: core.PHJ, Scheme: core.DD}, rel.HighSkew, 3},
		{"SHJ-OL low-skew", core.Options{Algo: core.SHJ, Scheme: core.OL}, rel.LowSkew, 4},
	}
	data := func(w workload) (rel.Relation, rel.Relation) {
		r := rel.Gen{N: 1 << 18, Dist: w.dist, Seed: w.seed}.Build()
		s := rel.Gen{N: 1 << 18, Dist: w.dist, Seed: w.seed + 100}.Probe(r, 1.0)
		return r, s
	}

	svc := service.New(service.Options{MaxConcurrent: len(queries)})
	defer svc.Close()

	// Round 1: one at a time through the service.
	serial := make([]*core.Result, len(queries))
	serialStart := time.Now()
	for i, wl := range queries {
		r, s := data(wl)
		q, err := svc.Submit(context.Background(), r, s, wl.opt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := q.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		serial[i] = res
	}
	serialWall := time.Since(serialStart)

	// Round 2: all in flight at once on the same pool.
	qs := make([]*service.Query, len(queries))
	interStart := time.Now()
	for i, wl := range queries {
		r, s := data(wl)
		q, err := svc.Submit(context.Background(), r, s, wl.opt)
		if err != nil {
			log.Fatal(err)
		}
		qs[i] = q
	}
	for i, q := range qs {
		res, err := q.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if res.Matches != serial[i].Matches || res.TotalNS != serial[i].TotalNS {
			log.Fatalf("%s: interleaving changed results — this is a bug", queries[i].name)
		}
	}
	interWall := time.Since(interStart)

	fmt.Printf("mixed workload, %d queries of 256Ki ⋈ 256Ki tuples:\n", len(queries))
	for i, wl := range queries {
		fmt.Printf("  %-18s matches %8d   simulated %7.2f ms\n",
			wl.name, serial[i].Matches, serial[i].TotalNS/1e6)
	}
	fmt.Printf("\nserial %v, interleaved %v — identical matches and simulated times.\n",
		serialWall.Round(time.Millisecond), interWall.Round(time.Millisecond))

	st := svc.Stats()
	fmt.Printf("service: %d workers, %d completed, %d total matches, %.2f ms simulated, %.2f ms host wall\n",
		st.Workers, st.Completed, st.Matches, st.SimulatedNS/1e6, float64(st.WallNS)/1e6)
}
