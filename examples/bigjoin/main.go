// Bigjoin: joining data larger than the zero-copy buffer (paper appendix,
// Fig. 19). The library treats the buffer as "main memory" and system
// memory as "external": inputs are radix-partitioned through the buffer in
// chunks, intermediate partitions are copied out and linked, and each
// partition pair is joined in-buffer.
//
// To keep the example fast, the buffer is scaled down so a 1M-tuple join
// plays the role of the paper's 16M boundary case.
package main

import (
	"fmt"
	"log"

	"apujoin"
	"apujoin/internal/mem"
)

func main() {
	const boundary = 1 << 19 // tuples that exactly fill the scaled buffer

	for _, scale := range []int{1, 2, 4} {
		n := boundary * scale
		r := apujoin.Gen{N: n, Seed: 21}.Build()
		s := apujoin.Gen{N: n, Seed: 22}.Probe(r, 1.0)

		zc := mem.NewZeroCopy()
		zc.Capacity = int64(boundary) * 32
		opt := apujoin.Options{Algo: apujoin.PHJ, Scheme: apujoin.PL, ZeroCopy: zc}

		if scale == 1 {
			res, err := apujoin.Join(r, s, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%2dx (%8d tuples): fits buffer, join %.2f ms, %d matches\n",
				scale, n, res.TotalNS/1e6, res.Matches)
			continue
		}

		res, err := apujoin.JoinExternal(r, s, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2dx (%8d tuples): %d pairs; partition %.2f ms, join %.2f ms, copy %.2f ms, total %.2f ms, %d matches\n",
			scale, n, res.Pairs, res.PartitionNS/1e6, res.JoinNS/1e6, res.DataCopyNS/1e6,
			res.TotalNS/1e6, res.Matches)
	}

	fmt.Println("\nPartition and join time grow linearly with the input — the")
	fmt.Println("scalability the paper reports for data beyond the buffer.")
}
