// Quickstart: start an Engine, register the relations once, and join them
// by handle. The example prints what the library reports — the exact match
// count, the simulated time breakdown on the coupled CPU-GPU device model,
// and the workload ratios the cost model picked for each fine-grained
// step.
package main

import (
	"context"
	"fmt"
	"log"

	"apujoin"
)

func main() {
	// The engine owns the resident worker pool, the plan cache and the
	// relation catalog; everything drains on Close.
	eng := apujoin.NewEngine()
	defer eng.Close()

	// 1M ⋈ 1M uniform tuples (the paper's default shape, scaled down),
	// registered once: generation and workload measurement happen at
	// ingest, and every later join references the resident data by name.
	if _, err := eng.Register("orders", apujoin.Gen{N: 1 << 20, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RegisterProbe("lineitem", "orders", apujoin.Gen{N: 1 << 20, Seed: 2}, 1.0); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Join(context.Background(),
		apujoin.Ref("orders"), apujoin.Ref("lineitem"),
		apujoin.WithAlgo(apujoin.PHJ),
		apujoin.WithScheme(apujoin.PL)) // fine-grained pipelined co-processing
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PHJ-PL joined orders ⋈ lineitem: %d matches\n", res.Matches)
	fmt.Printf("simulated time: %.2f ms (partition %.2f, build %.2f, probe %.2f)\n",
		res.TotalNS/1e6, res.PartitionNS/1e6, res.BuildNS/1e6, res.ProbeNS/1e6)
	fmt.Printf("cost model estimate: %.2f ms (lock overhead %.2f ms)\n",
		res.EstimatedNS/1e6, res.LockOverheadNS/1e6)

	fmt.Println("\nCPU workload ratios chosen by the cost model:")
	if len(res.Ratios.Partition) > 0 {
		fmt.Printf("  partition (n1..n3): %v\n", res.Ratios.Partition[0])
	}
	fmt.Printf("  build     (b1..b4): %v\n", res.Ratios.Build)
	fmt.Printf("  probe     (p1..p4): %v\n", res.Ratios.Probe)

	// Sanity: the join is real, not simulated — compare against a naive
	// map join over the same generated data.
	r := apujoin.Gen{N: 1 << 20, Seed: 1}.Build()
	s := apujoin.Gen{N: 1 << 20, Seed: 2}.Probe(r, 1.0)
	if want := apujoin.NaiveJoinCount(r, s); want != res.Matches {
		log.Fatalf("match count mismatch: %d vs naive %d", res.Matches, want)
	}
	fmt.Println("\nverified against naive join ✓")
}
