// Catalog: register data once, join by handle everywhere. One Engine
// holds a small star of relations; a mix of joins — explicit schemes,
// auto-planned, count-only — references them by name, none regenerating
// or re-measuring anything. The example then shows the refcounted drop:
// the name unbinds immediately while the bytes free when the last
// in-flight join finishes, and verifies the determinism contract by
// comparing a catalog-referenced join against the identical inline join.
package main

import (
	"context"
	"fmt"
	"log"

	"apujoin"
)

func main() {
	eng := apujoin.NewEngine()
	defer eng.Close()
	ctx := context.Background()

	// Ingest: one build relation and two probe relations against it with
	// different skew and selectivity. Workload statistics (skew bucket,
	// key sample, key index) are measured here, once.
	if _, err := eng.Register("orders", apujoin.Gen{N: 1 << 19, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RegisterProbe("lineitem", "orders", apujoin.Gen{N: 1 << 19, Seed: 2}, 1.0); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RegisterProbe("returns", "orders", apujoin.Gen{N: 1 << 18, Dist: apujoin.HighSkew, Seed: 3}, 0.3); err != nil {
		log.Fatal(err)
	}

	fmt.Println("catalog after ingest:")
	for _, info := range eng.Relations() {
		fmt.Printf("  %-9s %8d tuples  %9d bytes  %-9s skew-bucket %d\n",
			info.Name, info.Tuples, info.Bytes, info.Source, info.SkewBucket)
	}

	// Joins by handle: nothing regenerates, nothing re-measures.
	queries := []struct {
		name string
		s    string
		opts []apujoin.JoinOption
	}{
		{"PHJ-PL  orders ⋈ lineitem", "lineitem",
			[]apujoin.JoinOption{apujoin.WithAlgo(apujoin.PHJ), apujoin.WithScheme(apujoin.PL), apujoin.WithDelta(0.05)}},
		{"SHJ-DD  orders ⋈ returns ", "returns",
			[]apujoin.JoinOption{apujoin.WithScheme(apujoin.DD), apujoin.WithDelta(0.05)}},
		{"auto    orders ⋈ lineitem", "lineitem",
			[]apujoin.JoinOption{apujoin.WithAuto(), apujoin.WithDelta(0.05)}},
		{"auto    orders ⋈ lineitem (plan cached)", "lineitem",
			[]apujoin.JoinOption{apujoin.WithAuto(), apujoin.WithDelta(0.05)}},
	}
	fmt.Println("\njoins by handle:")
	for _, q := range queries {
		res, err := eng.Join(ctx, apujoin.Ref("orders"), apujoin.Ref(q.s), q.opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s → %8d matches, %7.2f ms simulated (%s-%s)\n",
			q.name, res.Matches, res.TotalNS/1e6, res.Algo, res.Scheme)
	}

	// Determinism contract: a catalog-referenced join is bit-identical to
	// the same join with inline relations.
	inlineR := apujoin.Gen{N: 1 << 19, Seed: 1}.Build()
	inlineS := apujoin.Gen{N: 1 << 19, Seed: 2}.Probe(inlineR, 1.0)
	opts := []apujoin.JoinOption{apujoin.WithAlgo(apujoin.PHJ), apujoin.WithScheme(apujoin.PL), apujoin.WithDelta(0.05)}
	byRef, err := eng.Join(ctx, apujoin.Ref("orders"), apujoin.Ref("lineitem"), opts...)
	if err != nil {
		log.Fatal(err)
	}
	inline, err := eng.Join(ctx, apujoin.Inline(inlineR), apujoin.Inline(inlineS), opts...)
	if err != nil {
		log.Fatal(err)
	}
	if byRef.Matches != inline.Matches || byRef.TotalNS != inline.TotalNS {
		log.Fatalf("catalog ref diverged from inline: %d/%.3f vs %d/%.3f",
			byRef.Matches, byRef.TotalNS, inline.Matches, inline.TotalNS)
	}
	fmt.Println("\ncatalog ref ≡ inline: bit-identical matches and simulated times ✓")

	// Refcounted drop: unbind the probes, then the build side.
	for _, name := range []string{"lineitem", "returns", "orders"} {
		if err := eng.Drop(name); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("dropped all relations; catalog now holds %d entries\n", len(eng.Relations()))
}
