// Pipeline: a multi-way join over registered relations, executed as a
// chain of pairwise joins with the intermediates streamed step to step
// (the default; Materialize forces them through the catalog instead).
// The example registers a small star — one build relation, a wide
// selectivity-1 probe and a narrow selective probe — declares the pipeline
// in the worst order on purpose, and shows the greedy cost-based orderer
// (fed by the catalog's ingest-time skew/selectivity statistics) picking a
// cheaper left-deep order, then verifies the determinism contracts: the
// same pipeline forced into declaration order produces the identical final
// match count at a higher simulated cost, and the materialized path
// produces bit-identical results at a higher peak resident footprint.
package main

import (
	"context"
	"fmt"
	"log"

	"apujoin"
)

func main() {
	eng := apujoin.NewEngine()
	defer eng.Close()
	ctx := context.Background()

	if _, err := eng.Register("orders", apujoin.Gen{N: 1 << 18, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RegisterProbe("lineitem", "orders", apujoin.Gen{N: 1 << 18, Dist: apujoin.LowSkew, Seed: 2}, 1.0); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.RegisterProbe("returns", "orders", apujoin.Gen{N: 1 << 16, Seed: 3}, 0.2); err != nil {
		log.Fatal(err)
	}

	// Declared worst-first: the selectivity-1 wide join leads. The orderer
	// reorders from statistics; each step still goes through the planner
	// (WithAuto) and the shared plan cache.
	pipe := apujoin.Pipeline{Sources: []apujoin.Source{
		apujoin.Ref("orders"), apujoin.Ref("lineitem"), apujoin.Ref("returns"),
	}}
	pr, err := eng.JoinPipeline(ctx, pipe, apujoin.WithAuto())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-based order %v (ordered=%v)\n", pr.Order, pr.Ordered)
	for i, st := range pr.Steps {
		fmt.Printf("  step %d: %-9s ⋈ %-9s %8d ⋈ %8d → %8d tuples  %8.3f ms  [%s-%s]\n",
			i+1, st.Build, st.Probe, st.BuildTuples, st.ProbeTuples, st.OutTuples,
			st.Result.TotalNS/1e6, st.Plan.Algo, st.Plan.Scheme)
	}
	fmt.Printf("final: %d matches, %.3f ms simulated; intermediates %d tuples / %d bytes, peak %d resident (streamed)\n\n",
		pr.Final.Matches, pr.TotalNS/1e6, pr.IntermediateTuples, pr.IntermediateBytes, pr.PeakIntermediateBytes)

	// Same pipeline, declaration order: identical final matches, more
	// expensive chain — ordering is a cost decision, never a result one.
	declared, err := eng.JoinPipeline(ctx, apujoin.Pipeline{Sources: pipe.Sources, DeclaredOrder: true},
		apujoin.WithAuto())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("declaration order %v: %d matches, %.3f ms simulated (%.2fx the ordered chain)\n",
		declared.Order, declared.Final.Matches, declared.TotalNS/1e6, declared.TotalNS/pr.TotalNS)
	if declared.Final.Matches != pr.Final.Matches {
		log.Fatal("BUG: join order changed the multi-way match count")
	}

	// Same pipeline again with the intermediates materialized through the
	// catalog: bit-identical results, larger peak resident footprint (every
	// intermediate pinned to pipeline end, plus its ingest statistics).
	mat, err := eng.JoinPipeline(ctx, apujoin.Pipeline{Sources: pipe.Sources, Materialize: true},
		apujoin.WithAuto())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized path: %d matches, peak %d resident bytes (%.2fx the streamed peak)\n",
		mat.Final.Matches, mat.PeakIntermediateBytes,
		float64(mat.PeakIntermediateBytes)/float64(pr.PeakIntermediateBytes))
	if mat.Final.Matches != pr.Final.Matches {
		log.Fatal("BUG: materialization changed the multi-way match count")
	}
}
