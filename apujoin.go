// Package apujoin is a library-level reproduction of "Revisiting
// Co-Processing for Hash Joins on the Coupled CPU-GPU Architecture"
// (He, Lu, He — VLDB 2013) in pure Go.
//
// The library implements the paper's simple and radix-partitioned hash
// joins decomposed into fine-grained per-tuple steps, the co-processing
// schemes that schedule those steps across a coupled CPU-GPU chip
// (off-loading, data dividing, pipelined execution, and the BasicUnit
// baseline), the cost model that picks the workload ratios, and every
// supporting substrate: a calibrated device model of the AMD A8-3870K APU,
// a shared-L2 cache model, the zero-copy buffer, an emulated PCI-e bus for
// discrete-architecture comparisons, and the software memory allocator.
//
// Joins execute for real — match counts are exact — while elapsed times
// are simulated by the device model, since this environment has no OpenCL
// runtime or APU silicon (see DESIGN.md for the substitution table).
//
// Quickstart — an Engine owns the resident worker pool, the plan cache
// and a relation catalog; data registers once and joins reference it by
// name:
//
//	eng := apujoin.NewEngine()
//	defer eng.Close()
//	eng.Register("orders", apujoin.Gen{N: 1 << 20, Seed: 1})
//	eng.RegisterProbe("lineitem", "orders", apujoin.Gen{N: 1 << 20, Seed: 2}, 1.0)
//	res, err := eng.Join(ctx, apujoin.Ref("orders"), apujoin.Ref("lineitem"),
//		apujoin.WithAlgo(apujoin.PHJ), apujoin.WithScheme(apujoin.PL))
//	fmt.Println(res.Matches, res.TotalNS)
//
// The package-level Join/JoinCtx/JoinExternal remain as thin shims over a
// process-wide default engine for the original inline calling convention.
package apujoin

import (
	"context"

	"apujoin/internal/core"
	"apujoin/internal/mem"
	"apujoin/internal/rel"
)

// Relation is a column-oriented relation of (RID, Key) int32 pairs.
type Relation = rel.Relation

// Gen generates the paper's synthetic datasets (uniform, low-skew s=10,
// high-skew s=25; probe selectivity control).
type Gen = rel.Gen

// Distribution selects the key distribution of generated data.
type Distribution = rel.Distribution

// Data distributions (paper Sec. 5.1).
const (
	Uniform  = rel.Uniform
	LowSkew  = rel.LowSkew
	HighSkew = rel.HighSkew
)

// ParseAlgo parses "shj" | "phj" (empty = SHJ).
func ParseAlgo(s string) (Algo, error) { return core.ParseAlgo(s) }

// ParseScheme parses "cpu" | "gpu" | "ol" | "dd" | "pl" | "basicunit" |
// "coarsepl" (empty = PL).
func ParseScheme(s string) (Scheme, error) { return core.ParseScheme(s) }

// ParseArch parses "coupled" | "discrete" (empty = Coupled).
func ParseArch(s string) (Arch, error) { return core.ParseArch(s) }

// ParseDistribution parses "uniform" | "low" | "high" (empty = Uniform).
func ParseDistribution(s string) (Distribution, error) { return rel.ParseDistribution(s) }

// Options configures a join run; the zero value is a coupled-architecture
// SHJ with the cost-model-tuned PL scheme disabled fields defaulted.
type Options = core.Options

// Result reports a join run: exact match count, simulated phase breakdown,
// chosen ratios, cost-model estimate and cache statistics.
type Result = core.Result

// Plan is a precomputed execution plan (algorithm, scheme, pilot profiles,
// optimized ratios, predicted time) for Options.Plan; a run with an
// injected plan skips its own pilot and ratio searches.
type Plan = core.Plan

// BuildPlan evaluates both join algorithms under every applicable
// co-processing scheme for the workload — one pilot run feeds the cost
// model's candidate searches — and returns the plan predicted cheapest.
// internal/plan caches these per workload fingerprint for the service
// layer's algo=auto path.
func BuildPlan(r, s Relation, opt Options) (*Plan, error) {
	return core.BuildPlan(r, s, opt)
}

// ExternalResult reports a join larger than the zero-copy buffer.
type ExternalResult = core.ExternalResult

// Algo selects the join algorithm; Scheme the co-processing scheme; Arch
// the architecture.
type (
	Algo   = core.Algo
	Scheme = core.Scheme
	Arch   = core.Arch
)

// Algorithms.
const (
	// SHJ is the simple (no partitioning) hash join.
	SHJ = core.SHJ
	// PHJ is the radix-partitioned hash join.
	PHJ = core.PHJ
)

// Co-processing schemes (paper Sec. 3.2 and appendix).
const (
	CPUOnly   = core.CPUOnly
	GPUOnly   = core.GPUOnly
	OL        = core.OL
	DD        = core.DD
	PL        = core.PL
	BasicUnit = core.BasicUnit
	CoarsePL  = core.CoarsePL
)

// Architectures.
const (
	// Coupled is the APU: shared memory and L2, no bus.
	Coupled = core.Coupled
	// Discrete emulates a discrete system with PCI-e transfers and
	// separate per-device hash tables.
	Discrete = core.Discrete
)

// ErrExceedsZeroCopy reports that the join does not fit the zero-copy
// buffer; use JoinExternal.
var ErrExceedsZeroCopy = core.ErrExceedsZeroCopy

// Join executes one hash join of R ⋈ S under the configured algorithm,
// co-processing scheme and architecture — a thin shim over the default
// engine with inline sources. When opt.Workers is zero and no pool is
// injected, the join runs on the default engine's resident workers
// (results are identical either way; only host wall-clock can differ).
func Join(r, s Relation, opt Options) (*Result, error) {
	return JoinCtx(context.Background(), r, s, opt)
}

// JoinCtx is Join with cancellation: a cancelled context aborts the join at
// the next step boundary. Join is re-entrant; any number of joins may run
// concurrently (see Engine and internal/service for the richer surfaces).
func JoinCtx(ctx context.Context, r, s Relation, opt Options) (*Result, error) {
	return Default().Join(ctx, Inline(r), Inline(s), WithOptions(opt))
}

// JoinExternal joins relations whose footprint exceeds the zero-copy
// buffer, partitioning through the buffer in chunks (paper appendix); a
// shim over the default engine, like Join.
func JoinExternal(r, s Relation, opt Options) (*ExternalResult, error) {
	return JoinExternalCtx(context.Background(), r, s, opt)
}

// JoinExternalCtx is JoinExternal with cancellation.
func JoinExternalCtx(ctx context.Context, r, s Relation, opt Options) (*ExternalResult, error) {
	return Default().JoinExternal(ctx, Inline(r), Inline(s), WithOptions(opt))
}

// NaiveJoinCount is the reference match count (map-based), useful to
// verify results in examples and tests.
func NaiveJoinCount(r, s Relation) int64 {
	return rel.NaiveJoinCount(r, s)
}

// ZeroCopyBuffer returns a zero-copy buffer tracker of the given capacity
// in bytes for Options.ZeroCopy; capacity ≤ 0 yields the A8-3870K's
// 512 MB. Shrinking it forces the external-join path at smaller scales.
func ZeroCopyBuffer(capacity int64) *mem.ZeroCopy {
	z := mem.NewZeroCopy()
	if capacity > 0 {
		z.Capacity = capacity
	}
	return z
}
