package apujoin

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"apujoin/internal/catalog"
	"apujoin/internal/shard"
)

// shardFixture registers the invariance corpus on eng: a generated build
// relation, two probe relations of different skew and selectivity, and a
// tiny bulk-loaded relation small enough that several of the fixed hash
// partitions are guaranteed empty.
func shardFixture(t *testing.T, eng *Engine) (tiny Relation) {
	t.Helper()
	if _, err := eng.Register("orders", Gen{N: 12000, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterProbe("lineitem", "orders", Gen{N: 15000, Dist: HighSkew, Seed: 6}, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterProbe("returns", "orders", Gen{N: 9000, Dist: LowSkew, Seed: 7}, 0.3); err != nil {
		t.Fatal(err)
	}
	tiny = Gen{N: 3, Seed: 11}.Build()
	if _, err := eng.Load("tiny", tiny); err != nil {
		t.Fatal(err)
	}
	return tiny
}

// shardOutcome is everything one engine configuration reports for the
// fixed invariance workload: full Results and PipelineResults, simulated
// times included.
type shardOutcome struct {
	explicit *Result
	auto     *Result
	mixed    *Result
	tiny     *Result
	streamed *PipelineResult
	declared *PipelineResult
}

func runShardWorkload(t *testing.T, eng *Engine, tiny Relation) *shardOutcome {
	t.Helper()
	ctx := context.Background()
	opts := []JoinOption{WithDelta(0.1), WithPilotItems(1 << 10)}
	must := func(res *Result, err error) *Result {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	o := &shardOutcome{}
	o.explicit = must(eng.Join(ctx, Ref("orders"), Ref("lineitem"),
		append(opts, WithAlgo(PHJ), WithScheme(PL))...))
	o.auto = must(eng.Join(ctx, Ref("orders"), Ref("lineitem"), append(opts, WithAuto())...))
	// A mixed Ref/Inline pair (allowed on every engine) and a join whose
	// tiny side leaves most hash partitions empty.
	o.mixed = must(eng.Join(ctx, Ref("orders"), Inline(Gen{N: 15000, Dist: HighSkew, Seed: 6}.
		Probe(Gen{N: 12000, Seed: 5}.Build(), 0.6)), opts...))
	o.tiny = must(eng.Join(ctx, Ref("tiny"), Inline(tiny), opts...))

	pr, err := eng.JoinPipeline(ctx, Pipeline{Sources: []Source{
		Ref("orders"), Ref("lineitem"), Ref("returns"),
	}}, append(opts, WithAuto())...)
	if err != nil {
		t.Fatal(err)
	}
	o.streamed = pr
	pr, err = eng.JoinPipeline(ctx, Pipeline{Sources: []Source{
		Ref("orders"), Ref("lineitem"), Ref("returns"),
	}, DeclaredOrder: true}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	o.declared = pr
	return o
}

// TestShardInvariance is the PR's acceptance contract: every number an
// engine reports — match counts, every simulated time, the pipeline
// peak-bytes accounting — is bit-identical for shard counts 1, 2 and 4,
// and for worker counts 1 and GOMAXPROCS. Sharding decides where data
// lives and which budget it charges, never a computed number. Full
// Results and PipelineResults are compared with DeepEqual; match counts
// are additionally grounded against an unsharded engine (match counts
// are decomposition-independent even though unsharded simulated times
// legitimately differ).
func TestShardInvariance(t *testing.T) {
	unsharded := NewEngine(Workers(2))
	defer unsharded.Close()
	tinyRel := shardFixture(t, unsharded)
	base := runShardWorkload(t, unsharded, tinyRel)

	var ref *shardOutcome
	var refCfg string
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, shards := range []int{1, 2, 4} {
			cfg := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			t.Run(cfg, func(t *testing.T) {
				eng := NewEngine(Workers(workers), WithShards(shards))
				defer eng.Close()
				if got := eng.Shards(); got != shards {
					t.Fatalf("Shards() = %d, want %d", got, shards)
				}
				tiny := shardFixture(t, eng)
				o := runShardWorkload(t, eng, tiny)

				// Grounding: the sharded decomposition finds exactly the
				// matches the unsharded engine does.
				for name, pair := range map[string][2]int64{
					"explicit": {o.explicit.Matches, base.explicit.Matches},
					"auto":     {o.auto.Matches, base.auto.Matches},
					"mixed":    {o.mixed.Matches, base.mixed.Matches},
					"tiny":     {o.tiny.Matches, base.tiny.Matches},
					"streamed": {o.streamed.Final.Matches, base.streamed.Final.Matches},
					"declared": {o.declared.Final.Matches, base.declared.Final.Matches},
				} {
					if pair[0] != pair[1] {
						t.Errorf("%s: matches %d, unsharded %d", name, pair[0], pair[1])
					}
				}
				if o.explicit.Matches <= 0 || o.tiny.Matches != 3 {
					t.Errorf("workload degenerate: explicit %d matches, tiny %d (want 3)",
						o.explicit.Matches, o.tiny.Matches)
				}

				// Per-step plans must survive sharding: every step of the
				// auto streamed pipeline carries the aggregated PlanInfo,
				// exactly as on the unsharded engine.
				for i, st := range o.streamed.Steps {
					if st.Plan == nil || st.Plan.Algo == "" || st.Plan.Scheme == "" {
						t.Errorf("streamed auto step %d: missing per-step PlanInfo: %+v", i, st.Plan)
					}
				}

				if ref == nil {
					ref, refCfg = o, cfg
					return
				}
				for name, pair := range map[string][2]any{
					"explicit join Result":          {o.explicit, ref.explicit},
					"auto join Result":              {o.auto, ref.auto},
					"mixed-source join Result":      {o.mixed, ref.mixed},
					"empty-partition Result":        {o.tiny, ref.tiny},
					"streamed PipelineResult":       {o.streamed, ref.streamed},
					"declared-order PipelineResult": {o.declared, ref.declared},
				} {
					if !reflect.DeepEqual(pair[0], pair[1]) {
						t.Errorf("%s differs between %s and %s", name, cfg, refCfg)
					}
				}
			})
		}
	}
}

// TestShardSpillInvariance is the spill tentpole's acceptance gate: a
// pipeline whose selectivity-1 intermediates overflow the residency
// budget — the materialized run still fails with ErrNoSpace, proving
// the budget genuinely cannot hold them — completes on the streamed
// path by spilling, matches the unconstrained run exactly, and the
// full PipelineResult (match counts, every simulated time, the spill
// accounting itself) is bit-identical for worker counts 1 and
// GOMAXPROCS and shard counts 1, 2 and 4 with the total budget held
// fixed.
func TestShardSpillInvariance(t *testing.T) {
	// Total residency budget across all shards, divisible by 4 so every
	// shard count gets an exact split and the per-partition budget —
	// total/8, the quantity spill decisions and with them the simulated
	// spill I/O depend on — is bit-identical for shards 1, 2 and 4. The
	// 48 000 relation tuples leave ~13.6 KB headroom: enough for the
	// hash-split imbalance at registration, too little for any single
	// partition's ~16 KB selectivity-1 intermediate.
	const totalBudget = 397_600
	rg := Gen{N: 16000, Seed: 1}
	sg := Gen{N: 16000, Seed: 2}
	ug := Gen{N: 16000, Seed: 3}
	register := func(t *testing.T, eng *Engine) {
		t.Helper()
		if _, err := eng.Register("r", rg); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RegisterProbe("s", "r", sg, 1.0); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RegisterProbe("u", "r", ug, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	sources := []Source{Ref("r"), Ref("s"), Ref("u")}
	opts := []JoinOption{WithDelta(0.25), WithPilotItems(1 << 8)}
	ctx := context.Background()

	unconstrained := NewEngine(Workers(2))
	defer unconstrained.Close()
	register(t, unconstrained)
	base, err := unconstrained.JoinPipeline(ctx, Pipeline{Sources: sources}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if base.SpilledPartitions != 0 || base.SpillBytes != 0 {
		t.Fatalf("unconstrained reference spilled: partitions=%d bytes=%d",
			base.SpilledPartitions, base.SpillBytes)
	}

	var ref *PipelineResult
	var refCfg string
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		for _, shards := range []int{1, 2, 4} {
			cfg := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			t.Run(cfg, func(t *testing.T) {
				eng := NewEngine(Workers(workers), WithShards(shards),
					WithShardBudget(totalBudget/int64(shards)))
				defer eng.Close()
				register(t, eng)

				// Seed behavior, kept on the materialized path: the budget
				// cannot hold the intermediates.
				if _, err := eng.JoinPipeline(ctx, Pipeline{
					Sources: sources, Materialize: true,
				}, opts...); !errors.Is(err, catalog.ErrNoSpace) {
					t.Fatalf("materialized run under budget: err %v, want catalog.ErrNoSpace", err)
				}

				res, err := eng.JoinPipeline(ctx, Pipeline{Sources: sources}, opts...)
				if err != nil {
					t.Fatalf("streamed run under budget: %v", err)
				}
				if res.Final.Matches != base.Final.Matches {
					t.Errorf("spilled matches %d, unconstrained %d",
						res.Final.Matches, base.Final.Matches)
				}
				if res.SpilledPartitions == 0 || res.SpillBytes == 0 || res.SpillNS == 0 {
					t.Errorf("constrained run reports no spill: partitions=%d bytes=%d ns=%v",
						res.SpilledPartitions, res.SpillBytes, res.SpillNS)
				}
				if ref == nil {
					ref, refCfg = res, cfg
					return
				}
				if !reflect.DeepEqual(res, ref) {
					t.Errorf("spilled PipelineResult differs between %s and %s", cfg, refCfg)
				}
			})
		}
	}
}

// TestShardInvarianceStats: the aggregate catalog gauge equals the sum of
// the per-shard gauges, resident bytes match the unsharded ingest, and
// shard counts above the fixed partition grid clamp rather than fail.
func TestShardInvarianceStats(t *testing.T) {
	eng := NewEngine(Workers(2), WithShards(3))
	defer eng.Close()
	shardFixture(t, eng)

	st := eng.svc.Stats()
	if st.Shards != 3 || len(st.ShardCatalogs) != 3 {
		t.Fatalf("stats: shards=%d, %d shard catalogs, want 3 and 3", st.Shards, len(st.ShardCatalogs))
	}
	var bytes, capacity int64
	for _, sc := range st.ShardCatalogs {
		bytes += sc.Bytes
		capacity += sc.Capacity
	}
	if st.Catalog.Bytes != bytes || st.Catalog.Capacity != capacity {
		t.Errorf("aggregate catalog gauge (%d bytes / %d cap) != shard sum (%d / %d)",
			st.Catalog.Bytes, st.Catalog.Capacity, bytes, capacity)
	}
	if st.Catalog.Relations != 4 {
		t.Errorf("catalog relations = %d, want 4", st.Catalog.Relations)
	}
	// (12000 + 15000 + 9000 + 3) tuples × 8 bytes, wherever the split put them.
	if want := int64(12000+15000+9000+3) * 8; bytes != want {
		t.Errorf("resident bytes = %d, want %d", bytes, want)
	}

	over := NewEngine(Workers(1), WithShards(shard.Partitions*4))
	defer over.Close()
	if got := over.Shards(); got != shard.Partitions {
		t.Errorf("oversized shard count: Shards() = %d, want clamp to %d", got, shard.Partitions)
	}
}

// TestShardedEngineCloseNoGoroutineLeaks: closing a sharded engine with
// joins and pipelines just finished reclaims every goroutine the router
// fan-out started.
func TestShardedEngineCloseNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	eng := NewEngine(Workers(4), WithShards(4))
	tiny := shardFixture(t, eng)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = eng.Join(context.Background(), Ref("orders"), Ref("lineitem"),
				WithDelta(0.25), WithPilotItems(1<<8))
			_, _ = eng.JoinPipeline(context.Background(), Pipeline{Sources: []Source{
				Ref("orders"), Ref("lineitem"), Ref("returns"),
			}}, WithDelta(0.25), WithPilotItems(1<<8))
		}()
	}
	wg.Wait()
	_ = tiny
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d, want <= %d", g, before)
	}
}

// TestShardedEngineSurface covers the sharded facade's documented edges:
// probes anchored on bulk-loaded relations reassemble the loaded base
// from its pinned partitions and register exactly as on an unsharded
// engine, JoinExternal refuses catalog references, and Drop unbinds
// across every shard.
func TestShardedEngineSurface(t *testing.T) {
	eng := NewEngine(Workers(2), WithShards(2))
	defer eng.Close()
	tiny := shardFixture(t, eng)

	// Probe-of-loaded: the router reassembles "tiny" in original tuple
	// order, so the registration — and the resulting join counts — match an
	// unsharded engine bit for bit.
	if _, err := eng.RegisterProbe("p", "tiny", Gen{N: 100, Seed: 1}, 1.0); err != nil {
		t.Errorf("probe of a bulk-loaded relation on a sharded engine: %v", err)
	} else {
		flat := NewEngine(Workers(2))
		defer flat.Close()
		if _, err := flat.Load("tiny", tiny); err != nil {
			t.Fatal(err)
		}
		if _, err := flat.RegisterProbe("p", "tiny", Gen{N: 100, Seed: 1}, 1.0); err != nil {
			t.Fatal(err)
		}
		sharded, err := eng.Join(context.Background(), Ref("tiny"), Ref("p"), WithAlgo(SHJ), WithScheme(DD), WithDelta(0.25))
		if err != nil {
			t.Fatal(err)
		}
		unsharded, err := flat.Join(context.Background(), Ref("tiny"), Ref("p"), WithAlgo(SHJ), WithScheme(DD), WithDelta(0.25))
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Matches != unsharded.Matches {
			t.Errorf("probe-of-loaded join: sharded %d matches, unsharded %d", sharded.Matches, unsharded.Matches)
		}
	}
	// Probe-of-probe regenerates the whole chain.
	if _, err := eng.RegisterProbe("chained", "lineitem", Gen{N: 500, Seed: 9}, 0.5); err != nil {
		t.Errorf("probe of a probe: %v", err)
	}
	if _, err := eng.JoinExternal(context.Background(), Ref("orders"), Ref("lineitem")); err == nil {
		t.Error("JoinExternal accepted catalog references on a sharded engine, want error")
	}

	if err := eng.Drop("lineitem"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Join(context.Background(), Ref("orders"), Ref("lineitem")); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("join after sharded drop: err %v, want catalog.ErrNotFound", err)
	}
	if err := eng.Drop("lineitem"); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("double sharded drop: err %v, want catalog.ErrNotFound", err)
	}
}
