package apujoin

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"apujoin/internal/catalog"
)

// TestEngineCatalogBitIdentical is the PR's acceptance contract: a join
// submitted via catalog Refs returns a Result bit-identical — matches,
// every simulated time, chosen ratios, profiles, step timings — to the
// same join submitted with inline relations generated from the identical
// specs. Checked for an explicit PHJ-DD configuration and for the
// auto-planned path.
func TestEngineCatalogBitIdentical(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()

	rg := Gen{N: 40000, Seed: 5}
	sg := Gen{N: 50000, Dist: HighSkew, Seed: 6}
	const sel = 0.6
	if _, err := eng.Register("orders", rg); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterProbe("lineitem", "orders", sg, sel); err != nil {
		t.Fatal(err)
	}
	r := rg.Build()
	s := sg.Probe(r, sel)

	ctx := context.Background()
	modes := []struct {
		name string
		opts []JoinOption
	}{
		{"explicit PHJ-DD", []JoinOption{WithAlgo(PHJ), WithScheme(DD), WithDelta(0.1), WithPilotItems(1 << 11)}},
		{"auto", []JoinOption{WithAuto(), WithDelta(0.1), WithPilotItems(1 << 11)}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			byRef, err := eng.Join(ctx, Ref("orders"), Ref("lineitem"), m.opts...)
			if err != nil {
				t.Fatal(err)
			}
			inline, err := eng.Join(ctx, Inline(r), Inline(s), m.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if byRef.Matches != inline.Matches {
				t.Errorf("matches %d (ref) != %d (inline)", byRef.Matches, inline.Matches)
			}
			if byRef.TotalNS != inline.TotalNS {
				t.Errorf("TotalNS %.3f (ref) != %.3f (inline)", byRef.TotalNS, inline.TotalNS)
			}
			if !reflect.DeepEqual(byRef, inline) {
				t.Errorf("full results differ between catalog ref and inline submission")
			}
			if byRef.Matches != NaiveJoinCount(r, s) {
				t.Errorf("matches %d != naive count %d", byRef.Matches, NaiveJoinCount(r, s))
			}
		})
	}
}

func TestEngineCatalogLifecycle(t *testing.T) {
	eng := NewEngine(CatalogCapacity(1 << 20))
	defer eng.Close()
	ctx := context.Background()

	if _, err := eng.Register("r", Gen{N: 10000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterProbe("s", "r", Gen{N: 10000, Seed: 2}, 1.0); err != nil {
		t.Fatal(err)
	}
	infos := eng.Relations()
	if len(infos) != 2 {
		t.Fatalf("relations = %d, want 2", len(infos))
	}
	if info, ok := eng.Relation("s"); !ok || info.ProbeOf != "r" || info.Selectivity != 1.0 {
		t.Errorf("probe info = %+v, ok=%v", info, ok)
	}

	// Mixed sources: one Ref, one Inline.
	inlineS := Gen{N: 10000, Seed: 2}.Probe(Gen{N: 10000, Seed: 1}.Build(), 1.0)
	res, err := eng.Join(ctx, Ref("r"), Inline(inlineS), WithDelta(0.1), WithPilotItems(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches <= 0 {
		t.Errorf("mixed-source join matches = %d", res.Matches)
	}

	// Bulk load and count-only join.
	if _, err := eng.Load("bulk", inlineS); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Join(ctx, Ref("r"), Ref("bulk"), WithCountOnly(), WithDelta(0.1), WithPilotItems(1<<10)); err != nil {
		t.Fatal(err)
	}

	// Drop unbinds the name.
	if err := eng.Drop("bulk"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Join(ctx, Ref("r"), Ref("bulk")); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("join after drop: err %v, want catalog.ErrNotFound", err)
	}
	if err := eng.Drop("bulk"); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("double drop: err %v, want catalog.ErrNotFound", err)
	}

	// Capacity is enforced at registration.
	if _, err := eng.Register("huge", Gen{N: 1 << 20, Seed: 9}); !errors.Is(err, catalog.ErrNoSpace) {
		t.Errorf("oversized register: err %v, want catalog.ErrNoSpace", err)
	}
}

// TestEngineExternalFacade: the external-join path works through Engine
// sources as well.
func TestEngineExternalFacade(t *testing.T) {
	eng := NewEngine(CatalogCapacity(1 << 22))
	defer eng.Close()
	if _, err := eng.Register("r", Gen{N: 1 << 16, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterProbe("s", "r", Gen{N: 1 << 16, Seed: 2}, 1.0); err != nil {
		t.Fatal(err)
	}
	// Shrink the per-run zero-copy buffer so the pair exceeds it.
	opt := Options{Delta: 0.1, PilotItems: 1 << 10, ZeroCopy: ZeroCopyBuffer(1 << 19)}
	if _, err := eng.Join(context.Background(), Ref("r"), Ref("s"), WithOptions(opt)); !errors.Is(err, ErrExceedsZeroCopy) {
		t.Fatalf("in-buffer join of oversized pair: err %v, want ErrExceedsZeroCopy", err)
	}
	ext, err := eng.JoinExternal(context.Background(), Ref("r"), Ref("s"), WithOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Matches <= 0 {
		t.Errorf("external matches = %d, want > 0", ext.Matches)
	}
}
