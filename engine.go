package apujoin

import (
	"context"
	"fmt"
	"sync"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/plan"
	"apujoin/internal/service"
)

// Engine is the long-lived handle the library API is built around: one
// Engine owns the resident worker pool, the shared plan cache, the
// zero-copy budget for resident data, and a relation catalog where data is
// registered once — by generator spec or bulk load, with workload
// statistics measured at ingest — and referenced by name from any number
// of joins afterwards (the paper's co-processing schemes assume relations
// already resident in the region both devices address, Sec. 4).
//
//	eng := apujoin.NewEngine()
//	defer eng.Close()
//	eng.Register("orders", apujoin.Gen{N: 1 << 20, Seed: 1})
//	eng.RegisterProbe("lineitem", "orders", apujoin.Gen{N: 1 << 20, Seed: 2}, 1.0)
//	res, err := eng.Join(ctx, apujoin.Ref("orders"), apujoin.Ref("lineitem"),
//		apujoin.WithAlgo(apujoin.PHJ), apujoin.WithScheme(apujoin.PL))
//
// A catalog-referenced join is bit-identical to the same join with inline
// relations: registration changes where the data lives and what is
// re-measured per query, never a single simulated number.
//
// Engine.Join is synchronous and runs outside the admission layer of
// internal/service (the caller bounds its own concurrency); apujoind's
// HTTP surface layers bounded admission and batching on the same
// primitives. All methods are safe for concurrent use.
type Engine struct {
	svc *service.Service
}

// engineConfig collects EngineOption settings.
type engineConfig struct {
	workers      int
	planCache    int
	catalogBytes int64
	shards       int
	shardBudget  int64
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

// Workers sizes the engine's resident worker pool; the default (and any
// value <= 0) is GOMAXPROCS. The worker count changes host wall-clock
// only — never a match count or a simulated time.
func Workers(n int) EngineOption { return func(c *engineConfig) { c.workers = n } }

// PlanCacheSize bounds the engine's plan cache (plans per distinct
// workload fingerprint); <= 0 selects the default capacity.
func PlanCacheSize(n int) EngineOption { return func(c *engineConfig) { c.planCache = n } }

// CatalogCapacity bounds the zero-copy bytes the engine's registered
// relations may occupy; <= 0 selects the A8-3870K's 512 MB. On a sharded
// engine (WithShards) the capacity splits evenly across the per-shard
// catalogs unless WithShardBudget bounds each shard directly.
func CatalogCapacity(bytes int64) EngineOption {
	return func(c *engineConfig) { c.catalogBytes = bytes }
}

// WithShards partitions the engine's relation catalog by key hash across n
// in-process engine shards behind a stateless router: relations register
// once and split over a fixed grid of hash partitions, each shard owns a
// contiguous partition range with its own residency budget, and every join
// or pipeline fans out to all partitions and merges deterministically.
//
// The shard count carries an invariance contract: match counts, every
// simulated time, and the pipeline peak-bytes accounting are bit-identical
// for any n — sharding moves data between catalogs and budgets, never a
// computed number. n <= 0 keeps the unsharded engine; values above the
// fixed partition count are clamped to it.
func WithShards(n int) EngineOption { return func(c *engineConfig) { c.shards = n } }

// WithShardBudget bounds each shard catalog's zero-copy bytes on a sharded
// engine; <= 0 (the default) splits CatalogCapacity — or its 512 MB
// default — evenly across the shards. Without WithShards it has no effect.
func WithShardBudget(bytes int64) EngineOption {
	return func(c *engineConfig) { c.shardBudget = bytes }
}

// NewEngine starts an engine: the resident pool spins up immediately and
// lives until Close.
func NewEngine(opts ...EngineOption) *Engine {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	// Admission bounds (MaxConcurrent/MaxQueue) are a service-layer
	// concern; Engine.Join is synchronous and bounded by its callers.
	return &Engine{svc: service.New(service.Config{
		Workers:      cfg.workers,
		PlanCache:    cfg.planCache,
		CatalogBytes: cfg.catalogBytes,
		Shards:       cfg.shards,
		ShardBudget:  cfg.shardBudget,
	})}
}

// Close stops the engine: running joins finish, the resident pool drains.
// Close blocks until no engine goroutine remains and is idempotent.
func (e *Engine) Close() error { return e.svc.Close() }

// Source names one side of a join: a catalog reference (Ref) or an inline
// relation (Inline). The zero value is an empty inline relation.
type Source struct {
	name string
	rel  Relation
}

// Ref references the relation registered under name in the engine's
// catalog. The join pins the entry for its duration, so a concurrent Drop
// cannot pull the data out from under it.
func Ref(name string) Source { return Source{name: name} }

// Inline carries a caller-held relation into a single join, the pre-Engine
// calling convention. Inline joins are measured per query; registering the
// relation instead moves generation and measurement to ingest.
func Inline(r Relation) Source { return Source{rel: r} }

// RelationInfo describes one registered relation: size, provenance,
// ingest-time workload statistics, and the pins held by in-flight queries.
type RelationInfo = catalog.Info

// Register generates and registers a build relation from a spec (keys are
// a permutation of [1, KeyRange] — the primary-key side of a join). On a
// sharded engine the relation is generated once and split across the
// per-shard catalogs by key hash.
func (e *Engine) Register(name string, g Gen) (RelationInfo, error) {
	return e.svc.RegisterGen(name, g)
}

// RegisterProbe generates and registers a probe relation against the
// registered build relation of: the given fraction of its tuples carry
// keys present in the build side, with g's skew applied — exactly
// g.Probe(build, selectivity), so the result is bit-identical to inline
// generation from the same spec. A sharded engine rebuilds the build side
// in original tuple order first — regenerated from its stored spec, or,
// for a bulk-loaded relation, reassembled from its partition entries via
// the recorded ingest order.
func (e *Engine) RegisterProbe(name, of string, g Gen, selectivity float64) (RelationInfo, error) {
	return e.svc.RegisterProbe(name, of, g, selectivity)
}

// Load registers an existing relation (bulk load). On the unsharded engine
// the columns are retained, not copied, and the caller must not mutate
// them afterwards; a sharded engine copies them into its partition split.
func (e *Engine) Load(name string, r Relation) (RelationInfo, error) {
	return e.svc.LoadRelation(name, r)
}

// Drop unregisters a relation: the name unbinds immediately while joins
// already referencing the entry keep their data; the resident bytes free
// when the last one finishes.
func (e *Engine) Drop(name string) error {
	_, err := e.svc.DropRelation(name)
	return err
}

// Relations lists the registered relations, sorted by name.
func (e *Engine) Relations() []RelationInfo { return e.svc.Relations() }

// Relation returns one registered relation's info.
func (e *Engine) Relation(name string) (RelationInfo, bool) { return e.svc.RelationInfo(name) }

// Shards returns the configured shard count (0 for an unsharded engine).
func (e *Engine) Shards() int { return e.svc.Shards() }

// resolve pins catalog references and returns the concrete relations plus
// a release func and, for named pairs, the ingest-time workload statistics.
// Unlike the service layer's resolver (which mirrors the HTTP contract and
// requires both names or neither), the engine deliberately accepts mixed
// Ref/Inline pairs — a library caller joining resident data against a
// relation it just built; ingest statistics are only reusable when both
// sides are catalog entries.
func (e *Engine) resolve(r, s Source, auto bool) (rr, sr Relation, release func(), wl *plan.Workload, err error) {
	release = func() {}
	cat := e.svc.Catalog()
	if r.name == "" && s.name == "" {
		return r.rel, s.rel, release, nil, nil
	}
	var pins []*catalog.Entry
	release = func() {
		for _, p := range pins {
			p.Release()
		}
	}
	re, se := (*catalog.Entry)(nil), (*catalog.Entry)(nil)
	if r.name != "" {
		if re, err = cat.Acquire(r.name); err != nil {
			return rr, sr, release, nil, err
		}
		pins = append(pins, re)
		rr = re.Relation()
	} else {
		rr = r.rel
	}
	if s.name != "" {
		if se, err = cat.Acquire(s.name); err != nil {
			release()
			return rr, sr, func() {}, nil, err
		}
		pins = append(pins, se)
		sr = se.Relation()
	} else {
		sr = s.rel
	}
	if auto && re != nil && se != nil {
		w := cat.Workload(re, se)
		wl = &w
	}
	return rr, sr, release, wl, nil
}

// Join executes one hash join of R ⋈ S on the engine: sources resolve
// against the catalog (Ref) or come inline, options configure the run
// (WithAlgo, WithScheme, ... — the zero set is a coupled-architecture
// SHJ-PL). Unless WithWorkers requests a dedicated pool, the join runs on
// the engine's resident workers. WithAuto consults the engine's shared
// plan cache; a catalog-referenced pair plans from its ingest-time
// statistics without re-measuring the data.
func (e *Engine) Join(ctx context.Context, r, s Source, opts ...JoinOption) (*Result, error) {
	cfg := applyJoinOptions(opts)
	if e.svc.Sharded() {
		// The sharded path resolves through the router: named sides pin
		// every partition entry, inline sides split on the spot, and the
		// join fans out to all fixed hash partitions (per-partition planning
		// under WithAuto) before the deterministic merge.
		opt := cfg.opt
		e.injectPool(&opt)
		return e.svc.RunJoin(ctx, service.JoinSpec{
			R: r.rel, S: s.rel, RName: r.name, SName: s.name, Opt: opt, Auto: cfg.auto,
		})
	}
	rr, sr, release, wl, err := e.resolve(r, s, cfg.auto)
	if err != nil {
		return nil, err
	}
	defer release()
	opt := cfg.opt
	if cfg.auto {
		pl, _, perr := e.svc.PlanFor(ctx, rr, sr, opt, wl)
		if perr != nil {
			return nil, perr
		}
		opt.Plan = pl
	}
	e.injectPool(&opt)
	return core.RunCtx(ctx, rr, sr, opt)
}

// JoinExternal joins relations whose footprint exceeds the zero-copy
// buffer, partitioning through it in chunks (paper appendix). Sources and
// options follow Join; WithAuto carries only the planned algorithm and
// scheme into the per-pair sub-joins.
func (e *Engine) JoinExternal(ctx context.Context, r, s Source, opts ...JoinOption) (*ExternalResult, error) {
	cfg := applyJoinOptions(opts)
	if e.svc.Sharded() && (r.name != "" || s.name != "") {
		// External joins chunk whole relations through the zero-copy buffer;
		// a sharded catalog holds only partition slices, so Ref sources
		// cannot resolve to the contiguous relations RunExternal needs.
		// Inline sources work on any engine.
		return nil, fmt.Errorf("apujoin: JoinExternal does not accept catalog references on a sharded engine (resolve the data yourself and pass it inline)")
	}
	rr, sr, release, wl, err := e.resolve(r, s, cfg.auto)
	if err != nil {
		return nil, err
	}
	defer release()
	opt := cfg.opt
	if cfg.auto {
		pl, _, perr := e.svc.PlanFor(ctx, rr, sr, opt, wl)
		if perr != nil {
			return nil, perr
		}
		opt.Plan = pl
	}
	e.injectPool(&opt)
	return core.RunExternalCtx(ctx, rr, sr, opt)
}

// injectPool routes the run onto the engine's resident pool unless the
// caller asked for a dedicated transient pool (WithWorkers / a legacy
// Options.Workers) or injected a pool of their own. Pool choice never
// changes results, only host wall-clock.
func (e *Engine) injectPool(opt *core.Options) {
	if opt.Pool == nil && opt.Workers == 0 {
		opt.Pool = e.svc.Pool()
	}
}

// default engine backing the package-level Join/JoinCtx/JoinExternal
// shims, started on first use and alive for the process's lifetime.
var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide engine the package-level shims run on.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}
