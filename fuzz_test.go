package apujoin

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"apujoin/internal/catalog"
	"apujoin/internal/oracle"
	"apujoin/internal/rel"
)

// fuzzCombos is every algorithm × scheme combination the fuzzer drives on
// the coupled architecture (CoarsePL is PHJ-only by definition), plus the
// discrete-architecture DD pair covering the separate-tables code path.
func fuzzCombos() []Options {
	base := Options{Delta: 0.25, PilotItems: 1 << 8}
	var combos []Options
	for _, algo := range []Algo{SHJ, PHJ} {
		for _, scheme := range []Scheme{CPUOnly, GPUOnly, OL, DD, PL, BasicUnit, CoarsePL} {
			if scheme == CoarsePL && algo != PHJ {
				continue
			}
			opt := base
			opt.Algo, opt.Scheme = algo, scheme
			combos = append(combos, opt)
		}
		opt := base
		opt.Algo, opt.Scheme, opt.Arch = algo, DD, Discrete
		combos = append(combos, opt)
	}
	return combos
}

// FuzzJoinAgainstOracle generates small relations across the size, skew and
// selectivity space and asserts that every algorithm × scheme combination —
// and every 3–4-relation pipeline, cost-ordered and declared — produces
// exactly the brute-force oracle's match count, and that the pipeline
// intermediates equal the oracle's reference join tuple for tuple. The
// streamed (default) and materialized pipeline paths are compared step for
// step, and a capacity-starved engine checks the residency-budget
// invariant between them: the streamed path spills intermediates that
// overflow the budget and still produces exactly the oracle's counts
// within the bounded repartitioning depth, while the materialized path —
// which pins every intermediate and cannot spill — fails with ErrNoSpace
// on genuine exhaustion; either way the budget is left intact.
// The seed corpus lives in testdata/fuzz/FuzzJoinAgainstOracle and runs as
// a plain unit test under `go test`; CI additionally explores new inputs
// with `go test -fuzz=FuzzJoinAgainstOracle -fuzztime=30s .`.
func FuzzJoinAgainstOracle(f *testing.F) {
	f.Add(int64(1), uint16(300), uint16(400), uint8(0), uint8(100), uint8(0))
	f.Add(int64(7), uint16(900), uint16(700), uint8(1), uint8(50), uint8(1))
	f.Add(int64(42), uint16(64), uint16(1000), uint8(2), uint8(25), uint8(0))
	// A 4-relation selectivity-1 chain whose intermediates dwarf the inputs
	// (budget pressure on the capacity-starved engine) and a zero-match
	// chain streaming empty intermediates.
	f.Add(int64(5005), uint16(900), uint16(901), uint8(0), uint8(100), uint8(1))
	f.Add(int64(6006), uint16(700), uint16(500), uint8(1), uint8(0), uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, nr16, ns16 uint16, skew8, selPct8, four8 uint8) {
		nr := int(nr16)%1024 + 1
		ns := int(ns16)%1024 + 1
		dist := []Distribution{Uniform, LowSkew, HighSkew}[int(skew8)%3]
		sel := float64(int(selPct8)%101) / 100

		r := Gen{N: nr, Dist: dist, Seed: seed}.Build()
		s := Gen{N: ns, Dist: dist, Seed: seed + 1}.Probe(r, sel)
		want := oracle.JoinCount(r, s)

		// The intermediate materialization agrees with the independently
		// written reference join, tuple for tuple.
		if !reflect.DeepEqual(rel.JoinMaterialize(r, s), oracle.Join(r, s)) {
			t.Fatalf("seed=%d nr=%d ns=%d %v sel=%.2f: JoinMaterialize diverges from the oracle",
				seed, nr, ns, dist, sel)
		}

		for _, opt := range fuzzCombos() {
			res, err := Join(r, s, opt)
			if err != nil {
				t.Fatalf("%s-%s on %s: %v", opt.Algo, opt.Scheme, opt.Arch, err)
			}
			if res.Matches != want {
				t.Errorf("%s-%s on %s: matches %d, oracle %d (seed=%d nr=%d ns=%d %v sel=%.2f)",
					opt.Algo, opt.Scheme, opt.Arch, res.Matches, want, seed, nr, ns, dist, sel)
			}
		}

		// Pipelines over 3–4 relations: extra probe relations of varied
		// selectivity against the same key domain. Cost-ordered catalog
		// refs and declaration-order inline sources must both match the
		// order-independent multi-way oracle.
		nrel := 3 + int(four8)%2
		buildRels := func(nr, ns int) []Relation {
			rr := Gen{N: nr, Dist: dist, Seed: seed}.Build()
			ss := Gen{N: ns, Dist: dist, Seed: seed + 1}.Probe(rr, sel)
			out := []Relation{rr, ss}
			for i := 2; i < nrel; i++ {
				g := Gen{N: (nr+ns)/2 + 1, Dist: dist, Seed: seed + int64(i)}
				out = append(out, g.Probe(rr, 1-sel/2))
			}
			return out
		}
		rels := buildRels(nr, ns)
		wantPipe := oracle.PipelineCount(rels)
		// A high-skew selectivity-1 chain can blow up to millions of
		// matches, and every pipeline run below does work proportional to
		// the blowup — while a single fuzz input has to stay well inside
		// the fuzz engine's hang detector even on the instrumented build.
		// Halve the sizes until the multi-way count is modest: ordering,
		// spill and invariance properties depend on the shape of the data,
		// not its volume.
		for wantPipe > 1<<19 && (nr > 8 || ns > 8) {
			nr, ns = nr/2+1, ns/2+1
			rels = buildRels(nr, ns)
			wantPipe = oracle.PipelineCount(rels)
		}
		wantJoin := oracle.JoinCount(rels[0], rels[1])

		eng := NewEngine(Workers(2))
		defer eng.Close()
		refs := make([]Source, len(rels))
		inlines := make([]Source, len(rels))
		for i, rl := range rels {
			name := fmt.Sprintf("rel%d", i)
			if _, err := eng.Load(name, rl); err != nil {
				t.Fatal(err)
			}
			refs[i] = Ref(name)
			inlines[i] = Inline(rl)
		}
		opts := []JoinOption{WithDelta(0.25), WithPilotItems(1 << 8)}
		ordered, err := eng.JoinPipeline(context.Background(), Pipeline{Sources: refs}, opts...)
		if err != nil {
			t.Fatalf("ordered pipeline: %v", err)
		}
		if ordered.Final.Matches != wantPipe {
			t.Errorf("ordered pipeline (order %v): matches %d, oracle %d (seed=%d nrel=%d)",
				ordered.Order, ordered.Final.Matches, wantPipe, seed, nrel)
		}
		declared, err := eng.JoinPipeline(context.Background(),
			Pipeline{Sources: inlines, DeclaredOrder: true}, opts...)
		if err != nil {
			t.Fatalf("declared pipeline: %v", err)
		}
		if declared.Final.Matches != wantPipe {
			t.Errorf("declared pipeline: matches %d, oracle %d (seed=%d nrel=%d)",
				declared.Final.Matches, wantPipe, seed, nrel)
		}

		// Streamed (the runs above) and materialized execution are
		// bit-identical step for step on the same warm engine.
		mat, err := eng.JoinPipeline(context.Background(),
			Pipeline{Sources: refs, Materialize: true}, opts...)
		if err != nil {
			t.Fatalf("materialized pipeline: %v", err)
		}
		if !ordered.Streamed || mat.Streamed {
			t.Fatalf("mode flags: streamed run %v, materialized run %v", ordered.Streamed, mat.Streamed)
		}
		if !reflect.DeepEqual(ordered.Order, mat.Order) || !reflect.DeepEqual(ordered.Final, mat.Final) {
			t.Errorf("streamed and materialized pipelines diverge (seed=%d nrel=%d)", seed, nrel)
		}
		for i := range ordered.Steps {
			if !reflect.DeepEqual(ordered.Steps[i].Result, mat.Steps[i].Result) {
				t.Errorf("step %d: streamed Result differs from materialized (seed=%d)", i, seed)
			}
		}

		// A sharded engine — shard count derived from the input so the
		// fuzzer sweeps it alongside size, skew and selectivity — finds
		// exactly the oracle's counts for the same joins and pipelines,
		// and its pipeline Final is bit-identical to the unsharded
		// ordered run's match count (the shard-count-invariance contract
		// exercised on adversarial inputs, including relations tiny
		// enough to leave hash partitions empty).
		shardN := 1 + int(nr16)%4
		sharded := NewEngine(Workers(2), WithShards(shardN))
		defer sharded.Close()
		for i, rl := range rels {
			if _, err := sharded.Load(fmt.Sprintf("rel%d", i), rl); err != nil {
				t.Fatal(err)
			}
		}
		sres, err := sharded.Join(context.Background(), Ref("rel0"), Ref("rel1"), opts...)
		if err != nil {
			t.Fatalf("sharded join (%d shards): %v", shardN, err)
		}
		if sres.Matches != wantJoin {
			t.Errorf("sharded join (%d shards): matches %d, oracle %d (seed=%d)", shardN, sres.Matches, wantJoin, seed)
		}
		spipe, err := sharded.JoinPipeline(context.Background(), Pipeline{Sources: refs}, opts...)
		if err != nil {
			t.Fatalf("sharded pipeline (%d shards): %v", shardN, err)
		}
		if spipe.Final.Matches != wantPipe {
			t.Errorf("sharded pipeline (%d shards): matches %d, oracle %d (seed=%d nrel=%d)",
				shardN, spipe.Final.Matches, wantPipe, seed, nrel)
		}

		// Budget invariant on an engine whose capacity barely exceeds the
		// sources: the streamed path always completes — intermediates that
		// overflow the 1 KB of headroom spill through the bounded-depth
		// hybrid-hash store and the final count still equals the oracle.
		// The materialized path pins every intermediate, so it either fits
		// (bit-identical to an unspilled streamed run) or fails with
		// ErrNoSpace. Both paths restore the budget completely.
		var srcBytes int64
		for _, rl := range rels {
			srcBytes += rl.Bytes()
		}
		tiny := NewEngine(Workers(2), CatalogCapacity(srcBytes+1024))
		defer tiny.Close()
		for i, rl := range rels {
			if _, err := tiny.Load(fmt.Sprintf("rel%d", i), rl); err != nil {
				t.Fatal(err)
			}
		}
		tinySt, errSt := tiny.JoinPipeline(context.Background(), Pipeline{Sources: refs}, opts...)
		if errSt != nil {
			t.Fatalf("tiny-budget streamed pipeline did not spill its way through: %v (seed=%d)", errSt, seed)
		}
		if tinySt.Final.Matches != wantPipe {
			t.Errorf("tiny-budget spilled pipeline: matches %d, oracle %d (seed=%d nrel=%d, %d partitions spilled)",
				tinySt.Final.Matches, wantPipe, seed, nrel, tinySt.SpilledPartitions)
		}
		if tinySt.SpillDepth < 0 || tinySt.SpillDepth > 3 {
			t.Errorf("tiny-budget spill depth %d outside the bounded range [0,3] (seed=%d)", tinySt.SpillDepth, seed)
		}
		if (tinySt.SpilledPartitions == 0) != (tinySt.SpillBytes == 0) {
			t.Errorf("inconsistent spill accounting: %d partitions, %d bytes (seed=%d)",
				tinySt.SpilledPartitions, tinySt.SpillBytes, seed)
		}
		tinyMat, errMat := tiny.JoinPipeline(context.Background(), Pipeline{Sources: refs, Materialize: true}, opts...)
		switch {
		case errMat == nil && tinySt.SpilledPartitions == 0:
			if !reflect.DeepEqual(tinySt.Final, tinyMat.Final) {
				t.Errorf("tiny-budget streamed and materialized finals diverge (seed=%d)", seed)
			}
		case errMat == nil:
			if tinyMat.Final.Matches != wantPipe {
				t.Errorf("tiny-budget materialized pipeline: matches %d, oracle %d (seed=%d)",
					tinyMat.Final.Matches, wantPipe, seed)
			}
		case !errors.Is(errMat, catalog.ErrNoSpace):
			t.Errorf("tiny-budget materialized failure is not ErrNoSpace: %v (seed=%d)", errMat, seed)
		}
		if got := tiny.svc.Stats().Catalog.Bytes; got != srcBytes {
			t.Errorf("tiny budget not restored: %d bytes resident, want %d (seed=%d)", got, srcBytes, seed)
		}
	})
}
