module apujoin

go 1.24
