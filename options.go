package apujoin

import "apujoin/internal/core"

// joinConfig is the resolved option set of one Engine.Join.
type joinConfig struct {
	opt  core.Options
	auto bool
}

// JoinOption configures one Engine.Join or Engine.JoinExternal call. The
// zero set is a coupled-architecture SHJ under the fine-grained PL scheme
// with the paper's defaults — the functional-option replacement for
// passing a raw Options struct, which the Engine API no longer requires.
type JoinOption func(*joinConfig)

func applyJoinOptions(opts []JoinOption) joinConfig {
	var cfg joinConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithAlgo selects the join algorithm (SHJ or PHJ).
func WithAlgo(a Algo) JoinOption { return func(c *joinConfig) { c.opt.Algo = a } }

// WithScheme selects the co-processing scheme (CPUOnly, GPUOnly, OL, DD,
// PL, BasicUnit, CoarsePL).
func WithScheme(s Scheme) JoinOption { return func(c *joinConfig) { c.opt.Scheme = s } }

// WithArch selects the architecture (Coupled or Discrete).
func WithArch(a Arch) JoinOption { return func(c *joinConfig) { c.opt.Arch = a } }

// WithAuto hands algorithm, scheme and ratios to the adaptive planner: the
// engine's shared plan cache serves repeated workload shapes without a
// pilot, and catalog-referenced pairs plan from their ingest-time
// statistics. Overrides WithAlgo/WithScheme.
func WithAuto() JoinOption { return func(c *joinConfig) { c.auto = true } }

// WithWorkers runs the join on a dedicated transient pool of n host
// workers instead of the engine's resident pool. Worker counts change
// host wall-clock only; every simulated number is identical.
func WithWorkers(n int) JoinOption { return func(c *joinConfig) { c.opt.Workers = n } }

// WithSeparateTables builds one hash table per device and merges after the
// build phase (the Discrete architecture forces this).
func WithSeparateTables() JoinOption { return func(c *joinConfig) { c.opt.SeparateTables = true } }

// WithGrouping enables the workload-divergence grouping optimization with
// the given number of workload levels (<= 0 selects the default 32).
func WithGrouping(groups int) JoinOption {
	return func(c *joinConfig) { c.opt.Grouping = true; c.opt.Groups = groups }
}

// WithDelta sets the ratio-grid granularity δ of the cost-model searches.
func WithDelta(d float64) JoinOption { return func(c *joinConfig) { c.opt.Delta = d } }

// WithCountOnly skips materializing result pairs and only counts matches.
func WithCountOnly() JoinOption { return func(c *joinConfig) { c.opt.CountOnly = true } }

// WithPilotItems sets the profiling pilot's sample size.
func WithPilotItems(n int) JoinOption { return func(c *joinConfig) { c.opt.PilotItems = n } }

// WithOptions seeds the whole legacy Options struct — the escape hatch for
// knobs without a dedicated JoinOption (fixed ratios, device profiles,
// allocator config, ...). Later JoinOptions override its fields; it also
// backs the package-level compatibility shims.
func WithOptions(opt Options) JoinOption {
	return func(c *joinConfig) { c.opt = opt }
}
