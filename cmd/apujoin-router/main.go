// Command apujoin-router fans the apujoind /v1 surface out over a network
// cluster of apujoind shard servers. It speaks the exact same HTTP/JSON
// contract as a single apujoind — clients cannot tell the difference — and
// the results are bit-identical to a single-process engine for any cluster
// size: relation registrations split by the fixed hash-partition grid, every
// join and pipeline fans out to all shard servers, and the raw per-partition
// results merge locally in fixed partition order.
//
//	apujoind -addr :8431 -shards 4 &
//	apujoind -addr :8432 -shards 4 &
//	apujoin-router -addr :8430 -cluster http://localhost:8431,http://localhost:8432
//
// Every shard server must run with -shards >= 1 (the per-partition transport
// the router depends on is a sharded-engine feature) and should be reachable
// before the first query; a background health checker probes /healthz and a
// query that needs a marked-down shard fails fast with a structured 503
// (code "shard_down") instead of hanging. GET /v1/stats adds a "cluster"
// section with per-shard health and traffic gauges.
//
// Deployment recipes, the flag reference and the failure-mode table live in
// docs/OPERATIONS.md; the wire contract in docs/API.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"apujoin/internal/httpapi"
	"apujoin/internal/service"
	"apujoin/internal/shard"
)

// parseCluster validates the -cluster flag: 1..shard.Partitions comma-
// separated http(s) base URLs. More servers than partitions would leave the
// excess forever idle (a partition has exactly one owner), so that is a
// configuration error, not a silent truncation.
func parseCluster(spec string) ([]string, error) {
	if spec == "" {
		return nil, errors.New("missing -cluster (comma-separated shard server base URLs)")
	}
	var addrs []string
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("bad shard URL %q: %w", raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("bad shard URL %q: need http(s)://host[:port]", raw)
		}
		addrs = append(addrs, strings.TrimRight(raw, "/"))
	}
	if len(addrs) == 0 {
		return nil, errors.New("-cluster lists no shard servers")
	}
	if len(addrs) > shard.Partitions {
		return nil, fmt.Errorf("-cluster lists %d servers but the partition grid has only %d partitions; extra servers would never own one", len(addrs), shard.Partitions)
	}
	return addrs, nil
}

func main() {
	addr := flag.String("addr", ":8430", "listen address")
	clusterSpec := flag.String("cluster", "", "comma-separated shard server base URLs, e.g. http://host1:8417,http://host2:8417 (1..8 servers; each must run apujoind -shards >= 1)")
	workers := flag.Int("workers", 0, "resident pool size for request bookkeeping (0 = GOMAXPROCS)")
	maxConc := flag.Int("max-concurrent", 0, "queries in flight across the cluster at once (0 = half the pool, min 2)")
	queue := flag.Int("queue", 64, "admission queue capacity")
	keep := flag.Int("keep", 1024, "finished queries retained for polling")
	maxTuples := flag.Int("max-tuples", 1<<24, "largest accepted relation size")
	maxBody := flag.Int64("max-body", 32<<20, "largest accepted request body in bytes")
	timeout := flag.Duration("timeout", 120*time.Second, "per-shard-request timeout; a query on a dead shard fails within this bound")
	retries := flag.Int("retries", 2, "retries for idempotent (GET) shard requests; mutations never retry (-1 disables)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base backoff between retries (exponential, jittered)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "period of the background /healthz probe per shard")
	healthFailures := flag.Int("health-failures", 3, "consecutive probe failures before a shard is marked down")
	flag.Parse()

	addrs, err := parseCluster(*clusterSpec)
	if err != nil {
		log.Fatalf("apujoin-router: %v", err)
	}
	if *workers < 0 {
		log.Fatalf("apujoin-router: -workers %d is negative; use 0 for GOMAXPROCS", *workers)
	}
	if *queue < 1 || *keep < 1 || *maxTuples < 1 || *maxBody < 1 {
		log.Fatalf("apujoin-router: -queue, -keep, -max-tuples and -max-body must be >= 1")
	}
	if *timeout <= 0 || *backoff <= 0 || *healthInterval <= 0 || *healthFailures < 1 {
		log.Fatalf("apujoin-router: -timeout, -backoff and -health-interval must be positive and -health-failures >= 1")
	}
	if *maxConc == 0 {
		w := *workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		*maxConc = w / 2
		if *maxConc < 2 {
			*maxConc = 2
		}
	}
	// service.Config.ClusterRetries reads 0 as "use the default"; the flag
	// reads -1 as "disable", which the config spells as a negative value.
	clusterRetries := *retries
	if clusterRetries <= 0 {
		clusterRetries = -1
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *queue,
		KeepResults:    *keep,
		Cluster:        addrs,
		ClusterTimeout: *timeout,
		ClusterRetries: clusterRetries,
		ClusterBackoff: *backoff,
		HealthInterval: *healthInterval,
		HealthFailures: *healthFailures,
		Logf:           log.Printf,
	})

	handler := httpapi.New(svc, httpapi.Config{MaxTuples: *maxTuples, MaxBody: *maxBody})
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("apujoin-router: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	log.Printf("apujoin-router: listening on %s, routing %d/%d partitions-per-shard across %d shard servers: %s",
		*addr, shard.Partitions/len(addrs), shard.Partitions, len(addrs), strings.Join(addrs, ", "))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain: running fan-outs finish or time out, queued queries cancel,
	// the health checker stops.
	_ = svc.Close()
	log.Printf("apujoin-router: drained %d queries, bye", svc.Stats().Completed)
}
