package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirModuleRoot moves the test into the module root (run resolves
// patterns against the working directory, like the go tool).
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	out, err := os.ReadFile("../../go.mod")
	if err != nil || !strings.HasPrefix(string(out), "module apujoin") {
		t.Fatalf("cannot locate module root from %v: %v", mustGetwd(t), err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	chdirModuleRoot(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("apulint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

func TestRunListIgnores(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	chdirModuleRoot(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-list-ignores", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "suppression pragma(s)") {
		t.Errorf("missing trailer:\n%s", out)
	}
	// Every line lists a justified reason; a bare pragma would both be
	// marked here and fail TestRunCleanTree.
	if strings.Contains(out, "BARE") {
		t.Errorf("bare suppression in tree:\n%s", out)
	}
	// The pragmas the initial sweep justified are enumerable.
	if !strings.Contains(out, "wallclock") || !strings.Contains(out, "detmaporder") || !strings.Contains(out, "nakedgo") {
		t.Errorf("expected justified wallclock/detmaporder/nakedgo pragmas in:\n%s", out)
	}
}

func TestRunListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"detmaporder", "floatsum", "nakedgo", "wallclock", "envelope"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("analyzer %s missing from listing:\n%s", name, stdout.String())
		}
	}
}

func TestRunFindingsFailWithExitOne(t *testing.T) {
	if testing.Short() {
		t.Skip("type-check is not short")
	}
	chdirModuleRoot(t)
	// A throwaway module with a seeded violation: apulint must print the
	// finding and exit 1. The fixture import path is outside apujoin, so
	// path-scoped analyzers would skip it — nakedgo's allowlist is what
	// binds (any non-allowed path is flagged), making it the right seed.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module apujoin\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "internal", "core", "core.go"),
		"package core\n\nfunc spawn(f func()) {\n\tgo f()\n}\n")
	t.Chdir(dir)
	var stdout, stderr strings.Builder
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "bare go statement") {
		t.Errorf("finding not printed:\n%s", stdout.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
