// Command apulint is apujoin's project-specific static analyzer: it
// enforces the determinism, parallelism, and envelope contracts at
// compile time (see internal/analysis for the suite). It type-checks the
// requested packages from source — imports resolved through the
// compiler's export data, no module downloads — runs every analyzer, and
// exits non-zero on any finding, including pragma-hygiene errors (bare
// suppressions, unknown analyzer names, stale pragmas).
//
// Usage:
//
//	apulint [packages]          # default ./...
//	apulint -list-ignores [packages]
//	apulint -list-analyzers
//
// Suppressions are written on (or directly above) the offending line as
//
//	//apulint:ignore <analyzer>(<reason>)
//
// and are enumerable with -list-ignores so the full set of justified
// exceptions stays auditable in review.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"apujoin/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected: argv without the program
// name, the two output streams, and the exit code as the return value
// (0 clean, 1 findings, 2 usage or load failure).
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("apulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listIgnores := fs.Bool("list-ignores", false, "enumerate every suppression pragma instead of linting")
	listAnalyzers := fs.Bool("list-analyzers", false, "print the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: apulint [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *listAnalyzers {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "apulint:", err)
		return 2
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "apulint:", err)
		return 2
	}

	if *listIgnores {
		igs := analysis.ListIgnores(pkgs)
		for _, ig := range igs {
			reason := ig.Reason
			if reason == "" {
				reason = "(BARE — no reason given)"
			}
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", ig.Pos.Filename, ig.Pos.Line, ig.Analyzer, reason)
		}
		fmt.Fprintf(stdout, "%d suppression pragma(s)\n", len(igs))
		return 0
	}

	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, "apulint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(stderr, "apulint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
