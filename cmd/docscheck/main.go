// Command docscheck keeps the repository's Markdown documentation honest:
// it walks every tracked .md file and verifies that relative links resolve
// to files that exist and that fragment links (#heading) point at headings
// that exist in the target document. External http(s) links are not
// fetched — CI has no network guarantee — only checked for well-formedness.
//
//	go run ./cmd/docscheck            # check the working tree
//	go run ./cmd/docscheck -root dir  # check another tree
//
// Exit status 1 lists every broken link as file:line: message, so the
// docs CI job fails with an actionable report when documentation drifts
// from the tree.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRE matches inline Markdown links [text](target). Images share the
// syntax; the leading "!" does not change the target rules.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRE matches ATX headings; the captured text anchors fragments.
var headingRE = regexp.MustCompile("^#{1,6}\\s+(.*?)\\s*#*\\s*$")

// codeFenceRE matches the start or end of a fenced code block; links
// inside fences are examples, not navigation.
var codeFenceRE = regexp.MustCompile("^\\s*(```|~~~)")

// anchorOf reproduces the GitHub heading-to-anchor rule closely enough for
// this repository: lowercase, inline code and emphasis markers dropped,
// spaces to dashes, everything outside [a-z0-9_-] removed.
func anchorOf(heading string) string {
	s := strings.ToLower(heading)
	s = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(s)
	s = strings.ReplaceAll(s, " ", "-")
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' || r == '_' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// doc is one parsed Markdown file: its anchors and its outgoing links.
type doc struct {
	anchors map[string]bool
	links   []link
}

type link struct {
	line   int
	target string
}

func parseDoc(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &doc{anchors: map[string]bool{}}
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if codeFenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRE.FindStringSubmatch(line); m != nil {
			d.anchors[anchorOf(m[1])] = true
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			d.links = append(d.links, link{line: i + 1, target: m[1]})
		}
	}
	return d, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected: argv without the program
// name, the two output streams, and the exit code as the return value
// (0 all links resolve, 1 broken links, 2 usage or walk failure).
func run(argv []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("docscheck", flag.ContinueOnError)
	flags.SetOutput(stderr)
	root := flags.String("root", ".", "repository root to check")
	if err := flags.Parse(argv); err != nil {
		return 2
	}

	// Pass 1: parse every Markdown file, collecting anchors and links.
	docs := map[string]*doc{}
	err := filepath.WalkDir(*root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := e.Name()
		if e.IsDir() {
			// Skip VCS internals and vendored/related trees: only the
			// repository's own documentation is under contract.
			if name == ".git" || name == "vendor" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") {
			return nil
		}
		d, err := parseDoc(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(*root, path)
		if err != nil {
			return err
		}
		docs[filepath.ToSlash(rel)] = d
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "docscheck: %v\n", err)
		return 2
	}

	// Pass 2: resolve every link against the collected tree, in sorted
	// file order so the failure report is stable run to run.
	files := make([]string, 0, len(docs))
	for file := range docs {
		files = append(files, file)
	}
	sort.Strings(files)
	broken := 0
	fail := func(file string, ln int, format string, args ...any) {
		fmt.Fprintf(stderr, "%s:%d: %s\n", file, ln, fmt.Sprintf(format, args...))
		broken++
	}
	for _, file := range files {
		d := docs[file]
		for _, l := range d.links {
			t := l.target
			switch {
			case strings.HasPrefix(t, "http://"), strings.HasPrefix(t, "https://"):
				if _, err := url.Parse(t); err != nil {
					fail(file, l.line, "malformed URL %q: %v", t, err)
				}
			case strings.HasPrefix(t, "mailto:"):
				// Out of scope.
			case strings.HasPrefix(t, "#"):
				if !d.anchors[strings.TrimPrefix(t, "#")] {
					fail(file, l.line, "fragment %q matches no heading in this file", t)
				}
			default:
				path, frag, _ := strings.Cut(t, "#")
				resolved := filepath.ToSlash(filepath.Join(filepath.Dir(file), path))
				abs := filepath.Join(*root, filepath.FromSlash(resolved))
				if _, err := os.Stat(abs); err != nil {
					fail(file, l.line, "link target %q does not exist (resolved %q)", t, resolved)
					continue
				}
				if frag != "" {
					target, ok := docs[resolved]
					if !ok {
						fail(file, l.line, "fragment link %q into a non-Markdown file", t)
						continue
					}
					if !target.anchors[frag] {
						fail(file, l.line, "fragment %q matches no heading in %q", "#"+frag, resolved)
					}
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(stderr, "docscheck: %d broken link(s) across %d file(s)\n", broken, len(docs))
		return 1
	}
	fmt.Fprintf(stdout, "docscheck: %d files, all links resolve\n", len(docs))
	return 0
}
