package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAnchorOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Plain heading", "plain-heading"},
		{"With `code` and *emphasis*", "with-code-and-emphasis"},
		{"Mixed CASE 123", "mixed-case-123"},
		{"punct, (drops)!", "punct-drops"},
		{"under_scores stay", "under_scores-stay"},
	}
	for _, c := range cases {
		if got := anchorOf(c.in); got != c.want {
			t.Errorf("anchorOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseDoc(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.md")
	writeFile(t, path, strings.Join([]string{
		"# Title",
		"",
		"A [link](other.md) and [another](#title).",
		"",
		"```",
		"[inside a fence](ignored.md)",
		"# not a heading",
		"```",
		"",
		"## Second Heading ##",
	}, "\n"))
	d, err := parseDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d.anchors["title"] || !d.anchors["second-heading"] {
		t.Errorf("anchors = %v, want title and second-heading", d.anchors)
	}
	if len(d.anchors) != 2 {
		t.Errorf("anchors = %v: the fenced pseudo-heading must not count", d.anchors)
	}
	if len(d.links) != 2 {
		t.Fatalf("links = %+v, want the two outside the fence", d.links)
	}
	if d.links[0].target != "other.md" || d.links[1].target != "#title" {
		t.Errorf("links = %+v", d.links)
	}
}

func TestParseDocMissingFile(t *testing.T) {
	if _, err := parseDoc(filepath.Join(t.TempDir(), "missing.md")); err == nil {
		t.Error("expected error for a missing file")
	}
}

func TestRunCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"# Top",
		"",
		"See [the guide](docs/guide.md), [a section](docs/guide.md#deep-dive),",
		"[here](#top), [upstream](https://example.com/x), and",
		"[mail](mailto:team@example.com). Also [a plain file](LICENSE).",
	}, "\n"))
	writeFile(t, filepath.Join(dir, "docs", "guide.md"), "# Guide\n\n## Deep Dive\n\nBack to [README](../README.md).\n")
	writeFile(t, filepath.Join(dir, "LICENSE"), "whatever\n")
	var stdout, stderr strings.Builder
	if code := run([]string{"-root", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "2 files, all links resolve") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

func TestRunReportsEveryBreakageKind(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "a.md"), strings.Join([]string{
		"# A",
		"[gone](missing.md)",
		"[bad frag](#nope)",
		"[cross frag](b.md#nope)",
		"[into binary](bin.dat#frag)",
	}, "\n"))
	writeFile(t, filepath.Join(dir, "b.md"), "# B\n")
	writeFile(t, filepath.Join(dir, "bin.dat"), "x")
	var stdout, stderr strings.Builder
	if code := run([]string{"-root", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	for _, want := range []string{
		`"missing.md" does not exist`,
		`fragment "#nope" matches no heading in this file`,
		`fragment "#nope" matches no heading in "b.md"`,
		`fragment link "bin.dat#frag" into a non-Markdown file`,
		"4 broken link(s) across 2 file(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
	// Broken links are reported in sorted file order, one line each.
	if strings.Count(out, "a.md:") != 4 {
		t.Errorf("want all 4 findings attributed to a.md:\n%s", out)
	}
}

func TestRunSkipsVendoredTrees(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "ok.md"), "# OK\n")
	// Broken docs inside skipped directories must not fail the run.
	writeFile(t, filepath.Join(dir, "vendor", "bad.md"), "[gone](nope.md)\n")
	writeFile(t, filepath.Join(dir, "node_modules", "bad.md"), "[gone](nope.md)\n")
	var stdout, stderr strings.Builder
	if code := run([]string{"-root", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 files") {
		t.Errorf("stdout = %q, want only ok.md counted", stdout.String())
	}
}

func TestRunWalkFailure(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-root", filepath.Join(t.TempDir(), "missing")}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
