// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-tuples N] [-delta D] [-mc RUNS] [-quick] [ids...]
//
// With no ids, every experiment runs in order. IDs match the paper's
// artifacts: table1, fig3..fig20, table3 (see DESIGN.md for the index).
package main

import (
	"flag"
	"fmt"
	"os"

	"apujoin/internal/catalog"
	"apujoin/internal/exp"
)

func main() {
	tuples := flag.Int("tuples", 1<<20, "relation size standing in for the paper's 16M")
	delta := flag.Float64("delta", 0.05, "ratio grid granularity δ")
	mc := flag.Int("mc", 1000, "Monte Carlo runs for fig9")
	pilot := flag.Int("pilot", 1<<14, "profiling pilot sample size")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	reuse := flag.Bool("reuse-data", true, "register datasets in a relation catalog so experiments sharing a shape generate them once (results unchanged)")
	flag.Parse()

	cfg := exp.Config{Tuples: *tuples, Delta: *delta, MonteCarloRuns: *mc, PilotItems: *pilot, Quick: *quick}
	if *reuse {
		// One catalog across every experiment of the run: identical
		// (size, skew, selectivity) shapes generate once and stay
		// resident, like the service layer's registered relations.
		cfg.Catalog = catalog.New(0)
	}

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		run, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", id, exp.IDs())
			os.Exit(2)
		}
		tab, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		out := tab.Fprint
		if *asCSV {
			out = tab.FprintCSV
		}
		if err := out(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
