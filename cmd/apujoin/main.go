// Command apujoin runs a single co-processed hash join and reports the
// result: exact matches, simulated phase breakdown, chosen ratios, cost
// model estimate, cache and allocator statistics.
//
// The CLI drives the library the way an application would: it starts an
// Engine, registers the generated relations in its catalog, and joins
// them by handle.
//
// Example:
//
//	apujoin -algo phj -scheme pl -r 1048576 -s 4194304 -sel 0.5 -skew high
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"time"

	"apujoin"
	"apujoin/internal/alloc"
)

func main() {
	algoF := flag.String("algo", "shj", "join algorithm: shj | phj | auto (planner picks algo and scheme)")
	schemeF := flag.String("scheme", "pl", "scheme: cpu | gpu | ol | dd | pl | basicunit | coarsepl; ignored with -algo auto")
	archF := flag.String("arch", "coupled", "architecture: coupled | discrete")
	nr := flag.Int("r", 1<<20, "build relation tuples")
	ns := flag.Int("s", 1<<20, "probe relation tuples")
	sel := flag.Float64("sel", 1.0, "join selectivity [0,1]")
	skew := flag.String("skew", "uniform", "data skew: uniform | low | high")
	seed := flag.Int64("seed", 42, "data generation seed")
	separate := flag.Bool("separate", false, "separate per-device hash tables")
	grouping := flag.Bool("grouping", false, "workload-divergence grouping")
	delta := flag.Float64("delta", 0.02, "ratio grid granularity δ")
	basic := flag.Bool("basic-alloc", false, "use the basic (contended) memory allocator")
	block := flag.Int("block", alloc.DefaultBlockBytes, "allocator block size (bytes)")
	workers := flag.Int("workers", 0, "host worker goroutines for the morsel runtime (0 = GOMAXPROCS); changes wall-clock only, never results or simulated times")
	pipelineF := flag.String("pipeline", "", "multi-way join pipeline: comma-separated tuple counts (e.g. 1048576,2097152,524288); the first is the build relation, the rest are probes of it with -sel and -skew; overrides -r/-s")
	declared := flag.Bool("declared-order", false, "with -pipeline, skip the cost-based join orderer and run sources as declared")
	materialized := flag.Bool("materialized", false, "with -pipeline, register every intermediate through the catalog instead of streaming it to the next step (identical results, larger peak resident footprint)")
	flag.Parse()

	if *workers < 0 {
		log.Fatalf("apujoin: -workers %d is negative; use 0 to select GOMAXPROCS (%d on this host)",
			*workers, runtime.GOMAXPROCS(0))
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *nr <= 0 || *ns <= 0 {
		log.Fatalf("apujoin: relation sizes must be positive (-r %d, -s %d)", *nr, *ns)
	}
	if *sel < 0 || *sel > 1 {
		log.Fatalf("apujoin: -sel %v out of [0,1]", *sel)
	}

	opt := apujoin.Options{
		Delta:          *delta,
		SeparateTables: *separate,
		Grouping:       *grouping,
	}
	opt.Alloc.BlockBytes = *block
	if *basic {
		opt.Alloc.Strategy = alloc.Basic
	}

	var err error
	auto := strings.EqualFold(*algoF, "auto")
	if !auto {
		if opt.Algo, err = apujoin.ParseAlgo(*algoF); err != nil {
			log.Fatal(err)
		}
		if opt.Scheme, err = apujoin.ParseScheme(*schemeF); err != nil {
			log.Fatal(err)
		}
	}
	if opt.Arch, err = apujoin.ParseArch(*archF); err != nil {
		log.Fatal(err)
	}
	dist, err := apujoin.ParseDistribution(*skew)
	if err != nil {
		log.Fatal(err)
	}

	// One engine owns the worker pool, the plan cache and the relation
	// catalog; the generated pair registers once and the join references
	// it by handle. Relations too large for the catalog's zero-copy
	// budget fall back to inline sources (the join itself then reports
	// whether it needs the external path).
	eng := apujoin.NewEngine(apujoin.Workers(*workers))
	defer eng.Close()
	ctx := context.Background()

	if *pipelineF != "" {
		runPipeline(ctx, eng, *pipelineF, *declared, *materialized, dist, *seed, *sel, opt, auto, *workers)
		return
	}

	rg := apujoin.Gen{N: *nr, Dist: dist, Seed: *seed}
	sg := apujoin.Gen{N: *ns, Dist: dist, Seed: *seed + 1}
	rSrc, sSrc := apujoin.Ref("R"), apujoin.Ref("S")
	registered := false
	if _, err := eng.Register("R", rg); err == nil {
		if _, err := eng.RegisterProbe("S", "R", sg, *sel); err == nil {
			registered = true
		} else {
			_ = eng.Drop("R")
		}
	}
	if !registered {
		// Either side over the catalog's zero-copy budget: generate
		// inline (the join itself then reports whether it needs the
		// external path).
		r := rg.Build()
		rSrc, sSrc = apujoin.Inline(r), apujoin.Inline(sg.Probe(r, *sel))
	}

	opts := []apujoin.JoinOption{apujoin.WithOptions(opt)}
	if auto {
		opts = append(opts, apujoin.WithAuto())
	}

	hostLine := func(wall time.Duration) {
		fmt.Printf("host: %v wall-clock with %d worker(s)\n", wall.Round(time.Microsecond), *workers)
	}

	start := time.Now()
	res, err := eng.Join(ctx, rSrc, sSrc, opts...)
	wall := time.Since(start)
	if errors.Is(err, apujoin.ErrExceedsZeroCopy) {
		extStart := time.Now()
		ext, eerr := eng.JoinExternal(ctx, rSrc, sSrc, opts...)
		if eerr != nil {
			log.Fatal(eerr)
		}
		fmt.Printf("external join (data > zero-copy buffer): %d matches\n", ext.Matches)
		fmt.Printf("partition %.2f ms, join %.2f ms, data copy %.2f ms, total %.2f ms (%d pairs)\n",
			ext.PartitionNS/1e6, ext.JoinNS/1e6, ext.DataCopyNS/1e6, ext.TotalNS/1e6, ext.Pairs)
		hostLine(time.Since(extStart))
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	if auto {
		fmt.Printf("auto plan: %s-%s (chosen by the planner via the shared plan cache)\n",
			res.Algo, res.Scheme)
	}

	fmt.Printf("%s-%s on %s: %d ⋈ %d tuples → %d matches\n",
		res.Algo, res.Scheme, res.Arch, *nr, *ns, res.Matches)
	fmt.Printf("total      %10.3f ms (estimated %.3f, lock overhead %.3f)\n",
		res.TotalNS/1e6, res.EstimatedNS/1e6, res.LockOverheadNS/1e6)
	fmt.Printf("partition  %10.3f ms\nbuild      %10.3f ms\nprobe      %10.3f ms\n",
		res.PartitionNS/1e6, res.BuildNS/1e6, res.ProbeNS/1e6)
	if res.MergeNS > 0 {
		fmt.Printf("merge      %10.3f ms\n", res.MergeNS/1e6)
	}
	if res.TransferNS > 0 {
		fmt.Printf("PCI-e      %10.3f ms\n", res.TransferNS/1e6)
	}
	if len(res.Ratios.Partition) > 0 {
		fmt.Printf("partition ratios: %v\n", res.Ratios.Partition[0])
	}
	if res.Ratios.Build != nil {
		fmt.Printf("build ratios:     %v\n", res.Ratios.Build)
	}
	if res.Ratios.Probe != nil {
		fmt.Printf("probe ratios:     %v\n", res.Ratios.Probe)
	}
	fmt.Printf("L2: %d accesses, %d misses (%.0f%%)\n",
		res.Cache.Accesses, res.Cache.Misses, res.Cache.MissRatio()*100)
	fmt.Printf("allocator: %d allocs, %d global atomics, %d local ops\n",
		res.AllocStats.Allocs, res.AllocStats.GlobalAtomics, res.AllocStats.LocalOps)
	hostLine(wall)
}

// runPipeline drives a multi-way join pipeline: the first size generates
// the build relation, every later size a probe of it, all registered in
// the engine's catalog (so the cost-based orderer has ingest statistics)
// with an inline fallback when the catalog budget is too small.
func runPipeline(ctx context.Context, eng *apujoin.Engine, sizes string, declared, materialized bool,
	dist apujoin.Distribution, seed int64, sel float64, opt apujoin.Options, auto bool, workers int) {
	var gens []apujoin.Gen
	for i, f := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("apujoin: -pipeline element %d (%q) is not a positive tuple count", i+1, f)
		}
		gens = append(gens, apujoin.Gen{N: n, Dist: dist, Seed: seed + int64(i)})
	}
	if len(gens) < 2 {
		log.Fatalf("apujoin: -pipeline needs at least 2 comma-separated sizes (got %d)", len(gens))
	}

	sources := make([]apujoin.Source, len(gens))
	registered := true
	for i, g := range gens {
		name := fmt.Sprintf("rel%d", i)
		var err error
		if i == 0 {
			_, err = eng.Register(name, g)
		} else {
			_, err = eng.RegisterProbe(name, "rel0", g, sel)
		}
		if err != nil {
			// Free the partial registrations: the fallback pipeline still
			// charges its intermediates (streamed or materialized) against
			// the same catalog budget, which orphaned registrations would
			// eat into.
			for j := range gens[:i] {
				_ = eng.Drop(fmt.Sprintf("rel%d", j))
			}
			registered = false
			break
		}
		sources[i] = apujoin.Ref(name)
	}
	if !registered {
		// Over the catalog budget: inline sources (declaration order — the
		// orderer has no statistics for inline data).
		r := gens[0].Build()
		sources[0] = apujoin.Inline(r)
		for i, g := range gens[1:] {
			sources[i+1] = apujoin.Inline(g.Probe(r, sel))
		}
		fmt.Println("catalog budget exceeded; running with inline sources (declaration order)")
	}

	opts := []apujoin.JoinOption{apujoin.WithOptions(opt)}
	if auto {
		opts = append(opts, apujoin.WithAuto())
	}
	start := time.Now()
	pr, err := eng.JoinPipeline(ctx, apujoin.Pipeline{Sources: sources, DeclaredOrder: declared, Materialize: materialized}, opts...)
	wall := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}

	how := "declaration order"
	if pr.Ordered {
		how = "cost-based order"
	}
	fmt.Printf("pipeline over %d sources (%s): order %v\n", len(sources), how, pr.Order)
	for i, st := range pr.Steps {
		line := fmt.Sprintf("step %d: %s ⋈ %s (%d ⋈ %d) → %d tuples, %.3f ms",
			i+1, st.Build, st.Probe, st.BuildTuples, st.ProbeTuples, st.OutTuples, st.Result.TotalNS/1e6)
		if st.Plan != nil {
			line += fmt.Sprintf(" [%s-%s, cache %s]", st.Plan.Algo, st.Plan.Scheme, cacheWord(st.Plan.CacheHit))
		}
		fmt.Println(line)
	}
	mode := "streamed"
	if !pr.Streamed {
		mode = "materialized through the catalog"
	}
	fmt.Printf("final: %d matches, %.3f ms simulated across the chain\n", pr.Final.Matches, pr.TotalNS/1e6)
	fmt.Printf("intermediates (%s): %d tuples, %d bytes, peak %d resident\n",
		mode, pr.IntermediateTuples, pr.IntermediateBytes, pr.PeakIntermediateBytes)
	fmt.Printf("host: %v wall-clock with %d worker(s)\n", wall.Round(time.Microsecond), workers)
}

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
