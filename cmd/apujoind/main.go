// Command apujoind serves co-processed hash joins over HTTP/JSON: a
// long-lived multi-query service with one resident worker pool, a relation
// catalog (register data once, join by name), bounded admission with batch
// submission, per-query cancellation and a metrics surface.
//
//	apujoind -addr :8417 -workers 0 -max-concurrent 4 -queue 64
//
// With -shards N the relation catalog partitions by key hash across N
// in-process engine shards behind a stateless router: every join and
// pipeline fans out to all shards and merges deterministically, and the
// results — match counts, simulated times, pipeline peak bytes — are
// bit-identical for any shard count. /v1/stats then reports the aggregate
// catalog plus per-shard gauges under "shard_catalogs".
//
// Every response uses one JSON envelope: successes carry the payload under
// "result", failures carry {"error": {"code", "message"}}. The deprecated
// top-level mirrors of the payload fields and of the HTTP status are gone.
//
// Endpoints (the full wire reference lives in docs/API.md):
//
//	POST   /v1/join        submit a join; {"wait":true} blocks for the result
//	POST   /v1/pipeline    submit a multi-way join pipeline (2..16 sources)
//	POST   /v1/batch       submit many joins in one admission transaction
//	GET    /v1/query?id=   poll one query
//	DELETE /v1/query?id=   cancel one query
//	GET    /v1/queries     list retained queries
//	POST   /v1/relations   register a relation (generate or upload)
//	GET    /v1/relations   list registered relations with their statistics
//	DELETE /v1/relations?name=  refcounted delete
//	GET    /v1/stats       service metrics
//	GET    /healthz        liveness
//
// Example — register once, join by handle:
//
//	curl -s localhost:8417/v1/relations -d '{"name":"orders","n":1048576,"seed":1}'
//	curl -s localhost:8417/v1/relations -d '{"name":"lineitem","probe_of":"orders","n":1048576,"sel":0.5,"seed":2}'
//	curl -s localhost:8417/v1/join -d '{"algo":"phj","scheme":"pl","r_name":"orders","s_name":"lineitem","wait":true}'
//
// Inline generation specs are still accepted:
//
//	curl -s localhost:8417/v1/join -d '{"algo":"auto","r":1048576,"s":1048576,"wait":true}'
//
// To shard across machines instead of in-process, run one apujoind with
// -shards >= 1 per machine and put apujoin-router in front of them; the
// router serves this same /v1 surface (see docs/OPERATIONS.md).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"apujoin/internal/httpapi"
	"apujoin/internal/service"
)

func main() {
	addr := flag.String("addr", ":8417", "listen address")
	workers := flag.Int("workers", 0, "resident pool size (0 = GOMAXPROCS)")
	maxConc := flag.Int("max-concurrent", 0, "queries executing at once (0 = half the pool, min 2)")
	queue := flag.Int("queue", 64, "admission queue capacity")
	keep := flag.Int("keep", 1024, "finished queries retained for polling")
	maxTuples := flag.Int("max-tuples", 1<<24, "largest accepted relation size")
	maxBody := flag.Int64("max-body", 32<<20, "largest accepted request body in bytes")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity for algo=auto queries (0 = default)")
	catalogBytes := flag.Int64("catalog-bytes", 0, "zero-copy budget for registered relations (0 = 512 MB)")
	shards := flag.Int("shards", 0, "partition the relation catalog across this many engine shards (0 = unsharded; results are identical for any value)")
	shardBudget := flag.Int64("shard-budget", 0, "zero-copy budget per shard catalog (0 = split -catalog-bytes evenly)")
	flag.Parse()

	if *workers < 0 {
		log.Fatalf("apujoind: -workers %d is negative; use 0 for GOMAXPROCS", *workers)
	}
	// service.Options treats <= 0 as "use the default", so zero would be
	// silently coerced; reject it rather than surprise the operator.
	if *queue < 1 || *keep < 1 || *maxTuples < 1 || *maxBody < 1 {
		log.Fatalf("apujoind: -queue, -keep, -max-tuples and -max-body must be >= 1")
	}
	if *shards < 0 {
		log.Fatalf("apujoind: -shards %d is negative; use 0 for the unsharded catalog", *shards)
	}
	if *shardBudget != 0 && *shards == 0 {
		log.Fatalf("apujoind: -shard-budget needs -shards")
	}
	if *maxConc == 0 {
		w := *workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		*maxConc = w / 2
		if *maxConc < 2 {
			*maxConc = 2
		}
	}

	svc := service.New(service.Config{
		Workers:       *workers,
		MaxConcurrent: *maxConc,
		MaxQueue:      *queue,
		KeepResults:   *keep,
		PlanCache:     *planCache,
		CatalogBytes:  *catalogBytes,
		Shards:        *shards,
		ShardBudget:   *shardBudget,
	})

	handler := httpapi.New(svc, httpapi.Config{MaxTuples: *maxTuples, MaxBody: *maxBody})
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("apujoind: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	if n := svc.Shards(); n > 0 {
		log.Printf("apujoind: sharded catalog: %d shards (per-shard gauges under /v1/stats shard_catalogs)", n)
	}
	log.Printf("apujoind: listening on %s (%d workers, %d concurrent queries)",
		*addr, svc.Stats().Workers, *maxConc)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain: running queries finish, queued ones are cancelled, the pool
	// stops.
	_ = svc.Close()
	log.Printf("apujoind: drained %d queries, bye", svc.Stats().Completed)
}
