// Command apujoind serves co-processed hash joins over HTTP/JSON: a
// long-lived multi-query service with one resident worker pool, bounded
// admission, per-query cancellation and a metrics surface.
//
//	apujoind -addr :8417 -workers 0 -max-concurrent 4 -queue 64
//
// Endpoints:
//
//	POST /v1/join      submit a join; {"wait":true} blocks for the result
//	GET  /v1/queries   list retained queries
//	GET  /v1/query?id= poll one query
//	GET  /v1/stats     service metrics
//	GET  /healthz      liveness
//
// Example:
//
//	curl -s localhost:8417/v1/join -d '{"algo":"phj","scheme":"pl","r":1048576,"s":1048576,"wait":true}'
//
// With algo=auto the adaptive planner picks algorithm, scheme and ratios
// from a cached workload profile (one pilot per workload shape, then cache
// hits); the response reports the chosen plan and the cache status:
//
//	curl -s localhost:8417/v1/join -d '{"algo":"auto","r":1048576,"s":1048576,"wait":true}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"apujoin/internal/core"
	"apujoin/internal/rel"
	"apujoin/internal/service"
)

// joinRequest is the JSON body of POST /v1/join. Absent fields pick the
// paper's defaults (SHJ, PL, coupled, 1M ⋈ 1M uniform, selectivity 1).
// Sel and Seed are pointers so an explicit 0 — a valid selectivity and a
// valid seed — is distinguishable from "not set".
type joinRequest struct {
	Algo      string   `json:"algo"`   // shj | phj | auto (planner decides algo+scheme)
	Scheme    string   `json:"scheme"` // cpu | gpu | ol | dd | pl | basicunit | coarsepl; ignored with algo=auto
	Arch      string   `json:"arch"`   // coupled | discrete
	R         int      `json:"r"`      // build tuples
	S         int      `json:"s"`      // probe tuples
	Sel       *float64 `json:"sel"`    // selectivity [0,1]
	Skew      string   `json:"skew"`   // uniform | low | high
	Seed      *int64   `json:"seed"`
	Separate  bool     `json:"separate"`
	Grouping  bool     `json:"grouping"`
	Delta     float64  `json:"delta"`
	CountOnly bool     `json:"count_only"`
	// Wait blocks the request until the query finishes and returns the
	// full result; otherwise the response carries the query id to poll.
	Wait bool `json:"wait"`
}

// joinResponse reports a finished (or submitted) query.
type joinResponse struct {
	ID      int64        `json:"id"`
	State   string       `json:"state"`
	Matches int64        `json:"matches,omitempty"`
	TotalMS float64      `json:"total_ms,omitempty"`
	Phases  *phaseReport `json:"phases,omitempty"`
	Plan    *planReport  `json:"plan,omitempty"`
	WallMS  float64      `json:"wall_ms,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// planReport is the planner's decision for an algo=auto query.
type planReport struct {
	Algo        string  `json:"algo"`
	Scheme      string  `json:"scheme"`
	Cache       string  `json:"cache"` // "hit" | "miss"
	PredictedMS float64 `json:"predicted_ms"`
}

type phaseReport struct {
	PartitionMS float64 `json:"partition_ms"`
	BuildMS     float64 `json:"build_ms"`
	ProbeMS     float64 `json:"probe_ms"`
	MergeMS     float64 `json:"merge_ms"`
	TransferMS  float64 `json:"transfer_ms"`
}

func parseRequest(req joinRequest, maxTuples int) (rel.Relation, rel.Relation, core.Options, bool, error) {
	var opt core.Options
	var zero rel.Relation
	var err error

	// algo=auto hands algorithm and scheme to the planner; the service's
	// shared plan cache amortizes the decision across repeated shapes.
	auto := strings.EqualFold(req.Algo, "auto")
	if !auto {
		if opt.Algo, err = core.ParseAlgo(req.Algo); err != nil {
			return zero, zero, opt, false, err
		}
		if opt.Scheme, err = core.ParseScheme(req.Scheme); err != nil {
			return zero, zero, opt, false, err
		}
	} else if req.Scheme != "" {
		return zero, zero, opt, false, fmt.Errorf("algo=auto picks the scheme; drop %q", req.Scheme)
	}
	if opt.Arch, err = core.ParseArch(req.Arch); err != nil {
		return zero, zero, opt, false, err
	}
	dist, err := rel.ParseDistribution(req.Skew)
	if err != nil {
		return zero, zero, opt, false, err
	}

	nr, ns := req.R, req.S
	if nr == 0 {
		nr = 1 << 20
	}
	if ns == 0 {
		ns = 1 << 20
	}
	if nr < 0 || ns < 0 {
		return zero, zero, opt, false, fmt.Errorf("negative relation size r=%d s=%d", nr, ns)
	}
	if nr > maxTuples || ns > maxTuples {
		return zero, zero, opt, false, fmt.Errorf("relation size exceeds -max-tuples %d", maxTuples)
	}
	sel := 1.0
	if req.Sel != nil {
		sel = *req.Sel
	}
	if sel < 0 || sel > 1 {
		return zero, zero, opt, false, fmt.Errorf("selectivity %v out of [0,1]", sel)
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}

	opt.SeparateTables = req.Separate
	opt.Grouping = req.Grouping
	opt.Delta = req.Delta
	opt.CountOnly = req.CountOnly

	r := rel.Gen{N: nr, Dist: dist, Seed: seed}.Build()
	s := rel.Gen{N: ns, Dist: dist, Seed: seed + 1}.Probe(r, sel)
	return r, s, opt, auto, nil
}

func response(q *service.Query) joinResponse {
	info := q.Snapshot()
	resp := joinResponse{ID: info.ID, State: info.State, Error: info.Error}
	if info.Plan != nil {
		cache := "miss"
		if info.Plan.CacheHit {
			cache = "hit"
		}
		resp.Plan = &planReport{
			Algo:        info.Plan.Algo,
			Scheme:      info.Plan.Scheme,
			Cache:       cache,
			PredictedMS: info.Plan.PredictedNS / 1e6,
		}
	}
	if res, err, ok := q.Result(); ok && err == nil && res != nil {
		resp.Matches = res.Matches
		resp.TotalMS = res.TotalNS / 1e6
		resp.Phases = &phaseReport{
			PartitionMS: res.PartitionNS / 1e6,
			BuildMS:     res.BuildNS / 1e6,
			ProbeMS:     res.ProbeNS / 1e6,
			MergeMS:     res.MergeNS / 1e6,
			TransferMS:  res.TransferNS / 1e6,
		}
		resp.WallMS = float64(info.WallNS) / 1e6
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func main() {
	addr := flag.String("addr", ":8417", "listen address")
	workers := flag.Int("workers", 0, "resident pool size (0 = GOMAXPROCS)")
	maxConc := flag.Int("max-concurrent", 0, "queries executing at once (0 = half the pool, min 2)")
	queue := flag.Int("queue", 64, "admission queue capacity")
	keep := flag.Int("keep", 1024, "finished queries retained for polling")
	maxTuples := flag.Int("max-tuples", 1<<24, "largest accepted relation size")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity for algo=auto queries (0 = default)")
	flag.Parse()

	if *workers < 0 {
		log.Fatalf("apujoind: -workers %d is negative; use 0 for GOMAXPROCS", *workers)
	}
	// service.Options treats <= 0 as "use the default", so zero would be
	// silently coerced; reject it rather than surprise the operator.
	if *queue < 1 || *keep < 1 || *maxTuples < 1 {
		log.Fatalf("apujoind: -queue, -keep and -max-tuples must be >= 1")
	}
	if *maxConc == 0 {
		w := *workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		*maxConc = w / 2
		if *maxConc < 2 {
			*maxConc = 2
		}
	}

	svc := service.New(service.Options{
		Workers:       *workers,
		MaxConcurrent: *maxConc,
		MaxQueue:      *queue,
		KeepResults:   *keep,
		PlanCache:     *planCache,
	})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		rr, rs, opt, auto, err := parseRequest(req, *maxTuples)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// The query's lifetime is the service's, not the HTTP request's:
		// a fire-and-poll submission keeps running after this handler
		// returns. A waiting client that disconnects cancels its query.
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		submit := svc.Submit
		if auto {
			submit = svc.SubmitAuto
		}
		q, err := submit(qctx, rr, rs, opt)
		switch {
		case errors.Is(err, service.ErrQueueFull):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, service.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !req.Wait {
			writeJSON(w, http.StatusAccepted, response(q))
			return
		}
		if _, err := q.Wait(r.Context()); err != nil && !errors.Is(err, context.Canceled) {
			writeJSON(w, http.StatusInternalServerError, response(q))
			return
		}
		writeJSON(w, http.StatusOK, response(q))
	})
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
			return
		}
		q, ok := svc.Query(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("query %d not found", id))
			return
		}
		writeJSON(w, http.StatusOK, response(q))
	})
	mux.HandleFunc("GET /v1/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Queries())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("apujoind: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	log.Printf("apujoind: listening on %s (%d workers, %d concurrent queries)",
		*addr, svc.Stats().Workers, *maxConc)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain: running queries finish, queued ones are cancelled, the pool
	// stops.
	_ = svc.Close()
	log.Printf("apujoind: drained %d queries, bye", svc.Stats().Completed)
}
