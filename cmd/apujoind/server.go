package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/rel"
	"apujoin/internal/service"
)

// serverConfig bounds what the HTTP surface accepts.
type serverConfig struct {
	// maxTuples is the largest accepted relation size (generated or
	// uploaded).
	maxTuples int
	// maxBody bounds every request body via http.MaxBytesReader; oversize
	// bodies get a structured 413.
	maxBody int64
}

func (c *serverConfig) setDefaults() {
	if c.maxTuples <= 0 {
		c.maxTuples = 1 << 24
	}
	if c.maxBody <= 0 {
		c.maxBody = 32 << 20
	}
}

// joinRequest is the JSON body of POST /v1/join and each element of a
// batch. A join either references registered relations (r_name/s_name —
// both or neither) or carries an inline generation spec; absent inline
// fields pick the paper's defaults (SHJ, PL, coupled, 1M ⋈ 1M uniform,
// selectivity 1). Sel and Seed are pointers so an explicit 0 — a valid
// selectivity and a valid seed — is distinguishable from "not set".
type joinRequest struct {
	// RName/SName reference relations registered via POST /v1/relations;
	// the service pins both for the query's lifetime and reuses their
	// ingest-time statistics in the planner fingerprint.
	RName string `json:"r_name"`
	SName string `json:"s_name"`

	Algo      string   `json:"algo"`   // shj | phj | auto (planner decides algo+scheme)
	Scheme    string   `json:"scheme"` // cpu | gpu | ol | dd | pl | basicunit | coarsepl; ignored with algo=auto
	Arch      string   `json:"arch"`   // coupled | discrete
	R         int      `json:"r"`      // build tuples (inline generation)
	S         int      `json:"s"`      // probe tuples (inline generation)
	Sel       *float64 `json:"sel"`    // selectivity [0,1]
	Skew      string   `json:"skew"`   // uniform | low | high
	Seed      *int64   `json:"seed"`
	Separate  bool     `json:"separate"`
	Grouping  bool     `json:"grouping"`
	Delta     float64  `json:"delta"`
	CountOnly bool     `json:"count_only"`
	// Wait blocks the request until the query finishes and returns the
	// full result; otherwise the response carries the query id to poll.
	Wait bool `json:"wait"`
}

// maxPipelineSources bounds how many sources one pipeline may join: each
// extra source is a full pairwise join plus a materialized intermediate.
const maxPipelineSources = 16

// pipelineSource is one input of POST /v1/pipeline: a registered relation
// (name) or an inline build-relation generator spec (n, skew, seed,
// key_range — keys a permutation of [1, key_range], so sources generated
// over the same key range join meaningfully).
type pipelineSource struct {
	Name string `json:"name"`

	N        int    `json:"n"`
	Skew     string `json:"skew"`
	Seed     *int64 `json:"seed"`
	KeyRange int    `json:"key_range"`
}

// pipelineRequest is the JSON body of POST /v1/pipeline: a multi-way join
// over 2..maxPipelineSources sources executed as a chain of pairwise joins.
// The per-step options mirror /v1/join; algo=auto lets the planner decide
// each step. Unless declared_order is set, the cost-based orderer picks the
// cheapest left-deep order from the catalog's ingest statistics (inline
// sources carry none and force declaration order).
type pipelineRequest struct {
	Sources       []pipelineSource `json:"sources"`
	Algo          string           `json:"algo"`
	Scheme        string           `json:"scheme"`
	Arch          string           `json:"arch"`
	DeclaredOrder bool             `json:"declared_order"`
	// Materialized routes every intermediate through the catalog (pinned
	// and charged until the pipeline finishes) instead of the default
	// streamed hand-off; results are identical, only the resident footprint
	// differs.
	Materialized bool    `json:"materialized"`
	Separate     bool    `json:"separate"`
	Grouping     bool    `json:"grouping"`
	Delta        float64 `json:"delta"`
	CountOnly    bool    `json:"count_only"`
	Wait         bool    `json:"wait"`
}

// pipelineStepReport is one executed pairwise step of a pipeline response.
type pipelineStepReport struct {
	Build       string      `json:"build"`
	Probe       string      `json:"probe"`
	BuildTuples int         `json:"build_tuples"`
	ProbeTuples int         `json:"probe_tuples"`
	Matches     int64       `json:"matches"`
	TotalMS     float64     `json:"total_ms"`
	Plan        *planReport `json:"plan,omitempty"`
}

// pipelineReport is the pipeline section of a joinResponse: the executed
// order and the per-step breakdown. The enclosing response's matches is the
// final multi-way count and its total_ms sums the serial chain.
type pipelineReport struct {
	Sources            int                  `json:"sources"`
	Ordered            bool                 `json:"ordered"`
	Streamed           bool                 `json:"streamed"`
	Order              []int                `json:"order"`
	Steps              []pipelineStepReport `json:"steps"`
	IntermediateTuples int64                `json:"intermediate_tuples"`
	IntermediateBytes  int64                `json:"intermediate_bytes"`
	// PeakIntermediateBytes is the pipeline's resident intermediate
	// high-water mark: at most one transient intermediate when streamed,
	// every intermediate plus its catalog statistics when materialized.
	PeakIntermediateBytes int64 `json:"peak_intermediate_bytes"`
}

// batchRequest is the JSON body of POST /v1/batch: many joins admitted in
// one transaction (all-or-nothing; a full queue rejects the whole batch).
type batchRequest struct {
	Queries []joinRequest `json:"queries"`
	// Wait blocks until every query of the batch finishes.
	Wait bool `json:"wait"`
}

// batchResponse reports a batch, element i describing Queries[i].
type batchResponse struct {
	Queries []joinResponse `json:"queries"`
}

// relationRequest is the JSON body of POST /v1/relations. Exactly one of
// three forms: a build-relation generator spec (n, skew, seed, key_range),
// a probe generator spec against a registered build relation (probe_of,
// sel plus the generator fields), or a bulk upload (keys, optional rids).
type relationRequest struct {
	Name string `json:"name"`

	// Generator spec.
	N        int    `json:"n"`
	Skew     string `json:"skew"`
	Seed     *int64 `json:"seed"`
	KeyRange int    `json:"key_range"`

	// Probe spec: generate against this registered build relation with
	// the given match selectivity.
	ProbeOf string   `json:"probe_of"`
	Sel     *float64 `json:"sel"`

	// Bulk upload.
	Keys []int32 `json:"keys"`
	RIDs []int32 `json:"rids"`
}

// joinResponse reports a finished (or submitted) query.
type joinResponse struct {
	ID       int64           `json:"id"`
	State    string          `json:"state"`
	Matches  int64           `json:"matches,omitempty"`
	TotalMS  float64         `json:"total_ms,omitempty"`
	Phases   *phaseReport    `json:"phases,omitempty"`
	Plan     *planReport     `json:"plan,omitempty"`
	Pipeline *pipelineReport `json:"pipeline,omitempty"`
	WallMS   float64         `json:"wall_ms,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// planReport is the planner's decision for an algo=auto query.
type planReport struct {
	Algo        string  `json:"algo"`
	Scheme      string  `json:"scheme"`
	Cache       string  `json:"cache"` // "hit" | "miss"
	PredictedMS float64 `json:"predicted_ms"`
}

type phaseReport struct {
	PartitionMS float64 `json:"partition_ms"`
	BuildMS     float64 `json:"build_ms"`
	ProbeMS     float64 `json:"probe_ms"`
	MergeMS     float64 `json:"merge_ms"`
	TransferMS  float64 `json:"transfer_ms"`
}

// parseJoin turns one joinRequest into a service.JoinSpec, generating
// inline data when the request does not reference the catalog.
func parseJoin(req joinRequest, maxTuples int) (service.JoinSpec, error) {
	var spec service.JoinSpec
	var err error

	// algo=auto hands algorithm and scheme to the planner; the service's
	// shared plan cache amortizes the decision across repeated shapes.
	spec.Auto = strings.EqualFold(req.Algo, "auto")
	if !spec.Auto {
		if spec.Opt.Algo, err = core.ParseAlgo(req.Algo); err != nil {
			return spec, err
		}
		if spec.Opt.Scheme, err = core.ParseScheme(req.Scheme); err != nil {
			return spec, err
		}
	} else if req.Scheme != "" {
		return spec, fmt.Errorf("algo=auto picks the scheme; drop %q", req.Scheme)
	}
	if spec.Opt.Arch, err = core.ParseArch(req.Arch); err != nil {
		return spec, err
	}
	spec.Opt.SeparateTables = req.Separate
	spec.Opt.Grouping = req.Grouping
	spec.Opt.Delta = req.Delta
	spec.Opt.CountOnly = req.CountOnly

	if req.RName != "" || req.SName != "" {
		if req.RName == "" || req.SName == "" {
			return spec, fmt.Errorf("set both r_name and s_name or neither (r_name %q, s_name %q)", req.RName, req.SName)
		}
		if req.R != 0 || req.S != 0 || req.Sel != nil || req.Seed != nil || req.Skew != "" {
			return spec, fmt.Errorf("inline generation fields (r, s, sel, seed, skew) conflict with r_name/s_name")
		}
		spec.RName, spec.SName = req.RName, req.SName
		return spec, nil
	}

	dist, err := rel.ParseDistribution(req.Skew)
	if err != nil {
		return spec, err
	}
	nr, ns := req.R, req.S
	if nr == 0 {
		nr = 1 << 20
	}
	if ns == 0 {
		ns = 1 << 20
	}
	if nr < 0 || ns < 0 {
		return spec, fmt.Errorf("negative relation size r=%d s=%d", nr, ns)
	}
	if nr > maxTuples || ns > maxTuples {
		return spec, fmt.Errorf("relation size exceeds -max-tuples %d", maxTuples)
	}
	sel := 1.0
	if req.Sel != nil {
		sel = *req.Sel
	}
	if sel < 0 || sel > 1 {
		return spec, fmt.Errorf("selectivity %v out of [0,1]", sel)
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	spec.R = rel.Gen{N: nr, Dist: dist, Seed: seed}.Build()
	spec.S = rel.Gen{N: ns, Dist: dist, Seed: seed + 1}.Probe(spec.R, sel)
	return spec, nil
}

// parsePipeline turns a pipelineRequest into a service.PipelineSpec,
// resolving names later (admission time) and generating inline sources now.
func parsePipeline(req pipelineRequest, maxTuples int) (service.PipelineSpec, error) {
	var spec service.PipelineSpec
	var err error

	if len(req.Sources) < 2 {
		return spec, fmt.Errorf("a pipeline needs at least 2 sources (got %d)", len(req.Sources))
	}
	if len(req.Sources) > maxPipelineSources {
		return spec, fmt.Errorf("pipeline of %d sources exceeds the limit of %d", len(req.Sources), maxPipelineSources)
	}
	spec.Auto = strings.EqualFold(req.Algo, "auto")
	if !spec.Auto {
		if spec.Opt.Algo, err = core.ParseAlgo(req.Algo); err != nil {
			return spec, err
		}
		if spec.Opt.Scheme, err = core.ParseScheme(req.Scheme); err != nil {
			return spec, err
		}
	} else if req.Scheme != "" {
		return spec, fmt.Errorf("algo=auto picks the scheme; drop %q", req.Scheme)
	}
	if spec.Opt.Arch, err = core.ParseArch(req.Arch); err != nil {
		return spec, err
	}
	spec.Opt.SeparateTables = req.Separate
	spec.Opt.Grouping = req.Grouping
	spec.Opt.Delta = req.Delta
	spec.Opt.CountOnly = req.CountOnly
	spec.DeclaredOrder = req.DeclaredOrder
	spec.Materialized = req.Materialized

	for i, src := range req.Sources {
		if src.Name != "" {
			if src.N != 0 || src.Seed != nil || src.Skew != "" || src.KeyRange != 0 {
				return spec, fmt.Errorf("source %d of %d: generator fields (n, skew, seed, key_range) conflict with name %q",
					i+1, len(req.Sources), src.Name)
			}
			spec.Sources = append(spec.Sources, service.PipelineSource{Name: src.Name})
			continue
		}
		n := src.N
		if n == 0 {
			n = 1 << 20
		}
		if n < 0 {
			return spec, fmt.Errorf("source %d of %d: negative relation size n=%d", i+1, len(req.Sources), n)
		}
		if n > maxTuples {
			return spec, fmt.Errorf("source %d of %d: relation size %d exceeds -max-tuples %d", i+1, len(req.Sources), n, maxTuples)
		}
		if src.KeyRange < 0 || src.KeyRange > maxTuples {
			return spec, fmt.Errorf("source %d of %d: key_range %d out of [0, -max-tuples %d]", i+1, len(req.Sources), src.KeyRange, maxTuples)
		}
		dist, err := rel.ParseDistribution(src.Skew)
		if err != nil {
			return spec, fmt.Errorf("source %d of %d: %w", i+1, len(req.Sources), err)
		}
		seed := int64(42) + int64(i)
		if src.Seed != nil {
			seed = *src.Seed
		}
		g := rel.Gen{N: n, Dist: dist, Seed: seed, KeyRange: src.KeyRange}
		spec.Sources = append(spec.Sources, service.PipelineSource{Rel: g.Build()})
	}
	return spec, nil
}

func response(q *service.Query) joinResponse {
	info := q.Snapshot()
	resp := joinResponse{ID: info.ID, State: info.State, Error: info.Error}
	if info.Plan != nil {
		cache := "miss"
		if info.Plan.CacheHit {
			cache = "hit"
		}
		resp.Plan = &planReport{
			Algo:        info.Plan.Algo,
			Scheme:      info.Plan.Scheme,
			Cache:       cache,
			PredictedMS: info.Plan.PredictedNS / 1e6,
		}
	}
	if res, err, ok := q.Result(); ok && err == nil && res != nil {
		resp.Matches = res.Matches
		resp.TotalMS = res.TotalNS / 1e6
		resp.Phases = &phaseReport{
			PartitionMS: res.PartitionNS / 1e6,
			BuildMS:     res.BuildNS / 1e6,
			ProbeMS:     res.ProbeNS / 1e6,
			MergeMS:     res.MergeNS / 1e6,
			TransferMS:  res.TransferNS / 1e6,
		}
		resp.WallMS = float64(info.WallNS) / 1e6
	}
	if pi := info.Pipeline; pi != nil {
		// For pipelines, total_ms covers the whole serial chain (the
		// Result and its phases describe the final step alone).
		resp.TotalMS = info.SimulatedNS / 1e6
		pr := &pipelineReport{
			Sources:               pi.Sources,
			Ordered:               pi.Ordered,
			Streamed:              pi.Streamed,
			Order:                 pi.Order,
			IntermediateTuples:    pi.IntermediateTuples,
			IntermediateBytes:     pi.IntermediateBytes,
			PeakIntermediateBytes: pi.PeakIntermediateBytes,
		}
		for _, st := range pi.Steps {
			sr := pipelineStepReport{
				Build:       st.Build,
				Probe:       st.Probe,
				BuildTuples: st.BuildTuples,
				ProbeTuples: st.ProbeTuples,
				Matches:     st.Matches,
				TotalMS:     st.SimulatedNS / 1e6,
			}
			if st.Plan != nil {
				cache := "miss"
				if st.Plan.CacheHit {
					cache = "hit"
				}
				sr.Plan = &planReport{
					Algo:        st.Plan.Algo,
					Scheme:      st.Plan.Scheme,
					Cache:       cache,
					PredictedMS: st.Plan.PredictedNS / 1e6,
				}
			}
			pr.Steps = append(pr.Steps, sr)
		}
		resp.Pipeline = pr
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeResult emits the unified success envelope every 2xx response uses:
//
//	{"result": <payload>, ...}
//
// For object payloads, the payload's top-level fields are additionally
// mirrored beside "result" for one release, so clients reading the
// pre-envelope shapes keep working while they migrate to ".result".
//
// Deprecated mirror: the top-level copies of the payload fields will be
// removed in the next release; read everything under "result". Array
// payloads (GET /v1/relations, GET /v1/queries) have no top-level fields
// to mirror — those endpoints now return {"result": [...]} only.
func writeResult(w http.ResponseWriter, status int, v any) {
	body := map[string]any{"result": v}
	if raw, err := json.Marshal(v); err == nil {
		var mirror map[string]json.RawMessage
		if json.Unmarshal(raw, &mirror) == nil {
			for k, val := range mirror {
				if k != "result" && k != "error" {
					body[k] = val
				}
			}
		}
	}
	writeJSON(w, status, body)
}

// writeError emits the unified error envelope every failure path uses:
//
//	{"error": {"code": "...", "message": "..."}, "status": N}
//
// "code" is a stable machine-readable identifier (bad_request, not_found,
// conflict, no_space, queue_full, closed, too_large, unavailable,
// internal); "message" is human-readable. Before the envelope
// unification, "error" was the bare message string — clients still
// matching on it should switch to ".error.code"/".error.message".
//
// Deprecated mirror: the top-level "status" duplicates the HTTP status
// code one release behind; it will be removed in the next release.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{
		"error":  map[string]any{"code": errorCode(status, err), "message": err.Error()},
		"status": status,
	})
}

// errorCode derives the envelope's stable error code: sentinel errors
// first (they carry more intent than the status), the status class
// otherwise.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, service.ErrClosed):
		return "closed"
	case errors.Is(err, catalog.ErrNotFound):
		return "not_found"
	case errors.Is(err, catalog.ErrExists):
		return "conflict"
	case errors.Is(err, catalog.ErrNoSpace):
		return "no_space"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInsufficientStorage:
		return "no_space"
	default:
		return "internal"
	}
}

// readJSON decodes one bounded JSON request body into dst with unknown
// fields rejected, writing the structured 400/413 itself on failure.
func readJSON(w http.ResponseWriter, r *http.Request, maxBody int64, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("bad request body: trailing data after JSON document"))
		return false
	}
	return true
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// newServer builds the HTTP surface over one join service.
//
// Endpoints:
//
//	POST   /v1/join        submit a join; {"wait":true} blocks for the result
//	POST   /v1/pipeline    submit a multi-way join pipeline (2..16 sources)
//	POST   /v1/batch       submit many joins in one admission transaction
//	GET    /v1/query?id=   poll one query
//	DELETE /v1/query?id=   cancel one query
//	GET    /v1/queries     list retained queries
//	POST   /v1/relations   register a relation (generate or upload)
//	GET    /v1/relations   list registered relations with their statistics
//	DELETE /v1/relations?name=  refcounted delete
//	GET    /v1/stats       service metrics
//	GET    /healthz        liveness
func newServer(svc *service.Service, cfg serverConfig) http.Handler {
	cfg.setDefaults()
	mux := http.NewServeMux()

	submit := func(w http.ResponseWriter, r *http.Request, req joinRequest) (*service.Query, bool) {
		spec, err := parseJoin(req, cfg.maxTuples)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return nil, false
		}
		// The query's lifetime is the service's, not the HTTP request's:
		// a fire-and-poll submission keeps running after this handler
		// returns. A waiting client that disconnects cancels its query.
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		q, err := svc.SubmitSpec(qctx, spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return nil, false
		}
		return q, true
	}

	mux.HandleFunc("POST /v1/join", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if !readJSON(w, r, cfg.maxBody, &req) {
			return
		}
		q, ok := submit(w, r, req)
		if !ok {
			return
		}
		if !req.Wait {
			writeResult(w, http.StatusAccepted, response(q))
			return
		}
		if _, err := q.Wait(r.Context()); err != nil && !isCancel(err) {
			writeResult(w, http.StatusInternalServerError, response(q))
			return
		}
		writeResult(w, http.StatusOK, response(q))
	})

	mux.HandleFunc("POST /v1/pipeline", func(w http.ResponseWriter, r *http.Request) {
		var req pipelineRequest
		if !readJSON(w, r, cfg.maxBody, &req) {
			return
		}
		spec, err := parsePipeline(req, cfg.maxTuples)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		q, err := svc.SubmitPipeline(qctx, spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		if !req.Wait {
			writeResult(w, http.StatusAccepted, response(q))
			return
		}
		if _, err := q.Wait(r.Context()); err != nil && !isCancel(err) {
			writeResult(w, http.StatusInternalServerError, response(q))
			return
		}
		writeResult(w, http.StatusOK, response(q))
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if !readJSON(w, r, cfg.maxBody, &req) {
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("batch has no queries"))
			return
		}
		specs := make([]service.JoinSpec, len(req.Queries))
		for i, jr := range req.Queries {
			if jr.Wait {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("query %d of %d: per-query wait is not supported in a batch; set the batch-level wait", i+1, len(req.Queries)))
				return
			}
			spec, err := parseJoin(jr, cfg.maxTuples)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d of %d: %w", i+1, len(req.Queries), err))
				return
			}
			specs[i] = spec
		}
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		qs, err := svc.SubmitBatch(qctx, specs)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		status := http.StatusAccepted
		if req.Wait {
			status = http.StatusOK
			for _, q := range qs {
				if _, err := q.Wait(r.Context()); err != nil && !isCancel(err) {
					status = http.StatusInternalServerError
					break
				}
			}
		}
		resp := batchResponse{Queries: make([]joinResponse, len(qs))}
		for i, q := range qs {
			resp.Queries[i] = response(q)
		}
		writeResult(w, status, resp)
	})

	mux.HandleFunc("POST /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		var req relationRequest
		if !readJSON(w, r, cfg.maxBody, &req) {
			return
		}
		info, err := registerRelation(svc, req, cfg.maxTuples)
		if err != nil {
			writeError(w, relationStatus(err), err)
			return
		}
		writeResult(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, svc.Relations())
	})

	mux.HandleFunc("DELETE /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing ?name="))
			return
		}
		if strings.HasPrefix(name, service.ReservedPrefix) {
			// A pipeline's intermediates are its own: deleting one from
			// outside (in the instant before the pipeline unbinds it
			// itself) would spuriously fail the in-flight pipeline.
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("relation names starting with %q are reserved for pipeline intermediates", service.ReservedPrefix))
			return
		}
		info, err := svc.DropRelation(name)
		if err != nil {
			writeError(w, relationStatus(err), err)
			return
		}
		// Pins report how many in-flight queries still hold the data; the
		// name is unbound either way.
		writeResult(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		q, ok := lookupQuery(w, r, svc)
		if !ok {
			return
		}
		writeResult(w, http.StatusOK, response(q))
	})

	mux.HandleFunc("DELETE /v1/query", func(w http.ResponseWriter, r *http.Request) {
		q, ok := lookupQuery(w, r, svc)
		if !ok {
			return
		}
		// Cancellation is asynchronous: a queued query drops immediately,
		// a running one aborts at its next step boundary. The snapshot
		// reflects whatever state the query has reached by now.
		q.Cancel()
		writeResult(w, http.StatusAccepted, response(q))
	})

	mux.HandleFunc("GET /v1/queries", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, svc.Queries())
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

// lookupQuery resolves ?id= to a retained query, writing the 400/404
// itself when it cannot.
func lookupQuery(w http.ResponseWriter, r *http.Request, svc *service.Service) (*service.Query, bool) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return nil, false
	}
	q, ok := svc.Query(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("query %d not found", id))
		return nil, false
	}
	return q, true
}

// registerRelation dispatches a relationRequest to the service's relation
// surface (the sharded router or the single catalog): bulk upload when
// keys are present, probe generation when probe_of is set, build
// generation otherwise.
func registerRelation(svc *service.Service, req relationRequest, maxTuples int) (catalog.Info, error) {
	if req.Name == "" {
		return catalog.Info{}, errors.New("missing relation name")
	}
	if strings.HasPrefix(req.Name, service.ReservedPrefix) {
		return catalog.Info{}, fmt.Errorf("relation names starting with %q are reserved for pipeline intermediates", service.ReservedPrefix)
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}

	// An explicit "keys" array — even an empty one — is a bulk upload; a
	// generator spec omits the field entirely.
	if req.Keys != nil {
		if req.N != 0 || req.ProbeOf != "" || req.Sel != nil || req.Skew != "" || req.KeyRange != 0 {
			return catalog.Info{}, errors.New("generator fields (n, skew, key_range, probe_of, sel) conflict with keys upload")
		}
		if len(req.Keys) > maxTuples {
			return catalog.Info{}, fmt.Errorf("upload of %d tuples exceeds -max-tuples %d", len(req.Keys), maxTuples)
		}
		rids := req.RIDs
		if rids == nil {
			rids = make([]int32, len(req.Keys))
			for i := range rids {
				rids[i] = int32(i)
			}
		}
		return svc.LoadRelation(req.Name, rel.Relation{RIDs: rids, Keys: req.Keys})
	}
	if req.RIDs != nil {
		return catalog.Info{}, errors.New("rids without keys")
	}

	n := req.N
	if n == 0 {
		n = 1 << 20
	}
	if n < 0 {
		return catalog.Info{}, fmt.Errorf("negative relation size n=%d", n)
	}
	if n > maxTuples {
		return catalog.Info{}, fmt.Errorf("relation size %d exceeds -max-tuples %d", n, maxTuples)
	}
	// The permutation buffer scales with key_range, not n: bound it too,
	// or a tiny request could force a multi-gigabyte allocation.
	if req.KeyRange < 0 || req.KeyRange > maxTuples {
		return catalog.Info{}, fmt.Errorf("key_range %d out of [0, -max-tuples %d]", req.KeyRange, maxTuples)
	}
	dist, err := rel.ParseDistribution(req.Skew)
	if err != nil {
		return catalog.Info{}, err
	}
	g := rel.Gen{N: n, Dist: dist, Seed: seed, KeyRange: req.KeyRange}

	if req.ProbeOf != "" {
		sel := 1.0
		if req.Sel != nil {
			sel = *req.Sel
		}
		if sel < 0 || sel > 1 {
			return catalog.Info{}, fmt.Errorf("selectivity %v out of [0,1]", sel)
		}
		return svc.RegisterProbe(req.Name, req.ProbeOf, g, sel)
	}
	if req.Sel != nil {
		return catalog.Info{}, errors.New("sel without probe_of")
	}
	return svc.RegisterGen(req.Name, g)
}

// relationStatus maps a catalog error to its HTTP status.
func relationStatus(err error) int {
	switch {
	case errors.Is(err, catalog.ErrExists):
		return http.StatusConflict
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, catalog.ErrNoSpace):
		return http.StatusInsufficientStorage
	default:
		return http.StatusBadRequest
	}
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled)
}
