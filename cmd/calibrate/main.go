// Command calibrate dumps the simulator's calibration: the device
// profiles standing in for the A8-3870K's CPU and GPU, the cache model,
// and the per-step unit costs they produce (the reproduction of the
// paper's Fig. 4). Run it after changing device constants to check the
// calibration targets still hold.
package main

import (
	"flag"
	"fmt"
	"os"

	"apujoin/internal/device"
	"apujoin/internal/exp"
	"apujoin/internal/mem"
)

func main() {
	tuples := flag.Int("tuples", 1<<19, "relation size for the unit-cost probe")
	flag.Parse()

	fmt.Println("Device profiles (paper Table 1 + calibration constants):")
	for _, p := range []device.Profile{device.APUCPU(), device.APUGPU(), device.DiscreteGPU()} {
		fmt.Printf("  %-16s %4d lanes × %.1f GHz, IPC %.1f, wavefront %2d | rand hit/miss %.1f/%.1f ns, bw %.0f GB/s, atomic %.0f/%.0f ns\n",
			p.Name, p.Cores, p.ClockGHz, p.IPC, p.WavefrontSize,
			p.RandHitNS, p.RandMissNS, p.BandwidthGBs, p.AtomicNS, p.AtomicSerNS)
	}
	cm := mem.NewCacheModel()
	fmt.Printf("Shared L2: %d MB, %d B lines; zero-copy buffer: 512 MB; PCI-e: 0.015 ms + size/3 GBps\n\n",
		cm.SizeBytes>>20, cm.LineBytes)

	run, _ := exp.Lookup("fig4")
	tab, err := run(exp.Config{Tuples: *tuples})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)

	fmt.Println("Calibration targets (paper Fig. 4):")
	fmt.Println("  - hash steps n1/b1/p1: GPU ≥10x faster")
	fmt.Println("  - key-list walks b3/p3: near parity (divergence cancels the GPU's parallelism)")
	fmt.Println("  - header visits and inserts: GPU moderately ahead")
}
