// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results as artifacts (BENCH_parallel.json, BENCH_service.json) and the
// perf trajectory can be tracked across commits.
//
//	go test -run=NONE -bench=BenchmarkParallelSpeedup -benchmem . | benchjson > BENCH_parallel.json
//
// It fails (exit 1) when no benchmark lines are found, so a renamed or
// broken benchmark breaks CI instead of silently uploading an empty file.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the document written to stdout.
type Report struct {
	GeneratedUnix int64       `json:"generated_unix"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/workers=2-8   3   456789 ns/op   12.34 MB/s   100 B/op   5 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.NsPerOp = v
				ok = true
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.MBPerS = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.AllocsPerOp = v
			}
		}
	}
	return b, ok
}

func main() {
	report := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Benchmarks:    []Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
