// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results as artifacts (BENCH_parallel.json, BENCH_service.json,
// BENCH_plan.json) and the perf trajectory can be tracked across commits.
//
//	go test -run=NONE -bench=BenchmarkParallelSpeedup -benchmem . | benchjson > BENCH_parallel.json
//
// It fails (exit 1) when no benchmark lines are found, so a renamed or
// broken benchmark breaks CI instead of silently uploading an empty file.
//
// With -compare it becomes the CI benchmark-regression gate: it diffs two
// JSON documents — host ns/op, every shared custom metric ending in
// "ns/op" (the deterministic sim_ns/op simulated times in particular) and
// every custom metric ending in "bytes/op" (the deterministic peak_bytes/op
// resident footprints) — and exits non-zero when any metric of a baseline
// benchmark grew by more than its tolerance (fraction, default -tol 0.25;
// -tol-metric unit=frac overrides it per metric and repeats):
//
//	benchjson -compare BENCH_plan.json fresh.json -tol 0.25 -tol-metric peak_bytes/op=0
//
// The diff table goes to stdout and, when $GITHUB_STEP_SUMMARY is set, to
// the job summary as Markdown. Benchmark names are matched with the
// GOMAXPROCS suffix stripped, so baselines recorded on an N-core machine
// gate runs on any other; baseline benchmarks missing from the fresh run
// fail the gate (a renamed benchmark must move its baseline), while fresh
// benchmarks without a baseline are reported but never fail.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom units reported via testing.B.ReportMetric,
	// e.g. "sim_ns/op" for the deterministic simulated time per query.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document written to stdout.
type Report struct {
	GeneratedUnix int64       `json:"generated_unix"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/workers=2-8   3   456789 ns/op   12.34 MB/s   100 B/op   5 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.NsPerOp = v
				ok = true
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.MBPerS = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.AllocsPerOp = v
			}
		default:
			// Custom units from testing.B.ReportMetric (unit strings
			// contain "/"; bare words here would be stray text).
			if unit := fields[i+1]; strings.Contains(unit, "/") {
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if b.Metrics == nil {
						b.Metrics = make(map[string]float64)
					}
					b.Metrics[unit] = v
				}
			}
		}
	}
	return b, ok
}

// procsSuffix is the "-8" GOMAXPROCS suffix go test appends to benchmark
// names on multi-proc machines (and omits when GOMAXPROCS=1).
var procsSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so baselines compare across
// machines with different core counts.
func normalizeName(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

// diffRow is one compared metric of one benchmark.
type diffRow struct {
	Name       string
	Metric     string
	Old, New   float64
	Delta      float64 // fractional change, (new-old)/old
	Regression bool
	Note       string
}

// gatedMetrics lists the comparable metrics of one benchmark: host ns/op,
// every custom metric whose unit ends in "ns/op" (sim_ns/op etc.) and
// every custom metric ending in "bytes/op" (peak_bytes/op etc. — like the
// simulated times, model outputs that are machine-independent and always
// gate). Throughput and host allocation metrics are archived but not
// gated.
func gatedMetrics(b Benchmark) map[string]float64 {
	m := map[string]float64{"ns/op": b.NsPerOp}
	for unit, v := range b.Metrics {
		if strings.HasSuffix(unit, "ns/op") || strings.HasSuffix(unit, "bytes/op") {
			m[unit] = v
		}
	}
	return m
}

// compareReports diffs new against the old baseline. Rows come back in a
// deterministic order (benchmark name, then metric name); regression marks
// a metric that grew beyond its tolerance — metricTol[unit] when set, tol
// otherwise — or a baseline benchmark that disappeared.
//
// Host wall-clock ("ns/op") is machine-dependent, so it gates only when
// both reports come from like machines — GOMAXPROCS equality is the proxy
// the reports carry — and is informational otherwise. The deterministic
// simulated metrics ("sim_ns/op", "peak_bytes/op" etc.) are
// machine-independent and always gate: any drift there is a real model or
// engine change.
func compareReports(oldR, newR Report, tol float64, metricTol map[string]float64) []diffRow {
	gateWall := oldR.GOMAXPROCS == newR.GOMAXPROCS
	newByName := make(map[string]Benchmark, len(newR.Benchmarks))
	for _, b := range newR.Benchmarks {
		newByName[normalizeName(b.Name)] = b
	}
	oldNames := make(map[string]bool, len(oldR.Benchmarks))

	var rows []diffRow
	for _, ob := range oldR.Benchmarks {
		name := normalizeName(ob.Name)
		oldNames[name] = true
		nb, ok := newByName[name]
		if !ok {
			rows = append(rows, diffRow{
				Name: name, Metric: "-", Regression: true,
				Note: "baseline benchmark missing from new run",
			})
			continue
		}
		om, nm := gatedMetrics(ob), gatedMetrics(nb)
		metrics := make([]string, 0, len(om))
		for metric := range om {
			metrics = append(metrics, metric)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			ov := om[metric]
			nv, ok := nm[metric]
			if !ok {
				rows = append(rows, diffRow{
					Name: name, Metric: metric, Old: ov, Regression: true,
					Note: "metric missing from new run",
				})
				continue
			}
			row := diffRow{Name: name, Metric: metric, Old: ov, New: nv}
			mtol, hasMtol := metricTol[metric]
			if !hasMtol {
				mtol = tol
			}
			if ov > 0 {
				row.Delta = (nv - ov) / ov
				row.Regression = row.Delta > mtol
			}
			if metric == "ns/op" && !gateWall {
				row.Regression = false
				row.Note = fmt.Sprintf("informational: wall-clock across unlike machines (gomaxprocs %d vs %d)",
					oldR.GOMAXPROCS, newR.GOMAXPROCS)
			}
			rows = append(rows, row)
		}
	}
	// Fresh benchmarks without a baseline: informational only.
	fresh := make([]string, 0)
	for _, nb := range newR.Benchmarks {
		if name := normalizeName(nb.Name); !oldNames[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		rows = append(rows, diffRow{Name: name, Metric: "-", Note: "no baseline (new benchmark)"})
	}
	return rows
}

func loadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// runCompare executes the -compare mode and returns the process exit code.
func runCompare(oldPath, newPath string, tol float64, metricTol map[string]float64) int {
	old, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newer, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	rows := compareReports(old, newer, tol, metricTol)

	regressions := 0
	var plain, md strings.Builder
	fmt.Fprintf(&plain, "%-45s %-12s %14s %14s %8s  %s\n",
		"benchmark", "metric", "old", "new", "delta", "status")
	md.WriteString(fmt.Sprintf("### Benchmark regression gate (tol %.0f%%)\n\n", tol*100))
	md.WriteString("| benchmark | metric | old | new | delta | status |\n|---|---|---|---|---|---|\n")
	for _, row := range rows {
		status := "ok"
		switch {
		case row.Regression && row.Note != "":
			status, regressions = "FAIL: "+row.Note, regressions+1
		case row.Regression:
			status, regressions = "FAIL", regressions+1
		case row.Note != "":
			status = row.Note
		}
		delta := fmt.Sprintf("%+.1f%%", row.Delta*100)
		if row.Old == 0 {
			delta = "-"
		}
		fmt.Fprintf(&plain, "%-45s %-12s %14.0f %14.0f %8s  %s\n",
			row.Name, row.Metric, row.Old, row.New, delta, status)
		fmt.Fprintf(&md, "| %s | %s | %.0f | %.0f | %s | %s |\n",
			row.Name, row.Metric, row.Old, row.New, delta, status)
	}
	verdict := fmt.Sprintf("%d metrics compared, %d regressions (tolerance %.0f%%)",
		len(rows), regressions, tol*100)
	fmt.Print(plain.String())
	fmt.Println(verdict)
	md.WriteString("\n" + verdict + "\n")

	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			_, _ = f.WriteString(md.String())
			_ = f.Close()
		}
	}
	if regressions > 0 {
		return 1
	}
	return 0
}

// parseArgs handles both "-compare old new -tol 0.25" and
// "-compare -tol 0.25 old new" without the flag package, whose parsing
// stops at the first positional argument. -tol-metric unit=frac repeats
// and overrides -tol for that one metric unit.
func parseArgs(args []string) (compare bool, files []string, tol float64, metricTol map[string]float64, err error) {
	tol = 0.25
	metricTol = make(map[string]float64)
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-compare", "--compare":
			compare = true
		case "-tol", "--tol":
			if i+1 >= len(args) {
				return false, nil, 0, nil, fmt.Errorf("-tol needs a value")
			}
			i++
			tol, err = strconv.ParseFloat(args[i], 64)
			if err != nil || tol < 0 {
				return false, nil, 0, nil, fmt.Errorf("bad -tol %q", args[i])
			}
		case "-tol-metric", "--tol-metric":
			if i+1 >= len(args) {
				return false, nil, 0, nil, fmt.Errorf("-tol-metric needs unit=frac")
			}
			i++
			unit, frac, ok := strings.Cut(args[i], "=")
			if !ok || unit == "" {
				return false, nil, 0, nil, fmt.Errorf("bad -tol-metric %q, want unit=frac", args[i])
			}
			v, perr := strconv.ParseFloat(frac, 64)
			if perr != nil || v < 0 {
				return false, nil, 0, nil, fmt.Errorf("bad -tol-metric %q, want unit=frac", args[i])
			}
			metricTol[unit] = v
		case "-h", "--help":
			return false, nil, 0, nil, fmt.Errorf("usage: benchjson < bench.txt > bench.json\n       benchjson -compare old.json new.json [-tol 0.25] [-tol-metric unit=frac]...")
		default:
			files = append(files, args[i])
		}
	}
	return compare, files, tol, metricTol, nil
}

func main() {
	compare, files, tol, metricTol, err := parseArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if compare {
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(files[0], files[1], tol, metricTol))
	}
	if len(files) != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: file arguments are only valid with -compare")
		os.Exit(2)
	}

	report := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Benchmarks:    []Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
