package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkParallelSpeedup/workers=2-8   \t       3\t  456789 ns/op\t  12.34 MB/s\t     100 B/op\t       5 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkParallelSpeedup/workers=2-8" || b.Runs != 3 {
		t.Fatalf("name/runs: %+v", b)
	}
	if b.NsPerOp != 456789 || b.MBPerS != 12.34 || b.BytesPerOp != 100 || b.AllocsPerOp != 5 {
		t.Fatalf("metrics: %+v", b)
	}

	b, ok = parseLine("BenchmarkServiceThroughput-8  1  98765432 ns/op")
	if !ok || b.NsPerOp != 98765432 {
		t.Fatalf("minimal line: ok=%v %+v", ok, b)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tapujoin\t1.234s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as benchmark", line)
		}
	}
}
