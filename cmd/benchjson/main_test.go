package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkParallelSpeedup/workers=2-8   \t       3\t  456789 ns/op\t  12.34 MB/s\t     100 B/op\t       5 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkParallelSpeedup/workers=2-8" || b.Runs != 3 {
		t.Fatalf("name/runs: %+v", b)
	}
	if b.NsPerOp != 456789 || b.MBPerS != 12.34 || b.BytesPerOp != 100 || b.AllocsPerOp != 5 {
		t.Fatalf("metrics: %+v", b)
	}

	b, ok = parseLine("BenchmarkServiceThroughput-8  1  98765432 ns/op")
	if !ok || b.NsPerOp != 98765432 {
		t.Fatalf("minimal line: ok=%v %+v", ok, b)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tapujoin\t1.234s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as benchmark", line)
		}
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkPlannerAmortization/warm-8   3   26675191 ns/op   78.62 MB/s   1644449 sim_ns/op   211 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Metrics["sim_ns/op"] != 1644449 {
		t.Fatalf("sim_ns/op not captured: %+v", b)
	}
	if b.NsPerOp != 26675191 || b.MBPerS != 78.62 || b.AllocsPerOp != 211 {
		t.Fatalf("standard metrics: %+v", b)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo/workers=2-8": "BenchmarkFoo/workers=2",
		"BenchmarkFoo/workers=2":   "BenchmarkFoo/workers=2",
		"BenchmarkFoo":             "BenchmarkFoo",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareReports(t *testing.T) {
	old := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"sim_ns/op": 500}},
		{Name: "BenchmarkB/sub=1", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 100},
	}}
	fresh := Report{Benchmarks: []Benchmark{
		// Within tolerance on ns/op, regressed on sim_ns/op.
		{Name: "BenchmarkA-8", NsPerOp: 1100, Metrics: map[string]float64{"sim_ns/op": 700}},
		// Faster: never a regression.
		{Name: "BenchmarkB/sub=1-8", NsPerOp: 900},
		// No baseline: informational.
		{Name: "BenchmarkNew-8", NsPerOp: 1},
	}}

	rows := compareReports(old, fresh, 0.25, nil)
	byKey := map[string]diffRow{}
	for _, r := range rows {
		byKey[r.Name+"|"+r.Metric] = r
	}

	if r := byKey["BenchmarkA|ns/op"]; r.Regression || r.Delta < 0.09 || r.Delta > 0.11 {
		t.Errorf("A ns/op: %+v", r)
	}
	if r := byKey["BenchmarkA|sim_ns/op"]; !r.Regression {
		t.Errorf("A sim_ns/op should regress: %+v", r)
	}
	if r := byKey["BenchmarkB/sub=1|ns/op"]; r.Regression {
		t.Errorf("B speedup flagged as regression: %+v", r)
	}
	if r := byKey["BenchmarkGone|-"]; !r.Regression {
		t.Errorf("missing baseline benchmark not flagged: %+v", r)
	}
	if r, ok := byKey["BenchmarkNew|-"]; !ok || r.Regression {
		t.Errorf("fresh benchmark should be informational: %+v", r)
	}

	regressions := 0
	for _, r := range rows {
		if r.Regression {
			regressions++
		}
	}
	if regressions != 2 {
		t.Errorf("%d regressions, want 2 (A sim_ns/op, Gone)", regressions)
	}
}

// TestCompareReportsUnlikeMachines: wall-clock ns/op never gates across
// reports from machines with different GOMAXPROCS; the deterministic sim
// metrics still do.
func TestCompareReportsUnlikeMachines(t *testing.T) {
	old := Report{GOMAXPROCS: 1, Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"sim_ns/op": 500}},
	}}
	fresh := Report{GOMAXPROCS: 4, Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 5000, Metrics: map[string]float64{"sim_ns/op": 700}},
	}}
	rows := compareReports(old, fresh, 0.25, nil)
	for _, r := range rows {
		switch r.Metric {
		case "ns/op":
			if r.Regression {
				t.Errorf("wall ns/op gated across unlike machines: %+v", r)
			}
			if r.Note == "" {
				t.Errorf("wall ns/op row missing informational note: %+v", r)
			}
		case "sim_ns/op":
			if !r.Regression {
				t.Errorf("sim_ns/op regression not gated across unlike machines: %+v", r)
			}
		}
	}
}

// writeReport marshals a Report to a file under dir and returns its path.
func writeReport(t *testing.T, dir, name string, r Report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCompare drives the -compare mode end to end through real files:
// exit 0 when everything is within tolerance, 1 on a regression, 2 on an
// unreadable or malformed report — and the Markdown summary lands in
// $GITHUB_STEP_SUMMARY when set.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"sim_ns/op": 500}},
	}})
	ok := writeReport(t, dir, "ok.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1001, Metrics: map[string]float64{"sim_ns/op": 500}},
	}})
	bad := writeReport(t, dir, "bad.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"sim_ns/op": 900}},
	}})

	summary := filepath.Join(dir, "summary.md")
	t.Setenv("GITHUB_STEP_SUMMARY", summary)
	if code := runCompare(old, ok, 0.25, nil); code != 0 {
		t.Errorf("within-tolerance compare exited %d", code)
	}
	if code := runCompare(old, bad, 0.25, nil); code != 1 {
		t.Errorf("regressed compare exited %d, want 1", code)
	}
	if data, err := os.ReadFile(summary); err != nil || !strings.Contains(string(data), "| benchmark |") {
		t.Errorf("step summary not written: err=%v contents=%q", err, data)
	}

	if code := runCompare(filepath.Join(dir, "absent.json"), ok, 0.25, nil); code != 2 {
		t.Errorf("missing baseline file exited %d, want 2", code)
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(old, garbled, 0.25, nil); code != 2 {
		t.Errorf("malformed report exited %d, want 2", code)
	}
}

func TestParseArgs(t *testing.T) {
	// The documented order: -compare old new -tol 0.25.
	compare, files, tol, _, err := parseArgs([]string{"-compare", "a.json", "b.json", "-tol", "0.5"})
	if err != nil || !compare || tol != 0.5 || len(files) != 2 {
		t.Fatalf("parseArgs: compare=%v files=%v tol=%v err=%v", compare, files, tol, err)
	}
	// Flags-first order works too, and tol defaults to 0.25.
	compare, files, tol, _, err = parseArgs([]string{"-compare", "a", "b"})
	if err != nil || !compare || tol != 0.25 || len(files) != 2 {
		t.Fatalf("parseArgs default tol: compare=%v files=%v tol=%v err=%v", compare, files, tol, err)
	}
	if _, _, _, _, err := parseArgs([]string{"-compare", "a", "b", "-tol", "x"}); err == nil {
		t.Fatal("bad -tol accepted")
	}
	// Repeatable per-metric tolerances.
	_, _, _, mt, err := parseArgs([]string{"-compare", "a", "b",
		"-tol-metric", "peak_bytes/op=0", "-tol-metric", "sim_ns/op=0.1"})
	if err != nil || mt["peak_bytes/op"] != 0 || mt["sim_ns/op"] != 0.1 {
		t.Fatalf("parseArgs -tol-metric: mt=%v err=%v", mt, err)
	}
	for _, bad := range []string{"peak_bytes/op", "=0.1", "peak_bytes/op=x", "peak_bytes/op=-1"} {
		if _, _, _, _, err := parseArgs([]string{"-tol-metric", bad}); err == nil {
			t.Errorf("bad -tol-metric %q accepted", bad)
		}
	}
	if _, _, _, _, err := parseArgs([]string{"-tol-metric"}); err == nil {
		t.Error("-tol-metric without a value accepted")
	}
}

// TestCompareReportsBytesMetrics: custom bytes/op metrics gate like the
// simulated times — machine-independent, so across unlike machines too —
// and a per-metric tolerance of 0 makes any growth a regression while the
// default tolerance still applies to the other metrics.
func TestCompareReportsBytesMetrics(t *testing.T) {
	old := Report{GOMAXPROCS: 1, Benchmarks: []Benchmark{
		{Name: "BenchmarkPipelineStreaming/streamed", NsPerOp: 1000,
			Metrics: map[string]float64{"peak_bytes/op": 1 << 20, "sim_ns/op": 500}},
	}}
	fresh := Report{GOMAXPROCS: 4, Benchmarks: []Benchmark{
		// +0.4% peak bytes, +10% sim time, wall clock way off (unlike machine).
		{Name: "BenchmarkPipelineStreaming/streamed-4", NsPerOp: 9000,
			Metrics: map[string]float64{"peak_bytes/op": 1<<20 + 4200, "sim_ns/op": 550}},
	}}

	rows := compareReports(old, fresh, 0.25, map[string]float64{"peak_bytes/op": 0})
	byMetric := map[string]diffRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["peak_bytes/op"]; !r.Regression {
		t.Errorf("peak_bytes/op growth above its 0 tolerance not gated: %+v", r)
	}
	if r := byMetric["sim_ns/op"]; r.Regression {
		t.Errorf("sim_ns/op within default tolerance flagged: %+v", r)
	}
	if r := byMetric["ns/op"]; r.Regression {
		t.Errorf("wall ns/op gated across unlike machines: %+v", r)
	}

	// Without the per-metric override, the small byte growth passes.
	rows = compareReports(old, fresh, 0.25, nil)
	for _, r := range rows {
		if r.Metric == "peak_bytes/op" && r.Regression {
			t.Errorf("peak_bytes/op within default tolerance flagged: %+v", r)
		}
	}
}
