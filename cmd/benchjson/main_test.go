package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkParallelSpeedup/workers=2-8   \t       3\t  456789 ns/op\t  12.34 MB/s\t     100 B/op\t       5 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkParallelSpeedup/workers=2-8" || b.Runs != 3 {
		t.Fatalf("name/runs: %+v", b)
	}
	if b.NsPerOp != 456789 || b.MBPerS != 12.34 || b.BytesPerOp != 100 || b.AllocsPerOp != 5 {
		t.Fatalf("metrics: %+v", b)
	}

	b, ok = parseLine("BenchmarkServiceThroughput-8  1  98765432 ns/op")
	if !ok || b.NsPerOp != 98765432 {
		t.Fatalf("minimal line: ok=%v %+v", ok, b)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tapujoin\t1.234s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as benchmark", line)
		}
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkPlannerAmortization/warm-8   3   26675191 ns/op   78.62 MB/s   1644449 sim_ns/op   211 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Metrics["sim_ns/op"] != 1644449 {
		t.Fatalf("sim_ns/op not captured: %+v", b)
	}
	if b.NsPerOp != 26675191 || b.MBPerS != 78.62 || b.AllocsPerOp != 211 {
		t.Fatalf("standard metrics: %+v", b)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo/workers=2-8": "BenchmarkFoo/workers=2",
		"BenchmarkFoo/workers=2":   "BenchmarkFoo/workers=2",
		"BenchmarkFoo":             "BenchmarkFoo",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareReports(t *testing.T) {
	old := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"sim_ns/op": 500}},
		{Name: "BenchmarkB/sub=1", NsPerOp: 2000},
		{Name: "BenchmarkGone", NsPerOp: 100},
	}}
	fresh := Report{Benchmarks: []Benchmark{
		// Within tolerance on ns/op, regressed on sim_ns/op.
		{Name: "BenchmarkA-8", NsPerOp: 1100, Metrics: map[string]float64{"sim_ns/op": 700}},
		// Faster: never a regression.
		{Name: "BenchmarkB/sub=1-8", NsPerOp: 900},
		// No baseline: informational.
		{Name: "BenchmarkNew-8", NsPerOp: 1},
	}}

	rows := compareReports(old, fresh, 0.25)
	byKey := map[string]diffRow{}
	for _, r := range rows {
		byKey[r.Name+"|"+r.Metric] = r
	}

	if r := byKey["BenchmarkA|ns/op"]; r.Regression || r.Delta < 0.09 || r.Delta > 0.11 {
		t.Errorf("A ns/op: %+v", r)
	}
	if r := byKey["BenchmarkA|sim_ns/op"]; !r.Regression {
		t.Errorf("A sim_ns/op should regress: %+v", r)
	}
	if r := byKey["BenchmarkB/sub=1|ns/op"]; r.Regression {
		t.Errorf("B speedup flagged as regression: %+v", r)
	}
	if r := byKey["BenchmarkGone|-"]; !r.Regression {
		t.Errorf("missing baseline benchmark not flagged: %+v", r)
	}
	if r, ok := byKey["BenchmarkNew|-"]; !ok || r.Regression {
		t.Errorf("fresh benchmark should be informational: %+v", r)
	}

	regressions := 0
	for _, r := range rows {
		if r.Regression {
			regressions++
		}
	}
	if regressions != 2 {
		t.Errorf("%d regressions, want 2 (A sim_ns/op, Gone)", regressions)
	}
}

// TestCompareReportsUnlikeMachines: wall-clock ns/op never gates across
// reports from machines with different GOMAXPROCS; the deterministic sim
// metrics still do.
func TestCompareReportsUnlikeMachines(t *testing.T) {
	old := Report{GOMAXPROCS: 1, Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"sim_ns/op": 500}},
	}}
	fresh := Report{GOMAXPROCS: 4, Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 5000, Metrics: map[string]float64{"sim_ns/op": 700}},
	}}
	rows := compareReports(old, fresh, 0.25)
	for _, r := range rows {
		switch r.Metric {
		case "ns/op":
			if r.Regression {
				t.Errorf("wall ns/op gated across unlike machines: %+v", r)
			}
			if r.Note == "" {
				t.Errorf("wall ns/op row missing informational note: %+v", r)
			}
		case "sim_ns/op":
			if !r.Regression {
				t.Errorf("sim_ns/op regression not gated across unlike machines: %+v", r)
			}
		}
	}
}

func TestParseArgs(t *testing.T) {
	// The documented order: -compare old new -tol 0.25.
	compare, files, tol, err := parseArgs([]string{"-compare", "a.json", "b.json", "-tol", "0.5"})
	if err != nil || !compare || tol != 0.5 || len(files) != 2 {
		t.Fatalf("parseArgs: compare=%v files=%v tol=%v err=%v", compare, files, tol, err)
	}
	// Flags-first order works too, and tol defaults to 0.25.
	compare, files, tol, err = parseArgs([]string{"-compare", "a", "b"})
	if err != nil || !compare || tol != 0.25 || len(files) != 2 {
		t.Fatalf("parseArgs default tol: compare=%v files=%v tol=%v err=%v", compare, files, tol, err)
	}
	if _, _, _, err := parseArgs([]string{"-compare", "a", "b", "-tol", "x"}); err == nil {
		t.Fatal("bad -tol accepted")
	}
}
