package cost

import (
	"math"
	"math/rand"
	"sort"

	"apujoin/internal/sched"
)

// DefaultDelta is the ratio grid granularity the paper uses (δ = 0.02,
// "a tradeoff between the effectiveness and the execution time of
// optimizations").
const DefaultDelta = 0.02

// gridValues returns the candidate ratios 0, δ, 2δ, …, 1.
func gridValues(delta float64) []float64 {
	if delta <= 0 || delta > 1 {
		delta = DefaultDelta
	}
	var vs []float64
	for v := 0.0; v < 1.0+1e-9; v += delta {
		if v > 1 {
			v = 1
		}
		vs = append(vs, v)
	}
	if vs[len(vs)-1] < 1 {
		vs = append(vs, 1)
	}
	return vs
}

// OptimizePL exhaustively searches the δ-grid over all per-step ratios —
// the paper's approach ("we consider all the possible ratios at the step
// of δ for r_i") — and returns the ratios with the lowest estimated time.
//
// The search space is |grid|^n; with δ=0.02 and a 4-step series that is
// 51^4 ≈ 6.8M evaluations, which the closed-form model evaluates in well
// under a minute. Callers with tighter budgets pass a coarser δ and refine
// with OptimizePLRefined.
func (m *Model) OptimizePL(sp SeriesProfile, items int, delta float64) (sched.Ratios, float64) {
	vs := gridValues(delta)
	n := len(sp.Steps)
	cur := make(sched.Ratios, n)
	best := make(sched.Ratios, n)
	bestT := math.Inf(1)

	var rec func(step int)
	rec = func(step int) {
		if step == n {
			t := m.EstimateNS(sp, items, cur)
			if t < bestT {
				bestT = t
				copy(best, cur)
			}
			return
		}
		for _, v := range vs {
			cur[step] = v
			rec(step + 1)
		}
	}
	rec(0)
	return best, bestT
}

// OptimizePLRefined runs a coarse grid pass followed by coordinate descent
// at the requested δ. It finds the same optima as the full grid on the
// well-behaved cost surfaces of the hash join series at a fraction of the
// evaluations, and is what the join driver uses by default.
func (m *Model) OptimizePLRefined(sp SeriesProfile, items int, delta float64) (sched.Ratios, float64) {
	n := len(sp.Steps)
	coarse := 0.1
	if delta > coarse {
		coarse = delta
	}
	best, bestT := m.OptimizePL(sp, items, coarse)

	vs := gridValues(delta)
	improved := true
	for iter := 0; improved && iter < 32; iter++ {
		improved = false
		for step := 0; step < n; step++ {
			orig := best[step]
			for _, v := range vs {
				if v == orig {
					continue
				}
				best[step] = v
				if t := m.EstimateNS(sp, items, best); t < bestT {
					bestT = t
					orig = v
					improved = true
				} else {
					best[step] = orig
				}
			}
			best[step] = orig
		}
	}
	return best, bestT
}

// OptimizeDD searches the single-ratio space of the data-dividing scheme:
// all steps share one ratio r.
func (m *Model) OptimizeDD(sp SeriesProfile, items int, delta float64) (float64, float64) {
	bestR, bestT := 0.0, math.Inf(1)
	for _, v := range gridValues(delta) {
		t := m.EstimateNS(sp, items, sched.Uniform(v, len(sp.Steps)))
		if t < bestT {
			bestT = t
			bestR = v
		}
	}
	return bestR, bestT
}

// OptimizeOL decides, per step, whether it runs entirely on the CPU or the
// GPU — the off-loading scheme. On the coupled architecture the decision is
// independent per step ("depending only on the performance comparison of
// running the steps on the CPU and the GPU", Sec. 3.2), so the search is
// linear rather than 2^n.
func (m *Model) OptimizeOL(sp SeriesProfile, items int) (sched.Ratios, float64) {
	n := len(sp.Steps)
	ratios := make(sched.Ratios, n)
	cpuDev, gpuDev := newDevPair(m)
	for i, p := range sp.Steps {
		tc := m.stepTime(p, m.CPU, cpuDev, float64(items))
		tg := m.stepTime(p, m.GPU, gpuDev, float64(items))
		if tc < tg {
			ratios[i] = 1
		} else {
			ratios[i] = 0
		}
	}
	return ratios, m.EstimateNS(sp, items, ratios)
}

// MonteCarloSample is one randomized PL configuration and its estimate.
type MonteCarloSample struct {
	Ratios sched.Ratios
	NS     float64
}

// MonteCarlo evaluates runs random ratio settings (paper Sec. 5.3, Fig. 9)
// and returns the samples sorted by estimated time, ready for a CDF.
func (m *Model) MonteCarlo(sp SeriesProfile, items, runs int, seed int64) []MonteCarloSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MonteCarloSample, 0, runs)
	n := len(sp.Steps)
	for k := 0; k < runs; k++ {
		r := make(sched.Ratios, n)
		for i := range r {
			r[i] = float64(rng.Intn(51)) / 50 // δ=0.02 grid, uniform
		}
		out = append(out, MonteCarloSample{Ratios: r, NS: m.EstimateNS(sp, items, r)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NS < out[j].NS })
	return out
}
