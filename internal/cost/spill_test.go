package cost

import (
	"testing"

	"apujoin/internal/device"
)

// The simulated spill store is pure byte arithmetic: a seek per run open
// plus bytes over the direction's sequential bandwidth, reads faster than
// writes, and a round trip exactly the sum of the two.
func TestSpillCostModel(t *testing.T) {
	if got := SpillWriteNS(0); got != SpillSeekNS {
		t.Errorf("SpillWriteNS(0) = %v, want the bare seek %v", got, SpillSeekNS)
	}
	if got := SpillReadNS(0); got != SpillSeekNS {
		t.Errorf("SpillReadNS(0) = %v, want the bare seek %v", got, SpillSeekNS)
	}
	const b = 1 << 20
	w, r := SpillWriteNS(b), SpillReadNS(b)
	if want := SpillSeekNS + b/SpillWriteBytesPerNS; w != want {
		t.Errorf("SpillWriteNS(%d) = %v, want %v", int64(b), w, want)
	}
	if want := SpillSeekNS + b/SpillReadBytesPerNS; r != want {
		t.Errorf("SpillReadNS(%d) = %v, want %v", int64(b), r, want)
	}
	if r >= w {
		t.Errorf("read (%v) should be modeled faster than write (%v)", r, w)
	}
	if rt := SpillRoundTripNS(b); rt != w+r {
		t.Errorf("SpillRoundTripNS = %v, want write+read = %v", rt, w+r)
	}
	if SpillWriteNS(2*b) <= w || SpillReadNS(2*b) <= r {
		t.Error("spill costs are not monotone in bytes")
	}
	// The calibration the hybrid strategy depends on: spilling a byte must
	// cost more than any in-memory device moves it, or the planner would
	// never prefer residency.
	for _, dp := range []device.Profile{device.APUCPU(), device.APUGPU(), device.DiscreteGPU()} {
		if SpillWriteBytesPerNS >= dp.BandwidthGBs {
			t.Errorf("spill write bandwidth %v not below %s memory bandwidth %v",
				SpillWriteBytesPerNS, dp.Name, dp.BandwidthGBs)
		}
	}
}
