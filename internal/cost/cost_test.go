package cost

import (
	"math"
	"testing"
	"testing/quick"

	"apujoin/internal/device"
	"apujoin/internal/sched"
)

func testModel() *Model {
	return &Model{
		CPU: device.APUCPU(),
		GPU: device.APUGPU(),
		Env: sched.FixedEnv(device.UniformEnv(0.8)),
	}
}

// computeProfile: a pure-compute step (GPU-friendly).
func computeProfile() StepProfile {
	return StepProfile{ID: sched.B1, InstrPerItem: 60, SeqBytesPerItem: 8, DivFactor: 1}
}

// chaseProfile: a random-access, divergent step (CPU-friendly).
func chaseProfile() StepProfile {
	p := StepProfile{ID: sched.B3, InstrPerItem: 20, SeqBytesPerItem: 12, DivFactor: 2.8}
	p.RandPerItem[device.RegionHashTable] = 1.6
	return p
}

func TestEstimateMonotoneDominance(t *testing.T) {
	// Ratio 0 (all GPU) of a compute step must beat ratio 1 (all CPU).
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{computeProfile()}}
	gpu := m.EstimateNS(sp, 1<<20, sched.Ratios{0})
	cpu := m.EstimateNS(sp, 1<<20, sched.Ratios{1})
	if gpu >= cpu {
		t.Fatalf("compute step: GPU %v not faster than CPU %v", gpu, cpu)
	}
}

func TestDivergenceSteersChaseStepToCPU(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{chaseProfile()}}
	r, _ := m.OptimizeDD(sp, 1<<20, 0.05)
	if r < 0.3 {
		t.Fatalf("divergent chase step should lean CPU, got ratio %v", r)
	}
}

func TestEstimateAgreesWithManualEq3(t *testing.T) {
	// Single step, CPU only: T = (instr+overhead)/throughput + seq + rand.
	m := testModel()
	p := computeProfile()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{p}}
	items := 1 << 20
	est, err := m.Estimate(sp, items, sched.Ratios{1})
	if err != nil {
		t.Fatal(err)
	}
	cpu := device.APUCPU()
	want := (p.InstrPerItem+float64(cpu.PerItemInstr))*float64(items)/cpu.InstrThroughput() +
		p.SeqBytesPerItem*float64(items)/cpu.BandwidthGBs + cpu.LaunchNS
	if math.Abs(est.CPUNS-want)/want > 1e-9 {
		t.Fatalf("Eq.3 mismatch: %v want %v", est.CPUNS, want)
	}
}

func TestEstimateNSMatchesEstimate(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{computeProfile(), chaseProfile()}}
	f := func(r0, r1 float64) bool {
		rr := sched.Ratios{frac(r0), frac(r1)}
		e, err := m.Estimate(sp, 100000, rr)
		if err != nil {
			return false
		}
		return math.Abs(e.TotalNS-m.EstimateNS(sp, 100000, rr)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func frac(x float64) float64 {
	x = math.Abs(x)
	return x - math.Floor(x)
}

func TestOptimizePLNeverWorseThanDDOrOL(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{
		computeProfile(), chaseProfile(), computeProfile(), chaseProfile(),
	}}
	_, pl := m.OptimizePL(sp, 1<<20, 0.1)
	_, dd := m.OptimizeDD(sp, 1<<20, 0.1)
	_, ol := m.OptimizeOL(sp, 1<<20)
	if pl > dd+1e-6 || pl > ol+1e-6 {
		t.Fatalf("PL (%v) worse than DD (%v) or OL (%v): impossible, they are special cases", pl, dd, ol)
	}
}

func TestOptimizePLRefinedCloseToFullGrid(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{
		computeProfile(), chaseProfile(), chaseProfile(),
	}}
	_, full := m.OptimizePL(sp, 1<<20, 0.05)
	_, refined := m.OptimizePLRefined(sp, 1<<20, 0.05)
	if refined > full*1.05 {
		t.Fatalf("refined search %v much worse than full grid %v", refined, full)
	}
}

func TestOptimizeOLPicksFasterDevicePerStep(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{computeProfile(), chaseProfile()}}
	ratios, _ := m.OptimizeOL(sp, 1<<20)
	if ratios[0] != 0 {
		t.Fatalf("compute step should offload to GPU, ratio %v", ratios[0])
	}
	for _, r := range ratios {
		if r != 0 && r != 1 {
			t.Fatalf("OL ratio %v not in {0,1}", r)
		}
	}
}

func TestMonteCarloSortedAndBounded(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{computeProfile(), chaseProfile()}}
	samples := m.MonteCarlo(sp, 1<<20, 200, 7)
	if len(samples) != 200 {
		t.Fatalf("samples %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].NS < samples[i-1].NS {
			t.Fatal("samples not sorted")
		}
	}
	// The optimizer must be at least as good as the best random sample.
	_, best := m.OptimizePLRefined(sp, 1<<20, 0.02)
	if best > samples[0].NS*1.02 {
		t.Fatalf("optimized %v worse than best Monte Carlo %v", best, samples[0].NS)
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{computeProfile()}}
	a := m.MonteCarlo(sp, 1<<10, 50, 3)
	b := m.MonteCarlo(sp, 1<<10, 50, 3)
	for i := range a {
		if a[i].NS != b[i].NS {
			t.Fatal("Monte Carlo not deterministic under fixed seed")
		}
	}
}

func TestProfileResultDividesByItems(t *testing.T) {
	var res sched.Result
	var st sched.StepResult
	st.ID = sched.P3
	st.CPUAcct = device.Acct{Items: 500, Instr: 5000, SeqBytes: 4000}
	st.CPUAcct.Rand[device.RegionHashTable] = 750
	st.GPUAcct = device.Acct{Items: 500, Instr: 5000, DivWork: 500, DivMaxWork: 1500}
	res.Steps = []sched.StepResult{st}
	sp := ProfileResult(res, 1000)
	p := sp.Steps[0]
	if p.InstrPerItem != 10 || p.SeqBytesPerItem != 4 {
		t.Fatalf("per-item division wrong: %+v", p)
	}
	if p.RandPerItem[device.RegionHashTable] != 0.75 {
		t.Fatalf("rand per item %v", p.RandPerItem[device.RegionHashTable])
	}
	if p.DivFactor != 3 {
		t.Fatalf("div factor %v, want 3", p.DivFactor)
	}
}

func TestEstimateValidatesRatios(t *testing.T) {
	m := testModel()
	sp := SeriesProfile{Name: "s", Steps: []StepProfile{computeProfile()}}
	if _, err := m.Estimate(sp, 10, sched.Ratios{0.5, 0.5}); err == nil {
		t.Fatal("ratio count mismatch accepted")
	}
	if !math.IsInf(m.EstimateNS(sp, 10, sched.Ratios{}), 1) {
		t.Fatal("EstimateNS should return +Inf on mismatch")
	}
}

func TestGridValues(t *testing.T) {
	vs := gridValues(0.25)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(vs) != len(want) {
		t.Fatalf("grid %v", vs)
	}
	for i := range want {
		if math.Abs(vs[i]-want[i]) > 1e-9 {
			t.Fatalf("grid %v", vs)
		}
	}
	// Degenerate δ falls back to the default.
	if len(gridValues(0)) != 51 {
		t.Fatalf("default grid size %d, want 51", len(gridValues(0)))
	}
}
