package cost

import (
	"math"
	"testing"

	"apujoin/internal/device"
	"apujoin/internal/sched"
)

// TestModelMatchesExecutorWithoutLocks is the central consistency invariant
// between the two layers: for a kernel with no atomics and no divergence,
// the cost model's estimate must equal the executor's simulated time (both
// see the same environment), because the model only omits lock contention
// and divergence.
func TestModelMatchesExecutorWithoutLocks(t *testing.T) {
	const items = 100000
	env := sched.FixedEnv(device.UniformEnv(0.7))

	kernel := func(d *device.Device, lo, hi int) device.Acct {
		var a device.Acct
		n := int64(hi - lo)
		a.Items = n
		a.Instr = n * 45
		a.SeqBytes = n * 12
		a.Rand[device.RegionHashTable] = n * 2
		return a
	}
	series := sched.Series{
		Name:  "synthetic",
		Items: items,
		Steps: []sched.Step{{ID: sched.P2, Kernel: kernel}, {ID: sched.P3, Kernel: kernel}},
	}

	exec := sched.New(env)
	ratios := sched.Ratios{0.4, 0.7}
	res, err := exec.Run(series, ratios)
	if err != nil {
		t.Fatal(err)
	}

	prof := ProfileResult(res, items)
	m := &Model{CPU: device.APUCPU(), GPU: device.APUGPU(), Env: env}
	est, err := m.Estimate(prof, items, ratios)
	if err != nil {
		t.Fatal(err)
	}

	if rel := math.Abs(est.TotalNS-res.TotalNS) / res.TotalNS; rel > 0.02 {
		t.Fatalf("model %.0fns vs executor %.0fns: %.1f%% apart (should agree without locks)",
			est.TotalNS, res.TotalNS, rel*100)
	}
}

// TestModelUnderestimatesWithAtomics: once the kernel issues contended
// atomics, the executor charges them and the model (by design) does not,
// so measured > estimated — the "lock overhead" the paper back-derives.
func TestModelUnderestimatesWithAtomics(t *testing.T) {
	const items = 100000
	env := sched.FixedEnv(device.UniformEnv(0.7))
	kernel := func(d *device.Device, lo, hi int) device.Acct {
		var a device.Acct
		n := int64(hi - lo)
		a.Items = n
		a.Instr = n * 45
		a.AtomicOps = n
		a.AtomicTargets = 4 // heavy contention
		a.AllocAtomics = n / 10
		return a
	}
	series := sched.Series{Name: "atomics", Items: items,
		Steps: []sched.Step{{ID: sched.B4, Kernel: kernel}}}
	exec := sched.New(env)
	ratios := sched.Ratios{0.3}
	res, err := exec.Run(series, ratios)
	if err != nil {
		t.Fatal(err)
	}
	prof := ProfileResult(res, items)
	m := &Model{CPU: device.APUCPU(), GPU: device.APUGPU(), Env: env}
	if est := m.EstimateNS(prof, items, ratios); est >= res.TotalNS {
		t.Fatalf("model %.0fns not below executor %.0fns despite excluded locks", est, res.TotalNS)
	}
}

// TestDelaysZeroForSingleDeviceRuns: CPU-only and GPU-only runs can never
// stall on cross-device dependencies.
func TestDelaysZeroForSingleDeviceRuns(t *testing.T) {
	for _, r := range []float64{0, 1} {
		cpu := []float64{10, 20, 30, 40}
		gpu := []float64{40, 30, 20, 10}
		_, _, dC, dG := sched.Delays(cpu, gpu, sched.Uniform(r, 4))
		for i := range dC {
			if dC[i] != 0 || dG[i] != 0 {
				t.Fatalf("ratio %v: delay at step %d", r, i)
			}
		}
	}
}
