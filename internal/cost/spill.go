package cost

// Simulated spill-store model: the hybrid-hash spill path writes partition
// inputs to a simulated sequential store and reads them back when the
// partition is processed. Like every other quantity in the simulation the
// charges are pure functions of byte counts — no wall clock is ever read —
// so spilled executions keep the bit-identical determinism contract.
//
// The bandwidths are calibrated an order of magnitude below the device
// profiles' memory bandwidth: spilling must cost enough that the planner's
// in-memory estimates stay preferable whenever the budget allows, which is
// the asymmetry the hybrid strategy (resident prefix, spilled tail) exists
// to exploit. Reads are modeled faster than writes, as on the SSDs the
// hybrid-hash literature assumes.
const (
	// SpillWriteBytesPerNS and SpillReadBytesPerNS are the store's
	// simulated sequential bandwidths in bytes per nanosecond (= GB/s).
	SpillWriteBytesPerNS = 1.6
	SpillReadBytesPerNS  = 3.2
	// SpillSeekNS is the fixed simulated latency of opening one partition
	// run, charged once per write and once per read-back.
	SpillSeekNS = 100_000.0
)

// SpillWriteNS is the simulated cost of writing one partition run of the
// given size to the spill store.
func SpillWriteNS(bytes int64) float64 {
	return SpillSeekNS + float64(bytes)/SpillWriteBytesPerNS
}

// SpillReadNS is the simulated cost of reading one partition run back.
func SpillReadNS(bytes int64) float64 {
	return SpillSeekNS + float64(bytes)/SpillReadBytesPerNS
}

// SpillRoundTripNS is the full simulated cost a spilled partition pays:
// its inputs are written out once and read back once.
func SpillRoundTripNS(bytes int64) float64 {
	return SpillWriteNS(bytes) + SpillReadNS(bytes)
}
