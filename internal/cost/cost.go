// Package cost implements the paper's performance model (Sec. 4): an
// abstract model for pipelined co-processing over a step series,
// instantiated per algorithm by profiling, and used to pick the workload
// ratios that minimize estimated elapsed time.
//
// The abstract model estimates, for each step i with CPU ratio r_i over x_i
// items (Table 2 notation):
//
//	T^i_XPU = C^i_XPU + M^i_XPU + D^i_XPU          (Eq. 2)
//	C^i_XPU = #I^i_XPU × r_i × x_i / IPC_XPU        (Eq. 3)
//	M^i_XPU = calibrated memory unit cost × r_i × x_i
//	D^i_XPU from the pipelined-delay equations      (Eqs. 4, 5)
//	T = max(T_CPU, T_GPU)                           (Eq. 1)
//
// Exactly like the paper's model, it deliberately excludes lock contention
// and SIMD divergence; the gap between its estimate and the detailed
// simulation is the "lock overhead" the paper back-derives in Sec. 5.4.
package cost

import (
	"fmt"
	"math"

	"apujoin/internal/device"
	"apujoin/internal/sched"
)

// StepProfile holds the calibrated per-item unit costs of one step — the
// model inputs the paper obtains from AMD CodeXL/APP Profiler (instruction
// counts) and the Manegold/He calibration method (memory unit costs).
// Workload-dependent steps (b3/p3: cost ∝ key-list length; p4: ∝ matches)
// are captured the paper's way: unit cost per key search × average number
// of keys, folded into the per-item averages during profiling.
type StepProfile struct {
	ID              sched.StepID
	InstrPerItem    float64
	SeqBytesPerItem float64
	RandPerItem     [device.NumRegions]float64
	OutBytesPerItem int64
	// DivFactor is the profiled SIMD divergence of the step on the GPU
	// (≥1). The paper's per-device calibration absorbs divergence into the
	// per-step unit costs — only lock contention is excluded from the
	// model — so the profile carries it too.
	DivFactor float64
}

// SeriesProfile is the calibrated profile of a whole step series.
type SeriesProfile struct {
	Name  string
	Steps []StepProfile
}

// ProfileResult derives a SeriesProfile from an executed series: total
// accounting divided by items profiled. This mirrors feeding profiler
// output into the model; the pilot run plays the role of the profiler.
func ProfileResult(r sched.Result, items int) SeriesProfile {
	sp := SeriesProfile{Name: r.Name, Steps: make([]StepProfile, len(r.Steps))}
	if items <= 0 {
		return sp
	}
	n := float64(items)
	for i, st := range r.Steps {
		var a device.Acct
		a.Add(st.CPUAcct)
		a.Add(st.GPUAcct)
		p := StepProfile{ID: st.ID}
		p.InstrPerItem = float64(a.Instr) / n
		p.SeqBytesPerItem = float64(a.SeqBytes) / n
		for reg := device.Region(0); reg < device.NumRegions; reg++ {
			p.RandPerItem[reg] = float64(a.Rand[reg]) / n
		}
		p.DivFactor = st.GPUAcct.DivergenceFactor()
		if p.DivFactor < 1 {
			p.DivFactor = 1
		}
		sp.Steps[i] = p
	}
	return sp
}

// Model evaluates the abstract model for one series on a device pair.
type Model struct {
	CPU device.Profile
	GPU device.Profile
	// Env supplies the cache hit ratios per step, shared with the
	// execution simulator so both see the same memory environment.
	Env sched.EnvFor

	cpuDev, gpuDev *device.Device
	// Scratch buffers reused by EstimateNS in optimizer loops.
	cpuScratch, gpuScratch []float64
}

// newDevPair returns (and caches on first use) the model's device handles;
// the optimizer calls Estimate millions of times, so they are not rebuilt
// per evaluation. Model values are therefore used via pointer once a
// search starts; the zero devices are rebuilt transparently after copying.
func newDevPair(m *Model) (*device.Device, *device.Device) {
	if m.cpuDev == nil || m.cpuDev.Name != m.CPU.Name {
		m.cpuDev = device.New(m.CPU)
		m.gpuDev = device.New(m.GPU)
	}
	return m.cpuDev, m.gpuDev
}

// stepTime estimates one step's time on one device: computation (Eq. 3)
// plus calibrated memory cost. Atomics and divergence are excluded by
// design.
func (m *Model) stepTime(p StepProfile, dp device.Profile, dev *device.Device, items float64) float64 {
	if items <= 0 {
		return 0
	}
	instr := (p.InstrPerItem + float64(dp.PerItemInstr)) * items
	c := instr / dp.InstrThroughput()

	env := m.Env(p.ID, dev)
	seq := p.SeqBytesPerItem * items / dp.BandwidthGBs
	var rnd float64
	for reg := device.Region(0); reg < device.NumRegions; reg++ {
		cnt := p.RandPerItem[reg] * items
		if cnt == 0 {
			continue
		}
		hit := env.HitRatio[reg]
		if hit < 0 {
			hit = 0
		} else if hit > 1 {
			hit = 1
		}
		rnd += cnt * (hit*dp.RandHitNS + (1-hit)*dp.RandMissNS)
	}
	if dp.Kind == device.GPU && p.DivFactor > 1 {
		// SIMD lockstep stretches compute and latency-bound accesses.
		c *= p.DivFactor
		rnd *= p.DivFactor
	}
	return c + seq + rnd + dp.LaunchNS
}

// Estimate is the model's prediction for a series at given ratios.
type Estimate struct {
	CPUNS, GPUNS, TotalNS  float64
	StepCPUNS, StepGPUNS   []float64
	DelayCPUNS, DelayGPUNS []float64
}

// Estimate evaluates Eqs. 1–5 for the series profile over items tuples with
// the given per-step CPU ratios.
func (m *Model) Estimate(sp SeriesProfile, items int, ratios sched.Ratios) (Estimate, error) {
	if err := ratios.Validate(len(sp.Steps)); err != nil {
		return Estimate{}, fmt.Errorf("cost: series %s: %w", sp.Name, err)
	}
	cpuDev, gpuDev := newDevPair(m)
	n := len(sp.Steps)
	cpu := make([]float64, n)
	gpu := make([]float64, n)
	for i, p := range sp.Steps {
		x := float64(items)
		cpu[i] = m.stepTime(p, m.CPU, cpuDev, ratios[i]*x)
		gpu[i] = m.stepTime(p, m.GPU, gpuDev, (1-ratios[i])*x)
	}
	cpuTot, gpuTot, dc, dg := sched.Delays(cpu, gpu, ratios)
	return Estimate{
		CPUNS: cpuTot, GPUNS: gpuTot,
		TotalNS:   math.Max(cpuTot, gpuTot),
		StepCPUNS: cpu, StepGPUNS: gpu,
		DelayCPUNS: dc, DelayGPUNS: dg,
	}, nil
}

// EstimateNS is Estimate returning only the total, for optimizer loops.
// It avoids the per-step slice allocations of Estimate.
func (m *Model) EstimateNS(sp SeriesProfile, items int, ratios sched.Ratios) float64 {
	if len(ratios) != len(sp.Steps) {
		return math.Inf(1)
	}
	cpuDev, gpuDev := newDevPair(m)
	n := len(sp.Steps)
	if cap(m.cpuScratch) < n {
		m.cpuScratch = make([]float64, n)
		m.gpuScratch = make([]float64, n)
	}
	cpu := m.cpuScratch[:n]
	gpu := m.gpuScratch[:n]
	for i, p := range sp.Steps {
		x := float64(items)
		cpu[i] = m.stepTime(p, m.CPU, cpuDev, ratios[i]*x)
		gpu[i] = m.stepTime(p, m.GPU, gpuDev, (1-ratios[i])*x)
	}
	cpuTot, gpuTot := sched.DelayTotals(cpu, gpu, ratios)
	return math.Max(cpuTot, gpuTot)
}
