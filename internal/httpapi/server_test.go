package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"apujoin/internal/service"
)

// testServer boots one service + HTTP handler pair for a test.
func testServer(t *testing.T, opt service.Config, cfg Config) *httptest.Server {
	t.Helper()
	svc := service.New(opt)
	ts := httptest.NewServer(New(svc, cfg))
	t.Cleanup(func() {
		ts.Close()
		_ = svc.Close()
	})
	return ts
}

// doRaw performs one request and decodes the raw response envelope:
// {"result": ...} on success, {"error": {...}} on failure.
func doRaw(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("%s %s: non-JSON response: %v", method, url, err)
	}
	m, _ := decoded.(map[string]any)
	if m == nil {
		// Every response is an envelope object; a non-object body would be
		// a regression, surfaced to the caller under "list".
		m = map[string]any{"list": decoded}
	}
	return resp.StatusCode, m
}

// do performs one request and unwraps the envelope: object payloads come
// back directly, array payloads under "list", error envelopes untouched
// (read them with errMsg). The top-level field mirrors are gone, so this
// unwrap is the only way to a payload field.
func do(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	st, m := doRaw(t, method, url, body)
	if res, ok := m["result"]; ok {
		if obj, ok := res.(map[string]any); ok {
			return st, obj
		}
		return st, map[string]any{"list": res}
	}
	return st, m
}

// errMsg extracts the unified error envelope's message; empty when the
// response carries no {"error": {"code", "message"}} object.
func errMsg(resp map[string]any) string {
	e, _ := resp["error"].(map[string]any)
	s, _ := e["message"].(string)
	return s
}

// TestRoutesTable drives every /v1 route through its happy path and the
// documented failure statuses: 400 for malformed or conflicting input,
// 404 for unknown names and ids, 409 for duplicate registration, 413 for
// oversized bodies.
func TestRoutesTable(t *testing.T) {
	ts := testServer(t, service.Config{Workers: 2, MaxConcurrent: 2},
		Config{MaxTuples: 1 << 20, MaxBody: 1 << 16})

	// Happy-path prologue: register a build + probe pair.
	if st, resp := do(t, "POST", ts.URL+"/v1/relations",
		`{"name":"orders","n":30000,"seed":1}`); st != http.StatusCreated {
		t.Fatalf("register orders: status %d, resp %v", st, resp)
	}
	if st, resp := do(t, "POST", ts.URL+"/v1/relations",
		`{"name":"lineitem","probe_of":"orders","n":30000,"sel":0.5,"seed":2}`); st != http.StatusCreated {
		t.Fatalf("register lineitem: status %d, resp %v", st, resp)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"join by names", "POST", "/v1/join",
			`{"algo":"phj","scheme":"dd","delta":0.1,"r_name":"orders","s_name":"lineitem","wait":true}`, 200},
		{"join inline", "POST", "/v1/join",
			`{"algo":"shj","scheme":"dd","delta":0.1,"r":20000,"s":20000,"wait":true}`, 200},
		{"join fire-and-poll", "POST", "/v1/join",
			`{"algo":"shj","scheme":"dd","delta":0.1,"r_name":"orders","s_name":"lineitem"}`, 202},
		{"list relations", "GET", "/v1/relations", "", 200},
		{"list queries", "GET", "/v1/queries", "", 200},
		{"stats", "GET", "/v1/stats", "", 200},
		{"healthz", "GET", "/healthz", "", 200},

		{"malformed JSON", "POST", "/v1/join", `{"algo":`, 400},
		{"unknown field", "POST", "/v1/join", `{"algol":"shj"}`, 400},
		{"trailing garbage", "POST", "/v1/join", `{"algo":"shj"} extra`, 400},
		{"bad algo", "POST", "/v1/join", `{"algo":"quantum"}`, 400},
		{"bad scheme", "POST", "/v1/join", `{"scheme":"warp"}`, 400},
		{"auto with scheme", "POST", "/v1/join", `{"algo":"auto","scheme":"pl"}`, 400},
		{"negative size", "POST", "/v1/join", `{"r":-1}`, 400},
		{"exceeds max-tuples", "POST", "/v1/join", `{"r":2097152}`, 400},
		{"sel out of range", "POST", "/v1/join", `{"sel":1.5}`, 400},
		{"one name only", "POST", "/v1/join", `{"r_name":"orders"}`, 400},
		{"name plus inline", "POST", "/v1/join", `{"r_name":"orders","s_name":"lineitem","r":1024}`, 400},
		{"unknown relation names", "POST", "/v1/join", `{"r_name":"ghost","s_name":"ghost"}`, 404},

		{"pipeline by names", "POST", "/v1/pipeline",
			`{"algo":"shj","scheme":"dd","delta":0.25,"sources":[{"name":"orders"},{"name":"lineitem"},{"name":"lineitem"}],"wait":true}`, 200},
		{"pipeline fire-and-poll", "POST", "/v1/pipeline",
			`{"algo":"shj","scheme":"dd","delta":0.25,"sources":[{"name":"orders"},{"name":"lineitem"}]}`, 202},
		{"pipeline one source", "POST", "/v1/pipeline", `{"sources":[{"name":"orders"}]}`, 400},
		{"pipeline too many sources", "POST", "/v1/pipeline",
			`{"sources":[{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}]}`, 400},
		{"pipeline unknown name", "POST", "/v1/pipeline",
			`{"sources":[{"name":"orders"},{"name":"ghost"}]}`, 404},
		{"pipeline name+generator conflict", "POST", "/v1/pipeline",
			`{"sources":[{"name":"orders","n":64},{"name":"lineitem"}]}`, 400},
		{"pipeline auto with scheme", "POST", "/v1/pipeline",
			`{"algo":"auto","scheme":"pl","sources":[{"name":"orders"},{"name":"lineitem"}]}`, 400},
		{"pipeline negative size", "POST", "/v1/pipeline",
			`{"sources":[{"n":-5},{"name":"orders"}]}`, 400},
		{"pipeline exceeds max-tuples", "POST", "/v1/pipeline",
			`{"sources":[{"n":2097152},{"name":"orders"}]}`, 400},
		{"pipeline bad skew", "POST", "/v1/pipeline",
			`{"sources":[{"n":64,"skew":"extreme"},{"name":"orders"}]}`, 400},

		{"pipeline oversized key_range", "POST", "/v1/pipeline",
			`{"sources":[{"n":64,"key_range":2000000000},{"name":"orders"}]}`, 400},

		{"register duplicate", "POST", "/v1/relations", `{"name":"orders","n":64}`, 409},
		{"register oversized key_range", "POST", "/v1/relations", `{"name":"x","n":64,"key_range":2000000000}`, 400},
		{"register reserved prefix", "POST", "/v1/relations", `{"name":"__pipeline/1/step1","n":64}`, 400},
		{"delete reserved prefix", "DELETE", "/v1/relations?name=__pipeline/1/step1", "", 400},
		{"register nameless", "POST", "/v1/relations", `{"n":64}`, 400},
		{"register bad skew", "POST", "/v1/relations", `{"name":"x","n":64,"skew":"extreme"}`, 400},
		{"probe of unknown", "POST", "/v1/relations", `{"name":"x","probe_of":"ghost","n":64}`, 404},
		{"sel without probe_of", "POST", "/v1/relations", `{"name":"x","n":64,"sel":0.5}`, 400},
		{"rids without keys", "POST", "/v1/relations", `{"name":"x","rids":[1,2]}`, 400},
		{"upload keys+generator conflict", "POST", "/v1/relations", `{"name":"x","n":64,"keys":[1,2]}`, 400},
		{"delete unknown relation", "DELETE", "/v1/relations?name=ghost", "", 404},
		{"delete without name", "DELETE", "/v1/relations", "", 400},

		{"poll bad id", "GET", "/v1/query?id=abc", "", 400},
		{"poll unknown id", "GET", "/v1/query?id=999999", "", 404},
		{"cancel bad id", "DELETE", "/v1/query?id=abc", "", 400},
		{"cancel unknown id", "DELETE", "/v1/query?id=999999", "", 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, resp := doRaw(t, tc.method, ts.URL+tc.path, tc.body)
			if st != tc.want {
				t.Fatalf("%s %s: status %d, want %d (resp %v)", tc.method, tc.path, st, tc.want, resp)
			}
			if st >= 400 {
				eobj, ok := resp["error"].(map[string]any)
				if !ok {
					t.Fatalf("error status %d without the {\"error\":{\"code\",\"message\"}} envelope: %v", st, resp)
				}
				if code, _ := eobj["code"].(string); code == "" {
					t.Errorf("error envelope without code: %v", resp)
				}
				if errMsg(resp) == "" {
					t.Errorf("error envelope without message: %v", resp)
				}
				// The envelope is exactly {"error": ...}: the one-release
				// top-level "status" mirror is gone.
				if _, ok := resp["status"]; ok {
					t.Errorf("removed legacy status mirror still present: %v", resp)
				}
			} else {
				if _, ok := resp["result"]; !ok {
					t.Errorf("success status %d without the {\"result\": ...} envelope: %v", st, resp)
				}
			}
		})
	}

	// Oversized body → 413 with the structured envelope.
	big := fmt.Sprintf(`{"name":"big","keys":[%s1]}`, strings.Repeat("1,", 40000))
	if st, resp := do(t, "POST", ts.URL+"/v1/relations", big); st != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, resp %v, want 413", st, resp)
	}

	// Bulk upload happy path, with ingest-time stats in the response.
	if st, resp := do(t, "POST", ts.URL+"/v1/relations",
		`{"name":"uploaded","keys":[1,2,3,4,5],"rids":[10,11,12,13,14]}`); st != http.StatusCreated {
		t.Errorf("upload: status %d, resp %v", st, resp)
	} else if resp["tuples"].(float64) != 5 || resp["source"] != "loaded" {
		t.Errorf("upload info: %v", resp)
	}

	// An explicitly empty keys array is an empty upload, not a generator
	// spec: it must register 0 tuples, never a defaulted 1M relation.
	if st, resp := do(t, "POST", ts.URL+"/v1/relations",
		`{"name":"emptyrel","keys":[]}`); st != http.StatusCreated {
		t.Errorf("empty upload: status %d, resp %v", st, resp)
	} else if resp["tuples"].(float64) != 0 || resp["source"] != "loaded" {
		t.Errorf("empty upload info: %v", resp)
	}

	// Refcounted delete reports zero pins once queries finished.
	if st, resp := do(t, "DELETE", ts.URL+"/v1/relations?name=uploaded", ""); st != 200 {
		t.Errorf("delete: status %d, resp %v", st, resp)
	} else if resp["name"] != "uploaded" {
		t.Errorf("delete info: %v", resp)
	}
}

// TestJoinByNameMatchesInline: the HTTP determinism contract — a join over
// registered relations reports the same matches and simulated total as the
// identical inline-generated join.
func TestJoinByNameMatchesInline(t *testing.T) {
	ts := testServer(t, service.Config{Workers: 2, MaxConcurrent: 2},
		Config{MaxTuples: 1 << 20, MaxBody: 1 << 20})

	do(t, "POST", ts.URL+"/v1/relations", `{"name":"r","n":30000,"seed":42}`)
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"s","probe_of":"r","n":30000,"sel":1,"seed":43}`)

	st, named := do(t, "POST", ts.URL+"/v1/join",
		`{"algo":"phj","scheme":"dd","delta":0.1,"r_name":"r","s_name":"s","wait":true}`)
	if st != 200 || named["state"] != "done" {
		t.Fatalf("named join: status %d, resp %v", st, named)
	}
	// The inline default seed is 42 and the probe generator uses seed+1,
	// matching the registered pair above.
	st, inline := do(t, "POST", ts.URL+"/v1/join",
		`{"algo":"phj","scheme":"dd","delta":0.1,"r":30000,"s":30000,"wait":true}`)
	if st != 200 || inline["state"] != "done" {
		t.Fatalf("inline join: status %d, resp %v", st, inline)
	}
	if named["matches"] != inline["matches"] || named["total_ms"] != inline["total_ms"] {
		t.Errorf("named join (matches %v, total %v) != inline join (matches %v, total %v)",
			named["matches"], named["total_ms"], inline["matches"], inline["total_ms"])
	}
}

// TestBatchSubmit: one POST /v1/batch admits several queries sharing
// catalog data; wait=true returns every result and identical queries
// report identical simulated numbers.
func TestBatchSubmit(t *testing.T) {
	ts := testServer(t, service.Config{Workers: 2, MaxConcurrent: 2},
		Config{MaxTuples: 1 << 20, MaxBody: 1 << 20})

	do(t, "POST", ts.URL+"/v1/relations", `{"name":"r","n":25000,"seed":1}`)
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"s","probe_of":"r","n":25000,"sel":1,"seed":2}`)

	q := `{"algo":"shj","scheme":"dd","delta":0.1,"r_name":"r","s_name":"s"}`
	st, resp := do(t, "POST", ts.URL+"/v1/batch",
		fmt.Sprintf(`{"queries":[%s,%s,%s],"wait":true}`, q, q, q))
	if st != 200 {
		t.Fatalf("batch: status %d, resp %v", st, resp)
	}
	queries, ok := resp["queries"].([]any)
	if !ok || len(queries) != 3 {
		t.Fatalf("batch response: %v", resp)
	}
	first := queries[0].(map[string]any)
	if first["state"] != "done" {
		t.Fatalf("batch query state %v", first["state"])
	}
	for i, qr := range queries {
		m := qr.(map[string]any)
		if m["matches"] != first["matches"] || m["total_ms"] != first["total_ms"] {
			t.Errorf("batch query %d diverges: %v vs %v", i, m, first)
		}
	}
	// Batch parse errors name the offending element.
	st, resp = do(t, "POST", ts.URL+"/v1/batch",
		fmt.Sprintf(`{"queries":[%s,{"algo":"bogus"}]}`, q))
	if st != 400 || !strings.Contains(errMsg(resp), "query 2 of 2") {
		t.Errorf("bad batch element: status %d, resp %v", st, resp)
	}
	// Empty batch.
	if st, _ := do(t, "POST", ts.URL+"/v1/batch", `{"queries":[]}`); st != 400 {
		t.Errorf("empty batch: status %d, want 400", st)
	}
	// Per-query wait is meaningless inside a batch and must be rejected,
	// not silently ignored.
	st, resp = do(t, "POST", ts.URL+"/v1/batch",
		fmt.Sprintf(`{"queries":[{"algo":"shj","scheme":"dd","r_name":"r","s_name":"s","wait":true},%s]}`, q))
	if st != 400 || !strings.Contains(errMsg(resp), "batch-level wait") {
		t.Errorf("per-query wait in batch: status %d, resp %v", st, resp)
	}
}

// TestPipelineEndpoint drives POST /v1/pipeline end to end: an auto
// pipeline over registered relations reports the executed order, per-step
// plan decisions and the serial-chain total; inline generated sources over
// a shared key range run in declaration order.
func TestPipelineEndpoint(t *testing.T) {
	ts := testServer(t, service.Config{Workers: 2, MaxConcurrent: 2},
		Config{MaxTuples: 1 << 20, MaxBody: 1 << 20})

	do(t, "POST", ts.URL+"/v1/relations", `{"name":"orders","n":20000,"seed":1}`)
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"lineitem","probe_of":"orders","n":26000,"sel":0.9,"seed":2}`)
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"returns","probe_of":"orders","n":12000,"sel":0.3,"seed":3}`)

	st, resp := do(t, "POST", ts.URL+"/v1/pipeline",
		`{"algo":"auto","delta":0.1,"sources":[{"name":"orders"},{"name":"lineitem"},{"name":"returns"}],"wait":true}`)
	if st != 200 || resp["state"] != "done" {
		t.Fatalf("auto pipeline: status %d, resp %v", st, resp)
	}
	pipe, ok := resp["pipeline"].(map[string]any)
	if !ok {
		t.Fatalf("response has no pipeline section: %v", resp)
	}
	if pipe["ordered"] != true || pipe["sources"].(float64) != 3 {
		t.Errorf("pipeline section: ordered=%v sources=%v", pipe["ordered"], pipe["sources"])
	}
	steps, _ := pipe["steps"].([]any)
	if len(steps) != 2 {
		t.Fatalf("steps = %v, want 2", steps)
	}
	var stepSum float64
	for i, s := range steps {
		step := s.(map[string]any)
		if _, ok := step["plan"].(map[string]any); !ok {
			t.Errorf("step %d: no plan report on an auto pipeline: %v", i, step)
		}
		stepSum += step["total_ms"].(float64)
	}
	// The server sums raw nanoseconds before converting; summing the
	// converted per-step values can differ by an ulp.
	if got := resp["total_ms"].(float64); math.Abs(got-stepSum) > 1e-9*stepSum {
		t.Errorf("total_ms %v != step sum %v", got, stepSum)
	}
	if pipe["intermediate_tuples"].(float64) <= 0 {
		t.Errorf("intermediate_tuples = %v, want > 0", pipe["intermediate_tuples"])
	}
	if resp["matches"].(float64) <= 0 {
		t.Errorf("matches = %v, want > 0", resp["matches"])
	}
	if pipe["streamed"] != true {
		t.Errorf("default pipeline not streamed: %v", pipe["streamed"])
	}
	streamedPeak := pipe["peak_intermediate_bytes"].(float64)
	if streamedPeak <= 0 {
		t.Errorf("streamed peak_intermediate_bytes = %v, want > 0", streamedPeak)
	}
	streamedMatches := resp["matches"].(float64)

	// The same pipeline with materialized:true reports the mode, an equal
	// result, and a strictly larger resident footprint.
	st, resp = do(t, "POST", ts.URL+"/v1/pipeline",
		`{"algo":"auto","delta":0.1,"materialized":true,"sources":[{"name":"orders"},{"name":"lineitem"},{"name":"returns"}],"wait":true}`)
	if st != 200 || resp["state"] != "done" {
		t.Fatalf("materialized pipeline: status %d, resp %v", st, resp)
	}
	pipe = resp["pipeline"].(map[string]any)
	if pipe["streamed"] != false {
		t.Errorf("materialized pipeline claims streamed: %v", pipe["streamed"])
	}
	if got := resp["matches"].(float64); got != streamedMatches {
		t.Errorf("materialized matches %v != streamed matches %v", got, streamedMatches)
	}
	if peak := pipe["peak_intermediate_bytes"].(float64); peak <= streamedPeak {
		t.Errorf("materialized peak %v not above streamed peak %v", peak, streamedPeak)
	}

	// Inline generated sources over one key range: no catalog statistics,
	// so declaration order — and the equal specs join every tuple.
	st, resp = do(t, "POST", ts.URL+"/v1/pipeline",
		`{"algo":"shj","scheme":"dd","delta":0.25,"sources":[{"n":4000,"key_range":4000,"seed":7},{"n":4000,"key_range":4000,"seed":8},{"n":4000,"key_range":4000,"seed":9}],"wait":true}`)
	if st != 200 || resp["state"] != "done" {
		t.Fatalf("inline pipeline: status %d, resp %v", st, resp)
	}
	pipe = resp["pipeline"].(map[string]any)
	if pipe["ordered"] != false {
		t.Errorf("inline pipeline claims cost-based ordering: %v", pipe)
	}
	// Three permutations of the same 4000-key domain: 4000 multi-way
	// matches exactly.
	if got := resp["matches"].(float64); got != 4000 {
		t.Errorf("inline pipeline matches = %v, want 4000", got)
	}
	// The stats surface picked up the pipeline counters, including the
	// per-mode peak-footprint gauges.
	if st, stats := do(t, "GET", ts.URL+"/v1/stats", ""); st != 200 {
		t.Fatalf("stats: %d", st)
	} else {
		if stats["pipelines"].(float64) < 3 {
			t.Errorf("stats pipelines = %v, want >= 3", stats["pipelines"])
		}
		if stats["streamed_pipelines"].(float64) < 2 {
			t.Errorf("stats streamed_pipelines = %v, want >= 2", stats["streamed_pipelines"])
		}
		sp := stats["peak_intermediate_bytes_streamed"].(float64)
		mp := stats["peak_intermediate_bytes_materialized"].(float64)
		if sp <= 0 || mp <= sp {
			t.Errorf("per-mode peaks: streamed %v, materialized %v (want 0 < streamed < materialized)", sp, mp)
		}
	}
}

// TestQueueFullAndCancel: with one execution slot and a queue of one, the
// third concurrent query gets a structured 503; DELETE /v1/query cancels
// the stuck ones.
func TestQueueFullAndCancel(t *testing.T) {
	ts := testServer(t, service.Config{Workers: 2, MaxConcurrent: 1, MaxQueue: 1},
		Config{MaxTuples: 1 << 23, MaxBody: 1 << 20})

	// Big enough to keep the slot busy while the test probes the queue.
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"big","n":4194304,"seed":1}`)
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"bigs","probe_of":"big","n":4194304,"sel":1,"seed":2}`)

	join := `{"algo":"phj","scheme":"pl","r_name":"big","s_name":"bigs"}`
	st1, r1 := do(t, "POST", ts.URL+"/v1/join", join)
	if st1 != 202 {
		t.Fatalf("first join: status %d, resp %v", st1, r1)
	}
	st2, r2 := do(t, "POST", ts.URL+"/v1/join", join)
	if st2 != 202 {
		t.Fatalf("second join: status %d, resp %v", st2, r2)
	}
	st3, r3 := do(t, "POST", ts.URL+"/v1/join", join)
	if st3 != http.StatusServiceUnavailable {
		t.Fatalf("third join: status %d, resp %v, want 503", st3, r3)
	}
	if _, ok := r3["error"]; !ok {
		t.Errorf("503 without structured error: %v", r3)
	}

	// Cancel both; they reach a terminal state (canceled, or done if the
	// race let one finish first) and free the queue.
	for _, r := range []map[string]any{r1, r2} {
		id := int64(r["id"].(float64))
		if st, resp := do(t, "DELETE", fmt.Sprintf("%s/v1/query?id=%d", ts.URL, id), ""); st != 202 {
			t.Fatalf("cancel %d: status %d, resp %v", id, st, resp)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, resp := do(t, "GET", fmt.Sprintf("%s/v1/query?id=%d", ts.URL, id), "")
			state := resp["state"].(string)
			if state == "canceled" || state == "done" || state == "failed" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("query %d stuck in state %q after cancel", id, state)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// With the slot free again, a small query is admitted.
	if st, resp := do(t, "POST", ts.URL+"/v1/join",
		`{"algo":"shj","scheme":"dd","delta":0.1,"r":10000,"s":10000,"wait":true}`); st != 200 {
		t.Errorf("join after cancels: status %d, resp %v", st, resp)
	}
}

// TestShutdownNoGoroutineLeaks: serving traffic then closing the server
// and the service reclaims every goroutine (HTTP handlers, per-query
// runners, resident pool workers).
func TestShutdownNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := service.New(service.Config{Workers: 4, MaxConcurrent: 2})
	ts := httptest.NewServer(New(svc, Config{MaxTuples: 1 << 20, MaxBody: 1 << 20}))

	do(t, "POST", ts.URL+"/v1/relations", `{"name":"r","n":20000,"seed":1}`)
	do(t, "POST", ts.URL+"/v1/relations", `{"name":"s","probe_of":"r","n":20000,"sel":1,"seed":2}`)
	for i := 0; i < 3; i++ {
		do(t, "POST", ts.URL+"/v1/join", `{"algo":"phj","scheme":"dd","delta":0.1,"r_name":"r","s_name":"s","wait":true}`)
	}
	do(t, "DELETE", ts.URL+"/v1/relations?name=r", "")

	ts.Close()
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after shutdown: %d, want <= %d", g, before)
	}
}
