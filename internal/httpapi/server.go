// Package httpapi serves the /v1 HTTP surface over one service.Service.
// Both daemons mount it: apujoind serves it over a local engine (optionally
// sharded in-process), and apujoin-router serves the identical surface over
// a cluster-backed service that fans out to remote apujoind shard servers.
// One handler, one wire contract (documented in docs/API.md), three
// deployment shapes.
//
// Success responses use the unified envelope {"result": …}; failures
// return {"error": {"code", "message"}} with a stable machine-readable
// code. Cluster-specific failures surface as code "shard_down" with HTTP
// 503: a query that needs a downed shard fails fast and structured, never
// by hanging.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"apujoin/internal/catalog"
	"apujoin/internal/cluster"
	"apujoin/internal/core"
	"apujoin/internal/rel"
	"apujoin/internal/service"
	"apujoin/internal/service/api"
)

// Config bounds what the HTTP surface accepts.
type Config struct {
	// MaxTuples is the largest accepted relation size (generated or
	// uploaded).
	MaxTuples int
	// MaxBody bounds every request body via http.MaxBytesReader; oversize
	// bodies get a structured 413.
	MaxBody int64
}

func (c *Config) setDefaults() {
	if c.MaxTuples <= 0 {
		c.MaxTuples = 1 << 24
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 32 << 20
	}
}

// parseJoin turns one api.JoinRequest into a service.JoinSpec. On a local
// service inline data is generated here; on a clustered service the
// validated request is forwarded verbatim instead (every shard server
// generates the same full relations from the same spec), so the router
// never materializes inline tuples itself.
func parseJoin(req api.JoinRequest, cfg Config, svc *service.Service) (service.JoinSpec, error) {
	var spec service.JoinSpec
	var err error

	// algo=auto hands algorithm and scheme to the planner; the service's
	// shared plan cache amortizes the decision across repeated shapes.
	spec.Auto = strings.EqualFold(req.Algo, "auto")
	if !spec.Auto {
		if spec.Opt.Algo, err = core.ParseAlgo(req.Algo); err != nil {
			return spec, err
		}
		if spec.Opt.Scheme, err = core.ParseScheme(req.Scheme); err != nil {
			return spec, err
		}
	} else if req.Scheme != "" {
		return spec, fmt.Errorf("algo=auto picks the scheme; drop %q", req.Scheme)
	}
	if spec.Opt.Arch, err = core.ParseArch(req.Arch); err != nil {
		return spec, err
	}
	spec.Opt.SeparateTables = req.Separate
	spec.Opt.Grouping = req.Grouping
	spec.Opt.Delta = req.Delta
	spec.Opt.CountOnly = req.CountOnly

	// per_partition is the cluster transport: a sharded server answers it
	// with the raw per-partition result vector. A cluster router rejects it
	// — it is not a shard server, and chaining routers is not supported.
	if req.PerPartition {
		if svc.Clustered() {
			return spec, errors.New("per_partition is the cluster transport of shard servers; this router is not a shard server")
		}
		if !svc.Sharded() {
			return spec, errors.New("per_partition requires a sharded server (-shards >= 1)")
		}
		spec.KeepPartitions = true
	}
	spec.Workload = req.Workload

	if req.RName != "" || req.SName != "" {
		if req.RName == "" || req.SName == "" {
			return spec, fmt.Errorf("set both r_name and s_name or neither (r_name %q, s_name %q)", req.RName, req.SName)
		}
		if req.R != 0 || req.S != 0 || req.Sel != nil || req.Seed != nil || req.Skew != "" {
			return spec, fmt.Errorf("inline generation fields (r, s, sel, seed, skew) conflict with r_name/s_name")
		}
		spec.RName, spec.SName = req.RName, req.SName
		if svc.Clustered() {
			spec.Forward = &req
		}
		return spec, nil
	}

	dist, err := rel.ParseDistribution(req.Skew)
	if err != nil {
		return spec, err
	}
	nr, ns := req.R, req.S
	if nr == 0 {
		nr = 1 << 20
	}
	if ns == 0 {
		ns = 1 << 20
	}
	if nr < 0 || ns < 0 {
		return spec, fmt.Errorf("negative relation size r=%d s=%d", nr, ns)
	}
	if nr > cfg.MaxTuples || ns > cfg.MaxTuples {
		return spec, fmt.Errorf("relation size exceeds -max-tuples %d", cfg.MaxTuples)
	}
	sel := 1.0
	if req.Sel != nil {
		sel = *req.Sel
	}
	if sel < 0 || sel > 1 {
		return spec, fmt.Errorf("selectivity %v out of [0,1]", sel)
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	if svc.Clustered() {
		// Validated, not generated: the shard servers generate the same
		// full relations from the forwarded spec (their own defaults match
		// the ones applied above).
		spec.Forward = &req
		return spec, nil
	}
	spec.R = rel.Gen{N: nr, Dist: dist, Seed: seed}.Build()
	spec.S = rel.Gen{N: ns, Dist: dist, Seed: seed + 1}.Probe(spec.R, sel)
	return spec, nil
}

// parsePipeline turns an api.PipelineRequest into a service.PipelineSpec,
// resolving names later (admission time). Inline sources generate now on a
// local service; a clustered service forwards the validated request and
// lets every shard server generate identically.
func parsePipeline(req api.PipelineRequest, cfg Config, svc *service.Service) (service.PipelineSpec, error) {
	var spec service.PipelineSpec
	var err error

	if len(req.Sources) < 2 {
		return spec, fmt.Errorf("a pipeline needs at least 2 sources (got %d)", len(req.Sources))
	}
	if len(req.Sources) > api.MaxPipelineSources {
		return spec, fmt.Errorf("pipeline of %d sources exceeds the limit of %d", len(req.Sources), api.MaxPipelineSources)
	}
	spec.Auto = strings.EqualFold(req.Algo, "auto")
	if !spec.Auto {
		if spec.Opt.Algo, err = core.ParseAlgo(req.Algo); err != nil {
			return spec, err
		}
		if spec.Opt.Scheme, err = core.ParseScheme(req.Scheme); err != nil {
			return spec, err
		}
	} else if req.Scheme != "" {
		return spec, fmt.Errorf("algo=auto picks the scheme; drop %q", req.Scheme)
	}
	if spec.Opt.Arch, err = core.ParseArch(req.Arch); err != nil {
		return spec, err
	}
	spec.Opt.SeparateTables = req.Separate
	spec.Opt.Grouping = req.Grouping
	spec.Opt.Delta = req.Delta
	spec.Opt.CountOnly = req.CountOnly
	spec.DeclaredOrder = req.DeclaredOrder
	spec.Materialized = req.Materialized

	if req.PerPartition {
		if svc.Clustered() {
			return spec, errors.New("per_partition is the cluster transport of shard servers; this router is not a shard server")
		}
		if !svc.Sharded() {
			return spec, errors.New("per_partition requires a sharded server (-shards >= 1)")
		}
		spec.KeepPartitions = true
	}
	spec.FirstWorkload = req.FirstWorkload

	for i, src := range req.Sources {
		if src.Name != "" {
			if src.N != 0 || src.Seed != nil || src.Skew != "" || src.KeyRange != 0 {
				return spec, fmt.Errorf("source %d of %d: generator fields (n, skew, seed, key_range) conflict with name %q",
					i+1, len(req.Sources), src.Name)
			}
			spec.Sources = append(spec.Sources, service.PipelineSource{Name: src.Name})
			continue
		}
		n := src.N
		if n == 0 {
			n = 1 << 20
		}
		if n < 0 {
			return spec, fmt.Errorf("source %d of %d: negative relation size n=%d", i+1, len(req.Sources), n)
		}
		if n > cfg.MaxTuples {
			return spec, fmt.Errorf("source %d of %d: relation size %d exceeds -max-tuples %d", i+1, len(req.Sources), n, cfg.MaxTuples)
		}
		if src.KeyRange < 0 || src.KeyRange > cfg.MaxTuples {
			return spec, fmt.Errorf("source %d of %d: key_range %d out of [0, -max-tuples %d]", i+1, len(req.Sources), src.KeyRange, cfg.MaxTuples)
		}
		dist, err := rel.ParseDistribution(src.Skew)
		if err != nil {
			return spec, fmt.Errorf("source %d of %d: %w", i+1, len(req.Sources), err)
		}
		if svc.Clustered() {
			// Validated only; the cluster backend pins the positional seed
			// default before reordering and forwards the source spec.
			spec.Sources = append(spec.Sources, service.PipelineSource{})
			continue
		}
		seed := int64(42) + int64(i)
		if src.Seed != nil {
			seed = *src.Seed
		}
		g := rel.Gen{N: n, Dist: dist, Seed: seed, KeyRange: src.KeyRange}
		spec.Sources = append(spec.Sources, service.PipelineSource{Rel: g.Build()})
	}
	if svc.Clustered() {
		spec.Forward = &req
	}
	return spec, nil
}

func response(q *service.Query) api.JoinResponse {
	info := q.Snapshot()
	resp := api.JoinResponse{ID: info.ID, State: info.State, Error: info.Error}
	if info.Plan != nil {
		cache := "miss"
		if info.Plan.CacheHit {
			cache = "hit"
		}
		resp.Plan = &api.PlanReport{
			Algo:        info.Plan.Algo,
			Scheme:      info.Plan.Scheme,
			Cache:       cache,
			PredictedMS: info.Plan.PredictedNS / 1e6,
		}
	}
	if res, err, ok := q.Result(); ok && err == nil && res != nil {
		resp.Matches = res.Matches
		resp.TotalMS = res.TotalNS / 1e6
		resp.Phases = &api.PhaseReport{
			PartitionMS: res.PartitionNS / 1e6,
			BuildMS:     res.BuildNS / 1e6,
			ProbeMS:     res.ProbeNS / 1e6,
			MergeMS:     res.MergeNS / 1e6,
			TransferMS:  res.TransferNS / 1e6,
		}
		resp.WallMS = float64(info.WallNS) / 1e6
	}
	// The raw per-partition vector of a per_partition join — the cluster
	// transport. Raw nanosecond floats, never the ms conversions above.
	for _, pr := range q.Partitions() {
		resp.Partitions = append(resp.Partitions, api.FromResult(pr))
	}
	if pi := info.Pipeline; pi != nil {
		// For pipelines, total_ms covers the whole serial chain (the
		// Result and its phases describe the final step alone).
		resp.TotalMS = info.SimulatedNS / 1e6
		pr := &api.PipelineReport{
			Sources:               pi.Sources,
			Ordered:               pi.Ordered,
			Streamed:              pi.Streamed,
			Order:                 pi.Order,
			IntermediateTuples:    pi.IntermediateTuples,
			IntermediateBytes:     pi.IntermediateBytes,
			PeakIntermediateBytes: pi.PeakIntermediateBytes,
			Replans:               pi.Replans,
			SpilledPartitions:     pi.SpilledPartitions,
			SpillBytes:            pi.SpillBytes,
		}
		for _, st := range pi.Steps {
			sr := api.PipelineStepReport{
				Build:       st.Build,
				Probe:       st.Probe,
				BuildTuples: st.BuildTuples,
				ProbeTuples: st.ProbeTuples,
				Matches:     st.Matches,
				TotalMS:     st.SimulatedNS / 1e6,
			}
			if st.Plan != nil {
				cache := "miss"
				if st.Plan.CacheHit {
					cache = "hit"
				}
				sr.Plan = &api.PlanReport{
					Algo:        st.Plan.Algo,
					Scheme:      st.Plan.Scheme,
					Cache:       cache,
					PredictedMS: st.Plan.PredictedNS / 1e6,
				}
			}
			pr.Steps = append(pr.Steps, sr)
		}
		if pipe, ok := q.Pipeline(); ok && pipe.Partitions != nil {
			pr.Partitions = wirePipelineParts(pipe.Partitions)
		}
		resp.Pipeline = pr
	}
	return resp
}

// wirePipelineParts projects a sharded pipeline's raw per-partition
// breakdown onto its wire transport.
func wirePipelineParts(pp *service.PipelinePartitions) *api.PipelineParts {
	wire := &api.PipelineParts{
		PeakIntermediateBytes: pp.Peak,
		IntermediateTuples:    pp.InterTuples,
		IntermediateBytes:     pp.InterBytes,
		SpillDepth:            pp.SpillDepth,
	}
	for t, row := range pp.Steps {
		stepRow := make([]api.PartitionStep, len(row))
		for p, r := range row {
			stepRow[p] = api.PartitionStep{
				Result:      api.FromResult(r),
				BuildTuples: pp.BuildTuples[t][p],
				ProbeTuples: pp.ProbeTuples[t][p],
			}
			if t < len(pp.Plans) {
				if pi := pp.Plans[t][p]; pi != nil {
					stepRow[p].Plan = &api.PartitionPlan{
						Algo:        pi.Algo,
						Scheme:      pi.Scheme,
						CacheHit:    pi.CacheHit,
						PredictedNS: pi.PredictedNS,
					}
				}
			}
		}
		wire.Steps = append(wire.Steps, stepRow)
	}
	return wire
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeResult emits the unified success envelope every 2xx response uses:
//
//	{"result": <payload>}
//
// The deprecated top-level mirrors of the payload fields (kept "for one
// release" after the envelope unification) are gone: the payload lives
// under "result" and nowhere else.
func writeResult(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, map[string]any{"result": v})
}

// writeError emits the unified error envelope every failure path uses:
//
//	{"error": {"code": "...", "message": "..."}}
//
// "code" is a stable machine-readable identifier (bad_request, not_found,
// conflict, no_space, queue_full, closed, too_large, unavailable,
// shard_down, internal); "message" is human-readable. The deprecated
// top-level "status" mirror of the HTTP status code has been removed with
// the payload mirrors — the status is on the HTTP response itself.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{
		"error": map[string]any{"code": errorCode(status, err), "message": err.Error()},
	})
}

// errorCode derives the envelope's stable error code: sentinel errors
// first (they carry more intent than the status), the status class
// otherwise. Cluster errors come before everything — a remote shard's own
// code passes through verbatim, and a downed or unreachable shard is
// always "shard_down".
func errorCode(status int, err error) string {
	var se *cluster.ShardError
	switch {
	case errors.As(err, &se):
		return se.Code
	case errors.Is(err, cluster.ErrShardDown):
		return "shard_down"
	case errors.Is(err, service.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, service.ErrClosed):
		return "closed"
	case errors.Is(err, catalog.ErrNotFound):
		return "not_found"
	case errors.Is(err, catalog.ErrExists):
		return "conflict"
	case errors.Is(err, catalog.ErrNoSpace):
		return "no_space"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInsufficientStorage:
		return "no_space"
	default:
		return "internal"
	}
}

// clusterStatus maps a cluster-layer error to its HTTP status; ok is false
// for non-cluster errors. A downed or unreachable shard is 503 (clients
// retry once the shard rejoins); a shard's own structured failure passes
// its remote status through.
func clusterStatus(err error) (int, bool) {
	var se *cluster.ShardError
	if errors.As(err, &se) {
		return se.Status, true
	}
	if errors.Is(err, cluster.ErrShardDown) {
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}

// readJSON decodes one bounded JSON request body into dst with unknown
// fields rejected, writing the structured 400/413 itself on failure.
func readJSON(w http.ResponseWriter, r *http.Request, maxBody int64, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("bad request body: trailing data after JSON document"))
		return false
	}
	return true
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	if status, ok := clusterStatus(err); ok {
		return status
	}
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// waitResult writes the terminal response of a waited query: cluster
// failures surface as structured errors with their mapped status (a
// downed shard is a 503 "shard_down", never a hang and never a partial
// result), everything else keeps the result-envelope-with-status shape.
func waitResult(w http.ResponseWriter, r *http.Request, q *service.Query) {
	if _, err := q.Wait(r.Context()); err != nil && !isCancel(err) {
		if status, ok := clusterStatus(err); ok {
			writeError(w, status, err)
			return
		}
		writeResult(w, http.StatusInternalServerError, response(q))
		return
	}
	writeResult(w, http.StatusOK, response(q))
}

// New builds the HTTP surface over one join service.
//
// Endpoints:
//
//	POST   /v1/join        submit a join; {"wait":true} blocks for the result
//	POST   /v1/pipeline    submit a multi-way join pipeline (2..16 sources)
//	POST   /v1/batch       submit many joins in one admission transaction
//	GET    /v1/query?id=   poll one query
//	DELETE /v1/query?id=   cancel one query
//	GET    /v1/queries     list retained queries
//	POST   /v1/relations   register a relation (generate or upload)
//	GET    /v1/relations   list registered relations with their statistics
//	DELETE /v1/relations?name=  refcounted delete
//	GET    /v1/stats       service metrics (plus shard health when clustered)
//	GET    /healthz        liveness
func New(svc *service.Service, cfg Config) http.Handler {
	cfg.setDefaults()
	mux := http.NewServeMux()

	submit := func(w http.ResponseWriter, r *http.Request, req api.JoinRequest) (*service.Query, bool) {
		spec, err := parseJoin(req, cfg, svc)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return nil, false
		}
		// The query's lifetime is the service's, not the HTTP request's:
		// a fire-and-poll submission keeps running after this handler
		// returns. A waiting client that disconnects cancels its query.
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		q, err := svc.SubmitSpec(qctx, spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return nil, false
		}
		return q, true
	}

	mux.HandleFunc("POST /v1/join", func(w http.ResponseWriter, r *http.Request) {
		var req api.JoinRequest
		if !readJSON(w, r, cfg.MaxBody, &req) {
			return
		}
		q, ok := submit(w, r, req)
		if !ok {
			return
		}
		if !req.Wait {
			writeResult(w, http.StatusAccepted, response(q))
			return
		}
		waitResult(w, r, q)
	})

	mux.HandleFunc("POST /v1/pipeline", func(w http.ResponseWriter, r *http.Request) {
		var req api.PipelineRequest
		if !readJSON(w, r, cfg.MaxBody, &req) {
			return
		}
		spec, err := parsePipeline(req, cfg, svc)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		q, err := svc.SubmitPipeline(qctx, spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		if !req.Wait {
			writeResult(w, http.StatusAccepted, response(q))
			return
		}
		waitResult(w, r, q)
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchRequest
		if !readJSON(w, r, cfg.MaxBody, &req) {
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("batch has no queries"))
			return
		}
		specs := make([]service.JoinSpec, len(req.Queries))
		for i, jr := range req.Queries {
			if jr.Wait {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("query %d of %d: per-query wait is not supported in a batch; set the batch-level wait", i+1, len(req.Queries)))
				return
			}
			spec, err := parseJoin(jr, cfg, svc)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d of %d: %w", i+1, len(req.Queries), err))
				return
			}
			specs[i] = spec
		}
		qctx := context.Background()
		if req.Wait {
			qctx = r.Context()
		}
		qs, err := svc.SubmitBatch(qctx, specs)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		status := http.StatusAccepted
		if req.Wait {
			status = http.StatusOK
			for _, q := range qs {
				if _, err := q.Wait(r.Context()); err != nil && !isCancel(err) {
					status = http.StatusInternalServerError
					break
				}
			}
		}
		resp := api.BatchResponse{Queries: make([]api.JoinResponse, len(qs))}
		for i, q := range qs {
			resp.Queries[i] = response(q)
		}
		writeResult(w, status, resp)
	})

	mux.HandleFunc("POST /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		var req api.RelationRequest
		if !readJSON(w, r, cfg.MaxBody, &req) {
			return
		}
		info, err := registerRelation(svc, req, cfg.MaxTuples)
		if err != nil {
			writeError(w, relationStatus(err), err)
			return
		}
		writeResult(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, svc.Relations())
	})

	mux.HandleFunc("DELETE /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing ?name="))
			return
		}
		if strings.HasPrefix(name, service.ReservedPrefix) {
			// A pipeline's intermediates are its own: deleting one from
			// outside (in the instant before the pipeline unbinds it
			// itself) would spuriously fail the in-flight pipeline.
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("relation names starting with %q are reserved for pipeline intermediates", service.ReservedPrefix))
			return
		}
		info, err := svc.DropRelation(name)
		if err != nil {
			writeError(w, relationStatus(err), err)
			return
		}
		// Pins report how many in-flight queries still hold the data; the
		// name is unbound either way.
		writeResult(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		q, ok := lookupQuery(w, r, svc)
		if !ok {
			return
		}
		writeResult(w, http.StatusOK, response(q))
	})

	mux.HandleFunc("DELETE /v1/query", func(w http.ResponseWriter, r *http.Request) {
		q, ok := lookupQuery(w, r, svc)
		if !ok {
			return
		}
		// Cancellation is asynchronous: a queued query drops immediately,
		// a running one aborts at its next step boundary. The snapshot
		// reflects whatever state the query has reached by now.
		q.Cancel()
		writeResult(w, http.StatusAccepted, response(q))
	})

	mux.HandleFunc("GET /v1/queries", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, svc.Queries())
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	return mux
}

// lookupQuery resolves ?id= to a retained query, writing the 400/404
// itself when it cannot.
func lookupQuery(w http.ResponseWriter, r *http.Request, svc *service.Service) (*service.Query, bool) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return nil, false
	}
	q, ok := svc.Query(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("query %d not found", id))
		return nil, false
	}
	return q, true
}

// registerRelation dispatches an api.RelationRequest to the service's
// relation surface (the cluster router, the sharded router or the single
// catalog): bulk upload when keys are present, probe generation when
// probe_of is set, build generation otherwise.
func registerRelation(svc *service.Service, req api.RelationRequest, maxTuples int) (catalog.Info, error) {
	if req.Name == "" {
		return catalog.Info{}, errors.New("missing relation name")
	}
	if strings.HasPrefix(req.Name, service.ReservedPrefix) {
		return catalog.Info{}, fmt.Errorf("relation names starting with %q are reserved for pipeline intermediates", service.ReservedPrefix)
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}

	// An explicit "keys" array — even an empty one — is a bulk upload; a
	// generator spec omits the field entirely.
	if req.Keys != nil {
		if req.N != 0 || req.ProbeOf != "" || req.Sel != nil || req.Skew != "" || req.KeyRange != 0 {
			return catalog.Info{}, errors.New("generator fields (n, skew, key_range, probe_of, sel) conflict with keys upload")
		}
		if len(req.Keys) > maxTuples {
			return catalog.Info{}, fmt.Errorf("upload of %d tuples exceeds -max-tuples %d", len(req.Keys), maxTuples)
		}
		rids := req.RIDs
		if rids == nil {
			rids = make([]int32, len(req.Keys))
			for i := range rids {
				rids[i] = int32(i)
			}
		}
		return svc.LoadRelation(req.Name, rel.Relation{RIDs: rids, Keys: req.Keys})
	}
	if req.RIDs != nil {
		return catalog.Info{}, errors.New("rids without keys")
	}

	n := req.N
	if n == 0 {
		n = 1 << 20
	}
	if n < 0 {
		return catalog.Info{}, fmt.Errorf("negative relation size n=%d", n)
	}
	if n > maxTuples {
		return catalog.Info{}, fmt.Errorf("relation size %d exceeds -max-tuples %d", n, maxTuples)
	}
	// The permutation buffer scales with key_range, not n: bound it too,
	// or a tiny request could force a multi-gigabyte allocation.
	if req.KeyRange < 0 || req.KeyRange > maxTuples {
		return catalog.Info{}, fmt.Errorf("key_range %d out of [0, -max-tuples %d]", req.KeyRange, maxTuples)
	}
	dist, err := rel.ParseDistribution(req.Skew)
	if err != nil {
		return catalog.Info{}, err
	}
	g := rel.Gen{N: n, Dist: dist, Seed: seed, KeyRange: req.KeyRange}

	if req.ProbeOf != "" {
		sel := 1.0
		if req.Sel != nil {
			sel = *req.Sel
		}
		if sel < 0 || sel > 1 {
			return catalog.Info{}, fmt.Errorf("selectivity %v out of [0,1]", sel)
		}
		return svc.RegisterProbe(req.Name, req.ProbeOf, g, sel)
	}
	if req.Sel != nil {
		return catalog.Info{}, errors.New("sel without probe_of")
	}
	return svc.RegisterGen(req.Name, g)
}

// relationStatus maps a catalog error to its HTTP status. Cluster errors
// pass their own status through — a remote shard's 507 stays a 507, a
// downed shard is a 503.
func relationStatus(err error) int {
	if status, ok := clusterStatus(err); ok {
		return status
	}
	switch {
	case errors.Is(err, catalog.ErrExists):
		return http.StatusConflict
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, catalog.ErrNoSpace):
		return http.StatusInsufficientStorage
	default:
		return http.StatusBadRequest
	}
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled)
}
