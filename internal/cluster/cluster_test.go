package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyShard fails the first failN requests to a path with a 500, then
// succeeds, counting attempts per method.
type flakyShard struct {
	failN int32
	gets  atomic.Int32
	posts atomic.Int32
}

func (f *flakyShard) handler() http.Handler {
	mux := http.NewServeMux()
	serve := func(n int32, w http.ResponseWriter) {
		if n <= f.failN {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{"code": "internal", "message": "transient"}})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"result": map[string]any{"ok": true, "attempt": n}})
	}
	mux.HandleFunc("GET /v1/thing", func(w http.ResponseWriter, r *http.Request) {
		serve(f.gets.Add(1), w)
	})
	mux.HandleFunc("POST /v1/thing", func(w http.ResponseWriter, r *http.Request) {
		serve(f.posts.Add(1), w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"result": map[string]any{"status": "ok"}})
	})
	return mux
}

// TestClientRetriesIdempotent checks the retry contract: idempotent GETs
// retry through transient 5xx failures with bounded attempts, while POSTs
// get exactly one attempt and surface the structured shard error.
func TestClientRetriesIdempotent(t *testing.T) {
	shard := &flakyShard{failN: 2}
	srv := httptest.NewServer(shard.handler())
	defer srv.Close()

	p := NewPool(Config{
		Addrs:          []string{srv.URL},
		Retries:        3,
		Backoff:        time.Millisecond,
		HealthInterval: time.Hour, // keep probes out of the counters
	})
	defer p.Close()

	var out struct {
		OK      bool  `json:"ok"`
		Attempt int32 `json:"attempt"`
	}
	if err := p.Call(context.Background(), 0, http.MethodGet, "/v1/thing", nil, &out); err != nil {
		t.Fatalf("GET with retries: %v", err)
	}
	if got := shard.gets.Load(); got != 3 {
		t.Fatalf("GET attempts = %d, want 3 (two 500s then success)", got)
	}
	if !out.OK || out.Attempt != 3 {
		t.Fatalf("GET result = %+v, want success on attempt 3", out)
	}

	// The POST hits the same failure budget but must never retry.
	err := p.Call(context.Background(), 0, http.MethodPost, "/v1/thing", map[string]any{"x": 1}, nil)
	if err == nil {
		t.Fatal("POST against failing shard succeeded; want exactly one failed attempt")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("POST error = %v (%T), want *ShardError", err, err)
	}
	if se.Status != http.StatusInternalServerError || se.Code != "internal" || se.Message != "transient" {
		t.Fatalf("POST ShardError = %+v, want status 500 code internal message transient", se)
	}
	if got := shard.posts.Load(); got != 1 {
		t.Fatalf("POST attempts = %d, want 1 (non-idempotent, never retried)", got)
	}

	rep := p.Report()
	if rep.Shards[0].Retries != 2 {
		t.Fatalf("retry gauge = %d, want 2", rep.Shards[0].Retries)
	}
	if rep.Shards[0].Failures != 1 {
		t.Fatalf("failure gauge = %d, want 1 (the POST)", rep.Shards[0].Failures)
	}
}

// TestRetriesExhausted checks a GET against a persistently failing shard
// stops after 1+Retries attempts and returns the last error rather than
// looping.
func TestRetriesExhausted(t *testing.T) {
	shard := &flakyShard{failN: 100}
	srv := httptest.NewServer(shard.handler())
	defer srv.Close()

	p := NewPool(Config{Addrs: []string{srv.URL}, Retries: 2, Backoff: time.Millisecond, HealthInterval: time.Hour})
	defer p.Close()

	err := p.Call(context.Background(), 0, http.MethodGet, "/v1/thing", nil, nil)
	if err == nil {
		t.Fatal("GET against always-failing shard succeeded")
	}
	if got := shard.gets.Load(); got != 3 {
		t.Fatalf("GET attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

// TestTransportErrorIsShardDown checks that an unreachable shard surfaces
// as ErrShardDown so the HTTP layer can map it to a structured 503.
func TestTransportErrorIsShardDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := srv.URL
	srv.Close() // nothing listens anymore

	p := NewPool(Config{Addrs: []string{addr}, Retries: 0, Backoff: time.Millisecond, HealthInterval: time.Hour})
	defer p.Close()

	err := p.Call(context.Background(), 0, http.MethodPost, "/v1/join", map[string]any{}, nil)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("error against closed shard = %v, want ErrShardDown", err)
	}
}

// TestHealthTransitions drives a shard through up → down → up via a
// switchable health endpoint and checks the pool's marking plus
// RequireAllUp's fail-fast behavior at each stage.
func TestHealthTransitions(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"result": map[string]any{"status": "ok"}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p := NewPool(Config{
		Addrs:          []string{srv.URL},
		HealthInterval: 20 * time.Millisecond,
		HealthFailures: 2,
		Backoff:        time.Millisecond,
	})
	defer p.Close()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for shard to be %s: %+v", what, p.Report().Shards[0])
	}
	up := func() bool { return p.Report().Shards[0].Up }

	waitFor("probed up", func() bool { return up() && p.Report().Shards[0].Checks > 0 })
	if err := p.RequireAllUp(); err != nil {
		t.Fatalf("RequireAllUp with healthy shard: %v", err)
	}

	healthy.Store(false)
	waitFor("marked down", func() bool { return !up() })
	if err := p.RequireAllUp(); !errors.Is(err, ErrShardDown) {
		t.Fatalf("RequireAllUp with downed shard = %v, want ErrShardDown", err)
	}

	healthy.Store(true)
	waitFor("rejoined", up)
	if err := p.RequireAllUp(); err != nil {
		t.Fatalf("RequireAllUp after recovery: %v", err)
	}
	rep := p.Report().Shards[0]
	if rep.CheckFailures < 2 {
		t.Fatalf("check-failure gauge = %d, want >= 2", rep.CheckFailures)
	}
}
