// Package cluster is the network tier under a cluster-backed service: a
// pool of HTTP clients to remote apujoind shard servers, with per-request
// timeouts, bounded retries (exponential backoff plus jitter, idempotent
// GETs only — a retried POST could double-execute), and a health checker
// that probes every shard's /healthz and marks it up or down.
//
// The pool implements fail-fast semantics for the cluster router: before
// fanning a query out, RequireAllUp refuses immediately — with
// ErrShardDown, which the HTTP layer maps to a structured 503 — when any
// shard is marked down, and a transport failure mid-query surfaces as the
// same sentinel instead of hanging until every retry is exhausted. A
// downed shard rejoins as soon as a probe (or any passive request)
// succeeds again.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrShardDown reports that a shard server is unreachable or marked down
// by the health checker. HTTP front-ends map it to a structured 503 with
// code "shard_down".
var ErrShardDown = errors.New("cluster: shard down")

// ShardError is a structured error envelope returned by a shard server:
// the stable machine-readable code and message from its
// {"error":{code,message}} body, plus the HTTP status it arrived with.
// The router's HTTP layer passes code and status through, so a shard's
// no_space or conflict reaches the client unchanged.
type ShardError struct {
	Shard   int
	Addr    string
	Status  int
	Code    string
	Message string
}

// Error formats the shard error with its origin.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %s: %s", e.Shard, e.Addr, e.Code, e.Message)
}

// Config sizes a Pool. The zero value is usable: defaults fill in.
type Config struct {
	// Addrs are the shard server base URLs in shard order (the contiguous
	// shard.Owner map assigns partitions by this order).
	Addrs []string
	// Timeout bounds each HTTP request attempt; <= 0 selects 120s —
	// generous, because a fanned-out join runs server-side within it.
	Timeout time.Duration
	// Retries is how many times an idempotent request is retried beyond
	// the first attempt; < 0 selects 2. Non-idempotent requests (POST,
	// DELETE) are never retried.
	Retries int
	// Backoff is the base of the exponential retry backoff (attempt k
	// sleeps Backoff·2^k plus up to 50% jitter); <= 0 selects 100ms.
	Backoff time.Duration
	// HealthInterval is the probe period of the health checker; <= 0
	// selects 2s.
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures mark a shard
	// down; <= 0 selects 3.
	HealthFailures int
	// Logf, when non-nil, receives shard up/down transitions.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 3
	}
}

// shardState is one shard's health and traffic gauges.
type shardState struct {
	index int
	addr  string

	mu          sync.Mutex
	up          bool
	since       time.Time
	consecFails int
	checks      int64
	checkFails  int64
	lastProbeNS int64
	probeNSSum  float64
	probes      int64
	requests    int64
	failures    int64
	retries     int64
}

// Pool manages the shard clients and the health checker goroutine. Close
// stops the checker; in-flight requests are bounded by their own timeouts.
type Pool struct {
	cfg    Config
	client *http.Client
	shards []*shardState

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	jmu sync.Mutex
	rng *rand.Rand
}

// NewPool builds the pool and starts the health checker. Shards start
// optimistically up; the first probe round corrects that within one
// HealthInterval.
func NewPool(cfg Config) *Pool {
	cfg.setDefaults()
	p := &Pool{
		cfg:    cfg,
		client: &http.Client{},
		stop:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	now := time.Now()
	for i, addr := range cfg.Addrs {
		p.shards = append(p.shards, &shardState{index: i, addr: addr, up: true, since: now})
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p
}

// Close stops the health checker and waits for it.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Size returns the number of shards.
func (p *Pool) Size() int { return len(p.shards) }

// Addr returns shard i's base URL.
func (p *Pool) Addr(i int) string { return p.shards[i].addr }

// RequireAllUp fails fast when any shard is marked down: a partition's
// owner being unreachable means no join can merge completely, so the
// query is refused before any fan-out work starts.
func (p *Pool) RequireAllUp() error {
	for _, s := range p.shards {
		s.mu.Lock()
		up := s.up
		s.mu.Unlock()
		if !up {
			return fmt.Errorf("shard %d (%s) is marked down: %w", s.index, s.addr, ErrShardDown)
		}
	}
	return nil
}

// jitter returns a uniformly random duration in [0, d/2).
func (p *Pool) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	p.jmu.Lock()
	defer p.jmu.Unlock()
	return time.Duration(p.rng.Int63n(int64(d)/2 + 1))
}

// envelope is the /v1 response envelope: the payload under "result", or a
// structured error.
type envelope struct {
	Result json.RawMessage `json:"result"`
	Error  *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Call performs one request against shard i: method and path against the
// shard's base URL, in (when non-nil) marshaled as the JSON body, the
// envelope's result decoded into out (when non-nil). Idempotent requests
// (GET) retry on transport errors and 5xx responses with exponential
// backoff plus jitter; everything else gets exactly one attempt. Transport
// failures wrap ErrShardDown; structured shard failures return a
// *ShardError. Each attempt is bounded by the pool's Timeout on top of
// ctx.
func (p *Pool) Call(ctx context.Context, i int, method, path string, in, out any) error {
	s := p.shards[i]
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("shard %d (%s): encode %s %s: %w", i, s.addr, method, path, err)
		}
	}
	idempotent := method == http.MethodGet
	attempts := 1
	if idempotent {
		attempts += p.cfg.Retries
	}

	s.mu.Lock()
	s.requests++
	s.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := p.cfg.Backoff << (attempt - 1)
			select {
			case <-time.After(delay + p.jitter(delay)):
			case <-ctx.Done():
				return ctx.Err()
			}
			s.mu.Lock()
			s.retries++
			s.mu.Unlock()
		}
		retriable, err := p.attempt(ctx, s, method, path, body, out)
		if err == nil {
			s.markUp()
			return nil
		}
		lastErr = err
		if !idempotent || !retriable {
			break
		}
	}
	s.reportFailure()
	return lastErr
}

// attempt is one bounded HTTP round-trip. retriable reports whether a
// retry could help (transport errors and 5xx responses; 4xx cannot).
func (p *Pool) attempt(ctx context.Context, s *shardState, method, path string, body []byte, out any) (retriable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, s.addr+path, rd)
	if err != nil {
		return false, fmt.Errorf("shard %d (%s): %s %s: %w", s.index, s.addr, method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		// ctx (the caller's context) expiring is a cancellation, not a
		// shard failure; the per-attempt timeout and transport errors are.
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return true, fmt.Errorf("shard %d (%s): %s %s: %w: %v", s.index, s.addr, method, path, ErrShardDown, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return true, fmt.Errorf("shard %d (%s): %s %s: read: %w: %v", s.index, s.addr, method, path, ErrShardDown, err)
	}
	var env envelope
	if resp.StatusCode < 300 {
		if out == nil {
			return false, nil
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			return false, fmt.Errorf("shard %d (%s): %s %s: decode: %w", s.index, s.addr, method, path, err)
		}
		if err := json.Unmarshal(env.Result, out); err != nil {
			return false, fmt.Errorf("shard %d (%s): %s %s: decode result: %w", s.index, s.addr, method, path, err)
		}
		return false, nil
	}
	se := &ShardError{Shard: s.index, Addr: s.addr, Status: resp.StatusCode, Code: "internal", Message: http.StatusText(resp.StatusCode)}
	if json.Unmarshal(raw, &env) == nil {
		switch {
		case env.Error != nil:
			se.Code, se.Message = env.Error.Code, env.Error.Message
		case env.Result != nil:
			// A failed wait-query returns its state under "result" with the
			// error string inside; surface that message.
			var jr struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(env.Result, &jr) == nil && jr.Error != "" {
				se.Message = jr.Error
			}
		}
	}
	return resp.StatusCode >= 500, se
}

// markUp records a successful request: consecutive failures reset and a
// downed shard rejoins immediately (faster than waiting for the next
// probe).
func (s *shardState) markUp() {
	s.mu.Lock()
	s.consecFails = 0
	if !s.up {
		s.up = true
		s.since = time.Now()
	}
	s.mu.Unlock()
}

// reportFailure records a failed request passively; the health checker's
// threshold decides the down transition so one flaky request cannot
// blackhole a shard.
func (s *shardState) reportFailure() {
	s.mu.Lock()
	s.failures++
	s.mu.Unlock()
}

// healthLoop probes every shard's /healthz each HealthInterval, marking
// shards down after HealthFailures consecutive failures and up on the
// first success.
func (p *Pool) healthLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			for _, s := range p.shards {
				p.probe(s)
			}
		}
	}
}

// probe is one health check of one shard.
func (p *Pool) probe(s *shardState) {
	timeout := p.cfg.HealthInterval
	if p.cfg.Timeout < timeout {
		timeout = p.cfg.Timeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.addr+"/healthz", nil)
	ok := false
	if err == nil {
		if resp, derr := p.client.Do(req); derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			ok = resp.StatusCode < 300
		}
	}
	elapsed := time.Since(start)

	s.mu.Lock()
	s.checks++
	s.lastProbeNS = elapsed.Nanoseconds()
	s.probeNSSum += float64(elapsed.Nanoseconds())
	s.probes++
	var transition string
	if ok {
		s.consecFails = 0
		if !s.up {
			s.up = true
			s.since = time.Now()
			transition = "up"
		}
	} else {
		s.checkFails++
		s.consecFails++
		if s.up && s.consecFails >= p.cfg.HealthFailures {
			s.up = false
			s.since = time.Now()
			transition = "down"
		}
	}
	s.mu.Unlock()
	if transition != "" && p.cfg.Logf != nil {
		p.cfg.Logf("cluster: shard %d (%s) is %s", s.index, s.addr, transition)
	}
}

// ShardStatus is one shard's health and latency gauges for the stats
// surface.
type ShardStatus struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	Up    bool   `json:"up"`
	// Since is when the shard last changed up/down state.
	Since time.Time `json:"since"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int   `json:"consecutive_failures"`
	Checks              int64 `json:"checks"`
	CheckFailures       int64 `json:"check_failures"`
	// LastProbeMS and AvgProbeMS are health-probe round-trip latencies.
	LastProbeMS float64 `json:"last_probe_ms"`
	AvgProbeMS  float64 `json:"avg_probe_ms"`
	// Requests, Failures and Retries count the shard's query/registration
	// traffic (health probes are counted separately above).
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	Retries  int64 `json:"retries"`
}

// Report is the pool's gauge snapshot: one ShardStatus per shard, in shard
// order.
type Report struct {
	Shards []ShardStatus `json:"shards"`
}

// Report snapshots every shard's gauges.
func (p *Pool) Report() Report {
	rep := Report{Shards: make([]ShardStatus, len(p.shards))}
	for i, s := range p.shards {
		s.mu.Lock()
		st := ShardStatus{
			Index:               s.index,
			Addr:                s.addr,
			Up:                  s.up,
			Since:               s.since,
			ConsecutiveFailures: s.consecFails,
			Checks:              s.checks,
			CheckFailures:       s.checkFails,
			LastProbeMS:         float64(s.lastProbeNS) / 1e6,
			Requests:            s.requests,
			Failures:            s.failures,
			Retries:             s.retries,
		}
		if s.probes > 0 {
			st.AvgProbeMS = s.probeNSSum / float64(s.probes) / 1e6
		}
		s.mu.Unlock()
		rep.Shards[i] = st
	}
	return rep
}
