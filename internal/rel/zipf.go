package rel

import (
	"math"
	"math/rand"
)

// ZipfProbe generates a probe relation whose foreign keys follow a Zipf
// distribution over the build relation's keys — the continuous-skew
// companion of the paper's s%-duplicate datasets, matching the Zipf
// workloads of Blanas et al. theta is the Zipf exponent (typical database
// skew studies use 0 < theta ≤ 1; theta→0 degenerates to uniform).
//
// All probe tuples match (selectivity 1); combine with Probe for
// selectivity control when Zipf skew is not needed.
func (g Gen) ZipfProbe(r Relation, theta float64) Relation {
	n := g.N
	rng := rand.New(rand.NewSource(g.Seed + 2))
	keys := make([]int32, n)
	rids := make([]int32, n)

	nr := r.Len()
	if nr == 0 {
		return Relation{Keys: keys, RIDs: rids}
	}
	z := newZipf(rng, theta, nr)
	for i := 0; i < n; i++ {
		rids[i] = int32(i)
		keys[i] = r.Keys[z.next()]
	}
	return Relation{Keys: keys, RIDs: rids}
}

// zipf samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^theta using the
// classic cumulative-inversion method with a precomputed CDF. The stdlib's
// rand.Zipf requires s > 1, which excludes the database-standard
// 0 < theta ≤ 1 range, hence this implementation.
type zipf struct {
	rng *rand.Rand
	cdf []float64
}

func newZipf(rng *rand.Rand, theta float64, n int) *zipf {
	if theta < 0 {
		theta = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &zipf{rng: rng, cdf: cdf}
}

func (z *zipf) next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
