// Package rel defines the relations the joins operate on and the synthetic
// data generators used throughout the evaluation.
//
// Following the paper (Sec. 5.1) and Blanas et al. (SIGMOD 2011), a relation
// consists of two four-byte integer attributes, the record ID and the key
// value, stored column-wise. The default workload is 16 M tuples per
// relation with uniform keys; skewed datasets duplicate a single heavy key
// for s% of the tuples (low-skew s=10, high-skew s=25), and join selectivity
// is controlled by the fraction of probe keys that have a match in the
// build relation.
package rel

import (
	"fmt"
	"math/rand"
	"strings"
)

// Relation is a column-oriented relation of (RID, Key) pairs.
// RIDs[i] and Keys[i] together form tuple i.
type Relation struct {
	RIDs []int32
	Keys []int32
}

// Len returns the number of tuples in the relation.
func (r Relation) Len() int { return len(r.Keys) }

// Bytes returns the in-memory size of the relation in bytes
// (two 4-byte columns), which is what the zero-copy buffer accounting
// and the PCI-e transfer model charge for.
func (r Relation) Bytes() int64 { return int64(r.Len()) * 8 }

// Validate checks structural invariants: equal column lengths and
// non-negative RIDs. It returns a descriptive error on violation.
func (r Relation) Validate() error {
	if len(r.RIDs) != len(r.Keys) {
		return fmt.Errorf("rel: column length mismatch: %d RIDs vs %d keys", len(r.RIDs), len(r.Keys))
	}
	for i, rid := range r.RIDs {
		if rid < 0 {
			return fmt.Errorf("rel: negative RID %d at index %d", rid, i)
		}
	}
	return nil
}

// Slice returns the sub-relation covering tuples [lo, hi).
// The returned relation shares backing storage with r.
func (r Relation) Slice(lo, hi int) Relation {
	return Relation{RIDs: r.RIDs[lo:hi], Keys: r.Keys[lo:hi]}
}

// Distribution identifies one of the paper's synthetic data distributions.
type Distribution int

const (
	// Uniform assigns distinct, uniformly shuffled key values.
	Uniform Distribution = iota
	// LowSkew duplicates one key value for 10% of the tuples (s=10).
	LowSkew
	// HighSkew duplicates one key value for 25% of the tuples (s=25).
	HighSkew
)

// String returns the name used in the paper's figures.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case LowSkew:
		return "low-skew"
	case HighSkew:
		return "high-skew"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution parses the CLI/API name of a distribution ("uniform",
// "low", "high"); the empty string selects Uniform. Shared by the command
// front-ends so the accepted vocabulary cannot drift.
func ParseDistribution(s string) (Distribution, error) {
	switch strings.ToLower(s) {
	case "", "uniform":
		return Uniform, nil
	case "low", "low-skew":
		return LowSkew, nil
	case "high", "high-skew":
		return HighSkew, nil
	default:
		return 0, fmt.Errorf("rel: unknown skew %q (uniform | low | high)", s)
	}
}

// SkewPercent returns the share of tuples carrying the duplicated heavy key,
// per the paper's definition ("s% of tuples with one duplicate key value").
func (d Distribution) SkewPercent() int {
	switch d {
	case LowSkew:
		return 10
	case HighSkew:
		return 25
	default:
		return 0
	}
}

// Gen describes a synthetic dataset to generate.
type Gen struct {
	// N is the number of tuples.
	N int
	// Dist selects the key distribution.
	Dist Distribution
	// Seed makes generation deterministic.
	Seed int64
	// KeyRange is the size of the key domain for unique keys.
	// Zero means "equal to N".
	KeyRange int
}

// Build generates a build relation R: key values are a permutation of
// [1, KeyRange], so keys are distinct (the primary-key side of the join,
// as in Blanas et al.). Dist does not alter the build side — skew lives in
// the foreign keys of the probe relation; a skewed build side would make
// the join output quadratic.
func (g Gen) Build() Relation {
	n := g.N
	keyRange := g.KeyRange
	if keyRange <= 0 {
		keyRange = n
	}
	rng := rand.New(rand.NewSource(g.Seed))

	keys := make([]int32, n)
	rids := make([]int32, n)
	// Permutation of 1..keyRange truncated to n values.
	perm := rng.Perm(keyRange)
	for i := 0; i < n; i++ {
		keys[i] = int32(perm[i%keyRange] + 1)
		rids[i] = int32(i)
	}
	return Relation{RIDs: rids, Keys: keys}
}

// Probe generates a probe relation S against build relation r with the
// given match selectivity in [0,1]: that fraction of probe tuples carry a
// key that exists in r; the rest carry keys outside r's domain.
func (g Gen) Probe(r Relation, selectivity float64) Relation {
	if selectivity < 0 || selectivity > 1 {
		panic(fmt.Sprintf("rel: selectivity %v out of [0,1]", selectivity))
	}
	n := g.N
	rng := rand.New(rand.NewSource(g.Seed + 1))

	keys := make([]int32, n)
	rids := make([]int32, n)
	nr := r.Len()
	// Non-matching keys live above every key Build can generate.
	nonMatchBase := int32(1 << 30)
	for i := 0; i < n; i++ {
		rids[i] = int32(i)
		if rng.Float64() < selectivity && nr > 0 {
			keys[i] = r.Keys[rng.Intn(nr)]
		} else {
			keys[i] = nonMatchBase + int32(rng.Intn(1<<20))
		}
	}

	// Skew: s% of the probe tuples carry one duplicate (heavy) foreign
	// key — low-skew s=10, high-skew s=25 — so those probes hammer one
	// bucket (latch contention) while enjoying its cache residency, the
	// tension the paper's Sec. 5.5 and locking microbenchmark discuss.
	if s := g.Dist.SkewPercent(); s > 0 && n > 0 && nr > 0 {
		heavy := r.Keys[0]
		dups := n * s / 100
		for i := 0; i < dups; i++ {
			keys[rng.Intn(n)] = heavy
		}
	}
	return Relation{RIDs: rids, Keys: keys}
}

// NaiveJoinCount computes the number of matching (r,s) pairs with a plain
// Go map, used as the correctness oracle in tests.
func NaiveJoinCount(r, s Relation) int64 {
	byKey := make(map[int32]int64, r.Len())
	for _, k := range r.Keys {
		byKey[k]++
	}
	var total int64
	for _, k := range s.Keys {
		total += byKey[k]
	}
	return total
}
