package rel

import (
	"testing"
	"testing/quick"
)

func TestBuildUniformUniqueKeys(t *testing.T) {
	r := Gen{N: 10000, Seed: 1}.Build()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, k := range r.Keys {
		if seen[k] {
			t.Fatalf("duplicate key %d in uniform build relation", k)
		}
		seen[k] = true
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Gen{N: 1000, Seed: 7}.Build()
	b := Gen{N: 1000, Seed: 7}.Build()
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Gen{N: 1000, Seed: 8}.Build()
	same := true
	for i := range a.Keys {
		if a.Keys[i] != c.Keys[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSkewHeavyKeyShareInProbe(t *testing.T) {
	for _, tc := range []struct {
		dist Distribution
		pct  int
	}{{LowSkew, 10}, {HighSkew, 25}} {
		g := Gen{N: 100000, Dist: tc.dist, Seed: 3}
		r := g.Build()
		s := g.Probe(r, 1.0)
		counts := map[int32]int{}
		for _, k := range s.Keys {
			counts[k]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		// The heavy foreign key should hold roughly pct% of probe tuples
		// (random overwrite collides with itself, so allow slack below).
		lo, hi := tc.pct*100000/100*80/100, tc.pct*100000/100*110/100
		if max < lo || max > hi {
			t.Errorf("%v: heavy key count %d not in [%d,%d]", tc.dist, max, lo, hi)
		}
	}
}

func TestSkewKeepsBuildKeysUnique(t *testing.T) {
	r := Gen{N: 10000, Dist: HighSkew, Seed: 3}.Build()
	seen := map[int32]bool{}
	for _, k := range r.Keys {
		if seen[k] {
			t.Fatal("skewed build relation has duplicate keys; skew must live in the probe side")
		}
		seen[k] = true
	}
}

func TestSkewJoinOutputLinear(t *testing.T) {
	g := Gen{N: 50000, Dist: HighSkew, Seed: 9}
	r := g.Build()
	s := g.Probe(r, 1.0)
	m := NaiveJoinCount(r, s)
	if m > int64(s.Len())*2 {
		t.Fatalf("skewed join output %d blew up past linear (%d probes)", m, s.Len())
	}
}

func TestProbeSelectivity(t *testing.T) {
	r := Gen{N: 50000, Seed: 5}.Build()
	inR := map[int32]bool{}
	for _, k := range r.Keys {
		inR[k] = true
	}
	for _, sel := range []float64{0, 0.125, 0.5, 1.0} {
		s := Gen{N: 50000, Seed: 6}.Probe(r, sel)
		matches := 0
		for _, k := range s.Keys {
			if inR[k] {
				matches++
			}
		}
		got := float64(matches) / float64(s.Len())
		if got < sel-0.02 || got > sel+0.02 {
			t.Errorf("selectivity %.3f: got %.3f matching fraction", sel, got)
		}
	}
}

func TestProbeSelectivityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for selectivity out of range")
		}
	}()
	r := Gen{N: 10, Seed: 1}.Build()
	Gen{N: 10, Seed: 2}.Probe(r, 1.5)
}

func TestValidateRejectsBadRelations(t *testing.T) {
	bad := Relation{RIDs: []int32{1, 2}, Keys: []int32{1}}
	if bad.Validate() == nil {
		t.Fatal("length mismatch not detected")
	}
	neg := Relation{RIDs: []int32{-1}, Keys: []int32{1}}
	if neg.Validate() == nil {
		t.Fatal("negative rid not detected")
	}
}

func TestSliceSharesBacking(t *testing.T) {
	r := Gen{N: 100, Seed: 1}.Build()
	s := r.Slice(10, 20)
	if s.Len() != 10 {
		t.Fatalf("slice length %d", s.Len())
	}
	s.Keys[0] = 42
	if r.Keys[10] != 42 {
		t.Fatal("slice does not share backing storage")
	}
}

func TestBytes(t *testing.T) {
	r := Gen{N: 1000, Seed: 1}.Build()
	if r.Bytes() != 8000 {
		t.Fatalf("bytes = %d, want 8000", r.Bytes())
	}
}

func TestNaiveJoinCountProperties(t *testing.T) {
	// |R ⋈ S| with unique R keys equals the number of S tuples whose key
	// is in R.
	f := func(seed int64) bool {
		g := Gen{N: 500, Seed: seed}
		r := g.Build()
		s := Gen{N: 500, Seed: seed + 1}.Probe(r, 0.5)
		inR := map[int32]bool{}
		for _, k := range r.Keys {
			inR[k] = true
		}
		var want int64
		for _, k := range s.Keys {
			if inR[k] {
				want++
			}
		}
		return NaiveJoinCount(r, s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfProbeSkewGrowsWithTheta(t *testing.T) {
	r := Gen{N: 10000, Seed: 1}.Build()
	heavyShare := func(theta float64) float64 {
		s := Gen{N: 50000, Seed: 2}.ZipfProbe(r, theta)
		counts := map[int32]int{}
		for _, k := range s.Keys {
			counts[k]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(s.Len())
	}
	flat := heavyShare(0)
	mild := heavyShare(0.5)
	heavy := heavyShare(1.0)
	if !(flat < mild && mild < heavy) {
		t.Fatalf("zipf skew not monotone in theta: %v %v %v", flat, mild, heavy)
	}
	if heavy < 0.02 {
		t.Fatalf("theta=1 heaviest key share %v too small", heavy)
	}
}

func TestZipfProbeAllMatch(t *testing.T) {
	r := Gen{N: 1000, Seed: 3}.Build()
	s := Gen{N: 5000, Seed: 4}.ZipfProbe(r, 0.8)
	inR := map[int32]bool{}
	for _, k := range r.Keys {
		inR[k] = true
	}
	for _, k := range s.Keys {
		if !inR[k] {
			t.Fatal("zipf probe produced a non-matching key")
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZipfProbeEmptyBuild(t *testing.T) {
	s := Gen{N: 10, Seed: 5}.ZipfProbe(Relation{}, 1)
	if s.Len() != 10 {
		t.Fatal("wrong length")
	}
}
