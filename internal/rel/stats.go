package rel

import "sort"

// KeySample returns a strided sample of the relation's keys: every
// (Len/target)-th key, or every key when the relation has at most target
// tuples. The stride arithmetic is shared with the planner's workload
// fingerprint (internal/plan) — a catalog that samples at ingest and a
// planner that samples per query must walk the identical positions, or the
// measured skew/selectivity buckets (and with them the fingerprints) would
// diverge between the two paths.
func (r Relation) KeySample(target int) []int32 {
	n := r.Len()
	if n == 0 || target <= 0 {
		return nil
	}
	stride := n / target
	if stride < 1 {
		stride = 1
	}
	sample := make([]int32, 0, (n+stride-1)/stride)
	for i := 0; i < n; i += stride {
		sample = append(sample, r.Keys[i])
	}
	return sample
}

// KeyIndex is a sorted copy of a relation's key column, supporting
// O(log n) membership tests. The relation catalog builds one per
// registered relation at ingest so per-query selectivity measurement
// becomes a handful of binary searches over a stored probe sample instead
// of a full scan of the build relation.
type KeyIndex []int32

// Index returns the sorted key index of the relation.
func (r Relation) Index() KeyIndex {
	ix := make(KeyIndex, len(r.Keys))
	copy(ix, r.Keys)
	sort.Slice(ix, func(i, j int) bool { return ix[i] < ix[j] })
	return ix
}

// Contains reports whether key k occurs in the indexed relation.
func (ix KeyIndex) Contains(k int32) bool {
	i := sort.Search(len(ix), func(i int) bool { return ix[i] >= k })
	return i < len(ix) && ix[i] == k
}
