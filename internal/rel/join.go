package rel

// JoinMaterialize materializes R ⋈ S on the key columns as a relation: one
// output tuple per matching (r, s) pair, carrying the join key and a dense
// RID. It is the intermediate-producing step of multi-way join pipelines —
// the output of one pairwise join becomes the build side of the next.
//
// The output order is a pure function of the inputs and never of any
// execution choice: tuples appear in probe order (every match of S's tuple
// 0, then of tuple 1, ...), with a tuple's matches ordered by the build
// side's tuple order. RIDs are dense from 0 in that order. This is what
// makes pipelines bit-identical across worker counts: the engine's
// parallel run contributes only the simulated numbers, while the
// intermediate data always comes from this single-stream construction.
//
// The output length equals the pairwise match count (Result.Matches of the
// corresponding join), which pipeline execution uses as a cross-check.
func JoinMaterialize(r, s Relation) Relation {
	counts := KeyCounts(r)
	var m int64
	for _, k := range s.Keys {
		m += int64(counts[k])
	}
	if m == 0 {
		// The zero relation, with nil columns — the same representation a
		// tuple-at-a-time construction (and the test oracle) produces.
		return Relation{}
	}
	out := Relation{
		RIDs: make([]int32, 0, m),
		Keys: make([]int32, 0, m),
	}
	for _, k := range s.Keys {
		for c := counts[k]; c > 0; c-- {
			out.RIDs = append(out.RIDs, int32(len(out.RIDs)))
			out.Keys = append(out.Keys, k)
		}
	}
	return out
}

// KeyCounts returns the key → multiplicity table of the relation — the
// per-key match counts a hash table built over it would hold. It is the
// compact producer state a pipeline hands from one join to the
// construction of the next intermediate: together with the probe side's
// key column it determines the materialized output completely, so
// JoinMaterialize's single-stream pass and the engine's morsel-parallel
// streamed producer (core.StreamMaterialize) agree bit for bit.
func KeyCounts(r Relation) map[int32]int32 {
	counts := make(map[int32]int32, r.Len())
	for _, k := range r.Keys {
		counts[k]++
	}
	return counts
}
