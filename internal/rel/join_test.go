package rel

import (
	"reflect"
	"testing"
)

// TestJoinMaterialize pins the intermediate contract: probe order, a probe
// tuple's matches in build order, dense RIDs, multiplicity for duplicate
// build keys, and the zero relation (nil columns) for an empty join.
func TestJoinMaterialize(t *testing.T) {
	r := Relation{RIDs: []int32{0, 1, 2}, Keys: []int32{7, 5, 7}}
	s := Relation{RIDs: []int32{0, 1, 2, 3}, Keys: []int32{5, 9, 7, 5}}
	got := JoinMaterialize(r, s)
	want := Relation{RIDs: []int32{0, 1, 2, 3}, Keys: []int32{5, 7, 7, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JoinMaterialize = %+v, want %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("intermediate fails validation: %v", err)
	}
	if int64(got.Len()) != NaiveJoinCount(r, s) {
		t.Errorf("len %d != naive count %d", got.Len(), NaiveJoinCount(r, s))
	}

	// Empty join → the zero relation, not empty non-nil columns: pipeline
	// intermediates and tuple-at-a-time references must compare equal.
	disjoint := Relation{RIDs: []int32{0}, Keys: []int32{42}}
	if got := JoinMaterialize(r, disjoint); !reflect.DeepEqual(got, Relation{}) {
		t.Errorf("empty join = %+v, want the zero relation", got)
	}
	if got := JoinMaterialize(Relation{}, Relation{}); !reflect.DeepEqual(got, Relation{}) {
		t.Errorf("empty inputs = %+v, want the zero relation", got)
	}

	// Generated data: length always equals the reference count.
	br := Gen{N: 2000, Seed: 1}.Build()
	pr := Gen{N: 3000, Dist: HighSkew, Seed: 2}.Probe(br, 0.4)
	if got := JoinMaterialize(br, pr); int64(got.Len()) != NaiveJoinCount(br, pr) {
		t.Errorf("generated: len %d != naive count %d", got.Len(), NaiveJoinCount(br, pr))
	}
}
