package service

import (
	"context"
	"fmt"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/rel"
	"apujoin/internal/shard"
)

// BenchmarkServiceThroughput measures end-to-end query throughput of the
// service layer: b.N PHJ-PL joins submitted through admission onto the
// shared resident pool, MaxConcurrent in flight at a time. ns/op is host
// wall-clock per query at service concurrency; the simulated numbers are
// checked invariant against the first query. Its trajectory is recorded in
// BENCH_service.json by `make bench-json` and the CI artifact.
func BenchmarkServiceThroughput(b *testing.B) {
	r := rel.Gen{N: 1 << 17, Seed: 1}.Build()
	s := rel.Gen{N: 1 << 17, Seed: 2}.Probe(r, 1.0)
	opt := core.Options{Algo: core.PHJ, Scheme: core.PL, Delta: 0.1, PilotItems: 1 << 13}

	svc := New(Options{MaxConcurrent: 4, MaxQueue: 1 << 20})
	defer svc.Close()

	b.SetBytes(r.Bytes() + s.Bytes())
	b.ResetTimer()

	queries := make([]*Query, 0, b.N)
	for i := 0; i < b.N; i++ {
		q, err := svc.Submit(context.Background(), r, s, opt)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	var refMatches int64
	var refSimNS float64
	for _, q := range queries {
		res, err := q.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if refMatches == 0 {
			refMatches, refSimNS = res.Matches, res.TotalNS
		} else if res.Matches != refMatches || res.TotalNS != refSimNS {
			b.Fatalf("concurrency changed results: matches %d (want %d), simNS %.0f (want %.0f)",
				res.Matches, refMatches, res.TotalNS, refSimNS)
		}
	}
	// Deterministic simulated time per query: the machine-independent
	// metric the CI benchmark-regression gate diffs.
	b.ReportMetric(refSimNS, "sim_ns/op")
}

// BenchmarkCatalogReuse measures what registering data once buys: the
// end-to-end submit latency of an auto-planned query whose relations are
// catalog handles (warm: no generation, ingest-time statistics feed the
// fingerprint, the plan cache hits) against the same query regenerating
// and re-measuring its relations per submission — apujoind's pre-catalog
// behavior. Both variants run the identical join, so sim_ns/op is equal by
// construction and the ns/op gap is pure host-side generation plus
// measurement. Recorded in BENCH_service.json and gated by bench-check.
func BenchmarkCatalogReuse(b *testing.B) {
	const tuples = 1 << 17
	rg := rel.Gen{N: tuples, Seed: 1}
	sg := rel.Gen{N: tuples, Seed: 2}
	opt := core.Options{Delta: 0.1, PilotItems: 1 << 13}

	run := func(b *testing.B, spec func() JoinSpec) {
		b.Helper()
		svc := New(Options{MaxConcurrent: 2, MaxQueue: 1 << 20})
		defer svc.Close()
		if _, err := svc.Catalog().RegisterGen("r", rg); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Catalog().RegisterProbe("s", "r", sg, 1.0); err != nil {
			b.Fatal(err)
		}
		// Prime the shared plan cache outside the timer so both variants
		// measure steady-state submits, not the one-off pilot.
		q, err := svc.SubmitSpec(context.Background(), spec())
		if err != nil {
			b.Fatal(err)
		}
		ref, err := q.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(tuples) * 8 * 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, err := svc.SubmitSpec(context.Background(), spec())
			if err != nil {
				b.Fatal(err)
			}
			res, err := q.Wait(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if res.Matches != ref.Matches || res.TotalNS != ref.TotalNS {
				b.Fatalf("results drifted: matches %d (want %d), simNS %.0f (want %.0f)",
					res.Matches, ref.Matches, res.TotalNS, ref.TotalNS)
			}
		}
		b.ReportMetric(ref.TotalNS, "sim_ns/op")
	}

	b.Run("catalog", func(b *testing.B) {
		run(b, func() JoinSpec {
			return JoinSpec{RName: "r", SName: "s", Opt: opt, Auto: true}
		})
	})
	b.Run("inline-regen", func(b *testing.B) {
		run(b, func() JoinSpec {
			r := rg.Build()
			s := sg.Probe(r, 1.0)
			return JoinSpec{R: r, S: s, Opt: opt, Auto: true}
		})
	})
}

// BenchmarkShardedScaleout measures the stateless router's host-side cost
// against its parallelism: the identical catalog join on one shard and on
// the maximum (one shard per hash partition). ns/op is host wall-clock per
// fan-out join; sim_ns/op is the deterministic simulated time, which the
// shard-count-invariance contract requires to be bit-identical between the
// two variants — the regression gate diffs both. Recorded in
// BENCH_service.json by `make bench-json`.
func BenchmarkShardedScaleout(b *testing.B) {
	const tuples = 1 << 17
	rg := rel.Gen{N: tuples, Seed: 1}
	sg := rel.Gen{N: tuples, Seed: 2}
	opt := core.Options{Algo: core.PHJ, Scheme: core.PL, Delta: 0.1, PilotItems: 1 << 13}

	run := func(b *testing.B, shards int) {
		b.Helper()
		svc := New(Config{Shards: shards})
		defer svc.Close()
		if _, err := svc.RegisterGen("r", rg); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.RegisterProbe("s", "r", sg, 1.0); err != nil {
			b.Fatal(err)
		}
		spec := JoinSpec{RName: "r", SName: "s", Opt: opt}
		ref, err := svc.RunJoin(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(tuples) * 8 * 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := svc.RunJoin(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Matches != ref.Matches || res.TotalNS != ref.TotalNS {
				b.Fatalf("results drifted: matches %d (want %d), simNS %.0f (want %.0f)",
					res.Matches, ref.Matches, res.TotalNS, ref.TotalNS)
			}
		}
		b.ReportMetric(ref.TotalNS, "sim_ns/op")
	}

	b.Run("shards=1", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("shards=%d", shard.Partitions), func(b *testing.B) { run(b, shard.Partitions) })
}
