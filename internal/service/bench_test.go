package service

import (
	"context"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// BenchmarkServiceThroughput measures end-to-end query throughput of the
// service layer: b.N PHJ-PL joins submitted through admission onto the
// shared resident pool, MaxConcurrent in flight at a time. ns/op is host
// wall-clock per query at service concurrency; the simulated numbers are
// checked invariant against the first query. Its trajectory is recorded in
// BENCH_service.json by `make bench-json` and the CI artifact.
func BenchmarkServiceThroughput(b *testing.B) {
	r := rel.Gen{N: 1 << 17, Seed: 1}.Build()
	s := rel.Gen{N: 1 << 17, Seed: 2}.Probe(r, 1.0)
	opt := core.Options{Algo: core.PHJ, Scheme: core.PL, Delta: 0.1, PilotItems: 1 << 13}

	svc := New(Options{MaxConcurrent: 4, MaxQueue: 1 << 20})
	defer svc.Close()

	b.SetBytes(r.Bytes() + s.Bytes())
	b.ResetTimer()

	queries := make([]*Query, 0, b.N)
	for i := 0; i < b.N; i++ {
		q, err := svc.Submit(context.Background(), r, s, opt)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	var refMatches int64
	var refSimNS float64
	for _, q := range queries {
		res, err := q.Wait(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if refMatches == 0 {
			refMatches, refSimNS = res.Matches, res.TotalNS
		} else if res.Matches != refMatches || res.TotalNS != refSimNS {
			b.Fatalf("concurrency changed results: matches %d (want %d), simNS %.0f (want %.0f)",
				res.Matches, refMatches, res.TotalNS, refSimNS)
		}
	}
	// Deterministic simulated time per query: the machine-independent
	// metric the CI benchmark-regression gate diffs.
	b.ReportMetric(refSimNS, "sim_ns/op")
}
