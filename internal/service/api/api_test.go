package api

import (
	"encoding/json"
	"reflect"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/shard"
)

// sampleResult fills every merge-relevant field with awkward values:
// non-terminating binary fractions and sums that differ under reordering,
// so any lossy transport (rounding, pre-summing, ms conversion) breaks the
// comparison.
func sampleResult(i int) *core.Result {
	f := float64(i)
	r := &core.Result{
		Algo:           core.PHJ,
		Scheme:         core.CoarsePL,
		Arch:           core.Discrete,
		Matches:        int64(i) * 1001,
		TotalNS:        0.1 + f*1e7/3,
		EstimatedNS:    f * 0.3,
		LockOverheadNS: f * 0.7,
		EstPartitionNS: f / 3,
		EstBuildNS:     f / 7,
		EstProbeNS:     f / 11,
		ZeroCopyBytes:  int64(i) << 20,
	}
	r.PartitionNS = f * 1.1
	r.BuildNS = f * 2.2
	r.ProbeNS = f * 3.3
	r.MergeNS = f * 4.4
	r.TransferNS = f * 5.5
	r.Cache.Accesses = int64(i) * 17
	r.Cache.Misses = int64(i) * 3
	r.AllocStats.Allocs = int64(i)
	r.AllocStats.Words = int64(i) * 8
	r.AllocStats.GlobalAtomics = int64(i) * 2
	r.AllocStats.LocalOps = int64(i) * 5
	r.AllocStats.WastedWords = int64(i)
	return r
}

// TestPartitionResultRoundTrip checks the cluster transport's core
// invariant: a per-partition result that crosses the wire as JSON and is
// rebuilt on the other side merges to the bit-identical Result.
func TestPartitionResultRoundTrip(t *testing.T) {
	orig := make([]*core.Result, shard.Partitions)
	rebuilt := make([]*core.Result, shard.Partitions)
	for p := range orig {
		orig[p] = sampleResult(p + 1)

		raw, err := json.Marshal(FromResult(orig[p]))
		if err != nil {
			t.Fatalf("marshal partition %d: %v", p, err)
		}
		var pr PartitionResult
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("unmarshal partition %d: %v", p, err)
		}
		rebuilt[p] = pr.ToResult()
	}
	got, want := shard.MergeResults(rebuilt), shard.MergeResults(orig)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged results diverge after wire round-trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestWireNamesParse checks every wire name the cluster router may emit
// parses back to the enum it came from — the String() forms do not all
// round-trip, which is exactly why these helpers exist.
func TestWireNamesParse(t *testing.T) {
	for _, a := range []core.Algo{core.SHJ, core.PHJ} {
		got, err := core.ParseAlgo(AlgoName(a))
		if err != nil || got != a {
			t.Errorf("AlgoName(%v) = %q: parsed to %v, err %v", a, AlgoName(a), got, err)
		}
	}
	for _, s := range []core.Scheme{core.CPUOnly, core.GPUOnly, core.OL, core.DD, core.PL, core.BasicUnit, core.CoarsePL} {
		got, err := core.ParseScheme(SchemeName(s))
		if err != nil || got != s {
			t.Errorf("SchemeName(%v) = %q: parsed to %v, err %v", s, SchemeName(s), got, err)
		}
	}
	for _, a := range []core.Arch{core.Coupled, core.Discrete} {
		got, err := core.ParseArch(ArchName(a))
		if err != nil || got != a {
			t.Errorf("ArchName(%v) = %q: parsed to %v, err %v", a, ArchName(a), got, err)
		}
	}
}
