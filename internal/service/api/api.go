// Package api holds the JSON request and response types of the /v1 HTTP
// surface, shared by every process that speaks it: the apujoind daemon
// (internal/httpapi serves these types over one service.Service) and the
// apujoin-router cluster tier (internal/service's cluster backend forwards
// them to remote shard servers and decodes their responses).
//
// The wire contract is documented in docs/API.md. Everything here follows
// the unified envelope: success responses nest their payload under
// {"result": …} and failures return {"error": {"code", "message"}}; the
// envelope itself is written by internal/httpapi, not by these types.
//
// The Partition* types are the cluster protocol's raw transport: a shard
// server asked for per_partition results returns each fixed grid
// partition's untouched Result vector, and the router merges them locally
// with shard.MergeResults in fixed partition order. Raw nanosecond floats
// cross the wire — never pre-summed or millisecond-rounded values —
// because float addition is not associative and encoding/json round-trips
// float64 exactly; that is what keeps cluster results bit-identical to a
// single-process sharded engine.
package api

import (
	"apujoin/internal/core"
	"apujoin/internal/plan"
)

// MaxPipelineSources bounds how many sources one pipeline may join: each
// extra source is a full pairwise join plus a materialized intermediate.
const MaxPipelineSources = 16

// JoinRequest is the JSON body of POST /v1/join and each element of a
// batch. A join either references registered relations (r_name/s_name —
// both or neither) or carries an inline generation spec; absent inline
// fields pick the paper's defaults (SHJ, PL, coupled, 1M ⋈ 1M uniform,
// selectivity 1). Sel and Seed are pointers so an explicit 0 — a valid
// selectivity and a valid seed — is distinguishable from "not set".
type JoinRequest struct {
	// RName/SName reference relations registered via POST /v1/relations;
	// the service pins both for the query's lifetime and reuses their
	// ingest-time statistics in the planner fingerprint.
	RName string `json:"r_name,omitempty"`
	SName string `json:"s_name,omitempty"`

	Algo      string   `json:"algo,omitempty"`   // shj | phj | auto (planner decides algo+scheme)
	Scheme    string   `json:"scheme,omitempty"` // cpu | gpu | ol | dd | pl | basicunit | coarsepl; ignored with algo=auto
	Arch      string   `json:"arch,omitempty"`   // coupled | discrete
	R         int      `json:"r,omitempty"`      // build tuples (inline generation)
	S         int      `json:"s,omitempty"`      // probe tuples (inline generation)
	Sel       *float64 `json:"sel,omitempty"`    // selectivity [0,1]
	Skew      string   `json:"skew,omitempty"`   // uniform | low | high
	Seed      *int64   `json:"seed,omitempty"`
	Separate  bool     `json:"separate,omitempty"`
	Grouping  bool     `json:"grouping,omitempty"`
	Delta     float64  `json:"delta,omitempty"`
	CountOnly bool     `json:"count_only,omitempty"`
	// Wait blocks the request until the query finishes and returns the
	// full result; otherwise the response carries the query id to poll.
	Wait bool `json:"wait,omitempty"`

	// PerPartition asks a sharded server to include the raw per-partition
	// result vector (all shard.Partitions slots) in the response — the
	// cluster protocol's transport. Rejected by unsharded servers.
	PerPartition bool `json:"per_partition,omitempty"`
	// Workload, when set with algo=auto, overrides the planner's workload
	// buckets for the pair. The cluster router computes them from the
	// full-relation ingest statistics it measured centrally, so shard
	// servers — which each hold only a subset of the tuples — fingerprint
	// plans exactly as a single-process engine would.
	Workload *plan.Workload `json:"workload,omitempty"`
}

// PipelineSource is one input of POST /v1/pipeline: a registered relation
// (name) or an inline build-relation generator spec (n, skew, seed,
// key_range — keys a permutation of [1, key_range], so sources generated
// over the same key range join meaningfully).
type PipelineSource struct {
	Name string `json:"name,omitempty"`

	N        int    `json:"n,omitempty"`
	Skew     string `json:"skew,omitempty"`
	Seed     *int64 `json:"seed,omitempty"`
	KeyRange int    `json:"key_range,omitempty"`
}

// PipelineRequest is the JSON body of POST /v1/pipeline: a multi-way join
// over 2..MaxPipelineSources sources executed as a chain of pairwise
// joins. The per-step options mirror /v1/join; algo=auto lets the planner
// decide each step. Unless declared_order is set, the cost-based orderer
// picks the cheapest left-deep order from the catalog's ingest statistics
// (inline sources carry none and force declaration order).
type PipelineRequest struct {
	Sources       []PipelineSource `json:"sources"`
	Algo          string           `json:"algo,omitempty"`
	Scheme        string           `json:"scheme,omitempty"`
	Arch          string           `json:"arch,omitempty"`
	DeclaredOrder bool             `json:"declared_order,omitempty"`
	// Materialized routes every intermediate through the catalog (pinned
	// and charged until the pipeline finishes) instead of the default
	// streamed hand-off; results are identical, only the resident footprint
	// differs.
	Materialized bool    `json:"materialized,omitempty"`
	Separate     bool    `json:"separate,omitempty"`
	Grouping     bool    `json:"grouping,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	CountOnly    bool    `json:"count_only,omitempty"`
	Wait         bool    `json:"wait,omitempty"`

	// PerPartition asks a sharded server for the raw per-partition,
	// per-step result vectors (the cluster protocol); rejected by
	// unsharded servers.
	PerPartition bool `json:"per_partition,omitempty"`
	// FirstWorkload, with algo=auto, overrides the first step's planner
	// workload buckets — the cluster router's full-relation statistics for
	// the pair (order[0], order[1]). Later steps build from intermediates
	// and measure their own partitions, exactly as in-process sharding
	// does.
	FirstWorkload *plan.Workload `json:"first_workload,omitempty"`
}

// BatchRequest is the JSON body of POST /v1/batch: many joins admitted in
// one transaction (all-or-nothing; a full queue rejects the whole batch).
type BatchRequest struct {
	Queries []JoinRequest `json:"queries"`
	// Wait blocks until every query of the batch finishes.
	Wait bool `json:"wait,omitempty"`
}

// BatchResponse reports a batch, element i describing Queries[i].
type BatchResponse struct {
	Queries []JoinResponse `json:"queries"`
}

// RelationRequest is the JSON body of POST /v1/relations. Exactly one of
// three forms: a build-relation generator spec (n, skew, seed, key_range),
// a probe generator spec against a registered build relation (probe_of,
// sel plus the generator fields), or a bulk upload (keys, optional rids).
type RelationRequest struct {
	Name string `json:"name"`

	// Generator spec.
	N        int    `json:"n,omitempty"`
	Skew     string `json:"skew,omitempty"`
	Seed     *int64 `json:"seed,omitempty"`
	KeyRange int    `json:"key_range,omitempty"`

	// Probe spec: generate against this registered build relation with
	// the given match selectivity.
	ProbeOf string   `json:"probe_of,omitempty"`
	Sel     *float64 `json:"sel,omitempty"`

	// Bulk upload. Keys carries no omitempty on purpose: an explicit empty
	// array is a valid upload of zero tuples (the cluster router sends one
	// for a shard whose owned partitions happen to be empty), and omitting
	// the field would flip the request into a generator spec.
	Keys []int32 `json:"keys"`
	RIDs []int32 `json:"rids"`
}

// JoinResponse reports a finished (or submitted) query.
type JoinResponse struct {
	ID       int64           `json:"id"`
	State    string          `json:"state"`
	Matches  int64           `json:"matches,omitempty"`
	TotalMS  float64         `json:"total_ms,omitempty"`
	Phases   *PhaseReport    `json:"phases,omitempty"`
	Plan     *PlanReport     `json:"plan,omitempty"`
	Pipeline *PipelineReport `json:"pipeline,omitempty"`
	WallMS   float64         `json:"wall_ms,omitempty"`
	Error    string          `json:"error,omitempty"`

	// Partitions is the raw per-partition result vector of a sharded join
	// asked for per_partition results, indexed by fixed grid partition.
	Partitions []PartitionResult `json:"partitions,omitempty"`
}

// PlanReport is the planner's decision for an algo=auto query.
type PlanReport struct {
	Algo        string  `json:"algo"`
	Scheme      string  `json:"scheme"`
	Cache       string  `json:"cache"` // "hit" | "miss"
	PredictedMS float64 `json:"predicted_ms"`
}

// PhaseReport breaks a join's simulated time down by phase, in
// milliseconds.
type PhaseReport struct {
	PartitionMS float64 `json:"partition_ms"`
	BuildMS     float64 `json:"build_ms"`
	ProbeMS     float64 `json:"probe_ms"`
	MergeMS     float64 `json:"merge_ms"`
	TransferMS  float64 `json:"transfer_ms"`
}

// PipelineStepReport is one executed pairwise step of a pipeline response.
type PipelineStepReport struct {
	Build       string      `json:"build"`
	Probe       string      `json:"probe"`
	BuildTuples int         `json:"build_tuples"`
	ProbeTuples int         `json:"probe_tuples"`
	Matches     int64       `json:"matches"`
	TotalMS     float64     `json:"total_ms"`
	Plan        *PlanReport `json:"plan,omitempty"`
}

// PipelineReport is the pipeline section of a JoinResponse: the executed
// order and the per-step breakdown. The enclosing response's matches is the
// final multi-way count and its total_ms sums the serial chain.
type PipelineReport struct {
	Sources            int                  `json:"sources"`
	Ordered            bool                 `json:"ordered"`
	Streamed           bool                 `json:"streamed"`
	Order              []int                `json:"order"`
	Steps              []PipelineStepReport `json:"steps"`
	IntermediateTuples int64                `json:"intermediate_tuples"`
	IntermediateBytes  int64                `json:"intermediate_bytes"`
	// PeakIntermediateBytes is the pipeline's resident intermediate
	// high-water mark: at most one transient intermediate when streamed,
	// every intermediate plus its catalog statistics when materialized.
	PeakIntermediateBytes int64 `json:"peak_intermediate_bytes"`
	// Replans counts mid-pipeline re-orderings of the remaining steps;
	// SpilledPartitions and SpillBytes describe hybrid-hash spilling under
	// memory pressure (partitions routed through the simulated spill store
	// and the bytes written to it). All zero when the pipeline ran fully
	// resident under its planned order.
	Replans           int64 `json:"replans,omitempty"`
	SpilledPartitions int64 `json:"spilled_partitions,omitempty"`
	SpillBytes        int64 `json:"spill_bytes,omitempty"`

	// Partitions carries the raw per-partition, per-step results of a
	// sharded pipeline asked for per_partition results.
	Partitions *PipelineParts `json:"partitions,omitempty"`
}

// PipelineParts is the raw per-partition transport of a sharded pipeline:
// for every step, each fixed grid partition's untouched result and input
// cardinalities, plus the per-partition chain gauges. The cluster router
// reassembles the global pipeline report from these exactly as the
// in-process sharded engine does — per-step merges in fixed partition
// order, gauges summed across partitions.
type PipelineParts struct {
	// Steps[t][p] is partition p's raw result of pipeline step t+1.
	Steps [][]PartitionStep `json:"steps"`
	// PeakIntermediateBytes, IntermediateTuples and IntermediateBytes are
	// each partition chain's gauges, indexed by partition.
	PeakIntermediateBytes []int64 `json:"peak_intermediate_bytes"`
	IntermediateTuples    []int64 `json:"intermediate_tuples"`
	IntermediateBytes     []int64 `json:"intermediate_bytes"`
	// SpillDepth is each partition chain's deepest recursive repartitioning
	// level (0 when the chain ran resident), indexed by partition.
	SpillDepth []int `json:"spill_depth,omitempty"`
}

// PartitionStep is one partition's slice of one pipeline step.
type PartitionStep struct {
	Result      PartitionResult `json:"result"`
	BuildTuples int             `json:"build_tuples"`
	ProbeTuples int             `json:"probe_tuples"`
	// Plan is the partition's planner decision for the step (algo=auto and
	// the partition did not spill), raw nanoseconds — the cluster router
	// aggregates the per-partition plans exactly as the in-process sharded
	// engine does, which needs bit-exact floats, not the display PlanReport.
	Plan *PartitionPlan `json:"plan,omitempty"`
}

// PartitionPlan is the raw wire form of one partition's per-step planner
// decision. PredictedNS stays in nanoseconds: the cluster router sums the
// per-partition predictions in fixed partition order, and only the final
// aggregate is ever converted for display.
type PartitionPlan struct {
	Algo        string  `json:"algo"`
	Scheme      string  `json:"scheme"`
	CacheHit    bool    `json:"cache_hit"`
	PredictedNS float64 `json:"predicted_ns"`
}

// PartitionResult is the raw wire form of one partition's core.Result,
// carrying exactly the fields shard.MergeResults sums plus the labels it
// copies from partition 0. Times stay raw float64 nanoseconds (JSON
// round-trips them bit-exactly) and the enum labels cross as their integer
// values — Scheme.String() names like "CPU-only" do not round-trip
// through core.ParseScheme. Per-partition artifacts the merge leaves zero
// (ratio vectors, step series, pilot profiles) are not transported.
type PartitionResult struct {
	Algo   int `json:"algo"`
	Scheme int `json:"scheme"`
	Arch   int `json:"arch"`

	Matches int64 `json:"matches"`

	PartitionNS    float64 `json:"partition_ns"`
	BuildNS        float64 `json:"build_ns"`
	ProbeNS        float64 `json:"probe_ns"`
	MergeNS        float64 `json:"merge_ns"`
	TransferNS     float64 `json:"transfer_ns"`
	TotalNS        float64 `json:"total_ns"`
	EstimatedNS    float64 `json:"estimated_ns"`
	LockOverheadNS float64 `json:"lock_overhead_ns"`
	EstPartitionNS float64 `json:"est_partition_ns"`
	EstBuildNS     float64 `json:"est_build_ns"`
	EstProbeNS     float64 `json:"est_probe_ns"`

	CacheAccesses int64 `json:"cache_accesses"`
	CacheMisses   int64 `json:"cache_misses"`
	ZeroCopyBytes int64 `json:"zero_copy_bytes"`

	SpilledPartitions int64   `json:"spilled_partitions,omitempty"`
	SpillBytes        int64   `json:"spill_bytes,omitempty"`
	SpillNS           float64 `json:"spill_ns,omitempty"`

	Allocs        int64 `json:"allocs"`
	AllocWords    int64 `json:"alloc_words"`
	GlobalAtomics int64 `json:"global_atomics"`
	LocalOps      int64 `json:"local_ops"`
	WastedWords   int64 `json:"wasted_words"`
}

// FromResult projects a core.Result onto its raw wire form.
func FromResult(r *core.Result) PartitionResult {
	return PartitionResult{
		Algo:              int(r.Algo),
		Scheme:            int(r.Scheme),
		Arch:              int(r.Arch),
		Matches:           r.Matches,
		PartitionNS:       r.PartitionNS,
		BuildNS:           r.BuildNS,
		ProbeNS:           r.ProbeNS,
		MergeNS:           r.MergeNS,
		TransferNS:        r.TransferNS,
		TotalNS:           r.TotalNS,
		EstimatedNS:       r.EstimatedNS,
		LockOverheadNS:    r.LockOverheadNS,
		EstPartitionNS:    r.EstPartitionNS,
		EstBuildNS:        r.EstBuildNS,
		EstProbeNS:        r.EstProbeNS,
		CacheAccesses:     r.Cache.Accesses,
		CacheMisses:       r.Cache.Misses,
		ZeroCopyBytes:     r.ZeroCopyBytes,
		SpilledPartitions: r.SpilledPartitions,
		SpillBytes:        r.SpillBytes,
		SpillNS:           r.SpillNS,
		Allocs:            r.AllocStats.Allocs,
		AllocWords:        r.AllocStats.Words,
		GlobalAtomics:     r.AllocStats.GlobalAtomics,
		LocalOps:          r.AllocStats.LocalOps,
		WastedWords:       r.AllocStats.WastedWords,
	}
}

// ToResult rebuilds the core.Result a PartitionResult transports. Only the
// merge-relevant fields are populated — exactly what shard.MergeResults
// reads — so merging rebuilt partition results yields the same merged
// Result, bit for bit, as merging the originals.
func (pr PartitionResult) ToResult() *core.Result {
	r := &core.Result{
		Algo:           core.Algo(pr.Algo),
		Scheme:         core.Scheme(pr.Scheme),
		Arch:           core.Arch(pr.Arch),
		Matches:        pr.Matches,
		TotalNS:        pr.TotalNS,
		EstimatedNS:    pr.EstimatedNS,
		LockOverheadNS: pr.LockOverheadNS,
		EstPartitionNS: pr.EstPartitionNS,
		EstBuildNS:     pr.EstBuildNS,
		EstProbeNS:     pr.EstProbeNS,
		ZeroCopyBytes:  pr.ZeroCopyBytes,
	}
	r.SpilledPartitions = pr.SpilledPartitions
	r.SpillBytes = pr.SpillBytes
	r.SpillNS = pr.SpillNS
	r.PartitionNS = pr.PartitionNS
	r.BuildNS = pr.BuildNS
	r.ProbeNS = pr.ProbeNS
	r.MergeNS = pr.MergeNS
	r.TransferNS = pr.TransferNS
	r.Cache.Accesses = pr.CacheAccesses
	r.Cache.Misses = pr.CacheMisses
	r.AllocStats.Allocs = pr.Allocs
	r.AllocStats.Words = pr.AllocWords
	r.AllocStats.GlobalAtomics = pr.GlobalAtomics
	r.AllocStats.LocalOps = pr.LocalOps
	r.AllocStats.WastedWords = pr.WastedWords
	return r
}

// AlgoName returns the /v1 wire name of an algorithm, parseable by
// core.ParseAlgo. The String() forms are display names and do not all
// round-trip; request construction must use these.
func AlgoName(a core.Algo) string {
	if a == core.PHJ {
		return "phj"
	}
	return "shj"
}

// SchemeName returns the /v1 wire name of a scheme, parseable by
// core.ParseScheme.
func SchemeName(s core.Scheme) string {
	switch s {
	case core.CPUOnly:
		return "cpu"
	case core.GPUOnly:
		return "gpu"
	case core.OL:
		return "ol"
	case core.DD:
		return "dd"
	case core.BasicUnit:
		return "basicunit"
	case core.CoarsePL:
		return "coarsepl"
	default:
		return "pl"
	}
}

// ArchName returns the /v1 wire name of an architecture, parseable by
// core.ParseArch.
func ArchName(a core.Arch) string {
	if a == core.Discrete {
		return "discrete"
	}
	return "coupled"
}
