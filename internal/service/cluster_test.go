// Cluster invariance tests live in the external test package: they boot
// real shard servers through internal/httpapi (which imports service), so
// an in-package test would be an import cycle.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"apujoin/internal/cluster"
	"apujoin/internal/core"
	"apujoin/internal/httpapi"
	"apujoin/internal/rel"
	"apujoin/internal/service"
)

// startShardServer boots one apujoind-equivalent shard server: an
// in-process sharded engine behind the real HTTP surface.
func startShardServer(t *testing.T, shards int) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, MaxConcurrent: 2, Shards: shards})
	ts := httptest.NewServer(httpapi.New(svc, httpapi.Config{}))
	t.Cleanup(func() {
		ts.Close()
		_ = svc.Close()
	})
	return ts
}

// clusterService builds a cluster-backed service over the given shard
// server URLs, with a fast health probe for test turnaround.
func clusterService(t *testing.T, addrs []string) *service.Service {
	t.Helper()
	svc := service.New(service.Config{
		Workers:        2,
		MaxConcurrent:  2,
		Cluster:        addrs,
		ClusterTimeout: 60 * time.Second,
		HealthInterval: 50 * time.Millisecond,
		HealthFailures: 2,
	})
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

// registerTriple registers the shared test fixtures on a service: one
// build relation and two probes of it at different selectivities.
func registerTriple(t *testing.T, svc *service.Service) {
	t.Helper()
	if _, err := svc.RegisterGen("orders", rel.Gen{N: 24000, Seed: 7}); err != nil {
		t.Fatalf("register orders: %v", err)
	}
	if _, err := svc.RegisterProbe("lineitem", "orders", rel.Gen{N: 30000, Seed: 8}, 0.8); err != nil {
		t.Fatalf("register lineitem: %v", err)
	}
	if _, err := svc.RegisterProbe("returns", "orders", rel.Gen{N: 9000, Seed: 9}, 0.3); err != nil {
		t.Fatalf("register returns: %v", err)
	}
}

func ddOptions(t *testing.T, algo string) core.Options {
	t.Helper()
	a, err := core.ParseAlgo(algo)
	if err != nil {
		t.Fatal(err)
	}
	return core.Options{Algo: a, Scheme: core.DD, Delta: 0.1}
}

// TestClusterInvariance is the network half of the shard-count-invariance
// contract: a cluster of 1, 2 and 4 remote shard servers reports results
// bit-identical — match counts, every simulated float, pipeline gauges —
// to the in-process 8-shard engine (itself invariant to the unsharded
// engine by the router tests).
func TestClusterInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 7 shard servers")
	}
	ctx := context.Background()

	ref := service.New(service.Config{Workers: 2, MaxConcurrent: 2, Shards: 8})
	t.Cleanup(func() { _ = ref.Close() })
	registerTriple(t, ref)

	joinSpecs := []service.JoinSpec{
		{RName: "orders", SName: "lineitem", Opt: ddOptions(t, "phj")},
		{RName: "orders", SName: "returns", Opt: ddOptions(t, "shj")},
		{RName: "orders", SName: "lineitem", Auto: true},
	}
	pipeSpec := service.PipelineSpec{
		Sources: []service.PipelineSource{{Name: "orders"}, {Name: "lineitem"}, {Name: "returns"}},
		Auto:    true,
	}

	refJoins := make([]*core.Result, len(joinSpecs))
	for i, sp := range joinSpecs {
		res, err := ref.RunJoin(ctx, sp)
		if err != nil {
			t.Fatalf("reference join %d: %v", i, err)
		}
		refJoins[i] = res
	}
	refPipe, err := ref.RunPipeline(ctx, pipeSpec)
	if err != nil {
		t.Fatalf("reference pipeline: %v", err)
	}

	for _, servers := range []int{1, 2, 4} {
		addrs := make([]string, servers)
		for i := range addrs {
			// Shard-server-side in-process shard counts deliberately vary:
			// invariance must hold across them too.
			addrs[i] = startShardServer(t, 1+i%2).URL
		}
		csvc := clusterService(t, addrs)
		registerTriple(t, csvc)

		for i, sp := range joinSpecs {
			res, err := csvc.RunJoin(ctx, sp)
			if err != nil {
				t.Fatalf("%d servers: join %d: %v", servers, i, err)
			}
			if !reflect.DeepEqual(res, refJoins[i]) {
				t.Errorf("%d servers: join %d diverges from the 8-shard reference:\n cluster %+v\n ref     %+v",
					servers, i, res, refJoins[i])
			}
		}

		pres, err := csvc.RunPipeline(ctx, pipeSpec)
		if err != nil {
			t.Fatalf("%d servers: pipeline: %v", servers, err)
		}
		if !reflect.DeepEqual(pres, refPipe) {
			t.Errorf("%d servers: pipeline diverges from the 8-shard reference:\n cluster %+v\n ref     %+v",
				servers, pres, refPipe)
		}
	}
}

// TestClusterHTTPInlineInvariance drives the HTTP forward path: an inline
// generation join POSTed to a cluster router reports the same matches and
// simulated total as the identical request on a stand-alone server (every
// shard server generates the full relations from the forwarded spec).
func TestClusterHTTPInlineInvariance(t *testing.T) {
	single := startShardServer(t, 1)

	addrs := []string{startShardServer(t, 1).URL, startShardServer(t, 2).URL}
	csvc := clusterService(t, addrs)
	router := httptest.NewServer(httpapi.New(csvc, httpapi.Config{}))
	t.Cleanup(router.Close)

	post := func(url, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("POST %s: non-JSON response: %v", url, err)
		}
		return resp.StatusCode, m
	}

	join := `{"algo":"phj","scheme":"dd","delta":0.1,"r":20000,"s":20000,"sel":0.7,"wait":true}`
	st1, want := post(single.URL+"/v1/join", join)
	st2, got := post(router.URL+"/v1/join", join)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("inline join: single %d %v, router %d %v", st1, want, st2, got)
	}
	if got["matches"] != want["matches"] || got["total_ms"] != want["total_ms"] {
		t.Errorf("router inline join (matches %v, total %v) != single server (matches %v, total %v)",
			got["matches"], got["total_ms"], want["matches"], want["total_ms"])
	}

	pipe := `{"algo":"shj","scheme":"dd","delta":0.25,"sources":[{"n":4000,"key_range":4000,"seed":7},{"n":4000,"key_range":4000,"seed":8},{"n":4000,"key_range":4000,"seed":9}],"wait":true}`
	st1, want = post(single.URL+"/v1/pipeline", pipe)
	st2, got = post(router.URL+"/v1/pipeline", pipe)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("inline pipeline: single %d %v, router %d %v", st1, want, st2, got)
	}
	if got["matches"] != want["matches"] || got["total_ms"] != want["total_ms"] {
		t.Errorf("router inline pipeline (matches %v, total %v) != single server (matches %v, total %v)",
			got["matches"], got["total_ms"], want["matches"], want["total_ms"])
	}
	// The router must not leak its per-partition transport to clients.
	if _, ok := got["partitions"]; ok {
		t.Errorf("router response leaks the per-partition transport: %v", got)
	}
}

// TestClusterShardDownFailsFast: killing one shard server turns queries
// into prompt structured failures — cluster.ErrShardDown at the service
// layer, a 503 with code "shard_down" on the wire — never a hang and never
// a partial merge. A rejoin is not possible here (the server is gone), so
// recovery is covered by the pool's own health tests.
func TestClusterShardDownFailsFast(t *testing.T) {
	svc1 := service.New(service.Config{Workers: 2, MaxConcurrent: 2, Shards: 1})
	ts1 := httptest.NewServer(httpapi.New(svc1, httpapi.Config{}))
	t.Cleanup(func() { ts1.Close(); _ = svc1.Close() })
	ts2 := startShardServer(t, 1)

	csvc := clusterService(t, []string{ts1.URL, ts2.URL})
	router := httptest.NewServer(httpapi.New(csvc, httpapi.Config{}))
	t.Cleanup(router.Close)
	registerTriple(t, csvc)

	ctx := context.Background()
	spec := service.JoinSpec{RName: "orders", SName: "lineitem", Opt: ddOptions(t, "phj")}
	if _, err := csvc.RunJoin(ctx, spec); err != nil {
		t.Fatalf("join with all shards up: %v", err)
	}

	ts1.Close()

	// Whether the health checker has marked the shard down yet or the
	// fan-out hits the refused connection itself, the failure is
	// ErrShardDown and arrives promptly.
	start := time.Now()
	_, err := csvc.RunJoin(ctx, spec)
	if !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("join with a downed shard: err %v, want cluster.ErrShardDown", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("shard-down failure took %v; the contract is fail-fast", d)
	}

	resp, err := http.Post(router.URL+"/v1/join", "application/json",
		bytes.NewReader([]byte(`{"algo":"phj","scheme":"dd","delta":0.1,"r_name":"orders","s_name":"lineitem","wait":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router status with a downed shard: %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "shard_down" || body.Error.Message == "" {
		t.Errorf("router error envelope: %+v, want code shard_down with a message", body.Error)
	}
}
