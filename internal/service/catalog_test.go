package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// TestSubmitNamedBitIdentical is the catalog determinism contract at the
// service layer: a join referencing registered relations returns results
// bit-identical to the same join submitted with inline relations — for
// both explicit and auto-planned queries — and the auto paths share one
// plan-cache entry because the catalog's ingest-time buckets equal the
// inline measurement.
func TestSubmitNamedBitIdentical(t *testing.T) {
	opt := core.Options{Algo: core.PHJ, Scheme: core.DD, Delta: 0.1, PilotItems: 1 << 11}
	rg := rel.Gen{N: 30000, Seed: 21}
	sg := rel.Gen{N: 40000, Dist: rel.LowSkew, Seed: 22}
	const sel = 0.7

	svc := New(Options{MaxConcurrent: 2})
	defer svc.Close()
	if _, err := svc.Catalog().RegisterGen("orders", rg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().RegisterProbe("lineitem", "orders", sg, sel); err != nil {
		t.Fatal(err)
	}

	r := rg.Build()
	s := sg.Probe(r, sel)

	wait := func(spec JoinSpec) *core.Result {
		t.Helper()
		q, err := svc.SubmitSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	inline := wait(JoinSpec{R: r, S: s, Opt: opt})
	named := wait(JoinSpec{RName: "orders", SName: "lineitem", Opt: opt})
	compareResults(t, "catalog", "named vs inline", inline, named)

	inlineAuto := wait(JoinSpec{R: r, S: s, Opt: core.Options{Delta: 0.1, PilotItems: 1 << 11}, Auto: true})
	namedAuto := wait(JoinSpec{RName: "orders", SName: "lineitem", Opt: core.Options{Delta: 0.1, PilotItems: 1 << 11}, Auto: true})
	compareResults(t, "catalog", "named auto vs inline auto", inlineAuto, namedAuto)

	// Same fingerprint, one plan build: the catalog path measured nothing
	// yet landed in the inline query's cache slot.
	st := svc.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 1 {
		t.Errorf("plan cache hits/misses %d/%d across inline+named auto, want 1/1", st.PlanHits, st.PlanMisses)
	}
	if st.Catalog.Relations != 2 {
		t.Errorf("catalog relations %d, want 2", st.Catalog.Relations)
	}
}

func TestSubmitNamedErrors(t *testing.T) {
	svc := New(Options{MaxConcurrent: 1})
	defer svc.Close()
	if _, err := svc.SubmitSpec(context.Background(), JoinSpec{RName: "ghost", SName: "ghost"}); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("unknown names: err %v, want catalog.ErrNotFound", err)
	}
	r := rel.Gen{N: 128, Seed: 1}.Build()
	if _, err := svc.SubmitSpec(context.Background(), JoinSpec{RName: "half", S: r}); err == nil {
		t.Error("one name + one inline relation accepted")
	}
}

// TestSubmitBatchAdmission: a batch larger than the free slots plus the
// queue is rejected whole — no partial admission, no leaked slots or pins —
// while a batch that fits is admitted in one transaction.
func TestSubmitBatchAdmission(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 1, MaxQueue: 2})
	defer svc.Close()
	if _, err := svc.Catalog().RegisterGen("r", rel.Gen{N: 20000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().RegisterProbe("s", "r", rel.Gen{N: 20000, Seed: 2}, 1.0); err != nil {
		t.Fatal(err)
	}
	spec := JoinSpec{RName: "r", SName: "s", Opt: core.Options{Algo: core.PHJ, Scheme: core.DD, Delta: 0.1, PilotItems: 2048}}

	// 1 slot + 2 queue places: a batch of 4 must be rejected whole.
	if _, err := svc.SubmitBatch(context.Background(), []JoinSpec{spec, spec, spec, spec}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: err %v, want ErrQueueFull", err)
	}
	st := svc.Stats()
	if st.Rejected != 4 || st.Submitted != 0 {
		t.Errorf("after rejection: rejected %d submitted %d, want 4/0", st.Rejected, st.Submitted)
	}
	// Rejection released every pin.
	if infos := svc.Catalog().List(); infos[0].Pins != 0 || infos[1].Pins != 0 {
		t.Errorf("pins after rejection: %+v", infos)
	}

	// A batch of 3 fits (1 running + 2 queued) and completes.
	qs, err := svc.SubmitBatch(context.Background(), []JoinSpec{spec, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("batch returned %d queries, want 3", len(qs))
	}
	var ref *core.Result
	for i, q := range qs {
		res, err := q.Wait(context.Background())
		if err != nil {
			t.Fatalf("batch query %d: %v", i, err)
		}
		if ref == nil {
			ref = res
		} else {
			compareResults(t, "batch", "query vs first", ref, res)
		}
	}
	st = svc.Stats()
	if st.Batches != 1 {
		t.Errorf("Batches %d, want 1", st.Batches)
	}
	if st.Completed != 3 {
		t.Errorf("Completed %d, want 3", st.Completed)
	}
}

// TestDropWhileQueryRunning: dropping a relation mid-query unbinds the
// name immediately but the running query keeps its pinned data and
// completes; the zero-copy bytes free once the query finishes.
func TestDropWhileQueryRunning(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 1})
	defer svc.Close()
	if _, err := svc.Catalog().RegisterGen("r", rel.Gen{N: 60000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().RegisterProbe("s", "r", rel.Gen{N: 60000, Seed: 2}, 1.0); err != nil {
		t.Fatal(err)
	}
	spec := JoinSpec{RName: "r", SName: "s", Opt: core.Options{Algo: core.PHJ, Scheme: core.PL, Delta: 0.1, PilotItems: 2048}}
	q, err := svc.SubmitSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().Drop("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().Drop("s"); err != nil {
		t.Fatal(err)
	}
	// New names no longer resolve.
	if _, err := svc.SubmitSpec(context.Background(), spec); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("submit after drop: err %v, want catalog.ErrNotFound", err)
	}
	res, err := q.Wait(context.Background())
	if err != nil {
		t.Fatalf("query with dropped relations: %v", err)
	}
	if res.Matches <= 0 {
		t.Errorf("matches %d, want > 0", res.Matches)
	}
	// Pins drain asynchronously in finish; poll briefly for the free.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Catalog.Bytes != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if b := svc.Stats().Catalog.Bytes; b != 0 {
		t.Errorf("catalog bytes %d after last query finished, want 0", b)
	}
}
