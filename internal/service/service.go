// Package service is the multi-query join service layer: a long-lived
// Service owns one resident sched.Pool shared by every query, an admission
// layer that bounds how many queries execute and wait at once, a shared
// plan cache behind SubmitAuto (the planner picks algorithm, scheme and
// ratios; repeated workload shapes skip the pilot entirely), a relation
// catalog (register data once, join by name — SubmitSpec/SubmitBatch;
// named queries pin their relations for their lifetime and reuse the
// catalog's ingest-time statistics in the planner fingerprint), and a
// metrics surface aggregated across the service's lifetime.
//
// The determinism contract of the execution engine extends to the service:
// a query's match count and every simulated time are bit-identical whether
// it runs alone, serially after other queries, or interleaved with N
// concurrent queries — only host wall-clock changes. This holds because
// each query owns its arenas, intermediate arrays, device pair and
// zero-copy buffer (nothing simulated is shared), while only the host
// worker goroutines — which the device model never charges — are pooled.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"apujoin/internal/catalog"
	"apujoin/internal/cluster"
	"apujoin/internal/core"
	"apujoin/internal/plan"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
	"apujoin/internal/service/api"
)

// ErrClosed reports a Submit after Close.
var ErrClosed = errors.New("service: closed")

// ErrQueueFull reports that the admission queue is at capacity; the caller
// should retry later (HTTP layers map it to 429/503).
var ErrQueueFull = errors.New("service: admission queue full")

// Config configures a Service: one struct carries every sizing knob —
// pool, admission, plan cache, catalog budget and sharding — so front-ends
// (cmd/apujoind's flags, the engine facade's options) fold their settings
// into a single value instead of threading positional constructor args.
type Config struct {
	// Workers sizes the shared resident worker pool; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// MaxConcurrent bounds the queries executing simultaneously; <= 0
	// defaults to 2. More concurrency overlaps host work but each admitted
	// query's submitter goroutine competes for the same pool workers.
	MaxConcurrent int
	// MaxQueue bounds the queries waiting for admission; <= 0 defaults to
	// 64. Submits beyond it fail fast with ErrQueueFull.
	MaxQueue int
	// KeepResults bounds how many finished queries stay pollable; <= 0
	// defaults to 1024. The oldest finished queries are evicted first.
	KeepResults int
	// PlanCache bounds the shared plan cache consulted by SubmitAuto;
	// <= 0 selects plan.DefaultCacheCapacity. A sharded service applies
	// the same capacity to each fixed hash partition's planner.
	PlanCache int
	// CatalogBytes bounds the zero-copy space the relation catalog's
	// resident relations may occupy; <= 0 selects the A8-3870K's 512 MB.
	// A sharded service splits this total across the per-shard catalogs
	// unless ShardBudget sets the per-shard bound directly.
	CatalogBytes int64
	// Shards > 0 partitions the relation catalog by key hash across that
	// many in-process engine shards behind the service's stateless router:
	// relations register once and split over the fixed shard.Partitions
	// grid, joins and pipelines fan out to every partition and merge
	// deterministically, and results are bit-identical for any shard
	// count. 0 (the default) keeps the single resident catalog and the
	// legacy execution path. Values above shard.Partitions are clamped.
	Shards int
	// ShardBudget bounds each shard catalog's zero-copy bytes; <= 0
	// splits CatalogBytes (or its 512 MB default) evenly across the
	// shards.
	ShardBudget int64
	// Cluster lists the base URLs of remote apujoind shard servers. When
	// non-empty the service becomes a network cluster router: relations
	// register by splitting over the fixed shard.Partitions grid and
	// uploading each server's owned partitions, joins and pipelines fan
	// out over HTTP and merge locally in partition order, and results stay
	// bit-identical to a single-process engine over the same data. Cluster
	// takes precedence over Shards (a cluster router holds no tuple data
	// of its own). Between 1 and shard.Partitions servers are supported.
	Cluster []string
	// ClusterTimeout bounds each remote shard request; <= 0 selects 120s
	// (join fan-outs block until the remote query finishes).
	ClusterTimeout time.Duration
	// ClusterRetries bounds the retries of idempotent (GET) shard
	// requests after transport errors or 5xx responses; 0 selects 2,
	// negative disables retries. Non-idempotent requests are never
	// retried.
	ClusterRetries int
	// ClusterBackoff is the base of the exponential retry backoff; <= 0
	// selects 100ms.
	ClusterBackoff time.Duration
	// HealthInterval is the period of the background shard health probe;
	// <= 0 selects 2s.
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures mark a shard
	// down; <= 0 selects 3. A downed shard fails queries fast with a
	// structured shard-down error until a probe (or any successful
	// request) marks it back up.
	HealthFailures int
	// Logf, when set, receives cluster health transitions (shard marked
	// down, shard rejoined) in log.Printf format. Nil silences them.
	Logf func(format string, args ...any)
}

// Options is the former name of Config.
//
// Deprecated: use Config. The alias is kept one release for callers
// constructing services positionally; it will be removed.
type Options = Config

func (o *Config) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.KeepResults <= 0 {
		o.KeepResults = 1024
	}
}

// State is a query's lifecycle position.
type State int

const (
	// Queued: submitted, waiting for an admission slot.
	Queued State = iota
	// Running: admitted, executing on the shared pool.
	Running
	// Done: finished successfully; the result is available.
	Done
	// Failed: finished with an error.
	Failed
	// Canceled: cancelled (by its context or by Close) before finishing.
	Canceled
)

var stateNames = [...]string{"queued", "running", "done", "failed", "canceled"}

// String returns the lowercase state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Query is one submitted join. All accessors are safe for concurrent use.
type Query struct {
	// ID is the service-assigned identifier, dense from 1 in submit order.
	ID int64

	mu       sync.Mutex
	state    State
	res      *core.Result
	err      error
	submit   time.Time
	started  time.Time
	finished time.Time

	// auto marks a SubmitAuto query; plan/planHit are filled once the
	// planner has decided (just before execution starts), planFP is the
	// plan-cache fingerprint the observed error writes back to.
	auto    bool
	plan    *core.Plan
	planHit bool
	planFP  plan.Fingerprint

	// pins holds the catalog entries a named query references; released
	// when the query reaches a terminal state. workload carries the
	// catalog's ingest-time buckets to the planner fingerprint (nil for
	// inline relations, which the planner measures itself).
	pins     []*catalog.Entry
	workload *plan.Workload

	// pipe is the per-step report of a SubmitPipeline query, filled when
	// the pipeline finishes (res then holds the final step's Result).
	pipe *PipelineResult

	// parts holds the raw per-partition results of a sharded join that
	// asked for them (JoinSpec.KeepPartitions), indexed by fixed grid
	// partition. A cluster router rebuilds the merged result from these.
	parts []*core.Result

	cancel context.CancelFunc
	done   chan struct{}
}

// Pipeline returns the finished pipeline query's per-step report; ok is
// false for plain joins and while a pipeline has not reached a terminal
// state.
func (q *Query) Pipeline() (*PipelineResult, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pipe, q.pipe != nil
}

// Partitions returns the raw per-partition results of a finished sharded
// join submitted with JoinSpec.KeepPartitions, indexed by fixed grid
// partition (nil otherwise). Merging them with shard.MergeResults yields
// exactly the query's Result.
func (q *Query) Partitions() []*core.Result {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.parts
}

// State returns the query's current lifecycle state.
func (q *Query) State() State {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state
}

// Cancel requests cancellation: a queued query is dropped, a running query
// aborts at its next step boundary.
func (q *Query) Cancel() { q.cancel() }

// Done returns a channel closed when the query reaches a terminal state.
func (q *Query) Done() <-chan struct{} { return q.done }

// Wait blocks until the query finishes or ctx is cancelled, returning the
// result or the query's terminal error.
func (q *Query) Wait(ctx context.Context) (*core.Result, error) {
	select {
	case <-q.done:
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.res, q.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Info is a point-in-time snapshot of a query for status surfaces.
type Info struct {
	ID        int64      `json:"id"`
	State     string     `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// WallNS is host wall-clock from admission to finish (0 while queued
	// or running).
	WallNS int64 `json:"wall_ns,omitempty"`
	// Matches and SimulatedNS are filled once the query is Done.
	Matches     int64   `json:"matches,omitempty"`
	SimulatedNS float64 `json:"simulated_ns,omitempty"`
	Error       string  `json:"error,omitempty"`
	// Plan reports the planner's decision for auto-planned queries.
	Plan *PlanInfo `json:"plan,omitempty"`
	// Pipeline reports a multi-way pipeline query: the executed order and
	// the per-step results and plan decisions. For pipelines, Matches is
	// the final step's match count while SimulatedNS sums every step of
	// the serial chain.
	Pipeline *PipelineInfo `json:"pipeline,omitempty"`
}

// PlanInfo is the plan report of one auto-planned query: what the planner
// chose, whether the plan came from the cache, and its predicted time.
type PlanInfo struct {
	Algo        string  `json:"algo"`
	Scheme      string  `json:"scheme"`
	CacheHit    bool    `json:"cache_hit"`
	PredictedNS float64 `json:"predicted_ns"`
}

// Snapshot returns the query's current Info.
func (q *Query) Snapshot() Info {
	q.mu.Lock()
	defer q.mu.Unlock()
	info := Info{ID: q.ID, State: q.state.String(), Submitted: q.submit}
	if !q.started.IsZero() {
		t := q.started
		info.Started = &t
	}
	if !q.finished.IsZero() {
		t := q.finished
		info.Finished = &t
		if !q.started.IsZero() {
			info.WallNS = q.finished.Sub(q.started).Nanoseconds()
		}
	}
	if q.res != nil {
		info.Matches = q.res.Matches
		info.SimulatedNS = q.res.TotalNS
	}
	if q.pipe != nil {
		info.SimulatedNS = q.pipe.TotalNS
		info.Pipeline = pipelineInfo(q.pipe)
	}
	if q.plan != nil {
		info.Plan = &PlanInfo{
			Algo:        q.plan.Algo.String(),
			Scheme:      q.plan.Scheme.String(),
			CacheHit:    q.planHit,
			PredictedNS: q.plan.PredictedNS,
		}
	}
	if q.err != nil {
		info.Error = q.err.Error()
	}
	return info
}

// Result returns the finished query's result and error; ok is false while
// the query has not reached a terminal state.
func (q *Query) Result() (res *core.Result, err error, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state == Queued || q.state == Running {
		return nil, nil, false
	}
	return q.res, q.err, true
}

// PhaseNS aggregates simulated per-phase time across completed queries.
type PhaseNS struct {
	Partition float64 `json:"partition_ns"`
	Build     float64 `json:"build_ns"`
	Probe     float64 `json:"probe_ns"`
	Merge     float64 `json:"merge_ns"`
	Transfer  float64 `json:"transfer_ns"`
}

// Stats is the service's metrics surface.
type Stats struct {
	Workers       int `json:"workers"`
	MaxConcurrent int `json:"max_concurrent"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	// Batches counts multi-query SubmitBatch admissions (each amortizes
	// one admission transaction over its queries).
	Batches int64 `json:"batches"`

	// Pipelines counts completed multi-way pipeline queries and
	// PipelineSteps their executed pairwise steps; StreamedPipelines counts
	// the subset that ran the streamed hand-off (the default).
	// IntermediateTuples and IntermediateBytes total the intermediates
	// those pipelines produced on either path. The two peaks report the
	// largest resident intermediate footprint any single completed pipeline
	// reached on each path — the streamed peak holds at most one transient
	// intermediate's relation bytes, the materialized peak every
	// intermediate plus its catalog statistics — which is what the streamed
	// path's CI-gated memory budget compares.
	Pipelines                         int64 `json:"pipelines"`
	StreamedPipelines                 int64 `json:"streamed_pipelines"`
	PipelineSteps                     int64 `json:"pipeline_steps"`
	IntermediateTuples                int64 `json:"intermediate_tuples"`
	IntermediateBytes                 int64 `json:"intermediate_bytes"`
	PeakIntermediateBytesStreamed     int64 `json:"peak_intermediate_bytes_streamed"`
	PeakIntermediateBytesMaterialized int64 `json:"peak_intermediate_bytes_materialized"`

	// Replans counts mid-pipeline re-orderings across completed pipelines;
	// SpilledPartitions and SpillBytes total the hybrid-hash spill activity
	// of completed queries (partitions routed through the simulated spill
	// store under memory pressure, and the bytes written to it).
	Replans           int64 `json:"replans"`
	SpilledPartitions int64 `json:"spilled_partitions"`
	SpillBytes        int64 `json:"spill_bytes"`

	// Queued and Active are gauges: queries waiting for admission and
	// queries currently executing.
	Queued int64 `json:"queued"`
	Active int64 `json:"active"`

	// Matches and SimulatedNS sum over completed queries; WallNS sums host
	// execution wall-clock (admission to finish).
	Matches     int64   `json:"matches"`
	SimulatedNS float64 `json:"simulated_ns"`
	WallNS      int64   `json:"wall_ns"`
	Phases      PhaseNS `json:"phases"`

	// Auto-planning surface. AutoPlanned counts completed auto queries;
	// PlanHits/PlanMisses/PlanEvictions/PlanEntries mirror the shared plan
	// cache; the Predicted/Simulated/AbsErr sums (over completed auto
	// queries) expose the cost model's predicted-vs-simulated error —
	// MeanPlanErr() folds them into one number.
	AutoPlanned     int64   `json:"auto_planned"`
	PlanHits        int64   `json:"plan_hits"`
	PlanMisses      int64   `json:"plan_misses"`
	PlanEvictions   int64   `json:"plan_evictions"`
	PlanEntries     int     `json:"plan_entries"`
	PlanPredictedNS float64 `json:"plan_predicted_ns"`
	PlanSimulatedNS float64 `json:"plan_simulated_ns"`
	PlanAbsErrNS    float64 `json:"plan_abs_err_ns"`
	// PlanObservations counts observed-error write-backs into plan cache
	// entries (each completed auto step reports its simulated time back to
	// the entry that predicted it); PlanObservedErr is the cache's mean
	// relative |predicted−simulated|/simulated over those observations.
	PlanObservations int64   `json:"plan_observations"`
	PlanObservedErr  float64 `json:"plan_observed_err"`

	// Catalog mirrors the relation catalog: resident relations, their
	// zero-copy footprint, and how often ingest-time statistics were
	// reused in place of per-query measurement. On a sharded service it is
	// the aggregate across shards (logical relations, summed bytes,
	// capacity and peak) and ShardCatalogs carries each shard's own
	// gauges.
	Catalog catalog.Stats `json:"catalog"`

	// Shards is the router's shard count (0 = unsharded) and ShardCatalogs
	// the per-shard catalog gauges, in shard order. On a clustered service
	// Shards is the remote server count and ShardCatalogs stays empty (the
	// shard catalogs live in the remote processes).
	Shards        int             `json:"shards,omitempty"`
	ShardCatalogs []catalog.Stats `json:"shard_catalogs,omitempty"`

	// Cluster carries the per-shard health and latency gauges of a
	// clustered service: up/down state, probe counters and latency,
	// request/failure/retry totals per remote server.
	Cluster *cluster.Report `json:"cluster,omitempty"`
}

// MeanPlanErr returns the mean relative predicted-vs-simulated error of
// completed auto-planned queries: Σ|predicted−simulated| / Σsimulated
// (0 before the first auto query completes).
func (s Stats) MeanPlanErr() float64 {
	if s.PlanSimulatedNS == 0 {
		return 0
	}
	return s.PlanAbsErrNS / s.PlanSimulatedNS
}

// Service is a multi-query join service over one shared resident pool.
type Service struct {
	opt     Config
	pool    *sched.Pool
	planner *plan.Planner
	catalog *catalog.Catalog
	// router is the sharded-mode front: non-nil when Config.Shards > 0,
	// owning the per-shard catalogs and the per-partition planners. With a
	// router, relation registration and every join or pipeline go through
	// the fixed hash-partition grid; without one the legacy single-catalog
	// path below runs unchanged.
	router *router
	// cluster is the network-sharded front: non-nil when Config.Cluster
	// lists remote shard servers. It wins over router — a cluster router
	// holds only relation metadata and fans every join out over HTTP.
	cluster *clusterRouter
	// sem holds one slot per concurrently executing query; acquisition
	// order is the runtime's FIFO for blocked channel sends, which
	// interleaves waiting queries fairly.
	sem     chan struct{}
	closing chan struct{}

	// pipeSeq numbers pipelines for their reserved intermediate names.
	pipeSeq atomic.Int64

	mu      sync.Mutex
	closed  bool
	nextID  int64
	queries map[int64]*Query
	order   []int64 // submit order, for eviction and listing
	stats   Stats

	wg sync.WaitGroup
}

// New starts a service: the resident pool spins up immediately and lives
// until Close.
func New(opt Config) *Service {
	opt.setDefaults()
	s := &Service{
		opt:     opt,
		pool:    sched.NewPool(opt.Workers),
		planner: plan.New(opt.PlanCache),
		catalog: catalog.New(opt.CatalogBytes),
		sem:     make(chan struct{}, opt.MaxConcurrent),
		closing: make(chan struct{}),
		queries: make(map[int64]*Query),
	}
	if len(opt.Cluster) > 0 {
		s.cluster = newClusterRouter(opt)
	} else if opt.Shards > 0 {
		s.router = newRouter(opt)
	}
	s.stats.Workers = s.pool.Workers()
	s.stats.MaxConcurrent = opt.MaxConcurrent
	return s
}

// Sharded reports whether the service runs the sharded router path
// (in-process shards or a network cluster).
func (s *Service) Sharded() bool { return s.router != nil || s.cluster != nil }

// Clustered reports whether the service fans out to remote shard servers.
func (s *Service) Clustered() bool { return s.cluster != nil }

// Shards returns the configured shard count: remote servers for a
// clustered service, in-process shards otherwise (0 when unsharded).
func (s *Service) Shards() int {
	if s.cluster != nil {
		return s.cluster.pool.Size()
	}
	if s.router == nil {
		return 0
	}
	return s.router.shards
}

// Pool exposes the shared resident pool (for callers running joins outside
// the admission layer but on the same workers).
func (s *Service) Pool() *sched.Pool { return s.pool }

// Catalog exposes the relation catalog: register data once (generator
// spec or bulk load), then submit queries referencing the names. On a
// sharded service this is the legacy single catalog, which the router
// path does not use — register through the Service's relation methods
// instead, which dispatch to the router when sharding is on.
func (s *Service) Catalog() *catalog.Catalog { return s.catalog }

// RegisterGen generates and registers a build relation from a spec,
// splitting it across the shard catalogs when the service is sharded.
func (s *Service) RegisterGen(name string, g rel.Gen) (catalog.Info, error) {
	if s.cluster != nil {
		return s.cluster.registerGen(name, g)
	}
	if s.router != nil {
		return s.router.registerGen(name, g)
	}
	return s.catalog.RegisterGen(name, g)
}

// RegisterProbe generates and registers a probe relation against the
// registered build relation of, with the given match selectivity. A
// sharded service regenerates the build side from its stored spec (in
// original tuple order) before generating, so the probe is bit-identical
// to the unsharded generation from the same specs.
func (s *Service) RegisterProbe(name, of string, g rel.Gen, selectivity float64) (catalog.Info, error) {
	if s.cluster != nil {
		return s.cluster.registerProbe(name, of, g, selectivity)
	}
	if s.router != nil {
		return s.router.registerProbe(name, of, g, selectivity)
	}
	return s.catalog.RegisterProbe(name, of, g, selectivity)
}

// LoadRelation registers an existing relation (bulk load), splitting it
// across the shard catalogs when the service is sharded.
func (s *Service) LoadRelation(name string, r rel.Relation) (catalog.Info, error) {
	if s.cluster != nil {
		return s.cluster.load(name, r)
	}
	if s.router != nil {
		return s.router.load(name, r)
	}
	return s.catalog.Load(name, r)
}

// DropRelation unregisters a relation: the name unbinds immediately while
// in-flight queries keep their pins.
func (s *Service) DropRelation(name string) (catalog.Info, error) {
	if s.cluster != nil {
		return s.cluster.drop(name)
	}
	if s.router != nil {
		return s.router.drop(name)
	}
	return s.catalog.Drop(name)
}

// Relations lists the registered relations, sorted by name.
func (s *Service) Relations() []catalog.Info {
	if s.cluster != nil {
		return s.cluster.list()
	}
	if s.router != nil {
		return s.router.list()
	}
	return s.catalog.List()
}

// RelationInfo snapshots one registered relation.
func (s *Service) RelationInfo(name string) (catalog.Info, bool) {
	if s.cluster != nil {
		return s.cluster.get(name)
	}
	if s.router != nil {
		return s.router.get(name)
	}
	return s.catalog.Get(name)
}

// RunJoin executes one join synchronously, outside the admission layer —
// the engine facade's sharded path (the caller bounds its own concurrency
// and provides the worker pool through spec.Opt). The spec resolves
// exactly as SubmitSpec's would: on a sharded service it fans out to every
// fixed hash partition and merges deterministically.
func (s *Service) RunJoin(ctx context.Context, spec JoinSpec) (*core.Result, error) {
	rs, err := s.resolve(spec)
	if err != nil {
		return nil, err
	}
	defer rs.release()
	if rs.clusterjob != nil {
		res, _, err := s.cluster.execJoin(ctx, rs.clusterjob)
		return res, err
	}
	if rs.shardjob != nil {
		res, _, err := s.execShardedJoin(ctx, rs.shardjob, rs.opt, rs.auto)
		return res, err
	}
	opt := rs.opt
	var fp plan.Fingerprint
	if rs.auto {
		var pl *core.Plan
		var perr error
		if rs.workload != nil {
			pl, fp, _, perr = s.planner.PlanWorkload(ctx, rs.r, rs.s, opt, *rs.workload)
		} else {
			pl, fp, _, perr = s.planner.Plan(ctx, rs.r, rs.s, opt)
		}
		if perr != nil {
			return nil, perr
		}
		opt.Plan = pl
	}
	res, err := core.RunCtx(ctx, rs.r, rs.s, opt)
	if err == nil && opt.Plan != nil {
		s.planner.Observe(fp, opt.Plan.PredictedNS, res.TotalNS)
	}
	return res, err
}

// PlanFor consults the service's shared planner and plan cache outside the
// admission layer (the engine facade's synchronous path). w, when non-nil,
// supplies precomputed workload buckets — the catalog's ingest-time
// statistics — so planning touches neither relation; hit reports whether
// the plan was served without a pilot run.
func (s *Service) PlanFor(ctx context.Context, r, sr rel.Relation, opt core.Options, w *plan.Workload) (*core.Plan, bool, error) {
	if w != nil {
		pl, _, hit, err := s.planner.PlanWorkload(ctx, r, sr, opt, *w)
		return pl, hit, err
	}
	pl, _, hit, err := s.planner.Plan(ctx, r, sr, opt)
	return pl, hit, err
}

// Submit enqueues one join R ⋈ S under the per-query options and returns
// immediately. A free execution slot is claimed on the spot — a burst onto
// an idle service is never rejected while capacity exists — otherwise the
// query waits in the bounded queue. ctx cancels it while queued or
// running. opt.Pool is overridden with the service's shared pool; every
// other option is per-query (each query gets its own arenas and, when
// opt.ZeroCopy is nil, its own zero-copy buffer — callers must not share
// one ZeroCopy across concurrent submissions).
func (s *Service) Submit(ctx context.Context, r, sr rel.Relation, opt core.Options) (*Query, error) {
	return s.SubmitSpec(ctx, JoinSpec{R: r, S: sr, Opt: opt})
}

// SubmitAuto is Submit with the algorithm and scheme decided by the
// planner: when the query starts executing it consults the service's
// shared plan cache — a fingerprint hit reuses the cached plan and skips
// the pilot and ratio searches entirely; a miss builds the plan (both
// algorithms, every applicable scheme) and caches it for every later query
// of the same shape. opt.Algo, opt.Scheme and any opt.Plan are ignored;
// the other options are per-query as in Submit and are part of the
// workload fingerprint where they shape the plan.
func (s *Service) SubmitAuto(ctx context.Context, r, sr rel.Relation, opt core.Options) (*Query, error) {
	return s.SubmitSpec(ctx, JoinSpec{R: r, S: sr, Opt: opt, Auto: true})
}

// JoinSpec describes one join for SubmitSpec/SubmitBatch: each side is
// either an inline relation (R/S) or a catalog reference (RName/SName —
// both names or neither). Auto hands algorithm, scheme and ratios to the
// planner; for named pairs the fingerprint reuses the catalog's
// ingest-time skew/selectivity buckets instead of re-measuring.
type JoinSpec struct {
	// R and S are inline relations, used when RName/SName are empty.
	R, S rel.Relation
	// RName and SName reference relations registered on the service's
	// Catalog. The query pins both entries for its lifetime, so a
	// concurrent Drop cannot pull the data out from under it.
	RName, SName string
	// Opt is the per-query options; Pool is overridden with the shared
	// resident pool.
	Opt core.Options
	// Auto ignores Opt.Algo/Opt.Scheme and lets the planner decide, as
	// SubmitAuto does.
	Auto bool
	// Workload, when non-nil, overrides the pair workload the planner
	// fingerprints with for Auto queries. A cluster router sets it on the
	// requests it forwards so shard servers — which hold only a subset of
	// each relation — fingerprint with the full-relation statistics and
	// make the same planning decisions a single-process engine would.
	Workload *plan.Workload
	// KeepPartitions asks a sharded service to retain the raw
	// per-partition results alongside the merged one (Query.Partitions).
	// Shard servers answering a cluster router's fan-out set it: the
	// router overlays each partition from its owner and merges locally,
	// which is what keeps cluster results bit-identical.
	KeepPartitions bool
	// Forward, when non-nil on a clustered service, is the original wire
	// request to fan out verbatim (after validation) instead of
	// reconstructing one from the fields above. The HTTP layer sets it so
	// shard servers parse exactly what the client sent.
	Forward *api.JoinRequest
}

// resolvedSpec is one admitted unit of work after catalog resolution: a
// plain pairwise join, or — when pipe is set — a multi-way pipeline.
type resolvedSpec struct {
	r, s     rel.Relation
	opt      core.Options
	auto     bool
	pins     []*catalog.Entry
	workload *plan.Workload
	// pipe marks a pipeline job (SubmitPipeline); r/s/workload are unused.
	pipe *pipeJob
	// shardjob / shardpipe mark sharded-router work (Config.Shards > 0):
	// the per-partition inputs of a join or pipeline. r/s/pipe are unused.
	shardjob  *shardJob
	shardpipe *shardedPipeJob
	// clusterjob / clusterpipe mark network-cluster work (Config.Cluster
	// non-empty): the wire requests to fan out to the remote shard
	// servers. Every other execution field is unused.
	clusterjob  *clusterJob
	clusterpipe *clusterPipeJob
}

func (rs *resolvedSpec) release() {
	for _, p := range rs.pins {
		p.Release()
	}
}

// resolve pins the catalog entries a spec references and captures their
// ingest-time workload statistics for the planner. On a sharded service
// the spec resolves through the router instead: each side becomes its
// fixed per-partition inputs (named sides pin all partition entries,
// inline sides split on the spot).
func (s *Service) resolve(sp JoinSpec) (resolvedSpec, error) {
	if s.cluster != nil {
		return s.cluster.resolve(sp)
	}
	if s.router != nil {
		return s.resolveSharded(sp)
	}
	rs := resolvedSpec{r: sp.R, s: sp.S, opt: sp.Opt, auto: sp.Auto, workload: sp.Workload}
	if (sp.RName == "") != (sp.SName == "") {
		return rs, fmt.Errorf("service: reference both relations by name or neither (r %q, s %q)", sp.RName, sp.SName)
	}
	if sp.RName == "" {
		return rs, nil
	}
	re, err := s.catalog.Acquire(sp.RName)
	if err != nil {
		return rs, err
	}
	se, err := s.catalog.Acquire(sp.SName)
	if err != nil {
		re.Release()
		return rs, err
	}
	rs.r, rs.s = re.Relation(), se.Relation()
	rs.pins = []*catalog.Entry{re, se}
	if sp.Auto && rs.workload == nil {
		w := s.catalog.Workload(re, se)
		rs.workload = &w
	}
	return rs, nil
}

// SubmitSpec enqueues one join described by a JoinSpec — the general form
// behind Submit and SubmitAuto that also accepts catalog references.
func (s *Service) SubmitSpec(ctx context.Context, spec JoinSpec) (*Query, error) {
	qs, err := s.SubmitBatch(ctx, []JoinSpec{spec})
	if err != nil {
		return nil, err
	}
	return qs[0], nil
}

// SubmitBatch admits many queries in one admission transaction,
// amortizing catalog resolution, slot claiming and queue accounting over
// the batch — the fast path for clients submitting many queries over the
// same registered relations. Admission is all-or-nothing: free execution
// slots are claimed for as many queries as possible and the rest join the
// wait queue, but if the queue cannot hold them the whole batch is
// rejected with ErrQueueFull (no partial admission). ctx cancels every
// query of the batch while queued or running; per-query options follow
// the Submit contract.
func (s *Service) SubmitBatch(ctx context.Context, specs []JoinSpec) ([]*Query, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	// Resolve catalog references before touching admission; pins taken
	// here are released when each query reaches a terminal state, or
	// below on rejection.
	res := make([]resolvedSpec, len(specs))
	for i, sp := range specs {
		rs, err := s.resolve(sp)
		if err != nil {
			for j := range res[:i] {
				res[j].release()
			}
			return nil, fmt.Errorf("query %d of %d: %w", i+1, len(specs), err)
		}
		res[i] = rs
	}
	return s.submitResolved(ctx, res, len(specs) > 1)
}

// submitResolved is the admission transaction shared by SubmitBatch and
// SubmitPipeline: claim free execution slots, bound the waiters by the
// queue, reject all-or-nothing, and spawn one runner per query. The
// resolved specs' pins are owned by the queries from here on (released at
// each terminal state) — or released here when the whole set is rejected.
func (s *Service) submitResolved(ctx context.Context, res []resolvedSpec, batch bool) ([]*Query, error) {
	releaseAll := func() {
		for i := range res {
			res[i].release()
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		releaseAll()
		return nil, ErrClosed
	}
	// Immediate admission when slots are free; only genuinely waiting
	// queries count against (and are bounded by) the queue.
	admitted := make([]bool, len(res))
	waiting := 0
	for i := range res {
		select {
		case s.sem <- struct{}{}:
			admitted[i] = true
		default:
			waiting++
		}
	}
	if waiting > 0 && s.stats.Queued+int64(waiting) > int64(s.opt.MaxQueue) {
		for _, a := range admitted {
			if a {
				<-s.sem
			}
		}
		s.stats.Rejected += int64(len(res))
		s.mu.Unlock()
		releaseAll()
		return nil, ErrQueueFull
	}
	now := time.Now()
	qs := make([]*Query, len(res))
	ctxs := make([]context.Context, len(res))
	for i := range res {
		s.nextID++
		qctx, cancel := context.WithCancel(ctx)
		q := &Query{
			ID:       s.nextID,
			auto:     res[i].auto,
			submit:   now,
			cancel:   cancel,
			done:     make(chan struct{}),
			pins:     res[i].pins,
			workload: res[i].workload,
		}
		if admitted[i] {
			q.state = Running
			q.started = now
			s.stats.Active++
		} else {
			s.stats.Queued++
		}
		s.queries[q.ID] = q
		s.order = append(s.order, q.ID)
		s.stats.Submitted++
		qs[i], ctxs[i] = q, qctx
	}
	s.evictLocked()
	if batch {
		s.stats.Batches++
	}
	s.wg.Add(len(res))
	s.mu.Unlock()

	for i, q := range qs {
		rs := res[i]
		rs.opt.Pool = s.pool
		//apulint:ignore nakedgo(query lifecycle goroutine, tracked by s.wg and cancelled via qctx; the query's data parallelism still runs on the pool)
		go s.run(ctxs[i], q, rs, admitted[i])
	}
	return qs, nil
}

// run carries one query from admission through completion.
func (s *Service) run(ctx context.Context, q *Query, rs resolvedSpec, admitted bool) {
	r, sr, opt := rs.r, rs.s, rs.opt
	defer s.wg.Done()
	defer q.cancel()

	if !admitted {
		// Shutdown and cancellation win over a simultaneously free slot:
		// check them first, and again after acquiring, because the
		// blocking select picks uniformly among ready cases.
		select {
		case <-ctx.Done():
			s.finish(q, nil, ctx.Err(), Canceled, time.Time{})
			return
		case <-s.closing:
			s.finish(q, nil, ErrClosed, Canceled, time.Time{})
			return
		default:
		}
		select {
		case s.sem <- struct{}{}:
			select {
			case <-s.closing:
				<-s.sem
				s.finish(q, nil, ErrClosed, Canceled, time.Time{})
				return
			default:
			}
		case <-ctx.Done():
			s.finish(q, nil, ctx.Err(), Canceled, time.Time{})
			return
		case <-s.closing:
			s.finish(q, nil, ErrClosed, Canceled, time.Time{})
			return
		}
		started := time.Now()
		q.mu.Lock()
		q.state = Running
		q.started = started
		q.mu.Unlock()
		s.mu.Lock()
		s.stats.Queued--
		s.stats.Active++
		s.mu.Unlock()
	}
	// From here the slot is held and the query runs to completion even if
	// Close is called.
	defer func() { <-s.sem }()

	q.mu.Lock()
	started := q.started
	q.mu.Unlock()

	// A pipeline query runs its whole chain inside the one admission slot;
	// the final step's Result is the query's Result and the per-step
	// report lands on the query before it turns terminal. Sharded
	// pipelines fan the chain out per partition the same way.
	if rs.pipe != nil || rs.shardpipe != nil || rs.clusterpipe != nil {
		var pres *PipelineResult
		var err error
		switch {
		case rs.clusterpipe != nil:
			pres, err = s.cluster.execPipeline(ctx, rs.clusterpipe)
		case rs.shardpipe != nil:
			pres, err = s.execShardedPipeline(ctx, rs.shardpipe, opt, rs.auto)
		default:
			pres, err = s.execPipeline(ctx, rs.pipe, opt, rs.auto)
		}
		switch {
		case err == nil:
			q.mu.Lock()
			q.pipe = pres
			q.mu.Unlock()
			s.finish(q, pres.Final, nil, Done, started)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.finish(q, nil, err, Canceled, started)
		default:
			s.finish(q, nil, err, Failed, started)
		}
		return
	}

	// A clustered join fans out to the remote shard servers inside the one
	// admission slot; the per-partition results come back raw and merge
	// locally in partition order.
	if rs.clusterjob != nil {
		res, parts, err := s.cluster.execJoin(ctx, rs.clusterjob)
		switch {
		case err == nil:
			if rs.clusterjob.keep {
				q.mu.Lock()
				q.parts = parts
				q.mu.Unlock()
			}
			s.finish(q, res, nil, Done, started)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.finish(q, nil, err, Canceled, started)
		default:
			s.finish(q, nil, err, Failed, started)
		}
		return
	}

	// A sharded join fans out to every fixed hash partition inside the one
	// admission slot and merges deterministically; per-partition planning
	// happens inside the fan-out on the partition's own planner.
	if rs.shardjob != nil {
		res, parts, err := s.execShardedJoin(ctx, rs.shardjob, opt, rs.auto)
		switch {
		case err == nil:
			q.mu.Lock()
			q.parts = parts
			q.mu.Unlock()
			s.finish(q, res, nil, Done, started)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.finish(q, nil, err, Canceled, started)
		default:
			s.finish(q, nil, err, Failed, started)
		}
		return
	}

	if q.auto {
		// Planning happens inside the admission slot: a cache hit is
		// nearly free, a miss pays one pilot that every later query of
		// this shape skips. The plan decides algorithm, scheme and ratios.
		// The query's context bounds the planning wait, so a cancelled
		// query frees its slot instead of blocking on another's build.
		// Catalog-referenced pairs carry their ingest-time workload
		// buckets, so fingerprinting reads neither relation.
		var pl *core.Plan
		var hit bool
		var perr error
		if q.workload != nil {
			pl, q.planFP, hit, perr = s.planner.PlanWorkload(ctx, r, sr, opt, *q.workload)
		} else {
			pl, q.planFP, hit, perr = s.planner.Plan(ctx, r, sr, opt)
		}
		if perr != nil {
			st := Failed
			if errors.Is(perr, context.Canceled) || errors.Is(perr, context.DeadlineExceeded) {
				st = Canceled
			}
			s.finish(q, nil, perr, st, started)
			return
		}
		q.mu.Lock()
		q.plan, q.planHit = pl, hit
		q.mu.Unlock()
		opt.Plan = pl
	}

	res, err := core.RunCtx(ctx, r, sr, opt)
	switch {
	case err == nil:
		if opt.Plan != nil {
			// Write the observed error back into the plan cache entry that
			// predicted this query, feeding the adaptive feedback surface.
			s.planner.Observe(q.planFP, opt.Plan.PredictedNS, res.TotalNS)
		}
		s.finish(q, res, nil, Done, started)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.finish(q, nil, err, Canceled, started)
	default:
		s.finish(q, nil, err, Failed, started)
	}
}

// finish moves a query to a terminal state and folds it into the metrics.
// A zero started time means the query never left the queue.
func (s *Service) finish(q *Query, res *core.Result, err error, st State, started time.Time) {
	now := time.Now()
	q.mu.Lock()
	q.state = st
	q.res = res
	q.err = err
	q.finished = now
	q.mu.Unlock()
	close(q.done)
	// The query no longer reads its relations: release its catalog pins
	// (finish runs exactly once per query, so pins release exactly once).
	for _, p := range q.pins {
		p.Release()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if started.IsZero() {
		s.stats.Queued--
	} else {
		s.stats.Active--
		s.stats.WallNS += now.Sub(started).Nanoseconds()
	}
	switch st {
	case Done:
		s.stats.Completed++
		s.stats.Matches += res.Matches
		q.mu.Lock()
		pl, pipe := q.plan, q.pipe
		q.mu.Unlock()
		if pipe != nil {
			// A pipeline folds every step of its serial chain into the
			// simulated totals; Matches stays the final multi-way count.
			s.stats.Pipelines++
			s.stats.PipelineSteps += int64(len(pipe.Steps))
			s.stats.IntermediateTuples += pipe.IntermediateTuples
			s.stats.IntermediateBytes += pipe.IntermediateBytes
			s.stats.Replans += pipe.Replans
			s.stats.SpilledPartitions += pipe.SpilledPartitions
			s.stats.SpillBytes += pipe.SpillBytes
			if pipe.Streamed {
				s.stats.StreamedPipelines++
				if pipe.PeakIntermediateBytes > s.stats.PeakIntermediateBytesStreamed {
					s.stats.PeakIntermediateBytesStreamed = pipe.PeakIntermediateBytes
				}
			} else if pipe.PeakIntermediateBytes > s.stats.PeakIntermediateBytesMaterialized {
				s.stats.PeakIntermediateBytesMaterialized = pipe.PeakIntermediateBytes
			}
			s.stats.SimulatedNS += pipe.TotalNS
			for _, step := range pipe.Steps {
				sr := step.Result
				s.stats.Phases.Partition += sr.PartitionNS
				s.stats.Phases.Build += sr.BuildNS
				s.stats.Phases.Probe += sr.ProbeNS
				s.stats.Phases.Merge += sr.MergeNS
				s.stats.Phases.Transfer += sr.TransferNS
				if step.Plan != nil {
					s.stats.PlanPredictedNS += step.Plan.PredictedNS
					s.stats.PlanSimulatedNS += sr.TotalNS
					s.stats.PlanAbsErrNS += math.Abs(step.Plan.PredictedNS - sr.TotalNS)
				}
			}
			if q.auto {
				s.stats.AutoPlanned++
			}
			break
		}
		s.stats.SimulatedNS += res.TotalNS
		s.stats.Phases.Partition += res.PartitionNS
		s.stats.Phases.Build += res.BuildNS
		s.stats.Phases.Probe += res.ProbeNS
		s.stats.Phases.Merge += res.MergeNS
		s.stats.Phases.Transfer += res.TransferNS
		if pl != nil {
			s.stats.AutoPlanned++
			s.stats.PlanPredictedNS += pl.PredictedNS
			s.stats.PlanSimulatedNS += res.TotalNS
			s.stats.PlanAbsErrNS += math.Abs(pl.PredictedNS - res.TotalNS)
		}
	case Failed:
		s.stats.Failed++
	case Canceled:
		s.stats.Canceled++
	}
}

// evictLocked drops the oldest finished queries beyond the retention cap.
// Queries still queued or running are never evicted.
func (s *Service) evictLocked() {
	excess := len(s.order) - s.opt.KeepResults
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		q := s.queries[id]
		if excess > 0 && q != nil {
			q.mu.Lock()
			terminal := q.state == Done || q.state == Failed || q.state == Canceled
			q.mu.Unlock()
			if terminal {
				delete(s.queries, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Query returns the query with the given ID, if still retained.
func (s *Service) Query(id int64) (*Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	return q, ok
}

// Queries snapshots all retained queries in submit order.
func (s *Service) Queries() []Info {
	s.mu.Lock()
	qs := make([]*Query, 0, len(s.order))
	for _, id := range s.order {
		if q, ok := s.queries[id]; ok {
			qs = append(qs, q)
		}
	}
	s.mu.Unlock()
	out := make([]Info, len(qs))
	for i, q := range qs {
		out[i] = q.Snapshot()
	}
	return out
}

// Stats snapshots the metrics surface, folding in the plan cache counters.
// On a sharded service the plan counters sum over the per-partition
// planners, Catalog aggregates the shard catalogs, and ShardCatalogs
// carries the per-shard gauges.
func (s *Service) Stats() Stats {
	cs := s.planner.Stats()
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.PlanHits = cs.Hits
	st.PlanMisses = cs.Misses
	st.PlanEvictions = cs.Evictions
	st.PlanEntries = cs.Entries
	st.PlanObservations = cs.Observations
	obsErr := cs.MeanObservedErr * float64(cs.Observations)
	st.Catalog = s.catalog.Stats()
	if s.cluster != nil {
		st.Shards = s.cluster.pool.Size()
		st.Catalog = s.cluster.stats()
		rep := s.cluster.pool.Report()
		st.Cluster = &rep
	}
	if s.router != nil {
		for _, p := range s.router.planners {
			pcs := p.Stats()
			st.PlanHits += pcs.Hits
			st.PlanMisses += pcs.Misses
			st.PlanEvictions += pcs.Evictions
			st.PlanEntries += pcs.Entries
			st.PlanObservations += pcs.Observations
			obsErr += pcs.MeanObservedErr * float64(pcs.Observations)
		}
		st.Shards = s.router.shards
		st.Catalog, st.ShardCatalogs = s.router.stats()
	}
	// Cache-level means recombine as an observation-weighted average so the
	// aggregate is the mean over ALL write-backs, whichever planner took them.
	if st.PlanObservations > 0 {
		st.PlanObservedErr = obsErr / float64(st.PlanObservations)
	}
	return st
}

// Close shuts the service down gracefully: new submissions are rejected
// with ErrClosed, queries still waiting for admission are cancelled,
// running queries finish normally, and the resident pool is stopped once
// everything has drained. Close blocks until no service goroutine remains
// and is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.closing)
	}
	s.wg.Wait()
	s.pool.Close()
	if s.cluster != nil {
		s.cluster.pool.Close()
	}
	return nil
}
