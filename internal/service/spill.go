package service

import (
	"context"
	"fmt"
	"math"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/cost"
	"apujoin/internal/rel"
	"apujoin/internal/shard"
)

// Hybrid-hash spill executor. When a pipeline intermediate would exceed
// the residency budget (catalog.ErrNoSpace on the streamed hand-off), the
// spiller takes over the remaining chain instead of failing the query:
//
//   - the current build side, its probe and every remaining probe are
//     partitioned with the shard package's fixed grid partitioner into a
//     simulated spill store (shard.SplitAt — level 0 is the grid itself,
//     deeper levels rehash with decorrelated seeds);
//   - as many partitions as the budget allows stay resident (first-fit in
//     partition order over each partition's exact intermediate size, which
//     is known from the build side's key counts before anything runs) and
//     pay no I/O; every other partition is charged one simulated
//     write+read-back round trip over its input bytes (cost.Spill*);
//   - a partition whose intermediate alone exceeds the budget is
//     recursively repartitioned at the next level, to maxSpillDepth;
//   - a partition dominated by one heavy key — repartitioning cannot split
//     a single key — falls back to a streaming nested probe: the probe
//     side is walked in budget-sized chunks and each chunk's intermediate
//     probes the full remaining chain before the next chunk starts.
//
// Every decision (partition boundaries, residency, recursion, chunking) is
// a pure function of the data and the budget — never of wall time, worker
// schedule or physical allocation state — so spilled executions keep the
// engine's determinism contract: matches and simulated times are
// bit-identical for any worker and shard count. Per-step results merge
// across partitions in partition order with shard.MergeResults, exactly as
// the sharded engine merges its grid.
const (
	// maxSpillDepth bounds recursive repartitioning: levels run out before
	// partition counts do (8^3 leaf partitions), and a partition still
	// oversized at the bound is skew the partitioner cannot fix — the
	// streaming fallback handles it.
	maxSpillDepth = 3
	// heavyKeyShare is the skew escape hatch: when one key owns at least
	// this share of a partition's build side, repartitioning is pointless
	// (a key is indivisible) and the partition streams instead.
	heavyKeyShare = 0.5
	// streamChunk floors the streaming fallback's chunk size in probe
	// tuples' worth of intermediate (8 bytes each): even a near-zero budget
	// makes progress at a useful granularity.
	streamChunk = 4096
	// replanDeviation triggers mid-pipeline re-planning when a step's
	// observed matches deviate from the orderer's estimate by more than
	// this factor of the estimate. 1.0 — off by more than the estimate
	// itself — tolerates the estimator's deliberate coarseness (quantized
	// selectivities, sampled shares) while catching genuinely wrong orders.
	replanDeviation = 1.0
)

// spillRemainder finishes a streamed pipeline whose next intermediate the
// residency budget just rejected: steps t..last re-run through the
// hybrid-hash spiller under the catalog's remaining headroom. Step t's
// already-recorded result is replaced by the spiller's partitioned
// re-execution (merged over partitions, so the step keeps one Result),
// and — since the partitioned execution is what actually ran — its plan
// report is dropped along with it; spilled steps carry no per-step plan.
func (s *Service) spillRemainder(ctx context.Context, res *PipelineResult, pj *pipeJob, order []int, t int, cur, probe pipeInput, opt core.Options, auto bool) (*PipelineResult, error) {
	n := len(pj.sources)
	dropped := res.Steps[len(res.Steps)-1]
	res.Steps = res.Steps[:len(res.Steps)-1]
	res.TotalNS -= dropped.Result.TotalNS

	rest := make([]rel.Relation, 0, n-1-t)
	for i := t + 1; i < n; i++ {
		rest = append(rest, pj.sources[order[i]].rel)
	}
	sp := &spiller{ctx: ctx, cat: s.catalog, opt: opt, budget: s.catalog.Headroom()}
	if auto {
		sp.plan = func(ctx context.Context, b, p rel.Relation, o core.Options) (*core.Plan, error) {
			pl, _, _, err := s.planner.Plan(ctx, b, p, o)
			return pl, err
		}
	}
	stepsRes, err := sp.run(cur.rel, probe.rel, rest, 0)
	if err != nil {
		return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): spill: %w", t, cur.name, probe.name, err)
	}

	// The simulated I/O the spill store charged attaches to the first
	// spilled step (and with it to the pipeline's serial total).
	stepsRes[0].SpilledPartitions, stepsRes[0].SpillBytes, stepsRes[0].SpillNS = sp.parts, sp.bytes, sp.ns
	stepsRes[0].TotalNS += sp.ns

	buildName, buildTuples := cur.name, cur.rel.Len()
	for i, r := range stepsRes {
		st := t + i
		probeIn := pj.sources[order[st]]
		res.Steps = append(res.Steps, PipelineStep{
			Build:       buildName,
			Probe:       probeIn.name,
			BuildTuples: buildTuples,
			ProbeTuples: probeIn.rel.Len(),
			OutTuples:   r.Matches,
			Result:      r,
		})
		res.TotalNS += r.TotalNS
		if i < len(stepsRes)-1 {
			res.IntermediateTuples += r.Matches
			res.IntermediateBytes += r.Matches * 8
		}
		buildName, buildTuples = fmt.Sprintf("step%d", st), int(r.Matches)
	}
	res.Final = stepsRes[len(stepsRes)-1]
	res.SpilledPartitions, res.SpillBytes, res.SpillNS, res.SpillDepth = sp.parts, sp.bytes, sp.ns, sp.depth
	if sp.peak > res.PeakIntermediateBytes {
		res.PeakIntermediateBytes = sp.peak
	}
	return res, nil
}

// spillPartitionChain finishes one partition chain of a sharded pipeline
// whose next intermediate exceeded the partition's budget share: steps
// t..last re-run through the spiller at repartitioning level 1 (the data
// is already one fixed-grid partition — level 0). Step t's recorded result
// and plan are replaced by the spiller's, exactly as spillRemainder does
// on the unsharded path. Results land in c; on failure c.err is set.
func (s *Service) spillPartitionChain(ctx context.Context, c *partChain, pj *shardedPipeJob, order []int, p, t int, cur rel.Relation, opt core.Options, auto bool, budget int64, cat *catalog.Catalog) {
	n := len(pj.sources)
	c.steps = c.steps[:len(c.steps)-1]
	c.plans = c.plans[:len(c.plans)-1]

	probe := pj.sources[order[t]].parts[p]
	rest := make([]rel.Relation, 0, n-1-t)
	for i := t + 1; i < n; i++ {
		rest = append(rest, pj.sources[order[i]].parts[p])
	}
	sp := &spiller{ctx: ctx, cat: cat, opt: opt, budget: budget}
	if auto {
		sp.plan = func(ctx context.Context, b, pr rel.Relation, o core.Options) (*core.Plan, error) {
			pl, _, _, err := s.router.planners[p].Plan(ctx, b, pr, o)
			return pl, err
		}
	}
	stepsRes, err := sp.run(cur, probe, rest, 1)
	if err != nil {
		c.err = fmt.Errorf("pipeline step %d (⋈ %s): spill: %w", t, pj.sources[order[t]].name, err)
		return
	}
	stepsRes[0].SpilledPartitions, stepsRes[0].SpillBytes, stepsRes[0].SpillNS = sp.parts, sp.bytes, sp.ns
	stepsRes[0].TotalNS += sp.ns

	for i, r := range stepsRes {
		c.steps = append(c.steps, r)
		c.plans = append(c.plans, nil)
		if i > 0 {
			c.buildTuples = append(c.buildTuples, int(stepsRes[i-1].Matches))
			c.probeTuples = append(c.probeTuples, pj.sources[order[t+i]].parts[p].Len())
		}
		if i < len(stepsRes)-1 {
			c.interTuples += r.Matches
			c.interBytes += r.Matches * 8
		}
	}
	c.spillDepth = sp.depth
	if sp.peak > c.peak {
		c.peak = sp.peak
	}
}

// spillPlanFn plans one spilled chain step when the pipeline runs auto;
// nil runs every step with the pipeline's base options.
type spillPlanFn func(ctx context.Context, build, probe rel.Relation, opt core.Options) (*core.Plan, error)

// spiller executes the remainder of one pipeline chain under a residency
// budget. It is single-use and not safe for concurrent use; the morsel
// parallelism inside each step (opt.Pool) is unaffected.
type spiller struct {
	ctx    context.Context
	cat    *catalog.Catalog
	opt    core.Options
	plan   spillPlanFn
	budget int64

	// Spill accounting: partitions written to the simulated store, their
	// input bytes, the simulated I/O charged, and the deepest
	// repartitioning level reached.
	parts int64
	bytes int64
	ns    float64
	depth int
	// resident/peak track the spiller's own transient reservations, for
	// the pipeline's peak-footprint gauge.
	resident int64
	peak     int64
}

// reserve charges transient intermediate bytes against the catalog —
// whatever portion of the demand fits; the rest is an overdraft the spill
// path is entitled to (its irreducible working set is one probe chunk's
// intermediate per chain level, which no budget can shrink further). It
// returns the physically charged portion, which the caller must hand back
// to unreserve; the spiller's own peak gauge tracks the full demand, so
// the pipeline's peak-footprint accounting stays exact and deterministic
// even when the catalog could only absorb part of it.
func (sp *spiller) reserve(b int64) (phys int64) {
	phys = sp.cat.ReserveTransient(b)
	sp.resident += b
	if sp.resident > sp.peak {
		sp.peak = sp.resident
	}
	return phys
}

// unreserve returns a reserve's physically charged portion to the catalog
// and retires its full demand from the spiller's gauge.
func (sp *spiller) unreserve(demand, phys int64) {
	if phys > 0 {
		sp.cat.Unreserve(phys)
	}
	sp.resident -= demand
}

// heavyDominated reports whether one key owns at least heavyKeyShare of
// the build side — the case repartitioning cannot improve.
func heavyDominated(counts map[int32]int32, n int) bool {
	if n == 0 {
		return false
	}
	var max int32
	for _, c := range counts { //apulint:ignore detmaporder (order-free max reduction)
		if c > max {
			max = c
		}
	}
	return float64(max) >= heavyKeyShare*float64(n)
}

// run executes the chain cur ⋈ probe ⋈ rest[0] ⋈ … under the budget by
// partitioning every input at the given repartitioning level. It returns
// one merged Result per chain step (1+len(rest) of them), bit-identical
// for any worker count.
func (sp *spiller) run(cur, probe rel.Relation, rest []rel.Relation, depth int) ([]*core.Result, error) {
	if depth > sp.depth {
		sp.depth = depth
	}
	counts := rel.KeyCounts(cur)
	if depth >= maxSpillDepth || heavyDominated(counts, cur.Len()) {
		return sp.stream(cur, probe, rest)
	}
	nsteps := 1 + len(rest)
	curP := shard.SplitAt(cur, depth)
	probeP := shard.SplitAt(probe, depth)
	restP := make([][shard.Partitions]rel.Relation, len(rest))
	for j := range rest {
		restP[j] = shard.SplitAt(rest[j], depth)
	}

	// The first intermediate's per-partition size is exact before any join
	// runs: partitioning is by key, so partition p's matches are the sum of
	// the build-side counts of p's probe keys.
	var interBytes [shard.Partitions]int64
	for p := 0; p < shard.Partitions; p++ {
		var m int64
		for _, k := range probeP[p].Keys {
			m += int64(counts[k])
		}
		interBytes[p] = m * 8
	}

	// Hybrid residency: first-fit in partition order, keeping as many
	// partitions resident as the budget holds. Resident partitions pay no
	// spill I/O; everything else is written out and read back once.
	var resident [shard.Partitions]bool
	var residentCum int64
	for p := 0; p < shard.Partitions; p++ {
		if residentCum+interBytes[p] <= sp.budget {
			residentCum += interBytes[p]
			resident[p] = true
		}
	}

	perStep := make([][]*core.Result, nsteps)
	for p := 0; p < shard.Partitions; p++ {
		if curP[p].Len() == 0 || probeP[p].Len() == 0 {
			for t := 0; t < nsteps; t++ {
				perStep[t] = append(perStep[t], emptyPartResult(sp.opt))
			}
			continue
		}
		if !resident[p] {
			b := curP[p].Bytes() + probeP[p].Bytes()
			for j := range restP {
				b += restP[j][p].Bytes()
			}
			sp.parts++
			sp.bytes += b
			sp.ns += cost.SpillRoundTripNS(b)
		}
		probes := make([]rel.Relation, 0, nsteps)
		probes = append(probes, probeP[p])
		for j := range restP {
			probes = append(probes, restP[j][p])
		}
		// An oversized partition (interBytes[p] > budget) recurses to the
		// next level through the chain's own pre-check.
		sub, err := sp.chain(curP[p], probes, depth)
		if err != nil {
			return nil, fmt.Errorf("spill partition %d (level %d): %w", p, depth, err)
		}
		for t := 0; t < nsteps; t++ {
			perStep[t] = append(perStep[t], sub[t])
		}
	}
	out := make([]*core.Result, nsteps)
	for t := range perStep {
		out[t] = shard.MergeResults(perStep[t])
	}
	return out, nil
}

// chain runs one partition's remaining steps sequentially, materializing
// each intermediate under a transient reservation. A step whose
// intermediate cannot fit the budget — known exactly before the step runs
// — hands the rest of the chain back to run at the next repartitioning
// level. At most one intermediate is reserved at a time: the build side's
// reservation is returned once its key counts are derived, before the next
// intermediate reserves.
func (sp *spiller) chain(build rel.Relation, probes []rel.Relation, depth int) ([]*core.Result, error) {
	out := make([]*core.Result, 0, len(probes))
	cur, curRes, curPhys := build, int64(0), int64(0)
	defer func() { sp.unreserve(curRes, curPhys) }()
	for j := 0; j < len(probes); j++ {
		probe := probes[j]
		if cur.Len() == 0 || probe.Len() == 0 {
			for range probes[j:] {
				out = append(out, emptyPartResult(sp.opt))
			}
			return out, nil
		}
		last := j == len(probes)-1
		var counts map[int32]int32
		if !last {
			counts = rel.KeyCounts(cur)
			var m int64
			for _, k := range probe.Keys {
				m += int64(counts[k])
			}
			if m*8 > sp.budget {
				sp.unreserve(curRes, curPhys)
				curRes, curPhys = 0, 0
				sub, err := sp.run(cur, probe, probes[j+1:], depth+1)
				if err != nil {
					return nil, err
				}
				return append(out, sub...), nil
			}
		}
		stepOpt := sp.opt
		if sp.plan != nil {
			pl, err := sp.plan(sp.ctx, cur, probe, stepOpt)
			if err != nil {
				return nil, fmt.Errorf("chain step %d: plan: %w", j, err)
			}
			stepOpt.Plan = pl
		}
		stepRes, err := core.RunCtx(sp.ctx, cur, probe, stepOpt)
		if err != nil {
			return nil, fmt.Errorf("chain step %d: %w", j, err)
		}
		out = append(out, stepRes)
		if last {
			return out, nil
		}
		if stepRes.Matches > math.MaxInt32 {
			return nil, fmt.Errorf("chain step %d: intermediate of %d tuples exceeds the representable relation size", j, stepRes.Matches)
		}
		sp.unreserve(curRes, curPhys)
		bytes := stepRes.Matches * 8
		curRes, curPhys = bytes, sp.reserve(bytes)
		cur = core.StreamMaterialize(sp.opt.Pool, counts, probe)
	}
	return out, nil
}

// stream is the skew escape hatch: a budget-chunked nested probe for data
// partitioning cannot split (one dominant key, or the level bound
// reached). Each chunk of the probe side joins the full build, its
// intermediate probes the entire remaining chain depth-first, and its
// reservation is returned before the next chunk starts — so the peak
// footprint stays within one chunk's worth per chain level. Chunk
// boundaries depend only on key counts and the budget, keeping the
// decomposition deterministic; match counts are exact because an
// equi-join distributes over a disjoint union of its probe side.
func (sp *spiller) stream(cur, probe rel.Relation, rest []rel.Relation) ([]*core.Result, error) {
	nsteps := 1 + len(rest)
	perStep := make([][]*core.Result, nsteps)
	probes := make([]rel.Relation, 0, nsteps)
	probes = append(probes, probe)
	probes = append(probes, rest...)
	if err := sp.streamStep(perStep, cur, probes, 0); err != nil {
		return nil, err
	}
	out := make([]*core.Result, nsteps)
	for t := range perStep {
		if len(perStep[t]) == 0 {
			out[t] = emptyPartResult(sp.opt)
			continue
		}
		out[t] = shard.MergeResults(perStep[t])
	}
	return out, nil
}

// streamStep processes chain level j for one build relation: walk
// probes[j] in chunks whose exact intermediate fits the chunk cap, run the
// step per chunk, and recurse each chunk's intermediate into level j+1.
// Results accumulate per level in a fixed sequential order.
func (sp *spiller) streamStep(acc [][]*core.Result, build rel.Relation, probes []rel.Relation, j int) error {
	probe := probes[j]
	if build.Len() == 0 || probe.Len() == 0 {
		return nil
	}
	capB := sp.budget
	if min := int64(streamChunk) * 8; capB < min {
		capB = min
	}
	last := j == len(probes)-1
	counts := rel.KeyCounts(build)
	for lo := 0; lo < probe.Len(); {
		var m int64
		hi := lo
		for hi < probe.Len() {
			dm := int64(counts[probe.Keys[hi]])
			if hi > lo && (m+dm)*8 > capB {
				break
			}
			m += dm
			hi++
		}
		chunk := probe.Slice(lo, hi)
		lo = hi
		stepRes, err := core.RunCtx(sp.ctx, build, chunk, sp.opt)
		if err != nil {
			return fmt.Errorf("stream step %d: %w", j, err)
		}
		acc[j] = append(acc[j], stepRes)
		if last || stepRes.Matches == 0 {
			continue
		}
		bytes := stepRes.Matches * 8
		phys := sp.reserve(bytes)
		inter := core.StreamMaterialize(sp.opt.Pool, counts, chunk)
		err = sp.streamStep(acc, inter, probes, j+1)
		sp.unreserve(bytes, phys)
		if err != nil {
			return err
		}
	}
	return nil
}
