package service

import (
	"context"
	"errors"
	"fmt"
	"math"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/plan"
	"apujoin/internal/rel"
	"apujoin/internal/service/api"
)

// ErrPipelineTooShort reports a pipeline with fewer than two sources.
var ErrPipelineTooShort = errors.New("service: a pipeline needs at least 2 sources")

// ReservedPrefix prefixes the catalog names pipeline intermediates are
// registered (and immediately unbound) under. Untrusted front-ends reject
// external registration or deletion of such names: squatting one would
// spuriously fail an in-flight pipeline.
const ReservedPrefix = "__pipeline/"

// PipelineSource is one input of a multi-way pipeline: a catalog reference
// (Name) or an inline relation (Rel, used when Name is empty).
type PipelineSource struct {
	Name string
	Rel  rel.Relation
}

// PipelineSpec describes a join over N ≥ 2 sources, executed as a chain of
// pairwise joins: the first two sources of the chosen order join first and
// every later source probes the materialized intermediate. Opt configures
// each pairwise step exactly as in Submit; Auto hands every step's
// algorithm, scheme and ratios to the planner (per-step plan-cache
// consultation, catalog statistics reused where both inputs are resident).
type PipelineSpec struct {
	Sources []PipelineSource
	Opt     core.Options
	Auto    bool
	// DeclaredOrder skips the cost-based join orderer and runs the sources
	// exactly as declared. The final match count is identical either way;
	// only intermediate sizes and costs change.
	DeclaredOrder bool
	// Materialized forces every intermediate through the catalog — loaded,
	// measured, pinned and charged until the pipeline finishes — instead of
	// the default streamed hand-off, which keeps at most one transient
	// intermediate resident and never registers it. Results are bit-identical
	// either way; only the resident footprint (and the statistics built)
	// differ. Set it when a consumer needs catalog-resident intermediates or
	// to A/B the two paths.
	Materialized bool
	// FirstWorkload, when non-nil, overrides the pair workload the planner
	// fingerprints the FIRST step with (later steps build from
	// intermediates and measure their partitions). A cluster router sets
	// it so shard servers plan the first step with the full-relation
	// statistics despite holding only a subset of each source.
	FirstWorkload *plan.Workload
	// KeepPartitions asks a sharded service to retain the raw
	// per-partition results of every step (PipelineResult.Partitions), as
	// JoinSpec.KeepPartitions does for joins.
	KeepPartitions bool
	// Forward, when non-nil on a clustered service, is the original wire
	// request to fan out verbatim after validation and ordering, instead
	// of reconstructing one from the fields above.
	Forward *api.PipelineRequest
}

// PipelineStep reports one executed pairwise step of a pipeline.
type PipelineStep struct {
	// Build and Probe label the step's inputs: a catalog name, "inline[i]"
	// for the i-th declared inline source, or "step<t>" for the
	// intermediate of step t.
	Build, Probe string
	// BuildTuples and Probe Tuples are the input cardinalities; OutTuples
	// is the step's match count — and, for every step but the last, the
	// cardinality of the intermediate materialized through the catalog.
	BuildTuples, ProbeTuples int
	OutTuples                int64
	// Result is the full pairwise join result (the same Result a
	// stand-alone Join of the step's inputs returns, bit for bit).
	Result *core.Result
	// Plan is the planner's per-step decision when the pipeline runs auto.
	Plan *PlanInfo
}

// PipelineResult reports one executed pipeline.
type PipelineResult struct {
	// Order is the executed left-deep order as indices into the spec's
	// Sources; Ordered reports whether the cost-based orderer chose it
	// (false: declaration order, by request or for lack of statistics).
	Order   []int
	Ordered bool
	Steps   []PipelineStep
	// Final is the last step's Result; Final.Matches is the pipeline's
	// multi-way match count.
	Final *core.Result
	// TotalNS sums the simulated time of every step (the steps form a
	// serial chain: each consumes the previous step's output).
	TotalNS float64
	// Streamed reports which execution path produced the intermediates:
	// true for the default streamed hand-off (each step's matches are
	// produced morsel-parallel directly into the next step's build input,
	// reserved transiently and freed as soon as the consumer step finishes),
	// false for the catalog-materialized path.
	Streamed bool
	// IntermediateTuples and IntermediateBytes total every intermediate the
	// pipeline produced, on either path. On the materialized path the bytes
	// stay charged against the catalog's residency budget until the
	// pipeline finishes; on the streamed path at most one intermediate is
	// charged at a time.
	IntermediateTuples int64
	IntermediateBytes  int64
	// PeakIntermediateBytes is the high-water mark of the pipeline's
	// resident intermediate footprint: relation bytes of the live
	// intermediates, plus — on the materialized path — the ingest-time
	// statistics (key index and sample) the catalog builds for each. This is
	// the number the streamed path exists to shrink: Σ over all steps
	// becomes max over single steps, with no statistics at all.
	PeakIntermediateBytes int64
	// Replans counts mid-pipeline re-orderings: after a step whose observed
	// matches deviated from the orderer's estimate beyond the re-plan
	// threshold, the remaining steps were re-ordered around the true
	// cardinality. The final match count is unaffected; only the remaining
	// intermediates (and their costs) change.
	Replans int64
	// SpilledPartitions, SpillBytes and SpillNS aggregate the hybrid-hash
	// spill activity of the whole pipeline (see Result's fields of the same
	// names); SpillDepth is the deepest repartitioning level the spiller
	// reached (0 when nothing spilled).
	SpilledPartitions int64
	SpillBytes        int64
	SpillNS           float64
	SpillDepth        int
	// Partitions holds the raw per-partition breakdown when the pipeline
	// was submitted with PipelineSpec.KeepPartitions on a sharded service
	// (nil otherwise). A cluster router rebuilds each step's merged result
	// from these.
	Partitions *PipelinePartitions
}

// PipelinePartitions is the raw per-partition breakdown of a sharded
// pipeline: for each executed step t (0-based) and fixed grid partition p,
// Steps[t][p] is partition p's pairwise result of that step, with the
// matching input cardinalities in BuildTuples/ProbeTuples. The per-
// partition gauges report each partition chain's intermediate totals and
// resident peak. Merging Steps[t] with shard.MergeResults yields exactly
// the pipeline's Steps[t].Result.
type PipelinePartitions struct {
	Steps                    [][]*core.Result
	BuildTuples, ProbeTuples [][]int
	// Plans[t][p] is partition p's planner decision for step t (nil when the
	// step was not auto-planned, met an empty side, or spilled) — the raw
	// inputs of the merged step's aggregate PlanInfo.
	Plans                   [][]*PlanInfo
	Peak                    []int64
	InterTuples, InterBytes []int64
	// SpillDepth is each partition chain's deepest repartitioning level.
	SpillDepth []int
}

// PipelineInfo is the JSON-friendly snapshot of a pipeline query for
// status surfaces, with per-step plan decisions.
type PipelineInfo struct {
	Sources               int                `json:"sources"`
	Ordered               bool               `json:"ordered"`
	Streamed              bool               `json:"streamed"`
	Order                 []int              `json:"order"`
	Steps                 []PipelineStepInfo `json:"steps"`
	IntermediateTuples    int64              `json:"intermediate_tuples"`
	IntermediateBytes     int64              `json:"intermediate_bytes"`
	PeakIntermediateBytes int64              `json:"peak_intermediate_bytes"`
	Replans               int64              `json:"replans"`
	SpilledPartitions     int64              `json:"spilled_partitions"`
	SpillBytes            int64              `json:"spill_bytes"`
}

// PipelineStepInfo is the snapshot of one pipeline step.
type PipelineStepInfo struct {
	Build       string    `json:"build"`
	Probe       string    `json:"probe"`
	BuildTuples int       `json:"build_tuples"`
	ProbeTuples int       `json:"probe_tuples"`
	Matches     int64     `json:"matches"`
	SimulatedNS float64   `json:"simulated_ns"`
	Plan        *PlanInfo `json:"plan,omitempty"`
}

// pipelineInfo snapshots a PipelineResult.
func pipelineInfo(p *PipelineResult) *PipelineInfo {
	info := &PipelineInfo{
		Sources:               len(p.Order),
		Ordered:               p.Ordered,
		Streamed:              p.Streamed,
		Order:                 append([]int(nil), p.Order...),
		IntermediateTuples:    p.IntermediateTuples,
		IntermediateBytes:     p.IntermediateBytes,
		PeakIntermediateBytes: p.PeakIntermediateBytes,
		Replans:               p.Replans,
		SpilledPartitions:     p.SpilledPartitions,
		SpillBytes:            p.SpillBytes,
	}
	for _, st := range p.Steps {
		si := PipelineStepInfo{
			Build:       st.Build,
			Probe:       st.Probe,
			BuildTuples: st.BuildTuples,
			ProbeTuples: st.ProbeTuples,
			Matches:     st.OutTuples,
			SimulatedNS: st.Result.TotalNS,
		}
		if st.Plan != nil {
			pl := *st.Plan
			si.Plan = &pl
		}
		info.Steps = append(info.Steps, si)
	}
	return info
}

// pipeInput is one resolved pipeline input: the concrete relation, its
// display name, and — for catalog-resident inputs (named sources and
// materialized intermediates) — the pinned entry carrying ingest-time
// statistics.
type pipeInput struct {
	name  string
	rel   rel.Relation
	entry *catalog.Entry
}

// pipeJob is a resolved pipeline awaiting execution.
type pipeJob struct {
	sources      []pipeInput
	declared     bool
	materialized bool
}

// resolvePipeline pins the named sources of a spec. The returned
// resolvedSpec carries the pins (released by the query's terminal state,
// or by the caller on the synchronous path) and the pipeline job.
func (s *Service) resolvePipeline(spec PipelineSpec) (resolvedSpec, error) {
	if s.cluster != nil {
		return s.cluster.resolvePipeline(spec)
	}
	if s.router != nil {
		return s.resolveShardedPipeline(spec)
	}
	rs := resolvedSpec{opt: spec.Opt, auto: spec.Auto}
	if len(spec.Sources) < 2 {
		return rs, fmt.Errorf("%w (got %d)", ErrPipelineTooShort, len(spec.Sources))
	}
	pj := &pipeJob{declared: spec.DeclaredOrder, materialized: spec.Materialized}
	for i, src := range spec.Sources {
		in := pipeInput{name: src.Name, rel: src.Rel}
		if src.Name != "" {
			e, err := s.catalog.Acquire(src.Name)
			if err != nil {
				rs.release()
				return rs, fmt.Errorf("pipeline source %d: %w", i+1, err)
			}
			rs.pins = append(rs.pins, e)
			in.rel, in.entry = e.Relation(), e
		} else {
			in.name = fmt.Sprintf("inline[%d]", i)
		}
		pj.sources = append(pj.sources, in)
	}
	rs.pipe = pj
	return rs, nil
}

// SubmitPipeline enqueues one multi-way pipeline as a single query: every
// named source is pinned up front and admission is all-or-nothing (a full
// queue rejects the pipeline whole, with every pin released), exactly as
// SubmitBatch treats its queries. The query's Result is the final step's
// Result; the per-step breakdown — including the planner's per-step
// decisions when Auto — is available through Query.Pipeline and in the
// query's Info snapshot.
func (s *Service) SubmitPipeline(ctx context.Context, spec PipelineSpec) (*Query, error) {
	rs, err := s.resolvePipeline(spec)
	if err != nil {
		return nil, err
	}
	qs, err := s.submitResolved(ctx, []resolvedSpec{rs}, false)
	if err != nil {
		return nil, err
	}
	return qs[0], nil
}

// RunPipeline executes a pipeline synchronously, outside the admission
// layer — the engine facade's path; the caller bounds its own concurrency
// and provides the worker pool through spec.Opt.
func (s *Service) RunPipeline(ctx context.Context, spec PipelineSpec) (*PipelineResult, error) {
	rs, err := s.resolvePipeline(spec)
	if err != nil {
		return nil, err
	}
	defer rs.release()
	if rs.clusterpipe != nil {
		return s.cluster.execPipeline(ctx, rs.clusterpipe)
	}
	if rs.shardpipe != nil {
		return s.execShardedPipeline(ctx, rs.shardpipe, rs.opt, rs.auto)
	}
	return s.execPipeline(ctx, rs.pipe, rs.opt, rs.auto)
}

// execPipeline runs a resolved pipeline: order the sources, then chain
// pairwise joins, handing each non-final step's output to the next step.
//
// On the default streamed path the hand-off never goes through the
// catalog: the step's matches are produced morsel-parallel
// (core.StreamMaterialize on the query's pool) directly into the buffer
// the next step builds from, their relation bytes reserved transiently
// against the catalog's residency budget — same budget, same ErrNoSpace —
// and freed the moment the consumer step has derived its per-key state
// from them. At most one intermediate is resident at a time and no key
// index or sample is ever built for it.
//
// With pj.materialized the output instead goes through the catalog as a
// registered relation: measured at ingest, pinned and charged (relation
// bytes plus statistics) until the pipeline finishes, its reserved name
// unbound immediately so a pipeline never pollutes the namespace.
//
// Both paths run the identical single-intermediate-construction order
// (probe order, matches in build order, dense RIDs), so a pipeline's
// Steps, Final and TotalNS are bit-identical between them and across
// worker counts; only PeakIntermediateBytes differs.
func (s *Service) execPipeline(ctx context.Context, pj *pipeJob, opt core.Options, auto bool) (*PipelineResult, error) {
	n := len(pj.sources)

	// Cost-based ordering from the catalog's ingest-time statistics; any
	// inline source means no statistics and declaration order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ordered := false
	var ests []float64
	var rels []plan.PipeRel
	var pairStats plan.PairStats
	if !pj.declared {
		rels = make([]plan.PipeRel, n)
		for i, src := range pj.sources {
			rels[i] = plan.PipeRel{Tuples: src.rel.Len()}
			if src.entry != nil {
				rels[i].HeavyShare = src.entry.HeavyShare()
			}
		}
		pairStats = func(i, j int) (plan.Workload, bool) {
			bi, pi := pj.sources[i].entry, pj.sources[j].entry
			if bi == nil || pi == nil {
				return plan.Workload{}, false
			}
			return s.catalog.Workload(bi, pi), true
		}
		order, ests, ordered = plan.OrderPipelineEst(rels, pairStats)
	}

	res := &PipelineResult{Order: order, Ordered: ordered, Streamed: !pj.materialized}
	id := s.pipeSeq.Add(1)

	// Materialized intermediate pins are released when the pipeline
	// finishes — their zero-copy bytes stay charged for the pipeline's
	// whole lifetime. Streamed reservations are returned as each consumer
	// step finishes with them; whatever is still reserved on exit (the last
	// live intermediate, or one orphaned by an error) is returned here.
	var inters []*catalog.Entry
	var reserved int64
	defer func() {
		for _, e := range inters {
			e.Release()
		}
		s.catalog.Unreserve(reserved)
	}()

	// The peak accountant tracks the resident intermediate footprint:
	// relation bytes of every live intermediate plus, on the materialized
	// path, the statistics the catalog built for it.
	var residentBytes int64
	charge := func(b int64) {
		residentBytes += b
		if residentBytes > res.PeakIntermediateBytes {
			res.PeakIntermediateBytes = residentBytes
		}
	}

	cur := pj.sources[order[0]]
	var curTransient int64 // reserved bytes backing cur, when cur is streamed
	for t := 1; t < n; t++ {
		probe := pj.sources[order[t]]
		stepOpt := opt
		var pinfo *PlanInfo
		var stepFP plan.Fingerprint
		if auto {
			var pl *core.Plan
			var hit bool
			var perr error
			if cur.entry != nil && probe.entry != nil {
				w := s.catalog.Workload(cur.entry, probe.entry)
				pl, stepFP, hit, perr = s.planner.PlanWorkload(ctx, cur.rel, probe.rel, stepOpt, w)
			} else {
				pl, stepFP, hit, perr = s.planner.Plan(ctx, cur.rel, probe.rel, stepOpt)
			}
			if perr != nil {
				return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): plan: %w", t, cur.name, probe.name, perr)
			}
			stepOpt.Plan = pl
			pinfo = &PlanInfo{
				Algo:        pl.Algo.String(),
				Scheme:      pl.Scheme.String(),
				CacheHit:    hit,
				PredictedNS: pl.PredictedNS,
			}
		}

		stepRes, err := core.RunCtx(ctx, cur.rel, probe.rel, stepOpt)
		if err != nil {
			return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): %w", t, cur.name, probe.name, err)
		}
		if pinfo != nil {
			// Close the planner's feedback loop: record this execution's
			// predicted-vs-simulated error on the cache entry that
			// predicted it.
			s.planner.Observe(stepFP, pinfo.PredictedNS, stepRes.TotalNS)
		}
		res.Steps = append(res.Steps, PipelineStep{
			Build:       cur.name,
			Probe:       probe.name,
			BuildTuples: cur.rel.Len(),
			ProbeTuples: probe.rel.Len(),
			OutTuples:   stepRes.Matches,
			Result:      stepRes,
			Plan:        pinfo,
		})
		res.TotalNS += stepRes.TotalNS
		if t == n-1 {
			res.Final = stepRes
			break
		}

		if stepRes.Matches > math.MaxInt32 {
			return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): intermediate of %d tuples exceeds the representable relation size",
				t, cur.name, probe.name, stepRes.Matches)
		}

		// Mid-pipeline re-planning: the orderer predicted this step's output
		// when it chose the order; when the observation deviates beyond the
		// threshold and at least two steps remain (one remaining step has no
		// order to choose), the greedy tail re-runs anchored on the TRUE
		// cardinality. Every input is a pure function of the data, so the
		// decision — like the order itself — is identical for any worker
		// count.
		if ordered && n-1-t >= 2 && t-1 < len(ests) {
			pred := ests[t-1]
			if obs := float64(stepRes.Matches); math.Abs(obs-pred) > replanDeviation*math.Max(pred, 1) {
				interRel := plan.PipeRel{Tuples: int(stepRes.Matches)}
				newTail, newEsts, ok := plan.OrderRemaining(interRel, rels, order[:t+1], order[t+1:], pairStats)
				if ok {
					copy(order[t+1:], newTail)
					copy(ests[t:], newEsts)
					res.Replans++
				}
			}
		}

		if !pj.materialized {
			// Streamed hand-off. The per-key state of the finished step's
			// build side is all the producer needs from cur: once it is
			// derived, a transient cur is freed *before* the new
			// intermediate is reserved, so at most one streamed
			// intermediate ever holds budget.
			counts := rel.KeyCounts(cur.rel)
			if curTransient > 0 {
				s.catalog.Unreserve(curTransient)
				reserved -= curTransient
				residentBytes -= curTransient
				curTransient = 0
			}
			// The step's exact match count is known before anything is
			// allocated: reserving up front detects an intermediate the
			// residency budget cannot hold — before any host allocation
			// happens. Instead of failing with ErrNoSpace as the
			// materialized path does, the streamed path degrades: the
			// hybrid-hash spiller partitions the remaining chain into the
			// simulated spill store and finishes under whatever headroom is
			// left.
			bytes := stepRes.Matches * 8
			if err := s.catalog.Reserve(bytes); err != nil {
				if !errors.Is(err, catalog.ErrNoSpace) {
					return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): intermediate of %d tuples: %w",
						t, cur.name, probe.name, stepRes.Matches, err)
				}
				return s.spillRemainder(ctx, res, pj, order, t, cur, probe, opt, auto)
			}
			reserved += bytes
			inter := core.StreamMaterialize(opt.Pool, counts, probe.rel)
			if int64(inter.Len()) != stepRes.Matches {
				return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): streamed %d tuples but the join counted %d — engine bug",
					t, cur.name, probe.name, inter.Len(), stepRes.Matches)
			}
			charge(bytes)
			res.IntermediateTuples += int64(inter.Len())
			res.IntermediateBytes += inter.Bytes()
			cur = pipeInput{name: fmt.Sprintf("step%d", t), rel: inter}
			curTransient = bytes
			continue
		}

		// Materialize the intermediate through the catalog: registered
		// (measured at ingest like any relation, charged against the
		// residency budget), pinned, and immediately unbound so the
		// reserved name never collides or lingers in listings.
		//
		// The step's exact match count is known before anything is
		// allocated: reject an intermediate the residency budget cannot
		// hold *before* materializing it — a skew-exploded join (two
		// heavy-key relations joined against each other) would otherwise
		// try a multi-gigabyte host allocation just to have Load refuse it.
		if !s.catalog.Fits(stepRes.Matches * 8) {
			return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): intermediate of %d tuples: %w",
				t, cur.name, probe.name, stepRes.Matches, catalog.ErrNoSpace)
		}
		inter := rel.JoinMaterialize(cur.rel, probe.rel)
		if int64(inter.Len()) != stepRes.Matches {
			return nil, fmt.Errorf("pipeline step %d (%s ⋈ %s): materialized %d tuples but the join counted %d — engine bug",
				t, cur.name, probe.name, inter.Len(), stepRes.Matches)
		}
		name := fmt.Sprintf("%s%d/step%d", ReservedPrefix, id, t)
		if _, err := s.catalog.Load(name, inter); err != nil {
			return nil, fmt.Errorf("pipeline step %d: intermediate: %w", t, err)
		}
		entry, err := s.catalog.Acquire(name)
		if err != nil {
			return nil, fmt.Errorf("pipeline step %d: intermediate: %w", t, err)
		}
		inters = append(inters, entry)
		if _, err := s.catalog.Drop(name); err != nil {
			return nil, fmt.Errorf("pipeline step %d: intermediate: %w", t, err)
		}
		// Materialized intermediates stay pinned to the pipeline's end, so
		// the footprint accumulates: relation bytes plus the ingest-time
		// statistics (key index and sample) the catalog built.
		charge(inter.Bytes() + catalog.StatBytes(inter.Len()))
		res.IntermediateTuples += int64(inter.Len())
		res.IntermediateBytes += inter.Bytes()
		cur = pipeInput{name: fmt.Sprintf("step%d", t), rel: inter, entry: entry}
	}
	return res, nil
}
