package service

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/oracle"
	"apujoin/internal/rel"
)

// TestRouterBudgetSplitDefault: without ShardBudget the catalog capacity
// splits evenly across the per-shard catalogs, and the aggregate gauge
// reports the sum.
func TestRouterBudgetSplitDefault(t *testing.T) {
	svc := New(Config{Workers: 1, Shards: 4, CatalogBytes: 4096})
	defer svc.Close()
	st := svc.Stats()
	if len(st.ShardCatalogs) != 4 {
		t.Fatalf("shard catalogs = %d, want 4", len(st.ShardCatalogs))
	}
	for i, sc := range st.ShardCatalogs {
		if sc.Capacity != 1024 {
			t.Errorf("shard %d capacity = %d, want 1024", i, sc.Capacity)
		}
	}
	if st.Catalog.Capacity != 4096 {
		t.Errorf("aggregate capacity = %d, want 4096", st.Catalog.Capacity)
	}

	// An explicit per-shard budget overrides the split.
	svc2 := New(Config{Workers: 1, Shards: 2, CatalogBytes: 4096, ShardBudget: 512})
	defer svc2.Close()
	for i, sc := range svc2.Stats().ShardCatalogs {
		if sc.Capacity != 512 {
			t.Errorf("explicit budget: shard %d capacity = %d, want 512", i, sc.Capacity)
		}
	}
}

// TestRouterRegisterRollback: a registration one shard's budget cannot
// hold fails with ErrNoSpace and rolls back the partitions already loaded
// into other shards — no orphaned partial relation survives anywhere.
func TestRouterRegisterRollback(t *testing.T) {
	// Each shard holds ~half of a hash-split relation; 2 KB per shard
	// admits ~250 tuples total but not 4000.
	svc := New(Config{Workers: 1, Shards: 2, ShardBudget: 2048})
	defer svc.Close()
	if _, err := svc.RegisterGen("small", rel.Gen{N: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	before := svc.Stats().Catalog

	if _, err := svc.RegisterGen("huge", rel.Gen{N: 4000, Seed: 2}); !errors.Is(err, catalog.ErrNoSpace) {
		t.Fatalf("oversized sharded register: err %v, want catalog.ErrNoSpace", err)
	}
	after := svc.Stats().Catalog
	if after.Bytes != before.Bytes || after.Relations != before.Relations {
		t.Errorf("failed register leaked residency: %d bytes / %d relations, want %d / %d",
			after.Bytes, after.Relations, before.Bytes, before.Relations)
	}
	if _, ok := svc.RelationInfo("huge"); ok {
		t.Error("failed registration left the name bound")
	}
	// The name stays free for a fitting relation.
	if _, err := svc.RegisterGen("huge", rel.Gen{N: 50, Seed: 3}); err != nil {
		t.Errorf("re-register after rollback: %v", err)
	}
}

// TestRouterLifecycle: duplicate names, drop semantics and the router's
// registered/dropped counters across the sharded catalog surface.
func TestRouterLifecycle(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 3})
	defer svc.Close()

	if _, err := svc.RegisterGen("r", rel.Gen{N: 5000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterGen("r", rel.Gen{N: 10, Seed: 2}); !errors.Is(err, catalog.ErrExists) {
		t.Errorf("duplicate register: err %v, want catalog.ErrExists", err)
	}
	if _, err := svc.RegisterProbe("s", "r", rel.Gen{N: 6000, Seed: 2}, 0.8); err != nil {
		t.Fatal(err)
	}
	infos := svc.Relations()
	if len(infos) != 2 || infos[0].Name != "r" || infos[1].Name != "s" {
		t.Fatalf("relations = %+v, want sorted [r s]", infos)
	}
	if info, ok := svc.RelationInfo("s"); !ok || info.ProbeOf != "r" || info.Selectivity != 0.8 || info.Tuples != 6000 {
		t.Errorf("probe info = %+v, ok=%v", info, ok)
	}

	if _, err := svc.DropRelation("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DropRelation("s"); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("double drop: err %v, want catalog.ErrNotFound", err)
	}
	if _, err := svc.RegisterProbe("p", "missing", rel.Gen{N: 10, Seed: 4}, 1.0); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("probe of missing base: err %v, want catalog.ErrNotFound", err)
	}

	st := svc.Stats().Catalog
	if st.Registered != 2 || st.Dropped != 1 || st.Relations != 1 {
		t.Errorf("counters: registered=%d dropped=%d relations=%d, want 2/1/1",
			st.Registered, st.Dropped, st.Relations)
	}
}

// TestRouterProbeChainRegeneration: a probe-of-probe chain on the sharded
// service joins to exactly the counts of the same chain generated
// directly — the router regenerated each build side in original tuple
// order, not from its partition split.
func TestRouterProbeChainRegeneration(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 2})
	defer svc.Close()

	rg := rel.Gen{N: 4000, Seed: 1}
	sg := rel.Gen{N: 5000, Dist: rel.HighSkew, Seed: 2}
	tg := rel.Gen{N: 3000, Seed: 3}
	if _, err := svc.RegisterGen("r", rg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("s", "r", sg, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("u", "s", tg, 0.5); err != nil {
		t.Fatal(err)
	}

	r := rg.Build()
	s := sg.Probe(r, 0.7)
	u := tg.Probe(s, 0.5)
	opt := core.Options{Delta: 0.25, PilotItems: 1 << 8}
	for _, pair := range []struct {
		rn, sn string
		want   int64
	}{
		{"r", "s", oracle.JoinCount(r, s)},
		{"s", "u", oracle.JoinCount(s, u)},
	} {
		res, err := svc.RunJoin(context.Background(), JoinSpec{RName: pair.rn, SName: pair.sn, Opt: opt})
		if err != nil {
			t.Fatalf("%s ⋈ %s: %v", pair.rn, pair.sn, err)
		}
		if res.Matches != pair.want {
			t.Errorf("%s ⋈ %s: matches %d, oracle %d", pair.rn, pair.sn, res.Matches, pair.want)
		}
	}

	// A probe anchored on a bulk load reassembles the loaded base from its
	// pinned partitions in original tuple order (the router records each
	// tuple's partition at registration), so registration succeeds and the
	// joins match the directly generated chain.
	if _, err := svc.LoadRelation("bulk", rg.Build()); err != nil {
		t.Fatal(err)
	}
	qg := rel.Gen{N: 3500, Dist: rel.HighSkew, Seed: 9}
	if _, err := svc.RegisterProbe("q", "bulk", qg, 0.6); err != nil {
		t.Fatalf("probe of a bulk-loaded relation: %v", err)
	}
	q := qg.Probe(rg.Build(), 0.6)
	res, err := svc.RunJoin(context.Background(), JoinSpec{RName: "bulk", SName: "q", Opt: opt})
	if err != nil {
		t.Fatalf("bulk ⋈ q: %v", err)
	}
	if want := oracle.JoinCount(rg.Build(), q); res.Matches != want {
		t.Errorf("bulk ⋈ q: matches %d, oracle %d", res.Matches, want)
	}
	// A probe chained on a loaded anchor through another probe regenerates
	// too: the chain walk bottoms out at the reassembled load.
	if _, err := svc.RegisterProbe("q2", "q", rel.Gen{N: 1500, Seed: 10}, 0.8); err != nil {
		t.Fatalf("probe of probe-of-loaded: %v", err)
	}
}

// TestRouterShardedJoinPaths: RunJoin's sharded resolution accepts named,
// inline and mixed source pairs — splitting inline sides on the spot —
// and surfaces catalog errors from any partition.
func TestRouterShardedJoinPaths(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 2})
	defer svc.Close()
	if !svc.Sharded() || svc.Shards() != 2 {
		t.Fatalf("Sharded()=%v Shards()=%d, want true/2", svc.Sharded(), svc.Shards())
	}
	if svc.Pool() == nil {
		t.Fatal("resident pool missing")
	}

	rg := rel.Gen{N: 3000, Seed: 1}
	sg := rel.Gen{N: 3000, Seed: 2}
	r := rg.Build()
	s := sg.Probe(r, 0.9)
	want := oracle.JoinCount(r, s)
	if _, err := svc.RegisterGen("r", rg); err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Delta: 0.25, PilotItems: 1 << 8}
	for name, spec := range map[string]JoinSpec{
		"inline": {R: r, S: s, Opt: opt},
		"mixed":  {RName: "r", S: s, Opt: opt},
		"auto":   {RName: "r", S: s, Opt: opt, Auto: true},
	} {
		res, err := svc.RunJoin(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Matches != want {
			t.Errorf("%s: matches %d, oracle %d", name, res.Matches, want)
		}
	}
	if _, err := svc.RunJoin(context.Background(), JoinSpec{RName: "r", SName: "missing", Opt: opt}); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("unknown probe name: err %v, want catalog.ErrNotFound", err)
	}
}

// TestRouterShardedPipeline: the sharded pipeline path — global order,
// per-partition chains, deterministic per-step merge — matches the
// multi-way oracle on streamed, materialized and declared-order runs,
// streamed and materialized agree bit for bit, and tiny relations whose
// hash partitions are mostly empty still chain correctly.
func TestRouterShardedPipeline(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 3})
	defer svc.Close()

	rg := rel.Gen{N: 3000, Seed: 1}
	sg := rel.Gen{N: 4000, Dist: rel.HighSkew, Seed: 2}
	ug := rel.Gen{N: 2500, Seed: 3}
	if _, err := svc.RegisterGen("r", rg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("s", "r", sg, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("u", "r", ug, 0.4); err != nil {
		t.Fatal(err)
	}
	r := rg.Build()
	s := sg.Probe(r, 0.7)
	u := ug.Probe(r, 0.4)
	want := oracle.PipelineCount([]rel.Relation{r, s, u})

	opt := core.Options{Delta: 0.25, PilotItems: 1 << 8}
	named := []PipelineSource{{Name: "r"}, {Name: "s"}, {Name: "u"}}
	streamed, err := svc.RunPipeline(context.Background(), PipelineSpec{Sources: named, Opt: opt, Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Final.Matches != want {
		t.Errorf("streamed: matches %d, oracle %d", streamed.Final.Matches, want)
	}
	if !streamed.Streamed || !streamed.Ordered || streamed.PeakIntermediateBytes <= 0 {
		t.Errorf("streamed run: Streamed=%v Ordered=%v peak=%d", streamed.Streamed, streamed.Ordered, streamed.PeakIntermediateBytes)
	}
	mat, err := svc.RunPipeline(context.Background(), PipelineSpec{Sources: named, Opt: opt, Auto: true, Materialized: true})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Streamed {
		t.Error("materialized run reported Streamed")
	}
	if !reflect.DeepEqual(streamed.Order, mat.Order) || !reflect.DeepEqual(streamed.Final, mat.Final) {
		t.Error("streamed and materialized sharded pipelines diverge")
	}

	// Inline sources run in declaration order; tiny relations leave most
	// of the 8 hash partitions empty on at least one side.
	tinyR := rel.Gen{N: 6, Seed: 9}.Build()
	tinyS := rel.Gen{N: 8, Seed: 10}.Probe(tinyR, 1.0)
	tinyU := rel.Gen{N: 5, Seed: 11}.Probe(tinyR, 1.0)
	tiny, err := svc.RunPipeline(context.Background(), PipelineSpec{
		Sources:       []PipelineSource{{Rel: tinyR}, {Rel: tinyS}, {Rel: tinyU}},
		Opt:           opt,
		DeclaredOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tw := oracle.PipelineCount([]rel.Relation{tinyR, tinyS, tinyU}); tiny.Final.Matches != tw {
		t.Errorf("tiny sharded pipeline: matches %d, oracle %d", tiny.Final.Matches, tw)
	}

	// Error surface: too few sources, unknown names.
	if _, err := svc.RunPipeline(context.Background(), PipelineSpec{Sources: named[:1], Opt: opt}); !errors.Is(err, ErrPipelineTooShort) {
		t.Errorf("one source: err %v, want ErrPipelineTooShort", err)
	}
	if _, err := svc.RunPipeline(context.Background(), PipelineSpec{
		Sources: []PipelineSource{{Name: "r"}, {Name: "nope"}}, Opt: opt,
	}); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("unknown source: err %v, want catalog.ErrNotFound", err)
	}
}

// TestRouterShardedPipelineBudget: a sharded pipeline whose intermediate
// overflows a shard's budget spills on the streamed path — completing
// with the unconstrained matches and reporting the spill — and still
// fails with ErrNoSpace when materialized (documented scope: the
// materialized path pins every intermediate and cannot spill). Both
// outcomes restore every shard's residency gauge.
func TestRouterShardedPipelineBudget(t *testing.T) {
	rg := rel.Gen{N: 2000, Seed: 1}
	sg := rel.Gen{N: 2000, Seed: 2}
	ug := rel.Gen{N: 2000, Seed: 3}
	// Sources fit (ingest splits ~6000 tuples over 2 shards), but each
	// selectivity-1 intermediate (~2000 tuples in one chain) cannot.
	svc := New(Config{Workers: 2, Shards: 2, ShardBudget: 26_000})
	defer svc.Close()
	if _, err := svc.RegisterGen("r", rg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("s", "r", sg, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("u", "r", ug, 1.0); err != nil {
		t.Fatal(err)
	}
	before := svc.Stats().Catalog.Bytes

	// The unconstrained reference for the same chain.
	r := rg.Build()
	s := sg.Probe(r, 1.0)
	u := ug.Probe(r, 1.0)
	want := oracle.PipelineCount([]rel.Relation{r, s, u})

	named := []PipelineSource{{Name: "r"}, {Name: "s"}, {Name: "u"}}
	opt := core.Options{Delta: 0.25, PilotItems: 1 << 8}
	res, err := svc.RunPipeline(context.Background(), PipelineSpec{
		Sources: named, Opt: opt, DeclaredOrder: true,
	})
	if err != nil {
		t.Fatalf("streamed pipeline under budget pressure: %v", err)
	}
	if res.Final.Matches != want {
		t.Errorf("spilled pipeline: matches %d, oracle %d", res.Final.Matches, want)
	}
	if res.SpilledPartitions == 0 || res.SpillBytes == 0 || res.SpillNS == 0 {
		t.Errorf("overflowing streamed pipeline reports no spill: partitions=%d bytes=%d ns=%v",
			res.SpilledPartitions, res.SpillBytes, res.SpillNS)
	}

	_, err = svc.RunPipeline(context.Background(), PipelineSpec{
		Sources: named, Opt: opt, Materialized: true, DeclaredOrder: true,
	})
	if !errors.Is(err, catalog.ErrNoSpace) {
		t.Errorf("overflowing intermediate (materialized): err %v, want catalog.ErrNoSpace", err)
	}
	if after := svc.Stats().Catalog.Bytes; after != before {
		t.Errorf("pipeline leaked residency: %d bytes, want %d", after, before)
	}
}

// TestRouterProbeOfLoadedRollback: a probe registration anchored on a
// bulk-loaded relation that overflows the shard budgets fails whole —
// every shard's residency gauge restored, the name unbound — and the
// same name registers cleanly afterwards at a size that fits.
func TestRouterProbeOfLoadedRollback(t *testing.T) {
	rg := rel.Gen{N: 2000, Seed: 1}
	// 2000 loaded tuples split over 2 shards ≈ 8000 bytes per shard; a
	// 6000-tuple probe (~24000 bytes per shard) cannot fit a 12_000-byte
	// shard budget, while a 500-tuple probe can.
	svc := New(Config{Workers: 2, Shards: 2, ShardBudget: 12_000})
	defer svc.Close()
	if _, err := svc.LoadRelation("bulk", rg.Build()); err != nil {
		t.Fatal(err)
	}
	before := svc.Stats().Catalog.Bytes

	if _, err := svc.RegisterProbe("p", "bulk", rel.Gen{N: 6000, Seed: 2}, 1.0); !errors.Is(err, catalog.ErrNoSpace) {
		t.Fatalf("oversized probe of loaded: err %v, want catalog.ErrNoSpace", err)
	}
	if after := svc.Stats().Catalog.Bytes; after != before {
		t.Errorf("failed probe registration leaked residency: %d bytes, want %d", after, before)
	}
	if _, ok := svc.RelationInfo("p"); ok {
		t.Error("failed probe registration left the name bound")
	}

	// The reassembly pins released: the same name registers at a size that
	// fits and joins to the oracle count.
	if _, err := svc.RegisterProbe("p", "bulk", rel.Gen{N: 500, Seed: 2}, 1.0); err != nil {
		t.Fatalf("re-register after rollback: %v", err)
	}
	p := rel.Gen{N: 500, Seed: 2}.Probe(rg.Build(), 1.0)
	res, err := svc.RunJoin(context.Background(), JoinSpec{RName: "bulk", SName: "p",
		Opt: core.Options{Delta: 0.25, PilotItems: 1 << 8}})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.JoinCount(rg.Build(), p); res.Matches != want {
		t.Errorf("bulk ⋈ p after rollback: matches %d, oracle %d", res.Matches, want)
	}
}

// TestRouterWorkloadMemoization: repeated auto joins of the same named
// pair reuse the memoized ingest-time workload (the reuse counter climbs)
// and dropping either side invalidates the memo without breaking later
// queries.
func TestRouterWorkloadMemoization(t *testing.T) {
	svc := New(Config{Workers: 2, Shards: 2})
	defer svc.Close()
	if _, err := svc.RegisterGen("r", rel.Gen{N: 8000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("s", "r", rel.Gen{N: 8000, Seed: 2}, 1.0); err != nil {
		t.Fatal(err)
	}
	spec := JoinSpec{RName: "r", SName: "s", Opt: core.Options{Delta: 0.25, PilotItems: 1 << 8}, Auto: true}
	for i := 0; i < 3; i++ {
		if _, err := svc.RunJoin(context.Background(), spec); err != nil {
			t.Fatalf("auto join %d: %v", i, err)
		}
	}
	if reuses := svc.Stats().Catalog.WorkloadReuses; reuses < 2 {
		t.Errorf("workload reuses = %d after 3 identical auto joins, want >= 2", reuses)
	}

	if _, err := svc.DropRelation("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterProbe("s", "r", rel.Gen{N: 400, Seed: 7}, 0.2); err != nil {
		t.Fatal(err)
	}
	res, err := svc.RunJoin(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.JoinCount(rel.Gen{N: 8000, Seed: 1}.Build(),
		rel.Gen{N: 400, Seed: 7}.Probe(rel.Gen{N: 8000, Seed: 1}.Build(), 0.2))
	if res.Matches != want {
		t.Errorf("join after drop+re-register: matches %d, oracle %d (stale workload memo?)", res.Matches, want)
	}
}
