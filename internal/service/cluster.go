package service

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"apujoin/internal/catalog"
	"apujoin/internal/cluster"
	"apujoin/internal/core"
	"apujoin/internal/plan"
	"apujoin/internal/rel"
	"apujoin/internal/service/api"
	"apujoin/internal/shard"
)

// clusterRouter is the network-sharded sibling of router: the same
// fixed-grid routing tier, but the shard catalogs live in remote apujoind
// processes reached over HTTP through a cluster.Pool. The router keeps
// only per-relation metadata — generation specs and the full-relation
// ingest statistics the planner fingerprints and the pipeline orderer
// consume — and ships the tuple data to each server as one bulk upload of
// its owned partitions.
//
// The invariance contract survives the network hop because nothing
// numeric is computed differently: relations split over the identical
// fixed grid (shard.Split is pure and order-preserving, and each server
// re-splits its upload onto the same partitions), every server plans with
// the full-relation workload the router measured centrally, pipeline
// orders are chosen once here, and the per-partition results come back as
// raw float64 nanoseconds to merge locally in fixed partition order —
// exactly the reduction a single-process sharded engine runs.
type clusterRouter struct {
	pool *cluster.Pool

	mu   sync.Mutex
	rels map[string]*shardedRel
	// pending guards in-flight registrations by name: generation and the
	// remote uploads run outside the lock, and a concurrent duplicate must
	// fail with ErrExists instead of racing the uploads.
	pending   map[string]bool
	workloads map[routerPairKey]plan.Workload

	registered, dropped, reuses int64
}

// newClusterRouter builds the network tier from a service Config. Server
// addresses beyond shard.Partitions are dropped — they could never own a
// partition (cmd/apujoin-router rejects such configs up front).
func newClusterRouter(cfg Config) *clusterRouter {
	addrs := cfg.Cluster
	if len(addrs) > shard.Partitions {
		addrs = addrs[:shard.Partitions]
	}
	retries := cfg.ClusterRetries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	return &clusterRouter{
		pool: cluster.NewPool(cluster.Config{
			Addrs:          addrs,
			Timeout:        cfg.ClusterTimeout,
			Retries:        retries,
			Backoff:        cfg.ClusterBackoff,
			HealthInterval: cfg.HealthInterval,
			HealthFailures: cfg.HealthFailures,
			Logf:           cfg.Logf,
		}),
		rels:      make(map[string]*shardedRel),
		pending:   make(map[string]bool),
		workloads: make(map[routerPairKey]plan.Workload),
	}
}

// registerGen generates and registers a build relation from a spec,
// uploading each server's owned partitions.
func (c *clusterRouter) registerGen(name string, g rel.Gen) (catalog.Info, error) {
	if err := c.precheck(name, g.N); err != nil {
		return catalog.Info{}, err
	}
	defer c.unpend(name)
	sr := &shardedRel{name: name, source: catalog.Generated, gen: g}
	return c.register(sr, g.Build())
}

// registerProbe generates and registers a probe relation against the
// registered build relation of, regenerating the build side from its
// stored spec in original tuple order — the upload is bit-identical to
// the unsharded generation from the same specs.
func (c *clusterRouter) registerProbe(name, of string, g rel.Gen, selectivity float64) (catalog.Info, error) {
	if err := c.precheck(name, g.N); err != nil {
		return catalog.Info{}, err
	}
	defer c.unpend(name)
	if selectivity < 0 || selectivity > 1 {
		return catalog.Info{}, fmt.Errorf("catalog: selectivity %v out of [0,1]", selectivity)
	}
	base, err := c.fullRelation(of)
	if err != nil {
		return catalog.Info{}, fmt.Errorf("catalog: probe_of %q: %w", of, err)
	}
	sr := &shardedRel{name: name, source: catalog.Probe, gen: g, probeOf: of, sel: selectivity}
	return c.register(sr, g.Probe(base, selectivity))
}

// load registers an existing relation (bulk load).
func (c *clusterRouter) load(name string, r rel.Relation) (catalog.Info, error) {
	if err := c.precheck(name, r.Len()); err != nil {
		return catalog.Info{}, err
	}
	defer c.unpend(name)
	if err := r.Validate(); err != nil {
		return catalog.Info{}, fmt.Errorf("catalog: %w", err)
	}
	sr := &shardedRel{name: name, source: catalog.Loaded}
	return c.register(sr, r)
}

// precheck fails fast on an obviously invalid or duplicate registration
// and marks the name pending; the caller unpends when done.
func (c *clusterRouter) precheck(name string, n int) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if n < 0 {
		return fmt.Errorf("catalog: negative relation size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.rels[name]; ok {
		return fmt.Errorf("%w: %q", catalog.ErrExists, name)
	}
	if c.pending[name] {
		return fmt.Errorf("%w: %q (registration in progress)", catalog.ErrExists, name)
	}
	c.pending[name] = true
	return nil
}

func (c *clusterRouter) unpend(name string) {
	c.mu.Lock()
	delete(c.pending, name)
	c.mu.Unlock()
}

// fullRelation rebuilds a registered relation in original tuple order
// from its stored generation chain, exactly as router.fullRelation does:
// probe generation indexes the build side by original position, which the
// partition split does not preserve. Bulk-loaded relations have no spec
// and cannot anchor a probe registration.
func (c *clusterRouter) fullRelation(name string) (rel.Relation, error) {
	type link struct {
		gen rel.Gen
		sel float64
	}
	var chain []link
	c.mu.Lock()
	cur, ok := c.rels[name]
	for {
		if !ok {
			c.mu.Unlock()
			return rel.Relation{}, fmt.Errorf("%w: %q", catalog.ErrNotFound, name)
		}
		chain = append(chain, link{gen: cur.gen, sel: cur.sel})
		if cur.source == catalog.Generated {
			break
		}
		if cur.source != catalog.Probe {
			n := cur.name
			c.mu.Unlock()
			return rel.Relation{}, fmt.Errorf("catalog: %q was bulk-loaded; a sharded service regenerates relations from their specs and cannot reassemble a loaded relation in original order", n)
		}
		cur, ok = c.rels[cur.probeOf]
	}
	c.mu.Unlock()
	r := chain[len(chain)-1].gen.Build()
	for i := len(chain) - 2; i >= 0; i-- {
		r = chain[i].gen.Probe(r, chain[i].sel)
	}
	return r, nil
}

// register measures the full-relation ingest statistics, splits the
// relation over the fixed grid, and uploads each server's owned
// partitions — concatenated in ascending partition order, so the server's
// own re-split reproduces the identical per-partition relations (Split is
// pure in the keys and preserves relative tuple order). The upload is
// all-or-nothing: a server that rejects its slice (ErrNoSpace, transport
// failure, anything) rolls the earlier servers back with best-effort
// deletes and the registration fails whole.
func (c *clusterRouter) register(sr *shardedRel, full rel.Relation) (catalog.Info, error) {
	sr.tuples = full.Len()
	sr.sample = full.KeySample(plan.WorkloadSample)
	sr.index = full.Index()
	sr.skewBucket = plan.SkewBucketOf(sr.sample)
	sr.heavyShare = catalog.HeavyShareOf(sr.sample)
	parts := shard.Split(full)

	n := c.pool.Size()
	for j := 0; j < n; j++ {
		// Non-nil even when empty: "keys": [] is a zero-tuple upload on the
		// wire, while a missing keys field would read as a generator spec.
		keys, rids := []int32{}, []int32{}
		for _, p := range shard.OwnedBy(j, n) {
			keys = append(keys, parts[p].Keys...)
			rids = append(rids, parts[p].RIDs...)
		}
		req := api.RelationRequest{Name: sr.name, Keys: keys, RIDs: rids}
		if err := c.pool.Call(context.Background(), j, http.MethodPost, "/v1/relations", &req, nil); err != nil {
			for q := j - 1; q >= 0; q-- {
				c.deleteRemote(q, sr.name)
			}
			return catalog.Info{}, fmt.Errorf("cluster: register %q on shard %d: %w", sr.name, j, err)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	sr.created = time.Now()
	c.rels[sr.name] = sr
	c.registered++
	return c.infoLocked(sr), nil
}

// deleteRemote best-effort drops one relation from one shard server.
func (c *clusterRouter) deleteRemote(j int, name string) {
	c.pool.Call(context.Background(), j, http.MethodDelete, "/v1/relations?name="+url.QueryEscape(name), nil, nil) //nolint:errcheck // best-effort
}

// drop unregisters a relation: the name unbinds locally first (so the
// cluster's logical namespace is immediately consistent), then every
// shard server is asked to drop its slice best-effort. A server that is
// down keeps an orphaned slice — a documented failure mode: re-registering
// the name may answer 409 from the recovered server until the delete is
// re-issued (DELETE /v1/relations is idempotent on the router).
func (c *clusterRouter) drop(name string) (catalog.Info, error) {
	c.mu.Lock()
	sr, ok := c.rels[name]
	if !ok {
		c.mu.Unlock()
		return catalog.Info{}, fmt.Errorf("%w: %q", catalog.ErrNotFound, name)
	}
	info := c.infoLocked(sr)
	delete(c.rels, name)
	//apulint:ignore detmaporder(invalidation deletes a key set; the surviving map contents are the same whatever order the keys are visited in)
	for k := range c.workloads {
		if k.r == name || k.s == name {
			delete(c.workloads, k)
		}
	}
	c.dropped++
	c.mu.Unlock()
	for j := 0; j < c.pool.Size(); j++ {
		c.deleteRemote(j, name)
	}
	return info, nil
}

// get snapshots one registered relation.
func (c *clusterRouter) get(name string) (catalog.Info, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.rels[name]
	if !ok {
		return catalog.Info{}, false
	}
	return c.infoLocked(sr), true
}

// list snapshots every registered relation, sorted by name.
func (c *clusterRouter) list() []catalog.Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]catalog.Info, 0, len(c.rels))
	for _, sr := range c.rels {
		out = append(out, c.infoLocked(sr))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// infoLocked builds the logical (whole-relation) Info from the router
// record. Pins stay 0: the partition entries — and their pins — live in
// the remote processes.
func (c *clusterRouter) infoLocked(sr *shardedRel) catalog.Info {
	info := catalog.Info{
		Name:       sr.name,
		Tuples:     sr.tuples,
		Bytes:      int64(sr.tuples) * 8,
		Source:     sr.source,
		SkewBucket: sr.skewBucket,
		HeavyShare: sr.heavyShare,
		Joins:      sr.joins,
		Created:    sr.created,
	}
	if sr.source != catalog.Loaded {
		info.Dist = sr.gen.Dist.String()
		info.Seed = sr.gen.Seed
		info.KeyRange = sr.gen.KeyRange
	}
	if sr.source == catalog.Probe {
		info.ProbeOf = sr.probeOf
		info.Selectivity = sr.sel
	}
	return info
}

// workload returns the memoized full-relation pair workload, identically
// to router.workload — the same buckets a single-process engine
// fingerprints with.
func (c *clusterRouter) workload(r, s *shardedRel) plan.Workload {
	if r.tuples == 0 || s.tuples == 0 {
		return plan.Workload{}
	}
	key := routerPairKey{r: r.name, s: s.name}
	c.mu.Lock()
	if w, ok := c.workloads[key]; ok {
		c.reuses++
		c.mu.Unlock()
		return w
	}
	c.mu.Unlock()

	w := plan.PairWorkload(s.sample, s.skewBucket, r.index.Contains)

	c.mu.Lock()
	// Only memoize while both names still resolve to these records: a
	// concurrent drop must not be overwritten by a stale pair.
	if c.rels[r.name] == r && c.rels[s.name] == s {
		c.workloads[key] = w
	}
	c.mu.Unlock()
	return w
}

// stats is the cluster router's catalog surface: logical relations and
// their whole-relation bytes. Capacity and peak stay 0 — the residency
// budgets are enforced by the remote shard catalogs, visible in each
// server's own /v1/stats.
func (c *clusterRouter) stats() catalog.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := catalog.Stats{
		Relations:      len(c.rels),
		Registered:     c.registered,
		Dropped:        c.dropped,
		WorkloadReuses: c.reuses,
	}
	for _, sr := range c.rels {
		st.Bytes += int64(sr.tuples) * 8
	}
	return st
}

// clusterJob is one resolved clustered join: the wire request to fan out,
// plus the full-relation pair workload override for auto planning.
type clusterJob struct {
	req      api.JoinRequest
	workload *plan.Workload
	// keep retains the merged raw per-partition vector on the query so the
	// HTTP layer can echo it; the router always fetches the vectors (they
	// are the transport) but only stores them when asked.
	keep bool
}

// resolve builds a clustered join job from a JoinSpec. Programmatic
// callers must reference registered relations by name — inline relations
// are an HTTP-surface feature on a cluster (the request forwards verbatim
// and every server generates the same full relations). Named pairs
// resolve against the router's records, fail fast with ErrNotFound, and
// carry the centrally measured pair workload when planning is automatic.
func (c *clusterRouter) resolve(sp JoinSpec) (resolvedSpec, error) {
	rs := resolvedSpec{opt: sp.Opt, auto: sp.Auto}
	job := &clusterJob{keep: sp.KeepPartitions}
	if sp.Forward != nil {
		job.req = *sp.Forward
	} else {
		if sp.RName == "" || sp.SName == "" {
			return rs, fmt.Errorf("service: a clustered service joins registered relations only; register both sides and reference them by name (r %q, s %q)", sp.RName, sp.SName)
		}
		req := api.JoinRequest{
			RName:     sp.RName,
			SName:     sp.SName,
			Separate:  sp.Opt.SeparateTables,
			Grouping:  sp.Opt.Grouping,
			Delta:     sp.Opt.Delta,
			CountOnly: sp.Opt.CountOnly,
		}
		if sp.Auto {
			req.Algo = "auto"
		} else {
			req.Algo = api.AlgoName(sp.Opt.Algo)
			req.Scheme = api.SchemeName(sp.Opt.Scheme)
			req.Arch = api.ArchName(sp.Opt.Arch)
		}
		job.req = req
	}
	if (job.req.RName == "") != (job.req.SName == "") {
		return rs, fmt.Errorf("service: reference both relations by name or neither (r %q, s %q)", job.req.RName, job.req.SName)
	}
	auto := sp.Auto || strings.EqualFold(job.req.Algo, "auto")
	if job.req.RName != "" {
		c.mu.Lock()
		rRec, rok := c.rels[job.req.RName]
		sRec, sok := c.rels[job.req.SName]
		if !rok {
			c.mu.Unlock()
			return rs, fmt.Errorf("%w: %q", catalog.ErrNotFound, job.req.RName)
		}
		if !sok {
			c.mu.Unlock()
			return rs, fmt.Errorf("%w: %q", catalog.ErrNotFound, job.req.SName)
		}
		rRec.joins++
		sRec.joins++
		c.mu.Unlock()
		if auto && job.req.Workload == nil && sp.Workload == nil {
			w := c.workload(rRec, sRec)
			job.workload = &w
		}
	}
	if sp.Workload != nil {
		job.workload = sp.Workload
	}
	rs.clusterjob = job
	return rs, nil
}

// execJoin fans one join out to every shard server and merges the raw
// per-partition results locally. Fail-fast: a marked-down shard rejects
// the query before any request is sent (cluster.ErrShardDown, mapped to a
// structured 503 by the HTTP layer), and each in-flight request is
// bounded by the pool's per-request timeout — a dead shard can fail the
// query, never hang it. Every server computes all the fixed grid
// partitions it can (its owned partitions from resident data; inline
// requests regenerate everything); the merge overlays partition p from
// its owner's vector, so each number is read exactly once and the
// partition-order reduction is identical to the in-process engine's.
func (c *clusterRouter) execJoin(ctx context.Context, job *clusterJob) (*core.Result, []*core.Result, error) {
	if err := c.pool.RequireAllUp(); err != nil {
		return nil, nil, err
	}
	req := job.req
	req.Wait = true
	req.PerPartition = true
	if job.workload != nil {
		req.Workload = job.workload
	}
	n := c.pool.Size()
	resps := make([]*api.JoinResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//apulint:ignore nakedgo(network fan-out: one HTTP call per shard server, joined by wg.Wait before any result is read; the CPU-parallel work runs on each server's pool)
		go func(i int) {
			defer wg.Done()
			var resp api.JoinResponse
			if err := c.pool.Call(ctx, i, http.MethodPost, "/v1/join", &req, &resp); err != nil {
				errs[i] = err
				return
			}
			resps[i] = &resp
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Lowest shard index wins: deterministic error selection.
			return nil, nil, fmt.Errorf("cluster: join on shard %d (%s): %w", i, c.pool.Addr(i), err)
		}
	}
	for i, resp := range resps {
		if err := validateShardJoin(resp); err != nil {
			return nil, nil, fmt.Errorf("cluster: join on shard %d (%s): %w", i, c.pool.Addr(i), err)
		}
	}
	parts := make([]*core.Result, shard.Partitions)
	for p := range parts {
		parts[p] = resps[shard.Owner(p, n)].Partitions[p].ToResult()
	}
	return shard.MergeResults(parts), parts, nil
}

// validateShardJoin checks one shard server's join response is usable as
// cluster transport: finished, and carrying the full per-partition vector.
func validateShardJoin(resp *api.JoinResponse) error {
	if resp.State != "done" {
		if resp.Error != "" {
			return fmt.Errorf("query %s: %s", resp.State, resp.Error)
		}
		return fmt.Errorf("query finished in state %q", resp.State)
	}
	if len(resp.Partitions) != shard.Partitions {
		return fmt.Errorf("returned %d per-partition results, want %d (is the shard server running with -shards >= 1?)", len(resp.Partitions), shard.Partitions)
	}
	return nil
}

// clusterPipeJob is one resolved clustered pipeline: the wire request
// (sources still in declared order), the centrally chosen execution
// order, and the first step's workload override.
type clusterPipeJob struct {
	req     api.PipelineRequest
	order   []int
	ordered bool
	wFirst  *plan.Workload
	// names are the step labels by ORIGINAL declared source index —
	// catalog names, or "inline[i]" — so the reassembled report labels
	// steps exactly as a single-process engine would.
	names []string
}

// defaultInlineTuples mirrors the HTTP surface's default size for inline
// generator sources; the orderer needs the generated cardinality before
// any server has generated anything.
const defaultInlineTuples = 1 << 20

// resolvePipeline builds a clustered pipeline job: validate the sources,
// resolve the named records, choose the left-deep order ONCE from the
// full-relation statistics (every server must execute the same order — a
// per-server choice could not even diverge today, but the contract is
// explicit), and capture the first step's pair workload for auto
// planning. Inline sources are normalized here — each gets its positional
// default seed before any reorder, so reordering never changes what a
// server generates.
func (c *clusterRouter) resolvePipeline(spec PipelineSpec) (resolvedSpec, error) {
	rs := resolvedSpec{opt: spec.Opt, auto: spec.Auto}
	var req api.PipelineRequest
	if spec.Forward != nil {
		req = *spec.Forward
		req.Sources = append([]api.PipelineSource(nil), spec.Forward.Sources...)
	} else {
		for i, src := range spec.Sources {
			if src.Name == "" {
				return rs, fmt.Errorf("service: pipeline source %d: a clustered service pipelines registered relations only; inline sources are an HTTP-surface feature", i+1)
			}
			req.Sources = append(req.Sources, api.PipelineSource{Name: src.Name})
		}
		if spec.Auto {
			req.Algo = "auto"
		} else {
			req.Algo = api.AlgoName(spec.Opt.Algo)
			req.Scheme = api.SchemeName(spec.Opt.Scheme)
			req.Arch = api.ArchName(spec.Opt.Arch)
		}
		req.DeclaredOrder = spec.DeclaredOrder
		req.Materialized = spec.Materialized
		req.Separate = spec.Opt.SeparateTables
		req.Grouping = spec.Opt.Grouping
		req.Delta = spec.Opt.Delta
		req.CountOnly = spec.Opt.CountOnly
	}
	n := len(req.Sources)
	if n < 2 {
		return rs, fmt.Errorf("%w (got %d)", ErrPipelineTooShort, n)
	}
	if n > api.MaxPipelineSources {
		return rs, fmt.Errorf("service: pipeline of %d sources exceeds the maximum of %d", n, api.MaxPipelineSources)
	}
	auto := spec.Auto || strings.EqualFold(req.Algo, "auto")

	// Pin down every inline source's seed by declared position before the
	// order is chosen: the shard servers see reordered sources and must
	// still generate what the declared order would have.
	for i := range req.Sources {
		if req.Sources[i].Name == "" && req.Sources[i].Seed == nil {
			seed := int64(42 + i)
			req.Sources[i].Seed = &seed
		}
	}

	pj := &clusterPipeJob{names: make([]string, n)}
	recs := make([]*shardedRel, n)
	tuples := make([]int, n)
	c.mu.Lock()
	for i, src := range req.Sources {
		if src.Name == "" {
			pj.names[i] = fmt.Sprintf("inline[%d]", i)
			tuples[i] = src.N
			if tuples[i] <= 0 {
				tuples[i] = defaultInlineTuples
			}
			continue
		}
		sr, ok := c.rels[src.Name]
		if !ok {
			c.mu.Unlock()
			return rs, fmt.Errorf("pipeline source %d: %w: %q", i+1, catalog.ErrNotFound, src.Name)
		}
		recs[i], pj.names[i], tuples[i] = sr, src.Name, sr.tuples
	}
	for _, sr := range recs {
		if sr != nil {
			sr.joins++
		}
	}
	c.mu.Unlock()

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ordered := false
	if !req.DeclaredOrder {
		rels := make([]plan.PipeRel, n)
		for i := range rels {
			rels[i] = plan.PipeRel{Tuples: tuples[i]}
			if recs[i] != nil {
				rels[i].HeavyShare = recs[i].heavyShare
			}
		}
		order, ordered = plan.OrderPipeline(rels, func(i, j int) (plan.Workload, bool) {
			if recs[i] == nil || recs[j] == nil {
				return plan.Workload{}, false
			}
			return c.workload(recs[i], recs[j]), true
		})
	}
	pj.order, pj.ordered = order, ordered

	switch {
	case spec.FirstWorkload != nil:
		pj.wFirst = spec.FirstWorkload
	case req.FirstWorkload != nil:
		pj.wFirst = req.FirstWorkload
	case auto:
		if b, p0 := recs[order[0]], recs[order[1]]; b != nil && p0 != nil {
			w := c.workload(b, p0)
			pj.wFirst = &w
		}
	}
	pj.req = req
	rs.clusterpipe = pj
	return rs, nil
}

// execPipeline fans one pipeline out to every shard server — sources
// pre-reordered and declared_order set, so every server executes the
// router's centrally chosen order — and reassembles the global report
// from the raw per-partition, per-step results, merging each step across
// partitions in fixed partition order exactly as the in-process sharded
// engine does.
func (c *clusterRouter) execPipeline(ctx context.Context, pj *clusterPipeJob) (*PipelineResult, error) {
	if err := c.pool.RequireAllUp(); err != nil {
		return nil, err
	}
	req := pj.req
	sources := make([]api.PipelineSource, len(pj.order))
	for i, idx := range pj.order {
		sources[i] = pj.req.Sources[idx]
	}
	req.Sources = sources
	req.DeclaredOrder = true
	req.Wait = true
	req.PerPartition = true
	req.FirstWorkload = pj.wFirst

	n := c.pool.Size()
	nSrc := len(pj.order)
	resps := make([]*api.JoinResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//apulint:ignore nakedgo(network fan-out: one HTTP call per shard server, joined by wg.Wait before any result is read; the CPU-parallel work runs on each server's pool)
		go func(i int) {
			defer wg.Done()
			var resp api.JoinResponse
			if err := c.pool.Call(ctx, i, http.MethodPost, "/v1/pipeline", &req, &resp); err != nil {
				errs[i] = err
				return
			}
			resps[i] = &resp
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// Lowest shard index wins: deterministic error selection.
			return nil, fmt.Errorf("cluster: pipeline on shard %d (%s): %w", i, c.pool.Addr(i), err)
		}
	}
	for i, resp := range resps {
		if err := validateShardPipeline(resp, nSrc); err != nil {
			return nil, fmt.Errorf("cluster: pipeline on shard %d (%s): %w", i, c.pool.Addr(i), err)
		}
	}

	res := &PipelineResult{
		Order:    append([]int(nil), pj.order...),
		Ordered:  pj.ordered,
		Streamed: !req.Materialized,
	}
	for t := 1; t < nSrc; t++ {
		idx := t - 1
		parts := make([]*core.Result, shard.Partitions)
		buildT, probeT := 0, 0
		var pinfo *PlanInfo
		cacheHit := true
		for p := range parts {
			ps := resps[shard.Owner(p, n)].Pipeline.Partitions.Steps[idx][p]
			parts[p] = ps.Result.ToResult()
			buildT += ps.BuildTuples
			probeT += ps.ProbeTuples
			// The same aggregation the in-process sharded engine applies to
			// its per-partition plans: representative algo/scheme from the
			// lowest planned partition, predictions summed in partition
			// order, cache_hit only when every planned partition hit.
			if pl := ps.Plan; pl != nil {
				if pinfo == nil {
					pinfo = &PlanInfo{Algo: pl.Algo, Scheme: pl.Scheme}
				}
				pinfo.PredictedNS += pl.PredictedNS
				cacheHit = cacheHit && pl.CacheHit
			}
		}
		if pinfo != nil {
			pinfo.CacheHit = cacheHit
		}
		merged := shard.MergeResults(parts)
		build := pj.names[pj.order[0]]
		if t > 1 {
			build = fmt.Sprintf("step%d", t-1)
		}
		res.Steps = append(res.Steps, PipelineStep{
			Build:       build,
			Probe:       pj.names[pj.order[t]],
			BuildTuples: buildT,
			ProbeTuples: probeT,
			OutTuples:   merged.Matches,
			Result:      merged,
			Plan:        pinfo,
		})
		res.TotalNS += merged.TotalNS
		res.SpilledPartitions += merged.SpilledPartitions
		res.SpillBytes += merged.SpillBytes
		res.SpillNS += merged.SpillNS
		if t == nSrc-1 {
			res.Final = merged
		}
	}
	for p := 0; p < shard.Partitions; p++ {
		pp := resps[shard.Owner(p, n)].Pipeline.Partitions
		res.IntermediateTuples += pp.IntermediateTuples[p]
		res.IntermediateBytes += pp.IntermediateBytes[p]
		res.PeakIntermediateBytes += pp.PeakIntermediateBytes[p]
		if len(pp.SpillDepth) == shard.Partitions && pp.SpillDepth[p] > res.SpillDepth {
			res.SpillDepth = pp.SpillDepth[p]
		}
	}
	return res, nil
}

// validateShardPipeline checks one shard server's pipeline response
// carries the full per-partition, per-step transport for an nSrc-source
// chain.
func validateShardPipeline(resp *api.JoinResponse, nSrc int) error {
	if resp.State != "done" {
		if resp.Error != "" {
			return fmt.Errorf("query %s: %s", resp.State, resp.Error)
		}
		return fmt.Errorf("query finished in state %q", resp.State)
	}
	if resp.Pipeline == nil || resp.Pipeline.Partitions == nil {
		return fmt.Errorf("returned no per-partition pipeline results (is the shard server running with -shards >= 1?)")
	}
	pp := resp.Pipeline.Partitions
	if len(pp.Steps) != nSrc-1 {
		return fmt.Errorf("returned %d pipeline steps, want %d", len(pp.Steps), nSrc-1)
	}
	for t, row := range pp.Steps {
		if len(row) != shard.Partitions {
			return fmt.Errorf("step %d: returned %d per-partition results, want %d", t+1, len(row), shard.Partitions)
		}
	}
	if len(pp.PeakIntermediateBytes) != shard.Partitions ||
		len(pp.IntermediateTuples) != shard.Partitions ||
		len(pp.IntermediateBytes) != shard.Partitions {
		return fmt.Errorf("per-partition gauge vectors are incomplete")
	}
	return nil
}
