package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// invarianceCase is one query of the concurrency contract: its own dataset
// and configuration, so interleaved queries are heterogeneous.
type invarianceCase struct {
	name string
	opt  core.Options
	dist rel.Distribution
	seed int64
	nr   int
	ns   int
	sel  float64
}

func invarianceCases() []invarianceCase {
	return []invarianceCase{
		{"SHJ/PL/uniform", core.Options{Algo: core.SHJ, Scheme: core.PL}, rel.Uniform, 101, 25000, 35000, 1.0},
		{"PHJ/PL/uniform", core.Options{Algo: core.PHJ, Scheme: core.PL}, rel.Uniform, 202, 30000, 30000, 0.8},
		{"PHJ/DD/highskew", core.Options{Algo: core.PHJ, Scheme: core.DD}, rel.HighSkew, 303, 20000, 40000, 0.9},
		{"SHJ/OL/lowskew", core.Options{Algo: core.SHJ, Scheme: core.OL}, rel.LowSkew, 404, 25000, 25000, 0.5},
		{"SHJ/DD/separate", core.Options{Algo: core.SHJ, Scheme: core.DD, SeparateTables: true}, rel.Uniform, 505, 20000, 20000, 1.0},
		{"PHJ/PL'/uniform", core.Options{Algo: core.PHJ, Scheme: core.CoarsePL}, rel.Uniform, 606, 25000, 25000, 0.7},
	}
}

func (c invarianceCase) data() (rel.Relation, rel.Relation) {
	r := rel.Gen{N: c.nr, Dist: c.dist, Seed: c.seed}.Build()
	s := rel.Gen{N: c.ns, Dist: c.dist, Seed: c.seed + 1}.Probe(r, c.sel)
	return r, s
}

func (c invarianceCase) options() core.Options {
	opt := c.opt
	opt.Delta = 0.1
	opt.PilotItems = 4096
	return opt
}

// compareResults demands bit-identical simulation output between two runs
// of the same query.
func compareResults(t *testing.T, name, mode string, ref, got *core.Result) {
	t.Helper()
	if got.Matches != ref.Matches {
		t.Errorf("%s %s: matches %d, want %d", name, mode, got.Matches, ref.Matches)
	}
	if got.TotalNS != ref.TotalNS {
		t.Errorf("%s %s: TotalNS %.3f, want %.3f", name, mode, got.TotalNS, ref.TotalNS)
	}
	if got.Breakdown != ref.Breakdown {
		t.Errorf("%s %s: breakdown differs:\n got %+v\nwant %+v", name, mode, got.Breakdown, ref.Breakdown)
	}
	if got.AllocStats != ref.AllocStats {
		t.Errorf("%s %s: alloc stats differ:\n got %+v\nwant %+v", name, mode, got.AllocStats, ref.AllocStats)
	}
	if got.Cache != ref.Cache {
		t.Errorf("%s %s: cache stats differ:\n got %+v\nwant %+v", name, mode, got.Cache, ref.Cache)
	}
	if !reflect.DeepEqual(got.Ratios, ref.Ratios) {
		t.Errorf("%s %s: ratios differ:\n got %+v\nwant %+v", name, mode, got.Ratios, ref.Ratios)
	}
	if len(got.Steps) != len(ref.Steps) {
		t.Fatalf("%s %s: step counts differ: %d vs %d", name, mode, len(got.Steps), len(ref.Steps))
	}
	for i := range ref.Steps {
		if got.Steps[i] != ref.Steps[i] {
			t.Errorf("%s %s: step %d differs:\n got %+v\nwant %+v", name, mode, i, got.Steps[i], ref.Steps[i])
		}
	}
}

// TestConcurrentQueriesInvariance is the service layer's contract: every
// query's match count and simulated times are bit-identical whether it runs
// alone (plain core.Run, one worker), interleaved with the other queries on
// a shared service, or serially through the same service afterwards. Run
// under -race this also proves the interleaving is data-race free.
func TestConcurrentQueriesInvariance(t *testing.T) {
	cases := invarianceCases()

	// Reference: each query alone, single worker, transient pool.
	refs := make([]*core.Result, len(cases))
	for i, c := range cases {
		r, s := c.data()
		opt := c.options()
		opt.Workers = 1
		res, err := core.Run(r, s, opt)
		if err != nil {
			t.Fatalf("%s: reference run: %v", c.name, err)
		}
		want := rel.NaiveJoinCount(r, s)
		if res.Matches != want {
			t.Fatalf("%s: reference matches %d, want %d", c.name, res.Matches, want)
		}
		refs[i] = res
	}

	svc := New(Options{Workers: 8, MaxConcurrent: len(cases), MaxQueue: len(cases)})
	defer svc.Close()

	// Interleaved: all queries in flight at once on the shared pool.
	queries := make([]*Query, len(cases))
	for i, c := range cases {
		r, s := c.data()
		q, err := svc.Submit(context.Background(), r, s, c.options())
		if err != nil {
			t.Fatalf("%s: submit: %v", c.name, err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		res, err := q.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s: interleaved: %v", cases[i].name, err)
		}
		compareResults(t, cases[i].name, "interleaved", refs[i], res)
	}

	// Serial through the same (now warm) service: one at a time.
	for i, c := range cases {
		r, s := c.data()
		q, err := svc.Submit(context.Background(), r, s, c.options())
		if err != nil {
			t.Fatalf("%s: serial submit: %v", c.name, err)
		}
		res, err := q.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s: serial: %v", c.name, err)
		}
		compareResults(t, c.name, "serial-after", refs[i], res)
	}

	st := svc.Stats()
	if st.Completed != int64(2*len(cases)) {
		t.Errorf("stats completed %d, want %d", st.Completed, 2*len(cases))
	}
	if st.Queued != 0 || st.Active != 0 {
		t.Errorf("gauges not drained: queued %d active %d", st.Queued, st.Active)
	}
	var wantMatches int64
	for _, ref := range refs {
		wantMatches += 2 * ref.Matches
	}
	if st.Matches != wantMatches {
		t.Errorf("stats matches %d, want %d", st.Matches, wantMatches)
	}
}

// TestServiceCloseNoGoroutineLeaks proves Close reclaims every goroutine
// the service started: resident pool workers and per-query runners.
func TestServiceCloseNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Options{Workers: 8, MaxConcurrent: 3})
	r := rel.Gen{N: 20000, Seed: 1}.Build()
	s := rel.Gen{N: 20000, Seed: 2}.Probe(r, 1.0)
	for i := 0; i < 5; i++ {
		opt := core.Options{Algo: core.PHJ, Scheme: core.DD, Delta: 0.1, PilotItems: 2048}
		if _, err := svc.Submit(context.Background(), r, s, opt); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d, want <= %d", g, before)
	}

	if _, err := svc.Submit(context.Background(), r, s, core.Options{}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err %v, want ErrClosed", err)
	}
	if err := svc.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
}

// TestAdmissionQueueAndCancel exercises the admission layer: a running
// query holds the only slot, waiting queries fill the bounded queue,
// overflow is rejected fast, and a queued query can be cancelled without
// ever running.
func TestAdmissionQueueAndCancel(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 1, MaxQueue: 3})
	defer svc.Close()

	// q1 is big enough to still be running while the rest are submitted.
	r1 := rel.Gen{N: 1 << 17, Seed: 1}.Build()
	s1 := rel.Gen{N: 1 << 17, Seed: 2}.Probe(r1, 1.0)
	q1, err := svc.Submit(context.Background(), r1, s1, core.Options{Algo: core.PHJ, Scheme: core.PL, Delta: 0.1, PilotItems: 4096})
	if err != nil {
		t.Fatalf("q1 submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for q1.State() == Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := q1.State(); st != Running && st != Done {
		t.Fatalf("q1 state %v, want running", st)
	}

	r := rel.Gen{N: 4000, Seed: 3}.Build()
	s := rel.Gen{N: 4000, Seed: 4}.Probe(r, 1.0)
	small := core.Options{Algo: core.SHJ, Scheme: core.DD, Delta: 0.25, PilotItems: 1024}

	q2, err := svc.Submit(context.Background(), r, s, small)
	if err != nil {
		t.Fatalf("q2 submit: %v", err)
	}
	q3, err := svc.Submit(context.Background(), r, s, small)
	if err != nil {
		t.Fatalf("q3 submit: %v", err)
	}
	q4, err := svc.Submit(context.Background(), r, s, small)
	if err != nil {
		t.Fatalf("q4 submit: %v", err)
	}
	if _, err := svc.Submit(context.Background(), r, s, small); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit: err %v, want ErrQueueFull", err)
	}
	if got := svc.Stats().Rejected; got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}

	// Cancel q4 while it waits for admission (q1 still holds the slot).
	q4.Cancel()
	if _, err := q4.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queued query: err %v, want context.Canceled", err)
	}
	if st := q4.State(); st != Canceled {
		t.Errorf("q4 state %v, want canceled", st)
	}

	for _, q := range []*Query{q1, q2, q3} {
		if _, err := q.Wait(context.Background()); err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
	}

	st := svc.Stats()
	if st.Completed != 3 || st.Canceled != 1 {
		t.Errorf("stats completed %d canceled %d, want 3 and 1", st.Completed, st.Canceled)
	}
}

// TestResultRetention checks eviction keeps the newest finished queries
// pollable and never drops unfinished ones.
func TestResultRetention(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 2, MaxQueue: 16, KeepResults: 3})
	defer svc.Close()

	r := rel.Gen{N: 3000, Seed: 7}.Build()
	s := rel.Gen{N: 3000, Seed: 8}.Probe(r, 1.0)
	opt := core.Options{Algo: core.SHJ, Scheme: core.DD, Delta: 0.25, PilotItems: 1024}

	var last *Query
	for i := 0; i < 6; i++ {
		q, err := svc.Submit(context.Background(), r, s, opt)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := q.Wait(context.Background()); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		last = q
	}
	if got := len(svc.Queries()); got > 3 {
		t.Errorf("retained %d queries, want <= 3", got)
	}
	if _, ok := svc.Query(last.ID); !ok {
		t.Errorf("newest query %d evicted", last.ID)
	}
	if _, ok := svc.Query(1); ok {
		t.Errorf("oldest query still retained beyond cap")
	}
}

// TestSubmitAutoBitIdentical: queries submitted with SubmitAuto — planner
// decides, plan cache mediates — produce results bit-identical to a plain
// core.Run with the same plan injected explicitly, whether the plan came
// from a cache miss or a hit; and the stats surface reports the cache and
// predicted-vs-simulated accounting.
func TestSubmitAutoBitIdentical(t *testing.T) {
	opt := core.Options{Delta: 0.1, PilotItems: 1 << 11}
	r := rel.Gen{N: 30000, Dist: rel.LowSkew, Seed: 11}.Build()
	s := rel.Gen{N: 30000, Dist: rel.LowSkew, Seed: 12}.Probe(r, 0.8)

	svc := New(Options{MaxConcurrent: 2})
	defer svc.Close()

	const queries = 4
	qs := make([]*Query, queries)
	for i := range qs {
		q, err := svc.SubmitAuto(context.Background(), r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	results := make([]*core.Result, queries)
	for i, q := range qs {
		res, err := q.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}

	// Explicitly planned reference, run alone outside the service.
	pl, err := core.BuildPlan(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	refOpt := opt
	refOpt.Plan = pl
	refOpt.Workers = 1
	ref, err := core.Run(r, s, refOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		compareResults(t, "auto", fmt.Sprintf("query %d vs explicit plan", i), ref, res)
	}

	// Every query's snapshot reports the planner's decision; exactly one
	// paid the plan build.
	hits := 0
	for _, q := range qs {
		info := q.Snapshot()
		if info.Plan == nil {
			t.Fatalf("query %d snapshot has no plan report", q.ID)
		}
		if info.Plan.Algo != pl.Algo.String() || info.Plan.Scheme != pl.Scheme.String() {
			t.Errorf("query %d planned %s-%s, want %s-%s",
				q.ID, info.Plan.Algo, info.Plan.Scheme, pl.Algo, pl.Scheme)
		}
		if info.Plan.CacheHit {
			hits++
		}
	}
	if hits != queries-1 {
		t.Errorf("%d cache hits across %d identical queries, want %d", hits, queries, queries-1)
	}

	st := svc.Stats()
	if st.AutoPlanned != queries {
		t.Errorf("AutoPlanned %d, want %d", st.AutoPlanned, queries)
	}
	if st.PlanMisses != 1 || st.PlanHits != queries-1 {
		t.Errorf("plan cache hits/misses %d/%d, want %d/1", st.PlanHits, st.PlanMisses, queries-1)
	}
	if st.PlanEntries != 1 {
		t.Errorf("PlanEntries %d, want 1", st.PlanEntries)
	}
	if st.PlanSimulatedNS != float64(queries)*ref.TotalNS {
		t.Errorf("PlanSimulatedNS %.0f, want %.0f", st.PlanSimulatedNS, float64(queries)*ref.TotalNS)
	}
	if st.PlanPredictedNS != float64(queries)*pl.PredictedNS {
		t.Errorf("PlanPredictedNS %.0f, want %.0f", st.PlanPredictedNS, float64(queries)*pl.PredictedNS)
	}
	if err := st.MeanPlanErr(); err < 0 || err > 1 {
		t.Errorf("MeanPlanErr %.3f out of [0,1]", err)
	}
}

// TestSubmitAutoDistinctShapes: different workload shapes occupy distinct
// cache entries and each picks its own plan.
func TestSubmitAutoDistinctShapes(t *testing.T) {
	opt := core.Options{Delta: 0.1, PilotItems: 1 << 11}
	svc := New(Options{MaxConcurrent: 2})
	defer svc.Close()

	shapes := []struct {
		dist rel.Distribution
		sel  float64
	}{{rel.Uniform, 1.0}, {rel.HighSkew, 0.5}}
	for i, sh := range shapes {
		r := rel.Gen{N: 20000, Dist: sh.dist, Seed: int64(100 * (i + 1))}.Build()
		s := rel.Gen{N: 20000, Dist: sh.dist, Seed: int64(100*(i+1) + 1)}.Probe(r, sh.sel)
		q, err := svc.SubmitAuto(context.Background(), r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if want := rel.NaiveJoinCount(r, s); res.Matches != want {
			t.Fatalf("shape %d: %d matches, want %d", i, res.Matches, want)
		}
	}
	st := svc.Stats()
	if st.PlanMisses != int64(len(shapes)) || st.PlanEntries != len(shapes) {
		t.Errorf("misses %d entries %d, want %d each", st.PlanMisses, st.PlanEntries, len(shapes))
	}
}
