package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/plan"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
	"apujoin/internal/shard"
)

// router is the stateless-routing tier of a sharded service: relations
// register once and split over the fixed shard.Partitions hash grid into
// per-shard catalogs; joins and pipelines fan out to every partition and
// merge in partition order. The router itself holds only lightweight
// per-relation metadata (specs, ingest-time statistics, partition
// placement is pure arithmetic via shard.Owner) — all tuple data lives in
// the shard catalogs, each with its own residency budget.
//
// The shard count decides placement and budget boundaries and nothing
// else: every computed number is a function of the fixed partition grid,
// which is why results are bit-identical for any shard count.
type router struct {
	shards int
	// catalogs hold the partitioned relations, one catalog per shard with
	// a per-shard zero-copy budget. Streamed pipeline intermediates
	// reserve transient bytes against the owning partition's shard
	// catalog.
	catalogs []*catalog.Catalog
	// planners are per fixed hash partition — NOT per shard — so each
	// partition's plan cache evolves identically for any shard count.
	planners [shard.Partitions]*plan.Planner

	// partBudget is the per-partition share of the TOTAL configured budget
	// (total / shard.Partitions, independent of the shard count). The spill
	// path triggers on it rather than on a shard catalog's physical
	// headroom: which partition chains spill — and therefore every spilled
	// number — must be a pure function of the data and the total budget,
	// never of how partitions happen to be packed into shards.
	partBudget int64

	mu        sync.Mutex
	rels      map[string]*shardedRel
	workloads map[routerPairKey]plan.Workload
	// partBytes tracks the registered relation bytes resident per fixed
	// grid partition, backing partitionBudget.
	partBytes [shard.Partitions]int64

	registered, dropped, reuses int64
}

// shardedRel is the router's record of one registered relation: the
// generation provenance (so probe relations can regenerate their build
// side in original tuple order), and the full-relation ingest statistics
// the planner fingerprints and the pipeline orderer consume. The tuple
// data itself lives as per-partition entries in the shard catalogs, under
// partName(name, p).
type shardedRel struct {
	name    string
	source  catalog.Source
	created time.Time

	gen     rel.Gen
	probeOf string
	sel     float64

	// order records, for bulk-loaded relations only, each original tuple
	// position's fixed grid partition (one byte per tuple). The partition
	// split preserves within-partition relative order, so walking order
	// with per-partition cursors reassembles the exact original relation —
	// what a probe registration against a loaded build side needs. Written
	// once at register, immutable after.
	order []uint8

	tuples int
	// partBytes is the relation's resident bytes per fixed grid partition,
	// unwound from the router's partition gauges at drop.
	partBytes [shard.Partitions]int64
	// sample, index, skewBucket and heavyShare are measured on the FULL
	// relation at ingest — identical to what the unsharded catalog stores —
	// so sharded pair workloads land in the same plan-cache buckets as
	// unsharded ones. The index costs 4 bytes/tuple at the router, the same
	// overhead the unsharded catalog's ingest index carries.
	sample     []int32
	index      rel.KeyIndex
	skewBucket int
	heavyShare float64

	joins int64
}

// routerPairKey identifies a memoized (build, probe) pair workload.
type routerPairKey struct{ r, s string }

// partName is the shard-catalog entry name of one partition of a
// relation. Shard catalogs are written only by the router, so the suffix
// cannot collide with user registrations.
func partName(name string, p int) string {
	return fmt.Sprintf("%s/p%d", name, p)
}

// newRouter builds the sharded tier from a service Config: Shards shard
// catalogs (budget ShardBudget each, defaulting to an even split of
// CatalogBytes), and one planner per fixed hash partition.
func newRouter(cfg Config) *router {
	shards := shard.Clamp(cfg.Shards)
	budget := cfg.ShardBudget
	if budget <= 0 {
		total := cfg.CatalogBytes
		if total <= 0 {
			total = catalog.DefaultCapacity
		}
		budget = total / int64(shards)
	}
	t := &router{
		shards:    shards,
		catalogs:  make([]*catalog.Catalog, shards),
		rels:      make(map[string]*shardedRel),
		workloads: make(map[routerPairKey]plan.Workload),
		// An even partition split of the total budget. With the default
		// even shard split this is total/Partitions for every shard count;
		// an explicit ShardBudget makes the total (and with it the spill
		// thresholds) a property of the configured topology.
		partBudget: budget * int64(shards) / shard.Partitions,
	}
	for i := range t.catalogs {
		t.catalogs[i] = catalog.New(budget)
	}
	for p := range t.planners {
		t.planners[p] = plan.New(cfg.PlanCache)
	}
	return t
}

// catalogOf returns the shard catalog owning partition p.
func (t *router) catalogOf(p int) *catalog.Catalog {
	return t.catalogs[shard.Owner(p, t.shards)]
}

// registerGen generates and registers a build relation from a spec.
func (t *router) registerGen(name string, g rel.Gen) (catalog.Info, error) {
	if err := t.precheck(name, g.N); err != nil {
		return catalog.Info{}, err
	}
	sr := &shardedRel{name: name, source: catalog.Generated, gen: g}
	return t.register(sr, g.Build())
}

// registerProbe generates and registers a probe relation against the
// registered build relation of. The build side is regenerated from its
// stored spec in original tuple order, so the probe is bit-identical to
// g.Probe on the unsharded catalog's resident build relation.
func (t *router) registerProbe(name, of string, g rel.Gen, selectivity float64) (catalog.Info, error) {
	if err := t.precheck(name, g.N); err != nil {
		return catalog.Info{}, err
	}
	if selectivity < 0 || selectivity > 1 {
		return catalog.Info{}, fmt.Errorf("catalog: selectivity %v out of [0,1]", selectivity)
	}
	base, err := t.fullRelation(of)
	if err != nil {
		return catalog.Info{}, fmt.Errorf("catalog: probe_of %q: %w", of, err)
	}
	sr := &shardedRel{name: name, source: catalog.Probe, gen: g, probeOf: of, sel: selectivity}
	return t.register(sr, g.Probe(base, selectivity))
}

// load registers an existing relation (bulk load). The split copies the
// columns into per-partition relations; unlike the unsharded catalog the
// caller's slices are not retained.
func (t *router) load(name string, r rel.Relation) (catalog.Info, error) {
	if err := t.precheck(name, r.Len()); err != nil {
		return catalog.Info{}, err
	}
	if err := r.Validate(); err != nil {
		return catalog.Info{}, fmt.Errorf("catalog: %w", err)
	}
	sr := &shardedRel{name: name, source: catalog.Loaded}
	return t.register(sr, r)
}

// precheck fails fast on an obviously invalid registration before any
// generation work; register re-checks the name under the lock.
func (t *router) precheck(name string, n int) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if n < 0 {
		return fmt.Errorf("catalog: negative relation size %d", n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rels[name]; ok {
		return fmt.Errorf("%w: %q", catalog.ErrExists, name)
	}
	return nil
}

// fullRelation rebuilds a registered relation in its original tuple order.
// Probe generation indexes the build side by original position, which the
// partition split does not preserve, so the router walks the provenance
// chain: generated bases regenerate from their stored specs, bulk-loaded
// bases reassemble from their partition entries via the ingest-time order
// map (see shardedRel.order), and probe links re-apply on top. Either base
// yields the relation bit-identical to the unsharded catalog's resident
// copy.
func (t *router) fullRelation(name string) (rel.Relation, error) {
	type link struct {
		gen rel.Gen
		sel float64
	}
	var chain []link
	var loaded *shardedRel
	t.mu.Lock()
	cur, ok := t.rels[name]
	for {
		if !ok {
			t.mu.Unlock()
			return rel.Relation{}, fmt.Errorf("%w: %q", catalog.ErrNotFound, name)
		}
		if cur.source == catalog.Loaded {
			loaded = cur
			break
		}
		chain = append(chain, link{gen: cur.gen, sel: cur.sel})
		if cur.source == catalog.Generated {
			break
		}
		cur, ok = t.rels[cur.probeOf]
	}
	t.mu.Unlock()
	// Rebuild the base outside the lock (generation and reassembly are the
	// expensive part), then re-apply the probe chain on top.
	var r rel.Relation
	if loaded != nil {
		var err error
		if r, err = t.reassemble(loaded); err != nil {
			return rel.Relation{}, err
		}
	} else {
		r = chain[len(chain)-1].gen.Build()
		chain = chain[:len(chain)-1]
	}
	for i := len(chain) - 1; i >= 0; i-- {
		r = chain[i].gen.Probe(r, chain[i].sel)
	}
	return r, nil
}

// reassemble reconstructs a bulk-loaded relation in its original tuple
// order: pin every partition entry, then walk the ingest-time order map
// with one cursor per partition — the split preserves within-partition
// relative order, so tuple i is the next unconsumed tuple of its recorded
// partition.
func (t *router) reassemble(sr *shardedRel) (rel.Relation, error) {
	t.mu.Lock()
	if t.rels[sr.name] != sr {
		t.mu.Unlock()
		return rel.Relation{}, fmt.Errorf("%w: %q", catalog.ErrNotFound, sr.name)
	}
	ents := make([]*catalog.Entry, shard.Partitions)
	for p := 0; p < shard.Partitions; p++ {
		e, err := t.catalogOf(p).Acquire(partName(sr.name, p))
		if err != nil {
			for q := 0; q < p; q++ {
				ents[q].Release()
			}
			t.mu.Unlock()
			return rel.Relation{}, fmt.Errorf("shard %d: %w", shard.Owner(p, t.shards), err)
		}
		ents[p] = e
	}
	t.mu.Unlock()
	defer func() {
		for _, e := range ents {
			e.Release()
		}
	}()
	out := rel.Relation{
		RIDs: make([]int32, 0, len(sr.order)),
		Keys: make([]int32, 0, len(sr.order)),
	}
	var parts [shard.Partitions]rel.Relation
	for p, e := range ents {
		parts[p] = e.Relation()
	}
	var cursors [shard.Partitions]int
	for _, p := range sr.order {
		i := cursors[p]
		out.RIDs = append(out.RIDs, parts[p].RIDs[i])
		out.Keys = append(out.Keys, parts[p].Keys[i])
		cursors[p]++
	}
	return out, nil
}

// register measures the full-relation ingest statistics, splits the
// relation over the fixed partition grid, and loads each partition into
// its owning shard catalog. Loading is all-or-nothing: a shard whose
// budget cannot hold its partitions rolls the others back and the
// registration fails with the catalog's ErrNoSpace.
func (t *router) register(sr *shardedRel, full rel.Relation) (catalog.Info, error) {
	sr.tuples = full.Len()
	sr.sample = full.KeySample(plan.WorkloadSample)
	sr.index = full.Index()
	sr.skewBucket = plan.SkewBucketOf(sr.sample)
	sr.heavyShare = catalog.HeavyShareOf(sr.sample)
	if sr.source == catalog.Loaded {
		// Loaded relations have no spec to regenerate from, so the split's
		// inverse is recorded instead: each tuple's partition, one byte per
		// tuple, enough to reassemble the original order for probe
		// registrations against this relation.
		sr.order = make([]uint8, full.Len())
		for i, k := range full.Keys {
			sr.order[i] = uint8(shard.PartitionOf(k))
		}
	}
	parts := shard.Split(full)

	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rels[sr.name]; ok {
		return catalog.Info{}, fmt.Errorf("%w: %q", catalog.ErrExists, sr.name)
	}
	for p := 0; p < shard.Partitions; p++ {
		if _, err := t.catalogOf(p).Load(partName(sr.name, p), parts[p]); err != nil {
			// All-or-nothing: roll back every partition already loaded so a
			// failed registration leaves no bytes, no names and no gauges
			// behind.
			for q := 0; q < p; q++ {
				t.catalogOf(q).Drop(partName(sr.name, q))
			}
			return catalog.Info{}, fmt.Errorf("shard %d: %w", shard.Owner(p, t.shards), err)
		}
	}
	for p := 0; p < shard.Partitions; p++ {
		sr.partBytes[p] = parts[p].Bytes()
		t.partBytes[p] += sr.partBytes[p]
	}
	sr.created = time.Now()
	t.rels[sr.name] = sr
	t.registered++
	return t.infoLocked(sr), nil
}

// drop unregisters a relation: the name unbinds immediately and every
// partition entry is dropped from its shard catalog — in-flight queries
// keep their partition pins, and each shard's bytes free when its last
// pin drains.
func (t *router) drop(name string) (catalog.Info, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sr, ok := t.rels[name]
	if !ok {
		return catalog.Info{}, fmt.Errorf("%w: %q", catalog.ErrNotFound, name)
	}
	info := t.infoLocked(sr)
	delete(t.rels, name)
	//apulint:ignore detmaporder(invalidation deletes a key set; the surviving map contents are the same whatever order the keys are visited in)
	for k := range t.workloads {
		if k.r == name || k.s == name {
			delete(t.workloads, k)
		}
	}
	for p := 0; p < shard.Partitions; p++ {
		t.catalogOf(p).Drop(partName(name, p))
		t.partBytes[p] -= sr.partBytes[p]
	}
	t.dropped++
	return info, nil
}

// partitionBudget returns partition p's residency budget for transient
// pipeline intermediates: its even share of the total configured budget
// minus the relation bytes registered into it. The spill path compares
// intermediates against this — a pure function of the registered data and
// the total budget — so spill decisions are identical for any shard count
// and any concurrent interleaving. Summed over a shard's owned partitions
// the thresholds never exceed the shard catalog's free capacity, which is
// what makes the thresholds physically honorable.
func (t *router) partitionBudget(p int) int64 {
	t.mu.Lock()
	b := t.partBudget - t.partBytes[p]
	t.mu.Unlock()
	if b < 0 {
		return 0
	}
	return b
}

// get snapshots one registered relation.
func (t *router) get(name string) (catalog.Info, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sr, ok := t.rels[name]
	if !ok {
		return catalog.Info{}, false
	}
	return t.infoLocked(sr), true
}

// list snapshots every registered relation, sorted by name.
func (t *router) list() []catalog.Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]catalog.Info, 0, len(t.rels))
	for _, sr := range t.rels {
		out = append(out, t.infoLocked(sr))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// infoLocked builds the logical (whole-relation) Info: global tuple count
// and statistics from the router record, pins summed over the partition
// entries.
func (t *router) infoLocked(sr *shardedRel) catalog.Info {
	info := catalog.Info{
		Name:       sr.name,
		Tuples:     sr.tuples,
		Bytes:      int64(sr.tuples) * 8,
		Source:     sr.source,
		SkewBucket: sr.skewBucket,
		HeavyShare: sr.heavyShare,
		Joins:      sr.joins,
		Created:    sr.created,
	}
	if sr.source != catalog.Loaded {
		info.Dist = sr.gen.Dist.String()
		info.Seed = sr.gen.Seed
		info.KeyRange = sr.gen.KeyRange
	}
	if sr.source == catalog.Probe {
		info.ProbeOf = sr.probeOf
		info.Selectivity = sr.sel
	}
	for p := 0; p < shard.Partitions; p++ {
		if pi, ok := t.catalogOf(p).Get(partName(sr.name, p)); ok {
			info.Pins += pi.Pins
		}
	}
	return info
}

// acquire pins every partition entry of a registered relation for one
// query. The returned entries are in partition order; the caller releases
// each when the query reaches a terminal state.
func (t *router) acquire(name string) (*shardedRel, []*catalog.Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sr, ok := t.rels[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", catalog.ErrNotFound, name)
	}
	ents := make([]*catalog.Entry, shard.Partitions)
	for p := 0; p < shard.Partitions; p++ {
		e, err := t.catalogOf(p).Acquire(partName(name, p))
		if err != nil {
			for q := 0; q < p; q++ {
				ents[q].Release()
			}
			return nil, nil, fmt.Errorf("shard %d: %w", shard.Owner(p, t.shards), err)
		}
		ents[p] = e
	}
	sr.joins++
	return sr, ents, nil
}

// workload returns the planner workload buckets of the pair (build r,
// probe s) from the full-relation ingest statistics, memoized per pair —
// the sharded sibling of catalog.Workload, computing the identical
// buckets (plan.PairWorkload over the same sample and membership test).
func (t *router) workload(r, s *shardedRel) plan.Workload {
	if r.tuples == 0 || s.tuples == 0 {
		return plan.Workload{}
	}
	key := routerPairKey{r: r.name, s: s.name}
	t.mu.Lock()
	if w, ok := t.workloads[key]; ok {
		t.reuses++
		t.mu.Unlock()
		return w
	}
	t.mu.Unlock()

	w := plan.PairWorkload(s.sample, s.skewBucket, r.index.Contains)

	t.mu.Lock()
	// Only memoize while both names still resolve to these records: a
	// concurrent drop must not be overwritten by a stale pair.
	if t.rels[r.name] == r && t.rels[s.name] == s {
		t.workloads[key] = w
	}
	t.mu.Unlock()
	return w
}

// planFor plans one partition's sub-join on that partition's own planner.
// The planner index is the fixed grid partition, never the shard, so each
// partition's plan-cache evolution — and with it every planned decision —
// is identical for any shard count. w, when non-nil, carries the
// full-relation pair workload (named pairs); nil measures the partition.
// fp and hit expose the cache interaction so callers can report the
// decision (per-step PlanInfo) and write the observed prediction error
// back after the sub-join runs.
func (t *router) planFor(ctx context.Context, p int, r, s rel.Relation, opt core.Options, w *plan.Workload) (pl *core.Plan, fp plan.Fingerprint, hit bool, err error) {
	if w != nil {
		return t.planners[p].PlanWorkload(ctx, r, s, opt, *w)
	}
	return t.planners[p].Plan(ctx, r, s, opt)
}

// stats aggregates the router's catalog surface: the logical totals
// (relations are counted once, bytes/capacity/peak sum over shards) plus
// the per-shard gauges in shard order.
func (t *router) stats() (catalog.Stats, []catalog.Stats) {
	perShard := make([]catalog.Stats, len(t.catalogs))
	var agg catalog.Stats
	for i, c := range t.catalogs {
		perShard[i] = c.Stats()
		agg.Bytes += perShard[i].Bytes
		agg.Capacity += perShard[i].Capacity
		agg.PeakBytes += perShard[i].PeakBytes
	}
	t.mu.Lock()
	agg.Relations = len(t.rels)
	agg.Registered = t.registered
	agg.Dropped = t.dropped
	agg.WorkloadReuses = t.reuses
	t.mu.Unlock()
	return agg, perShard
}

// emptyPartResult is the zero result a partition with an empty join side
// contributes to the merge: no matches, no simulated time, labeled with
// the requested algorithm, scheme and architecture.
func emptyPartResult(opt core.Options) *core.Result {
	return &core.Result{Algo: opt.Algo, Scheme: opt.Scheme, Arch: opt.Arch}
}

// shardJob is one resolved sharded join: both sides' fixed per-partition
// inputs, plus the full-relation pair workload when both sides are
// registered (auto planning).
type shardJob struct {
	rParts, sParts [shard.Partitions]rel.Relation
	workload       *plan.Workload
	// keep retains the raw per-partition results alongside the merge
	// (JoinSpec.KeepPartitions) — the cluster transport's raw material.
	keep bool
}

// resolveSharded resolves a JoinSpec through the router: named sides pin
// every partition entry, inline sides split over the grid on the spot.
// Unlike the unsharded resolver, mixed named/inline pairs are accepted
// (the engine facade's contract); the HTTP layer enforces its own
// both-or-neither rule before submitting.
func (s *Service) resolveSharded(sp JoinSpec) (resolvedSpec, error) {
	rs := resolvedSpec{opt: sp.Opt, auto: sp.Auto}
	job := &shardJob{keep: sp.KeepPartitions, workload: sp.Workload}
	var rRec, sRec *shardedRel
	if sp.RName != "" {
		sr, ents, err := s.router.acquire(sp.RName)
		if err != nil {
			return rs, err
		}
		rRec = sr
		rs.pins = append(rs.pins, ents...)
		for p, e := range ents {
			job.rParts[p] = e.Relation()
		}
	} else {
		job.rParts = shard.Split(sp.R)
	}
	if sp.SName != "" {
		sr, ents, err := s.router.acquire(sp.SName)
		if err != nil {
			rs.release()
			rs.pins = nil
			return rs, err
		}
		sRec = sr
		rs.pins = append(rs.pins, ents...)
		for p, e := range ents {
			job.sParts[p] = e.Relation()
		}
	} else {
		job.sParts = shard.Split(sp.S)
	}
	if sp.Auto && job.workload == nil && rRec != nil && sRec != nil {
		w := s.router.workload(rRec, sRec)
		job.workload = &w
	}
	rs.shardjob = job
	return rs, nil
}

// execShardedJoin fans one join out to every fixed hash partition on the
// resident pool and merges the per-partition results in partition order.
// Equi-join matches never cross partitions, so the merged result — match
// count and every simulated number — equals the fixed grid's and is
// bit-identical for any shard count. Per-partition planning (auto) runs
// inside the fan-out on the partition's own planner. parts is the raw
// per-partition vector, returned only when job.keep asked for it.
func (s *Service) execShardedJoin(ctx context.Context, job *shardJob, opt core.Options, auto bool) (merged *core.Result, parts []*core.Result, err error) {
	type partOut struct {
		res *core.Result
		err error
	}
	outs := sched.Collect(s.pool, shard.Partitions, func(p int) partOut {
		// A partition with an empty side joins to nothing: skip planning
		// (the planner refuses empty relations) and execution and
		// contribute a zero result. Which partitions are empty depends only
		// on the keys and the fixed grid — never the shard count — so the
		// skip is deterministic and the invariance contract holds.
		if job.rParts[p].Len() == 0 || job.sParts[p].Len() == 0 {
			return partOut{res: emptyPartResult(opt)}
		}
		popt := opt
		var fp plan.Fingerprint
		if auto {
			pl, pfp, _, err := s.router.planFor(ctx, p, job.rParts[p], job.sParts[p], popt, job.workload)
			if err != nil {
				return partOut{err: err}
			}
			popt.Plan = pl
			fp = pfp
		}
		res, err := core.RunCtx(ctx, job.rParts[p], job.sParts[p], popt)
		if err == nil && popt.Plan != nil {
			s.router.planners[p].Observe(fp, popt.Plan.PredictedNS, res.TotalNS)
		}
		return partOut{res: res, err: err}
	})
	parts = make([]*core.Result, shard.Partitions)
	for p, o := range outs {
		if o.err != nil {
			// Lowest partition index wins: deterministic error selection.
			return nil, nil, fmt.Errorf("partition %d: %w", p, o.err)
		}
		parts[p] = o.res
	}
	merged = shard.MergeResults(parts)
	if !job.keep {
		parts = nil
	}
	return merged, parts, nil
}

// shardedPipeSource is one resolved pipeline input on the sharded path:
// the display name, the per-partition relations, and the router record
// for registered sources (nil for inline ones).
type shardedPipeSource struct {
	name  string
	sr    *shardedRel
	parts [shard.Partitions]rel.Relation
}

func (src *shardedPipeSource) tuples() int {
	n := 0
	for _, r := range src.parts {
		n += r.Len()
	}
	return n
}

// shardedPipeJob is a resolved sharded pipeline awaiting execution.
type shardedPipeJob struct {
	sources      []shardedPipeSource
	declared     bool
	materialized bool
	// keep retains the raw per-partition step results
	// (PipelineSpec.KeepPartitions); wFirst overrides the first step's
	// planning workload (PipelineSpec.FirstWorkload).
	keep   bool
	wFirst *plan.Workload
}

// resolveShardedPipeline pins the named sources' partition entries and
// splits the inline ones, mirroring resolvePipeline.
func (s *Service) resolveShardedPipeline(spec PipelineSpec) (resolvedSpec, error) {
	rs := resolvedSpec{opt: spec.Opt, auto: spec.Auto}
	if len(spec.Sources) < 2 {
		return rs, fmt.Errorf("%w (got %d)", ErrPipelineTooShort, len(spec.Sources))
	}
	pj := &shardedPipeJob{
		declared:     spec.DeclaredOrder,
		materialized: spec.Materialized,
		keep:         spec.KeepPartitions,
		wFirst:       spec.FirstWorkload,
	}
	for i, src := range spec.Sources {
		in := shardedPipeSource{name: src.Name}
		if src.Name != "" {
			sr, ents, err := s.router.acquire(src.Name)
			if err != nil {
				rs.release()
				rs.pins = nil
				return rs, fmt.Errorf("pipeline source %d: %w", i+1, err)
			}
			rs.pins = append(rs.pins, ents...)
			in.sr = sr
			for p, e := range ents {
				in.parts[p] = e.Relation()
			}
		} else {
			in.name = fmt.Sprintf("inline[%d]", i)
			in.parts = shard.Split(src.Rel)
		}
		pj.sources = append(pj.sources, in)
	}
	rs.shardpipe = pj
	return rs, nil
}

// partChain is one partition's executed left-deep chain.
type partChain struct {
	steps                    []*core.Result
	buildTuples, probeTuples []int
	// plans records the partition planner's decision per step (auto only):
	// nil for skipped empty-side steps and for steps the spiller re-ran.
	// Always the same length as steps.
	plans                   []*PlanInfo
	interTuples, interBytes int64
	peak                    int64
	// spillDepth is the deepest repartitioning level this chain's spiller
	// reached (0 when nothing spilled).
	spillDepth int
	err        error
}

// execShardedPipeline runs a resolved pipeline on the sharded path: the
// left-deep order is chosen ONCE from the full-relation statistics (every
// partition executes the same order), each partition then runs the whole
// chain independently over its slice of every source, and the per-step
// results merge across partitions in partition order. The chain
// decomposes exactly because every source is partitioned on the shared
// join key: step t of partition p only ever meets keys of partition p.
//
// Streamed and materialized modes mirror the unsharded accounting against
// the owning partition's shard catalog: streamed chains hold at most one
// transient intermediate per partition (reserved, freed before the next
// is reserved); materialized chains charge every intermediate's bytes
// plus its would-be statistics until the pipeline ends — without
// registering anything, so no shard catalog ever lists an intermediate.
// PeakIntermediateBytes sums the per-partition chain peaks: the chains
// execute concurrently, so their peaks are simultaneous in the worst
// case, and the sum is a pure function of the grid (shard-count
// invariant).
func (s *Service) execShardedPipeline(ctx context.Context, pj *shardedPipeJob, opt core.Options, auto bool) (*PipelineResult, error) {
	n := len(pj.sources)

	// Global order from the full-relation statistics; any inline source
	// means no statistics and declaration order, as on the unsharded path.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ordered := false
	if !pj.declared {
		rels := make([]plan.PipeRel, n)
		for i := range pj.sources {
			rels[i] = plan.PipeRel{Tuples: pj.sources[i].tuples()}
			if pj.sources[i].sr != nil {
				rels[i].HeavyShare = pj.sources[i].sr.heavyShare
			}
		}
		order, ordered = plan.OrderPipeline(rels, func(i, j int) (plan.Workload, bool) {
			bi, pi := pj.sources[i].sr, pj.sources[j].sr
			if bi == nil || pi == nil {
				return plan.Workload{}, false
			}
			return s.router.workload(bi, pi), true
		})
	}
	res := &PipelineResult{Order: order, Ordered: ordered, Streamed: !pj.materialized}

	// The first step's pair workload, when both inputs are registered:
	// per-partition planning fingerprints with the full-relation buckets,
	// like a registered pairwise join would. Later steps build from
	// intermediates and measure their partitions.
	wFirst := pj.wFirst
	if auto && wFirst == nil {
		if b, p0 := pj.sources[order[0]].sr, pj.sources[order[1]].sr; b != nil && p0 != nil {
			w := s.router.workload(b, p0)
			wFirst = &w
		}
	}

	chains := sched.Collect(s.pool, shard.Partitions, func(p int) *partChain {
		return s.runPartitionChain(ctx, pj, order, p, opt, auto, wFirst)
	})
	for p, c := range chains {
		if c.err != nil {
			// Lowest partition index wins: deterministic error selection.
			return nil, fmt.Errorf("partition %d: %w", p, c.err)
		}
	}

	// Merge per step across partitions, in partition order; labels and
	// tuple counts are global (full-relation) quantities. A step's PlanInfo
	// aggregates the per-partition planner decisions: representative
	// algo/scheme from the lowest non-nil partition (all partitions of one
	// step share a fingerprint shape, so they agree in practice), predicted
	// time summed in partition order, cache_hit only when every planned
	// partition hit. Spilled partitions plan their sub-steps internally and
	// contribute no PlanInfo; a step with no planned partition reports none.
	for t := 1; t < n; t++ {
		idx := t - 1
		parts := make([]*core.Result, shard.Partitions)
		buildT, probeT := 0, 0
		var pinfo *PlanInfo
		cacheHit := true
		for p, c := range chains {
			parts[p] = c.steps[idx]
			buildT += c.buildTuples[idx]
			probeT += c.probeTuples[idx]
			if pi := c.plans[idx]; pi != nil {
				if pinfo == nil {
					pinfo = &PlanInfo{Algo: pi.Algo, Scheme: pi.Scheme}
				}
				pinfo.PredictedNS += pi.PredictedNS
				cacheHit = cacheHit && pi.CacheHit
			}
		}
		if pinfo != nil {
			pinfo.CacheHit = cacheHit
		}
		merged := shard.MergeResults(parts)
		build := pj.sources[order[0]].name
		if t > 1 {
			build = fmt.Sprintf("step%d", t-1)
		}
		res.Steps = append(res.Steps, PipelineStep{
			Build:       build,
			Probe:       pj.sources[order[t]].name,
			BuildTuples: buildT,
			ProbeTuples: probeT,
			OutTuples:   merged.Matches,
			Result:      merged,
			Plan:        pinfo,
		})
		res.TotalNS += merged.TotalNS
		res.SpilledPartitions += merged.SpilledPartitions
		res.SpillBytes += merged.SpillBytes
		res.SpillNS += merged.SpillNS
		if t == n-1 {
			res.Final = merged
		}
	}
	for _, c := range chains {
		res.IntermediateTuples += c.interTuples
		res.IntermediateBytes += c.interBytes
		res.PeakIntermediateBytes += c.peak
		if c.spillDepth > res.SpillDepth {
			res.SpillDepth = c.spillDepth
		}
	}
	if pj.keep {
		pp := &PipelinePartitions{
			Steps:       make([][]*core.Result, n-1),
			BuildTuples: make([][]int, n-1),
			ProbeTuples: make([][]int, n-1),
			Plans:       make([][]*PlanInfo, n-1),
			Peak:        make([]int64, shard.Partitions),
			InterTuples: make([]int64, shard.Partitions),
			InterBytes:  make([]int64, shard.Partitions),
			SpillDepth:  make([]int, shard.Partitions),
		}
		for idx := 0; idx < n-1; idx++ {
			pp.Steps[idx] = make([]*core.Result, shard.Partitions)
			pp.BuildTuples[idx] = make([]int, shard.Partitions)
			pp.ProbeTuples[idx] = make([]int, shard.Partitions)
			pp.Plans[idx] = make([]*PlanInfo, shard.Partitions)
			for p, c := range chains {
				pp.Steps[idx][p] = c.steps[idx]
				pp.BuildTuples[idx][p] = c.buildTuples[idx]
				pp.ProbeTuples[idx][p] = c.probeTuples[idx]
				pp.Plans[idx][p] = c.plans[idx]
			}
		}
		for p, c := range chains {
			pp.Peak[p] = c.peak
			pp.InterTuples[p] = c.interTuples
			pp.InterBytes[p] = c.interBytes
			pp.SpillDepth[p] = c.spillDepth
		}
		res.Partitions = pp
	}
	return res, nil
}

// runPartitionChain executes the whole left-deep chain over partition p's
// slice of every source — the sharded sibling of execPipeline's loop,
// with reservations against the partition's owning shard catalog.
func (s *Service) runPartitionChain(ctx context.Context, pj *shardedPipeJob, order []int, p int, opt core.Options, auto bool, wFirst *plan.Workload) *partChain {
	c := &partChain{}
	cat := s.router.catalogOf(p)
	n := len(pj.sources)

	// reserved tracks every live reservation of this chain (returned on
	// exit — the last streamed intermediate, every materialized one, or
	// whatever an error orphaned); curTransient the reservation backing
	// the current streamed intermediate.
	var reserved, curTransient, resident int64
	defer func() { cat.Unreserve(reserved) }()
	charge := func(b int64) {
		resident += b
		if resident > c.peak {
			c.peak = resident
		}
	}

	cur := pj.sources[order[0]].parts[p]
	curName := pj.sources[order[0]].name
	for t := 1; t < n; t++ {
		probe := pj.sources[order[t]].parts[p]
		var stepRes *core.Result
		var pinfo *PlanInfo
		if cur.Len() == 0 || probe.Len() == 0 {
			// An empty side joins to nothing: skip planning and execution
			// for this partition's step (deterministic — emptiness depends
			// only on the keys and the fixed grid, never the shard count).
			// The zero-match intermediate still flows through the normal
			// hand-off below, producing an empty build side for the next
			// step.
			stepRes = emptyPartResult(opt)
		} else {
			stepOpt := opt
			var stepFP plan.Fingerprint
			if auto {
				var w *plan.Workload
				if t == 1 {
					w = wFirst
				}
				pl, fp, hit, err := s.router.planFor(ctx, p, cur, probe, stepOpt, w)
				if err != nil {
					c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): plan: %w", t, curName, pj.sources[order[t]].name, err)
					return c
				}
				stepOpt.Plan = pl
				stepFP = fp
				pinfo = &PlanInfo{
					Algo:        pl.Algo.String(),
					Scheme:      pl.Scheme.String(),
					CacheHit:    hit,
					PredictedNS: pl.PredictedNS,
				}
			}

			var err error
			stepRes, err = core.RunCtx(ctx, cur, probe, stepOpt)
			if err != nil {
				c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): %w", t, curName, pj.sources[order[t]].name, err)
				return c
			}
			if stepOpt.Plan != nil {
				s.router.planners[p].Observe(stepFP, stepOpt.Plan.PredictedNS, stepRes.TotalNS)
			}
		}
		c.steps = append(c.steps, stepRes)
		c.buildTuples = append(c.buildTuples, cur.Len())
		c.probeTuples = append(c.probeTuples, probe.Len())
		c.plans = append(c.plans, pinfo)
		if t == n-1 {
			break
		}
		if stepRes.Matches > math.MaxInt32 {
			c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): intermediate of %d tuples exceeds the representable relation size",
				t, curName, pj.sources[order[t]].name, stepRes.Matches)
			return c
		}

		if !pj.materialized {
			// Streamed hand-off, per partition: derive the per-key state,
			// free the previous transient, reserve the new intermediate
			// against the owning shard catalog, then produce.
			counts := rel.KeyCounts(cur)
			if curTransient > 0 {
				cat.Unreserve(curTransient)
				reserved -= curTransient
				resident -= curTransient
				curTransient = 0
			}
			bytes := stepRes.Matches * 8
			// Spill decision: against the partition's pure budget share
			// first (shard-count invariant), and only then against physical
			// space — which the threshold guarantees except under
			// concurrent overload, where the fallback still degrades
			// gracefully instead of failing.
			budget := s.router.partitionBudget(p)
			spill := bytes > budget
			if !spill {
				if err := cat.Reserve(bytes); err != nil {
					if !errors.Is(err, catalog.ErrNoSpace) {
						c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): intermediate of %d tuples: %w",
							t, curName, pj.sources[order[t]].name, stepRes.Matches, err)
						return c
					}
					spill = true
					if hr := cat.Headroom(); hr < budget {
						budget = hr
					}
				}
			}
			if spill {
				s.spillPartitionChain(ctx, c, pj, order, p, t, cur, opt, auto, budget, cat)
				return c
			}
			reserved += bytes
			inter := core.StreamMaterialize(opt.Pool, counts, probe)
			if int64(inter.Len()) != stepRes.Matches {
				c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): streamed %d tuples but the join counted %d — engine bug",
					t, curName, pj.sources[order[t]].name, inter.Len(), stepRes.Matches)
				return c
			}
			charge(bytes)
			c.interTuples += int64(inter.Len())
			c.interBytes += inter.Bytes()
			cur = inter
			curTransient = bytes
		} else {
			// Materialized mode: charge what the unsharded path charges —
			// relation bytes plus the would-be ingest statistics — held to
			// the pipeline's end, but never register the intermediate (a
			// sharded catalog lists only whole registered relations).
			bytes := stepRes.Matches*8 + catalog.StatBytes(int(stepRes.Matches))
			if err := cat.Reserve(bytes); err != nil {
				c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): intermediate of %d tuples: %w",
					t, curName, pj.sources[order[t]].name, stepRes.Matches, err)
				return c
			}
			reserved += bytes
			inter := rel.JoinMaterialize(cur, probe)
			if int64(inter.Len()) != stepRes.Matches {
				c.err = fmt.Errorf("pipeline step %d (%s ⋈ %s): materialized %d tuples but the join counted %d — engine bug",
					t, curName, pj.sources[order[t]].name, inter.Len(), stepRes.Matches)
				return c
			}
			charge(bytes)
			c.interTuples += int64(inter.Len())
			c.interBytes += inter.Bytes()
			cur = inter
		}
		curName = fmt.Sprintf("step%d", t)
	}
	return c
}
