package service

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"apujoin/internal/core"
	"apujoin/internal/oracle"
	"apujoin/internal/rel"
)

// registerPipelineRels registers a 3-relation workload and returns the
// identically generated inline copies for oracle checks.
func registerPipelineRels(t testing.TB, svc *Service) []rel.Relation {
	t.Helper()
	rg := rel.Gen{N: 20000, Seed: 21}
	sg := rel.Gen{N: 26000, Dist: rel.LowSkew, Seed: 22}
	ug := rel.Gen{N: 12000, Seed: 23}
	if _, err := svc.Catalog().RegisterGen("orders", rg); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().RegisterProbe("lineitem", "orders", sg, 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Catalog().RegisterProbe("returns", "orders", ug, 0.3); err != nil {
		t.Fatal(err)
	}
	r := rg.Build()
	return []rel.Relation{r, sg.Probe(r, 0.9), ug.Probe(r, 0.3)}
}

func pipelineSpec(auto bool) PipelineSpec {
	return PipelineSpec{
		Sources: []PipelineSource{{Name: "orders"}, {Name: "lineitem"}, {Name: "returns"}},
		Opt:     core.Options{Delta: 0.1, PilotItems: 1 << 10},
		Auto:    auto,
	}
}

// TestSubmitPipeline drives one pipeline query through the admission layer
// and checks the result surfaces: final matches against the oracle, the
// per-step snapshot with plan decisions, and the stats counters.
func TestSubmitPipeline(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 2})
	defer svc.Close()
	rels := registerPipelineRels(t, svc)

	q, err := svc.SubmitPipeline(context.Background(), pipelineSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.PipelineCount(rels); res.Matches != want {
		t.Errorf("matches %d, want oracle %d", res.Matches, want)
	}
	pr, ok := q.Pipeline()
	if !ok || pr.Final != res {
		t.Fatal("Pipeline() not available or final mismatched after Wait")
	}
	if !pr.Ordered || len(pr.Steps) != 2 {
		t.Errorf("ordered=%v steps=%d, want cost-ordered 2-step chain", pr.Ordered, len(pr.Steps))
	}

	info := q.Snapshot()
	if info.Pipeline == nil {
		t.Fatal("Info.Pipeline missing")
	}
	if info.Pipeline.Sources != 3 || len(info.Pipeline.Steps) != 2 {
		t.Errorf("snapshot pipeline = %+v", info.Pipeline)
	}
	var stepSum float64
	for i, st := range info.Pipeline.Steps {
		if st.Plan == nil {
			t.Errorf("step %d: missing per-step PlanInfo on an auto pipeline", i)
		}
		stepSum += st.SimulatedNS
	}
	if info.SimulatedNS != stepSum || info.SimulatedNS != pr.TotalNS {
		t.Errorf("SimulatedNS %.0f != step sum %.0f / TotalNS %.0f", info.SimulatedNS, stepSum, pr.TotalNS)
	}

	st := svc.Stats()
	if st.Pipelines != 1 || st.PipelineSteps != 2 {
		t.Errorf("stats pipelines=%d steps=%d, want 1/2", st.Pipelines, st.PipelineSteps)
	}
	if st.IntermediateTuples != pr.IntermediateTuples || st.IntermediateTuples <= 0 {
		t.Errorf("stats intermediate tuples %d, want %d > 0", st.IntermediateTuples, pr.IntermediateTuples)
	}
	if st.AutoPlanned != 1 {
		t.Errorf("stats auto planned %d, want 1", st.AutoPlanned)
	}
	if st.Matches != res.Matches {
		t.Errorf("stats matches %d, want %d", st.Matches, res.Matches)
	}
	if st.SimulatedNS != pr.TotalNS {
		t.Errorf("stats simulated %.0f, want %.0f", st.SimulatedNS, pr.TotalNS)
	}
	// The pipeline released its intermediates: residency is back to the
	// three registered relations.
	var relBytes int64
	for _, r := range rels {
		relBytes += r.Bytes()
	}
	if st.Catalog.Bytes != relBytes {
		t.Errorf("catalog bytes %d after pipeline, want %d", st.Catalog.Bytes, relBytes)
	}
	if st.Catalog.Relations != 3 {
		t.Errorf("catalog relations %d, want 3 (no intermediate lingers)", st.Catalog.Relations)
	}
}

// TestPipelineStatsPerMode drives one streamed (default) and one
// materialized pipeline through the admission layer and checks the mode
// surfaces: the streamed counter, the per-mode peak-footprint stats, the
// strict streamed < materialized ordering on this shape, the catalog's
// lifetime high-water mark, and that both modes leave the residency budget
// back at the registered relations.
func TestPipelineStatsPerMode(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 1})
	defer svc.Close()
	rels := registerPipelineRels(t, svc)
	var relBytes int64
	for _, r := range rels {
		relBytes += r.Bytes()
	}

	peaks := make(map[bool]int64)
	for _, materialized := range []bool{false, true} {
		spec := pipelineSpec(false)
		spec.Materialized = materialized
		q, err := svc.SubmitPipeline(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		pr, ok := q.Pipeline()
		if !ok {
			t.Fatal("no pipeline result")
		}
		if pr.Streamed == materialized {
			t.Errorf("materialized=%v: Streamed=%v", materialized, pr.Streamed)
		}
		if pr.PeakIntermediateBytes <= 0 {
			t.Errorf("materialized=%v: peak %d, want > 0", materialized, pr.PeakIntermediateBytes)
		}
		if info := q.Snapshot(); info.Pipeline == nil ||
			info.Pipeline.Streamed == materialized ||
			info.Pipeline.PeakIntermediateBytes != pr.PeakIntermediateBytes {
			t.Errorf("materialized=%v: snapshot pipeline = %+v", materialized, info.Pipeline)
		}
		peaks[materialized] = pr.PeakIntermediateBytes
	}
	if peaks[false] >= peaks[true] {
		t.Errorf("streamed peak %d not strictly below materialized peak %d", peaks[false], peaks[true])
	}

	st := svc.Stats()
	if st.Pipelines != 2 || st.StreamedPipelines != 1 {
		t.Errorf("stats pipelines=%d streamed=%d, want 2/1", st.Pipelines, st.StreamedPipelines)
	}
	if st.PeakIntermediateBytesStreamed != peaks[false] {
		t.Errorf("stats streamed peak %d, want %d", st.PeakIntermediateBytesStreamed, peaks[false])
	}
	if st.PeakIntermediateBytesMaterialized != peaks[true] {
		t.Errorf("stats materialized peak %d, want %d", st.PeakIntermediateBytesMaterialized, peaks[true])
	}
	// Both pipelines drained their budget charges, and the catalog's
	// lifetime high-water mark recorded them: at least the relations plus
	// the streamed reservation, and never more than capacity.
	if st.Catalog.Bytes != relBytes {
		t.Errorf("catalog bytes %d after pipelines, want %d", st.Catalog.Bytes, relBytes)
	}
	if st.Catalog.PeakBytes < relBytes+peaks[false] || st.Catalog.PeakBytes > st.Catalog.Capacity {
		t.Errorf("catalog peak %d, want within [%d, %d]", st.Catalog.PeakBytes, relBytes+peaks[false], st.Catalog.Capacity)
	}
}

// normalizeCacheHits returns a deep-enough copy of pr with every per-step
// CacheHit cleared: whether a step's plan came from the cache depends on
// what ran before, is allowed to vary, and changes nothing else — the
// remaining fields must be bit-identical.
func normalizeCacheHits(pr *PipelineResult) *PipelineResult {
	cp := *pr
	cp.Steps = append([]PipelineStep(nil), pr.Steps...)
	for i := range cp.Steps {
		if cp.Steps[i].Plan != nil {
			pl := *cp.Steps[i].Plan
			pl.CacheHit = false
			cp.Steps[i].Plan = &pl
		}
	}
	return &cp
}

// TestConcurrentPipelinesInvariance extends the service determinism
// contract to pipelines: a pipeline is bit-identical whether it runs alone
// synchronously, interleaved with other pipelines and plain queries, or
// serially afterwards. Under -race this also proves pipeline execution —
// including catalog-mediated intermediates — is data-race free.
func TestConcurrentPipelinesInvariance(t *testing.T) {
	svc := New(Options{Workers: 4, MaxConcurrent: 4, MaxQueue: 16})
	defer svc.Close()
	registerPipelineRels(t, svc)

	// Reference: synchronous, outside the admission layer.
	refRun, err := svc.RunPipeline(context.Background(), pipelineSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	ref := normalizeCacheHits(refRun)

	const lanes = 4
	queries := make([]*Query, lanes)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, err := svc.SubmitPipeline(context.Background(), pipelineSpec(true))
			if err != nil {
				t.Errorf("lane %d: %v", i, err)
				return
			}
			queries[i] = q
		}(i)
	}
	// A plain query interleaves with the pipelines on the same pool.
	r := rel.Gen{N: 10000, Seed: 31}.Build()
	s := rel.Gen{N: 10000, Seed: 32}.Probe(r, 1.0)
	plain, err := svc.Submit(context.Background(), r, s, core.Options{Delta: 0.1, PilotItems: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, q := range queries {
		if q == nil {
			t.Fatal("lane lost its query")
		}
		if _, err := q.Wait(context.Background()); err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		pr, ok := q.Pipeline()
		if !ok {
			t.Fatalf("lane %d: no pipeline result", i)
		}
		if !reflect.DeepEqual(ref, normalizeCacheHits(pr)) {
			t.Errorf("lane %d: interleaved PipelineResult differs from the synchronous reference", i)
		}
	}
	if res, err := plain.Wait(context.Background()); err != nil || res.Matches != rel.NaiveJoinCount(r, s) {
		t.Errorf("interleaved plain query: res %v err %v", res, err)
	}

	// Serial afterwards, same (now warm) service.
	q, err := svc.SubmitPipeline(context.Background(), pipelineSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if pr, _ := q.Pipeline(); !reflect.DeepEqual(ref, normalizeCacheHits(pr)) {
		t.Error("serial-after PipelineResult differs from the synchronous reference")
	}
}

// TestPipelineAdmission: pipeline submissions respect the bounded queue
// all-or-nothing — a rejected pipeline releases every source pin — and a
// queued pipeline can be cancelled before it runs, releasing its pins too.
func TestPipelineAdmission(t *testing.T) {
	svc := New(Options{Workers: 2, MaxConcurrent: 1, MaxQueue: 2})
	defer svc.Close()
	registerPipelineRels(t, svc)

	// holder is big enough to still be running while the rest submit.
	r1 := rel.Gen{N: 1 << 17, Seed: 41}.Build()
	s1 := rel.Gen{N: 1 << 17, Seed: 42}.Probe(r1, 1.0)
	holder, err := svc.Submit(context.Background(), r1, s1,
		core.Options{Algo: core.PHJ, Scheme: core.PL, Delta: 0.1, PilotItems: 4096})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for holder.State() == Queued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Two queued pipelines fill the queue; a third is rejected whole.
	queued1, err := svc.SubmitPipeline(context.Background(), pipelineSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	queued2, err := svc.SubmitPipeline(context.Background(), pipelineSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitPipeline(context.Background(), pipelineSpec(false)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow pipeline: err %v, want ErrQueueFull", err)
	}
	if got := svc.Stats().Rejected; got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}

	// Cancel one pipeline while it waits for admission.
	queued2.Cancel()
	if _, err := queued2.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queued pipeline: err %v, want context.Canceled", err)
	}
	if _, ok := queued2.Pipeline(); ok {
		t.Error("cancelled pipeline reports a pipeline result")
	}

	if _, err := holder.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := queued1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Rejection, cancellation and completion all released their pins.
	waitForZeroPins(t, svc)
}

// waitForZeroPins waits for every catalog entry's pin count to drain.
func waitForZeroPins(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		pins := 0
		for _, info := range svc.Catalog().List() {
			pins += info.Pins
		}
		if pins == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Error("catalog pins did not drain")
}

// TestPipelineCloseNoGoroutineLeaks mirrors TestServiceCloseNoGoroutineLeaks
// with pipelines in flight through the admission layer.
func TestPipelineCloseNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Options{Workers: 4, MaxConcurrent: 2, MaxQueue: 8})
	registerPipelineRels(t, svc)
	for i := 0; i < 4; i++ {
		if _, err := svc.SubmitPipeline(context.Background(), pipelineSpec(i%2 == 0)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d, want <= %d", g, before)
	}
	if _, err := svc.SubmitPipeline(context.Background(), pipelineSpec(false)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err %v, want ErrClosed", err)
	}
}
