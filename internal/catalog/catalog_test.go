package catalog

import (
	"errors"
	"testing"

	"apujoin/internal/plan"
	"apujoin/internal/rel"
)

// TestWorkloadMatchesInlineMeasurement is the statistics contract: the
// buckets the catalog assembles from its ingest-time sample and key index
// must equal plan.MeasureWorkload on the raw relations, for every workload
// class — otherwise catalog-referenced and inline queries would
// fingerprint into different plan-cache slots.
func TestWorkloadMatchesInlineMeasurement(t *testing.T) {
	cases := []struct {
		name string
		dist rel.Distribution
		sel  float64
	}{
		{"uniform-sel1", rel.Uniform, 1.0},
		{"uniform-sel05", rel.Uniform, 0.5},
		{"low-skew", rel.LowSkew, 1.0},
		{"high-skew-sel02", rel.HighSkew, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(0)
			g := rel.Gen{N: 1 << 15, Seed: 7}
			if _, err := c.RegisterGen("r", g); err != nil {
				t.Fatal(err)
			}
			pg := rel.Gen{N: 1 << 15, Dist: tc.dist, Seed: 8}
			if _, err := c.RegisterProbe("s", "r", pg, tc.sel); err != nil {
				t.Fatal(err)
			}
			re, err := c.Acquire("r")
			if err != nil {
				t.Fatal(err)
			}
			defer re.Release()
			se, err := c.Acquire("s")
			if err != nil {
				t.Fatal(err)
			}
			defer se.Release()

			got := c.Workload(re, se)
			want := plan.MeasureWorkload(re.Relation(), se.Relation())
			if got != want {
				t.Errorf("catalog workload %+v != inline measurement %+v", got, want)
			}
			// And the probe itself must be bit-identical to inline generation.
			inline := pg.Probe(re.Relation(), tc.sel)
			sr := se.Relation()
			if len(inline.Keys) != len(sr.Keys) {
				t.Fatalf("probe length %d != inline %d", len(sr.Keys), len(inline.Keys))
			}
			for i := range inline.Keys {
				if inline.Keys[i] != sr.Keys[i] || inline.RIDs[i] != sr.RIDs[i] {
					t.Fatalf("probe tuple %d differs from inline generation", i)
				}
			}
			// The memoized second lookup counts as a reuse.
			if again := c.Workload(re, se); again != got {
				t.Errorf("memoized workload %+v != first %+v", again, got)
			}
			if st := c.Stats(); st.WorkloadReuses != 1 {
				t.Errorf("workload reuses = %d, want 1", st.WorkloadReuses)
			}
		})
	}
}

func TestRegisterLookupDrop(t *testing.T) {
	c := New(0)
	info, err := c.RegisterGen("orders", rel.Gen{N: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 1024 || info.Bytes != 1024*8 || info.Source != Generated {
		t.Errorf("unexpected info: %+v", info)
	}
	if _, err := c.RegisterGen("orders", rel.Gen{N: 16, Seed: 2}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register: err %v, want ErrExists", err)
	}
	if _, err := c.RegisterProbe("x", "missing", rel.Gen{N: 16}, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("probe of missing build: err %v, want ErrNotFound", err)
	}

	loaded := rel.Gen{N: 512, Seed: 3}.Build()
	if _, err := c.Load("lineitem", loaded); err != nil {
		t.Fatal(err)
	}
	list := c.List()
	if len(list) != 2 || list[0].Name != "lineitem" || list[1].Name != "orders" {
		t.Fatalf("list = %+v, want [lineitem orders]", list)
	}
	if st := c.Stats(); st.Relations != 2 || st.Bytes != (1024+512)*8 {
		t.Errorf("stats = %+v", st)
	}

	if _, err := c.Drop("orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("orders"); !errors.Is(err, ErrNotFound) {
		t.Errorf("acquire after drop: err %v, want ErrNotFound", err)
	}
	if st := c.Stats(); st.Relations != 1 || st.Bytes != 512*8 {
		t.Errorf("stats after drop = %+v, want bytes freed", st)
	}
	if _, err := c.Drop("orders"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: err %v, want ErrNotFound", err)
	}
}

// TestDropWhilePinned: the name unbinds immediately but the resident bytes
// survive until the pin is released.
func TestDropWhilePinned(t *testing.T) {
	c := New(0)
	if _, err := c.RegisterGen("r", rel.Gen{N: 1024, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Acquire("r")
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Drop("r")
	if err != nil {
		t.Fatal(err)
	}
	if info.Pins != 1 {
		t.Errorf("drop info pins = %d, want 1", info.Pins)
	}
	if st := c.Stats(); st.Bytes != 1024*8 {
		t.Errorf("bytes %d freed before last pin released", st.Bytes)
	}
	// The pinned entry still serves its data.
	if e.Relation().Len() != 1024 {
		t.Errorf("pinned relation lost its data")
	}
	e.Release()
	if st := c.Stats(); st.Bytes != 0 {
		t.Errorf("bytes %d not freed after last release", st.Bytes)
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := New(1024 * 8)
	if _, err := c.RegisterGen("fits", rel.Gen{N: 1024, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterGen("overflow", rel.Gen{N: 1, Seed: 2}); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overflow register: err %v, want ErrNoSpace", err)
	}
	if _, err := c.Drop("fits"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterGen("overflow", rel.Gen{N: 1, Seed: 2}); err != nil {
		t.Errorf("register after drop freed space: %v", err)
	}
}

// TestReserveAccounting: transient pipeline reservations share the budget
// with registered relations — Fits and Reserve agree, overflow is
// ErrNoSpace, Unreserve returns the bytes — and the PeakBytes high-water
// mark records the worst simultaneous residency either path reached.
func TestReserveAccounting(t *testing.T) {
	c := New(1024 * 8)
	if _, err := c.RegisterGen("half", rel.Gen{N: 512, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !c.Fits(512 * 8) {
		t.Error("Fits rejected a reservation exactly at capacity")
	}
	if c.Fits(512*8 + 1) {
		t.Error("Fits accepted a reservation beyond capacity")
	}
	if err := c.Reserve(512 * 8); err != nil {
		t.Fatalf("reserve to capacity: %v", err)
	}
	if err := c.Reserve(8); !errors.Is(err, ErrNoSpace) {
		t.Errorf("reserve beyond capacity: err %v, want ErrNoSpace", err)
	}
	if err := c.Reserve(-1); err == nil {
		t.Error("negative reservation accepted")
	}
	c.Unreserve(512 * 8)
	st := c.Stats()
	if st.Bytes != 512*8 {
		t.Errorf("bytes %d after unreserve, want %d", st.Bytes, 512*8)
	}
	if st.PeakBytes != 1024*8 {
		t.Errorf("peak %d, want the full-capacity high-water %d", st.PeakBytes, 1024*8)
	}
	// Unreserve of nothing is a no-op; the peak never decreases.
	c.Unreserve(0)
	if st := c.Stats(); st.PeakBytes != 1024*8 {
		t.Errorf("peak moved to %d on a no-op", st.PeakBytes)
	}
}

// TestStatBytes pins the statistics-footprint model to the catalog's
// actual ingest arithmetic: one int32 per indexed tuple plus one per
// KeySample position (stride = n/plan.WorkloadSample, floored to 1).
func TestStatBytes(t *testing.T) {
	if got := StatBytes(0); got != 0 {
		t.Errorf("StatBytes(0) = %d", got)
	}
	for _, n := range []int{1, 100, plan.WorkloadSample, plan.WorkloadSample + 1, 3*plan.WorkloadSample + 7} {
		want := int64(n)*4 + int64(len(rel.Gen{N: n, Seed: 9}.Build().KeySample(plan.WorkloadSample)))*4
		if got := StatBytes(n); got != want {
			t.Errorf("StatBytes(%d) = %d, want %d (index + sample)", n, got, want)
		}
	}
}

// TestEntryAccessors: the pinned-entry accessors surface the ingest-time
// measurements, and Get/Relation resolve without pinning.
func TestEntryAccessors(t *testing.T) {
	c := New(0)
	if _, err := c.RegisterGen("base", rel.Gen{N: 4096, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Build keys are a permutation (uniform by construction); skew lives in
	// probe relations, so the skewed entry is a high-skew probe.
	if _, err := c.RegisterProbe("skewed", "base", rel.Gen{N: 4096, Dist: rel.HighSkew, Seed: 2}, 1.0); err != nil {
		t.Fatal(err)
	}
	e, err := c.Acquire("skewed")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()
	if e.Name() != "skewed" {
		t.Errorf("Name() = %q", e.Name())
	}
	if e.SkewBucket() <= 0 || e.HeavyShare() <= 0 {
		t.Errorf("high-skew ingest measured bucket %d share %f", e.SkewBucket(), e.HeavyShare())
	}
	info, ok := c.Get("skewed")
	if !ok || info.Tuples != 4096 || info.SkewBucket != e.SkewBucket() {
		t.Errorf("Get: ok=%v info=%+v", ok, info)
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("Get resolved an absent name")
	}
	if r, ok := c.Relation("skewed"); !ok || r.Len() != 4096 {
		t.Errorf("Relation: ok=%v len=%d", ok, r.Len())
	}
	if _, ok := c.Relation("absent"); ok {
		t.Error("Relation resolved an absent name")
	}
}

func TestLoadValidates(t *testing.T) {
	c := New(0)
	bad := rel.Relation{RIDs: []int32{0, 1}, Keys: []int32{5}}
	if _, err := c.Load("bad", bad); err == nil {
		t.Error("loading a column-length-mismatched relation succeeded")
	}
	if _, err := c.Load("", rel.Relation{}); err == nil {
		t.Error("loading under an empty name succeeded")
	}
}
