package catalog

import (
	"errors"
	"testing"

	"apujoin/internal/plan"
	"apujoin/internal/rel"
)

// TestWorkloadMatchesInlineMeasurement is the statistics contract: the
// buckets the catalog assembles from its ingest-time sample and key index
// must equal plan.MeasureWorkload on the raw relations, for every workload
// class — otherwise catalog-referenced and inline queries would
// fingerprint into different plan-cache slots.
func TestWorkloadMatchesInlineMeasurement(t *testing.T) {
	cases := []struct {
		name string
		dist rel.Distribution
		sel  float64
	}{
		{"uniform-sel1", rel.Uniform, 1.0},
		{"uniform-sel05", rel.Uniform, 0.5},
		{"low-skew", rel.LowSkew, 1.0},
		{"high-skew-sel02", rel.HighSkew, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(0)
			g := rel.Gen{N: 1 << 15, Seed: 7}
			if _, err := c.RegisterGen("r", g); err != nil {
				t.Fatal(err)
			}
			pg := rel.Gen{N: 1 << 15, Dist: tc.dist, Seed: 8}
			if _, err := c.RegisterProbe("s", "r", pg, tc.sel); err != nil {
				t.Fatal(err)
			}
			re, err := c.Acquire("r")
			if err != nil {
				t.Fatal(err)
			}
			defer re.Release()
			se, err := c.Acquire("s")
			if err != nil {
				t.Fatal(err)
			}
			defer se.Release()

			got := c.Workload(re, se)
			want := plan.MeasureWorkload(re.Relation(), se.Relation())
			if got != want {
				t.Errorf("catalog workload %+v != inline measurement %+v", got, want)
			}
			// And the probe itself must be bit-identical to inline generation.
			inline := pg.Probe(re.Relation(), tc.sel)
			sr := se.Relation()
			if len(inline.Keys) != len(sr.Keys) {
				t.Fatalf("probe length %d != inline %d", len(sr.Keys), len(inline.Keys))
			}
			for i := range inline.Keys {
				if inline.Keys[i] != sr.Keys[i] || inline.RIDs[i] != sr.RIDs[i] {
					t.Fatalf("probe tuple %d differs from inline generation", i)
				}
			}
			// The memoized second lookup counts as a reuse.
			if again := c.Workload(re, se); again != got {
				t.Errorf("memoized workload %+v != first %+v", again, got)
			}
			if st := c.Stats(); st.WorkloadReuses != 1 {
				t.Errorf("workload reuses = %d, want 1", st.WorkloadReuses)
			}
		})
	}
}

func TestRegisterLookupDrop(t *testing.T) {
	c := New(0)
	info, err := c.RegisterGen("orders", rel.Gen{N: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 1024 || info.Bytes != 1024*8 || info.Source != Generated {
		t.Errorf("unexpected info: %+v", info)
	}
	if _, err := c.RegisterGen("orders", rel.Gen{N: 16, Seed: 2}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register: err %v, want ErrExists", err)
	}
	if _, err := c.RegisterProbe("x", "missing", rel.Gen{N: 16}, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("probe of missing build: err %v, want ErrNotFound", err)
	}

	loaded := rel.Gen{N: 512, Seed: 3}.Build()
	if _, err := c.Load("lineitem", loaded); err != nil {
		t.Fatal(err)
	}
	list := c.List()
	if len(list) != 2 || list[0].Name != "lineitem" || list[1].Name != "orders" {
		t.Fatalf("list = %+v, want [lineitem orders]", list)
	}
	if st := c.Stats(); st.Relations != 2 || st.Bytes != (1024+512)*8 {
		t.Errorf("stats = %+v", st)
	}

	if _, err := c.Drop("orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("orders"); !errors.Is(err, ErrNotFound) {
		t.Errorf("acquire after drop: err %v, want ErrNotFound", err)
	}
	if st := c.Stats(); st.Relations != 1 || st.Bytes != 512*8 {
		t.Errorf("stats after drop = %+v, want bytes freed", st)
	}
	if _, err := c.Drop("orders"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: err %v, want ErrNotFound", err)
	}
}

// TestDropWhilePinned: the name unbinds immediately but the resident bytes
// survive until the pin is released.
func TestDropWhilePinned(t *testing.T) {
	c := New(0)
	if _, err := c.RegisterGen("r", rel.Gen{N: 1024, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := c.Acquire("r")
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Drop("r")
	if err != nil {
		t.Fatal(err)
	}
	if info.Pins != 1 {
		t.Errorf("drop info pins = %d, want 1", info.Pins)
	}
	if st := c.Stats(); st.Bytes != 1024*8 {
		t.Errorf("bytes %d freed before last pin released", st.Bytes)
	}
	// The pinned entry still serves its data.
	if e.Relation().Len() != 1024 {
		t.Errorf("pinned relation lost its data")
	}
	e.Release()
	if st := c.Stats(); st.Bytes != 0 {
		t.Errorf("bytes %d not freed after last release", st.Bytes)
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := New(1024 * 8)
	if _, err := c.RegisterGen("fits", rel.Gen{N: 1024, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterGen("overflow", rel.Gen{N: 1, Seed: 2}); !errors.Is(err, ErrNoSpace) {
		t.Errorf("overflow register: err %v, want ErrNoSpace", err)
	}
	if _, err := c.Drop("fits"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterGen("overflow", rel.Gen{N: 1, Seed: 2}); err != nil {
		t.Errorf("register after drop freed space: %v", err)
	}
}

func TestLoadValidates(t *testing.T) {
	c := New(0)
	bad := rel.Relation{RIDs: []int32{0, 1}, Keys: []int32{5}}
	if _, err := c.Load("bad", bad); err == nil {
		t.Error("loading a column-length-mismatched relation succeeded")
	}
	if _, err := c.Load("", rel.Relation{}); err == nil {
		t.Error("loading under an empty name succeeded")
	}
}
