// Package catalog is the relation catalog of the engine and service
// layers: relations are registered once — generated from a spec or
// bulk-loaded — charged against a resident zero-copy buffer (the paper's
// schemes assume the relations already live in the region both devices
// address, Sec. 4), measured for their workload statistics at ingest, and
// referenced by name from any number of queries afterwards.
//
// Ingest measures what the planner's fingerprint would otherwise measure
// per query: a strided key sample, its heavy-hitter (skew) bucket, and a
// sorted key index for O(log n) membership. Catalog.Workload folds the
// probe's stored sample against the build's stored index, so a
// catalog-referenced auto query fingerprints without reading either
// relation — and lands in the same plan-cache slot as the identical
// inline query, because the sampling arithmetic is shared (plan.
// WorkloadSample, rel.Relation.KeySample).
//
// Deletion is refcounted: Drop unbinds the name immediately (no new query
// can resolve it) while in-flight queries keep their pins; the zero-copy
// bytes are released when the last pin drains.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"apujoin/internal/mem"
	"apujoin/internal/plan"
	"apujoin/internal/rel"
)

// Registration and lookup errors. HTTP layers map ErrNotFound to 404,
// ErrExists to 409 and ErrNoSpace to 507.
var (
	ErrExists   = errors.New("catalog: relation already registered")
	ErrNotFound = errors.New("catalog: no such relation")
	ErrNoSpace  = errors.New("catalog: relation does not fit the resident zero-copy buffer")
)

// Source identifies how a relation entered the catalog.
type Source string

const (
	// Generated relations come from a rel.Gen build spec.
	Generated Source = "generated"
	// Probe relations were generated against a registered build relation
	// with a target selectivity.
	Probe Source = "probe"
	// Loaded relations were bulk-loaded by the caller.
	Loaded Source = "loaded"
)

// Entry is one resident relation. Entries are immutable after
// registration; only the pin count and drop flag change, both guarded by
// the owning catalog's mutex.
type Entry struct {
	c   *Catalog
	rel rel.Relation

	name    string
	source  Source
	created time.Time

	// Generation provenance (Generated and Probe sources).
	gen     rel.Gen
	probeOf string
	sel     float64

	// Ingest-time statistics: the strided key sample, its skew bucket and
	// heavy-hitter share, and the sorted key index for membership tests.
	sample     []int32
	index      rel.KeyIndex
	skewBucket int
	heavyShare float64

	// Mutable, guarded by c.mu.
	pins    int
	dropped bool
	joins   int64
}

// Name returns the registered name.
func (e *Entry) Name() string { return e.name }

// Relation returns the resident relation. The columns are shared, not
// copied; callers must treat them as read-only.
func (e *Entry) Relation() rel.Relation { return e.rel }

// SkewBucket returns the ingest-time skew bucket (0 uniform, 1 ≈ s=10,
// 2 ≈ s=25), identical to what plan.MeasureWorkload would classify.
func (e *Entry) SkewBucket() int { return e.skewBucket }

// HeavyShare returns the heaviest key's share of the ingest-time sample —
// the raw number behind SkewBucket, which the pipeline orderer uses to
// estimate heavy-key collision blowup between two skewed relations.
func (e *Entry) HeavyShare() float64 { return e.heavyShare }

// Release drops one pin taken by Catalog.Acquire. When the entry was
// dropped and this was the last pin, the resident zero-copy bytes are
// released. Release is safe to call from query-completion paths running
// concurrently with Drop.
func (e *Entry) Release() {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	if e.pins > 0 {
		e.pins--
	}
	if e.dropped && e.pins == 0 {
		e.c.zc.Free(e.rel.Bytes())
		e.dropped = false // free exactly once
	}
}

// Info is the JSON-friendly snapshot of one catalog entry.
type Info struct {
	Name   string `json:"name"`
	Tuples int    `json:"tuples"`
	Bytes  int64  `json:"bytes"`
	Source Source `json:"source"`

	// Generation provenance, when the catalog built the data itself.
	Dist        string  `json:"dist,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	KeyRange    int     `json:"key_range,omitempty"`
	ProbeOf     string  `json:"probe_of,omitempty"`
	Selectivity float64 `json:"selectivity,omitempty"`

	// Ingest-time statistics the planner fingerprints reuse.
	SkewBucket int     `json:"skew_bucket"`
	HeavyShare float64 `json:"heavy_share"`

	// Pins counts in-flight queries referencing the relation; Joins counts
	// every acquisition over the entry's lifetime.
	Pins  int   `json:"pins"`
	Joins int64 `json:"joins"`

	Created time.Time `json:"created"`
}

func (e *Entry) infoLocked() Info {
	info := Info{
		Name:       e.name,
		Tuples:     e.rel.Len(),
		Bytes:      e.rel.Bytes(),
		Source:     e.source,
		SkewBucket: e.skewBucket,
		HeavyShare: e.heavyShare,
		Pins:       e.pins,
		Joins:      e.joins,
		Created:    e.created,
	}
	if e.source != Loaded {
		info.Dist = e.gen.Dist.String()
		info.Seed = e.gen.Seed
		info.KeyRange = e.gen.KeyRange
	}
	if e.source == Probe {
		info.ProbeOf = e.probeOf
		info.Selectivity = e.sel
	}
	return info
}

// Stats is the catalog's metrics surface.
type Stats struct {
	Relations int   `json:"relations"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity_bytes"`

	// PeakBytes is the high-water mark of the resident zero-copy buffer
	// over the catalog's lifetime — registered relations plus transient
	// pipeline reservations. It is what a real coupled-architecture
	// deployment would have to provision.
	PeakBytes int64 `json:"peak_bytes"`

	Registered int64 `json:"registered"`
	Dropped    int64 `json:"dropped"`
	// WorkloadReuses counts pair-workload lookups served from the
	// ingest-time statistics without re-measuring either relation.
	WorkloadReuses int64 `json:"workload_reuses"`
}

// pairKey identifies a memoized (build, probe) workload.
type pairKey struct{ r, s string }

// Catalog is a named set of resident relations, safe for concurrent use.
type Catalog struct {
	mu sync.Mutex
	// zc accounts the resident relations against the zero-copy capacity;
	// queries still run their own per-run footprint accounting (the
	// transient join structures), see DESIGN.md.
	zc        *mem.ZeroCopy
	entries   map[string]*Entry
	workloads map[pairKey]plan.Workload

	registered, dropped, reuses int64
	peakBytes                   int64
}

// DefaultCapacity is the zero-copy capacity New selects when none is
// configured: the A8-3870K's 512 MB device-addressable region. Exported so
// the sharded service can split the same default across per-shard budgets.
const DefaultCapacity int64 = 512 << 20

// New returns an empty catalog whose resident relations may occupy up to
// capacityBytes of zero-copy space; capacity <= 0 selects DefaultCapacity.
func New(capacityBytes int64) *Catalog {
	zc := mem.NewZeroCopy()
	if capacityBytes > 0 {
		zc.Capacity = capacityBytes
	}
	return &Catalog{
		zc:        zc,
		entries:   make(map[string]*Entry),
		workloads: make(map[pairKey]plan.Workload),
	}
}

// RegisterGen generates and registers a build relation from a spec (keys a
// permutation of [1, KeyRange] — the primary-key side of a join).
func (c *Catalog) RegisterGen(name string, g rel.Gen) (Info, error) {
	if err := c.precheck(name, g.N); err != nil {
		return Info{}, err
	}
	e := &Entry{name: name, source: Generated, gen: g, rel: g.Build()}
	return c.insert(e)
}

// RegisterProbe generates and registers a probe relation against the
// registered build relation of — the fraction selectivity of its tuples
// carry a key present in the build side. The generation is exactly
// g.Probe(build, selectivity), so a catalog probe is bit-identical to the
// inline generation with the same spec.
func (c *Catalog) RegisterProbe(name, of string, g rel.Gen, selectivity float64) (Info, error) {
	if err := c.precheck(name, g.N); err != nil {
		return Info{}, err
	}
	if selectivity < 0 || selectivity > 1 {
		return Info{}, fmt.Errorf("catalog: selectivity %v out of [0,1]", selectivity)
	}
	build, err := c.Acquire(of)
	if err != nil {
		return Info{}, fmt.Errorf("catalog: probe_of %q: %w", of, err)
	}
	defer build.Release()
	e := &Entry{
		name: name, source: Probe, gen: g, probeOf: of, sel: selectivity,
		rel: g.Probe(build.Relation(), selectivity),
	}
	return c.insert(e)
}

// Load registers an existing relation (bulk load). The columns are
// retained, not copied; the caller must not mutate them afterwards.
func (c *Catalog) Load(name string, r rel.Relation) (Info, error) {
	if err := c.precheck(name, r.Len()); err != nil {
		return Info{}, err
	}
	if err := r.Validate(); err != nil {
		return Info{}, fmt.Errorf("catalog: %w", err)
	}
	e := &Entry{name: name, source: Loaded, rel: r}
	return c.insert(e)
}

// precheck fails fast on an obviously invalid registration before the
// generation or measurement work; insert re-checks under the lock.
func (c *Catalog) precheck(name string, n int) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if n < 0 {
		return fmt.Errorf("catalog: negative relation size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if !c.zc.Fits(int64(n) * 8) {
		return fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrNoSpace, name, int64(n)*8, c.zc.Used(), c.zc.Capacity)
	}
	return nil
}

// insert measures the ingest-time statistics and publishes the entry.
func (c *Catalog) insert(e *Entry) (Info, error) {
	// Measurement runs outside the lock: sampling is cheap but the key
	// index sort is O(n log n).
	e.sample = e.rel.KeySample(plan.WorkloadSample)
	e.index = e.rel.Index()
	e.skewBucket = plan.SkewBucketOf(e.sample)
	e.heavyShare = heavyShare(e.sample)
	//apulint:ignore wallclock(registration wall-time is reporting metadata surfaced in Info; it never enters a simulated quantity)
	e.created = time.Now()
	e.c = c

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[e.name]; ok {
		return Info{}, fmt.Errorf("%w: %q", ErrExists, e.name)
	}
	if err := c.zc.Alloc(e.rel.Bytes()); err != nil {
		return Info{}, fmt.Errorf("%w: %q needs %d bytes, %d of %d in use",
			ErrNoSpace, e.name, e.rel.Bytes(), c.zc.Used(), c.zc.Capacity)
	}
	c.entries[e.name] = e
	c.registered++
	if c.zc.Used() > c.peakBytes {
		c.peakBytes = c.zc.Used()
	}
	return e.infoLocked(), nil
}

// HeavyShareOf returns the heaviest key's share of a key sample — the raw
// number behind the skew bucket, reported in listings. Exported so the
// sharded router computes the identical ingest statistic for relations it
// splits across shard catalogs.
func HeavyShareOf(sample []int32) float64 { return heavyShare(sample) }

// heavyShare returns the heaviest key's share of the sample — the raw
// number behind the skew bucket, reported in listings.
func heavyShare(sample []int32) float64 {
	if len(sample) == 0 {
		return 0
	}
	counts := make(map[int32]int, len(sample))
	maxCount := 0
	for _, k := range sample {
		counts[k]++
		if counts[k] > maxCount {
			maxCount = counts[k]
		}
	}
	return float64(maxCount) / float64(len(sample))
}

// Fits reports whether bytes of additional resident data would fit the
// remaining budget right now. A cheap pre-check for callers about to
// construct a large relation (pipeline intermediates): registration still
// re-checks authoritatively under the same lock as the allocation.
func (c *Catalog) Fits(bytes int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zc.Fits(bytes)
}

// Reserve charges bytes of transient pipeline data against the resident
// zero-copy budget without registering anything: the streamed pipeline
// path holds its one in-flight intermediate through Reserve instead of
// Load, so an intermediate the budget cannot hold fails with the same
// ErrNoSpace as on the materialized path while nothing is measured,
// indexed, named or pinned. The caller returns the bytes with Unreserve
// when the consumer step has finished with them.
func (c *Catalog) Reserve(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("catalog: negative reservation of %d bytes", bytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.zc.Alloc(bytes); err != nil {
		return fmt.Errorf("%w: %d transient bytes, %d of %d in use",
			ErrNoSpace, bytes, c.zc.Used(), c.zc.Capacity)
	}
	if c.zc.Used() > c.peakBytes {
		c.peakBytes = c.zc.Used()
	}
	return nil
}

// ReserveTransient charges up to bytes of transient spill working memory
// and returns the amount actually charged — possibly zero. Unlike Reserve
// it never fails: the spill path's irreducible working set (a single
// probe chunk's intermediate, or one heavy key's matches) must
// materialize even when it exceeds the remaining headroom, so the excess
// becomes an overdraft reported through the spiller's own peak gauge
// rather than an error. The caller must hand the returned amount — not
// its demand — back to Unreserve.
func (c *Catalog) ReserveTransient(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if free := c.zc.Capacity - c.zc.Used(); free < bytes {
		bytes = free
	}
	if bytes <= 0 || c.zc.Alloc(bytes) != nil {
		return 0
	}
	if c.zc.Used() > c.peakBytes {
		c.peakBytes = c.zc.Used()
	}
	return bytes
}

// Headroom returns the unused resident budget — the largest reservation
// that could succeed right now. The hybrid-hash spill path sizes its
// residency budget with it when a Reserve has just failed: whatever fits
// stays resident, the rest goes through the simulated spill store.
func (c *Catalog) Headroom() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zc.Capacity - c.zc.Used()
}

// Unreserve returns bytes taken by Reserve to the resident budget.
func (c *Catalog) Unreserve(bytes int64) {
	if bytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.zc.Free(bytes)
}

// StatBytes returns the resident footprint of the ingest-time statistics
// the catalog builds for a relation of n tuples: the sorted key index (one
// int32 per tuple) plus the strided key sample (one int32 per sampled
// position — KeySample's stride arithmetic, targeted at
// plan.WorkloadSample). The pipeline accountant uses it to attribute the
// full cost of materializing an intermediate through the catalog; the
// streamed path never builds these copies.
func StatBytes(tuples int) int64 {
	if tuples <= 0 {
		return 0
	}
	stride := tuples / plan.WorkloadSample
	if stride < 1 {
		stride = 1
	}
	sampled := (tuples + stride - 1) / stride
	return int64(tuples)*4 + int64(sampled)*4
}

// Acquire resolves a name to its entry and takes one pin; the caller must
// Release when the query finishes. Pins keep a dropped entry's data alive
// until the last in-flight query completes.
func (c *Catalog) Acquire(name string) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.pins++
	e.joins++
	return e, nil
}

// Get snapshots one entry's Info.
func (c *Catalog) Get(name string) (Info, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return Info{}, false
	}
	return e.infoLocked(), true
}

// Relation returns the resident relation registered under name.
func (c *Catalog) Relation(name string) (rel.Relation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return rel.Relation{}, false
	}
	return e.rel, true
}

// List snapshots every entry, sorted by name.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Info, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e.infoLocked())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Drop unregisters a relation: the name is unbound immediately, so new
// queries cannot resolve it, while queries already pinning the entry keep
// their data; the zero-copy bytes are released when the last pin drains
// (immediately when none are held). The returned Info reports the pins
// still outstanding.
func (c *Catalog) Drop(name string) (Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(c.entries, name)
	c.dropped++
	// A later registration under the same name must not inherit this
	// entry's memoized pair workloads.
	//apulint:ignore detmaporder(invalidation deletes a key set; the surviving map contents are the same whatever order the keys are visited in)
	for k := range c.workloads {
		if k.r == name || k.s == name {
			delete(c.workloads, k)
		}
	}
	info := e.infoLocked()
	if e.pins == 0 {
		c.zc.Free(e.rel.Bytes())
	} else {
		e.dropped = true
	}
	return info, nil
}

// Workload returns the planner workload buckets of the pair (build r,
// probe s) from the ingest-time statistics — the probe's stored key sample
// against the build's sorted key index — without scanning either relation.
// The result is memoized per pair and equals plan.MeasureWorkload on the
// same relations, so catalog-referenced and inline queries share
// plan-cache entries.
func (c *Catalog) Workload(r, s *Entry) plan.Workload {
	if r.rel.Len() == 0 || s.rel.Len() == 0 {
		return plan.Workload{}
	}
	key := pairKey{r: r.name, s: s.name}
	c.mu.Lock()
	if w, ok := c.workloads[key]; ok {
		c.reuses++
		c.mu.Unlock()
		return w
	}
	c.mu.Unlock()

	w := plan.PairWorkload(s.sample, s.skewBucket, r.index.Contains)

	c.mu.Lock()
	// Only memoize while both names still resolve to these entries: a
	// concurrent Drop must not be overwritten by a stale pair.
	if c.entries[r.name] == r && c.entries[s.name] == s {
		c.workloads[key] = w
	}
	c.mu.Unlock()
	return w
}

// Stats snapshots the catalog counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Relations:      len(c.entries),
		Bytes:          c.zc.Used(),
		Capacity:       c.zc.Capacity,
		PeakBytes:      c.peakBytes,
		Registered:     c.registered,
		Dropped:        c.dropped,
		WorkloadReuses: c.reuses,
	}
}
