package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablePrintFormats(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Note: "n", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")

	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: T ==", "n", "a", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}

	buf.Reset()
	if err := tab.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "experiment,a,b" || lines[1] != "x,1,2" {
		t.Fatalf("csv content %v", lines)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	if _, ok := Lookup("FIG3"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table3",
		"fig16", "fig17", "fig18", "fig19", "fig20",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("paper artifact %s has no experiment driver", id)
		}
	}
}
