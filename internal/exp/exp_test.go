package exp

import (
	"os"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Tuples: 1 << 16, MonteCarloRuns: 50, Delta: 0.1}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			run, ok := Lookup(id)
			if !ok {
				t.Fatalf("missing %s", id)
			}
			tab, err := run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if testing.Verbose() {
				tab.Fprint(os.Stderr)
			}
		})
	}
}
