package exp

import (
	"fmt"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

func init() {
	register("zipf", Zipf)
}

// Zipf is an extension experiment beyond the paper's s%-duplicate skew:
// probe foreign keys drawn from a Zipf distribution (the other skew model
// of Blanas et al.), sweeping the exponent θ. It checks that the
// co-processing advantage and the grouping optimization survive
// continuous skew, not just the single-heavy-key shape.
func Zipf(cfg Config) (*Table, error) {
	cfg.SetDefaults()

	t := &Table{ID: "zipf", Title: "Zipf-skewed foreign keys (extension; ms)",
		Note:   "θ=0 is uniform; θ=1 is heavy textbook skew",
		Header: []string{"θ", "scheme", "matches", "total", "probe", "grouped total"}}

	thetas := []float64{0, 0.5, 0.75, 1.0}
	if cfg.Quick {
		thetas = []float64{0, 1.0}
	}
	r := rel.Gen{N: cfg.Tuples, Seed: cfg.Seed}.Build()
	for _, theta := range thetas {
		s := rel.Gen{N: cfg.Tuples, Seed: cfg.Seed + 1}.ZipfProbe(r, theta)
		for _, scheme := range []core.Scheme{core.DD, core.PL} {
			opt := baseOptions(cfg, core.SHJ, scheme)
			res, err := core.Run(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("zipf θ=%v %v: %w", theta, scheme, err)
			}
			gopt := opt
			gopt.Grouping = true
			gres, err := core.Run(r, s, gopt)
			if err != nil {
				return nil, fmt.Errorf("zipf grouped θ=%v %v: %w", theta, scheme, err)
			}
			t.AddRow(fmt.Sprintf("%.2f", theta), "SHJ-"+scheme.String(),
				fmt.Sprint(res.Matches), ms(res.TotalNS), ms(res.ProbeNS), ms(gres.TotalNS))
		}
	}
	return t, nil
}
