package exp

import (
	"fmt"

	"apujoin/internal/core"
	"apujoin/internal/device"
	"apujoin/internal/mem"
	"apujoin/internal/rel"
)

func init() {
	register("fig16", Fig16)
	register("fig17", Fig17)
	register("fig18", Fig18)
	register("fig19", Fig19)
	register("fig20", Fig20)
}

// Fig16 compares the coarse-grained BasicUnit scheduler with the
// fine-grained DD and PL schemes (paper: PL is 31% / 25% faster than
// BasicUnit for SHJ / PHJ).
func Fig16(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig16", Title: "BasicUnit vs fine-grained co-processing (ms)",
		Header: []string{"variant", "elapsed"}}

	for _, algo := range []core.Algo{core.SHJ, core.PHJ} {
		for _, scheme := range []core.Scheme{core.BasicUnit, core.DD, core.PL} {
			res, err := core.Run(r, s, baseOptions(cfg, algo, scheme))
			if err != nil {
				return nil, fmt.Errorf("fig16 %v %v: %w", algo, scheme, err)
			}
			name := fmt.Sprintf("%s-%s", algo, scheme)
			if scheme == core.BasicUnit {
				name = fmt.Sprintf("BasicUnit (%s)", algo)
			}
			t.AddRow(name, ms(res.TotalNS))
		}
	}
	return t, nil
}

// Fig17 reports the per-phase CPU/GPU workload shares BasicUnit settles on
// for SHJ.
func Fig17(cfg Config) (*Table, error) {
	return basicUnitShares(cfg, core.SHJ, "fig17", []string{"build", "probe"})
}

// Fig18 is Fig17 for PHJ (partition, build, probe).
func Fig18(cfg Config) (*Table, error) {
	return basicUnitShares(cfg, core.PHJ, "fig18", []string{"partition", "build", "probe"})
}

func basicUnitShares(cfg Config, algo core.Algo, id string, phases []string) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)
	res, err := core.Run(r, s, baseOptions(cfg, algo, core.BasicUnit))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	t := &Table{ID: id, Title: fmt.Sprintf("Workload ratios of different steps for %s employing BasicUnit", algo),
		Note:   "paper: whole phases share one ratio — the deficiency vs per-step PL ratios",
		Header: []string{"phase", "CPU", "GPU"}}
	for i, ph := range phases {
		if i >= len(res.BasicUnitShares) {
			break
		}
		cpu := res.BasicUnitShares[i]
		t.AddRow(ph, pct(cpu), pct(1-cpu))
	}
	return t, nil
}

// Fig19 joins datasets larger than the zero-copy buffer: |R| = |S| scales
// 1x..8x of the buffer-filling size, comparing SHJ-PL and PHJ-PL as the
// per-pair join.
func Fig19(cfg Config) (*Table, error) {
	cfg.SetDefaults()

	t := &Table{ID: "fig19", Title: "Joins larger than the zero-copy buffer (|R|=|S|, ms)",
		Note:   "paper: partition+copy appear beyond the 16M boundary; both grow linearly; PHJ-PL up to 9% faster",
		Header: []string{"tuples", "variant", "partition", "join", "data copy", "total"}}

	// Scale the buffer so cfg.Tuples plays the paper's 16M role.
	capacity := int64(cfg.Tuples) * 32
	scales := []int{1, 2, 4, 8}
	if cfg.Quick {
		scales = []int{1, 2}
	}
	for _, sc := range scales {
		n := cfg.Tuples * sc
		r, s := dataset(cfg, n, n, 0, 1.0)
		for _, algo := range []core.Algo{core.SHJ, core.PHJ} {
			opt := baseOptions(cfg, algo, core.PL)
			opt.ZeroCopy = mem.NewZeroCopy()
			opt.ZeroCopy.Capacity = capacity
			name := fmt.Sprintf("%s-PL", algo)
			if sc == 1 {
				res, err := core.Run(r, s, opt)
				if err != nil {
					return nil, fmt.Errorf("fig19 %dx %s: %w", sc, name, err)
				}
				t.AddRow(sizeName(n), name, "0.00", ms(res.TotalNS), "0.00", ms(res.TotalNS))
				continue
			}
			res, err := core.RunExternal(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("fig19 %dx %s: %w", sc, name, err)
			}
			t.AddRow(sizeName(n), name, ms(res.PartitionNS), ms(res.JoinNS), ms(res.DataCopyNS), ms(res.TotalNS))
		}
	}
	return t, nil
}

// Fig20 is the latch microbenchmark: X atomic increments spread over an
// array of N integers under the three data distributions, on each device.
// Skew concentrates increments on one hot element, trading latch contention
// against cache locality — the effect the paper uses to explain why
// high-skew joins can be as fast as uniform ones.
func Fig20(cfg Config) (*Table, error) {
	cfg.SetDefaults()

	t := &Table{ID: "fig20", Title: "Locking micro-benchmark: X increments over an N-integer array",
		Note:   "paper: time falls as N grows (less contention) until the array outgrows the 4MB cache; skew adds contention but also locality",
		Header: []string{"device", "N", "uniform", "low-skew", "high-skew"}}

	x := int64(cfg.Tuples) // paper: X = 16M with Tuples=16M
	cm := mem.NewCacheModel()
	sizes := []int{1, 4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	if cfg.Quick {
		sizes = []int{1, 256, 64 << 10, 4 << 20}
	}

	for _, prof := range []device.Profile{device.APUCPU(), device.APUGPU()} {
		dev := device.New(prof)
		for _, n := range sizes {
			row := []string{prof.Kind.String(), sizeName(n)}
			for _, dist := range []rel.Distribution{rel.Uniform, rel.LowSkew, rel.HighSkew} {
				hot := x * int64(dist.SkewPercent()) / 100
				rest := x - hot

				// Cold part: increments spread over all N elements.
				var a device.Acct
				a.AtomicOps = rest
				a.AtomicTargets = int64(n)
				a.Rand[device.RegionHashTable] = rest
				env := device.UniformEnv(cm.HitRatio(int64(n)*4, 0))
				total := dev.TimeNS(a, env)

				// Hot part: all on one element — fully contended but
				// cache-resident.
				if hot > 0 {
					var h device.Acct
					h.AtomicOps = hot
					h.AtomicTargets = 1
					h.Rand[device.RegionHashTable] = hot
					total += dev.TimeNS(h, device.UniformEnv(0.99))
				}
				row = append(row, ms(total))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
