// Package exp regenerates every table and figure of the paper's evaluation
// (Sec. 5 and the appendix). Each experiment returns a Table whose rows
// mirror what the paper plots; cmd/experiments prints them and the
// top-level benchmarks wrap them.
//
// The paper's default workload is 16M ⋈ 16M tuples on an A8-3870K. The
// drivers scale with Config.Tuples (default 2^20) so the whole suite runs
// in minutes; the shapes — who wins, by what factor, where crossovers
// fall — are the reproduction target, not absolute seconds.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"apujoin/internal/catalog"
	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// Config scales and seeds the experiment drivers.
type Config struct {
	// Tuples is the default relation size (paper: 16M).
	Tuples int
	// Seed makes data generation deterministic.
	Seed int64
	// Delta is the ratio-grid granularity handed to the cost model.
	Delta float64
	// PilotItems is the profiling sample size.
	PilotItems int
	// MonteCarloRuns is the number of random ratio settings for Fig. 9
	// (paper: 1000).
	MonteCarloRuns int
	// Quick shrinks sweeps for use in tests.
	Quick bool
	// Catalog, when non-nil, backs dataset() with a relation catalog:
	// experiments sharing a (size, distribution, selectivity) shape reuse
	// one registered pair instead of regenerating it per driver. Results
	// are unchanged — registration is bit-identical to inline generation —
	// only host time shifts from generation to lookup.
	Catalog *catalog.Catalog
}

// SetDefaults fills zero fields.
func (c *Config) SetDefaults() {
	if c.Tuples <= 0 {
		c.Tuples = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.PilotItems <= 0 {
		c.PilotItems = 1 << 14
	}
	if c.MonteCarloRuns <= 0 {
		c.MonteCarloRuns = 1000
	}
	if c.Quick {
		if c.MonteCarloRuns > 100 {
			c.MonteCarloRuns = 100
		}
		if c.Tuples > 1<<17 {
			c.Tuples = 1 << 17
		}
	}
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintCSV renders the table as CSV (header row first), for piping into
// plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Header...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, r...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Runner is one experiment driver.
type Runner func(cfg Config) (*Table, error)

// registry maps experiment IDs to drivers; populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Lookup returns the driver for an experiment ID (e.g. "fig7", "table3").
func Lookup(id string) (Runner, bool) {
	r, ok := registry[strings.ToLower(id)]
	return r, ok
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- shared helpers ---

// dataset builds an R⋈S pair with the given sizes, distribution and match
// selectivity. With cfg.Catalog set, the pair registers under a
// shape-derived name on first use and later experiments with the same
// shape reuse the resident relations; any catalog error (e.g. the
// zero-copy budget at large scales) falls back to inline generation.
func dataset(cfg Config, nr, ns int, dist rel.Distribution, selectivity float64) (rel.Relation, rel.Relation) {
	rg := rel.Gen{N: nr, Dist: dist, Seed: cfg.Seed}
	sg := rel.Gen{N: ns, Dist: dist, Seed: cfg.Seed + 1}
	if cfg.Catalog != nil {
		rname := fmt.Sprintf("R-n%d-%s-seed%d", nr, dist, cfg.Seed)
		sname := fmt.Sprintf("S-%s-n%d-sel%g", rname, ns, selectivity)
		if _, ok := cfg.Catalog.Relation(rname); !ok {
			if _, err := cfg.Catalog.RegisterGen(rname, rg); err != nil {
				r := rg.Build()
				return r, sg.Probe(r, selectivity)
			}
		}
		if _, ok := cfg.Catalog.Relation(sname); !ok {
			if _, err := cfg.Catalog.RegisterProbe(sname, rname, sg, selectivity); err != nil {
				r := rg.Build()
				return r, sg.Probe(r, selectivity)
			}
		}
		r, _ := cfg.Catalog.Relation(rname)
		s, _ := cfg.Catalog.Relation(sname)
		return r, s
	}
	r := rg.Build()
	s := sg.Probe(r, selectivity)
	return r, s
}

// baseOptions returns the default run options for a config.
func baseOptions(cfg Config, algo core.Algo, scheme core.Scheme) core.Options {
	return core.Options{
		Algo:       algo,
		Scheme:     scheme,
		Delta:      cfg.Delta,
		PilotItems: cfg.PilotItems,
	}
}

func ms(ns float64) string { return fmt.Sprintf("%.2f", ns/1e6) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }
