package exp

import (
	"fmt"

	"apujoin/internal/core"
	"apujoin/internal/mem"
	"apujoin/internal/rel"
)

// Ablation drivers for the design choices DESIGN.md Sec. 5 calls out
// beyond the paper's own figures: the δ granularity of the ratio search,
// the divergence-grouping optimization, the radix pass-planning budget and
// the pilot sample size. Each isolates one knob with everything else at
// the tuned defaults.

func init() {
	register("abl-delta", AblationDelta)
	register("abl-grouping", AblationGrouping)
	register("abl-radix", AblationRadix)
	register("abl-pilot", AblationPilot)
}

// AblationDelta sweeps the ratio-grid granularity δ: finer grids find
// better ratios but cost more optimizer time. The paper fixes δ=0.02 "as a
// tradeoff between the effectiveness and the execution time of
// optimizations"; this driver shows the tradeoff explicitly.
func AblationDelta(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "abl-delta", Title: "Ratio-grid granularity δ vs SHJ-PL quality",
		Note:   "paper fixes δ=0.02; coarser grids trade join time for optimizer time",
		Header: []string{"δ", "join time (ms)", "build ratios"}}

	deltas := []float64{0.5, 0.25, 0.1, 0.05, 0.02}
	if cfg.Quick {
		deltas = []float64{0.5, 0.1, 0.02}
	}
	for _, d := range deltas {
		opt := baseOptions(cfg, core.SHJ, core.PL)
		opt.Delta = d
		res, err := core.Run(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("abl-delta %v: %w", d, err)
		}
		t.AddRow(fmt.Sprintf("%.2f", d), ms(res.TotalNS), fmt.Sprintf("%.2v", res.Ratios.Build))
	}
	return t, nil
}

// AblationGrouping toggles the workload-divergence grouping optimization
// across data distributions (paper Sec. 5.4: 5-10% end-to-end, larger on
// the GPU).
func AblationGrouping(cfg Config) (*Table, error) {
	cfg.SetDefaults()

	t := &Table{ID: "abl-grouping", Title: "Workload-divergence grouping on/off (SHJ-PL, ms)",
		Header: []string{"dataset", "groups", "off", "on", "gain"}}

	groupCounts := []int{8, 32, 128}
	if cfg.Quick {
		groupCounts = []int{32}
	}
	for _, dist := range []rel.Distribution{rel.Uniform, rel.HighSkew} {
		r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, dist, 1.0)
		for _, g := range groupCounts {
			var times [2]float64
			for i, on := range []bool{false, true} {
				opt := baseOptions(cfg, core.SHJ, core.PL)
				opt.Grouping = on
				opt.Groups = g
				res, err := core.Run(r, s, opt)
				if err != nil {
					return nil, fmt.Errorf("abl-grouping: %w", err)
				}
				times[i] = res.TotalNS
			}
			gain := "-"
			if times[0] > 0 {
				gain = fmt.Sprintf("%.0f%%", 100*(times[0]-times[1])/times[0])
			}
			t.AddRow(dist.String(), fmt.Sprint(g), ms(times[0]), ms(times[1]), gain)
		}
	}
	return t, nil
}

// AblationRadix sweeps the radix pass planner's partition-pair cache
// budget, trading partition-phase work against build/probe cache locality.
func AblationRadix(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "abl-radix", Title: "Radix pass-planning budget (PHJ-PL, ms)",
		Header: []string{"target bytes", "partition", "build+probe", "total"}}

	budgets := []int64{mem.DefaultL2Bytes / 32, mem.DefaultL2Bytes / 8, mem.DefaultL2Bytes / 2, mem.DefaultL2Bytes * 2}
	if cfg.Quick {
		budgets = []int64{mem.DefaultL2Bytes / 8, mem.DefaultL2Bytes * 2}
	}
	for _, b := range budgets {
		opt := baseOptions(cfg, core.PHJ, core.PL)
		opt.RadixTargetBytes = b
		res, err := core.Run(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("abl-radix %d: %w", b, err)
		}
		t.AddRow(fmt.Sprintf("%dK", b>>10),
			ms(res.PartitionNS), ms(res.BuildNS+res.ProbeNS), ms(res.TotalNS))
	}
	return t, nil
}

// AblationPilot sweeps the profiling sample size: tiny pilots misestimate
// the workload-dependent steps and degrade the chosen ratios.
func AblationPilot(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "abl-pilot", Title: "Profiling pilot sample size vs SHJ-PL quality",
		Header: []string{"pilot tuples", "join time (ms)", "estimate (ms)"}}

	pilots := []int{1 << 8, 1 << 11, 1 << 14, 1 << 16}
	if cfg.Quick {
		pilots = []int{1 << 10, 1 << 14}
	}
	for _, p := range pilots {
		opt := baseOptions(cfg, core.SHJ, core.PL)
		opt.PilotItems = p
		res, err := core.Run(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("abl-pilot %d: %w", p, err)
		}
		t.AddRow(fmt.Sprint(p), ms(res.TotalNS), ms(res.EstimatedNS))
	}
	return t, nil
}
