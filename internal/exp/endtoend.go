package exp

import (
	"fmt"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

func init() {
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("fig14low", Fig14Low)
	register("fig15", Fig15)
}

// Fig13 sweeps the build relation size on the uniform dataset and compares
// CPU-only against the DD, OL and PL variants of SHJ and PHJ.
func Fig13(cfg Config) (*Table, error) {
	return sizeSweep(cfg, rel.Uniform, "fig13", "Elapsed time comparison on the uniform data set")
}

// Fig14 is Fig13 on the high-skew dataset (s=25).
func Fig14(cfg Config) (*Table, error) {
	return sizeSweep(cfg, rel.HighSkew, "fig14", "Elapsed time comparison on the high-skew data set")
}

// Fig14Low is the low-skew (s=10) companion the paper describes in text.
func Fig14Low(cfg Config) (*Table, error) {
	return sizeSweep(cfg, rel.LowSkew, "fig14low", "Elapsed time comparison on the low-skew data set")
}

func sizeSweep(cfg Config, dist rel.Distribution, id, title string) (*Table, error) {
	cfg.SetDefaults()
	t := &Table{ID: id, Title: title + " (ms); probe relation fixed",
		Note:   "paper: leap when the build table outgrows the 4MB shared L2; PL best, then DD, then GPU-only/OL, CPU-only worst",
		Header: []string{"algo", "|R|", "CPU-only", "DD", "OL", "PL"}}

	// Paper: S fixed at 16M, R from 64K to 16M. Scale: R from Tuples/256
	// upward.
	sizes := []int{cfg.Tuples / 256, cfg.Tuples / 64, cfg.Tuples / 16, cfg.Tuples / 4, cfg.Tuples}
	if cfg.Quick {
		sizes = []int{cfg.Tuples / 16, cfg.Tuples}
	}

	for _, algo := range []core.Algo{core.SHJ, core.PHJ} {
		for _, nr := range sizes {
			if nr < 1024 {
				nr = 1024
			}
			r, s := dataset(cfg, nr, cfg.Tuples, dist, 1.0)
			row := []string{algo.String(), sizeName(nr)}
			for _, scheme := range []core.Scheme{core.CPUOnly, core.DD, core.OL, core.PL} {
				res, err := core.Run(r, s, baseOptions(cfg, algo, scheme))
				if err != nil {
					return nil, fmt.Errorf("%s %v |R|=%d %v: %w", id, algo, nr, scheme, err)
				}
				row = append(row, ms(res.TotalNS))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprint(n)
	}
}

// Fig15 studies join selectivity (12.5%, 50%, 100%) for PHJ under DD, OL
// and PL with the per-phase time breakdown.
func Fig15(cfg Config) (*Table, error) {
	cfg.SetDefaults()

	t := &Table{ID: "fig15", Title: "PHJ with join selectivity varied (ms)",
		Note:   "paper: selectivity affects mostly the probe phase, and only slightly (matching rid pairs are simply output)",
		Header: []string{"selectivity", "scheme", "partition", "build", "probe", "total"}}

	for _, sel := range []float64{0.125, 0.5, 1.0} {
		r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, sel)
		for _, scheme := range []core.Scheme{core.DD, core.OL, core.PL} {
			res, err := core.Run(r, s, baseOptions(cfg, core.PHJ, scheme))
			if err != nil {
				return nil, fmt.Errorf("fig15 sel=%v %v: %w", sel, scheme, err)
			}
			t.AddRow(fmt.Sprintf("%.1f%%", sel*100), scheme.String(),
				ms(res.PartitionNS), ms(res.BuildNS), ms(res.ProbeNS), ms(res.TotalNS))
		}
	}
	return t, nil
}
