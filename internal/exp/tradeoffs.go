package exp

import (
	"fmt"

	"apujoin/internal/alloc"
	"apujoin/internal/core"
)

func init() {
	register("fig10", Fig10)
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("table3", Table3)
}

// Fig10 compares separate and shared hash tables for the build phase of DD
// (paper: shared wins by 16% on SHJ and 26% on PHJ thanks to the shared L2
// and the eliminated merge).
func Fig10(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig10", Title: "Elapsed time of the build phase in DD with separate and shared hash tables (ms)",
		Header: []string{"algorithm", "tables", "build", "merge", "build+merge", "cache-miss ratio"}}

	for _, algo := range []core.Algo{core.SHJ, core.PHJ} {
		for _, sep := range []bool{true, false} {
			opt := baseOptions(cfg, algo, core.DD)
			opt.SeparateTables = sep
			res, err := core.Run(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("fig10 %v sep=%v: %w", algo, sep, err)
			}
			name := "shared"
			if sep {
				name = "separate"
			}
			t.AddRow(algo.String(), name, ms(res.BuildNS), ms(res.MergeNS),
				ms(res.BuildNS+res.MergeNS), pct(res.Cache.MissRatio()))
		}
	}
	return t, nil
}

// Fig11 sweeps the memory allocator block size for PHJ under DD, OL and PL,
// reporting elapsed time and the back-derived lock overhead.
func Fig11(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig11", Title: "PHJ elapsed time and lock overhead vs allocation block size",
		Note:   "paper: improves until ~2KB, then flat; lock overhead falls as blocks grow",
		Header: []string{"block", "scheme", "elapsed (ms)", "lock overhead (ms)", "alloc atomics"}}

	blocks := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	if cfg.Quick {
		blocks = []int{8, 64, 512, 2048, 32768}
	}
	for _, b := range blocks {
		for _, scheme := range []core.Scheme{core.DD, core.OL, core.PL} {
			opt := baseOptions(cfg, core.PHJ, scheme)
			opt.Alloc = alloc.Config{Strategy: alloc.Block, BlockBytes: b}
			res, err := core.Run(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("fig11 block=%d %v: %w", b, scheme, err)
			}
			t.AddRow(blockName(b), "PHJ-"+scheme.String(), ms(res.TotalNS),
				ms(res.LockOverheadNS), fmt.Sprint(res.AllocStats.GlobalAtomics))
		}
	}
	return t, nil
}

func blockName(b int) string {
	if b >= 1024 {
		return fmt.Sprintf("%dK", b/1024)
	}
	return fmt.Sprint(b)
}

// Fig12 compares the basic allocator with the optimized block allocator
// across the SHJ and PHJ variants (paper: up to 36% / 39% improvement).
func Fig12(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig12", Title: "Basic vs optimized memory allocator (ms)",
		Header: []string{"variant", "Basic", "Ours", "improvement"}}

	for _, algo := range []core.Algo{core.SHJ, core.PHJ} {
		for _, scheme := range []core.Scheme{core.DD, core.OL, core.PL} {
			var times [2]float64
			for i, strat := range []alloc.Strategy{alloc.Basic, alloc.Block} {
				opt := baseOptions(cfg, algo, scheme)
				opt.Alloc = alloc.Config{Strategy: strat, BlockBytes: alloc.DefaultBlockBytes}
				res, err := core.Run(r, s, opt)
				if err != nil {
					return nil, fmt.Errorf("fig12 %v %v %v: %w", algo, scheme, strat, err)
				}
				times[i] = res.TotalNS
			}
			imp := "-"
			if times[0] > 0 {
				imp = fmt.Sprintf("%.0f%%", 100*(times[0]-times[1])/times[0])
			}
			t.AddRow(fmt.Sprintf("%s-%s", algo, scheme), ms(times[0]), ms(times[1]), imp)
		}
	}
	return t, nil
}

// Table3 compares the fine-grained step definition (PHJ-PL) with the
// coarse-grained one (PHJ-PL': one work item joins a whole partition pair
// with a private hash table).
func Table3(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "table3", Title: "Fine-grained vs coarse-grained step definitions in PL",
		Note:   "paper: PHJ-PL' has ~2x the L2 misses (23% vs 10% miss ratio) and is 1.4x slower",
		Header: []string{"variant", "L2 misses (x1e6)", "L2 miss ratio", "time (ms)"}}

	for _, scheme := range []core.Scheme{core.PL, core.CoarsePL} {
		opt := baseOptions(cfg, core.PHJ, scheme)
		res, err := core.Run(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("table3 %v: %w", scheme, err)
		}
		name := "PHJ-PL"
		if scheme == core.CoarsePL {
			name = "PHJ-PL'"
		}
		t.AddRow(name, fmt.Sprintf("%.2f", float64(res.Cache.Misses)/1e6),
			pct(res.Cache.MissRatio()), ms(res.TotalNS))
	}
	return t, nil
}
