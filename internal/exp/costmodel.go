package exp

import (
	"fmt"

	"apujoin/internal/core"
	"apujoin/internal/sched"
)

func init() {
	register("fig7", Fig7)
	register("fig8", Fig8)
	register("fig9", Fig9)
}

// Fig7 compares the cost model's estimate with the measured time for
// SHJ-DD as the workload ratio sweeps 0–100% for the build and probe
// phases.
func Fig7(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig7", Title: "Estimated vs measured time for SHJ-DD with workload ratios varied (ms)",
		Note:   "paper: estimates track measurements closely, slightly below (no lock contention in the model)",
		Header: []string{"phase", "CPU ratio", "estimated", "measured"}}

	step := 10
	if cfg.Quick {
		step = 25
	}
	for _, phase := range []string{"build", "probe"} {
		for pctr := 0; pctr <= 100; pctr += step {
			ratio := float64(pctr) / 100
			opt := baseOptions(cfg, core.SHJ, core.DD)
			if phase == "build" {
				opt.FixedBuild = sched.Ratios{ratio}
			} else {
				opt.FixedProbe = sched.Ratios{ratio}
			}
			res, err := core.Run(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s %d%%: %w", phase, pctr, err)
			}
			var est, meas float64
			if phase == "build" {
				est, meas = res.EstBuildNS, res.BuildNS
			} else {
				est, meas = res.EstProbeNS, res.ProbeNS
			}
			t.AddRow(phase, fmt.Sprintf("%d%%", pctr), ms(est), ms(meas))
		}
	}
	return t, nil
}

// Fig8 evaluates the special PL case: b1 and p1 fully offloaded to the GPU
// and a single data-dividing ratio r applied to all other steps.
func Fig8(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig8", Title: "Special PL case (b1,p1 on GPU; ratio r elsewhere): estimated vs measured (ms)",
		Header: []string{"phase", "r", "estimated", "measured"}}

	step := 10
	if cfg.Quick {
		step = 25
	}
	for _, phase := range []string{"build", "probe"} {
		for pctr := 0; pctr <= 100; pctr += step {
			ratio := float64(pctr) / 100
			opt := baseOptions(cfg, core.SHJ, core.PL)
			build := sched.Ratios{0, 0.5, 0.5, 0.5}
			probe := sched.Ratios{0, 0.5, 0.5, 0.5}
			if phase == "build" {
				build = sched.Ratios{0, ratio, ratio, ratio}
			} else {
				probe = sched.Ratios{0, ratio, ratio, ratio}
			}
			opt.FixedBuild = build
			opt.FixedProbe = probe
			res, err := core.Run(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s %d%%: %w", phase, pctr, err)
			}
			var est, meas float64
			if phase == "build" {
				est, meas = res.EstBuildNS, res.BuildNS
			} else {
				est, meas = res.EstProbeNS, res.ProbeNS
			}
			t.AddRow(phase, fmt.Sprintf("%d%%", pctr), ms(est), ms(meas))
		}
	}
	return t, nil
}

// Fig9 runs the Monte Carlo simulations over random PL ratio settings and
// reports the CDF of estimated times together with the model-chosen
// configuration ("Ours").
func Fig9(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig9", Title: "CDF of Monte Carlo simulations on PL workload ratios",
		Note:   fmt.Sprintf("%d random ratio settings; paper: 'Ours' sits at the far left of the CDF", cfg.MonteCarloRuns),
		Header: []string{"experiment", "percentile", "time (ms)"}}

	type mc struct {
		algo  core.Algo
		phase string
		name  string
	}
	for _, m := range []mc{{core.SHJ, "build", "SHJ-PL build"}, {core.PHJ, "probe", "PHJ-PL probe"}} {
		opt := baseOptions(cfg, m.algo, core.PL)
		samples, ours, err := core.MonteCarloPhase(r, s, opt, m.phase, cfg.MonteCarloRuns, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", m.name, err)
		}
		for _, p := range []int{0, 10, 25, 50, 75, 90, 100} {
			idx := p * (len(samples) - 1) / 100
			t.AddRow(m.name, fmt.Sprintf("p%d", p), ms(samples[idx]))
		}
		t.AddRow(m.name, "Ours", ms(ours))
		// Position of Ours within the CDF.
		rank := 0
		for _, v := range samples {
			if v < ours {
				rank++
			}
		}
		t.AddRow(m.name, "Ours beats", fmt.Sprintf("%.0f%% of random settings", 100*float64(len(samples)-rank)/float64(len(samples))))
	}
	return t, nil
}
