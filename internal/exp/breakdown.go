package exp

import (
	"fmt"

	"apujoin/internal/core"
	"apujoin/internal/device"
	"apujoin/internal/sched"
)

func init() {
	register("table1", Table1)
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("fig5", Fig5)
	register("fig6", Fig6)
}

// Table1 prints the device configuration of the simulated A8-3870K and the
// discrete Radeon HD 7970 reference (paper Table 1).
func Table1(cfg Config) (*Table, error) {
	t := &Table{ID: "table1", Title: "Configuration of AMD Fusion A8-3870K (and discrete GPU reference)",
		Header: []string{"", "CPU (APU)", "GPU (APU)", "GPU (Discrete)"}}
	cpu, gpu, dis := device.APUCPU(), device.APUGPU(), device.DiscreteGPU()
	t.AddRow("# Cores", fmt.Sprint(cpu.Cores), fmt.Sprint(gpu.Cores), fmt.Sprint(dis.Cores))
	t.AddRow("Core frequency (GHz)", fmt.Sprint(cpu.ClockGHz), fmt.Sprint(gpu.ClockGHz), fmt.Sprint(dis.ClockGHz))
	t.AddRow("Zero copy buffer (MB)", "512 (shared)", "", "-")
	t.AddRow("Local memory size (KB)", "32", "32", "32")
	t.AddRow("Cache size (MB)", "4 (shared)", "", "-")
	return t, nil
}

// Fig3 reproduces the time breakdown of DD and OL co-processing on the
// emulated discrete architecture versus the coupled architecture.
func Fig3(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig3", Title: "Time breakdown on discrete and coupled architectures (ms)",
		Note:   "paper: PCI-e transfer 4-10% of discrete time, merge 14-18% for DD; both vanish on coupled",
		Header: []string{"variant", "arch", "data-transfer", "merge", "partition", "build", "probe", "total"}}

	type vc struct {
		algo   core.Algo
		scheme core.Scheme
		name   string
	}
	for _, v := range []vc{
		{core.SHJ, core.DD, "SHJ-DD"}, {core.SHJ, core.OL, "SHJ-OL"},
		{core.PHJ, core.DD, "PHJ-DD"}, {core.PHJ, core.OL, "PHJ-OL"},
	} {
		for _, arch := range []core.Arch{core.Discrete, core.Coupled} {
			opt := baseOptions(cfg, v.algo, v.scheme)
			opt.Arch = arch
			res, err := core.Run(r, s, opt)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s %v: %w", v.name, arch, err)
			}
			t.AddRow(v.name, arch.String(),
				ms(res.TransferNS), ms(res.MergeNS), ms(res.PartitionNS),
				ms(res.BuildNS), ms(res.ProbeNS), ms(res.TotalNS))
		}
	}
	return t, nil
}

// Fig4 reproduces the per-step unit costs of PHJ on the CPU and the GPU:
// each step series is executed once CPU-only and once GPU-only, and the
// per-tuple time is reported.
func Fig4(cfg Config) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)

	t := &Table{ID: "fig4", Title: "Unit costs per step on the CPU and the GPU for PHJ (ns/tuple)",
		Note:   "paper: GPU >15x faster on hash steps (n1,b1,p1); near parity on list walks (b3,p3)",
		Header: []string{"step", "CPU", "GPU", "CPU/GPU"}}

	unit := map[sched.StepID][2]float64{}
	for _, scheme := range []core.Scheme{core.CPUOnly, core.GPUOnly} {
		opt := baseOptions(cfg, core.PHJ, scheme)
		res, err := core.Run(r, s, opt)
		if err != nil {
			return nil, fmt.Errorf("fig4 %v: %w", scheme, err)
		}
		seen := map[sched.StepID]bool{}
		for _, st := range res.Steps {
			if seen[st.ID] {
				continue // first partition pass only
			}
			seen[st.ID] = true
			u := unit[st.ID]
			if scheme == core.CPUOnly {
				u[0] = st.CPUNS / float64(st.Items)
			} else {
				u[1] = st.GPUNS / float64(st.Items)
			}
			unit[st.ID] = u
		}
	}
	for id := sched.N1; id <= sched.P4; id++ {
		u, ok := unit[id]
		if !ok {
			continue
		}
		ratio := "-"
		if u[1] > 0 {
			ratio = fmt.Sprintf("%.1fx", u[0]/u[1])
		}
		t.AddRow(id.String(), fmt.Sprintf("%.2f", u[0]), fmt.Sprintf("%.2f", u[1]), ratio)
	}
	return t, nil
}

// Fig5 reports the optimal per-step workload ratios of SHJ-PL.
func Fig5(cfg Config) (*Table, error) {
	return plRatios(cfg, core.SHJ, "fig5", "Optimal workload ratios of different steps for SHJ-PL")
}

// Fig6 reports the optimal per-step workload ratios of PHJ-PL.
func Fig6(cfg Config) (*Table, error) {
	return plRatios(cfg, core.PHJ, "fig6", "Optimal workload ratios of different steps for PHJ-PL")
}

func plRatios(cfg Config, algo core.Algo, id, title string) (*Table, error) {
	cfg.SetDefaults()
	r, s := dataset(cfg, cfg.Tuples, cfg.Tuples, 0, 1.0)
	opt := baseOptions(cfg, algo, core.PL)
	res, err := core.Run(r, s, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	t := &Table{ID: id, Title: title + " (CPU share per step)",
		Note:   "paper: hash steps (n1,b1,p1) go almost entirely to the GPU; list walks split toward the CPU",
		Header: []string{"phase", "step", "CPU", "GPU"}}
	add := func(phase string, ids []string, ratios sched.Ratios) {
		for i, r := range ratios {
			t.AddRow(phase, ids[i], pct(r), pct(1-r))
		}
	}
	if algo == core.PHJ && len(res.Ratios.Partition) > 0 {
		add("partition", []string{"n1", "n2", "n3"}, res.Ratios.Partition[0])
	}
	add("build", []string{"b1", "b2", "b3", "b4"}, res.Ratios.Build)
	add("probe", []string{"p1", "p2", "p3", "p4"}, res.Ratios.Probe)
	return t, nil
}
