package core

import (
	"reflect"
	"testing"

	"apujoin/internal/oracle"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// TestStreamMaterializeMatchesReference: the morsel-parallel streamed
// producer is bit-identical to the single-stream rel.JoinMaterialize (and
// so to the brute-force oracle's reference join) across sizes straddling
// the morsel-grid boundary, skews and selectivities — including the empty
// and zero-match shapes, which must yield the zero relation with nil
// columns.
func TestStreamMaterializeMatchesReference(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()

	cases := []struct {
		nr, ns int
		dist   rel.Distribution
		sel    float64
	}{
		{nr: 1000, ns: 500, dist: rel.Uniform, sel: 1.0},
		{nr: 1 << 14, ns: 1 << 14, dist: rel.Uniform, sel: 0.5}, // exactly one morsel
		{nr: 1<<14 + 1, ns: 1<<14 + 1, dist: rel.LowSkew, sel: 0.9},
		{nr: 30000, ns: 50000, dist: rel.HighSkew, sel: 0.7}, // several morsels
		{nr: 2000, ns: 3000, dist: rel.Uniform, sel: 0.0},    // zero matches
		{nr: 1, ns: 1, dist: rel.Uniform, sel: 1.0},
		{nr: 0, ns: 100, dist: rel.Uniform, sel: 1.0}, // empty build side
		{nr: 100, ns: 0, dist: rel.Uniform, sel: 1.0}, // empty probe side
	}
	for _, tc := range cases {
		r := rel.Gen{N: tc.nr, Dist: tc.dist, Seed: 7}.Build()
		s := rel.Gen{N: tc.ns, Dist: tc.dist, Seed: 8}.Probe(r, tc.sel)
		want := rel.JoinMaterialize(r, s)
		got := StreamMaterialize(pool, rel.KeyCounts(r), s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("nr=%d ns=%d %v sel=%.1f: streamed output diverges from JoinMaterialize",
				tc.nr, tc.ns, tc.dist, tc.sel)
		}
		if tc.nr > 0 && tc.ns > 0 {
			if oref := oracle.Join(r, s); !reflect.DeepEqual(got, oref) {
				t.Errorf("nr=%d ns=%d %v sel=%.1f: streamed output diverges from the oracle",
					tc.nr, tc.ns, tc.dist, tc.sel)
			}
		}
	}
}

// TestStreamMaterializeWorkersInvariance: the streamed producer's output is
// a pure function of its inputs — pools of 1, 2 and 8 workers, and the nil
// (inline) pool, produce identical bytes.
func TestStreamMaterializeWorkersInvariance(t *testing.T) {
	r := rel.Gen{N: 40000, Dist: rel.LowSkew, Seed: 5}.Build()
	s := rel.Gen{N: 60000, Dist: rel.LowSkew, Seed: 6}.Probe(r, 0.8)
	counts := rel.KeyCounts(r)

	ref := StreamMaterialize(nil, counts, s)
	if ref.Len() == 0 {
		t.Fatal("fixture produced no matches")
	}
	for _, workers := range []int{1, 2, 8} {
		pool := sched.NewPool(workers)
		got := StreamMaterialize(pool, counts, s)
		pool.Close()
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: streamed output differs from the inline reference", workers)
		}
	}
}
