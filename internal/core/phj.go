package core

import (
	"context"

	"apujoin/internal/alloc"
	"apujoin/internal/cost"
	"apujoin/internal/device"
	"apujoin/internal/htab"
	"apujoin/internal/mem"
	"apujoin/internal/radix"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// chunkBytes is the memory footprint of one open partition chunk, used to
// size the partition-phase cache working set.
const chunkBytes = int64((1 + 2*radix.ChunkTuples) * 4)

// passArenaWords pre-sizes one radix pass's chunk arena for the worst-case
// chunk population (one partial chunk per partition beyond the full ones),
// with headroom for worker-private block allocation, since the arena must
// not grow while parallel shards hold offsets into it.
func passArenaWords(n, parts int, cfg alloc.Config) int {
	chunkWords := 1 + 2*radix.ChunkTuples
	chunks := n/radix.ChunkTuples + parts + 1
	return alloc.ParallelCapWords(cfg, chunks*chunkWords, chunkWords, 2*sched.DefaultShards)
}

// partitionPhase runs the multi-pass radix partitioning of both relations
// under the configured scheme, leaving rn.r / rn.s reordered by partition
// with rn.partIdx* filled, and accumulating partition-phase timing into res.
func (rn *runner) partitionPhase(res *Result, exec *sched.Exec, model *cost.Model, prof cost.SeriesProfile) error {
	opt := rn.opt
	plan := radix.PlanFor(rn.r.Len(), opt.RadixTargetBytes)
	rn.parts = plan.Partitions()
	rn.radixBits = plan.TotalBits()
	avg := rn.r.Len() / rn.parts
	if avg < 1 {
		avg = 1
	}
	rn.bucketsPerPart = ceilPow2(avg)
	rn.env.parts = rn.parts

	for relIdx, in := range []rel.Relation{rn.r, rn.s} {
		n := in.Len()
		cur := rel.Relation{
			Keys: append([]int32(nil), in.Keys...),
			RIDs: append([]int32(nil), in.RIDs...),
		}
		buf := rel.Relation{Keys: make([]int32, n), RIDs: make([]int32, n)}
		shift := opt.HashShift

		for _, bits := range plan.BitsPerPass {
			arena := alloc.New(opt.Alloc, passArenaWords(n, 1<<bits, opt.Alloc))
			pass := radix.NewPass(cur, arena, shift, bits)
			rn.env.partitionStreams = int64(1<<bits) * chunkBytes

			series := sched.Series{
				Name:  "partition",
				Items: n,
				Steps: []sched.Step{
					{ID: sched.N1, OutBytesPerItem: 4, Kernel: pass.N1,
						ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
							return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
								return pass.N1(d, mlo, mhi)
							})
						}},
					{ID: sched.N2, OutBytesPerItem: 4, Kernel: pass.N2,
						ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
							return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
								return pass.N2Atomic(d, mlo, mhi)
							})
						}},
					{ID: sched.N3, OutBytesPerItem: 0, Kernel: pass.N3,
						ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
							shards := pass.Shards(sched.DefaultShards)
							sh := pass.ShardShift(shards)
							return p.MapShards(shards, func(shard int) device.Acct {
								la := arena.NewLocal()
								defer la.Close()
								return pass.N3Shard(d, lo, hi, int32(shard), sh, la)
							})
						}},
				},
			}

			if opt.Scheme == BasicUnit {
				bu, err := exec.RunBasicUnit(series, opt.CPUChunk, opt.GPUChunk)
				if err != nil {
					return err
				}
				res.PartitionNS += bu.TotalNS
				if relIdx == 0 && shift == opt.HashShift {
					res.BasicUnitShares = append(res.BasicUnitShares, bu.CPUShare)
					res.Ratios.Partition = append(res.Ratios.Partition, sched.Uniform(bu.CPUShare, 3))
				}
			} else {
				ratios, est := rn.chooseRatios(model, prof, n, len(series.Steps), opt.FixedPartition)
				pres, err := exec.Run(series, ratios)
				if err != nil {
					return err
				}
				res.PartitionNS += pres.TotalNS - pres.TransferNS
				res.TransferNS += pres.TransferNS
				res.EstimatedNS += est
				res.EstPartitionNS += est
				recordSteps(res, "partition", pres, n)
				if relIdx == 0 && shift == opt.HashShift {
					res.Ratios.Partition = append(res.Ratios.Partition, ratios)
				}
				cs := rn.env.missStats(pres, rn.cpu, rn.gpu)
				res.Cache.Accesses += cs.Accesses
				res.Cache.Misses += cs.Misses

				if opt.Arch == Discrete {
					pcie := mem.NewPCIe()
					gpuShare := 1 - avgRatio(ratios)
					bytes := int64(gpuShare * float64(n) * 8)
					res.TransferNS += pcie.TransferNS(bytes) * 2 // in + partitions back
				}
			}

			// Link the partition chunks into contiguous form for the next
			// pass / the join ("we link all the intermediate partitions
			// together").
			_, ga := pass.Gather(buf)
			res.PartitionNS += rn.cpu.TimeNS(ga, rn.env.envFor(sched.N3, rn.cpu))

			res.AllocStats.Add(arena.Stats())

			cur, buf = buf, cur
			shift += bits
		}

		out := radix.Result{Rel: cur, Offsets: radix.FinalOffsetsShifted(cur, plan, opt.HashShift), Plan: plan}
		idx := make([]int32, n)
		out.PartIdx(idx)
		if relIdx == 0 {
			rn.r = out.Rel
			rn.partIdxR = idx
			rn.offsetsR = out.Offsets
		} else {
			rn.s = out.Rel
			rn.partIdxS = idx
			rn.offsetsS = out.Offsets
		}
	}
	return nil
}

// coarsePairKernel joins whole partition pairs [lo,hi): the coarse-grained
// step definition of Sec. 3.3, where one work item performs the complete
// SHJ of a partition pair with its own private hash table.
func (rn *runner) coarsePairKernel(d *device.Device, lo, hi int) device.Acct {
	var a device.Acct
	div := device.NewDivTracker(d.WavefrontSize)
	for p := lo; p < hi; p++ {
		rLo, rHi := int(rn.offsetsR[p]), int(rn.offsetsR[p+1])
		sLo, sHi := int(rn.offsetsS[p]), int(rn.offsetsS[p+1])
		work := int32(rHi - rLo + sHi - sLo + 1)

		if rHi > rLo {
			nb := rHi - rLo
			if nb < 2 {
				nb = 2
			}
			t := htab.New(nb, rn.arena)
			for i := rLo; i < rHi; i++ {
				a.Add(t.InsertOne(rn.r.Keys[i], rn.r.RIDs[i]))
			}
			for i := sLo; i < sHi; i++ {
				a.Add(t.ProbeOne(rn.s.Keys[i], rn.s.RIDs[i], &rn.out))
			}
		}
		a.Items++
		div.Item(work)
	}
	div.Flush(&a)
	return a
}

// coarseJoin runs the PHJ-PL' join-the-pairs step after partitioning.
// The scheduling profile for the single coarse step is synthesized from the
// pilot's per-tuple build and probe profiles scaled by the average pair
// population, so the ratio choice needs no side-effecting probe run.
func (rn *runner) coarseJoin(ctx context.Context, res *Result, model *cost.Model) error {
	pairBytes := int64(0)
	if rn.parts > 0 {
		pairBytes = (rn.r.Bytes() + rn.s.Bytes() + estimateTableBytes(rn.r.Len(), rn.parts*rn.bucketsPerPart)) / int64(rn.parts)
	}
	rn.env.coarsePairBytes = pairBytes

	prof := coarseProfile(res.BuildProfile, res.ProbeProfile,
		float64(rn.r.Len())/float64(rn.parts), float64(rn.s.Len())/float64(rn.parts))

	series := sched.Series{
		Name:  "pairjoin",
		Items: rn.parts,
		Steps: []sched.Step{{ID: sched.P3, Kernel: rn.coarsePairKernel}},
	}
	exec := &sched.Exec{CPU: rn.cpu, GPU: rn.gpu, Env: rn.env.envFor, Ctx: ctx}

	ratio, est := model.OptimizeDD(prof, rn.parts, rn.opt.Delta)
	ratios := sched.Uniform(ratio, 1)
	cres, err := exec.Run(series, ratios)
	if err != nil {
		return err
	}
	// The pair joins cover both build and probe; attribute the time by the
	// R/S tuple share for breakdown purposes.
	total := cres.TotalNS
	fr := float64(rn.r.Len()) / float64(rn.r.Len()+rn.s.Len())
	res.BuildNS = total * fr
	res.ProbeNS = total * (1 - fr)
	res.EstimatedNS += est
	res.Ratios.Build = ratios
	res.Ratios.Probe = ratios
	cs := rn.env.missStats(cres, rn.cpu, rn.gpu)
	res.Cache.Accesses += cs.Accesses
	res.Cache.Misses += cs.Misses
	return nil
}
