package core

import (
	"fmt"

	"apujoin/internal/cost"
	"apujoin/internal/radix"
	"apujoin/internal/rel"
)

// MonteCarloPhase evaluates the cost model over `runs` random PL ratio
// settings for one phase ("build" or "probe"), reproducing the paper's
// Fig. 9 CDFs, and returns the sampled times in ascending order together
// with the time of the model-optimized ratios ("Ours").
func MonteCarloPhase(r, s rel.Relation, opt Options, phase string, runs int, seed int64) ([]float64, float64, error) {
	opt.SetDefaults()
	if err := opt.Validate(); err != nil {
		return nil, 0, err
	}
	prof := runPilot(r, s, opt)

	rn := newRunner(r, s, opt)
	if opt.Algo == PHJ {
		plan := radix.PlanFor(r.Len(), opt.RadixTargetBytes)
		rn.parts = plan.Partitions()
		rn.radixBits = plan.TotalBits()
		avg := r.Len() / rn.parts
		if avg < 1 {
			avg = 1
		}
		rn.bucketsPerPart = ceilPow2(avg)
		rn.env.parts = rn.parts
	}
	rn.makeTables()
	model := &cost.Model{CPU: opt.CPU, GPU: opt.GPU, Env: rn.env.envFor}

	var sp cost.SeriesProfile
	var items int
	switch phase {
	case "build":
		sp = prof.build
		items = r.Len()
	case "probe":
		sp = prof.probe
		items = s.Len()
	default:
		return nil, 0, fmt.Errorf("core: unknown Monte Carlo phase %q", phase)
	}

	samples := model.MonteCarlo(sp, items, runs, seed)
	out := make([]float64, len(samples))
	for i, smp := range samples {
		out[i] = smp.NS
	}
	_, ours := model.OptimizePLRefined(sp, items, opt.Delta)
	return out, ours, nil
}
