package core

import (
	"apujoin/internal/alloc"
	"apujoin/internal/cost"
	"apujoin/internal/radix"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// profiles carries the calibrated step unit costs the cost model consumes.
type profiles struct {
	partition cost.SeriesProfile
	build     cost.SeriesProfile
	probe     cost.SeriesProfile
}

// runPilot executes a small profiling join over a sample of the inputs and
// derives per-step unit costs — the role AMD CodeXL / APP Profiler plays in
// the paper's model instantiation (Sec. 4.2). The sample shares the data
// distribution, so workload-dependent steps (b3/p3 list lengths, p4 match
// fan-out) are captured as averages exactly as the paper folds "instructions
// per key search × the average number of keys" into the unit cost.
func runPilot(r, s rel.Relation, opt Options) profiles {
	n := opt.PilotItems
	if n > r.Len() {
		n = r.Len()
	}
	if n > s.Len() {
		n = s.Len()
	}
	if n == 0 {
		return profiles{}
	}
	pr := r.Slice(0, n)
	ps := s.Slice(0, n)

	popt := opt
	popt.Algo = SHJ
	popt.SeparateTables = false
	rn := newRunner(pr, ps, popt)
	rn.makeTables()

	exec := &sched.Exec{CPU: rn.cpu, GPU: rn.gpu, Env: rn.env.envFor}
	half := sched.Uniform(0.5, 4)

	var out profiles
	if bres, err := exec.Run(rn.buildSeries(), half); err == nil {
		out.build = cost.ProfileResult(bres, n)
	}
	rn.env.tableBytes = rn.table.BytesResident()
	if pres, err := exec.Run(rn.probeSeries(), half); err == nil {
		out.probe = cost.ProfileResult(pres, n)
	}

	// Partition-pass profile for PHJ variants: one pass over the sample.
	if opt.Algo == PHJ {
		arena := alloc.New(opt.Alloc, n*3+radix.ChunkTuples*4)
		bits := uint(radix.MaxBitsPerPass)
		pass := radix.NewPass(pr, arena, 0, bits)
		series := sched.Series{
			Name:  "partition",
			Items: n,
			Steps: []sched.Step{
				{ID: sched.N1, OutBytesPerItem: 4, Kernel: pass.N1},
				{ID: sched.N2, OutBytesPerItem: 4, Kernel: pass.N2},
				{ID: sched.N3, Kernel: pass.N3},
			},
		}
		rn.env.partitionStreams = int64(1<<bits) * chunkBytes
		if nres, err := exec.Run(series, sched.Uniform(0.5, 3)); err == nil {
			out.partition = cost.ProfileResult(nres, n)
		}
	}
	return out
}

// coarseProfile synthesizes the single-step profile of the PHJ-PL' pair
// join from per-tuple build and probe profiles: one pair's work is the sum
// of its tuples' per-step work.
func coarseProfile(build, probe cost.SeriesProfile, rPerPair, sPerPair float64) cost.SeriesProfile {
	var p cost.StepProfile
	p.ID = sched.P3
	accum := func(sp cost.SeriesProfile, mult float64) {
		for _, st := range sp.Steps {
			p.InstrPerItem += st.InstrPerItem * mult
			p.SeqBytesPerItem += st.SeqBytesPerItem * mult
			for reg := range st.RandPerItem {
				p.RandPerItem[reg] += st.RandPerItem[reg] * mult
			}
		}
	}
	accum(build, rPerPair)
	accum(probe, sPerPair)
	return cost.SeriesProfile{Name: "pairjoin", Steps: []cost.StepProfile{p}}
}
