package core

import (
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// StreamMaterialize is the streamed pipeline hand-off between two Exec
// instances: it produces R ⋈ S directly into the buffer that becomes the
// next step's build relation, at morsel granularity on the shared pool,
// instead of the single-stream rel.JoinMaterialize pass through the
// catalog. counts is the build side's key → multiplicity table
// (rel.KeyCounts of the step's build input — the same per-key state the
// step's hash table held); s is the step's probe side, whose order defines
// the output order.
//
// The construction reuses the pool's ordered-reduction machinery so the
// output is bit-identical to rel.JoinMaterialize for any worker count:
//
//  1. Count pass: the probe side is split into the fixed sched.MorselItems
//     grid and each morsel sums its matches (MapRangeCounts — a pure
//     function of the morsel, merged in grid order).
//  2. An exclusive prefix sum over the per-morsel counts, in grid order,
//     places every morsel's output slice.
//  3. Fill pass: each morsel writes its matches — probe order, a probe
//     tuple's matches in build-tuple order, RIDs dense from the morsel's
//     offset — into its disjoint slice of the output concurrently.
//
// Scheduling decides only which goroutine fills which morsel when; the
// grid, the offsets and every written value are pure functions of the
// inputs. A zero match count returns the zero relation (nil columns),
// exactly as rel.JoinMaterialize does.
//
// The caller must ensure the match count fits a relation (≤ MaxInt32
// tuples); pipeline execution checks the step's exact Matches before
// producing. A nil pool runs the same grid inline.
func StreamMaterialize(pool *sched.Pool, counts map[int32]int32, s rel.Relation) rel.Relation {
	n := s.Len()
	if n == 0 || len(counts) == 0 {
		return rel.Relation{}
	}
	perMorsel := pool.MapRangeCounts(0, n, func(mlo, mhi int) int64 {
		var c int64
		for _, k := range s.Keys[mlo:mhi] {
			c += int64(counts[k])
		}
		return c
	})
	offsets := make([]int64, len(perMorsel))
	var total int64
	for i, c := range perMorsel {
		offsets[i] = total
		total += c
	}
	if total == 0 {
		return rel.Relation{}
	}
	out := rel.Relation{
		RIDs: make([]int32, total),
		Keys: make([]int32, total),
	}
	pool.ForEach(len(perMorsel), func(i int) {
		mlo := i * sched.MorselItems
		mhi := mlo + sched.MorselItems
		if mhi > n {
			mhi = n
		}
		at := offsets[i]
		for _, k := range s.Keys[mlo:mhi] {
			for c := counts[k]; c > 0; c-- {
				out.RIDs[at] = int32(at)
				out.Keys[at] = k
				at++
			}
		}
	})
	return out
}
