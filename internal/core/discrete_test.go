package core

import (
	"testing"

	"apujoin/internal/rel"
)

func TestDiscreteShape(t *testing.T) {
	g := rel.Gen{N: 1 << 18, Seed: 1}
	r := g.Build()
	s := rel.Gen{N: 1 << 18, Seed: 2}.Probe(r, 1.0)
	want := rel.NaiveJoinCount(r, s)
	for _, algo := range []Algo{SHJ, PHJ} {
		for _, sc := range []Scheme{DD, OL} {
			for _, arch := range []Arch{Discrete, Coupled} {
				res, err := Run(r, s, Options{Algo: algo, Scheme: sc, Arch: arch, Delta: 0.05})
				if err != nil {
					t.Fatalf("%v %v %v: %v", algo, sc, arch, err)
				}
				if res.Matches != want {
					t.Errorf("%v %v %v: matches %d want %d", algo, sc, arch, res.Matches, want)
				}
				t.Logf("%v-%v %-8v total=%6.1fms transfer=%5.2fms merge=%5.2fms part=%5.1f build=%5.1f probe=%5.1f",
					algo, sc, arch, res.TotalNS/1e6, res.TransferNS/1e6, res.MergeNS/1e6,
					res.PartitionNS/1e6, res.BuildNS/1e6, res.ProbeNS/1e6)
			}
		}
	}
}
