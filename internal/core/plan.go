package core

import (
	"fmt"

	"apujoin/internal/cost"
	"apujoin/internal/radix"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// Plan is a precomputed execution plan: the algorithm and co-processing
// scheme the planner chose, the pilot-calibrated step profiles, and the
// optimized workload ratios. Injecting one via Options.Plan makes Run skip
// the pilot profiling run (the plan's profiles stand in for it) and the
// per-phase ratio searches (the plan's ratios are applied as fixed
// overrides), which removes plan-time cost from repeated queries of the
// same workload shape — the amortization internal/plan caches plans for.
//
// A Plan is immutable after BuildPlan returns and safe to share across any
// number of concurrent runs. The same plan injected into the same query
// always yields bit-identical results: every field consumed by Run is a
// deterministic input, never mutated.
type Plan struct {
	Algo   Algo
	Scheme Scheme
	Arch   Arch

	// Profiles from the planning pilot, reused by every run under this
	// plan in place of its own pilot (the cached "AMD APP Profiler" output
	// of the paper's Sec. 4.2).
	Partition cost.SeriesProfile
	Build     cost.SeriesProfile
	Probe     cost.SeriesProfile

	// Optimized workload ratios, applied by Run through the Fixed*
	// override path. PartitionRatios applies to every radix pass (PHJ
	// only); CoarsePL leaves Build/ProbeRatios nil — its single pair-join
	// ratio is recomputed from the plan's profiles at run time, which is
	// deterministic and cheap (one 1-D grid search).
	PartitionRatios sched.Ratios
	BuildRatios     sched.Ratios
	ProbeRatios     sched.Ratios

	// PredictedNS is the cost model's end-to-end estimate for this plan;
	// the per-phase fields split it. The service layer reports
	// predicted-vs-simulated error from it.
	PredictedNS          float64
	PredictedPartitionNS float64
	PredictedBuildNS     float64
	PredictedProbeNS     float64
}

// String renders the plan headline, e.g. "PHJ-PL (predicted 12.3 ms)".
func (p *Plan) String() string {
	return fmt.Sprintf("%s-%s (predicted %.3f ms)", p.Algo, p.Scheme, p.PredictedNS/1e6)
}

// applyPlan folds an injected plan into the options: algorithm, scheme and
// the precomputed ratios as fixed overrides (caller-set Fixed* fields win,
// matching the cost-model-evaluation experiments that sweep them).
func (o *Options) applyPlan() {
	p := o.Plan
	o.Algo = p.Algo
	o.Scheme = p.Scheme
	o.Arch = p.Arch
	if len(p.PartitionRatios) > 0 && o.FixedPartition == nil {
		o.FixedPartition = p.PartitionRatios
	}
	if len(p.BuildRatios) > 0 && o.FixedBuild == nil {
		o.FixedBuild = p.BuildRatios
	}
	if len(p.ProbeRatios) > 0 && o.FixedProbe == nil {
		o.FixedProbe = p.ProbeRatios
	}
}

// autoSchemes lists the schemes the planner considers for one algorithm:
// every scheme the cost model covers and the configuration permits.
// BasicUnit is excluded — its chunk scheduling is dynamic and the model
// deliberately does not predict it — and PL requires the shared hash table
// (infeasible with separate tables / on the discrete architecture).
func autoSchemes(algo Algo, opt Options) []Scheme {
	schemes := []Scheme{CPUOnly, GPUOnly, OL, DD}
	if !opt.SeparateTables {
		schemes = append(schemes, PL)
	}
	if algo == PHJ {
		schemes = append(schemes, CoarsePL)
	}
	return schemes
}

// BuildPlan evaluates both join algorithms under every applicable
// co-processing scheme for the given workload and returns the plan the
// cost model predicts cheapest. One pilot profiling run (the expensive
// part) serves every candidate: the build and probe profiles are
// algorithm-independent by construction of runPilot, and the partition
// profile only matters to the PHJ candidates. Candidates are evaluated in
// a fixed order with strict improvement, so ties resolve deterministically
// and the same workload always yields the same plan.
func BuildPlan(r, s rel.Relation, opt Options) (*Plan, error) {
	opt.Plan = nil
	opt.SetDefaults()
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan build relation: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: plan probe relation: %w", err)
	}
	if r.Len() == 0 || s.Len() == 0 {
		return nil, fmt.Errorf("core: cannot plan an empty relation (|R|=%d, |S|=%d)", r.Len(), s.Len())
	}

	// The pilot is run once with Algo PHJ so the partition profile is
	// produced too; its build/probe profiles are identical to an SHJ
	// pilot's (runPilot profiles build and probe on an unpartitioned
	// sample regardless of the algorithm).
	popt := opt
	popt.Algo = PHJ
	prof := runPilot(r, s, popt)

	var best *Plan
	for _, algo := range []Algo{SHJ, PHJ} {
		for _, scheme := range autoSchemes(algo, opt) {
			cand := planCandidate(r, s, opt, algo, scheme, prof)
			if best == nil || cand.PredictedNS < best.PredictedNS {
				best = cand
			}
		}
	}
	return best, nil
}

// planCandidate prices one (algorithm, scheme) alternative: it rebuilds
// the run's memory environment statically — radix fan-out, estimated
// hash-table residency, partition-chunk working sets — and runs the same
// per-scheme ratio optimizers chooseRatios would, yielding the ratios the
// plan will fix and the model's end-to-end estimate.
func planCandidate(r, s rel.Relation, opt Options, algo Algo, scheme Scheme, prof profiles) *Plan {
	opt.Algo, opt.Scheme = algo, scheme
	env := &envState{
		cache:           opt.Cache,
		parts:           1,
		shared:          !opt.SeparateTables,
		scratchPressure: 512 << 10,
	}
	model := &cost.Model{CPU: opt.CPU, GPU: opt.GPU, Env: env.envFor}
	pl := &Plan{
		Algo: algo, Scheme: scheme, Arch: opt.Arch,
		Partition: prof.partition, Build: prof.build, Probe: prof.probe,
	}

	nBuckets := ceilPow2(r.Len())
	if algo == PHJ {
		rp := radix.PlanFor(r.Len(), opt.RadixTargetBytes)
		parts := rp.Partitions()
		avg := r.Len() / parts
		if avg < 1 {
			avg = 1
		}
		nBuckets = parts * ceilPow2(avg)
		env.parts = parts

		// Ratios are chosen once, on the first pass's fan-out over |R|
		// items, exactly as a FixedPartition override applies one ratio
		// vector to every pass; the prediction then prices every pass of
		// both relations at those ratios under its own chunk working set.
		env.partitionStreams = int64(1<<rp.BitsPerPass[0]) * chunkBytes
		steps := len(prof.partition.Steps)
		ratios, _ := schemeRatios(model, opt, prof.partition, r.Len(), steps)
		pl.PartitionRatios = ratios
		for _, bits := range rp.BitsPerPass {
			env.partitionStreams = int64(1<<bits) * chunkBytes
			pl.PredictedPartitionNS += model.EstimateNS(prof.partition, r.Len(), ratios)
			pl.PredictedPartitionNS += model.EstimateNS(prof.partition, s.Len(), ratios)
		}
		env.partitionStreams = 0
	}
	env.tableBytes = estimateTableBytes(r.Len(), nBuckets)

	if scheme == CoarsePL {
		parts := env.parts
		env.coarsePairBytes = (r.Bytes() + s.Bytes() + env.tableBytes) / int64(parts)
		cp := coarseProfile(prof.build, prof.probe,
			float64(r.Len())/float64(parts), float64(s.Len())/float64(parts))
		_, est := model.OptimizeDD(cp, parts, opt.Delta)
		// The pair joins cover build and probe; attribute by tuple share
		// as coarseJoin does.
		fr := float64(r.Len()) / float64(r.Len()+s.Len())
		pl.PredictedBuildNS = est * fr
		pl.PredictedProbeNS = est * (1 - fr)
	} else {
		pl.BuildRatios, pl.PredictedBuildNS =
			schemeRatios(model, opt, prof.build, r.Len(), len(prof.build.Steps))
		pl.ProbeRatios, pl.PredictedProbeNS =
			schemeRatios(model, opt, prof.probe, s.Len(), len(prof.probe.Steps))
	}
	pl.PredictedNS = pl.PredictedPartitionNS + pl.PredictedBuildNS + pl.PredictedProbeNS
	return pl
}
