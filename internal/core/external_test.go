package core

import (
	"testing"

	"apujoin/internal/mem"
	"apujoin/internal/rel"
)

func TestExternalJoin(t *testing.T) {
	g := rel.Gen{N: 1 << 18, Seed: 7}
	r := g.Build()
	s := rel.Gen{N: 1 << 18, Seed: 8}.Probe(r, 1.0)
	want := rel.NaiveJoinCount(r, s)

	// Shrink the zero-copy buffer so the data "exceeds" it.
	zc := mem.NewZeroCopy()
	zc.Capacity = 1 << 20 // 1 MB: forces external path
	opt := Options{Algo: SHJ, Scheme: PL, Delta: 0.1, PilotItems: 4096, ZeroCopy: zc}
	if _, err := Run(r, s, opt); err != ErrExceedsZeroCopy {
		t.Fatalf("expected ErrExceedsZeroCopy, got %v", err)
	}
	res, err := RunExternal(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Errorf("matches %d want %d", res.Matches, want)
	}
	t.Logf("pairs=%d chunk=%d part=%.1fms join=%.1fms copy=%.1fms total=%.1fms",
		res.Pairs, res.ChunkTuples, res.PartitionNS/1e6, res.JoinNS/1e6, res.DataCopyNS/1e6, res.TotalNS/1e6)
}
