package core

import (
	"math"
	"testing"

	"apujoin/internal/alloc"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

func testData(n int) (rel.Relation, rel.Relation) {
	r := rel.Gen{N: n, Seed: 101}.Build()
	s := rel.Gen{N: n, Seed: 102}.Probe(r, 1.0)
	return r, s
}

func TestOptionsValidation(t *testing.T) {
	r, s := testData(4096)
	if _, err := Run(r, s, Options{Algo: SHJ, Scheme: CoarsePL}); err == nil {
		t.Error("CoarsePL with SHJ accepted")
	}
	if _, err := Run(r, s, Options{Algo: SHJ, Scheme: PL, SeparateTables: true}); err == nil {
		t.Error("PL with separate tables accepted")
	}
	if _, err := Run(r, s, Options{Algo: SHJ, Scheme: PL, Arch: Discrete}); err == nil {
		t.Error("PL on the discrete architecture accepted (paper: infeasible)")
	}
}

func TestFixedRatiosRespected(t *testing.T) {
	r, s := testData(20000)
	opt := Options{Algo: SHJ, Scheme: DD, PilotItems: 4096}
	opt.FixedBuild = sched.Ratios{0.7}
	opt.FixedProbe = sched.Ratios{0.1, 0.2, 0.3, 0.4}
	res, err := Run(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res.Ratios.Build {
		if rr != 0.7 {
			t.Fatalf("fixed build ratio not applied: %v", res.Ratios.Build)
		}
	}
	want := sched.Ratios{0.1, 0.2, 0.3, 0.4}
	for i, rr := range res.Ratios.Probe {
		if rr != want[i] {
			t.Fatalf("fixed probe ratios not applied: %v", res.Ratios.Probe)
		}
	}
}

func TestSharedTableBeatsSeparate(t *testing.T) {
	// Fig. 10's direction: shared hash table wins the build under DD.
	r, s := testData(1 << 18)
	var times [2]float64
	for i, sep := range []bool{false, true} {
		opt := Options{Algo: SHJ, Scheme: DD, SeparateTables: sep, Delta: 0.1, PilotItems: 8192}
		res, err := Run(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = res.BuildNS + res.MergeNS
	}
	if times[0] >= times[1] {
		t.Errorf("shared build+merge %.2fms not better than separate %.2fms", times[0]/1e6, times[1]/1e6)
	}
}

func TestOptimizedAllocatorBeatsBasic(t *testing.T) {
	// Fig. 12's direction, double-digit improvement.
	r, s := testData(1 << 17)
	var times [2]float64
	for i, strat := range []alloc.Strategy{alloc.Basic, alloc.Block} {
		opt := Options{Algo: SHJ, Scheme: DD, Delta: 0.1, PilotItems: 8192}
		opt.Alloc = alloc.Config{Strategy: strat, BlockBytes: alloc.DefaultBlockBytes}
		res, err := Run(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = res.TotalNS
	}
	imp := (times[0] - times[1]) / times[0]
	if imp < 0.1 {
		t.Errorf("optimized allocator improvement only %.0f%% (paper: up to 36-39%%)", imp*100)
	}
}

func TestCostModelGuidesDDNearMeasuredOptimum(t *testing.T) {
	// Sec. 5.3's point: the ratio the model picks must measure within a
	// few percent of the best fixed ratio found by exhaustive measurement.
	r, s := testData(1 << 16)
	base := Options{Algo: SHJ, Scheme: DD, Delta: 0.1, PilotItems: 8192}

	chosen, err := Run(r, s, base)
	if err != nil {
		t.Fatal(err)
	}

	best := math.Inf(1)
	for ratio := 0.0; ratio <= 1.0; ratio += 0.1 {
		opt := base
		opt.FixedBuild = sched.Ratios{ratio}
		opt.FixedProbe = sched.Ratios{ratio}
		res, err := Run(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalNS < best {
			best = res.TotalNS
		}
	}
	if chosen.TotalNS > best*1.10 {
		t.Errorf("model-chosen DD time %.2fms more than 10%% above measured optimum %.2fms",
			chosen.TotalNS/1e6, best/1e6)
	}
}

func TestEstimateBelowMeasuredButClose(t *testing.T) {
	// The model excludes lock contention, so estimated ≤ measured with a
	// modest gap for SHJ (paper: <15% in most cases).
	r, s := testData(1 << 18)
	res, err := Run(r, s, Options{Algo: SHJ, Scheme: DD, Delta: 0.1, PilotItems: 8192})
	if err != nil {
		t.Fatal(err)
	}
	meas := res.BuildNS + res.ProbeNS
	if res.EstimatedNS > meas*1.05 {
		t.Errorf("estimate %.2fms above measured %.2fms", res.EstimatedNS/1e6, meas/1e6)
	}
	if res.EstimatedNS < meas*0.5 {
		t.Errorf("estimate %.2fms less than half of measured %.2fms", res.EstimatedNS/1e6, meas/1e6)
	}
}

func TestLockOverheadGrowsWithBasicAllocator(t *testing.T) {
	r, s := testData(1 << 16)
	lock := func(strat alloc.Strategy) float64 {
		opt := Options{Algo: SHJ, Scheme: DD, Delta: 0.1, PilotItems: 4096}
		opt.Alloc = alloc.Config{Strategy: strat, BlockBytes: 2048}
		res, err := Run(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.LockOverheadNS
	}
	if lock(alloc.Basic) <= lock(alloc.Block) {
		t.Error("basic allocator should show larger lock overhead")
	}
}

func TestCoarsePLHasWorseCacheBehaviour(t *testing.T) {
	// Table 3's direction: PHJ-PL' misses more and runs slower.
	r, s := testData(1 << 18)
	var miss [2]float64
	var tm [2]float64
	for i, scheme := range []Scheme{PL, CoarsePL} {
		res, err := Run(r, s, Options{Algo: PHJ, Scheme: scheme, Delta: 0.1, PilotItems: 8192})
		if err != nil {
			t.Fatal(err)
		}
		miss[i] = res.Cache.MissRatio()
		tm[i] = res.TotalNS
	}
	if miss[1] <= miss[0] {
		t.Errorf("PHJ-PL' miss ratio %.2f not above PHJ-PL %.2f", miss[1], miss[0])
	}
	if tm[1] <= tm[0] {
		t.Errorf("PHJ-PL' time %.2fms not above PHJ-PL %.2fms", tm[1]/1e6, tm[0]/1e6)
	}
}

func TestZeroCopyBufferReleasedBetweenRuns(t *testing.T) {
	r, s := testData(20000)
	opt := Options{Algo: SHJ, Scheme: DD, PilotItems: 4096}
	opt.SetDefaults()
	for i := 0; i < 3; i++ {
		if _, err := Run(r, s, opt); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if opt.ZeroCopy.Used() != 0 {
		t.Fatalf("zero-copy buffer leaked %d bytes", opt.ZeroCopy.Used())
	}
}

func TestStepTimingsRecorded(t *testing.T) {
	r, s := testData(20000)
	res, err := Run(r, s, Options{Algo: PHJ, Scheme: DD, Delta: 0.25, PilotItems: 4096})
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, st := range res.Steps {
		phases[st.Phase]++
	}
	if phases["build"] != 4 || phases["probe"] != 4 {
		t.Fatalf("step timings incomplete: %v", phases)
	}
	if phases["partition"] < 3 {
		t.Fatalf("partition step timings missing: %v", phases)
	}
}

func TestGroupingPreservesResults(t *testing.T) {
	r, s := testData(1 << 16)
	want := rel.NaiveJoinCount(r, s)
	for _, algo := range []Algo{SHJ, PHJ} {
		res, err := Run(r, s, Options{Algo: algo, Scheme: PL, Grouping: true, Groups: 16, Delta: 0.25, PilotItems: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Errorf("%v grouped: matches %d want %d", algo, res.Matches, want)
		}
	}
}

func TestMaterializeOffStillCounts(t *testing.T) {
	r, s := testData(20000)
	want := rel.NaiveJoinCount(r, s)
	res, err := Run(r, s, Options{Algo: SHJ, Scheme: DD, CountOnly: true, PilotItems: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("matches %d want %d without materialization", res.Matches, want)
	}
}

func TestMonteCarloPhaseShape(t *testing.T) {
	r, s := testData(1 << 15)
	opt := Options{Algo: SHJ, Scheme: PL, Delta: 0.1, PilotItems: 4096}
	samples, ours, err := MonteCarloPhase(r, s, opt, "build", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 100 {
		t.Fatalf("samples %d", len(samples))
	}
	// "Ours" must land at the far left of the CDF (paper Fig. 9).
	if ours > samples[len(samples)/10] {
		t.Errorf("model choice %.2fms worse than the 10th percentile %.2fms", ours/1e6, samples[len(samples)/10]/1e6)
	}
	if _, _, err := MonteCarloPhase(r, s, opt, "bogus", 10, 1); err == nil {
		t.Error("bogus phase accepted")
	}
}
