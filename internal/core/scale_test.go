package core

import (
	"testing"

	"apujoin/internal/rel"
)

func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	g := rel.Gen{N: 1 << 20, Seed: 1}
	r := g.Build()
	s := rel.Gen{N: 1 << 20, Seed: 2}.Probe(r, 1.0)
	for _, algo := range []Algo{SHJ, PHJ} {
		for _, sc := range []Scheme{CPUOnly, GPUOnly, DD, PL, BasicUnit} {
			res, err := Run(r, s, Options{Algo: algo, Scheme: sc, Delta: 0.05})
			if err != nil {
				t.Fatalf("%v %v: %v", algo, sc, err)
			}
			t.Logf("%v %-9v total=%6.1fms est=%6.1fms part=%6.1f build=%6.1f probe=%6.1f buildR=%v probeR=%v",
				algo, sc, res.TotalNS/1e6, res.EstimatedNS/1e6, res.PartitionNS/1e6, res.BuildNS/1e6, res.ProbeNS/1e6,
				res.Ratios.Build, res.Ratios.Probe)
		}
	}
	res, _ := Run(r, s, Options{Algo: PHJ, Scheme: CoarsePL, Delta: 0.05})
	t.Logf("PHJ PL'       total=%6.1fms cacheMiss=%.0f%%", res.TotalNS/1e6, res.Cache.MissRatio()*100)
}
