package core

import (
	"apujoin/internal/device"
	"apujoin/internal/mem"
	"apujoin/internal/sched"
)

// envState derives the per-step cache environment both the execution
// simulator and the cost model consult, so estimated and measured numbers
// see the same memory system.
type envState struct {
	cache mem.CacheModel

	// tableBytes is the (estimated, then actual) resident size of the hash
	// table; parts is the number of radix partitions localizing accesses
	// (1 for SHJ).
	tableBytes int64
	parts      int
	shared     bool

	// partitionStreams is the open-partition working set of the current
	// radix pass: fan-out × one active chunk.
	partitionStreams int64

	// coarsePairBytes, when non-zero, marks the coarse-grained PHJ-PL'
	// kernel: every hardware lane holds a private partition pair, so the
	// per-device working set is lanes × pair bytes (Table 3's cache
	// penalty).
	coarsePairBytes int64

	// scratchPressure models the cache pressure of the streaming
	// intermediate arrays.
	scratchPressure int64
}

// envFor implements sched.EnvFor.
func (e *envState) envFor(id sched.StepID, d *device.Device) device.Env {
	var env device.Env

	// Input columns are streamed; the rare random touch usually hits a
	// prefetched line.
	env.HitRatio[device.RegionInput] = 0.95

	// Hash table: working set localized by partitioning, shared or
	// duplicated across devices.
	ws := e.tableBytes
	if e.parts > 1 {
		ws /= int64(e.parts)
	}
	if e.coarsePairBytes > 0 {
		// PHJ-PL': each lane owns a private pair table.
		ws = e.coarsePairBytes * int64(d.Cores)
		env.HitRatio[device.RegionHashTable] = e.cache.HitRatio(ws, e.scratchPressure)
	} else if e.shared {
		env.HitRatio[device.RegionHashTable] = e.cache.SharedHitRatio(ws, e.scratchPressure)
	} else {
		env.HitRatio[device.RegionHashTable] = e.cache.SeparateHitRatio(ws, e.scratchPressure)
	}

	// Partition appends: the active window is one chunk per open
	// partition.
	env.HitRatio[device.RegionPartition] = e.cache.HitRatio(e.partitionStreams, e.scratchPressure)

	// Output appends are block-sequential.
	env.HitRatio[device.RegionOutput] = 0.9

	// Intermediate arrays are streamed with good locality.
	env.HitRatio[device.RegionScratch] = 0.8
	return env
}

// estimateTableBytes predicts the resident hash-table size for |R| build
// tuples before the build runs: headers + one key node per distinct key
// (≈|R| under uniform keys) + one rid node per tuple.
func estimateTableBytes(buildTuples, nBuckets int) int64 {
	return int64(nBuckets)*8 + int64(buildTuples)*(3+2)*4
}

// missStats converts executed series results into modeled L2 accesses and
// misses using the same environment, aggregating across devices.
func (e *envState) missStats(res sched.Result, cpu, gpu *device.Device) CacheStats {
	var cs CacheStats
	for _, st := range res.Steps {
		for reg := device.Region(0); reg < device.NumRegions; reg++ {
			for _, da := range []struct {
				acct device.Acct
				dev  *device.Device
			}{{st.CPUAcct, cpu}, {st.GPUAcct, gpu}} {
				n := da.acct.Rand[reg]
				if n == 0 {
					continue
				}
				hit := e.envFor(st.ID, da.dev).HitRatio[reg]
				cs.Accesses += n
				cs.Misses += int64((1 - hit) * float64(n))
			}
		}
	}
	return cs
}
