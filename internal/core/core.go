// Package core implements the paper's hash join variants on the simulated
// coupled CPU-GPU architecture: the simple hash join (SHJ) and the radix
// partitioned hash join (PHJ), each under the co-processing schemes of
// Sec. 3.2 — CPU-only, GPU-only, off-loading (OL), data dividing (DD),
// pipelined execution (PL) — plus the appendix's BasicUnit baseline and the
// coarse-grained step definition PHJ-PL' of Sec. 3.3.
//
// A Run executes the real join (the match count is exact and verified
// against a naive join in the tests) while the device model produces the
// simulated elapsed times; the cost model picks the workload ratios.
package core

import (
	"fmt"
	"strings"

	"apujoin/internal/alloc"
	"apujoin/internal/cost"
	"apujoin/internal/device"
	"apujoin/internal/mem"
	"apujoin/internal/sched"
)

// Algo selects the join algorithm.
type Algo int

const (
	// SHJ is the simple (no partition) hash join.
	SHJ Algo = iota
	// PHJ is the radix-partitioned hash join.
	PHJ
)

// String returns "SHJ" or "PHJ".
func (a Algo) String() string {
	if a == SHJ {
		return "SHJ"
	}
	return "PHJ"
}

// Scheme selects the co-processing scheme.
type Scheme int

const (
	// CPUOnly runs every step on the CPU.
	CPUOnly Scheme = iota
	// GPUOnly runs every step on the GPU.
	GPUOnly
	// OL off-loads each step entirely to the faster device.
	OL
	// DD divides every step's tuples with one ratio per phase.
	DD
	// PL picks an individual ratio per fine-grained step.
	PL
	// BasicUnit dynamically assigns coarse chunks to free devices
	// (appendix baseline).
	BasicUnit
	// CoarsePL is the coarse-grained step definition PHJ-PL' (Sec. 3.3):
	// after partitioning, one work item joins a whole partition pair with
	// its own private hash table. Only valid with Algo PHJ.
	CoarsePL
)

var schemeNames = [...]string{"CPU-only", "GPU-only", "OL", "DD", "PL", "BasicUnit", "PL'"}

// String returns the paper's scheme name.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Arch selects the architecture to run on.
type Arch int

const (
	// Coupled is the APU: shared memory, shared L2, no bus.
	Coupled Arch = iota
	// Discrete emulates a discrete CPU-GPU system by injecting PCI-e
	// transfer delays and forcing separate hash tables, exactly as the
	// paper emulates it (Sec. 5.1).
	Discrete
)

// String returns "coupled" or "discrete".
func (a Arch) String() string {
	if a == Coupled {
		return "coupled"
	}
	return "discrete"
}

// ParseAlgo parses the CLI/API name of an algorithm; the empty string
// selects SHJ. Shared by cmd/apujoin flags and the apujoind request
// decoder so the accepted vocabulary cannot drift.
func ParseAlgo(s string) (Algo, error) {
	switch strings.ToLower(s) {
	case "", "shj":
		return SHJ, nil
	case "phj":
		return PHJ, nil
	default:
		return 0, fmt.Errorf("core: unknown algo %q (shj | phj)", s)
	}
}

// ParseScheme parses the CLI/API name of a co-processing scheme; the empty
// string selects PL.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "cpu":
		return CPUOnly, nil
	case "gpu":
		return GPUOnly, nil
	case "ol":
		return OL, nil
	case "dd":
		return DD, nil
	case "", "pl":
		return PL, nil
	case "basicunit":
		return BasicUnit, nil
	case "coarsepl":
		return CoarsePL, nil
	default:
		return 0, fmt.Errorf("core: unknown scheme %q (cpu | gpu | ol | dd | pl | basicunit | coarsepl)", s)
	}
}

// ParseArch parses the CLI/API name of an architecture; the empty string
// selects Coupled.
func ParseArch(s string) (Arch, error) {
	switch strings.ToLower(s) {
	case "", "coupled":
		return Coupled, nil
	case "discrete":
		return Discrete, nil
	default:
		return 0, fmt.Errorf("core: unknown arch %q (coupled | discrete)", s)
	}
}

// Options configures a join run. The zero value plus R and S is a valid
// coupled-architecture SHJ-PL configuration; SetDefaults fills the rest.
type Options struct {
	Algo   Algo
	Scheme Scheme
	Arch   Arch

	// Plan, when non-nil, is a precomputed execution plan (BuildPlan or
	// the internal/plan cache): it overrides Algo/Scheme/Arch, supplies
	// the pilot profiles so Run skips its own pilot, and fixes the
	// workload ratios so the per-phase grid searches are skipped too.
	// Caller-set Fixed* overrides still win over the plan's ratios. A
	// plan is read-only to Run and safe to share across concurrent runs.
	Plan *Plan

	// SeparateTables builds one hash table per device and merges after the
	// build phase. The default is the shared table on the coupled
	// architecture; Discrete always uses separate tables (the devices have
	// separate memories there).
	SeparateTables bool

	// Workers is the number of host goroutines the morsel-driven runtime
	// uses to execute kernel ranges concurrently; 0 selects GOMAXPROCS and
	// negative values are rejected by Validate. The work decomposition is
	// independent of the worker count, so match counts and every simulated
	// time are identical for any Workers value — parallelism changes host
	// wall-clock only. Ignored when Pool is set.
	Workers int

	// Pool, when non-nil, is a resident worker pool shared across runs —
	// the multi-query service layer (internal/service) injects one so
	// concurrent queries draw from the same fixed set of host workers.
	// When nil, the run creates a transient pool of Workers goroutines and
	// closes it on return. Sharing a pool never changes results: the work
	// decomposition is per-query and worker-independent.
	Pool *sched.Pool

	// Alloc configures the software memory allocator (Sec. 3.3).
	Alloc alloc.Config

	// Grouping enables the workload-divergence grouping optimization with
	// Groups workload levels.
	Grouping bool
	Groups   int

	// Delta is the ratio-grid granularity δ (default 0.02). FullGrid
	// forces the paper's exhaustive search instead of the refined search.
	Delta    float64
	FullGrid bool

	// RadixTargetBytes is the partition-pair cache budget the pass planner
	// aims for (PHJ only).
	RadixTargetBytes int64

	// CountOnly skips materializing result pairs and only counts matches.
	// The default materializes each matching rid pair through the software
	// allocator, as the paper's implementation does ("simply outputs the
	// matching rid pair").
	CountOnly bool

	// PilotItems is the sample size of the profiling pilot run.
	PilotItems int

	// BasicUnit chunk sizes (tuples), tuned per device.
	CPUChunk, GPUChunk int

	// Fixed*, when non-nil, override the scheme's ratio choice for that
	// phase — the knob the cost-model-evaluation experiments sweep
	// (Figs. 7 and 8). FixedPartition applies to every radix pass.
	FixedPartition sched.Ratios
	FixedBuild     sched.Ratios
	FixedProbe     sched.Ratios

	// HashShift skips the low hash bits an outer partitioning already
	// consumed; it is set by RunExternal for the per-pair sub-joins.
	HashShift uint

	// Device profiles; default the A8-3870K.
	CPU, GPU device.Profile

	// Cache is the shared L2 model.
	Cache mem.CacheModel

	// ZeroCopy is the zero-copy buffer tracking; nil allocates a fresh
	// 512 MB buffer per run.
	ZeroCopy *mem.ZeroCopy
}

// SetDefaults fills unset fields with the paper's defaults.
func (o *Options) SetDefaults() {
	if o.Groups <= 0 {
		o.Groups = 32
	}
	if o.Delta <= 0 {
		o.Delta = cost.DefaultDelta
	}
	if o.RadixTargetBytes <= 0 {
		o.RadixTargetBytes = mem.DefaultL2Bytes / 8
	}
	if o.PilotItems <= 0 {
		o.PilotItems = 1 << 16
	}
	if o.CPUChunk <= 0 {
		o.CPUChunk = 1 << 14
	}
	if o.GPUChunk <= 0 {
		o.GPUChunk = 1 << 16
	}
	if o.CPU.Cores == 0 {
		o.CPU = device.APUCPU()
	}
	if o.GPU.Cores == 0 {
		o.GPU = device.APUGPU()
	}
	if o.Cache.SizeBytes == 0 {
		o.Cache = mem.NewCacheModel()
	}
	if o.Alloc.BlockBytes == 0 {
		o.Alloc.BlockBytes = alloc.DefaultBlockBytes
	}
	if o.ZeroCopy == nil {
		o.ZeroCopy = mem.NewZeroCopy()
	}
	if o.Arch == Discrete {
		// Separate device memories: a shared table is impossible.
		o.SeparateTables = true
	}
}

// Validate rejects inconsistent configurations.
func (o *Options) Validate() error {
	if o.Scheme == CoarsePL && o.Algo != PHJ {
		return fmt.Errorf("core: CoarsePL (PHJ-PL') requires Algo PHJ")
	}
	if o.Delta < 0 || o.Delta > 1 {
		return fmt.Errorf("core: delta %v out of (0,1]", o.Delta)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d (0 selects GOMAXPROCS)", o.Workers)
	}
	return nil
}

// Breakdown decomposes a join's simulated elapsed time by phase, matching
// the stacked bars of the paper's Figs. 3 and 15.
type Breakdown struct {
	PartitionNS float64
	BuildNS     float64
	ProbeNS     float64
	MergeNS     float64
	TransferNS  float64 // PCI-e, discrete architecture only
}

// TotalNS sums the breakdown.
func (b Breakdown) TotalNS() float64 {
	return b.PartitionNS + b.BuildNS + b.ProbeNS + b.MergeNS + b.TransferNS
}

// PhaseRatios records the workload ratios actually used.
type PhaseRatios struct {
	// Partition holds one ratio vector per radix pass (PHJ).
	Partition []sched.Ratios
	Build     sched.Ratios
	Probe     sched.Ratios
}

// CacheStats aggregates the modeled L2 behaviour of a run.
type CacheStats struct {
	Accesses int64
	Misses   int64
}

// MissRatio returns Misses/Accesses (0 when no accesses).
func (c CacheStats) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Result reports one join run.
type Result struct {
	Algo   Algo
	Scheme Scheme
	Arch   Arch

	// Matches is the exact number of matching (r,s) pairs.
	Matches int64

	Breakdown
	// TotalNS is the simulated elapsed time (sum of phase times; phases
	// are separated by barriers).
	TotalNS float64

	// EstimatedNS is the cost model's prediction at the chosen ratios
	// (0 for schemes the model does not cover, e.g. BasicUnit).
	EstimatedNS float64
	// LockOverheadNS is max(0, TotalNS−EstimatedNS), the paper's
	// back-of-the-envelope latch overhead (Sec. 5.4).
	LockOverheadNS float64

	// EstPartitionNS / EstBuildNS / EstProbeNS split EstimatedNS by phase.
	EstPartitionNS float64
	EstBuildNS     float64
	EstProbeNS     float64

	Ratios PhaseRatios
	Cache  CacheStats

	// Steps records the simulated per-step times of every executed series
	// (partition passes of R, then S, then build, then probe), feeding the
	// per-step unit cost and ratio reports (Figs. 4–6).
	Steps []StepTiming

	// Profiles give the calibrated per-step unit costs from the pilot.
	PartitionProfile cost.SeriesProfile
	BuildProfile     cost.SeriesProfile
	ProbeProfile     cost.SeriesProfile

	// BasicUnitShares holds the CPU share per phase for the BasicUnit
	// scheme (partition, build, probe order; SHJ omits partition).
	BasicUnitShares []float64

	// ZeroCopyBytes is the footprint charged to the zero-copy buffer.
	ZeroCopyBytes int64

	// SpilledPartitions, SpillBytes and SpillNS report hybrid-hash spill
	// activity attributed to this result: partitions whose inputs
	// round-tripped the simulated spill store, the bytes written, and the
	// simulated I/O time (already included in TotalNS). A plain in-memory
	// join leaves them zero; the service layer's spilled pipeline hand-off
	// fills them on the first step executed past the overflow.
	SpilledPartitions int64
	SpillBytes        int64
	SpillNS           float64

	// AllocStats aggregates software-allocator activity.
	AllocStats alloc.Stats
}

// StepTiming is the simulated timing of one executed step.
type StepTiming struct {
	Phase string
	ID    sched.StepID
	Items int
	Ratio float64
	// CPUNS/GPUNS are raw step times; the delays are the pipelined stalls
	// of Eqs. 4 and 5.
	CPUNS, GPUNS           float64
	DelayCPUNS, DelayGPUNS float64
}
