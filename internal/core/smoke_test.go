package core

import (
	"testing"

	"apujoin/internal/rel"
)

func TestSmoke(t *testing.T) {
	g := rel.Gen{N: 20000, Seed: 1}
	r := g.Build()
	s := rel.Gen{N: 30000, Seed: 2}.Probe(r, 0.8)
	want := rel.NaiveJoinCount(r, s)
	for _, algo := range []Algo{SHJ, PHJ} {
		for _, sc := range []Scheme{CPUOnly, GPUOnly, OL, DD, PL, BasicUnit} {
			opt := Options{Algo: algo, Scheme: sc, Delta: 0.1, PilotItems: 8192}
			res, err := Run(r, s, opt)
			if err != nil {
				t.Fatalf("%v %v: %v", algo, sc, err)
			}
			if res.Matches != want {
				t.Errorf("%v %v: matches %d want %d", algo, sc, res.Matches, want)
			}
			t.Logf("%v %-9v total=%.2fms est=%.2fms part=%.2f build=%.2f probe=%.2f ratios=%v", algo, sc,
				res.TotalNS/1e6, res.EstimatedNS/1e6, res.PartitionNS/1e6, res.BuildNS/1e6, res.ProbeNS/1e6, res.Ratios.Build)
		}
	}
	// CoarsePL
	res, err := Run(r, s, Options{Algo: PHJ, Scheme: CoarsePL, Delta: 0.1, PilotItems: 8192})
	if err != nil {
		t.Fatalf("coarse: %v", err)
	}
	if res.Matches != want {
		t.Errorf("coarse: matches %d want %d", res.Matches, want)
	}
	t.Logf("PHJ PL' total=%.2fms", res.TotalNS/1e6)
}
