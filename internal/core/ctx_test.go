package core

import (
	"context"
	"errors"
	"testing"

	"apujoin/internal/rel"
)

// TestRunCtxCancelled checks cancellation is honored on every executor
// path: the step-series executor (PL), the BasicUnit chunk loop, and the
// external-join chunk/pair loops.
func TestRunCtxCancelled(t *testing.T) {
	r := rel.Gen{N: 20000, Seed: 41}.Build()
	s := rel.Gen{N: 20000, Seed: 42}.Probe(r, 1.0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []Options{
		{Algo: PHJ, Scheme: PL},
		{Algo: SHJ, Scheme: BasicUnit},
	}
	for _, opt := range cases {
		opt.Delta = 0.25
		opt.PilotItems = 1024
		if _, err := RunCtx(ctx, r, s, opt); !errors.Is(err, context.Canceled) {
			t.Errorf("%v-%v: err %v, want context.Canceled", opt.Algo, opt.Scheme, err)
		}
	}

	ext := Options{Algo: SHJ, Scheme: PL, Delta: 0.25, PilotItems: 1024}
	ext.SetDefaults()
	ext.ZeroCopy.Capacity = 1 << 18
	if _, err := RunExternalCtx(ctx, r, s, ext); !errors.Is(err, context.Canceled) {
		t.Errorf("external: err %v, want context.Canceled", err)
	}
}
