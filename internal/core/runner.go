package core

import (
	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/htab"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// runner holds the state of one join execution: relations, tables, scratch
// arrays for the per-step intermediate results, and the device pair.
type runner struct {
	opt Options
	r   rel.Relation
	s   rel.Relation

	cpu *device.Device
	gpu *device.Device
	env *envState

	arena    *alloc.Arena // table nodes (CPU table when separate)
	arenaGPU *alloc.Arena // GPU table nodes when separate
	table    *htab.Table
	tableGPU *htab.Table // nil when shared
	merged   bool

	outArena *alloc.Arena
	out      htab.Out

	// Intermediate per-step arrays (the "intermediate results" PL trades
	// in): R-side for the build series, S-side for the probe series.
	bucketR, headR, nodeR, workR []int32
	bucketS, headS, nodeS, workS []int32

	// PHJ state.
	partIdxR, partIdxS []int32
	offsetsR, offsetsS []int32
	parts              int
	bucketsPerPart     int
	radixBits          uint
}

func newRunner(r, s rel.Relation, opt Options) *runner {
	rn := &runner{
		opt: opt,
		r:   r,
		s:   s,
		cpu: device.New(opt.CPU),
		gpu: device.New(opt.GPU),
	}
	nr, ns := r.Len(), s.Len()

	rn.arena = alloc.New(opt.Alloc, nr*6+64)
	if opt.SeparateTables {
		rn.arenaGPU = alloc.New(opt.Alloc, nr*3+64)
	}
	rn.outArena = alloc.New(opt.Alloc, 64)
	rn.out = htab.Out{Arena: rn.outArena, Materialize: !opt.CountOnly}

	rn.bucketR = make([]int32, nr)
	rn.headR = make([]int32, nr)
	rn.nodeR = make([]int32, nr)
	rn.workR = make([]int32, nr)
	rn.bucketS = make([]int32, ns)
	rn.headS = make([]int32, ns)
	rn.nodeS = make([]int32, ns)
	rn.workS = make([]int32, ns)

	rn.env = &envState{
		cache:           opt.Cache,
		parts:           1,
		shared:          !opt.SeparateTables,
		scratchPressure: 512 << 10, // streaming intermediates pollute ~0.5 MB
	}
	return rn
}

// makeTables creates the hash table(s). For SHJ the bucket count is the
// next power of two of |R| (load factor ≤ 1); for PHJ the segmented layout
// is parts × bucketsPerPart.
func (rn *runner) makeTables() {
	if rn.opt.Algo == PHJ {
		rn.table = htab.NewSeg(rn.parts, rn.bucketsPerPart, rn.opt.HashShift, rn.radixBits, rn.arena)
		if rn.opt.SeparateTables {
			rn.tableGPU = htab.NewSeg(rn.parts, rn.bucketsPerPart, rn.opt.HashShift, rn.radixBits, rn.arenaGPU)
		}
	} else {
		rn.table = htab.NewShifted(rn.r.Len(), rn.opt.HashShift, rn.arena)
		if rn.opt.SeparateTables {
			rn.tableGPU = htab.NewShifted(rn.r.Len(), rn.opt.HashShift, rn.arenaGPU)
		}
	}
	rn.env.tableBytes = estimateTableBytes(rn.r.Len(), rn.table.NBuckets())
}

// tableFor routes a kernel to the device's table: with separate tables the
// GPU builds its own; after the merge (or with a shared table) everyone
// sees one table.
func (rn *runner) tableFor(d *device.Device) *htab.Table {
	if rn.tableGPU != nil && !rn.merged && d.Kind == device.GPU {
		return rn.tableGPU
	}
	return rn.table
}

// grouping computes the grouped execution order for a divergent step on a
// SIMD device and the accounting of the grouping pass itself.
func (rn *runner) grouping(d *device.Device, work []int32, lo, hi int) ([]int32, device.Acct) {
	var a device.Acct
	if !rn.opt.Grouping || d.WavefrontSize <= 1 || hi-lo <= 1 {
		return nil, a
	}
	order := sched.GroupOrder(work, lo, hi, rn.opt.Groups)
	instr, seq, rnd := sched.GroupCostAcct(hi - lo)
	a.Instr = instr
	a.SeqBytes = seq
	a.Rand[device.RegionScratch] = rnd
	return order, a
}

// buildSeries returns the build step series (b1..b4) over R.
func (rn *runner) buildSeries() sched.Series {
	keys, rids := rn.r.Keys, rn.r.RIDs
	steps := []sched.Step{
		{
			ID: sched.B1, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				if rn.opt.Algo == PHJ {
					return rn.tableFor(d).B1Seg(d, keys, rn.partIdxR, rn.bucketR, lo, hi)
				}
				return rn.tableFor(d).B1(d, keys, rn.bucketR, lo, hi)
			},
		},
		{
			ID: sched.B2, OutBytesPerItem: 8,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				return rn.tableFor(d).B2(d, rn.bucketR, rn.headR, rn.workR, lo, hi)
			},
		},
		{
			ID: sched.B3, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				order, ga := rn.grouping(d, rn.workR, lo, hi)
				a := rn.tableFor(d).B3(d, keys, rn.bucketR, rn.nodeR, lo, hi, order)
				a.Add(ga)
				return a
			},
		},
		{
			ID: sched.B4, OutBytesPerItem: 0,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				return rn.tableFor(d).B4(d, rids, rn.nodeR, lo, hi)
			},
		},
	}
	return sched.Series{Name: "build", Items: rn.r.Len(), Steps: steps}
}

// probeSeries returns the probe step series (p1..p4) over S.
func (rn *runner) probeSeries() sched.Series {
	keys, rids := rn.s.Keys, rn.s.RIDs
	steps := []sched.Step{
		{
			ID: sched.P1, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				if rn.opt.Algo == PHJ {
					return rn.tableFor(d).P1Seg(d, keys, rn.partIdxS, rn.bucketS, lo, hi)
				}
				return rn.tableFor(d).P1(d, keys, rn.bucketS, lo, hi)
			},
		},
		{
			ID: sched.P2, OutBytesPerItem: 12,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				return rn.tableFor(d).P2(d, rn.bucketS, rn.headS, rn.workS, lo, hi)
			},
		},
		{
			ID: sched.P3, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				order, ga := rn.grouping(d, rn.workS, lo, hi)
				a := rn.tableFor(d).P3(d, keys, rn.headS, rn.nodeS, lo, hi, order)
				a.Add(ga)
				return a
			},
		},
		{
			ID: sched.P4, OutBytesPerItem: 0,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				order, ga := rn.grouping(d, rn.workS, lo, hi)
				a := rn.tableFor(d).P4(d, rids, rn.nodeS, &rn.out, lo, hi, order)
				a.Add(ga)
				return a
			},
		},
	}
	return sched.Series{Name: "probe", Items: rn.s.Len(), Steps: steps}
}

// allocTotals aggregates allocator activity across the run's arenas.
func (rn *runner) allocTotals() alloc.Stats {
	st := rn.arena.Stats()
	add := func(o alloc.Stats) {
		st.Allocs += o.Allocs
		st.Words += o.Words
		st.GlobalAtomics += o.GlobalAtomics
		st.LocalOps += o.LocalOps
		st.WastedWords += o.WastedWords
	}
	if rn.arenaGPU != nil {
		add(rn.arenaGPU.Stats())
	}
	add(rn.outArena.Stats())
	return st
}
