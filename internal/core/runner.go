package core

import (
	"sync"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/htab"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// runner holds the state of one join execution: relations, tables, scratch
// arrays for the per-step intermediate results, and the device pair.
type runner struct {
	opt Options
	r   rel.Relation
	s   rel.Relation

	cpu *device.Device
	gpu *device.Device
	env *envState

	// pool is the morsel-driven worker pool Run hands to the executor; the
	// pilot's runner leaves it nil so profiling stays single-stream.
	pool *sched.Pool

	// outExtra accumulates allocator activity of the morsel-private output
	// arenas the parallel p4 materializes through (outMu guards it).
	outMu    sync.Mutex
	outExtra alloc.Stats

	arena    *alloc.Arena // table nodes (CPU table when separate)
	arenaGPU *alloc.Arena // GPU table nodes when separate
	table    *htab.Table
	tableGPU *htab.Table // nil when shared
	merged   bool

	outArena *alloc.Arena
	out      htab.Out

	// Intermediate per-step arrays (the "intermediate results" PL trades
	// in): R-side for the build series, S-side for the probe series.
	bucketR, headR, nodeR, workR []int32
	bucketS, headS, nodeS, workS []int32

	// PHJ state.
	partIdxR, partIdxS []int32
	offsetsR, offsetsS []int32
	parts              int
	bucketsPerPart     int
	radixBits          uint
}

func newRunner(r, s rel.Relation, opt Options) *runner {
	rn := &runner{
		opt: opt,
		r:   r,
		s:   s,
		cpu: device.New(opt.CPU),
		gpu: device.New(opt.GPU),
	}
	nr, ns := r.Len(), s.Len()

	// Table arenas are pre-sized for their worst case (every key distinct:
	// 3 words per key node + 2 per rid node) with headroom for the
	// worker-private block allocation of the parallel build, because the
	// backing array must not move while shards hold offsets into it. A
	// separate GPU table must fit a full build: under GPU-only ratios it
	// receives every tuple.
	tableWords := alloc.ParallelCapWords(opt.Alloc, nr*5+64, 3, 4*sched.DefaultShards)
	rn.arena = alloc.New(opt.Alloc, tableWords)
	if opt.SeparateTables {
		rn.arenaGPU = alloc.New(opt.Alloc, tableWords)
	}
	rn.outArena = alloc.New(opt.Alloc, 64)
	rn.out = htab.Out{Arena: rn.outArena, Materialize: !opt.CountOnly}

	rn.bucketR = make([]int32, nr)
	rn.headR = make([]int32, nr)
	rn.nodeR = make([]int32, nr)
	rn.workR = make([]int32, nr)
	rn.bucketS = make([]int32, ns)
	rn.headS = make([]int32, ns)
	rn.nodeS = make([]int32, ns)
	rn.workS = make([]int32, ns)

	rn.env = &envState{
		cache:           opt.Cache,
		parts:           1,
		shared:          !opt.SeparateTables,
		scratchPressure: 512 << 10, // streaming intermediates pollute ~0.5 MB
	}
	return rn
}

// makeTables creates the hash table(s). For SHJ the bucket count is the
// next power of two of |R| (load factor ≤ 1); for PHJ the segmented layout
// is parts × bucketsPerPart.
func (rn *runner) makeTables() {
	if rn.opt.Algo == PHJ {
		rn.table = htab.NewSeg(rn.parts, rn.bucketsPerPart, rn.opt.HashShift, rn.radixBits, rn.arena)
		if rn.opt.SeparateTables {
			rn.tableGPU = htab.NewSeg(rn.parts, rn.bucketsPerPart, rn.opt.HashShift, rn.radixBits, rn.arenaGPU)
		}
	} else {
		rn.table = htab.NewShifted(rn.r.Len(), rn.opt.HashShift, rn.arena)
		if rn.opt.SeparateTables {
			rn.tableGPU = htab.NewShifted(rn.r.Len(), rn.opt.HashShift, rn.arenaGPU)
		}
	}
	rn.env.tableBytes = estimateTableBytes(rn.r.Len(), rn.table.NBuckets())
}

// tableFor routes a kernel to the device's table: with separate tables the
// GPU builds its own; after the merge (or with a shared table) everyone
// sees one table.
func (rn *runner) tableFor(d *device.Device) *htab.Table {
	if rn.tableGPU != nil && !rn.merged && d.Kind == device.GPU {
		return rn.tableGPU
	}
	return rn.table
}

// grouping computes the grouped execution order for a divergent step on a
// SIMD device and the accounting of the grouping pass itself.
func (rn *runner) grouping(d *device.Device, work []int32, lo, hi int) ([]int32, device.Acct) {
	var a device.Acct
	if !rn.opt.Grouping || d.WavefrontSize <= 1 || hi-lo <= 1 {
		return nil, a
	}
	order := sched.GroupOrder(work, lo, hi, rn.opt.Groups)
	instr, seq, rnd := sched.GroupCostAcct(hi - lo)
	a.Instr = instr
	a.SeqBytes = seq
	a.Rand[device.RegionScratch] = rnd
	return order, a
}

// mapOwned runs an ownership-shard kernel over t's bucket space: fn
// receives the shard number, the bucket shift routing buckets to shards,
// and a worker-private allocator on t's arena.
func mapOwned(p *sched.Pool, t *htab.Table, fn func(shard int32, shift uint, la *alloc.Local) device.Acct) device.Acct {
	shards := t.Shards(sched.DefaultShards)
	shift := t.ShardShift(shards)
	return p.MapShards(shards, func(shard int) device.Acct {
		la := t.Arena().NewLocal()
		defer la.Close()
		return fn(int32(shard), shift, la)
	})
}

// buildSeries returns the build step series (b1..b4) over R. Every step
// carries both the single-stream kernel and its parallel counterpart; the
// executor picks by the presence of a worker pool.
func (rn *runner) buildSeries() sched.Series {
	keys, rids := rn.r.Keys, rn.r.RIDs
	steps := []sched.Step{
		{
			ID: sched.B1, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				if rn.opt.Algo == PHJ {
					return rn.tableFor(d).B1Seg(d, keys, rn.partIdxR, rn.bucketR, lo, hi)
				}
				return rn.tableFor(d).B1(d, keys, rn.bucketR, lo, hi)
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
					if rn.opt.Algo == PHJ {
						return rn.tableFor(d).B1Seg(d, keys, rn.partIdxR, rn.bucketR, mlo, mhi)
					}
					return rn.tableFor(d).B1(d, keys, rn.bucketR, mlo, mhi)
				})
			},
		},
		{
			ID: sched.B2, OutBytesPerItem: 8,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				return rn.tableFor(d).B2(d, rn.bucketR, rn.headR, rn.workR, lo, hi)
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
					return rn.tableFor(d).B2Atomic(d, rn.bucketR, rn.headR, rn.workR, mlo, mhi)
				})
			},
		},
		{
			ID: sched.B3, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				order, ga := rn.grouping(d, rn.workR, lo, hi)
				a := rn.tableFor(d).B3(d, keys, rn.bucketR, rn.nodeR, lo, hi, order)
				a.Add(ga)
				return a
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				t := rn.tableFor(d)
				return mapOwned(p, t, func(shard int32, shift uint, la *alloc.Local) device.Acct {
					return t.B3Shard(d, keys, rn.bucketR, rn.nodeR, lo, hi, shard, shift, la)
				})
			},
		},
		{
			ID: sched.B4, OutBytesPerItem: 0,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				return rn.tableFor(d).B4(d, rids, rn.nodeR, lo, hi)
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				t := rn.tableFor(d)
				return mapOwned(p, t, func(shard int32, shift uint, la *alloc.Local) device.Acct {
					return t.B4Shard(d, rids, rn.bucketR, rn.nodeR, lo, hi, shard, shift, la)
				})
			},
		},
	}
	return sched.Series{Name: "build", Items: rn.r.Len(), Steps: steps}
}

// probeSeries returns the probe step series (p1..p4) over S. The probe
// reads an immutable table, so every step splits into plain range morsels;
// p4 routes materialized pairs through morsel-private output arenas and
// folds their match counts and allocator activity back into the run.
func (rn *runner) probeSeries() sched.Series {
	keys, rids := rn.s.Keys, rn.s.RIDs
	steps := []sched.Step{
		{
			ID: sched.P1, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				if rn.opt.Algo == PHJ {
					return rn.tableFor(d).P1Seg(d, keys, rn.partIdxS, rn.bucketS, lo, hi)
				}
				return rn.tableFor(d).P1(d, keys, rn.bucketS, lo, hi)
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
					if rn.opt.Algo == PHJ {
						return rn.tableFor(d).P1Seg(d, keys, rn.partIdxS, rn.bucketS, mlo, mhi)
					}
					return rn.tableFor(d).P1(d, keys, rn.bucketS, mlo, mhi)
				})
			},
		},
		{
			ID: sched.P2, OutBytesPerItem: 12,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				return rn.tableFor(d).P2(d, rn.bucketS, rn.headS, rn.workS, lo, hi)
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
					return rn.tableFor(d).P2(d, rn.bucketS, rn.headS, rn.workS, mlo, mhi)
				})
			},
		},
		{
			ID: sched.P3, OutBytesPerItem: 4,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				order, ga := rn.grouping(d, rn.workS, lo, hi)
				a := rn.tableFor(d).P3(d, keys, rn.headS, rn.nodeS, lo, hi, order)
				a.Add(ga)
				return a
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
					return rn.tableFor(d).P3(d, keys, rn.headS, rn.nodeS, mlo, mhi, nil)
				})
			},
		},
		{
			ID: sched.P4, OutBytesPerItem: 0,
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				order, ga := rn.grouping(d, rn.workS, lo, hi)
				a := rn.tableFor(d).P4(d, rids, rn.nodeS, &rn.out, lo, hi, order)
				a.Add(ga)
				return a
			},
			ParKernel: func(d *device.Device, lo, hi int, p *sched.Pool) device.Acct {
				return p.MapRange(lo, hi, func(mlo, mhi int) device.Acct {
					priv := htab.Out{Materialize: rn.out.Materialize}
					if priv.Materialize {
						priv.Arena = alloc.New(rn.opt.Alloc, 4*(mhi-mlo)+64)
					}
					a := rn.tableFor(d).P4(d, rids, rn.nodeS, &priv, mlo, mhi, nil)
					// Fold the morsel-private output under the mutex (once
					// per morsel): Out.Pairs is a plain field mid-struct,
					// not guaranteed 64-bit aligned for atomics on 32-bit
					// platforms.
					rn.outMu.Lock()
					rn.out.Pairs += priv.Pairs
					if priv.Arena != nil {
						rn.outExtra.Add(priv.Arena.Stats())
					}
					rn.outMu.Unlock()
					return a
				})
			},
		},
	}
	return sched.Series{Name: "probe", Items: rn.s.Len(), Steps: steps}
}

// allocTotals aggregates allocator activity across the run's arenas.
func (rn *runner) allocTotals() alloc.Stats {
	st := rn.arena.Stats()
	if rn.arenaGPU != nil {
		st.Add(rn.arenaGPU.Stats())
	}
	st.Add(rn.outArena.Stats())
	st.Add(rn.outExtra)
	return st
}
