package core

import (
	"reflect"
	"testing"

	"apujoin/internal/rel"
)

func planTestData(t testing.TB) (rel.Relation, rel.Relation) {
	t.Helper()
	r := rel.Gen{N: 1 << 15, Seed: 7}.Build()
	s := rel.Gen{N: 1 << 15, Seed: 8}.Probe(r, 0.8)
	return r, s
}

func planTestOptions() Options {
	return Options{Delta: 0.1, PilotItems: 1 << 12}
}

// TestBuildPlanDeterminism: the same workload always yields the same plan,
// field for field — the planner has no hidden randomness or map-order
// dependence.
func TestBuildPlanDeterminism(t *testing.T) {
	r, s := planTestData(t)
	p1, err := BuildPlan(r, s, planTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(r, s, planTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("plans differ across builds:\n%+v\nvs\n%+v", p1, p2)
	}
	if p1.PredictedNS <= 0 {
		t.Fatalf("plan has no prediction: %+v", p1)
	}
}

// TestBuildPlanPicksCheapest: the returned plan carries the minimum
// predicted time over every candidate the planner enumerates.
func TestBuildPlanPicksCheapest(t *testing.T) {
	r, s := planTestData(t)
	opt := planTestOptions()
	best, err := BuildPlan(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}

	popt := opt
	popt.SetDefaults()
	pilotOpt := popt
	pilotOpt.Algo = PHJ
	prof := runPilot(r, s, pilotOpt)
	for _, algo := range []Algo{SHJ, PHJ} {
		for _, scheme := range autoSchemes(algo, popt) {
			cand := planCandidate(r, s, popt, algo, scheme, prof)
			if cand.PredictedNS < best.PredictedNS {
				t.Errorf("candidate %s-%s predicted %.0f ns beats chosen %s-%s at %.0f ns",
					algo, scheme, cand.PredictedNS, best.Algo, best.Scheme, best.PredictedNS)
			}
		}
	}
}

// TestPlanInjection: a run with an injected plan is correct (exact match
// count), uses the plan's ratios, and is bit-identical run to run.
func TestPlanInjection(t *testing.T) {
	r, s := planTestData(t)
	opt := planTestOptions()
	pl, err := BuildPlan(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.Plan = pl
	res1, err := Run(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := rel.NaiveJoinCount(r, s); res1.Matches != want {
		t.Fatalf("planned run: %d matches, want %d", res1.Matches, want)
	}
	if res1.Algo != pl.Algo || res1.Scheme != pl.Scheme {
		t.Fatalf("planned run executed %s-%s, plan says %s-%s",
			res1.Algo, res1.Scheme, pl.Algo, pl.Scheme)
	}
	if len(pl.BuildRatios) > 0 && !reflect.DeepEqual(res1.Ratios.Build, pl.BuildRatios) {
		t.Fatalf("build ratios %v differ from plan %v", res1.Ratios.Build, pl.BuildRatios)
	}
	if len(pl.ProbeRatios) > 0 && !reflect.DeepEqual(res1.Ratios.Probe, pl.ProbeRatios) {
		t.Fatalf("probe ratios %v differ from plan %v", res1.Ratios.Probe, pl.ProbeRatios)
	}
	if pl.Algo == PHJ && len(pl.PartitionRatios) > 0 {
		for _, pr := range res1.Ratios.Partition {
			if !reflect.DeepEqual(pr, pl.PartitionRatios) {
				t.Fatalf("partition ratios %v differ from plan %v", pr, pl.PartitionRatios)
			}
		}
	}

	res2, err := Run(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Matches != res2.Matches || res1.TotalNS != res2.TotalNS ||
		res1.EstimatedNS != res2.EstimatedNS {
		t.Fatalf("planned runs not bit-identical: %v/%v vs %v/%v",
			res1.Matches, res1.TotalNS, res2.Matches, res2.TotalNS)
	}
}

// TestBuildPlanSeparateTables: with separate per-device tables (and on the
// discrete architecture, which forces them) the planner must never pick
// PL — it is infeasible there and Run rejects it.
func TestBuildPlanSeparateTables(t *testing.T) {
	r, s := planTestData(t)
	for _, opt := range []Options{
		{Delta: 0.1, PilotItems: 1 << 12, SeparateTables: true},
		{Delta: 0.1, PilotItems: 1 << 12, Arch: Discrete},
	} {
		pl, err := BuildPlan(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Scheme == PL {
			t.Fatalf("planner chose PL with separate tables (arch %s)", opt.Arch)
		}
		opt.Plan = pl
		res, err := Run(r, s, opt)
		if err != nil {
			t.Fatalf("planned run under %+v: %v", pl, err)
		}
		if want := rel.NaiveJoinCount(r, s); res.Matches != want {
			t.Fatalf("planned run: %d matches, want %d", res.Matches, want)
		}
	}
}

// TestBuildPlanEmptyRelation: planning an empty workload is an error, not
// a nil-profile plan.
func TestBuildPlanEmptyRelation(t *testing.T) {
	r := rel.Gen{N: 1 << 10, Seed: 1}.Build()
	if _, err := BuildPlan(rel.Relation{}, r, planTestOptions()); err == nil {
		t.Fatal("no error planning an empty build relation")
	}
	if _, err := BuildPlan(r, rel.Relation{}, planTestOptions()); err == nil {
		t.Fatal("no error planning an empty probe relation")
	}
}
