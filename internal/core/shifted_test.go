package core

import (
	"testing"

	"apujoin/internal/hash"
	"apujoin/internal/rel"
)

// TestHashShiftSubJoins exercises the HashShift plumbing the external join
// relies on: a sub-join over keys that all share their low hash bits must
// still spread across buckets and produce exact matches.
func TestHashShiftSubJoins(t *testing.T) {
	// Construct relations whose keys share low murmur bits by filtering a
	// larger uniform draw, mimicking one external partition pair.
	big := rel.Gen{N: 1 << 16, Seed: 31}.Build()
	var r rel.Relation
	const bits = 4
	for i, k := range big.Keys {
		if hashLow(k, bits) == 5 {
			r.Keys = append(r.Keys, k)
			r.RIDs = append(r.RIDs, big.RIDs[i])
		}
	}
	if r.Len() < 500 {
		t.Fatalf("filter too aggressive: %d tuples", r.Len())
	}
	s := rel.Gen{N: r.Len(), Seed: 32}.Probe(r, 1.0)
	want := rel.NaiveJoinCount(r, s)

	for _, algo := range []Algo{SHJ, PHJ} {
		opt := Options{Algo: algo, Scheme: PL, Delta: 0.25, PilotItems: 1024, HashShift: bits}
		res, err := Run(r, s, opt)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Matches != want {
			t.Errorf("%v shifted: matches %d want %d", algo, res.Matches, want)
		}
	}

	// Without the shift the same join still gives correct matches, just
	// with degenerate bucket usage — correctness must never depend on it.
	res, err := Run(r, s, Options{Algo: SHJ, Scheme: DD, Delta: 0.25, PilotItems: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Errorf("unshifted: matches %d want %d", res.Matches, want)
	}
}

// TestExternalScalesLinearly checks Fig. 19's scalability claim: doubling
// the data roughly doubles partition, join and copy time.
func TestExternalScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	run := func(n int) *ExternalResult {
		r := rel.Gen{N: n, Seed: 41}.Build()
		s := rel.Gen{N: n, Seed: 42}.Probe(r, 1.0)
		opt := Options{Algo: SHJ, Scheme: PL, Delta: 0.25, PilotItems: 2048}
		opt.SetDefaults()
		opt.ZeroCopy.Capacity = 1 << 21
		res, err := RunExternal(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1 << 17)
	b := run(1 << 18)
	ratio := b.TotalNS / a.TotalNS
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("2x data scaled total by %.2fx, expected ~2x", ratio)
	}
	if b.DataCopyNS/a.DataCopyNS < 1.8 || b.DataCopyNS/a.DataCopyNS > 2.2 {
		t.Errorf("copy time not linear: %.2fx", b.DataCopyNS/a.DataCopyNS)
	}
}

func hashLow(k int32, bits uint) uint32 {
	return hash.Murmur2(uint32(k), hash.Murmur2Seed) & ((1 << bits) - 1)
}
