package core

import (
	"context"
	"fmt"

	"apujoin/internal/alloc"
	"apujoin/internal/hash"
	"apujoin/internal/mem"
	"apujoin/internal/radix"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// ExternalResult reports a join of data larger than the zero-copy buffer
// (paper appendix, Fig. 19). The elapsed time divides into partition time,
// join time and data-copy time, the three components of the paper's
// stacked bars.
type ExternalResult struct {
	Matches int64

	PartitionNS float64
	JoinNS      float64
	DataCopyNS  float64
	TotalNS     float64

	// Pairs is the number of partition pairs joined; ChunkTuples is the
	// partitioning block size (the paper uses 16M-tuple chunks).
	Pairs       int
	ChunkTuples int
	OuterBits   uint
}

// RunExternal joins relations whose combined footprint exceeds the
// zero-copy buffer, treating the buffer as "main memory" and system memory
// as "external memory" (classic external hash join): the inputs are radix
// partitioned in zero-copy-sized chunks, the intermediate partitions are
// copied out to system memory and linked, and each partition pair is then
// joined with the configured in-buffer algorithm (opt.Algo / opt.Scheme).
func RunExternal(r, s rel.Relation, opt Options) (*ExternalResult, error) {
	return RunExternalCtx(context.Background(), r, s, opt)
}

// RunExternalCtx is RunExternal with cancellation, checked at chunk and
// partition-pair boundaries. When no pool is injected, one transient pool
// serves every per-pair sub-join rather than each sub-join spawning its
// own.
func RunExternalCtx(ctx context.Context, r, s rel.Relation, opt Options) (*ExternalResult, error) {
	if opt.Plan != nil {
		// A plan is built for one whole workload; the per-pair sub-joins
		// below have different sizes and hash shifts. Keep the plan's
		// algorithm/scheme choice but let each sub-join profile and pick
		// its own ratios.
		opt.Algo, opt.Scheme, opt.Arch = opt.Plan.Algo, opt.Plan.Scheme, opt.Plan.Arch
		opt.Plan = nil
	}
	opt.SetDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Pool == nil {
		pool := sched.NewPool(opt.Workers)
		defer pool.Close()
		opt.Pool = pool
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("core: build relation: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: probe relation: %w", err)
	}

	res := &ExternalResult{}

	// Chunk size: the block of tuples partitioned inside the zero-copy
	// buffer per round; capacity/32 bytes-per-tuple-with-structures gives
	// the paper's 16M tuples at 512 MB.
	res.ChunkTuples = int(opt.ZeroCopy.Capacity / 32)

	// Outer fan-out: enough partitions that one pair (R part + S part,
	// plus data-sized join structures) fits comfortably in the buffer.
	pairBudget := opt.ZeroCopy.Capacity / 4
	outerBits := uint(0)
	for (r.Bytes()+s.Bytes())>>outerBits > pairBudget && outerBits < 12 {
		outerBits++
	}
	// Keep a healthy fan-out: few partitions serialize the latched
	// partition headers under the GPU's lane count (same reasoning as
	// radix.PlanFor).
	if outerBits < 6 {
		outerBits = 6
	}
	res.OuterBits = outerBits
	res.Pairs = 1 << outerBits

	cpu, gpu := opt.CPU, opt.GPU
	env := &envState{cache: opt.Cache, parts: 1, shared: true,
		partitionStreams: int64(1<<outerBits) * chunkBytes, scratchPressure: 512 << 10}
	exec := sched.New(env.envFor)
	exec.Ctx = ctx
	_ = cpu
	_ = gpu

	// Partition both relations chunk by chunk. Each chunk is copied into
	// the zero-copy buffer, partitioned there with the usual n1..n3 steps
	// (DD co-processing with the paper's partition-phase ratio), and the
	// intermediate partitions are copied back out to system memory.
	partitionRel := func(in rel.Relation) (rel.Relation, error) {
		n := in.Len()
		out := rel.Relation{Keys: make([]int32, 0, n), RIDs: make([]int32, 0, n)}
		for lo := 0; lo < n; lo += res.ChunkTuples {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			hi := lo + res.ChunkTuples
			if hi > n {
				hi = n
			}
			chunk := in.Slice(lo, hi)
			cn := chunk.Len()

			res.DataCopyNS += mem.CopyNS(chunk.Bytes()) // into zero-copy

			arena := alloc.New(opt.Alloc, cn*3+radix.ChunkTuples*4)
			pass := radix.NewPass(chunk, arena, 0, outerBits)
			series := sched.Series{
				Name:  "ext-partition",
				Items: cn,
				Steps: []sched.Step{
					{ID: sched.N1, Kernel: pass.N1},
					{ID: sched.N2, Kernel: pass.N2},
					{ID: sched.N3, Kernel: pass.N3},
				},
			}
			pres, err := exec.Run(series, sched.Uniform(0.25, 3))
			if err != nil {
				return out, err
			}
			res.PartitionNS += pres.TotalNS
			buf := rel.Relation{Keys: make([]int32, cn), RIDs: make([]int32, cn)}
			_, ga := pass.Gather(buf)
			res.PartitionNS += exec.CPU.TimeNS(ga, env.envFor(sched.N3, exec.CPU))

			res.DataCopyNS += mem.CopyNS(chunk.Bytes()) // partitions out
			out.Keys = append(out.Keys, buf.Keys...)
			out.RIDs = append(out.RIDs, buf.RIDs...)
		}
		return out, nil
	}

	// gatherPartition collects partition p's tuples across all chunks
	// ("link all the intermediate partitions together").
	gatherPartition := func(part rel.Relation, p uint32) rel.Relation {
		var out rel.Relation
		mask := uint32(1<<outerBits) - 1
		for i, k := range part.Keys {
			if hash.Murmur2(uint32(k), hash.Murmur2Seed)&mask == p {
				out.Keys = append(out.Keys, k)
				out.RIDs = append(out.RIDs, part.RIDs[i])
			}
		}
		return out
	}

	pr, err := partitionRel(r)
	if err != nil {
		return nil, err
	}
	ps, err := partitionRel(s)
	if err != nil {
		return nil, err
	}

	// Join each partition pair with the in-buffer algorithm, skipping the
	// low outerBits hash bits every key in the pair shares.
	sub := opt
	sub.HashShift = outerBits
	sub.ZeroCopy = mem.NewZeroCopy()
	sub.ZeroCopy.Capacity = opt.ZeroCopy.Capacity
	for p := uint32(0); p < uint32(res.Pairs); p++ {
		rp := gatherPartition(pr, p)
		sp := gatherPartition(ps, p)
		if rp.Len() == 0 || sp.Len() == 0 {
			continue
		}
		res.DataCopyNS += mem.CopyNS(rp.Bytes() + sp.Bytes()) // pair into buffer

		pres, err := RunCtx(ctx, rp, sp, sub)
		if err != nil {
			return nil, fmt.Errorf("core: external pair %d: %w", p, err)
		}
		res.Matches += pres.Matches
		res.JoinNS += pres.TotalNS
	}

	res.TotalNS = res.PartitionNS + res.JoinNS + res.DataCopyNS
	return res, nil
}
