package core

import (
	"testing"

	"apujoin/internal/rel"
)

// TestWorkersInvariance is the parallel runtime's contract: the worker
// count must not change anything but host wall-clock. Match counts, the
// simulated elapsed time, every phase of the breakdown and the allocator
// totals must be identical between a single worker and many, across both
// algorithms, every scheme and both ends of the skew range.
func TestWorkersInvariance(t *testing.T) {
	type cfg struct {
		name string
		opt  Options
	}
	cases := []cfg{
		{"SHJ/CPU", Options{Algo: SHJ, Scheme: CPUOnly}},
		{"SHJ/GPU", Options{Algo: SHJ, Scheme: GPUOnly}},
		{"SHJ/OL", Options{Algo: SHJ, Scheme: OL}},
		{"SHJ/DD", Options{Algo: SHJ, Scheme: DD}},
		{"SHJ/PL", Options{Algo: SHJ, Scheme: PL}},
		{"SHJ/BasicUnit", Options{Algo: SHJ, Scheme: BasicUnit}},
		{"SHJ/DD/separate", Options{Algo: SHJ, Scheme: DD, SeparateTables: true}},
		{"SHJ/DD/discrete", Options{Algo: SHJ, Scheme: DD, Arch: Discrete}},
		{"SHJ/PL/grouped", Options{Algo: SHJ, Scheme: PL, Grouping: true}},
		{"PHJ/CPU", Options{Algo: PHJ, Scheme: CPUOnly}},
		{"PHJ/GPU", Options{Algo: PHJ, Scheme: GPUOnly}},
		{"PHJ/OL", Options{Algo: PHJ, Scheme: OL}},
		{"PHJ/DD", Options{Algo: PHJ, Scheme: DD}},
		{"PHJ/PL", Options{Algo: PHJ, Scheme: PL}},
		{"PHJ/BasicUnit", Options{Algo: PHJ, Scheme: BasicUnit}},
		{"PHJ/PL'", Options{Algo: PHJ, Scheme: CoarsePL}},
	}

	for _, dist := range []rel.Distribution{rel.Uniform, rel.HighSkew} {
		r := rel.Gen{N: 30000, Dist: dist, Seed: 11}.Build()
		s := rel.Gen{N: 40000, Dist: dist, Seed: 12}.Probe(r, 0.8)
		want := rel.NaiveJoinCount(r, s)

		for _, c := range cases {
			c := c
			t.Run(c.name+"/"+dist.String(), func(t *testing.T) {
				var results [2]*Result
				for i, workers := range []int{1, 8} {
					opt := c.opt
					opt.Workers = workers
					opt.Delta = 0.1
					opt.PilotItems = 4096
					res, err := Run(r, s, opt)
					if err != nil {
						t.Fatal(err)
					}
					if res.Matches != want {
						t.Fatalf("workers=%d: matches %d, want %d", workers, res.Matches, want)
					}
					results[i] = res
				}
				a, b := results[0], results[1]
				if a.TotalNS != b.TotalNS {
					t.Errorf("TotalNS differs: workers=1 %.3f, workers=8 %.3f", a.TotalNS, b.TotalNS)
				}
				if a.Breakdown != b.Breakdown {
					t.Errorf("breakdown differs:\n w=1 %+v\n w=8 %+v", a.Breakdown, b.Breakdown)
				}
				if a.AllocStats != b.AllocStats {
					t.Errorf("alloc stats differ:\n w=1 %+v\n w=8 %+v", a.AllocStats, b.AllocStats)
				}
				if a.Cache != b.Cache {
					t.Errorf("cache stats differ:\n w=1 %+v\n w=8 %+v", a.Cache, b.Cache)
				}
				if len(a.Steps) != len(b.Steps) {
					t.Fatalf("step counts differ: %d vs %d", len(a.Steps), len(b.Steps))
				}
				for i := range a.Steps {
					if a.Steps[i] != b.Steps[i] {
						t.Errorf("step %d differs:\n w=1 %+v\n w=8 %+v", i, a.Steps[i], b.Steps[i])
					}
				}
			})
		}
	}
}

// TestWorkersInvarianceExternal covers the out-of-buffer path.
func TestWorkersInvarianceExternal(t *testing.T) {
	r := rel.Gen{N: 1 << 15, Seed: 21}.Build()
	s := rel.Gen{N: 1 << 15, Seed: 22}.Probe(r, 1.0)
	want := rel.NaiveJoinCount(r, s)

	var results [2]*ExternalResult
	for i, workers := range []int{1, 8} {
		opt := Options{Algo: SHJ, Scheme: PL, Delta: 0.25, PilotItems: 2048, Workers: workers}
		opt.SetDefaults()
		opt.ZeroCopy.Capacity = 1 << 18
		res, err := RunExternal(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Fatalf("workers=%d: matches %d, want %d", workers, res.Matches, want)
		}
		results[i] = res
	}
	if results[0].TotalNS != results[1].TotalNS {
		t.Errorf("external TotalNS differs: %.3f vs %.3f", results[0].TotalNS, results[1].TotalNS)
	}
}

// TestWorkersDefault exercises the GOMAXPROCS default (Workers = 0) and a
// worker count far above the morsel count.
func TestWorkersDefault(t *testing.T) {
	r := rel.Gen{N: 20000, Seed: 31}.Build()
	s := rel.Gen{N: 20000, Seed: 32}.Probe(r, 1.0)
	want := rel.NaiveJoinCount(r, s)
	for _, workers := range []int{0, 64} {
		res, err := Run(r, s, Options{Algo: PHJ, Scheme: PL, Delta: 0.1, PilotItems: 4096, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Fatalf("workers=%d: matches %d, want %d", workers, res.Matches, want)
		}
	}
}
