package core

import (
	"context"
	"errors"
	"fmt"

	"apujoin/internal/cost"
	"apujoin/internal/mem"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

// ErrExceedsZeroCopy reports that the join's data footprint does not fit
// the zero-copy buffer; callers run RunExternal instead (paper appendix,
// Fig. 19).
var ErrExceedsZeroCopy = errors.New("core: data exceeds zero-copy buffer; use RunExternal")

// Run executes one hash join under the configured algorithm, scheme and
// architecture, returning the exact match count and the simulated timing.
func Run(r, s rel.Relation, opt Options) (*Result, error) {
	return RunCtx(context.Background(), r, s, opt)
}

// RunCtx is Run with cancellation: a cancelled context aborts the join at
// the next step boundary with the context's error. Run is re-entrant — it
// keeps no package-level state, every run owns its arenas and intermediate
// arrays, and the worker pool is either injected (Options.Pool, shared by
// the multi-query service layer) or transient to the call — so any number
// of runs may execute concurrently, each producing bit-identical results to
// the same run executed alone.
func RunCtx(ctx context.Context, r, s rel.Relation, opt Options) (*Result, error) {
	if opt.Plan != nil {
		// An injected plan decides algorithm, scheme and ratios; the
		// pilot below is skipped in favour of the plan's profiles.
		opt.applyPlan()
	}
	opt.SetDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("core: build relation: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: probe relation: %w", err)
	}
	if opt.SeparateTables && (opt.Scheme == PL || opt.Scheme == OL) {
		// With one table per device, a tuple must stay on one device for
		// the whole phase; per-step ratios would scatter its steps across
		// both tables. The paper accordingly evaluates separate tables
		// under DD, and notes PL is infeasible on the discrete
		// architecture.
		if opt.Scheme == PL {
			return nil, fmt.Errorf("core: PL requires a shared hash table (infeasible with separate tables / on the discrete architecture)")
		}
	}

	// Zero-copy footprint: both relations plus (approximately data-sized)
	// join structures must fit the 512 MB buffer, which puts the boundary
	// between the paper's 16M and 32M configurations.
	dataBytes := r.Bytes() + s.Bytes()
	foot := dataBytes * 2
	if foot > opt.ZeroCopy.Capacity {
		return nil, ErrExceedsZeroCopy
	}
	if err := opt.ZeroCopy.Alloc(foot); err != nil {
		return nil, ErrExceedsZeroCopy
	}
	defer opt.ZeroCopy.Free(foot)

	rn := newRunner(r, s, opt)
	rn.pool = opt.Pool
	if rn.pool == nil {
		rn.pool = sched.NewPool(opt.Workers)
		defer rn.pool.Close()
	}
	res := &Result{Algo: opt.Algo, Scheme: opt.Scheme, Arch: opt.Arch, ZeroCopyBytes: foot}

	exec := &sched.Exec{CPU: rn.cpu, GPU: rn.gpu, Env: rn.env.envFor, Pool: rn.pool, Ctx: ctx}
	var pcie mem.PCIe
	if opt.Arch == Discrete {
		pcie = mem.NewPCIe()
		exec.PCIe = &pcie
	}

	// Pilot profiling run (the "profiler" feeding the cost model) — or the
	// injected plan's cached profiles, which skip the pilot entirely.
	var prof profiles
	if opt.Plan != nil {
		prof = profiles{
			partition: opt.Plan.Partition,
			build:     opt.Plan.Build,
			probe:     opt.Plan.Probe,
		}
	} else {
		prof = runPilot(r, s, opt)
	}
	res.BuildProfile = prof.build
	res.ProbeProfile = prof.probe
	res.PartitionProfile = prof.partition
	model := &cost.Model{CPU: opt.CPU, GPU: opt.GPU, Env: rn.env.envFor}

	// Partition phase (PHJ and PHJ-PL').
	if opt.Algo == PHJ {
		if err := rn.partitionPhase(res, exec, model, prof.partition); err != nil {
			return nil, err
		}
	}

	if opt.Scheme == CoarsePL {
		if err := rn.coarseJoin(ctx, res, model); err != nil {
			return nil, err
		}
		res.Matches = rn.out.Pairs
		res.TotalNS = res.Breakdown.TotalNS()
		res.AllocStats = rn.allocTotals()
		finishEstimates(res)
		return res, nil
	}

	// Grouped execution reorders tuples by workload hint, and both the hint
	// values and the grouped processing order are only meaningful on a
	// single stream; the build and probe series therefore run serially when
	// the grouping optimization is enabled (the partition phase above still
	// parallelizes).
	if opt.Grouping {
		exec.Pool = nil
	}

	rn.makeTables()

	// Build phase.
	buildSer := rn.buildSeries()
	if opt.Scheme == BasicUnit {
		bu, err := exec.RunBasicUnit(buildSer, opt.CPUChunk, opt.GPUChunk)
		if err != nil {
			return nil, err
		}
		res.BuildNS = bu.TotalNS
		res.BasicUnitShares = append(res.BasicUnitShares, bu.CPUShare)
		res.Ratios.Build = sched.Uniform(bu.CPUShare, len(buildSer.Steps))
	} else {
		ratios, est := rn.chooseRatios(model, prof.build, buildSer.Items, len(buildSer.Steps), opt.FixedBuild)
		bres, err := exec.Run(buildSer, ratios)
		if err != nil {
			return nil, err
		}
		res.BuildNS = bres.TotalNS - bres.TransferNS
		res.TransferNS += bres.TransferNS
		res.Ratios.Build = ratios
		res.EstimatedNS += est
		res.EstBuildNS = est
		recordSteps(res, "build", bres, buildSer.Items)
		cs := rn.env.missStats(bres, rn.cpu, rn.gpu)
		res.Cache.Accesses += cs.Accesses
		res.Cache.Misses += cs.Misses
	}

	// Phase-granular PCI-e traffic on the discrete architecture: ship the
	// GPU's input share over and its partial hash table back.
	if opt.Arch == Discrete {
		gpuShare := 1 - avgRatio(res.Ratios.Build)
		in := pcie.TransferNS(int64(gpuShare * float64(r.Bytes())))
		back := pcie.TransferNS(int64(gpuShare * float64(rn.env.tableBytes)))
		res.TransferNS += in + back
	}

	// A build that ran entirely on the GPU leaves the complete table on
	// the GPU side; probing continues there and no merge is needed (OL on
	// the discrete architecture has only the transfer overhead, Sec. 5.2).
	if rn.tableGPU != nil && avgRatio(res.Ratios.Build) == 0 {
		rn.table, rn.tableGPU = rn.tableGPU, nil
	}

	// Merge the per-device tables (inherent to DD with separate tables).
	if rn.tableGPU != nil && rn.tableGPU.NumKeys() > 0 {
		acct := rn.table.Merge(rn.tableGPU)
		res.MergeNS = rn.cpu.TimeNS(acct, rn.env.envFor(sched.B3, rn.cpu))
	}
	rn.merged = true
	// The table is now fully built; refresh the working-set estimate with
	// the actual resident size for the probe phase.
	rn.env.tableBytes = rn.table.BytesResident()

	// Probe phase.
	probeSer := rn.probeSeries()
	if opt.Scheme == BasicUnit {
		bu, err := exec.RunBasicUnit(probeSer, opt.CPUChunk, opt.GPUChunk)
		if err != nil {
			return nil, err
		}
		res.ProbeNS = bu.TotalNS
		res.BasicUnitShares = append(res.BasicUnitShares, bu.CPUShare)
		res.Ratios.Probe = sched.Uniform(bu.CPUShare, len(probeSer.Steps))
	} else {
		ratios, est := rn.chooseRatios(model, prof.probe, probeSer.Items, len(probeSer.Steps), opt.FixedProbe)
		pres, err := exec.Run(probeSer, ratios)
		if err != nil {
			return nil, err
		}
		res.ProbeNS = pres.TotalNS - pres.TransferNS
		res.TransferNS += pres.TransferNS
		res.Ratios.Probe = ratios
		res.EstimatedNS += est
		res.EstProbeNS = est
		recordSteps(res, "probe", pres, probeSer.Items)
		cs := rn.env.missStats(pres, rn.cpu, rn.gpu)
		res.Cache.Accesses += cs.Accesses
		res.Cache.Misses += cs.Misses
	}
	if opt.Arch == Discrete {
		gpuShare := 1 - avgRatio(res.Ratios.Probe)
		in := pcie.TransferNS(int64(gpuShare * float64(s.Bytes())))
		back := pcie.TransferNS(int64(gpuShare * float64(rn.out.Pairs) * 8))
		res.TransferNS += in + back
	}

	res.Matches = rn.out.Pairs
	res.TotalNS = res.Breakdown.TotalNS()
	res.AllocStats = rn.allocTotals()
	finishEstimates(res)
	return res, nil
}

// chooseRatios picks the workload ratios for one series according to the
// scheme (or the caller's fixed override), returning them with the model's
// estimate.
func (rn *runner) chooseRatios(model *cost.Model, prof cost.SeriesProfile, items, steps int, fixed sched.Ratios) (sched.Ratios, float64) {
	if fixed != nil {
		if len(fixed) == 1 && steps > 1 {
			fixed = sched.Uniform(fixed[0], steps)
		}
		return fixed, model.EstimateNS(prof, items, fixed)
	}
	return schemeRatios(model, rn.opt, prof, items, steps)
}

// schemeRatios runs the per-scheme ratio optimizer for one series,
// returning the chosen ratios with the model's estimate. It is shared by
// the run-time ratio choice and the ahead-of-time planner (BuildPlan), so
// a plan's fixed ratios are exactly what an unplanned run would search for
// under the same profiles and environment.
func schemeRatios(model *cost.Model, opt Options, prof cost.SeriesProfile, items, steps int) (sched.Ratios, float64) {
	switch opt.Scheme {
	case CPUOnly:
		r := sched.Uniform(1, steps)
		return r, model.EstimateNS(prof, items, r)
	case GPUOnly:
		r := sched.Uniform(0, steps)
		return r, model.EstimateNS(prof, items, r)
	case OL:
		if opt.SeparateTables {
			// Whole-phase offload keeps each tuple on one device/table.
			cpu := sched.Uniform(1, steps)
			gpu := sched.Uniform(0, steps)
			tc := model.EstimateNS(prof, items, cpu)
			tg := model.EstimateNS(prof, items, gpu)
			if tc < tg {
				return cpu, tc
			}
			return gpu, tg
		}
		return model.OptimizeOL(prof, items)
	case DD:
		r, est := model.OptimizeDD(prof, items, opt.Delta)
		return sched.Uniform(r, steps), est
	case PL, CoarsePL:
		if opt.FullGrid {
			return model.OptimizePL(prof, items, opt.Delta)
		}
		return model.OptimizePLRefined(prof, items, opt.Delta)
	default:
		r := sched.Uniform(0.5, steps)
		return r, model.EstimateNS(prof, items, r)
	}
}

// finishEstimates derives the latch-overhead estimate the paper backs out
// of measured−estimated (Sec. 5.4), over the phases the model covers.
func finishEstimates(res *Result) {
	if res.EstimatedNS <= 0 {
		return
	}
	measured := res.PartitionNS + res.BuildNS + res.ProbeNS
	if d := measured - res.EstimatedNS; d > 0 {
		res.LockOverheadNS = d
	}
}

// recordSteps appends the executed series' per-step timings to the result.
func recordSteps(res *Result, phase string, sr sched.Result, items int) {
	for _, st := range sr.Steps {
		res.Steps = append(res.Steps, StepTiming{
			Phase: phase, ID: st.ID, Items: items, Ratio: st.Ratio,
			CPUNS: st.CPUNS, GPUNS: st.GPUNS,
			DelayCPUNS: st.DelayCPUNS, DelayGPUNS: st.DelayGPUNS,
		})
	}
}

func avgRatio(rs sched.Ratios) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r
	}
	return t / float64(len(rs))
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
