package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"apujoin/internal/device"
)

// Pool is the morsel-driven parallel execution runtime: a resident set of
// host worker goroutines that execute kernel ranges split into cache-sized
// morsels (or structure-ownership shards) concurrently. A pool outlives any
// single join: the multi-query service layer creates one at startup and
// submits morsel batches from many concurrent queries into it; stand-alone
// runs create a transient pool per join and close it on return.
//
// The cardinal rule is that the work DECOMPOSITION is a pure function of
// the data — morsel grids and shard counts never depend on the worker
// count or on what other queries share the pool — and every piece's
// device.Acct is a pure function of its piece. Scheduling then only decides
// which goroutine executes which piece when, so the merged accounting (and
// with it every simulated time) is bit-identical between Workers=1,
// Workers=N, and N queries interleaving on one pool; parallelism changes
// wall-clock, not the model.
//
// Concurrency/fairness model: each ForEach forms a batch whose pieces are
// claimed from a shared atomic cursor. The submitting goroutine always
// participates in its own batch, so every query makes progress even when
// the resident workers are saturated by other queries — no submission can
// starve. Resident workers drain offered batches in FIFO order, which
// interleaves concurrent queries at batch (step) granularity.
type Pool struct {
	workers int
	// tasks carries batch-help closures to the resident workers; nil for
	// 1-worker pools, which execute inline and own no goroutines.
	tasks  chan func()
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// MorselItems is the number of tuples per range morsel: 16Ki tuples keep a
// morsel's streaming footprint (a few int32 arrays) around the shared-L2
// size. It is a multiple of the GPU wavefront size, so wavefront grouping
// inside a morsel coincides with the grouping of an unsplit range and
// divergence accounting is unchanged by morselization.
const MorselItems = 1 << 14

// DefaultShards is the number of ownership shards insert-style kernels are
// split into. It is a balance point: more shards smooth skew, but every
// shard scans the whole range for its tuples. Fixed (worker-independent) by
// the determinism rule.
const DefaultShards = 16

// NewPool returns a resident pool of the given size; workers <= 0 selects
// GOMAXPROCS. A 1-worker pool executes the same decomposition inline on the
// submitting goroutine and spawns nothing; larger pools start workers-1
// helper goroutines (the submitter is the remaining executor) that live
// until Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func(), 4*workers)
		p.quit = make(chan struct{})
		p.wg.Add(workers - 1)
		for g := 0; g < workers-1; g++ {
			go p.worker()
		}
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the resident workers and waits for them to exit. Batches in
// flight complete normally — their submitters drive them to completion even
// with no workers left — and ForEach after Close degrades to inline
// execution. Close is idempotent and safe to call concurrently.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	if !p.closed.CompareAndSwap(false, true) {
		p.wg.Wait()
		return
	}
	close(p.quit)
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			t()
		case <-p.quit:
			return
		}
	}
}

// batch is one ForEach invocation: n pieces claimed from a shared cursor by
// the submitter and any resident workers that picked up its help offers.
type batch struct {
	next int64 // atomic claim cursor
	done int64 // atomic completed-piece count
	n    int64
	fn   func(i int)
	fin  chan struct{} // closed when done == n
}

// run claims and executes pieces until the batch is exhausted. Stale help
// offers (executed after the batch completed) claim nothing and return
// immediately.
func (b *batch) run() {
	for {
		i := atomic.AddInt64(&b.next, 1) - 1
		if i >= b.n {
			return
		}
		b.fn(int(i))
		if atomic.AddInt64(&b.done, 1) == b.n {
			close(b.fin)
		}
	}
}

// ForEach executes fn(i) for every i in [0,n), distributing indices over
// the pool's resident workers dynamically, and returns when all calls have
// finished. The completion barrier establishes the happens-before edge
// kernels rely on between parallel steps. Safe for concurrent use by many
// queries; the submitting goroutine always executes pieces itself, so
// ForEach completes even on a saturated or closed pool.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.tasks == nil || n == 1 || p.closed.Load() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	b := &batch{n: int64(n), fn: fn, fin: make(chan struct{})}
	// Offer help to at most workers-1 residents (the submitter is the
	// final executor, keeping total concurrency at the pool size). A full
	// offer queue means the residents are busy with other queries; the
	// batch still completes through the submitter, and whichever resident
	// frees up first drains the queue and joins in.
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
offer:
	for g := 0; g < helpers; g++ {
		select {
		case p.tasks <- b.run:
		default:
			break offer
		}
	}
	b.run()
	<-b.fin
}

// MergeAccts reduces per-piece accounting records into the record of the
// whole range. All counters sum except AtomicTargets: the pieces contend on
// the same target set (the table's buckets, a phase's key nodes), so the
// target spread of the merged batch is the largest any piece reported, not
// the sum — summing would understate contention in the device model's
// serialization term.
func MergeAccts(accts []device.Acct) device.Acct {
	var out device.Acct
	var targets int64
	for _, a := range accts {
		if a.AtomicTargets > targets {
			targets = a.AtomicTargets
		}
		a.AtomicTargets = 0
		out.Add(a)
	}
	out.AtomicTargets = targets
	return out
}

// MapRange splits [lo,hi) into the fixed MorselItems grid, executes fn over
// the morsels on the pool, and merges the per-morsel records in grid order.
func (p *Pool) MapRange(lo, hi int, fn func(mlo, mhi int) device.Acct) device.Acct {
	n := hi - lo
	if n <= 0 {
		return device.Acct{}
	}
	m := (n + MorselItems - 1) / MorselItems
	accts := make([]device.Acct, m)
	p.ForEach(m, func(i int) {
		mlo := lo + i*MorselItems
		mhi := mlo + MorselItems
		if mhi > hi {
			mhi = hi
		}
		accts[i] = fn(mlo, mhi)
	})
	return MergeAccts(accts)
}

// MapRangeCounts splits [lo,hi) into the fixed MorselItems grid, executes
// fn over the morsels on the pool, and returns the per-morsel values in
// grid order. It is the ordered-reduction sibling of MapRange for kernels
// whose per-morsel result is a plain count rather than a device accounting
// record: the streamed pipeline producer sizes each output morsel with it
// (count pass) before the parallel fill. The grid — and with it the
// returned slice — is a pure function of [lo,hi); the worker count only
// decides which goroutine computes which entry.
func (p *Pool) MapRangeCounts(lo, hi int, fn func(mlo, mhi int) int64) []int64 {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	m := (n + MorselItems - 1) / MorselItems
	counts := make([]int64, m)
	p.ForEach(m, func(i int) {
		mlo := lo + i*MorselItems
		mhi := mlo + MorselItems
		if mhi > hi {
			mhi = hi
		}
		counts[i] = fn(mlo, mhi)
	})
	return counts
}

// MapShards executes fn once per ownership shard on the pool and merges the
// per-shard records in shard order. Kernels use it when tuples must be
// routed by structure ownership (hash bucket or partition segment) rather
// than split by range.
func (p *Pool) MapShards(shards int, fn func(shard int) device.Acct) device.Acct {
	if shards <= 0 {
		return device.Acct{}
	}
	accts := make([]device.Acct, shards)
	p.ForEach(shards, func(i int) { accts[i] = fn(i) })
	return MergeAccts(accts)
}

// Collect executes fn once per index of a fixed n-element grid on the pool
// and returns the results in index order — the ordered fan-out the sharded
// engine's router uses to run every hash partition's sub-join and gather
// the per-partition results for the deterministic merge. Like MapRange,
// the grid and the returned slice are pure functions of n and fn; the
// worker count only decides which goroutine computes which entry. Nested
// use (fn itself running pool kernels) is safe: the submitter always
// participates, so a saturated pool degenerates to inline execution
// instead of deadlocking.
func Collect[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
