package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"apujoin/internal/device"
)

// Pool is the morsel-driven parallel execution runtime: a fixed set of host
// worker goroutines that execute kernel ranges split into cache-sized
// morsels (or structure-ownership shards) concurrently.
//
// The cardinal rule is that the work DECOMPOSITION is a pure function of
// the data — morsel grids and shard counts never depend on the worker
// count — and every piece's device.Acct is a pure function of its piece.
// Worker count then only decides which goroutine executes which piece, so
// the merged accounting (and with it every simulated time) is bit-identical
// between Workers=1 and Workers=N; parallelism changes wall-clock, not the
// model.
type Pool struct {
	workers int
}

// MorselItems is the number of tuples per range morsel: 16Ki tuples keep a
// morsel's streaming footprint (a few int32 arrays) around the shared-L2
// size. It is a multiple of the GPU wavefront size, so wavefront grouping
// inside a morsel coincides with the grouping of an unsplit range and
// divergence accounting is unchanged by morselization.
const MorselItems = 1 << 14

// DefaultShards is the number of ownership shards insert-style kernels are
// split into. It is a balance point: more shards smooth skew, but every
// shard scans the whole range for its tuples. Fixed (worker-independent) by
// the determinism rule.
const DefaultShards = 16

// NewPool returns a pool of the given size; workers <= 0 selects
// GOMAXPROCS. A 1-worker pool executes the same decomposition inline.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// ForEach executes fn(i) for every i in [0,n), distributing indices over
// the pool's workers dynamically, and returns when all calls have finished.
// The completion barrier establishes the happens-before edge kernels rely
// on between parallel steps.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MergeAccts reduces per-piece accounting records into the record of the
// whole range. All counters sum except AtomicTargets: the pieces contend on
// the same target set (the table's buckets, a phase's key nodes), so the
// target spread of the merged batch is the largest any piece reported, not
// the sum — summing would understate contention in the device model's
// serialization term.
func MergeAccts(accts []device.Acct) device.Acct {
	var out device.Acct
	var targets int64
	for _, a := range accts {
		if a.AtomicTargets > targets {
			targets = a.AtomicTargets
		}
		a.AtomicTargets = 0
		out.Add(a)
	}
	out.AtomicTargets = targets
	return out
}

// MapRange splits [lo,hi) into the fixed MorselItems grid, executes fn over
// the morsels on the pool, and merges the per-morsel records in grid order.
func (p *Pool) MapRange(lo, hi int, fn func(mlo, mhi int) device.Acct) device.Acct {
	n := hi - lo
	if n <= 0 {
		return device.Acct{}
	}
	m := (n + MorselItems - 1) / MorselItems
	accts := make([]device.Acct, m)
	p.ForEach(m, func(i int) {
		mlo := lo + i*MorselItems
		mhi := mlo + MorselItems
		if mhi > hi {
			mhi = hi
		}
		accts[i] = fn(mlo, mhi)
	})
	return MergeAccts(accts)
}

// MapShards executes fn once per ownership shard on the pool and merges the
// per-shard records in shard order. Kernels use it when tuples must be
// routed by structure ownership (hash bucket or partition segment) rather
// than split by range.
func (p *Pool) MapShards(shards int, fn func(shard int) device.Acct) device.Acct {
	if shards <= 0 {
		return device.Acct{}
	}
	accts := make([]device.Acct, shards)
	p.ForEach(shards, func(i int) { accts[i] = fn(i) })
	return MergeAccts(accts)
}
