package sched

import (
	"math"
	"testing"
	"testing/quick"

	"apujoin/internal/device"
)

// fakeSeries builds a series whose kernels record coverage and report a
// fixed per-item instruction load.
func fakeSeries(items int, steps int, covered []map[int]int) Series {
	s := Series{Name: "fake", Items: items}
	for i := 0; i < steps; i++ {
		i := i
		s.Steps = append(s.Steps, Step{
			ID: StepID(i),
			Kernel: func(d *device.Device, lo, hi int) device.Acct {
				for j := lo; j < hi; j++ {
					covered[i][j]++
				}
				return device.Acct{Items: int64(hi - lo), Instr: int64(hi-lo) * 100}
			},
		})
	}
	return s
}

func newCoverage(steps, items int) []map[int]int {
	out := make([]map[int]int, steps)
	for i := range out {
		out[i] = make(map[int]int, items)
	}
	return out
}

func checkCoverage(t *testing.T, covered []map[int]int, items int) {
	t.Helper()
	for step, m := range covered {
		for j := 0; j < items; j++ {
			if m[j] != 1 {
				t.Fatalf("step %d item %d processed %d times", step, j, m[j])
			}
		}
	}
}

func TestRunProcessesEveryItemOncePerStep(t *testing.T) {
	f := func(r0, r1, r2 float64) bool {
		ratios := Ratios{clamp(r0), clamp(r1), clamp(r2)}
		cov := newCoverage(3, 1000)
		e := New(FixedEnv(device.UniformEnv(0.9)))
		_, err := e.Run(fakeSeries(1000, 3, cov), ratios)
		if err != nil {
			return false
		}
		for _, m := range cov {
			for j := 0; j < 1000; j++ {
				if m[j] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	x = math.Abs(x)
	return x - math.Floor(x)
}

func TestRunRejectsBadRatios(t *testing.T) {
	e := New(FixedEnv(device.UniformEnv(1)))
	cov := newCoverage(2, 10)
	if _, err := e.Run(fakeSeries(10, 2, cov), Ratios{0.5}); err == nil {
		t.Fatal("ratio count mismatch accepted")
	}
	if _, err := e.Run(fakeSeries(10, 2, cov), Ratios{0.5, 1.5}); err == nil {
		t.Fatal("out-of-range ratio accepted")
	}
}

func TestDelaysMatchPaperEquations(t *testing.T) {
	// Hand-computed example for Eq. 4: two steps, CPU ratio rises 0.2→0.8.
	cpu := []float64{10, 40}
	gpu := []float64{80, 20}
	ratios := Ratios{0.2, 0.8}
	_, _, dCPU, dGPU := Delays(cpu, gpu, ratios)
	// frac = (1-0.8)/(1-0.2) = 0.25 → D = (80 - 80×0.25) − (10+40) = 10.
	if math.Abs(dCPU[1]-10) > 1e-9 {
		t.Fatalf("Eq.4 delay = %v, want 10", dCPU[1])
	}
	if dGPU[1] != 0 {
		t.Fatalf("GPU delay should be zero, got %v", dGPU[1])
	}
}

func TestDelaysCase2(t *testing.T) {
	// Ratio falls 0.8→0.2: the GPU may stall on CPU-produced input (Eq. 5).
	cpu := []float64{80, 20}
	gpu := []float64{10, 40}
	ratios := Ratios{0.8, 0.2}
	_, _, dCPU, dGPU := Delays(cpu, gpu, ratios)
	// frac = (1-0.8)/(1-0.2) = 0.25 → D = 80 − (10 + 40 − 40×0.25) = 40.
	if math.Abs(dGPU[1]-40) > 1e-9 {
		t.Fatalf("Eq.5 delay = %v, want 40", dGPU[1])
	}
	if dCPU[1] != 0 {
		t.Fatalf("CPU delay should be zero, got %v", dCPU[1])
	}
}

func TestNoDelayWhenRatiosEqual(t *testing.T) {
	f := func(r float64, a, b uint16) bool {
		rr := clamp(r)
		cpu := []float64{float64(a), float64(b)}
		gpu := []float64{float64(b), float64(a)}
		_, _, dC, dG := Delays(cpu, gpu, Ratios{rr, rr})
		return dC[1] == 0 && dG[1] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayTotalsAgreesWithDelays(t *testing.T) {
	f := func(r0, r1, r2 float64, c0, c1, c2, g0, g1, g2 uint16) bool {
		ratios := Ratios{clamp(r0), clamp(r1), clamp(r2)}
		cpu := []float64{float64(c0), float64(c1), float64(c2)}
		gpu := []float64{float64(g0), float64(g1), float64(g2)}
		c1t, g1t, _, _ := Delays(cpu, gpu, ratios)
		c2t, g2t := DelayTotals(cpu, gpu, ratios)
		return math.Abs(c1t-c2t) < 1e-6 && math.Abs(g1t-g2t) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntermediateResultsFromRatioDifference(t *testing.T) {
	e := New(FixedEnv(device.UniformEnv(1)))
	cov := newCoverage(2, 1000)
	s := fakeSeries(1000, 2, cov)
	s.Steps[0].OutBytesPerItem = 8
	res, err := e.Run(s, Ratios{0.1, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Steps[1]
	if st.IntermediateItems != 500 {
		t.Fatalf("intermediate items %d, want 500", st.IntermediateItems)
	}
	if st.IntermediateBytes != 4000 {
		t.Fatalf("intermediate bytes %d, want 4000", st.IntermediateBytes)
	}
}

func TestPCIeChargedOnlyWhenConfigured(t *testing.T) {
	cov := newCoverage(2, 100)
	e := New(FixedEnv(device.UniformEnv(1)))
	s := fakeSeries(100, 2, cov)
	s.Steps[0].OutBytesPerItem = 8
	res, _ := e.Run(s, Ratios{0, 1})
	if res.TransferNS != 0 {
		t.Fatal("coupled run charged PCI-e time")
	}
}

func TestUniformRatios(t *testing.T) {
	u := Uniform(0.3, 4)
	if len(u) != 4 {
		t.Fatal("wrong length")
	}
	for _, v := range u {
		if v != 0.3 {
			t.Fatal("not uniform")
		}
	}
}

func TestBasicUnitCoversAllItems(t *testing.T) {
	cov := newCoverage(3, 5000)
	e := New(FixedEnv(device.UniformEnv(0.9)))
	res, err := e.RunBasicUnit(fakeSeries(5000, 3, cov), 512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, cov, 5000)
	if res.CPUChunks == 0 || res.GPUChunks == 0 {
		t.Fatalf("both devices should receive chunks: %+v", res)
	}
	if res.CPUShare <= 0 || res.CPUShare >= 1 {
		t.Fatalf("CPU share %v out of (0,1)", res.CPUShare)
	}
	if res.TotalNS < res.CPUNS || res.TotalNS < res.GPUNS {
		t.Fatal("total below device time")
	}
}

func TestGroupOrderIsPermutationSortedByWork(t *testing.T) {
	work := []int32{5, 1, 9, 1, 5, 9, 2, 0}
	order := GroupOrder(work, 0, len(work), 4)
	seen := map[int32]bool{}
	prevLevel := -1
	for _, i := range order {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
		level := int(int64(work[i]) * 4 / 10)
		if level < prevLevel {
			t.Fatalf("order not grouped by workload level")
		}
		prevLevel = level
	}
	if len(seen) != len(work) {
		t.Fatal("not a permutation")
	}
}

func TestGroupOrderSubrange(t *testing.T) {
	work := []int32{9, 1, 2, 3, 4, 9}
	order := GroupOrder(work, 1, 5, 2)
	if len(order) != 4 {
		t.Fatalf("order length %d, want 4", len(order))
	}
	for _, i := range order {
		if i < 1 || i >= 5 {
			t.Fatalf("index %d escapes [1,5)", i)
		}
	}
}

func TestGroupOrderEmptyAndSingleton(t *testing.T) {
	if GroupOrder(nil, 0, 0, 4) != nil {
		t.Fatal("empty range should return nil")
	}
	o := GroupOrder([]int32{7}, 0, 1, 4)
	if len(o) != 1 || o[0] != 0 {
		t.Fatalf("singleton order %v", o)
	}
}
