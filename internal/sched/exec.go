package sched

import (
	"context"
	"fmt"

	"apujoin/internal/device"
	"apujoin/internal/mem"
)

// Exec runs step series under a co-processing scheme on a pair of devices.
type Exec struct {
	CPU *device.Device
	GPU *device.Device
	Env EnvFor
	// PCIe, when non-nil, emulates the discrete architecture: intermediate
	// results moved between devices by ratio changes, and phase inputs and
	// outputs, are charged bus transfers (paper Sec. 5.1).
	PCIe *mem.PCIe
	// Pool, when non-nil, executes steps that provide a ParKernel across
	// the pool's workers. The simulated timings are identical with and
	// without a pool of any size for such steps only when the kernels keep
	// their decomposition worker-independent; the stock kernels do.
	Pool *Pool
	// Ctx, when non-nil, is checked at step boundaries: a cancelled context
	// aborts the series with the context's error. Steps are never torn
	// mid-kernel, so data structures stay consistent up to the completed
	// step.
	Ctx context.Context
}

// cancelled returns the context's error if the executor's context is done.
func (e *Exec) cancelled() error {
	if e.Ctx == nil {
		return nil
	}
	select {
	case <-e.Ctx.Done():
		return e.Ctx.Err()
	default:
		return nil
	}
}

// runKernel dispatches one device's share of a step, through the parallel
// kernel when both a pool and a ParKernel are available.
func (e *Exec) runKernel(st Step, d *device.Device, lo, hi int) device.Acct {
	if e.Pool != nil && st.ParKernel != nil {
		return st.ParKernel(d, lo, hi, e.Pool)
	}
	return st.Kernel(d, lo, hi)
}

// New returns an executor over the coupled A8-3870K devices.
func New(envFor EnvFor) *Exec {
	return &Exec{
		CPU: device.New(device.APUCPU()),
		GPU: device.New(device.APUGPU()),
		Env: envFor,
	}
}

// Run executes the series with the given per-step CPU ratios (PL semantics;
// pass Uniform(r, n) for DD and 0/1 ratios for OL) and returns the timing
// result. The kernels perform the real work: after Run returns, the data
// structures the kernels touch are fully updated regardless of the ratios.
func (e *Exec) Run(s Series, ratios Ratios) (Result, error) {
	if err := ratios.Validate(len(s.Steps)); err != nil {
		return Result{}, fmt.Errorf("series %s: %w", s.Name, err)
	}
	res := Result{Name: s.Name, Steps: make([]StepResult, len(s.Steps))}

	for i, st := range s.Steps {
		if err := e.cancelled(); err != nil {
			return Result{}, fmt.Errorf("series %s: %w", s.Name, err)
		}
		r := ratios[i]
		split := int(r * float64(s.Items))
		if split < 0 {
			split = 0
		}
		if split > s.Items {
			split = s.Items
		}

		var sr StepResult
		sr.ID = st.ID
		sr.Ratio = r
		if split > 0 {
			sr.CPUAcct = e.runKernel(st, e.CPU, 0, split)
			sr.CPUNS = e.CPU.TimeNS(sr.CPUAcct, e.Env(st.ID, e.CPU))
		}
		if split < s.Items {
			sr.GPUAcct = e.runKernel(st, e.GPU, split, s.Items)
			sr.GPUNS = e.GPU.TimeNS(sr.GPUAcct, e.Env(st.ID, e.GPU))
		}

		// Intermediate results crossing devices (paper Sec. 3.2: the
		// workload-ratio difference between consecutive steps determines
		// the amount of intermediate results).
		if i > 0 {
			d := ratios[i] - ratios[i-1]
			if d < 0 {
				d = -d
			}
			sr.IntermediateItems = int64(d * float64(s.Items))
			sr.IntermediateBytes = sr.IntermediateItems * s.Steps[i-1].OutBytesPerItem
			if e.PCIe != nil && sr.IntermediateBytes > 0 {
				t := e.PCIe.TransferNS(sr.IntermediateBytes)
				res.TransferNS += t
			}
		}

		res.Steps[i] = sr
		if st.After != nil {
			st.After()
		}
	}

	applyDelays(&res)
	res.TotalNS = maxf(res.CPUNS, res.GPUNS) + res.TransferNS
	return res, nil
}

// applyDelays computes the pipelined execution delays and per-device totals
// for an executed series.
func applyDelays(res *Result) {
	n := len(res.Steps)
	cpu := make([]float64, n)
	gpu := make([]float64, n)
	ratios := make(Ratios, n)
	for i, st := range res.Steps {
		cpu[i] = st.CPUNS
		gpu[i] = st.GPUNS
		ratios[i] = st.Ratio
	}
	cpuTot, gpuTot, dCPU, dGPU := Delays(cpu, gpu, ratios)
	for i := range res.Steps {
		res.Steps[i].DelayCPUNS = dCPU[i]
		res.Steps[i].DelayGPUNS = dGPU[i]
	}
	res.CPUNS = cpuTot
	res.GPUNS = gpuTot
}

// Delays computes the pipelined execution delays of the paper's Eqs. 4 and 5
// and the per-device totals of Eq. 2, given raw per-step times and ratios.
//
// Case 1 (r_i > r_{i-1}): the CPU waits for GPU-produced input,
//
//	D_i^CPU = (Σ_{j<i} T_j^GPU − T_{i-1}^GPU × (1−r_i)/(1−r_{i-1})) − Σ_{j≤i} T_j^CPU
//
// Case 2 (r_i < r_{i-1}) mirrors it for the GPU (Eq. 5: the subtracted term
// is the GPU's own step-i time overlapping the CPU's step-(i-1) production).
// Negative delays clamp to 0. The cost model (internal/cost) evaluates the
// same equations over estimated step times.
func Delays(cpuNS, gpuNS []float64, ratios Ratios) (cpuTot, gpuTot float64, dCPU, dGPU []float64) {
	n := len(ratios)
	dCPU = make([]float64, n)
	dGPU = make([]float64, n)
	// Prefix sums of step times with preceding stalls folded in, as the
	// equations accumulate T_j which include earlier delays.
	var cpuSum, gpuSum float64
	for i := 0; i < n; i++ {
		if i > 0 {
			ri := ratios[i]
			rp := ratios[i-1]
			switch {
			case ri > rp:
				frac := 0.0
				if rp < 1 {
					frac = (1 - ri) / (1 - rp)
				}
				d := (gpuSum - gpuNS[i-1]*frac) - (cpuSum + cpuNS[i])
				if d > 0 {
					dCPU[i] = d
				}
			case ri < rp:
				frac := 0.0
				if ri < 1 {
					frac = (1 - rp) / (1 - ri)
				}
				d := cpuSum - (gpuSum + gpuNS[i] - gpuNS[i]*frac)
				if d > 0 {
					dGPU[i] = d
				}
			}
		}
		cpuSum += cpuNS[i] + dCPU[i]
		gpuSum += gpuNS[i] + dGPU[i]
	}
	return cpuSum, gpuSum, dCPU, dGPU
}

// DelayTotals is Delays without the per-step delay slices, allocation-free
// for the optimizer's inner loop.
func DelayTotals(cpuNS, gpuNS []float64, ratios Ratios) (cpuTot, gpuTot float64) {
	var cpuSum, gpuSum float64
	for i := range ratios {
		var dC, dG float64
		if i > 0 {
			ri := ratios[i]
			rp := ratios[i-1]
			switch {
			case ri > rp:
				frac := 0.0
				if rp < 1 {
					frac = (1 - ri) / (1 - rp)
				}
				if d := (gpuSum - gpuNS[i-1]*frac) - (cpuSum + cpuNS[i]); d > 0 {
					dC = d
				}
			case ri < rp:
				frac := 0.0
				if ri < 1 {
					frac = (1 - rp) / (1 - ri)
				}
				if d := cpuSum - (gpuSum + gpuNS[i] - gpuNS[i]*frac); d > 0 {
					dG = d
				}
			}
		}
		cpuSum += cpuNS[i] + dC
		gpuSum += gpuNS[i] + dG
	}
	return cpuSum, gpuSum
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
