// Package sched implements the co-processing schemes of the paper
// (Sec. 3.2) over series of fine-grained steps:
//
//   - OL (off-loading): each step runs entirely on one device.
//   - DD (data dividing): one workload ratio r splits every step's tuples
//     between the CPU and the GPU.
//   - PL (pipelined execution): a per-step ratio r_i; DD and OL are the
//     special cases "all ratios equal" and "all ratios in {0,1}".
//   - BasicUnit (appendix): dynamic coarse-grained chunk scheduling used as
//     the comparison baseline in Figs. 16–18.
//
// The executor runs each step's CPU share and GPU share through the real
// kernels, converts the accounting into simulated per-step times, and
// applies the paper's pipelined-delay equations (Eqs. 4 and 5) to obtain
// the total elapsed time (Eqs. 1 and 2). On the emulated discrete
// architecture it additionally charges PCI-e transfers for the data the
// ratio differences move between devices.
package sched

import (
	"fmt"

	"apujoin/internal/device"
)

// StepID identifies a fine-grained step from the paper's Algorithms 1 and 2.
type StepID int

const (
	N1 StepID = iota // compute partition number
	N2               // visit the partition header
	N3               // insert <key,rid> into partition
	B1               // compute hash bucket number
	B2               // visit the hash bucket header
	B3               // visit the key lists, create key header if necessary
	B4               // insert the record id into the rid list
	P1               // compute hash bucket number
	P2               // visit the hash bucket header
	P3               // visit the hash key lists
	P4               // visit matching build tuple, produce output
)

var stepNames = [...]string{"n1", "n2", "n3", "b1", "b2", "b3", "b4", "p1", "p2", "p3", "p4"}

// String returns the paper's step name (n1…p4).
func (s StepID) String() string {
	if int(s) < len(stepNames) {
		return stepNames[s]
	}
	return fmt.Sprintf("step(%d)", int(s))
}

// Kernel executes the real work of one step over items [lo,hi) on a device
// and returns the accounting record. Kernels are closures created by the
// join driver, capturing the hash table and intermediate arrays.
type Kernel func(d *device.Device, lo, hi int) device.Acct

// Barrier is an optional host-side action between two steps (e.g. the
// histogram prefix sum between n2 and n3). It runs once after the step
// completes on both devices.
type Barrier func()

// ParKernel executes the real work of one step over items [lo,hi) like a
// Kernel, but decomposes the range over the pool's workers internally
// (range morsels for streaming steps, ownership shards for insert steps).
// Implementations must keep the decomposition worker-independent so the
// returned accounting is identical for any pool size.
type ParKernel func(d *device.Device, lo, hi int, p *Pool) device.Acct

// Step is one data-parallel step of a series.
type Step struct {
	ID StepID
	// OutBytesPerItem is the size of the intermediate result one item
	// produces for the next step; it prices PCI-e transfers of
	// intermediates on the discrete architecture.
	OutBytesPerItem int64
	Kernel          Kernel
	// ParKernel, when non-nil, replaces Kernel on executors carrying a
	// worker pool. Steps without one (host barriers aside, e.g. the
	// grouped-execution kernels whose processing order is itself the
	// optimization) always run single-stream.
	ParKernel ParKernel
	// After, if non-nil, runs on the host once the step has completed.
	After Barrier
}

// Series is a sequence of steps separated by data dependencies, all over
// the same item count. A hash join is a sequence of series separated by
// barriers: g× (n1..n3), then (b1..b4), then (p1..p4).
type Series struct {
	Name  string
	Items int
	Steps []Step
}

// Ratios is the CPU workload ratio per step (paper notation r_i: the CPU
// processes the first r_i fraction of items, the GPU the remainder).
type Ratios []float64

// Uniform returns DD ratios: the same r for every one of n steps.
func Uniform(r float64, n int) Ratios {
	out := make(Ratios, n)
	for i := range out {
		out[i] = r
	}
	return out
}

// Validate checks all ratios are within [0,1] and the count matches n.
func (r Ratios) Validate(n int) error {
	if len(r) != n {
		return fmt.Errorf("sched: %d ratios for %d steps", len(r), n)
	}
	for i, v := range r {
		if v < 0 || v > 1 {
			return fmt.Errorf("sched: ratio %d out of range: %v", i, v)
		}
	}
	return nil
}

// StepResult records one executed step.
type StepResult struct {
	ID         StepID
	Ratio      float64
	CPUNS      float64
	GPUNS      float64
	DelayCPUNS float64
	DelayGPUNS float64
	CPUAcct    device.Acct
	GPUAcct    device.Acct
	// IntermediateItems is the number of items whose intermediate results
	// cross devices relative to the previous step: |r_i - r_{i-1}| × x.
	IntermediateItems int64
	IntermediateBytes int64
}

// Result is the outcome of executing a series.
type Result struct {
	Name  string
	Steps []StepResult
	// CPUNS / GPUNS are the per-device totals including pipeline delays
	// (Eq. 2); TotalNS is their max (Eq. 1).
	CPUNS, GPUNS, TotalNS float64
	// TransferNS is the PCI-e time charged on the discrete architecture.
	TransferNS float64
}

// EnvFor supplies the per-step memory environment (cache hit ratios).
// The join driver implements it from the shared-cache model and the
// current working-set sizes.
type EnvFor func(id StepID, d *device.Device) device.Env

// FixedEnv returns an EnvFor that always produces the same environment,
// convenient for tests and microbenchmarks.
func FixedEnv(e device.Env) EnvFor {
	return func(StepID, *device.Device) device.Env { return e }
}
