package sched

import (
	"fmt"

	"apujoin/internal/device"
)

// BasicUnitResult reports a BasicUnit run: the appendix's coarse-grained
// dynamic scheduling baseline, where whole chunks of tuples are assigned to
// whichever device becomes free and processed through every step of the
// phase on that device.
type BasicUnitResult struct {
	Name    string
	CPUNS   float64
	GPUNS   float64
	TotalNS float64
	// CPUShare is the fraction of items the CPU ended up processing — the
	// per-phase ratio reported in the paper's Figs. 17 and 18.
	CPUShare float64
	// Chunks dispatched per device.
	CPUChunks, GPUChunks int
}

// BasicUnitChunkNS is the dispatch overhead of grabbing one chunk from the
// shared work queue (an atomic on the queue head plus scheduling logic).
const BasicUnitChunkNS = 2500.0

// RunBasicUnit executes the series with the BasicUnit scheme. cpuChunk and
// gpuChunk are the per-device chunk sizes in tuples ("the chunk size is
// tuned for the target architecture").
//
// The scheduler is simulated greedily: the device whose simulated clock is
// lower grabs the next chunk and runs all steps of the series over it.
// This is exactly the deficiency the paper calls out — a device processes
// every step of its chunk even when some steps run far better on the peer.
//
// The series must not contain mid-series host barriers whose results later
// steps depend on (the n2→n3 prefix sum): BasicUnit is defined by the paper
// for the build and probe operations, whose steps are per-tuple independent.
// After hooks still run once at the end. Like Run, a cancelled Exec.Ctx
// aborts at the next chunk boundary with the context's error.
func (e *Exec) RunBasicUnit(s Series, cpuChunk, gpuChunk int) (BasicUnitResult, error) {
	if cpuChunk <= 0 {
		cpuChunk = 1 << 14
	}
	if gpuChunk <= 0 {
		gpuChunk = 1 << 16
	}
	res := BasicUnitResult{Name: s.Name}

	var cpuClock, gpuClock float64
	var cpuItems, gpuItems int
	next := 0
	for next < s.Items {
		if err := e.cancelled(); err != nil {
			return BasicUnitResult{}, fmt.Errorf("series %s: %w", s.Name, err)
		}
		onCPU := cpuClock <= gpuClock
		var chunk int
		var dev *device.Device
		if onCPU {
			chunk = cpuChunk
			dev = e.CPU
		} else {
			chunk = gpuChunk
			dev = e.GPU
		}
		lo := next
		hi := lo + chunk
		if hi > s.Items {
			hi = s.Items
		}
		next = hi

		var t float64
		for _, st := range s.Steps {
			a := st.Kernel(dev, lo, hi)
			t += dev.TimeNS(a, e.Env(st.ID, dev))
		}
		t += BasicUnitChunkNS
		if onCPU {
			cpuClock += t
			cpuItems += hi - lo
			res.CPUChunks++
		} else {
			gpuClock += t
			gpuItems += hi - lo
			res.GPUChunks++
		}
	}

	// Run the barrier hooks once everything is processed.
	for _, st := range s.Steps {
		if st.After != nil {
			st.After()
		}
	}

	res.CPUNS = cpuClock
	res.GPUNS = gpuClock
	res.TotalNS = maxf(cpuClock, gpuClock)
	if s.Items > 0 {
		res.CPUShare = float64(cpuItems) / float64(s.Items)
	}
	return res, nil
}
