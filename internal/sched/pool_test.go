package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"apujoin/internal/device"
)

func TestPoolForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 64} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]int32
		p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	if w := p.Workers(); w < 1 {
		t.Fatalf("default pool size %d", w)
	}
	p.Close()
	p = NewPool(5)
	if w := p.Workers(); w != 5 {
		t.Fatalf("pool size %d, want 5", w)
	}
	p.Close()
}

// TestPoolSharedAcrossSubmitters is the resident-pool contract: many
// goroutines submit batches into one pool concurrently, and every batch
// completes with each index executed exactly once.
func TestPoolSharedAcrossSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const submitters = 8
	const n = 500
	var wg sync.WaitGroup
	errs := make(chan string, submitters)
	for q := 0; q < submitters; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hits [n]int32
			p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for _, h := range hits {
				if h != 1 {
					errs <- "batch index executed wrong number of times"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPoolCloseStopsWorkers checks that Close reclaims the resident
// goroutines, is idempotent, and that ForEach still completes (inline)
// afterwards.
func TestPoolCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	// Run something so the workers are demonstrably alive.
	var count int64
	p.ForEach(100, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("pre-close ForEach ran %d of 100", count)
	}
	p.Close()
	p.Close() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d, want <= %d", g, before)
	}

	count = 0
	p.ForEach(50, func(i int) { atomic.AddInt64(&count, 1) })
	if count != 50 {
		t.Fatalf("post-close ForEach ran %d of 50", count)
	}
}

// TestMapRangeGridIsWorkerIndependent checks the determinism contract at
// the pool level: the morsel grid, and therefore the merged accounting, is
// a function of the range alone.
func TestMapRangeGridIsWorkerIndependent(t *testing.T) {
	kernel := func(mlo, mhi int) device.Acct {
		var a device.Acct
		a.Items = int64(mhi - mlo)
		a.Instr = int64(mlo) // encodes grid positions into the merge
		a.AtomicTargets = 77
		return a
	}
	lo, hi := 129, 100000
	var ref device.Acct
	for i, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		got := p.MapRange(lo, hi, kernel)
		p.Close()
		if got.Items != int64(hi-lo) {
			t.Fatalf("workers=%d: items %d, want %d", workers, got.Items, hi-lo)
		}
		if got.AtomicTargets != 77 {
			t.Fatalf("workers=%d: targets %d, want max rule 77", workers, got.AtomicTargets)
		}
		if i == 0 {
			ref = got
		} else if got != ref {
			t.Fatalf("workers=%d: acct %+v differs from single-worker %+v", workers, got, ref)
		}
	}
}

func TestMapRangeMorselsAreWavefrontAligned(t *testing.T) {
	if MorselItems%64 != 0 {
		t.Fatalf("MorselItems %d not a multiple of the wavefront size", MorselItems)
	}
	var starts []int
	p := NewPool(1)
	defer p.Close()
	p.MapRange(0, 3*MorselItems+5, func(mlo, mhi int) device.Acct {
		starts = append(starts, mlo)
		return device.Acct{}
	})
	want := []int{0, MorselItems, 2 * MorselItems, 3 * MorselItems}
	if len(starts) != len(want) {
		t.Fatalf("morsel starts %v", starts)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("morsel starts %v, want %v", starts, want)
		}
	}
}

func TestMergeAcctsTargetRule(t *testing.T) {
	a := device.Acct{AtomicOps: 5, AtomicTargets: 10}
	b := device.Acct{AtomicOps: 7, AtomicTargets: 30}
	m := MergeAccts([]device.Acct{a, b})
	if m.AtomicOps != 12 || m.AtomicTargets != 30 {
		t.Fatalf("merge %+v: want ops 12, targets 30", m)
	}
}
