package sched

import (
	"sync/atomic"
	"testing"

	"apujoin/internal/device"
)

func TestPoolForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 64} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]int32
		p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestPoolDefaultSize(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("default pool size %d", w)
	}
	if w := NewPool(5).Workers(); w != 5 {
		t.Fatalf("pool size %d, want 5", w)
	}
}

// TestMapRangeGridIsWorkerIndependent checks the determinism contract at
// the pool level: the morsel grid, and therefore the merged accounting, is
// a function of the range alone.
func TestMapRangeGridIsWorkerIndependent(t *testing.T) {
	kernel := func(mlo, mhi int) device.Acct {
		var a device.Acct
		a.Items = int64(mhi - mlo)
		a.Instr = int64(mlo) // encodes grid positions into the merge
		a.AtomicTargets = 77
		return a
	}
	lo, hi := 129, 100000
	var ref device.Acct
	for i, workers := range []int{1, 2, 8} {
		got := NewPool(workers).MapRange(lo, hi, kernel)
		if got.Items != int64(hi-lo) {
			t.Fatalf("workers=%d: items %d, want %d", workers, got.Items, hi-lo)
		}
		if got.AtomicTargets != 77 {
			t.Fatalf("workers=%d: targets %d, want max rule 77", workers, got.AtomicTargets)
		}
		if i == 0 {
			ref = got
		} else if got != ref {
			t.Fatalf("workers=%d: acct %+v differs from single-worker %+v", workers, got, ref)
		}
	}
}

func TestMapRangeMorselsAreWavefrontAligned(t *testing.T) {
	if MorselItems%64 != 0 {
		t.Fatalf("MorselItems %d not a multiple of the wavefront size", MorselItems)
	}
	var starts []int
	NewPool(1).MapRange(0, 3*MorselItems+5, func(mlo, mhi int) device.Acct {
		starts = append(starts, mlo)
		return device.Acct{}
	})
	want := []int{0, MorselItems, 2 * MorselItems, 3 * MorselItems}
	if len(starts) != len(want) {
		t.Fatalf("morsel starts %v", starts)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("morsel starts %v, want %v", starts, want)
		}
	}
}

func TestMergeAcctsTargetRule(t *testing.T) {
	a := device.Acct{AtomicOps: 5, AtomicTargets: 10}
	b := device.Acct{AtomicOps: 7, AtomicTargets: 30}
	m := MergeAccts([]device.Acct{a, b})
	if m.AtomicOps != 12 || m.AtomicTargets != 30 {
		t.Fatalf("merge %+v: want ops 12, targets 30", m)
	}
}
