package sched

// GroupOrder implements the workload-divergence grouping optimization
// (paper Sec. 3.3): input items are grouped by their expected workload so
// that work items within the same wavefront perform similar amounts of
// work, reducing SIMD lockstep penalties.
//
// work[i] is the workload hint of item i (e.g. the bucket tuple count
// snapshotted by p2). numGroups is the tuning knob trading grouping
// overhead against divergence reduction. The returned slice is a
// permutation of the indices [lo,hi) ordered by workload group; passing it
// as the order argument of the b3/p3/p4 kernels executes them grouped.
func GroupOrder(work []int32, lo, hi, numGroups int) []int32 {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if numGroups < 1 {
		numGroups = 1
	}

	// Find the workload range.
	maxW := int32(0)
	for i := lo; i < hi; i++ {
		if work[i] > maxW {
			maxW = work[i]
		}
	}
	if maxW == 0 {
		maxW = 1
	}

	// Counting sort into numGroups workload levels. level = w*G/(max+1)
	// keeps levels balanced without a full sort, matching the cheap
	// grouping pass the optimization relies on.
	level := func(w int32) int {
		if w < 0 {
			w = 0
		}
		return int(int64(w) * int64(numGroups) / int64(maxW+1))
	}
	counts := make([]int32, numGroups+1)
	for i := lo; i < hi; i++ {
		counts[level(work[i])+1]++
	}
	for g := 1; g <= numGroups; g++ {
		counts[g] += counts[g-1]
	}
	order := make([]int32, n)
	for i := lo; i < hi; i++ {
		g := level(work[i])
		order[counts[g]] = int32(i)
		counts[g]++
	}
	return order
}

// GroupCostAcct returns the accounting charge of performing the grouping
// pass itself over n items: a counting sort is two streaming passes plus a
// scatter whose group-bin pointers stay cached (the random component is a
// small fraction of the items).
func GroupCostAcct(n int) (instr int64, seqBytes int64, randAccesses int64) {
	return int64(n) * 6, int64(n) * 12, int64(n) / 16
}
