// Package alloc implements the software dynamic memory allocator of the
// paper (Sec. 3.3, "Memory allocator").
//
// OpenCL 1.2 has no in-kernel malloc, so the paper pre-allocates an array
// and serves requests from it. The Basic strategy advances a single global
// pointer with one atomic add per request, which suffers heavy contention
// under the GPU's thread parallelism. The Block strategy (the paper's
// "optimized memory allocator") grabs a whole block per work group with one
// global atomic and serves requests inside the block through a local-memory
// pointer; the block size is the tuning knob evaluated in Fig. 11.
//
// The arena does the real allocation (offsets into a pre-allocated int32
// array, mirroring OpenCL buffer indices instead of Go pointers) while
// counting the global atomics and local-memory operations each strategy
// would issue. Kernels snapshot Stats around their batch and feed the delta
// into their device accounting record.
package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Strategy selects the allocator implementation.
type Strategy int

const (
	// Block grabs block-sized chunks with a global atomic and serves
	// requests from the chunk via a local pointer. It is the paper's
	// optimized allocator and the default.
	Block Strategy = iota
	// Basic uses one global atomic add per allocation request.
	Basic
)

// String names the strategy as in the paper's Fig. 12 ("Basic" / "Ours").
func (s Strategy) String() string {
	if s == Basic {
		return "Basic"
	}
	return "Block"
}

// WordBytes is the allocation unit: a 4-byte integer, matching the paper's
// all-int32 data layout.
const WordBytes = 4

// DefaultBlockBytes is the paper's tuned block size (Sec. 5.4: 2 KB).
const DefaultBlockBytes = 2048

// Config parameterizes an Arena.
type Config struct {
	Strategy   Strategy
	BlockBytes int // used by Block; defaulted to DefaultBlockBytes
}

// Stats counts allocator activity. GlobalAtomics are contended operations on
// the single global pointer; LocalOps are per-request local-memory updates
// (Block strategy only). WastedWords counts fragmentation at block ends.
type Stats struct {
	Allocs        int64
	Words         int64
	GlobalAtomics int64
	LocalOps      int64
	WastedWords   int64
}

// Sub returns s - t, the activity between two snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Allocs:        s.Allocs - t.Allocs,
		Words:         s.Words - t.Words,
		GlobalAtomics: s.GlobalAtomics - t.GlobalAtomics,
		LocalOps:      s.LocalOps - t.LocalOps,
		WastedWords:   s.WastedWords - t.WastedWords,
	}
}

// Add accumulates t into s.
func (s *Stats) Add(t Stats) {
	s.Allocs += t.Allocs
	s.Words += t.Words
	s.GlobalAtomics += t.GlobalAtomics
	s.LocalOps += t.LocalOps
	s.WastedWords += t.WastedWords
}

// Arena is a pre-allocated int32 array serving dynamic requests.
//
// The serial entry point Alloc is not safe for concurrent use; the parallel
// execution engine instead hands each worker a Local view (see local.go)
// whose block grabs go through Grab, the only concurrent operation. While
// any Local is live the backing array never moves: Grab serves strictly
// from the pre-sized capacity and refuses to grow.
type Arena struct {
	cfg        Config
	words      []int32
	next       atomic.Int64 // bumped by Grab (concurrent) and Alloc (serial)
	blockLeft  int          // words remaining in the current block (Block strategy)
	blockWords int
	stats      Stats
	statsMu    sync.Mutex // guards stats folds from closing Locals
}

// New returns an arena with capacity for capWords int32 words.
func New(cfg Config, capWords int) *Arena {
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = DefaultBlockBytes
	}
	bw := cfg.BlockBytes / WordBytes
	if bw < 1 {
		bw = 1
	}
	if capWords < 1 {
		capWords = 1
	}
	return &Arena{cfg: cfg, words: make([]int32, capWords), blockWords: bw}
}

// Config returns the arena's configuration.
func (a *Arena) Config() Config { return a.cfg }

// Stats returns a snapshot of the allocator counters.
func (a *Arena) Stats() Stats { return a.stats }

// Used returns the number of words handed out (including block waste).
func (a *Arena) Used() int { return int(a.next.Load()) }

// Cap returns the arena capacity in words.
func (a *Arena) Cap() int { return len(a.words) }

// Words exposes the backing array; callers index it with offsets returned
// by Alloc, exactly as OpenCL kernels index a pre-allocated buffer.
func (a *Arena) Words() []int32 { return a.words }

// At returns a pointer to word i for read-modify-write sequences.
func (a *Arena) At(i int32) *int32 { return &a.words[i] }

// Alloc reserves n words and returns the offset of the first.
// The arena grows transparently if exhausted (the paper sizes the
// pre-allocation generously; growth keeps the library usable without
// pre-sizing while the accounting still reflects the pre-allocated design).
func (a *Arena) Alloc(n int) int32 {
	if n <= 0 {
		panic(fmt.Sprintf("alloc: non-positive allocation %d", n))
	}
	a.stats.Allocs++
	a.stats.Words += int64(n)

	switch a.cfg.Strategy {
	case Basic:
		a.stats.GlobalAtomics++
	case Block:
		if n > a.blockWords {
			// Oversized request bypasses blocking with a global atomic.
			a.stats.GlobalAtomics++
			a.blockLeft = 0
			break
		}
		if a.blockLeft < n {
			// Grab a fresh block: one global atomic; the remainder of the
			// previous block is wasted.
			a.stats.WastedWords += int64(a.blockLeft)
			a.next.Add(int64(a.blockLeft))
			a.blockLeft = a.blockWords
			a.stats.GlobalAtomics++
		}
		a.blockLeft -= n
		a.stats.LocalOps++
	}

	off := a.next.Load()
	a.ensure(int(off) + n)
	a.next.Store(off + int64(n))
	return int32(off)
}

// Grab reserves n words with one atomic bump of the arena pointer — the
// "global atomic" of the paper's allocator model — and is the only
// operation safe to call concurrently. It never grows the arena: callers
// (worker Locals) run inside parallel phases where the backing array must
// stay put, so arenas are pre-sized for their worst case and exhaustion is
// a sizing bug, not a runtime condition.
func (a *Arena) Grab(n int) int32 {
	if n <= 0 {
		panic(fmt.Sprintf("alloc: non-positive grab %d", n))
	}
	end := a.next.Add(int64(n))
	if end > int64(len(a.words)) {
		panic(fmt.Sprintf("alloc: arena exhausted during parallel phase (%d of %d words); pre-size the arena", end, len(a.words)))
	}
	return int32(end - int64(n))
}

// foldStats merges a closing Local's counters into the arena totals.
func (a *Arena) foldStats(s Stats) {
	a.statsMu.Lock()
	a.stats.Add(s)
	a.statsMu.Unlock()
}

// GroupGrabs accounts for the per-work-group partial blocks the single-stream
// simulation cannot see: when a kernel with groups work groups finishes, each
// group abandons its partial block. Callers invoke it once per kernel launch
// under the Block strategy.
func (a *Arena) GroupGrabs(groups int) {
	if a.cfg.Strategy != Block || groups <= 1 {
		return
	}
	// Each extra group grabbed at least one block of its own and wasted
	// half a block on average.
	a.stats.GlobalAtomics += int64(groups - 1)
	a.stats.WastedWords += int64(groups-1) * int64(a.blockWords) / 2
}

// Reset forgets all allocations but keeps capacity and configuration.
func (a *Arena) Reset() {
	a.next.Store(0)
	a.blockLeft = 0
	a.stats = Stats{}
	for i := range a.words {
		a.words[i] = 0
	}
}

func (a *Arena) ensure(n int) {
	if n <= len(a.words) {
		return
	}
	newCap := len(a.words) * 2
	for newCap < n {
		newCap *= 2
	}
	w := make([]int32, newCap)
	copy(w, a.words)
	a.words = w
}
