package alloc

import (
	"sync"
	"testing"
)

func TestLocalBlockAccounting(t *testing.T) {
	a := New(Config{Strategy: Block, BlockBytes: 64}, 1024) // 16-word blocks
	l := a.NewLocal()
	for i := 0; i < 8; i++ {
		l.Alloc(3) // 24 words: 5 served by block 1, 3 by block 2
	}
	st := l.Stats()
	if st.Allocs != 8 || st.Words != 24 {
		t.Fatalf("allocs/words %+v", st)
	}
	if st.GlobalAtomics != 2 {
		t.Fatalf("global atomics %d, want 2 block grabs", st.GlobalAtomics)
	}
	if st.LocalOps != 8 {
		t.Fatalf("local ops %d, want 8", st.LocalOps)
	}
	l.Close()
	if got := a.Stats(); got.Allocs != 8 || got.GlobalAtomics != 2 {
		t.Fatalf("folded stats %+v", got)
	}
	// 2 blocks grabbed: block1 wasted 1 word (16-15), block2 abandoned
	// with 7 left at Close.
	if got := a.Stats(); got.WastedWords != 1+7 {
		t.Fatalf("wasted %d, want 8", got.WastedWords)
	}
}

func TestLocalBasicStrategy(t *testing.T) {
	a := New(Config{Strategy: Basic}, 128)
	l := a.NewLocal()
	l.Alloc(2)
	l.Alloc(2)
	if st := l.Stats(); st.GlobalAtomics != 2 || st.LocalOps != 0 {
		t.Fatalf("basic stats %+v", st)
	}
	l.Close()
}

func TestLocalOversizedRequest(t *testing.T) {
	a := New(Config{Strategy: Block, BlockBytes: 64}, 1024)
	l := a.NewLocal()
	off := l.Alloc(100) // > 16-word block: direct grab
	if off < 0 || int(off)+100 > a.Cap() {
		t.Fatalf("oversized offset %d", off)
	}
	if st := l.Stats(); st.GlobalAtomics != 1 || st.LocalOps != 0 {
		t.Fatalf("oversized stats %+v", st)
	}
	l.Close()
}

// TestGrabConcurrent hammers Grab from many goroutines and checks the
// handed-out ranges are disjoint.
func TestGrabConcurrent(t *testing.T) {
	const goroutines, grabs, n = 8, 200, 3
	a := New(Config{}, goroutines*grabs*n)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(tag int32) {
			defer wg.Done()
			w := a.Words()
			for i := 0; i < grabs; i++ {
				off := a.Grab(n)
				for j := int32(0); j < n; j++ {
					w[off+j] = tag
				}
			}
		}(int32(g + 1))
	}
	wg.Wait()
	if a.Used() != goroutines*grabs*n {
		t.Fatalf("used %d", a.Used())
	}
	counts := map[int32]int{}
	for _, v := range a.Words() {
		counts[v]++
	}
	for g := 1; g <= goroutines; g++ {
		if counts[int32(g)] != grabs*n {
			t.Fatalf("goroutine %d owns %d words, want %d (overlapping grabs)", g, counts[int32(g)], grabs*n)
		}
	}
}

func TestGrabRefusesToGrow(t *testing.T) {
	a := New(Config{}, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("grab beyond capacity must panic, not grow")
		}
	}()
	a.Grab(9)
}

func TestParallelCapWords(t *testing.T) {
	cfg := Config{Strategy: Block, BlockBytes: 512} // 128-word blocks
	// 129-word chunks exceed the block: direct grabs, no blow-up.
	if got := ParallelCapWords(cfg, 1290, 129, 4); got < 1290 || got > 1290+64 {
		t.Fatalf("oversized cap %d", got)
	}
	// 33-word requests: 3 per block, 29 wasted → ~4/3 inflation.
	got := ParallelCapWords(cfg, 3300, 33, 2)
	if got < 3300*128/96 {
		t.Fatalf("cap %d does not cover block waste", got)
	}
	// It must actually be enough: serve the worst case through Locals.
	a := New(cfg, got)
	l1, l2 := a.NewLocal(), a.NewLocal()
	for served := 0; served+33 <= 3300; served += 66 {
		l1.Alloc(33)
		l2.Alloc(33)
	}
	l1.Close()
	l2.Close()
}
