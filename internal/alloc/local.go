package alloc

// Local is a worker-private view of an Arena for parallel kernel execution,
// mirroring the paper's optimized allocator at the work-group level: the
// worker grabs a whole block from the shared arena with one global atomic
// (Grab) and serves requests inside the block through a private pointer,
// counting one local-memory operation per request. Offsets returned by a
// Local index the parent's Words array, so structures built by different
// workers link together exactly as in the single-stream allocator.
//
// Accounting determinism: a Local's Stats depend only on its own request
// sequence (and the configured block size), never on scheduling, so a fixed
// work decomposition yields identical allocator accounting for any worker
// count. The placement of blocks within the parent arena does depend on
// scheduling, but nothing accounts for or depends on absolute offsets.
type Local struct {
	parent     *Arena
	strategy   Strategy
	blockWords int
	cur        int32 // next free offset in the current block
	left       int   // words remaining in the current block
	stats      Stats
}

// NewLocal returns a fresh worker-private view. Each parallel kernel shard
// starts with an empty block, the analogue of an OpenCL work group starting
// with an empty local pointer.
func (a *Arena) NewLocal() *Local {
	return &Local{parent: a, strategy: a.cfg.Strategy, blockWords: a.blockWords}
}

// Alloc reserves n words and returns the offset of the first, charging the
// strategy's accounting: Basic pays one global atomic per request, Block
// pays one global atomic per block plus one local op per request.
func (l *Local) Alloc(n int) int32 {
	if n <= 0 {
		panic("alloc: non-positive allocation")
	}
	l.stats.Allocs++
	l.stats.Words += int64(n)

	if l.strategy == Basic {
		l.stats.GlobalAtomics++
		return l.parent.Grab(n)
	}
	if n > l.blockWords {
		// Oversized request bypasses blocking with a direct global grab.
		l.stats.GlobalAtomics++
		return l.parent.Grab(n)
	}
	if l.left < n {
		// The remainder of the previous block is abandoned.
		l.stats.WastedWords += int64(l.left)
		l.cur = l.parent.Grab(l.blockWords)
		l.left = l.blockWords
		l.stats.GlobalAtomics++
	}
	off := l.cur
	l.cur += int32(n)
	l.left -= n
	l.stats.LocalOps++
	return off
}

// Stats returns the Local's private counters (typically fed into the
// kernel's device accounting before Close).
func (l *Local) Stats() Stats { return l.stats }

// Close abandons the current block and folds the Local's counters into the
// parent arena so run-level allocator totals cover parallel activity.
// The Local must not be used afterwards.
func (l *Local) Close() {
	l.stats.WastedWords += int64(l.left)
	l.left = 0
	l.parent.foldStats(l.stats)
	l.stats = Stats{}
}

// ParallelCapWords bounds the arena words needed to serve usefulWords of
// requests (each at most maxAlloc words) through locals worker-private
// Locals, for pre-sizing arenas whose backing array must not move during a
// parallel phase. Under the Block strategy a block's tail shorter than the
// next request is stranded, so each block yields at least
// blockWords-(maxAlloc-1) useful words; requests larger than a block (and
// the whole Basic strategy) grab exactly their size.
func ParallelCapWords(cfg Config, usefulWords, maxAlloc, locals int) int {
	bw := cfg.BlockBytes / WordBytes
	if cfg.BlockBytes <= 0 {
		bw = DefaultBlockBytes / WordBytes
	}
	if bw < 1 {
		bw = 1
	}
	total := usefulWords
	if cfg.Strategy == Block && bw >= maxAlloc {
		yield := bw - (maxAlloc - 1)
		total = int((int64(usefulWords)*int64(bw) + int64(yield) - 1) / int64(yield))
		total += locals * bw // trailing block per Local
	}
	return total + 64
}
