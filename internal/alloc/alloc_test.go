package alloc

import (
	"testing"
	"testing/quick"
)

func TestBasicOneAtomicPerAlloc(t *testing.T) {
	a := New(Config{Strategy: Basic}, 1024)
	for i := 0; i < 100; i++ {
		a.Alloc(2)
	}
	st := a.Stats()
	if st.GlobalAtomics != 100 {
		t.Fatalf("basic allocator: %d atomics for 100 allocs", st.GlobalAtomics)
	}
	if st.LocalOps != 0 {
		t.Fatalf("basic allocator used local ops: %d", st.LocalOps)
	}
}

func TestBlockAmortizesAtomics(t *testing.T) {
	a := New(Config{Strategy: Block, BlockBytes: 2048}, 1<<16)
	for i := 0; i < 1000; i++ {
		a.Alloc(2) // 8 bytes per request; 256 fit in a 2KB block
	}
	st := a.Stats()
	if st.GlobalAtomics > 8 {
		t.Fatalf("block allocator: %d global atomics for 1000 small allocs", st.GlobalAtomics)
	}
	if st.LocalOps != 1000 {
		t.Fatalf("block allocator: %d local ops, want 1000", st.LocalOps)
	}
}

func TestBlockSizeControlsContention(t *testing.T) {
	// Larger blocks → fewer global atomics (the Fig. 11 mechanism).
	var prev int64 = 1 << 62
	for _, bs := range []int{8, 64, 512, 4096} {
		a := New(Config{Strategy: Block, BlockBytes: bs}, 1<<20)
		for i := 0; i < 10000; i++ {
			a.Alloc(2)
		}
		got := a.Stats().GlobalAtomics
		if got > prev {
			t.Fatalf("block %dB: %d atomics, more than smaller block's %d", bs, got, prev)
		}
		prev = got
	}
}

func TestOffsetsNonOverlapping(t *testing.T) {
	for _, strat := range []Strategy{Basic, Block} {
		a := New(Config{Strategy: strat, BlockBytes: 64}, 16)
		type span struct{ off, n int32 }
		var spans []span
		sizes := []int{1, 3, 2, 7, 5, 16, 2, 40, 1, 1}
		for _, n := range sizes {
			off := a.Alloc(n)
			spans = append(spans, span{off, int32(n)})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.off < b.off+b.n && b.off < a.off+a.n {
					t.Fatalf("%v: spans %v and %v overlap", strat, a, b)
				}
			}
		}
	}
}

func TestOffsetsNonOverlappingProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		a := New(Config{Strategy: Block, BlockBytes: 128}, 8)
		last := int32(-1)
		for _, r := range raw {
			n := int(r%32) + 1
			off := a.Alloc(n)
			if off < 0 || off <= last && last >= 0 && off != last {
				// Offsets must advance (bump allocation).
			}
			if off < last {
				return false
			}
			last = off + int32(n) - 1
			w := a.Words()
			// Writable without panic:
			w[off] = 1
			w[off+int32(n)-1] = 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArenaGrowsPreservingContents(t *testing.T) {
	a := New(Config{Strategy: Basic}, 4)
	off := a.Alloc(2)
	a.Words()[off] = 99
	a.Alloc(1000) // forces growth
	if a.Words()[off] != 99 {
		t.Fatal("growth lost contents")
	}
	if a.Cap() < 1002 {
		t.Fatalf("cap %d after growth", a.Cap())
	}
}

func TestOversizedRequestBypassesBlock(t *testing.T) {
	a := New(Config{Strategy: Block, BlockBytes: 64}, 1024) // 16-word blocks
	a.Alloc(100)                                            // larger than a block
	st := a.Stats()
	if st.GlobalAtomics != 1 || st.LocalOps != 0 {
		t.Fatalf("oversized alloc accounting: %+v", st)
	}
}

func TestWasteTracking(t *testing.T) {
	a := New(Config{Strategy: Block, BlockBytes: 64}, 1024) // 16-word blocks
	a.Alloc(10)
	a.Alloc(10) // doesn't fit the 6 remaining words: wastes them
	if a.Stats().WastedWords != 6 {
		t.Fatalf("wasted words %d, want 6", a.Stats().WastedWords)
	}
}

func TestGroupGrabs(t *testing.T) {
	a := New(Config{Strategy: Block, BlockBytes: 2048}, 1024)
	before := a.Stats()
	a.GroupGrabs(8)
	d := a.Stats().Sub(before)
	if d.GlobalAtomics != 7 {
		t.Fatalf("group grabs added %d atomics, want 7", d.GlobalAtomics)
	}
	// Basic strategy: no-op.
	b := New(Config{Strategy: Basic}, 1024)
	b.GroupGrabs(8)
	if b.Stats().GlobalAtomics != 0 {
		t.Fatal("GroupGrabs must be a no-op for the basic allocator")
	}
}

func TestReset(t *testing.T) {
	a := New(Config{Strategy: Block}, 64)
	off := a.Alloc(4)
	a.Words()[off] = 7
	a.Reset()
	if a.Used() != 0 || a.Stats() != (Stats{}) {
		t.Fatal("reset incomplete")
	}
	if a.Words()[off] != 0 {
		t.Fatal("reset did not zero words")
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}, 16).Alloc(0)
}

func TestStatsSub(t *testing.T) {
	a := Stats{Allocs: 5, Words: 10, GlobalAtomics: 2, LocalOps: 3, WastedWords: 1}
	b := Stats{Allocs: 2, Words: 4, GlobalAtomics: 1, LocalOps: 1}
	d := a.Sub(b)
	if d.Allocs != 3 || d.Words != 6 || d.GlobalAtomics != 1 || d.LocalOps != 2 || d.WastedWords != 1 {
		t.Fatalf("sub wrong: %+v", d)
	}
}
