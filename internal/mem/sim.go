package mem

// Sim is a trace-driven set-associative LRU cache simulator. The join
// kernels feed it (sampled) access traces to measure L2 miss counts the way
// the paper reports them in Table 3 and the Fig. 10 discussion; it is also
// used by the latch microbenchmark.
//
// Sim is not safe for concurrent use; each experiment drives its own
// instance.
type Sim struct {
	sets      int
	ways      int
	lineShift uint
	// tags[set*ways+way]; age for LRU.
	tags     []uint64
	valid    []bool
	age      []uint64
	tick     uint64
	accesses int64
	misses   int64
}

// NewSim returns a simulator with the given capacity, line size and
// associativity. Capacity must be a multiple of lineBytes×ways and the
// resulting set count must be a power of two.
func NewSim(capacityBytes, lineBytes int64, ways int) *Sim {
	if ways <= 0 {
		ways = 16
	}
	lines := capacityBytes / lineBytes
	sets := int(lines) / ways
	if sets <= 0 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	var shift uint
	for (int64(1) << shift) < lineBytes {
		shift++
	}
	n := sets * ways
	return &Sim{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		age:       make([]uint64, n),
	}
}

// NewL2Sim returns a simulator of the A8-3870K's shared 4 MB L2.
func NewL2Sim() *Sim { return NewSim(DefaultL2Bytes, DefaultLineBytes, 16) }

// Access simulates one access to byte address addr and reports whether it
// missed.
func (s *Sim) Access(addr uint64) bool {
	s.tick++
	s.accesses++
	line := addr >> s.lineShift
	set := int(line) & (s.sets - 1)
	base := set * s.ways

	// Hit?
	for w := 0; w < s.ways; w++ {
		i := base + w
		if s.valid[i] && s.tags[i] == line {
			s.age[i] = s.tick
			return false
		}
	}

	// Miss: fill LRU way.
	s.misses++
	victim := base
	for w := 1; w < s.ways; w++ {
		i := base + w
		if !s.valid[i] {
			victim = i
			break
		}
		if s.age[i] < s.age[victim] {
			victim = i
		}
	}
	s.tags[victim] = line
	s.valid[victim] = true
	s.age[victim] = s.tick
	return true
}

// Accesses returns the number of simulated accesses.
func (s *Sim) Accesses() int64 { return s.accesses }

// Misses returns the number of misses observed.
func (s *Sim) Misses() int64 { return s.misses }

// MissRatio returns misses/accesses, or 0 before any access.
func (s *Sim) MissRatio() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.misses) / float64(s.accesses)
}

// Reset clears contents and counters.
func (s *Sim) Reset() {
	for i := range s.valid {
		s.valid[i] = false
		s.age[i] = 0
		s.tags[i] = 0
	}
	s.tick = 0
	s.accesses = 0
	s.misses = 0
}
