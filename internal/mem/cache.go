// Package mem models the memory system of the coupled architecture: the
// 4 MB L2 data cache shared by the CPU and the GPU, the zero-copy buffer
// both devices access, and the PCI-e bus used when emulating a discrete
// architecture (paper Sec. 5.1: delay = latency + size/bandwidth with
// latency 0.015 ms and bandwidth 3 GB/s).
//
// Two cache abstractions are provided. CacheModel is the fast analytical
// model used by the execution simulator and the cost model: it converts
// working-set sizes into hit ratios, with a sharing credit when both
// devices touch one structure through the shared cache (the mechanism
// behind the paper's shared-vs-separate hash table result, Fig. 10).
// Sim is a trace-driven set-associative LRU simulator used by
// microbenchmarks and by the Table 3 cache-miss measurements, where the
// paper reports absolute L2 miss counts.
package mem

import "fmt"

// DefaultL2Bytes is the shared L2 capacity of the A8-3870K (Table 1: 4 MB).
const DefaultL2Bytes = 4 << 20

// DefaultLineBytes is the cache line size assumed throughout.
const DefaultLineBytes = 64

// CacheModel converts working-set sizes into random-access hit ratios.
type CacheModel struct {
	// SizeBytes is the cache capacity (shared L2).
	SizeBytes int64
	// LineBytes is the cache line size.
	LineBytes int64
	// ColdFraction bounds the hit ratio below 1 to account for cold and
	// conflict misses even for cache-resident structures.
	ColdFraction float64
}

// NewCacheModel returns the A8-3870K shared-L2 model.
func NewCacheModel() CacheModel {
	return CacheModel{SizeBytes: DefaultL2Bytes, LineBytes: DefaultLineBytes, ColdFraction: 0.03}
}

// HitRatio estimates the probability that a uniformly random access to a
// structure of workingSet bytes hits the cache, given how many bytes of
// cache capacity competing structures consume (pressure).
func (c CacheModel) HitRatio(workingSet, pressure int64) float64 {
	if workingSet <= 0 {
		return 1 - c.ColdFraction
	}
	avail := c.SizeBytes - pressure
	if avail < c.SizeBytes/8 {
		avail = c.SizeBytes / 8 // LRU keeps some share for the hot structure
	}
	if workingSet <= avail {
		return 1 - c.ColdFraction
	}
	return (1 - c.ColdFraction) * float64(avail) / float64(workingSet)
}

// SharedHitRatio estimates the hit ratio when both devices access a single
// shared instance of the structure through the shared L2: the working set
// is counted once, and the second device reuses lines the first device
// pulled in, which shows up as a small extra credit on top of HitRatio.
func (c CacheModel) SharedHitRatio(workingSet, pressure int64) float64 {
	base := c.HitRatio(workingSet, pressure)
	// Reuse credit: lines warmed by the peer device. Bounded so a
	// DRAM-sized structure still misses most of the time.
	credit := 0.04 * (1 - base)
	return base + credit
}

// SeparateHitRatio estimates the per-device hit ratio when each device keeps
// its own copy of the structure: the two copies compete for the same shared
// cache, doubling the effective working set.
func (c CacheModel) SeparateHitRatio(workingSet, pressure int64) float64 {
	return c.HitRatio(2*workingSet, pressure)
}

// ZeroCopy tracks the zero-copy buffer both devices can address
// (Table 1: 512 MB shared). Joins whose footprint exceeds the buffer must
// take the external-partitioning path (paper appendix, Fig. 19).
type ZeroCopy struct {
	Capacity int64
	used     int64
}

// NewZeroCopy returns a buffer with the A8-3870K's 512 MB capacity.
func NewZeroCopy() *ZeroCopy { return &ZeroCopy{Capacity: 512 << 20} }

// Used returns the currently allocated bytes.
func (z *ZeroCopy) Used() int64 { return z.used }

// Alloc reserves n bytes, failing if the buffer would overflow.
func (z *ZeroCopy) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("mem: negative zero-copy allocation %d", n)
	}
	if z.used+n > z.Capacity {
		return fmt.Errorf("mem: zero-copy buffer overflow: %d used + %d requested > %d capacity",
			z.used, n, z.Capacity)
	}
	z.used += n
	return nil
}

// Free releases n bytes.
func (z *ZeroCopy) Free(n int64) {
	z.used -= n
	if z.used < 0 {
		z.used = 0
	}
}

// Fits reports whether an allocation of n more bytes would fit.
func (z *ZeroCopy) Fits(n int64) bool { return z.used+n <= z.Capacity }

// PCIe models the bus of the emulated discrete architecture.
type PCIe struct {
	LatencyNS    float64
	BandwidthGBs float64
}

// NewPCIe returns the bus the paper emulates: 0.015 ms latency, 3 GB/s.
func NewPCIe() PCIe {
	return PCIe{LatencyNS: 0.015e6, BandwidthGBs: 3.0}
}

// TransferNS returns the delay of one transfer of size bytes:
// latency + size/bandwidth.
func (p PCIe) TransferNS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return p.LatencyNS + float64(bytes)/p.BandwidthGBs
}

// CopyNS returns the cost of moving bytes between system memory and the
// zero-copy buffer (used by the external join path, Fig. 19). The copy runs
// at memcpy speed over the shared memory controller.
func CopyNS(bytes int64) float64 {
	const memcpyGBs = 6.0 // read + write over the shared controller
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / memcpyGBs
}
