package mem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheModelResidentHitsHigh(t *testing.T) {
	cm := NewCacheModel()
	if h := cm.HitRatio(1<<20, 0); h < 0.9 {
		t.Fatalf("1MB working set in 4MB cache: hit %v", h)
	}
}

func TestCacheModelLargeWorkingSetMisses(t *testing.T) {
	cm := NewCacheModel()
	if h := cm.HitRatio(400<<20, 0); h > 0.05 {
		t.Fatalf("400MB working set: hit %v too high", h)
	}
}

func TestCacheModelMonotoneInWorkingSet(t *testing.T) {
	cm := NewCacheModel()
	f := func(a, b uint32) bool {
		ws1, ws2 := int64(a%(1<<28)), int64(b%(1<<28))
		if ws1 > ws2 {
			ws1, ws2 = ws2, ws1
		}
		return cm.HitRatio(ws1, 0) >= cm.HitRatio(ws2, 0)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedBeatsSeparate(t *testing.T) {
	cm := NewCacheModel()
	for _, ws := range []int64{1 << 20, 8 << 20, 64 << 20} {
		if cm.SharedHitRatio(ws, 0) <= cm.SeparateHitRatio(ws, 0) {
			t.Errorf("ws=%d: shared %v not better than separate %v",
				ws, cm.SharedHitRatio(ws, 0), cm.SeparateHitRatio(ws, 0))
		}
	}
}

func TestPressureReducesHits(t *testing.T) {
	cm := NewCacheModel()
	if cm.HitRatio(6<<20, 2<<20) >= cm.HitRatio(6<<20, 0) {
		t.Fatal("cache pressure did not reduce hit ratio")
	}
}

func TestZeroCopyAccounting(t *testing.T) {
	z := NewZeroCopy()
	if z.Capacity != 512<<20 {
		t.Fatalf("capacity %d, want 512MB", z.Capacity)
	}
	if err := z.Alloc(100 << 20); err != nil {
		t.Fatal(err)
	}
	if !z.Fits(412 << 20) {
		t.Fatal("412MB should still fit")
	}
	if z.Fits(413 << 20) {
		t.Fatal("413MB should not fit")
	}
	if err := z.Alloc(500 << 20); err == nil {
		t.Fatal("overflow not detected")
	}
	z.Free(100 << 20)
	if z.Used() != 0 {
		t.Fatalf("used %d after free", z.Used())
	}
	if err := z.Alloc(-1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestPCIeDelayFormula(t *testing.T) {
	p := NewPCIe()
	// Paper: latency 0.015 ms + size / 3 GB/s.
	got := p.TransferNS(3 << 30)
	want := 0.015e6 + float64(int64(3<<30))/3.0
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("transfer 3GB: %v want %v", got, want)
	}
	if p.TransferNS(0) != 0 {
		t.Fatal("zero transfer should be free")
	}
}

func TestCopyNSLinear(t *testing.T) {
	if CopyNS(2000) != 2*CopyNS(1000) {
		t.Fatal("copy cost not linear")
	}
}

func TestSimBasicHitMiss(t *testing.T) {
	s := NewSim(1<<16, 64, 4)
	if !s.Access(0) {
		t.Fatal("cold access should miss")
	}
	if s.Access(8) {
		t.Fatal("same-line access should hit")
	}
	if s.MissRatio() != 0.5 {
		t.Fatalf("miss ratio %v", s.MissRatio())
	}
}

func TestSimLRUEviction(t *testing.T) {
	// 4-way set: access 5 conflicting lines, the first must be evicted.
	s := NewSim(64*4, 64, 4) // one set, 4 ways
	for i := uint64(0); i < 5; i++ {
		s.Access(i * 64)
	}
	if !s.Access(0) {
		t.Fatal("LRU victim not evicted")
	}
	if s.Access(64 * 4) {
		t.Fatal("recently used line evicted")
	}
}

func TestSimWorkingSetBehaviour(t *testing.T) {
	// Random accesses within a cache-resident set should mostly hit;
	// within a 10x working set they should mostly miss.
	s := NewL2Sim()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		s.Access(uint64(rng.Intn(1 << 20))) // 1MB
	}
	small := s.MissRatio()
	s.Reset()
	for i := 0; i < 200000; i++ {
		s.Access(uint64(rng.Intn(64 << 20))) // 64MB
	}
	large := s.MissRatio()
	if small > 0.2 {
		t.Errorf("resident working set miss ratio %v too high", small)
	}
	if large < 0.7 {
		t.Errorf("oversized working set miss ratio %v too low", large)
	}
}

func TestSimReset(t *testing.T) {
	s := NewL2Sim()
	s.Access(1)
	s.Reset()
	if s.Accesses() != 0 || s.Misses() != 0 {
		t.Fatal("reset did not clear counters")
	}
	if !s.Access(1) {
		t.Fatal("reset did not clear contents")
	}
}

func TestSimAnalyticalModelAgreement(t *testing.T) {
	// The analytical CacheModel should agree with the trace simulator
	// within a coarse band for uniform random accesses.
	cm := NewCacheModel()
	for _, ws := range []int64{1 << 20, 16 << 20} {
		s := NewL2Sim()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 300000; i++ {
			s.Access(uint64(rng.Int63n(ws)))
		}
		analytic := 1 - cm.HitRatio(ws, 0)
		measured := s.MissRatio()
		if math.Abs(analytic-measured) > 0.25 {
			t.Errorf("ws=%dMB: analytic miss %.2f vs simulated %.2f", ws>>20, analytic, measured)
		}
	}
}
