package hash

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestMurmur2MatchesByteVersion(t *testing.T) {
	// The 4-byte specialization must agree with the generic byte-slice
	// implementation for every 32-bit key.
	f := func(key, seed uint32) bool {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], key)
		return Murmur2(key, seed) == Murmur2Bytes(buf[:], seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestMurmur2Deterministic(t *testing.T) {
	if Murmur2(12345, Murmur2Seed) != Murmur2(12345, Murmur2Seed) {
		t.Fatal("murmur2 not deterministic")
	}
}

func TestMurmur2SeedSensitivity(t *testing.T) {
	if Murmur2(1, 1) == Murmur2(1, 2) {
		t.Fatal("different seeds produced identical hashes (suspicious)")
	}
}

func TestMurmur2Bytes(t *testing.T) {
	// Non-multiple-of-4 tails exercise the switch fallthroughs.
	cases := [][]byte{{}, {1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4, 5}, []byte("hello, world")}
	seen := map[uint32]bool{}
	for _, c := range cases {
		h := Murmur2Bytes(c, Murmur2Seed)
		if seen[h] {
			t.Fatalf("collision between trivial inputs at %v", c)
		}
		seen[h] = true
	}
}

func TestBucketRange(t *testing.T) {
	f := func(key uint32) bool {
		b := Bucket(key, 1024)
		return b >= 0 && b < 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketDistribution(t *testing.T) {
	// Sequential keys must spread roughly uniformly across buckets.
	const n = 1 << 16
	const buckets = 256
	counts := make([]int, buckets)
	for k := uint32(0); k < n; k++ {
		counts[Bucket(k, buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d count %d far from expected %d", b, c, want)
		}
	}
}

func TestRadixPassPartitionsAreHashPrefixConsistent(t *testing.T) {
	// A two-pass split (low bits then high bits) must agree with a single
	// pass over all bits.
	f := func(key uint32) bool {
		lo := RadixPass(key, 0, 4)
		hi := RadixPass(key, 4, 4)
		all := RadixPass(key, 0, 8)
		return all == lo|hi<<4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadixPassRange(t *testing.T) {
	for _, bits := range []uint{1, 4, 8, 12} {
		for k := uint32(0); k < 1000; k++ {
			p := RadixPass(k, 0, bits)
			if p < 0 || p >= 1<<bits {
				t.Fatalf("bits=%d key=%d: partition %d out of range", bits, k, p)
			}
		}
	}
}

func BenchmarkMurmur2(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += Murmur2(uint32(i), Murmur2Seed)
	}
	_ = sink
}
