// Package hash provides the hash functions used by the join algorithms.
//
// The paper (Sec. 5.1) uses MurmurHash 2.0, following Blanas et al.
// (SIGMOD 2011), because it has a good collision rate and low computational
// overhead. Radix-bit extraction for the partitioned hash join also lives
// here so every component agrees on how keys map to partitions.
package hash

// Murmur2Seed is the default seed for Murmur2, matching the constant
// commonly used in the reference implementation.
const Murmur2Seed uint32 = 0x9747b28c

// Murmur2 computes MurmurHash 2.0 of a 32-bit key with the given seed.
//
// This is the 4-byte specialization of Austin Appleby's MurmurHash2: the
// join only ever hashes one 32-bit key at a time, so the generic
// byte-slice loop collapses to a single mix round plus the finalizer.
func Murmur2(key uint32, seed uint32) uint32 {
	const m = 0x5bd1e995
	const r = 24

	h := seed ^ 4 // length is always 4 bytes

	k := key
	k *= m
	k ^= k >> r
	k *= m

	h *= m
	h ^= k

	// Finalization mix.
	h ^= h >> 13
	h *= m
	h ^= h >> 15
	return h
}

// Murmur2Bytes computes MurmurHash 2.0 over an arbitrary byte slice.
// It is used by tests to cross-check the 4-byte specialization and by
// callers that hash composite keys.
func Murmur2Bytes(data []byte, seed uint32) uint32 {
	const m = 0x5bd1e995
	const r = 24

	h := seed ^ uint32(len(data))

	for len(data) >= 4 {
		k := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		k *= m
		k ^= k >> r
		k *= m

		h *= m
		h ^= k
		data = data[4:]
	}

	switch len(data) {
	case 3:
		h ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		h ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		h ^= uint32(data[0])
		h *= m
	}

	h ^= h >> 13
	h *= m
	h ^= h >> 15
	return h
}

// Bucket maps a key to a hash bucket number in [0, nBuckets).
// nBuckets must be a power of two.
func Bucket(key uint32, nBuckets int) int {
	return int(Murmur2(key, Murmur2Seed) & uint32(nBuckets-1))
}

// RadixPass extracts the partition number for one radix-partitioning pass.
// bits is the number of radix bits consumed by this pass and shift is the
// number of low-order bits consumed by earlier passes. Partitioning is done
// on the hash of the key (not the raw key) so that skewed key spaces still
// spread across partitions, mirroring the paper's "integer hash values".
func RadixPass(key uint32, shift, bits uint) int {
	h := Murmur2(key, Murmur2Seed)
	return int((h >> shift) & ((1 << bits) - 1))
}

// InstrPerHash is the profiled instruction count of one Murmur2 evaluation
// in the compiled OpenCL kernel the device model mimics: the multiplies,
// xors and shifts of the 4-byte path above plus the address arithmetic,
// bounds handling and modulo folding around it. The constant feeds the
// device timing model and the cost model's C_i estimation (Eq. 3).
const InstrPerHash = 40
