package radix

import (
	"sync/atomic"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
)

// Parallel-safe partition kernels, following the same two mechanisms as
// package htab: atomic counter updates for the header-visit step and
// partition ownership for the append step. Shard k owns the partitions
// [k<<shift, (k+1)<<shift), so concurrent shards append through disjoint
// partition headers and chunk chains, and within a partition tuples append
// in index order — the same order as a single-stream pass, keeping the
// gathered relation (and everything downstream of it) schedule-free.

// ShardShift returns the right-shift mapping a partition number to its
// ownership shard for the given shard count (a power of two ≤ Partitions).
func (p *Pass) ShardShift(shards int) uint {
	var sbits uint
	for 1<<sbits < shards {
		sbits++
	}
	if sbits > p.Bits {
		return 0
	}
	return p.Bits - sbits
}

// Shards clamps the requested shard count to the pass fan-out, keeping it a
// power of two.
func (p *Pass) Shards(want int) int {
	s := 1
	for s*2 <= want && s*2 <= len(p.counts) {
		s *= 2
	}
	return s
}

// N2Atomic is N2 with a sync/atomic increment of the partition tuple count,
// safe for concurrent range morsels.
func (p *Pass) N2Atomic(d *device.Device, lo, hi int) device.Acct {
	var a device.Acct
	for i := lo; i < hi; i++ {
		atomic.AddInt32(&p.counts[p.part[i]], 1)
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrVisitHdr
	a.SeqBytes = n * 4
	a.Rand[device.RegionPartition] = n
	a.AtomicOps = n
	a.AtomicTargets = int64(len(p.counts))
	return a
}

// N3Shard performs n3 for the tuples of [lo,hi) whose partition is owned by
// shard, appending through the worker-private allocator.
func (p *Pass) N3Shard(d *device.Device, lo, hi int, shard int32, shift uint, la *alloc.Local) device.Acct {
	var a device.Acct
	inK, inR := p.in.Keys, p.in.RIDs
	words := p.arena.Words()

	var processed int64
	for i := lo; i < hi; i++ {
		pt := p.part[i]
		if pt>>shift != shard {
			continue
		}
		f := p.fill[pt]
		if p.tail[pt] == nilRef || f == ChunkTuples {
			c := la.Alloc(chunkWords)
			words[c+chunkOffNxt] = nilRef
			if p.tail[pt] == nilRef {
				p.head[pt] = c
			} else {
				words[p.tail[pt]+chunkOffNxt] = c
			}
			p.tail[pt] = c
			p.fill[pt] = 0
			f = 0
		}
		off := p.tail[pt] + 1 + 2*f
		words[off] = inK[i]
		words[off+1] = inR[i]
		p.fill[pt] = f + 1
		processed++
	}

	a.Items = processed
	a.Instr = processed * instrAppendRow
	a.SeqBytes = processed * 8
	a.Rand[device.RegionPartition] = processed * 2
	a.AtomicOps = processed
	a.AtomicTargets = int64(len(p.counts))
	st := la.Stats()
	a.AllocAtomics += st.GlobalAtomics
	a.LocalOps += st.LocalOps
	return a
}
