// Package radix implements the partition phase of the partitioned hash join
// (PHJ): multi-pass radix partitioning on the hash values of the keys,
// following Boncz et al.'s radix join as adopted by the paper (Sec. 3.1).
//
// Each pass is a step series with the paper's three fine-grained steps:
//
//	(n1) compute partition number,
//	(n2) visit the partition header (latched tuple-count increment),
//	(n3) insert the <key, rid> pair into the partition.
//
// Partitions are stored in "a structure similar to the hash table ... where
// a bucket is used to store a partition": each partition is a chain of
// fixed-size chunks allocated from the software memory allocator, and n3
// appends through the partition header. There is consequently no global
// prefix-sum barrier between n2 and n3 — the three steps form one pipeline,
// exactly what the PL scheme needs — and the partition output buffer is one
// of the dynamic allocations whose allocator behaviour Fig. 11 studies.
//
// Passes consume radix bits of the key hash from the lowest bit upward and
// append stably, so after g passes the gathered relation is grouped by the
// combined partition number — the classic LSB radix property. The number
// of passes is planned from cache and TLB limits (PlanFor), as the paper
// tunes it "according to the memory hierarchy".
package radix

import (
	"fmt"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/hash"
	"apujoin/internal/rel"
)

// Profiled per-step instruction constants, mirroring htab's role for the
// build/probe steps.
const (
	instrPartNum   = hash.InstrPerHash + 4
	instrVisitHdr  = 6
	instrAppendRow = 11
)

// ChunkTuples is the number of <key,rid> pairs per partition chunk.
const ChunkTuples = 64

const (
	chunkWords  = 1 + 2*ChunkTuples // [next, k0,r0, k1,r1, ...]
	chunkOffNxt = 0
	nilRef      = int32(-1)
)

// MaxBitsPerPass bounds the fan-out of one pass. 2^8 = 256 open partition
// streams keep within TLB reach, mirroring the paper's TLB-aware tuning.
const MaxBitsPerPass = 8

// Plan describes a multi-pass partitioning.
type Plan struct {
	// BitsPerPass holds the radix bits consumed by each pass, low bits first.
	BitsPerPass []uint
}

// TotalBits returns the summed radix bits.
func (p Plan) TotalBits() uint {
	var t uint
	for _, b := range p.BitsPerPass {
		t += b
	}
	return t
}

// Partitions returns the total partition count, 2^TotalBits.
func (p Plan) Partitions() int { return 1 << p.TotalBits() }

// Passes returns the number of passes.
func (p Plan) Passes() int { return len(p.BitsPerPass) }

// String renders the plan, e.g. "2 pass(es), 12 bits, 4096 partitions".
func (p Plan) String() string {
	return fmt.Sprintf("%d pass(es), %d bits, %d partitions",
		p.Passes(), p.TotalBits(), p.Partitions())
}

// PlanFor plans passes so that an average partition pair of the build
// relation fits within targetBytes (typically a fraction of the shared L2),
// with at most MaxBitsPerPass bits per pass.
func PlanFor(buildTuples int, targetBytes int64) Plan {
	if targetBytes <= 0 {
		targetBytes = 1 << 20
	}
	bytes := int64(buildTuples) * 8
	var bits uint
	for bytes>>bits > targetBytes && bits < 20 {
		bits++
	}
	// Radix joins always use a substantial fan-out: too few partitions
	// serialize the latched partition headers under the GPU's thread
	// count, and the per-partition hash tables would not be
	// cache-localized anyway.
	if bits < 6 {
		bits = 6
	}
	var plan Plan
	for bits > 0 {
		b := bits
		if b > MaxBitsPerPass {
			b = MaxBitsPerPass
		}
		plan.BitsPerPass = append(plan.BitsPerPass, b)
		bits -= b
	}
	return plan
}

// Pass holds one radix pass over a relation: the partition bucket structure
// and the intermediate array n1 hands to n2/n3.
type Pass struct {
	Shift uint
	Bits  uint

	in    rel.Relation
	arena *alloc.Arena

	part   []int32 // n1 output: partition number per tuple
	counts []int32 // partition header: tuple count
	head   []int32 // partition header: first chunk
	tail   []int32 // current append chunk
	fill   []int32 // tuples in the tail chunk
}

// NewPass prepares a pass consuming bits radix bits at the given shift,
// appending partition chunks into arena.
func NewPass(in rel.Relation, arena *alloc.Arena, shift, bits uint) *Pass {
	n := in.Len()
	parts := 1 << bits
	p := &Pass{
		Shift:  shift,
		Bits:   bits,
		in:     in,
		arena:  arena,
		part:   make([]int32, n),
		counts: make([]int32, parts),
		head:   make([]int32, parts),
		tail:   make([]int32, parts),
		fill:   make([]int32, parts),
	}
	for i := range p.head {
		p.head[i] = nilRef
		p.tail[i] = nilRef
	}
	return p
}

// Items returns the number of tuples the pass processes.
func (p *Pass) Items() int { return p.in.Len() }

// Partitions returns the fan-out of this pass.
func (p *Pass) Partitions() int { return len(p.counts) }

// N1 computes the partition number for tuples [lo,hi). Like b1/p1 it is a
// pure hash computation the GPU accelerates heavily.
func (p *Pass) N1(d *device.Device, lo, hi int) device.Acct {
	var a device.Acct
	keys := p.in.Keys
	for i := lo; i < hi; i++ {
		p.part[i] = int32(hash.RadixPass(uint32(keys[i]), p.Shift, p.Bits))
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrPartNum
	a.SeqBytes = n * 8
	return a
}

// N2 visits the partition header for tuples [lo,hi): a latched increment of
// the partition's tuple count.
func (p *Pass) N2(d *device.Device, lo, hi int) device.Acct {
	var a device.Acct
	for i := lo; i < hi; i++ {
		p.counts[p.part[i]]++
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrVisitHdr
	a.SeqBytes = n * 4
	a.Rand[device.RegionPartition] = n
	a.AtomicOps = n
	a.AtomicTargets = int64(len(p.counts))
	return a
}

// N3 inserts the <key, rid> pairs of tuples [lo,hi) into their partitions,
// appending through the partition header and allocating a fresh chunk from
// the software allocator whenever the tail chunk fills.
func (p *Pass) N3(d *device.Device, lo, hi int) device.Acct {
	var a device.Acct
	before := p.arena.Stats()
	inK, inR := p.in.Keys, p.in.RIDs
	for i := lo; i < hi; i++ {
		pt := p.part[i]
		f := p.fill[pt]
		if p.tail[pt] == nilRef || f == ChunkTuples {
			c := p.arena.Alloc(chunkWords)
			words := p.arena.Words()
			words[c+chunkOffNxt] = nilRef
			if p.tail[pt] == nilRef {
				p.head[pt] = c
			} else {
				words[p.tail[pt]+chunkOffNxt] = c
			}
			p.tail[pt] = c
			p.fill[pt] = 0
			f = 0
		}
		words := p.arena.Words()
		off := p.tail[pt] + 1 + 2*f
		words[off] = inK[i]
		words[off+1] = inR[i]
		p.fill[pt] = f + 1
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrAppendRow
	a.SeqBytes = n * 8 // streamed input reads
	a.Rand[device.RegionPartition] = n * 2
	a.AtomicOps = n // latched append position on the partition header
	a.AtomicTargets = int64(len(p.counts))
	d2 := p.arena.Stats().Sub(before)
	a.AllocAtomics += d2.GlobalAtomics
	a.LocalOps += d2.LocalOps
	return a
}

// Gather copies the partitioned tuples out of the chunk structure into the
// contiguous relation out (in partition order), returning the partition
// boundary offsets and the accounting of the streaming copy ("we link all
// the intermediate partitions together to form the result partition pairs").
func (p *Pass) Gather(out rel.Relation) ([]int32, device.Acct) {
	var a device.Acct
	words := p.arena.Words()
	offs := make([]int32, len(p.counts)+1)
	pos := 0
	for pt := range p.counts {
		offs[pt] = int32(pos)
		remaining := p.counts[pt]
		for c := p.head[pt]; c != nilRef; c = words[c+chunkOffNxt] {
			n := int32(ChunkTuples)
			if remaining < n {
				n = remaining
			}
			for j := int32(0); j < n; j++ {
				out.Keys[pos] = words[c+1+2*j]
				out.RIDs[pos] = words[c+2+2*j]
				pos++
			}
			remaining -= n
			a.Rand[device.RegionPartition]++
		}
	}
	offs[len(p.counts)] = int32(pos)
	a.Items = int64(pos)
	a.SeqBytes = int64(pos) * 16 // read chunk, write contiguous
	a.Instr = int64(pos) * 4
	return offs, a
}

// Result is a fully partitioned relation.
type Result struct {
	// Rel holds the tuples grouped by partition.
	Rel rel.Relation
	// Offsets[i] is the first tuple of partition i; len = Partitions+1.
	Offsets []int32
	// Plan is the plan that produced the result.
	Plan Plan
}

// PartIdx fills idx[i] with the partition number of tuple i in Rel.
func (r Result) PartIdx(idx []int32) {
	for part := 0; part+1 < len(r.Offsets); part++ {
		for i := r.Offsets[part]; i < r.Offsets[part+1]; i++ {
			idx[i] = int32(part)
		}
	}
}

// FinalOffsets computes the partition boundaries of a fully partitioned
// relation by histogramming the combined radix bits. It is used after the
// last pass, whose per-pass offsets only cover that pass's fan-out.
func FinalOffsets(r rel.Relation, plan Plan) []int32 {
	return FinalOffsetsShifted(r, plan, 0)
}

// FinalOffsetsShifted is FinalOffsets for partitionings that started at a
// non-zero hash shift (the external join's per-pair sub-partitioning).
func FinalOffsetsShifted(r rel.Relation, plan Plan, shift uint) []int32 {
	total := plan.TotalBits()
	parts := 1 << total
	counts := make([]int32, parts)
	for _, k := range r.Keys {
		counts[hash.RadixPass(uint32(k), shift, total)]++
	}
	offs := make([]int32, parts+1)
	var sum int32
	for i, c := range counts {
		offs[i] = sum
		sum += c
	}
	offs[parts] = sum
	return offs
}

// PartitionHost partitions a relation on the host in one shot (all passes,
// no co-processing). It is the reference implementation used by tests and
// by callers that only need the data movement, not the timing.
func PartitionHost(in rel.Relation, plan Plan) Result {
	n := in.Len()
	cur := rel.Relation{
		Keys: append([]int32(nil), in.Keys...),
		RIDs: append([]int32(nil), in.RIDs...),
	}
	buf := rel.Relation{Keys: make([]int32, n), RIDs: make([]int32, n)}
	cpu := device.New(device.APUCPU())
	var shift uint
	for _, bits := range plan.BitsPerPass {
		arena := alloc.New(alloc.Config{Strategy: alloc.Block}, n*3+1024)
		p := NewPass(cur, arena, shift, bits)
		p.N1(cpu, 0, n)
		p.N2(cpu, 0, n)
		p.N3(cpu, 0, n)
		p.Gather(buf)
		cur, buf = buf, cur
		shift += bits
	}
	return Result{Rel: cur, Offsets: FinalOffsets(cur, plan), Plan: plan}
}
