package radix

import (
	"testing"
	"testing/quick"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/hash"
	"apujoin/internal/rel"
)

func TestPlanFor(t *testing.T) {
	// Small inputs still get the minimum fan-out.
	p := PlanFor(1000, 1<<20)
	if p.TotalBits() != 6 {
		t.Fatalf("small plan bits %d, want 6", p.TotalBits())
	}
	// Large inputs split across passes of ≤ MaxBitsPerPass.
	p = PlanFor(1<<24, 64<<10) // 128MB / 64KB → 11 bits
	if p.TotalBits() < 11 {
		t.Fatalf("large plan bits %d, want ≥11", p.TotalBits())
	}
	for _, b := range p.BitsPerPass {
		if b > MaxBitsPerPass {
			t.Fatalf("pass with %d bits exceeds max %d", b, MaxBitsPerPass)
		}
	}
	if p.Partitions() != 1<<p.TotalBits() {
		t.Fatal("partitions/bits mismatch")
	}
}

func TestPartitionHostGroupsByHash(t *testing.T) {
	r := rel.Gen{N: 30000, Seed: 1}.Build()
	plan := PlanFor(r.Len(), 16<<10)
	res := PartitionHost(r, plan)

	if res.Rel.Len() != r.Len() {
		t.Fatalf("lost tuples: %d vs %d", res.Rel.Len(), r.Len())
	}
	total := plan.TotalBits()
	// Every tuple must sit inside its partition's offset range.
	for part := 0; part < plan.Partitions(); part++ {
		for i := res.Offsets[part]; i < res.Offsets[part+1]; i++ {
			got := hash.RadixPass(uint32(res.Rel.Keys[i]), 0, total)
			if got != part {
				t.Fatalf("tuple %d in partition %d but hashes to %d", i, part, got)
			}
		}
	}
}

func TestPartitionPreservesMultiset(t *testing.T) {
	f := func(seed int64) bool {
		r := rel.Gen{N: 2000, Seed: seed}.Build()
		plan := PlanFor(r.Len(), 1<<10)
		res := PartitionHost(r, plan)
		// Key→rid pairs must be preserved exactly.
		want := map[[2]int32]int{}
		for i := range r.Keys {
			want[[2]int32{r.Keys[i], r.RIDs[i]}]++
		}
		for i := range res.Rel.Keys {
			want[[2]int32{res.Rel.Keys[i], res.Rel.RIDs[i]}]--
		}
		for _, c := range want {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPassEqualsSinglePassGrouping(t *testing.T) {
	// Two passes of 4 bits and one pass of 8 bits must produce identical
	// partition contents (the LSB-stability property).
	r := rel.Gen{N: 20000, Seed: 2}.Build()
	one := PartitionHost(r, Plan{BitsPerPass: []uint{8}})
	two := PartitionHost(r, Plan{BitsPerPass: []uint{4, 4}})
	if len(one.Offsets) != len(two.Offsets) {
		t.Fatal("offset shapes differ")
	}
	for p := range one.Offsets {
		if one.Offsets[p] != two.Offsets[p] {
			t.Fatalf("partition %d boundary differs: %d vs %d", p, one.Offsets[p], two.Offsets[p])
		}
	}
	// Same multiset within each partition.
	for p := 0; p+1 < len(one.Offsets); p++ {
		seen := map[int32]int{}
		for i := one.Offsets[p]; i < one.Offsets[p+1]; i++ {
			seen[one.Rel.Keys[i]]++
			seen[two.Rel.Keys[i]]--
		}
		for _, c := range seen {
			if c != 0 {
				t.Fatalf("partition %d contents differ", p)
			}
		}
	}
}

func TestPassStepsSplitAcrossDevices(t *testing.T) {
	r := rel.Gen{N: 10000, Seed: 3}.Build()
	arena := alloc.New(alloc.Config{}, r.Len()*3+1024)
	pass := NewPass(r, arena, 0, 5)
	cpu := device.New(device.APUCPU())
	gpu := device.New(device.APUGPU())
	n := r.Len()
	split := n / 3
	for _, step := range []func(d *device.Device, lo, hi int) device.Acct{pass.N1, pass.N2, pass.N3} {
		step(cpu, 0, split)
		step(gpu, split, n)
	}
	out := rel.Relation{Keys: make([]int32, n), RIDs: make([]int32, n)}
	offs, _ := pass.Gather(out)
	if int(offs[len(offs)-1]) != n {
		t.Fatalf("gathered %d tuples, want %d", offs[len(offs)-1], n)
	}
	for p := 0; p+1 < len(offs); p++ {
		for i := offs[p]; i < offs[p+1]; i++ {
			if hash.RadixPass(uint32(out.Keys[i]), 0, 5) != p {
				t.Fatalf("tuple %d misplaced", i)
			}
		}
	}
}

func TestN2N3Accounting(t *testing.T) {
	r := rel.Gen{N: 1000, Seed: 4}.Build()
	arena := alloc.New(alloc.Config{}, 8192)
	pass := NewPass(r, arena, 0, 6)
	cpu := device.New(device.APUCPU())
	pass.N1(cpu, 0, r.Len())
	a2 := pass.N2(cpu, 0, r.Len())
	if a2.AtomicOps != int64(r.Len()) || a2.AtomicTargets != 64 {
		t.Fatalf("n2 accounting: %+v", a2)
	}
	a3 := pass.N3(cpu, 0, r.Len())
	if a3.AllocAtomics == 0 {
		t.Fatal("n3 chunk allocations not accounted")
	}
}

func TestFinalOffsetsShifted(t *testing.T) {
	// With a hash shift, partitions must group on the shifted bits.
	r := rel.Gen{N: 5000, Seed: 5}.Build()
	const shift = 3
	arena := alloc.New(alloc.Config{}, r.Len()*3+1024)
	pass := NewPass(r, arena, shift, 4)
	cpu := device.New(device.APUCPU())
	pass.N1(cpu, 0, r.Len())
	pass.N2(cpu, 0, r.Len())
	pass.N3(cpu, 0, r.Len())
	out := rel.Relation{Keys: make([]int32, r.Len()), RIDs: make([]int32, r.Len())}
	pass.Gather(out)
	offs := FinalOffsetsShifted(out, Plan{BitsPerPass: []uint{4}}, shift)
	for p := 0; p+1 < len(offs); p++ {
		for i := offs[p]; i < offs[p+1]; i++ {
			if hash.RadixPass(uint32(out.Keys[i]), shift, 4) != p {
				t.Fatalf("shifted partition %d holds stranger at %d", p, i)
			}
		}
	}
}

func TestPartIdx(t *testing.T) {
	r := rel.Gen{N: 3000, Seed: 6}.Build()
	plan := PlanFor(r.Len(), 1<<10)
	res := PartitionHost(r, plan)
	idx := make([]int32, r.Len())
	res.PartIdx(idx)
	for i, k := range res.Rel.Keys {
		want := hash.RadixPass(uint32(k), 0, plan.TotalBits())
		if int(idx[i]) != want {
			t.Fatalf("partIdx[%d]=%d, want %d", i, idx[i], want)
		}
	}
}
