package radix

import (
	"testing"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/rel"
)

// TestShardedPassMatchesSerial partitions the same relation with the
// serial n1..n3 kernels and with the parallel-safe variants, and requires
// the gathered outputs to be identical tuple for tuple: partition ownership
// preserves per-partition append order exactly.
func TestShardedPassMatchesSerial(t *testing.T) {
	for _, dist := range []rel.Distribution{rel.Uniform, rel.HighSkew} {
		in := rel.Gen{N: 30000, Dist: dist, Seed: 5}.Build()
		n := in.Len()
		cpu := device.New(device.APUCPU())
		const bits = 6

		serialArena := alloc.New(alloc.Config{}, n*3+ChunkTuples*4)
		sp := NewPass(in, serialArena, 0, bits)
		sp.N1(cpu, 0, n)
		sp.N2(cpu, 0, n)
		sp.N3(cpu, 0, n)
		serialOut := rel.Relation{Keys: make([]int32, n), RIDs: make([]int32, n)}
		serialOffs, _ := sp.Gather(serialOut)

		cap := alloc.ParallelCapWords(alloc.Config{}, (n/ChunkTuples+(1<<bits)+1)*(1+2*ChunkTuples), 1+2*ChunkTuples, 32)
		shardArena := alloc.New(alloc.Config{}, cap)
		pp := NewPass(in, shardArena, 0, bits)
		pp.N1(cpu, 0, n)
		pp.N2Atomic(cpu, 0, n)
		shards := pp.Shards(16)
		shift := pp.ShardShift(shards)
		// Reverse shard order: the result must not care.
		for s := int32(shards) - 1; s >= 0; s-- {
			la := shardArena.NewLocal()
			pp.N3Shard(cpu, 0, n, s, shift, la)
			la.Close()
		}
		shardOut := rel.Relation{Keys: make([]int32, n), RIDs: make([]int32, n)}
		shardOffs, _ := pp.Gather(shardOut)

		for i := range serialOffs {
			if serialOffs[i] != shardOffs[i] {
				t.Fatalf("%v: offsets differ at %d: %d vs %d", dist, i, serialOffs[i], shardOffs[i])
			}
		}
		for i := 0; i < n; i++ {
			if serialOut.Keys[i] != shardOut.Keys[i] || serialOut.RIDs[i] != shardOut.RIDs[i] {
				t.Fatalf("%v: tuple %d differs: (%d,%d) vs (%d,%d)", dist, i,
					serialOut.Keys[i], serialOut.RIDs[i], shardOut.Keys[i], shardOut.RIDs[i])
			}
		}
	}
}
