package device

import "fmt"

// Env supplies the memory environment for timing a batch: the cache hit
// ratio per region, as computed by the caller from the shared-cache model
// and current working-set sizes.
type Env struct {
	// HitRatio[r] is the probability a random access to region r hits the
	// shared L2 cache. Values are clamped to [0,1].
	HitRatio [NumRegions]float64
}

// UniformEnv returns an Env with the same hit ratio for every region,
// convenient for microbenchmarks and tests.
func UniformEnv(hit float64) Env {
	var e Env
	for i := range e.HitRatio {
		e.HitRatio[i] = hit
	}
	return e
}

// Breakdown decomposes simulated batch time into its components (ns).
type Breakdown struct {
	ComputeNS float64
	MemoryNS  float64
	AtomicNS  float64
	LocalNS   float64
	LaunchNS  float64
}

// TotalNS returns the summed elapsed time of the breakdown.
func (b Breakdown) TotalNS() float64 {
	return b.ComputeNS + b.MemoryNS + b.AtomicNS + b.LocalNS + b.LaunchNS
}

// String renders the breakdown for diagnostics.
func (b Breakdown) String() string {
	return fmt.Sprintf("compute=%.0fns mem=%.0fns atomic=%.0fns local=%.0fns launch=%.0fns",
		b.ComputeNS, b.MemoryNS, b.AtomicNS, b.LocalNS, b.LaunchNS)
}

// Device is a simulated compute device. It is stateless apart from its
// profile; concurrent use is safe.
type Device struct {
	Profile
}

// New returns a device for the profile, panicking on invalid profiles
// (profiles are package constants or test fixtures, so an invalid one is a
// programming error).
func New(p Profile) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Device{Profile: p}
}

// Time converts an accounting record into simulated elapsed time.
func (d *Device) Time(a Acct, env Env) Breakdown {
	var b Breakdown
	if a.Items == 0 && a.Instr == 0 && a.RandTotal() == 0 && a.AtomicOps == 0 && a.SeqBytes == 0 {
		return b
	}

	div := 1.0
	if d.Kind == GPU {
		div = a.DivergenceFactor()
	}

	// Compute: aggregate instructions over the device's issue throughput,
	// inflated by lockstep divergence on the GPU.
	instr := a.Instr + a.Items*d.PerItemInstr
	b.ComputeNS = float64(instr) / d.InstrThroughput() * div

	// Memory: streaming bytes are bandwidth-bound; random accesses pay the
	// amortized hit/miss cost. Lockstep divergence also stretches the
	// random-access phase on the GPU because idle lanes still occupy the
	// wavefront's memory slot.
	mem := float64(a.SeqBytes) / d.BandwidthGBs // GB/s == bytes/ns
	for r := Region(0); r < NumRegions; r++ {
		n := a.Rand[r]
		if n == 0 {
			continue
		}
		hit := clamp01(env.HitRatio[r])
		cost := hit*d.RandHitNS + (1-hit)*d.RandMissNS
		mem += float64(n) * cost
	}
	if d.Kind == GPU {
		mem *= div
	}
	b.MemoryNS = mem

	// Atomics: the device is limited both by aggregate atomic throughput
	// and by serialization on the hottest contended location.
	if a.AtomicOps > 0 {
		targets := a.AtomicTargets
		if targets <= 0 {
			targets = a.AtomicOps
		}
		throughput := float64(a.AtomicOps) * d.AtomicNS / float64(min64(int64(d.Cores), a.AtomicOps))
		perTarget := float64(a.AtomicOps) / float64(targets)
		// Serialization matters when many lanes hammer few targets; it
		// fades linearly as the targets spread past the lane count.
		scale := 1 - float64(targets)/float64(d.Cores)
		if scale < 0 {
			scale = 0
		}
		serialized := perTarget * d.AtomicSerNS * scale
		b.AtomicNS = maxf(throughput, serialized)
	}

	// Allocator atomics target a single global pointer and serialize fully
	// once more than one lane is active.
	if a.AllocAtomics > 0 {
		ser := d.AtomicSerNS
		if d.Cores == 1 {
			ser = d.AtomicNS
		}
		b.AtomicNS += float64(a.AllocAtomics) * ser
	}

	// Local ops execute in parallel across lanes at L1/LDS speed; the
	// profile's LocalNS is already the amortized per-op cost.
	if a.LocalOps > 0 {
		b.LocalNS = float64(a.LocalOps) * d.LocalNS
	}

	b.LaunchNS = d.LaunchNS
	return b
}

// TimeNS is a convenience wrapper returning just the total.
func (d *Device) TimeNS(a Acct, env Env) float64 { return d.Time(a, env).TotalNS() }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
