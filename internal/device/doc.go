// Package device models the two compute devices of a coupled CPU-GPU chip
// (and, for reference, a discrete GPU) in the OpenCL abstraction the paper
// programs against.
//
// The paper runs OpenCL 1.2 kernels on an AMD APU A8-3870K. This
// reproduction has no GPU, so the devices are simulated: kernels are real
// Go functions that perform the actual join work over tuple batches, and
// each batch execution reports an accounting record (Acct) of instructions
// executed, memory accesses by class and region, atomic operations and the
// per-item workload distribution. A Device converts an Acct into simulated
// elapsed nanoseconds using its hardware profile:
//
//	compute = instructions / (cores × clock × IPC) × divergence
//	memory  = seqBytes / bandwidth + Σ randAccesses × amortizedCost(hitRatio) × divergence(GPU)
//	atomics = max(throughput-limited, serialization-limited on hottest target)
//
// Divergence captures SIMD lockstep semantics: AMD executes 64 work items
// per wavefront and a wavefront runs as long as its slowest item, so the
// factor is Σ_wavefront(64 × max item work) / Σ item work computed from the
// actual per-item workloads in execution order. This is why the
// workload-divergence grouping optimization (paper Sec. 3.3) helps: it
// reorders items so wavefronts are homogeneous.
//
// The amortized memory costs per device are calibration constants in the
// same spirit as the paper's use of the Manegold/He calibration method:
// they represent the achievable per-access cost including the device's
// memory-level parallelism.
package device
