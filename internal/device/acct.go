package device

import "fmt"

// Region classifies which data structure a random memory access touches.
// The cache model assigns each region a hit ratio from its working-set size,
// so the accounting must keep regions separate.
type Region int

const (
	// RegionInput covers the R and S tuple columns (mostly streamed).
	RegionInput Region = iota
	// RegionHashTable covers bucket headers, key lists and rid lists.
	RegionHashTable
	// RegionPartition covers partition buffers during radix passes.
	RegionPartition
	// RegionOutput covers the join result buffer.
	RegionOutput
	// RegionScratch covers intermediate per-step arrays (PL intermediates).
	RegionScratch
	// NumRegions is the number of regions; keep it last.
	NumRegions
)

// String returns a short region name for diagnostics.
func (r Region) String() string {
	switch r {
	case RegionInput:
		return "input"
	case RegionHashTable:
		return "hashtable"
	case RegionPartition:
		return "partition"
	case RegionOutput:
		return "output"
	case RegionScratch:
		return "scratch"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Acct accumulates the work performed by a kernel over a batch of items.
// Kernels fill it while doing the real computation; a Device turns it into
// simulated time. The zero value is an empty account ready to use.
type Acct struct {
	// Items is the number of work items (tuples) processed.
	Items int64
	// Instr is the total instruction count across all items.
	Instr int64
	// SeqBytes counts sequentially streamed bytes (bandwidth-bound).
	SeqBytes int64
	// Rand counts random (latency-bound) accesses per region.
	Rand [NumRegions]int64
	// AtomicOps counts atomic read-modify-write operations.
	AtomicOps int64
	// AtomicTargets is the number of distinct memory locations the atomics
	// spread over (e.g. 1 for the basic allocator's global pointer,
	// #buckets for bucket latches). Zero means "same as AtomicOps"
	// (uncontended).
	AtomicTargets int64
	// LocalOps counts local-memory operations (work-group local pointers).
	LocalOps int64
	// AllocAtomics counts atomics on the software allocator's single global
	// pointer. They are kept apart from AtomicOps because they always
	// target one location and therefore serialize fully (the contention
	// the paper's optimized allocator exists to remove).
	AllocAtomics int64
	// DivMaxWork is Σ over wavefronts of (wavefrontSize × max item work);
	// DivWork is Σ item work. Their ratio is the SIMD divergence factor.
	// Both are zero when the kernel has homogeneous per-item work.
	DivMaxWork int64
	DivWork    int64
}

// Add accumulates b into a. Divergence sums add linearly because they are
// both plain sums over wavefronts/items.
func (a *Acct) Add(b Acct) {
	a.Items += b.Items
	a.Instr += b.Instr
	a.SeqBytes += b.SeqBytes
	for i := range a.Rand {
		a.Rand[i] += b.Rand[i]
	}
	a.AtomicOps += b.AtomicOps
	a.AtomicTargets += b.AtomicTargets
	a.LocalOps += b.LocalOps
	a.AllocAtomics += b.AllocAtomics
	a.DivMaxWork += b.DivMaxWork
	a.DivWork += b.DivWork
}

// DivergenceFactor returns the SIMD lockstep slowdown (≥ 1).
// It is 1 when no per-item work was recorded.
func (a Acct) DivergenceFactor() float64 {
	if a.DivWork <= 0 || a.DivMaxWork <= a.DivWork {
		return 1
	}
	return float64(a.DivMaxWork) / float64(a.DivWork)
}

// RandTotal returns the total random accesses across regions.
func (a Acct) RandTotal() int64 {
	var t int64
	for _, c := range a.Rand {
		t += c
	}
	return t
}

// DivTracker computes the divergence sums for a kernel that processes items
// in order with varying per-item work. Call Item for every item, then
// Flush, and add the sums into the Acct.
type DivTracker struct {
	wfSize int
	inWF   int
	maxWF  int32
	sumMax int64
	sumAll int64
}

// NewDivTracker returns a tracker for the given wavefront size.
// Size 1 (the CPU) never produces divergence.
func NewDivTracker(wfSize int) DivTracker {
	if wfSize < 1 {
		wfSize = 1
	}
	return DivTracker{wfSize: wfSize}
}

// Item records one item's workload (e.g. key-list length walked).
func (d *DivTracker) Item(work int32) {
	if work < 1 {
		work = 1
	}
	d.sumAll += int64(work)
	if work > d.maxWF {
		d.maxWF = work
	}
	d.inWF++
	if d.inWF == d.wfSize {
		d.sumMax += int64(d.maxWF) * int64(d.wfSize)
		d.inWF = 0
		d.maxWF = 0
	}
}

// Flush closes the trailing partial wavefront and writes the sums into a.
func (d *DivTracker) Flush(a *Acct) {
	if d.inWF > 0 {
		// A partial wavefront still occupies a full wavefront slot.
		d.sumMax += int64(d.maxWF) * int64(d.inWF)
		d.inWF = 0
		d.maxWF = 0
	}
	a.DivMaxWork += d.sumMax
	a.DivWork += d.sumAll
	d.sumMax = 0
	d.sumAll = 0
}
