package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{APUCPU(), APUGPU(), DiscreteGPU()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	cases := []Profile{
		{Name: "no-cores", ClockGHz: 1, IPC: 1, WavefrontSize: 1, BandwidthGBs: 1},
		{Name: "no-clock", Cores: 1, IPC: 1, WavefrontSize: 1, BandwidthGBs: 1},
		{Name: "bad-mem", Cores: 1, ClockGHz: 1, IPC: 1, WavefrontSize: 1, BandwidthGBs: 1, RandHitNS: 5, RandMissNS: 1},
	}
	for _, p := range cases {
		if p.Validate() == nil {
			t.Errorf("%s: expected validation error", p.Name)
		}
	}
}

func TestComputeTimeScalesWithInstructions(t *testing.T) {
	d := New(APUCPU())
	a := Acct{Items: 1000, Instr: 100000}
	b := Acct{Items: 1000, Instr: 200000}
	ta := d.Time(a, UniformEnv(1)).ComputeNS
	tb := d.Time(b, UniformEnv(1)).ComputeNS
	if tb <= ta {
		t.Fatalf("more instructions not slower: %v vs %v", ta, tb)
	}
}

func TestGPUFasterOnPureCompute(t *testing.T) {
	cpu := New(APUCPU())
	gpu := New(APUGPU())
	a := Acct{Items: 1 << 20, Instr: 40 << 20}
	if gpu.TimeNS(a, UniformEnv(1)) >= cpu.TimeNS(a, UniformEnv(1)) {
		t.Fatal("GPU should beat CPU on massively parallel pure compute")
	}
}

func TestCacheMissesCostMore(t *testing.T) {
	for _, p := range []Profile{APUCPU(), APUGPU()} {
		d := New(p)
		var a Acct
		a.Items = 1000
		a.Rand[RegionHashTable] = 100000
		hit := d.Time(a, UniformEnv(1)).MemoryNS
		miss := d.Time(a, UniformEnv(0)).MemoryNS
		if miss <= hit {
			t.Errorf("%s: misses not slower than hits", p.Name)
		}
	}
}

func TestDivergenceSlowsGPUOnly(t *testing.T) {
	cpu := New(APUCPU())
	gpu := New(APUGPU())
	var a Acct
	a.Items = 64000
	a.Instr = 64000 * 50
	a.DivWork = 64000
	a.DivMaxWork = 64000 * 4 // factor 4
	var b Acct
	b.Items = a.Items
	b.Instr = a.Instr

	if gpu.TimeNS(a, UniformEnv(1)) <= gpu.TimeNS(b, UniformEnv(1)) {
		t.Fatal("divergence should slow the GPU")
	}
	if cpu.TimeNS(a, UniformEnv(1)) != cpu.TimeNS(b, UniformEnv(1)) {
		t.Fatal("divergence must not affect the CPU (wavefront size 1)")
	}
}

func TestAtomicSerializationOnFewTargets(t *testing.T) {
	gpu := New(APUGPU())
	few := Acct{Items: 1, AtomicOps: 1 << 20, AtomicTargets: 2}
	many := Acct{Items: 1, AtomicOps: 1 << 20, AtomicTargets: 1 << 20}
	if gpu.TimeNS(few, UniformEnv(1)) <= gpu.TimeNS(many, UniformEnv(1)) {
		t.Fatal("contended atomics should cost more than spread atomics")
	}
}

func TestAllocAtomicsSerialize(t *testing.T) {
	gpu := New(APUGPU())
	a := Acct{Items: 1, AllocAtomics: 1000}
	got := gpu.Time(a, UniformEnv(1)).AtomicNS
	want := 1000 * gpu.AtomicSerNS
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("alloc atomics time %v, want %v", got, want)
	}
}

func TestEmptyAcctZeroTime(t *testing.T) {
	d := New(APUCPU())
	if tt := d.TimeNS(Acct{}, UniformEnv(1)); tt != 0 {
		t.Fatalf("empty account costs %v ns", tt)
	}
}

func TestAcctAddIsComponentwise(t *testing.T) {
	f := func(i1, i2, r1, r2, at1, at2 int64) bool {
		a := Acct{Items: abs64(i1), Instr: abs64(i2), AtomicOps: abs64(at1)}
		a.Rand[RegionInput] = abs64(r1)
		b := Acct{Items: abs64(i2), Instr: abs64(i1), AtomicOps: abs64(at2)}
		b.Rand[RegionInput] = abs64(r2)
		sum := a
		sum.Add(b)
		return sum.Items == a.Items+b.Items &&
			sum.Instr == a.Instr+b.Instr &&
			sum.Rand[RegionInput] == a.Rand[RegionInput]+b.Rand[RegionInput] &&
			sum.AtomicOps == a.AtomicOps+b.AtomicOps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == math.MinInt64 {
			return math.MaxInt64
		}
		return -x
	}
	return x
}

func TestDivTrackerUniformWorkNoDivergence(t *testing.T) {
	tr := NewDivTracker(64)
	for i := 0; i < 640; i++ {
		tr.Item(3)
	}
	var a Acct
	tr.Flush(&a)
	if f := a.DivergenceFactor(); f != 1 {
		t.Fatalf("uniform work divergence factor %v, want 1", f)
	}
}

func TestDivTrackerSkewedWorkDiverges(t *testing.T) {
	tr := NewDivTracker(64)
	for i := 0; i < 640; i++ {
		w := int32(1)
		if i%64 == 0 {
			w = 100 // one slow lane per wavefront
		}
		tr.Item(w)
	}
	var a Acct
	tr.Flush(&a)
	if f := a.DivergenceFactor(); f < 10 {
		t.Fatalf("expected heavy divergence, got factor %v", f)
	}
}

func TestDivTrackerGroupingReducesFactor(t *testing.T) {
	// Same multiset of work, sorted vs interleaved: sorted must diverge
	// less — the premise of the grouping optimization.
	mixed := NewDivTracker(64)
	sorted := NewDivTracker(64)
	for i := 0; i < 6400; i++ {
		w := int32(1 + (i%2)*9) // alternating 1 and 10
		mixed.Item(w)
	}
	for i := 0; i < 3200; i++ {
		sorted.Item(1)
	}
	for i := 0; i < 3200; i++ {
		sorted.Item(10)
	}
	var am, as Acct
	mixed.Flush(&am)
	sorted.Flush(&as)
	if as.DivergenceFactor() >= am.DivergenceFactor() {
		t.Fatalf("sorted order should reduce divergence: sorted %v vs mixed %v",
			as.DivergenceFactor(), am.DivergenceFactor())
	}
}

func TestDivTrackerPartialWavefront(t *testing.T) {
	tr := NewDivTracker(64)
	for i := 0; i < 10; i++ { // less than one wavefront
		tr.Item(int32(i + 1))
	}
	var a Acct
	tr.Flush(&a)
	if a.DivWork != 55 {
		t.Fatalf("DivWork %d, want 55", a.DivWork)
	}
	if a.DivMaxWork != 100 { // max 10 × 10 items in the partial wavefront
		t.Fatalf("DivMaxWork %d, want 100", a.DivMaxWork)
	}
}

func TestWavefrontOneNeverDiverges(t *testing.T) {
	tr := NewDivTracker(1)
	tr.Item(1)
	tr.Item(1000)
	var a Acct
	tr.Flush(&a)
	if f := a.DivergenceFactor(); f != 1 {
		t.Fatalf("wavefront size 1 diverged: %v", f)
	}
}
