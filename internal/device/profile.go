package device

import "fmt"

// Kind distinguishes the two processor types of the coupled chip.
type Kind int

const (
	// CPU is a latency-optimized multi-core processor (MIMD).
	CPU Kind = iota
	// GPU is a throughput-optimized processor executing wavefronts in
	// SIMD lockstep.
	GPU
)

// String returns "CPU" or "GPU".
func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// Profile holds the hardware parameters of one compute device.
//
// Compute parameters come straight from the paper's Table 1 for the AMD
// A8-3870K; the memory and atomic cost constants are calibration values in
// the style of the Manegold/He calibration method, chosen so that the
// per-step unit costs reproduce the shape of the paper's Figure 4
// (GPU ≥15× faster on hash computation, near-parity on pointer chasing,
// CPU ahead on latch-heavy and branch-divergent steps).
type Profile struct {
	Name          string
	Kind          Kind
	Cores         int     // concurrent hardware lanes (CPU cores / GPU PEs)
	ClockGHz      float64 // core clock
	IPC           float64 // peak instructions per cycle per lane
	WavefrontSize int     // SIMD width (1 on the CPU, 64 on AMD GPUs)

	// Memory system (amortized per-access costs at full device occupancy).
	RandHitNS     float64 // random access, cache hit
	RandMissNS    float64 // random access, cache miss (to shared DRAM)
	BandwidthGBs  float64 // sequential streaming bandwidth
	LocalNS       float64 // local (work-group) memory op
	AtomicNS      float64 // uncontended atomic op, amortized
	AtomicSerNS   float64 // serialized atomic on a contended location
	LaunchNS      float64 // fixed kernel launch overhead per step invocation
	PerItemInstr  int64   // fixed bookkeeping instructions per work item
	BranchMissNS  float64 // CPU branch-misprediction penalty per irregular item
	ZeroCopyShare bool    // device reads the shared zero-copy buffer directly
}

// Validate reports obviously inconsistent profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("device: %s: cores must be positive, got %d", p.Name, p.Cores)
	case p.ClockGHz <= 0:
		return fmt.Errorf("device: %s: clock must be positive, got %v", p.Name, p.ClockGHz)
	case p.IPC <= 0:
		return fmt.Errorf("device: %s: IPC must be positive, got %v", p.Name, p.IPC)
	case p.WavefrontSize < 1:
		return fmt.Errorf("device: %s: wavefront size must be ≥1, got %d", p.Name, p.WavefrontSize)
	case p.BandwidthGBs <= 0:
		return fmt.Errorf("device: %s: bandwidth must be positive, got %v", p.Name, p.BandwidthGBs)
	case p.RandHitNS < 0 || p.RandMissNS < p.RandHitNS:
		return fmt.Errorf("device: %s: inconsistent random access costs hit=%v miss=%v", p.Name, p.RandHitNS, p.RandMissNS)
	}
	return nil
}

// InstrThroughput returns aggregate instructions per nanosecond.
func (p Profile) InstrThroughput() float64 {
	return float64(p.Cores) * p.ClockGHz * p.IPC
}

// APUCPU returns the profile of the CPU device of the AMD A8-3870K
// (4 cores, 3.0 GHz) used in the paper.
func APUCPU() Profile {
	return Profile{
		Name:          "A8-3870K CPU",
		Kind:          CPU,
		Cores:         4,
		ClockGHz:      3.0,
		IPC:           0.8, // OpenCL-compiled scalar code sustains well below peak
		WavefrontSize: 1,
		RandHitNS:     0.9,  // L2 hit amortized over 4 cores with MLP
		RandMissNS:    3.6,  // DRAM miss amortized over 4 cores with MLP
		BandwidthGBs:  9.0,  // share of the dual-channel DDR3 controller
		LocalNS:       0.15, // L1-resident scratch
		AtomicNS:      4.0,
		AtomicSerNS:   18.0, // locked RMW round trip on a hot line
		LaunchNS:      4000,
		PerItemInstr:  18, // loop bookkeeping, address math per tuple
		BranchMissNS:  0.0,
		ZeroCopyShare: true,
	}
}

// APUGPU returns the profile of the integrated GPU device of the AMD
// A8-3870K (400 PEs, 0.6 GHz, 64-wide wavefronts).
func APUGPU() Profile {
	return Profile{
		Name:          "A8-3870K GPU",
		Kind:          GPU,
		Cores:         400,
		ClockGHz:      0.6,
		IPC:           1.0,
		WavefrontSize: 64,
		RandHitNS:     0.8, // massive TLP hides latency at full occupancy
		RandMissNS:    2.2,
		BandwidthGBs:  26.0, // the Radeon memory path streams far faster
		LocalNS:       0.05, // LDS
		AtomicNS:      6.0,
		AtomicSerNS:   60.0, // global-memory atomic round trip
		LaunchNS:      15000,
		PerItemInstr:  16, // wavefront-amortized bookkeeping per item
		BranchMissNS:  0.0,
		ZeroCopyShare: true,
	}
}

// DiscreteGPU returns the profile of the AMD Radeon HD 7970 the paper lists
// in Table 1 for reference (2048 cores, 0.9 GHz). It is used only by the
// Table 1 experiment and the discrete-architecture discussion.
func DiscreteGPU() Profile {
	return Profile{
		Name:          "Radeon HD 7970",
		Kind:          GPU,
		Cores:         2048,
		ClockGHz:      0.9,
		IPC:           1.0,
		WavefrontSize: 64,
		RandHitNS:     0.25,
		RandMissNS:    1.2,
		BandwidthGBs:  240.0, // GDDR5 device memory
		LocalNS:       0.04,
		AtomicNS:      3.0,
		AtomicSerNS:   40.0,
		LaunchNS:      15000,
		PerItemInstr:  26,
		ZeroCopyShare: false,
	}
}
