package htab

import (
	"testing"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/rel"
	"apujoin/internal/sched"
)

func TestGroupingReducesP3Divergence(t *testing.T) {
	n := 1 << 18
	r := rel.Gen{N: n, Seed: 1}.Build()
	s := rel.Gen{N: n, Seed: 2}.Probe(r, 1.0)
	arena := alloc.New(alloc.Config{}, n*6)
	tbl := New(n, arena)
	gpu := device.New(device.APUGPU())
	bucket := make([]int32, n)
	head := make([]int32, n)
	node := make([]int32, n)
	work := make([]int32, n)
	tbl.B1(gpu, r.Keys, bucket, 0, n)
	tbl.B2(gpu, bucket, head, nil, 0, n)
	tbl.B3(gpu, r.Keys, bucket, node, 0, n, nil)
	tbl.B4(gpu, r.RIDs, node, 0, n)

	tbl.P1(gpu, s.Keys, bucket, 0, n)
	tbl.P2(gpu, bucket, head, work, 0, n)
	plain := tbl.P3(gpu, s.Keys, head, node, 0, n, nil)
	order := sched.GroupOrder(work, 0, n, 32)
	grouped := tbl.P3(gpu, s.Keys, head, node, 0, n, order)
	t.Logf("P3 divergence plain=%.3f grouped=%.3f", plain.DivergenceFactor(), grouped.DivergenceFactor())
	t.Logf("P3 GPU time plain=%.2fms grouped=%.2fms", gpu.TimeNS(plain, device.UniformEnv(0.5))/1e6, gpu.TimeNS(grouped, device.UniformEnv(0.5))/1e6)
	if grouped.DivergenceFactor() >= plain.DivergenceFactor() {
		t.Errorf("grouping did not reduce divergence")
	}
}
