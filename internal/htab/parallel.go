package htab

import (
	"sync/atomic"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
)

// Parallel-safe build kernels for the morsel-driven runtime.
//
// Two mechanisms keep concurrent builds both correct and deterministic:
//
//   - B2Atomic replaces the bucket-header count increment with a
//     sync/atomic add on the Count array, so range morsels of b2 can run
//     concurrently. Counter sums are order-independent, so the final table
//     state and the accounting are schedule-free.
//
//   - B3Shard / B4Shard split the insert steps by bucket OWNERSHIP instead
//     of by range: shard k processes exactly the tuples whose bucket lies
//     in its slice of the bucket space (for the segmented PHJ table the
//     high bucket bits are the partition index, so shards own disjoint
//     partition segments). Within a shard, tuples are visited in index
//     order — the same relative order per bucket as a single-stream
//     execution — so key-list shapes, walk lengths and therefore simulated
//     times are identical no matter how many workers execute the shards.
//     Node allocation goes through a worker-private alloc.Local.
//
// The per-item accounting charges match the serial kernels; the ownership
// scan over the morsel's bucket numbers is runtime scheduling work (a
// streamed, branch-friendly pass) and is not modeled, like the morsel
// dispatch itself.

// ShardShift returns the right-shift that maps a bucket number to its
// ownership shard for the given shard count (a power of two). Callers pass
// the result to B3Shard/B4Shard with shard numbers in [0,shards).
func (t *Table) ShardShift(shards int) uint {
	var shift uint
	for 1<<shift < t.nBuckets {
		shift++
	}
	var sbits uint
	for 1<<sbits < shards {
		sbits++
	}
	if sbits > shift {
		return 0
	}
	return shift - sbits
}

// Shards clamps the requested ownership shard count to the bucket count,
// keeping it a power of two.
func (t *Table) Shards(want int) int {
	s := 1
	for s*2 <= want && s*2 <= t.nBuckets {
		s *= 2
	}
	return s
}

// B2Atomic is B2 with a sync/atomic increment of the bucket count, safe for
// concurrent range morsels. The head snapshot is a plain read: b3 is the
// step that links new key nodes, so Head is constant throughout b2. The
// work hint records the post-increment count; under concurrency its exact
// value is schedule-dependent, so grouped execution (the only consumer)
// stays on the serial path.
func (t *Table) B2Atomic(d *device.Device, bucket []int32, head, work []int32, lo, hi int) device.Acct {
	var a device.Acct
	for i := lo; i < hi; i++ {
		b := bucket[i]
		c := atomic.AddInt32(&t.Count[b], 1)
		head[i] = t.Head[b]
		if work != nil {
			work[i] = c
		}
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrVisitHeader
	a.SeqBytes = n * 8
	a.Rand[device.RegionHashTable] = n
	a.AtomicOps = n
	a.AtomicTargets = int64(t.nBuckets)
	return a
}

// B3Shard performs b3 for the tuples of [lo,hi) owned by shard: the key
// lists visited (and the key nodes created, through the worker-private
// allocator) all live in bucket range [shard<<shift, (shard+1)<<shift), so
// concurrent shards never touch the same list.
func (t *Table) B3Shard(d *device.Device, keys, bucket, node []int32, lo, hi int, shard int32, shift uint, la *alloc.Local) device.Acct {
	var a device.Acct
	div := device.NewDivTracker(d.WavefrontSize)
	words := t.arena.Words()

	var processed int64
	for i := lo; i < hi; i++ {
		b := bucket[i]
		if b>>shift != shard {
			continue
		}
		key := keys[i]
		var visited int32 = 1
		kn := t.Head[b]
		for kn != nilRef && words[kn+keyOffKey] != key {
			kn = words[kn+keyOffNext]
			visited++
		}
		if kn == nilRef {
			kn = la.Alloc(keyNodeWords)
			words[kn+keyOffKey] = key
			words[kn+keyOffRIDHead] = nilRef
			words[kn+keyOffNext] = t.Head[b]
			t.Head[b] = kn
			t.numKeys.Add(1)
			a.Instr += instrCreateNode
			a.AtomicOps++ // latched head swap on the bucket
		}
		node[i] = kn
		a.Instr += int64(visited) * instrListNode
		a.Rand[device.RegionHashTable] += int64(visited)
		div.Item(visited)
		processed++
	}

	a.Items = processed
	a.SeqBytes = processed * 12 // key, bucket number, node ref
	a.AtomicTargets = int64(t.nBuckets)
	st := la.Stats()
	a.AllocAtomics += st.GlobalAtomics
	a.LocalOps += st.LocalOps
	div.Flush(&a)
	return a
}

// B4Shard performs b4 for the tuples of [lo,hi) owned by shard. The key
// node a tuple appends to belongs to the tuple's bucket, so ownership
// carries over from b3 and the rid-list pushes need no synchronization.
func (t *Table) B4Shard(d *device.Device, rids, bucket, node []int32, lo, hi int, shard int32, shift uint, la *alloc.Local) device.Acct {
	var a device.Acct
	words := t.arena.Words()
	before := la.Stats()

	var processed int64
	for i := lo; i < hi; i++ {
		if bucket[i]>>shift != shard {
			continue
		}
		kn := node[i]
		rn := la.Alloc(ridNodeWords)
		words[rn+ridOffRID] = rids[i]
		words[rn+ridOffNext] = words[kn+keyOffRIDHead]
		words[kn+keyOffRIDHead] = rn
		processed++
	}

	a.Items = processed
	a.Instr = processed * instrInsertRID
	a.SeqBytes = processed * 8
	a.Rand[device.RegionHashTable] = processed * 2
	a.AtomicOps = processed
	if nk := t.numKeys.Load(); nk > 0 {
		a.AtomicTargets = nk
	} else {
		a.AtomicTargets = 1
	}
	st := la.Stats().Sub(before)
	a.AllocAtomics += st.GlobalAtomics
	a.LocalOps += st.LocalOps
	return a
}
