package htab

import (
	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/hash"
)

// Out collects join results produced by P4. When Materialize is set, each
// matching (buildRID, probeRID) pair is written through the arena — the
// "join result output" dynamic allocation of the paper — so allocator
// contention on the output path is accounted realistically.
type Out struct {
	Arena       *alloc.Arena
	Materialize bool
	Pairs       int64
}

// Reset clears the match count (the arena is reset by the caller).
func (o *Out) Reset() { o.Pairs = 0 }

// P1 computes the hash bucket number for probe tuples [lo,hi).
func (t *Table) P1(d *device.Device, keys []int32, bucket []int32, lo, hi int) device.Acct {
	var a device.Acct
	shift := t.segShift
	for i := lo; i < hi; i++ {
		bucket[i] = int32((hash.Murmur2(uint32(keys[i]), hash.Murmur2Seed) >> shift) & t.mask)
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * hash.InstrPerHash
	a.SeqBytes = n * 8
	return a
}

// P2 visits the bucket header for probe tuples [lo,hi), snapshotting the
// key-list head into head[i] and the bucket's tuple count into work[i]
// (if non-nil). The counts are the workload hints the grouping
// optimization sorts by (paper Sec. 3.3: "the amount of workload is
// represented by the number of keys in the key list").
func (t *Table) P2(d *device.Device, bucket []int32, head, work []int32, lo, hi int) device.Acct {
	var a device.Acct
	if work != nil {
		for i := lo; i < hi; i++ {
			b := bucket[i]
			head[i] = t.Head[b]
			work[i] = t.Count[b]
		}
	} else {
		for i := lo; i < hi; i++ {
			head[i] = t.Head[bucket[i]]
		}
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrVisitHeader
	a.SeqBytes = n * 8
	a.Rand[device.RegionHashTable] = n
	return a
}

// P3 walks the key list from head[i] looking for each probe key, storing
// the matching key node (or -1) into node[i]. Like B3 this is the
// divergent pointer-chasing step; order enables grouped execution.
func (t *Table) P3(d *device.Device, keys, head []int32, node []int32, lo, hi int, order []int32) device.Acct {
	var a device.Acct
	div := device.NewDivTracker(d.WavefrontSize)
	words := t.arena.Words()

	run := func(i int) {
		key := keys[i]
		var visited int32 = 1
		kn := head[i]
		for kn != nilRef && words[kn+keyOffKey] != key {
			kn = words[kn+keyOffNext]
			visited++
		}
		node[i] = kn
		a.Instr += int64(visited) * instrListNode
		a.Rand[device.RegionHashTable] += int64(visited)
		div.Item(visited)
	}

	if order != nil {
		// order is the grouped permutation of exactly [lo,hi).
		for _, i := range order {
			run(int(i))
		}
	} else {
		for i := lo; i < hi; i++ {
			run(i)
		}
	}

	n := int64(hi - lo)
	a.Items = n
	a.SeqBytes = n * 12
	div.Flush(&a)
	return a
}

// P4 visits the matching build tuples for probe tuples [lo,hi): it walks
// the rid list of node[i] and produces one output tuple per match into out.
// The per-item workload is the number of matches, so skew and selectivity
// show up as wavefront divergence here.
func (t *Table) P4(d *device.Device, rids, node []int32, out *Out, lo, hi int, order []int32) device.Acct {
	var a device.Acct
	div := device.NewDivTracker(d.WavefrontSize)
	words := t.arena.Words()
	var before alloc.Stats
	if out.Materialize && out.Arena != nil {
		before = out.Arena.Stats()
	}

	run := func(i int) {
		kn := node[i]
		var matches int32
		if kn != nilRef {
			for rn := words[kn+keyOffRIDHead]; rn != nilRef; rn = words[rn+ridOffNext] {
				matches++
				a.Rand[device.RegionHashTable]++
				if out.Materialize && out.Arena != nil {
					off := out.Arena.Alloc(2)
					ow := out.Arena.Words()
					ow[off] = words[rn+ridOffRID]
					ow[off+1] = rids[i]
				}
			}
		}
		out.Pairs += int64(matches)
		a.Instr += int64(matches+1) * instrEmitMatch
		if out.Materialize {
			a.SeqBytes += int64(matches) * 8 // output pair write
		}
		div.Item(matches + 1)
	}

	if order != nil {
		// order is the grouped permutation of exactly [lo,hi).
		for _, i := range order {
			run(int(i))
		}
	} else {
		for i := lo; i < hi; i++ {
			run(i)
		}
	}

	n := int64(hi - lo)
	a.Items = n
	a.SeqBytes += n * 8 // rid, node ref reads
	if out.Materialize && out.Arena != nil {
		allocDelta(&a, before, out.Arena.Stats())
	}
	div.Flush(&a)
	return a
}
