// Package htab implements the hash table used by the joins, with the exact
// layout of the paper (Sec. 3.1): an array of bucket headers, each holding
// the tuple count of the bucket and a pointer to a key list; each key-list
// node holds one distinct key and links a rid list with the record IDs of
// every build tuple carrying that key.
//
// Nodes live in an alloc.Arena and are addressed by int32 offsets rather
// than Go pointers, mirroring the OpenCL implementation where all dynamic
// structures are indices into a pre-allocated zero-copy buffer.
//
// The build and probe phases are decomposed into the paper's fine-grained
// per-tuple steps:
//
//	build: (b1) compute hash bucket number, (b2) visit the bucket header,
//	       (b3) visit the key list, creating a key node if necessary,
//	       (b4) insert the record id into the rid list.
//	probe: (p1) compute hash bucket number, (p2) visit the bucket header,
//	       (p3) visit the key list, (p4) visit matching build tuples and
//	       produce output tuples.
//
// Every step kernel does the real work on a batch [lo,hi) of tuples while
// filling a device accounting record; the co-processing schedulers split
// batches between the CPU and GPU devices and the device model converts the
// accounts into simulated time.
package htab

import (
	"fmt"
	"sync/atomic"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
)

// Node layouts inside the arena (int32 words).
const (
	keyNodeWords = 3 // [key, ridHead, next]
	ridNodeWords = 2 // [rid, next]

	keyOffKey     = 0
	keyOffRIDHead = 1
	keyOffNext    = 2

	ridOffRID  = 0
	ridOffNext = 1
)

// nilRef marks an empty list head.
const nilRef = int32(-1)

// Profiled per-step instruction constants (per tuple / per list node).
// They play the role of the AMD profiler numbers the paper feeds into its
// cost model; the cost package re-derives them by probing the kernels.
const (
	instrVisitHeader = 6
	instrListNode    = 8
	instrCreateNode  = 14
	instrInsertRID   = 10
	instrEmitMatch   = 12
)

// Table is the paper's hash table.
type Table struct {
	nBuckets int
	mask     uint32
	// Bucket headers, stored as two parallel arrays ("total number of
	// tuples within that bucket and the pointer to a key list").
	Count []int32
	Head  []int32

	arena   *alloc.Arena
	numKeys atomic.Int64 // distinct keys inserted (key nodes allocated)
	// bucketsPerPart is the segment width of a segmented table (see
	// NewSeg); 0 for a flat table. segShift skips the hash bits the radix
	// partitioning consumed.
	bucketsPerPart int
	segShift       uint
	partShift      uint
}

// New returns an empty table with nBuckets buckets (rounded up to a power
// of two) whose nodes are allocated from arena.
func New(nBuckets int, arena *alloc.Arena) *Table {
	return NewShifted(nBuckets, 0, arena)
}

// NewShifted returns a flat table whose bucket function skips the low
// hashShift hash bits. The external join (data larger than the zero-copy
// buffer) pre-partitions on the low bits, so the per-pair joins must hash
// with the bits above them or most buckets would stay empty.
func NewShifted(nBuckets int, hashShift uint, arena *alloc.Arena) *Table {
	n := 1
	for n < nBuckets {
		n *= 2
	}
	t := &Table{
		nBuckets: n,
		mask:     uint32(n - 1),
		Count:    make([]int32, n),
		Head:     make([]int32, n),
		arena:    arena,
	}
	for i := range t.Head {
		t.Head[i] = nilRef
	}
	t.segShift = hashShift
	return t
}

// NBuckets returns the bucket count.
func (t *Table) NBuckets() int { return t.nBuckets }

// NumKeys returns the number of distinct keys inserted so far.
func (t *Table) NumKeys() int64 { return t.numKeys.Load() }

// Arena returns the backing arena (shared with the caller for accounting).
func (t *Table) Arena() *alloc.Arena { return t.arena }

// BytesResident estimates the bytes of the table touched by random accesses:
// headers plus all allocated nodes. The cache model uses it as the
// hash-table working set.
func (t *Table) BytesResident() int64 {
	headers := int64(t.nBuckets) * 8
	nodes := int64(t.arena.Used()) * alloc.WordBytes
	return headers + nodes
}

// Reset empties the table, retaining buckets. The arena is not reset
// (several tables may share it); callers reset the arena between joins.
func (t *Table) Reset() {
	for i := range t.Head {
		t.Head[i] = nilRef
		t.Count[i] = 0
	}
	t.numKeys.Store(0)
}

// Validate walks the whole structure checking invariants: bucket counts
// equal the number of rids reachable in the bucket, key nodes hash to their
// bucket, and no reference escapes the arena. It is O(table) and intended
// for tests.
func (t *Table) Validate() error {
	words := t.arena.Words()
	used := int32(t.arena.Used())
	for b := 0; b < t.nBuckets; b++ {
		var rids int32
		for kn := t.Head[b]; kn != nilRef; kn = words[kn+keyOffNext] {
			if kn < 0 || kn+keyNodeWords > used {
				return fmt.Errorf("htab: bucket %d: key node ref %d out of arena [0,%d)", b, kn, used)
			}
			key := words[kn+keyOffKey]
			if t.bucketsPerPart > 0 {
				segMask := uint32(t.bucketsPerPart - 1)
				want := (hashBucket(key, ^uint32(0)) >> t.segShift) & segMask
				if uint32(b)&segMask != want {
					return fmt.Errorf("htab: segmented bucket %d: key %d hashes to slot %d within segment",
						b, key, want)
				}
			} else if int((hashBucket(key, ^uint32(0))>>t.segShift)&t.mask) != b {
				return fmt.Errorf("htab: bucket %d: key %d hashes to %d", b, key,
					(hashBucket(key, ^uint32(0))>>t.segShift)&t.mask)
			}
			for rn := words[kn+keyOffRIDHead]; rn != nilRef; rn = words[rn+ridOffNext] {
				if rn < 0 || rn+ridNodeWords > used {
					return fmt.Errorf("htab: bucket %d: rid node ref %d out of arena [0,%d)", b, rn, used)
				}
				rids++
			}
		}
		if rids != t.Count[b] {
			return fmt.Errorf("htab: bucket %d: header count %d but %d rids reachable", b, t.Count[b], rids)
		}
	}
	return nil
}

// Lookup returns the rids associated with key, for tests and spot checks.
func (t *Table) Lookup(key int32) []int32 {
	words := t.arena.Words()
	b := t.bucketOf(key)
	for kn := t.Head[b]; kn != nilRef; kn = words[kn+keyOffNext] {
		if words[kn+keyOffKey] == key {
			var out []int32
			for rn := words[kn+keyOffRIDHead]; rn != nilRef; rn = words[rn+ridOffNext] {
				out = append(out, words[rn+ridOffRID])
			}
			return out
		}
	}
	return nil
}

// Merge inserts every (key, rid) pair of src into t, the merge operation
// required by separate hash tables (paper Sec. 5.2: the partial table built
// on one device is merged into the other's). It returns an accounting
// record covering the traversal and re-insertion work; the caller charges
// it to the device performing the merge.
func (t *Table) Merge(src *Table) device.Acct {
	var a device.Acct
	words := src.arena.Words()
	for b := 0; b < src.nBuckets; b++ {
		for kn := src.Head[b]; kn != nilRef; kn = words[kn+keyOffNext] {
			key := words[kn+keyOffKey]
			a.Rand[device.RegionHashTable]++
			for rn := words[kn+keyOffRIDHead]; rn != nilRef; rn = words[rn+ridOffNext] {
				rid := words[rn+ridOffRID]
				ins := t.insertOne(key, rid)
				a.Add(ins)
				a.Items++
			}
		}
	}
	return a
}

// insertOne performs a full single-tuple insert (b1..b4 fused), used by
// Merge and by tests.
func (t *Table) insertOne(key, rid int32) device.Acct {
	var a device.Acct
	words := t.arena.Words()
	b := t.bucketOf(key)
	t.Count[b]++
	a.Instr += instrVisitHeader
	a.Rand[device.RegionHashTable]++
	a.AtomicOps++

	kn := t.Head[b]
	for kn != nilRef && words[kn+keyOffKey] != key {
		kn = words[kn+keyOffNext]
		a.Instr += instrListNode
		a.Rand[device.RegionHashTable]++
	}
	if kn == nilRef {
		kn = t.newKeyNode(key, int(b))
		words = t.arena.Words()
		a.Instr += instrCreateNode
		a.AtomicOps++
	}
	rn := t.arena.Alloc(ridNodeWords)
	words = t.arena.Words()
	words[rn+ridOffRID] = rid
	words[rn+ridOffNext] = words[kn+keyOffRIDHead]
	words[kn+keyOffRIDHead] = rn
	a.Instr += instrInsertRID
	a.Rand[device.RegionHashTable] += 2
	a.AtomicOps++
	if a.AtomicTargets == 0 {
		a.AtomicTargets = int64(t.nBuckets)
	}
	return a
}

// newKeyNode allocates and links a key node at the head of bucket b.
func (t *Table) newKeyNode(key int32, b int) int32 {
	kn := t.arena.Alloc(keyNodeWords)
	words := t.arena.Words()
	words[kn+keyOffKey] = key
	words[kn+keyOffRIDHead] = nilRef
	words[kn+keyOffNext] = t.Head[b]
	t.Head[b] = kn
	t.numKeys.Add(1)
	return kn
}
