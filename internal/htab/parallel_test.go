package htab

import (
	"testing"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/rel"
)

// buildSerial runs the single-stream b1..b4 pipeline.
func buildSerial(r rel.Relation) *Table {
	n := r.Len()
	arena := alloc.New(alloc.Config{}, n*6+64)
	t := New(n, arena)
	cpu := device.New(device.APUCPU())
	bucket := make([]int32, n)
	head := make([]int32, n)
	node := make([]int32, n)
	t.B1(cpu, r.Keys, bucket, 0, n)
	t.B2(cpu, bucket, head, nil, 0, n)
	t.B3(cpu, r.Keys, bucket, node, 0, n, nil)
	t.B4(cpu, r.RIDs, node, 0, n)
	return t
}

// buildSharded runs the concurrency-safe pipeline the way the pool does:
// atomic b2 over range morsels, then b3/b4 by bucket-ownership shards.
func buildSharded(r rel.Relation, shards int) *Table {
	n := r.Len()
	arena := alloc.New(alloc.Config{}, alloc.ParallelCapWords(alloc.Config{}, n*5+64, 3, 2*shards))
	t := New(n, arena)
	cpu := device.New(device.APUCPU())
	bucket := make([]int32, n)
	head := make([]int32, n)
	node := make([]int32, n)
	t.B1(cpu, r.Keys, bucket, 0, n)
	t.B2Atomic(cpu, bucket, head, nil, 0, n)
	shards = t.Shards(shards)
	shift := t.ShardShift(shards)
	for s := int32(0); s < int32(shards); s++ {
		la := arena.NewLocal()
		t.B3Shard(cpu, r.Keys, bucket, node, 0, n, s, shift, la)
		la.Close()
	}
	for s := int32(0); s < int32(shards); s++ {
		la := arena.NewLocal()
		t.B4Shard(cpu, r.RIDs, bucket, node, 0, n, s, shift, la)
		la.Close()
	}
	return t
}

// TestShardedBuildMatchesSerial compares the sharded build against the
// serial one structurally: identical invariants, key population and rid
// sets per key (the ownership design even preserves per-bucket insertion
// order, so list shapes and walk costs match too).
func TestShardedBuildMatchesSerial(t *testing.T) {
	for _, dist := range []rel.Distribution{rel.Uniform, rel.HighSkew} {
		r := rel.Gen{N: 20000, Dist: dist, Seed: 7}.Build()
		serial := buildSerial(r)
		sharded := buildSharded(r, 16)

		if err := sharded.Validate(); err != nil {
			t.Fatalf("%v: sharded table invalid: %v", dist, err)
		}
		if serial.NumKeys() != sharded.NumKeys() {
			t.Fatalf("%v: keys %d vs %d", dist, serial.NumKeys(), sharded.NumKeys())
		}
		for _, k := range r.Keys[:200] {
			a, b := serial.Lookup(k), sharded.Lookup(k)
			if len(a) != len(b) {
				t.Fatalf("%v: key %d rids %d vs %d", dist, k, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: key %d rid order differs at %d: %d vs %d", dist, k, i, a[i], b[i])
				}
			}
		}
	}
}

// TestShardedBuildAccountingDeterministic: per-tuple accounting must be a
// pure function of the shard decomposition, not of shard execution order.
func TestShardedBuildAccountingDeterministic(t *testing.T) {
	r := rel.Gen{N: 8192, Seed: 9}.Build()
	n := r.Len()
	cpu := device.New(device.APUCPU())

	run := func(order []int32) (device.Acct, *Table) {
		arena := alloc.New(alloc.Config{}, alloc.ParallelCapWords(alloc.Config{}, n*5+64, 3, 32))
		tab := New(n, arena)
		bucket := make([]int32, n)
		head := make([]int32, n)
		node := make([]int32, n)
		tab.B1(cpu, r.Keys, bucket, 0, n)
		tab.B2Atomic(cpu, bucket, head, nil, 0, n)
		shards := tab.Shards(16)
		shift := tab.ShardShift(shards)
		accts := make([]device.Acct, shards)
		for _, s := range order {
			la := arena.NewLocal()
			accts[s] = tab.B3Shard(cpu, r.Keys, bucket, node, 0, n, s, shift, la)
			la.Close()
		}
		var sum device.Acct
		for _, a := range accts {
			sum.Add(a)
		}
		return sum, tab
	}

	fwd := make([]int32, 16)
	rev := make([]int32, 16)
	for i := range fwd {
		fwd[i] = int32(i)
		rev[i] = int32(15 - i)
	}
	a, _ := run(fwd)
	b, _ := run(rev)
	if a != b {
		t.Fatalf("b3 accounting depends on shard execution order:\n fwd %+v\n rev %+v", a, b)
	}
}
