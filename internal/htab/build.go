package htab

import (
	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/hash"
)

func hashBucket(key int32, mask uint32) uint32 {
	return hash.Murmur2(uint32(key), hash.Murmur2Seed) & mask
}

// bucketOf computes the bucket of a key for both flat and segmented
// layouts; the fused single-tuple operations and Merge go through it.
func (t *Table) bucketOf(key int32) uint32 {
	h := hash.Murmur2(uint32(key), hash.Murmur2Seed)
	if t.bucketsPerPart > 0 {
		part := (h >> t.partShift) & ((1 << (t.segShift - t.partShift)) - 1)
		slot := (h >> t.segShift) & uint32(t.bucketsPerPart-1)
		return part*uint32(t.bucketsPerPart) + slot
	}
	return (h >> t.segShift) & t.mask
}

// allocDelta converts allocator activity between two snapshots into
// accounting charges: global-pointer atomics and local-memory ops.
func allocDelta(a *device.Acct, before, after alloc.Stats) {
	d := after.Sub(before)
	a.AllocAtomics += d.GlobalAtomics
	a.LocalOps += d.LocalOps
}

// B1 computes the hash bucket number for build tuples [lo,hi) and stores it
// in bucket[i]. Pure streaming computation: this is the step the GPU
// accelerates by >15x in the paper's Fig. 4.
func (t *Table) B1(d *device.Device, keys []int32, bucket []int32, lo, hi int) device.Acct {
	var a device.Acct
	shift := t.segShift
	for i := lo; i < hi; i++ {
		bucket[i] = int32((hash.Murmur2(uint32(keys[i]), hash.Murmur2Seed) >> shift) & t.mask)
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * hash.InstrPerHash
	a.SeqBytes = n * 8 // read key, write bucket number
	return a
}

// B2 visits the hash bucket header for tuples [lo,hi): it increments the
// bucket's tuple count (one latched atomic per tuple, spread over nBuckets
// targets) and snapshots the key-list head into head[i]. When work is
// non-nil it also records the bucket's tuple count as the workload hint the
// grouping optimization sorts by.
func (t *Table) B2(d *device.Device, bucket []int32, head, work []int32, lo, hi int) device.Acct {
	var a device.Acct
	for i := lo; i < hi; i++ {
		b := bucket[i]
		t.Count[b]++
		head[i] = t.Head[b]
		if work != nil {
			work[i] = t.Count[b]
		}
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrVisitHeader
	a.SeqBytes = n * 8 // read bucket number, write head snapshot
	a.Rand[device.RegionHashTable] = n
	a.AtomicOps = n
	a.AtomicTargets = int64(t.nBuckets)
	return a
}

// B3 visits the key list of each tuple's bucket, creating a key node when
// the key is not present, and stores the node reference in node[i].
// If order is non-nil, items are processed in that order (the
// workload-divergence grouping optimization); the result is identical but
// wavefronts become more homogeneous. Key-list walks are the random,
// branch-divergent accesses that erase the GPU's advantage in Fig. 4.
func (t *Table) B3(d *device.Device, keys, bucket []int32, node []int32, lo, hi int, order []int32) device.Acct {
	var a device.Acct
	div := device.NewDivTracker(d.WavefrontSize)
	before := t.arena.Stats()
	words := t.arena.Words()

	run := func(i int) {
		key := keys[i]
		b := bucket[i]
		var visited int32 = 1
		kn := t.Head[b]
		for kn != nilRef && words[kn+keyOffKey] != key {
			kn = words[kn+keyOffNext]
			visited++
		}
		if kn == nilRef {
			kn = t.newKeyNode(key, int(b))
			words = t.arena.Words()
			a.Instr += instrCreateNode
			a.AtomicOps++ // latched head swap on the bucket
		}
		node[i] = kn
		a.Instr += int64(visited) * instrListNode
		a.Rand[device.RegionHashTable] += int64(visited)
		div.Item(visited)
	}

	if order != nil {
		// order is the grouped permutation of exactly [lo,hi).
		for _, i := range order {
			run(int(i))
		}
	} else {
		for i := lo; i < hi; i++ {
			run(i)
		}
	}

	n := int64(hi - lo)
	a.Items = n
	a.SeqBytes = n * 12 // key, bucket number, node ref
	a.AtomicTargets = int64(t.nBuckets)
	allocDelta(&a, before, t.arena.Stats())
	div.Flush(&a)
	return a
}

// B4 inserts the record id into the rid list of node[i] for tuples [lo,hi):
// one rid-node allocation plus a latched head swap on the key node.
func (t *Table) B4(d *device.Device, rids, node []int32, lo, hi int) device.Acct {
	var a device.Acct
	before := t.arena.Stats()
	for i := lo; i < hi; i++ {
		kn := node[i]
		rn := t.arena.Alloc(ridNodeWords)
		words := t.arena.Words()
		words[rn+ridOffRID] = rids[i]
		words[rn+ridOffNext] = words[kn+keyOffRIDHead]
		words[kn+keyOffRIDHead] = rn
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * instrInsertRID
	a.SeqBytes = n * 8 // rid, node ref
	a.Rand[device.RegionHashTable] = n * 2
	a.AtomicOps = n
	if nk := t.numKeys.Load(); nk > 0 {
		a.AtomicTargets = nk
	} else {
		a.AtomicTargets = 1
	}
	allocDelta(&a, before, t.arena.Stats())
	return a
}
