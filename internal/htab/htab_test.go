package htab

import (
	"testing"
	"testing/quick"

	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/hash"
	"apujoin/internal/rel"
)

func buildAll(t *testing.T, tbl *Table, d *device.Device, r rel.Relation) {
	t.Helper()
	n := r.Len()
	bucket := make([]int32, n)
	head := make([]int32, n)
	node := make([]int32, n)
	tbl.B1(d, r.Keys, bucket, 0, n)
	tbl.B2(d, bucket, head, nil, 0, n)
	tbl.B3(d, r.Keys, bucket, node, 0, n, nil)
	tbl.B4(d, r.RIDs, node, 0, n)
}

func TestBuildThenValidate(t *testing.T) {
	r := rel.Gen{N: 20000, Seed: 1}.Build()
	arena := alloc.New(alloc.Config{}, r.Len()*6)
	tbl := New(r.Len(), arena)
	cpu := device.New(device.APUCPU())
	buildAll(t, tbl, cpu, r)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tbl.NumKeys() != int64(r.Len()) {
		t.Fatalf("distinct keys %d, want %d", tbl.NumKeys(), r.Len())
	}
}

func TestLookupAfterBuild(t *testing.T) {
	r := rel.Gen{N: 5000, Seed: 2}.Build()
	arena := alloc.New(alloc.Config{}, r.Len()*6)
	tbl := New(r.Len(), arena)
	buildAll(t, tbl, device.New(device.APUCPU()), r)
	for i := 0; i < 100; i++ {
		rids := tbl.Lookup(r.Keys[i])
		if len(rids) != 1 || rids[0] != r.RIDs[i] {
			t.Fatalf("key %d: lookup %v, want [%d]", r.Keys[i], rids, r.RIDs[i])
		}
	}
	if tbl.Lookup(-12345) != nil {
		t.Fatal("absent key found")
	}
}

func TestDuplicateKeysAccumulateRIDs(t *testing.T) {
	keys := []int32{7, 7, 7, 9}
	rids := []int32{0, 1, 2, 3}
	r := rel.Relation{Keys: keys, RIDs: rids}
	arena := alloc.New(alloc.Config{}, 256)
	tbl := New(8, arena)
	buildAll(t, tbl, device.New(device.APUCPU()), r)
	if got := tbl.Lookup(7); len(got) != 3 {
		t.Fatalf("key 7 rids %v, want 3 entries", got)
	}
	if got := tbl.Lookup(9); len(got) != 1 {
		t.Fatalf("key 9 rids %v", got)
	}
	if tbl.NumKeys() != 2 {
		t.Fatalf("numKeys %d, want 2", tbl.NumKeys())
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProbePipelineCountsMatches(t *testing.T) {
	r := rel.Gen{N: 10000, Seed: 3}.Build()
	s := rel.Gen{N: 15000, Seed: 4}.Probe(r, 0.6)
	want := rel.NaiveJoinCount(r, s)

	arena := alloc.New(alloc.Config{}, r.Len()*6)
	outArena := alloc.New(alloc.Config{}, 64)
	tbl := New(r.Len(), arena)
	gpu := device.New(device.APUGPU())
	buildAll(t, tbl, gpu, r)

	n := s.Len()
	bucket := make([]int32, n)
	head := make([]int32, n)
	node := make([]int32, n)
	work := make([]int32, n)
	out := Out{Arena: outArena, Materialize: true}
	tbl.P1(gpu, s.Keys, bucket, 0, n)
	tbl.P2(gpu, bucket, head, work, 0, n)
	tbl.P3(gpu, s.Keys, head, node, 0, n, nil)
	tbl.P4(gpu, s.RIDs, node, &out, 0, n, nil)
	if out.Pairs != want {
		t.Fatalf("pairs %d, want %d", out.Pairs, want)
	}
	// Materialized pairs occupy 2 words each.
	if int64(outArena.Used()) != want*2 {
		t.Fatalf("materialized %d words, want %d", outArena.Used(), want*2)
	}
}

func TestSplitExecutionEqualsFull(t *testing.T) {
	// Running a step split across CPU and GPU halves must produce the same
	// table as one full run — the scheduler invariant.
	r := rel.Gen{N: 8000, Seed: 5}.Build()
	cpu := device.New(device.APUCPU())
	gpu := device.New(device.APUGPU())

	build := func(split int) *Table {
		arena := alloc.New(alloc.Config{}, r.Len()*6)
		tbl := New(r.Len(), arena)
		n := r.Len()
		bucket := make([]int32, n)
		head := make([]int32, n)
		node := make([]int32, n)
		for _, step := range []func(d *device.Device, lo, hi int){
			func(d *device.Device, lo, hi int) { tbl.B1(d, r.Keys, bucket, lo, hi) },
			func(d *device.Device, lo, hi int) { tbl.B2(d, bucket, head, nil, lo, hi) },
			func(d *device.Device, lo, hi int) { tbl.B3(d, r.Keys, bucket, node, lo, hi, nil) },
			func(d *device.Device, lo, hi int) { tbl.B4(d, r.RIDs, node, lo, hi) },
		} {
			step(cpu, 0, split)
			step(gpu, split, n)
		}
		return tbl
	}

	full := build(r.Len())
	mixed := build(r.Len() / 3)
	for i := 0; i < 200; i++ {
		a := full.Lookup(r.Keys[i])
		b := mixed.Lookup(r.Keys[i])
		if len(a) != len(b) || len(a) != 1 || a[0] != b[0] {
			t.Fatalf("key %d: full %v vs mixed %v", r.Keys[i], a, b)
		}
	}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesAllPairs(t *testing.T) {
	r := rel.Gen{N: 6000, Seed: 6}.Build()
	half := r.Len() / 2
	cpu := device.New(device.APUCPU())

	mk := func(part rel.Relation) *Table {
		arena := alloc.New(alloc.Config{}, r.Len()*6)
		tbl := New(r.Len(), arena)
		buildAll(t, tbl, cpu, part)
		return tbl
	}
	a := mk(r.Slice(0, half))
	b := mk(r.Slice(half, r.Len()))
	acct := a.Merge(b)
	if acct.Items != int64(r.Len()-half) {
		t.Fatalf("merge items %d", acct.Items)
	}
	for i := 0; i < r.Len(); i += 97 {
		if got := a.Lookup(r.Keys[i]); len(got) != 1 || got[0] != r.RIDs[i] {
			t.Fatalf("after merge key %d: %v", r.Keys[i], got)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedTableRouting(t *testing.T) {
	// Keys must land in the segment given by their low hash bits and be
	// findable via LookupSeg.
	const radixBits = 4
	const parts = 1 << radixBits
	r := rel.Gen{N: 4000, Seed: 7}.Build()
	arena := alloc.New(alloc.Config{}, r.Len()*6)
	tbl := NewSeg(parts, 64, 0, radixBits, arena)
	cpu := device.New(device.APUCPU())

	n := r.Len()
	partIdx := make([]int32, n)
	for i, k := range r.Keys {
		partIdx[i] = int32(hashOf(k) & (parts - 1))
	}
	bucket := make([]int32, n)
	head := make([]int32, n)
	node := make([]int32, n)
	tbl.B1Seg(cpu, r.Keys, partIdx, bucket, 0, n)
	tbl.B2(cpu, bucket, head, nil, 0, n)
	tbl.B3(cpu, r.Keys, bucket, node, 0, n, nil)
	tbl.B4(cpu, r.RIDs, node, 0, n)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got := tbl.LookupSeg(r.Keys[i], int(partIdx[i]))
		if len(got) != 1 || got[0] != r.RIDs[i] {
			t.Fatalf("segmented lookup key %d: %v", r.Keys[i], got)
		}
	}
	// Segments should use many distinct buckets (the seg-shift fix).
	used := 0
	for _, h := range tbl.Head {
		if h != -1 {
			used++
		}
	}
	if used < tbl.NBuckets()/4 {
		t.Fatalf("only %d/%d buckets used: segment slot bits overlap radix bits", used, tbl.NBuckets())
	}
}

func TestInsertProbeOneAgreeWithBatch(t *testing.T) {
	f := func(seed int64) bool {
		g := rel.Gen{N: 300, Seed: seed}
		r := g.Build()
		s := rel.Gen{N: 300, Seed: seed + 1}.Probe(r, 0.5)
		arena := alloc.New(alloc.Config{}, 4096)
		tbl := New(r.Len(), arena)
		for i := range r.Keys {
			tbl.InsertOne(r.Keys[i], r.RIDs[i])
		}
		out := Out{}
		for i := range s.Keys {
			tbl.ProbeOne(s.Keys[i], s.RIDs[i], &out)
		}
		return out.Pairs == rel.NaiveJoinCount(r, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesResidentGrowsWithInserts(t *testing.T) {
	arena := alloc.New(alloc.Config{}, 1024)
	tbl := New(64, arena)
	before := tbl.BytesResident()
	tbl.InsertOne(1, 1)
	if tbl.BytesResident() <= before {
		t.Fatal("resident bytes did not grow")
	}
}

func hashOf(k int32) int {
	// Mirror of the partition function used by the radix partitioner.
	return int(hash.Murmur2(uint32(k), hash.Murmur2Seed))
}
