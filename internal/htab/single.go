package htab

import (
	"apujoin/internal/device"
	"apujoin/internal/hash"
)

// InsertOne performs a fused single-tuple insert (b1..b4 in one call).
// It exists for the coarse-grained step definition PHJ-PL' (paper Sec. 3.3),
// where one work item executes a whole partition pair's join, and for
// tests.
func (t *Table) InsertOne(key, rid int32) device.Acct {
	a := t.insertOne(key, rid)
	a.Items = 1
	a.Instr += hash.InstrPerHash
	a.SeqBytes += 8
	return a
}

// ProbeOne performs a fused single-tuple probe (p1..p4 in one call),
// producing matches into out.
func (t *Table) ProbeOne(key, srid int32, out *Out) device.Acct {
	var a device.Acct
	a.Items = 1
	a.Instr = hash.InstrPerHash + instrVisitHeader
	a.SeqBytes = 8
	words := t.arena.Words()
	b := t.bucketOf(key)
	a.Rand[device.RegionHashTable]++ // bucket header

	kn := t.Head[b]
	for kn != nilRef && words[kn+keyOffKey] != key {
		kn = words[kn+keyOffNext]
		a.Instr += instrListNode
		a.Rand[device.RegionHashTable]++
	}
	if kn == nilRef {
		return a
	}
	for rn := words[kn+keyOffRIDHead]; rn != nilRef; rn = words[rn+ridOffNext] {
		a.Rand[device.RegionHashTable]++
		a.Instr += instrEmitMatch
		if out.Materialize && out.Arena != nil {
			off := out.Arena.Alloc(2)
			ow := out.Arena.Words()
			ow[off] = words[rn+ridOffRID]
			ow[off+1] = srid
			a.SeqBytes += 8
		}
		out.Pairs++
	}
	return a
}
