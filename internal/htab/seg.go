package htab

import (
	"apujoin/internal/alloc"
	"apujoin/internal/device"
	"apujoin/internal/hash"
)

// Segmented tables support the partitioned hash join: after radix
// partitioning, the bucket space of one Table is divided into one segment
// per partition, so the per-partition simple hash joins of PHJ run as
// ordinary step series over the concatenation of all partitions while
// random accesses stay within the (cache-resident) segment of the tuple's
// partition. This is the cache-reuse benefit that makes the fine-grained
// PHJ beat the coarse-grained PHJ-PL' in Table 3.

// NewSeg returns a table whose bucket space is split into parts segments of
// bucketsPerPart buckets each. bucketsPerPart is rounded up to a power of
// two. radixBits is the number of low hash bits the partitioning consumed:
// the within-segment slot uses the bits above them, otherwise only
// 1/parts of each segment's buckets would ever be populated (all keys of a
// partition share their low hash bits by construction).
// hashShift is the number of still-lower bits an outer (external)
// partitioning consumed before radixBits.
func NewSeg(parts, bucketsPerPart int, hashShift, radixBits uint, arena *alloc.Arena) *Table {
	bpp := 1
	for bpp < bucketsPerPart {
		bpp *= 2
	}
	t := New(parts*bpp, arena)
	t.bucketsPerPart = bpp
	t.partShift = hashShift
	t.segShift = hashShift + radixBits
	return t
}

// BucketsPerPart returns the segment width, or 0 for a flat table.
func (t *Table) BucketsPerPart() int { return t.bucketsPerPart }

// B1Seg computes segmented bucket numbers for build tuples [lo,hi):
// bucket = partIdx[i]*bucketsPerPart + murmur(key) mod bucketsPerPart.
func (t *Table) B1Seg(d *device.Device, keys, partIdx []int32, bucket []int32, lo, hi int) device.Acct {
	var a device.Acct
	segMask := uint32(t.bucketsPerPart - 1)
	bpp := int32(t.bucketsPerPart)
	shift := t.segShift
	for i := lo; i < hi; i++ {
		h := (hash.Murmur2(uint32(keys[i]), hash.Murmur2Seed) >> shift) & segMask
		bucket[i] = partIdx[i]*bpp + int32(h)
	}
	n := int64(hi - lo)
	a.Items = n
	a.Instr = n * (hash.InstrPerHash + 3)
	a.SeqBytes = n * 12 // key, partition index, bucket number
	return a
}

// P1Seg is B1Seg for probe tuples.
func (t *Table) P1Seg(d *device.Device, keys, partIdx []int32, bucket []int32, lo, hi int) device.Acct {
	return t.B1Seg(d, keys, partIdx, bucket, lo, hi)
}

// LookupSeg returns the rids for key within partition part, the segmented
// analogue of Lookup for tests.
func (t *Table) LookupSeg(key int32, part int) []int32 {
	words := t.arena.Words()
	segMask := uint32(t.bucketsPerPart - 1)
	b := part*t.bucketsPerPart + int((hash.Murmur2(uint32(key), hash.Murmur2Seed)>>t.segShift)&segMask)
	for kn := t.Head[b]; kn != nilRef; kn = words[kn+keyOffNext] {
		if words[kn+keyOffKey] == key {
			var out []int32
			for rn := words[kn+keyOffRIDHead]; rn != nilRef; rn = words[rn+ridOffNext] {
				out = append(out, words[rn+ridOffRID])
			}
			return out
		}
	}
	return nil
}
