// Package shard owns the hash partitioner and the deterministic merge
// behind the sharded engine: relations are split once into a fixed grid of
// Partitions key-hash partitions, partitions are assigned to N in-process
// engine shards by a contiguous ownership map, and per-partition join
// results are reduced in partition order.
//
// The shard-count-invariance contract rests on the grid being fixed: the
// partition a tuple lands in depends only on its key, never on the shard
// count, so an equi-join (or a whole left-deep pipeline over the shared
// key) decomposes into Partitions independent sub-joins whose inputs — and
// therefore whose match counts and simulated times — are identical for any
// shard count. Changing the shard count moves partitions between catalogs
// and budgets; it never changes a single computed number. This is the same
// trick the worker-count contract uses (fixed morsel grids, ordered
// reduction in sched.Pool), lifted one level up.
package shard

import (
	"apujoin/internal/core"
	"apujoin/internal/hash"
	"apujoin/internal/rel"
)

// Partitions is the fixed number of hash partitions every relation is
// split into, independent of the shard count. Shard counts above it are
// clamped: a shard can own several partitions, but a partition never
// spans shards. Eight keeps per-partition relations large enough to join
// efficiently while dividing evenly among 1, 2 or 4 shards.
const Partitions = 8

// partitionSeed seeds the partitioner's Murmur2, deliberately distinct
// from hash.Murmur2Seed: the join kernels bucket and radix-partition with
// the default seed, and reusing it here would send every tuple of a
// partition into a correlated subset of hash buckets.
const partitionSeed uint32 = 0x85ebca6b

// PartitionOf returns the fixed grid partition owning key, in
// [0, Partitions).
func PartitionOf(key int32) int {
	return int(hash.Murmur2(uint32(key), partitionSeed) & (Partitions - 1))
}

// levelSeed derives the partitioner seed of one repartitioning level.
// Level 0 is the fixed grid itself. Deeper levels — the spill path's
// recursive repartitioning of an oversized partition — must hash with a
// DIFFERENT seed per level: every key of a level-d partition shares that
// level's hash slot by construction, so rehashing with the same seed would
// send the whole partition back into one sub-partition. Mixing in the
// golden-ratio constant per level decorrelates the levels while keeping
// each a fixed pure function, so spilled executions stay deterministic.
func levelSeed(level int) uint32 {
	return partitionSeed + 0x9e3779b9*uint32(level)
}

// PartitionAt returns key's partition at a repartitioning level: level 0
// is PartitionOf (the fixed grid); level d > 0 is the d-th recursive
// sub-partitioner of the spill path.
func PartitionAt(key int32, level int) int {
	return int(hash.Murmur2(uint32(key), levelSeed(level)) & (Partitions - 1))
}

// Clamp normalizes a configured shard count: values below 1 select one
// shard, values above Partitions are capped at Partitions (extra shards
// would own no partition).
func Clamp(shards int) int {
	if shards < 1 {
		return 1
	}
	if shards > Partitions {
		return Partitions
	}
	return shards
}

// Owner maps a partition to the shard owning it under a given shard
// count: partitions are assigned contiguously (shard k owns partitions
// [k*Partitions/shards, (k+1)*Partitions/shards)), so growing the shard
// count splits ownership ranges without interleaving them.
func Owner(part, shards int) int {
	return part * Clamp(shards) / Partitions
}

// OwnedBy returns the partitions shard k owns under a given shard count,
// in ascending partition order. It is the inverse view of Owner, used by
// routing tiers that group a relation's partitions by owner — the
// in-process router iterates partitions directly, while the network
// cluster tier concatenates each server's owned partitions into one
// upload.
func OwnedBy(k, shards int) []int {
	var out []int
	for p := 0; p < Partitions; p++ {
		if Owner(p, shards) == k {
			out = append(out, p)
		}
	}
	return out
}

// Split partitions a relation over the fixed grid: tuple i of r lands in
// partition PartitionOf(r.Keys[i]), keeping its original (RID, Key) pair,
// and tuples within a partition preserve their relative order in r. The
// output is a pure function of r — the shard count plays no part — and
// the returned relations' columns are freshly allocated (they do not
// alias r).
func Split(r rel.Relation) [Partitions]rel.Relation {
	return SplitAt(r, 0)
}

// SplitAt is Split at a repartitioning level: tuple i lands in partition
// PartitionAt(r.Keys[i], level). Level 0 is the fixed grid; deeper levels
// are the spill path's recursive sub-splits of one oversized partition,
// each a pure function of r exactly as Split is.
func SplitAt(r rel.Relation, level int) [Partitions]rel.Relation {
	var counts [Partitions]int
	for _, k := range r.Keys {
		counts[PartitionAt(k, level)]++
	}
	var out [Partitions]rel.Relation
	for p, n := range counts {
		if n == 0 {
			continue
		}
		out[p] = rel.Relation{RIDs: make([]int32, 0, n), Keys: make([]int32, 0, n)}
	}
	for i, k := range r.Keys {
		p := PartitionAt(k, level)
		out[p].RIDs = append(out[p].RIDs, r.RIDs[i])
		out[p].Keys = append(out[p].Keys, k)
	}
	return out
}

// MergeResults reduces per-partition join results in partition order into
// one Result: match counts, every simulated phase and total time, the cost
// model's estimates, cache and allocator activity and the zero-copy
// footprint all sum — the partitions form independent sub-joins, so their
// simulated times add exactly like a pipeline's serial steps do. Summation
// runs strictly in slice (partition) order, so the floating-point totals
// are bit-identical for any shard count and any execution interleaving.
//
// Per-partition artifacts that do not aggregate — the ratio vectors,
// per-step timings, pilot profiles and BasicUnit shares — are left zero in
// the merged result; they remain meaningful only per partition.
func MergeResults(parts []*core.Result) *core.Result {
	if len(parts) == 0 {
		return &core.Result{}
	}
	out := &core.Result{
		Algo:   parts[0].Algo,
		Scheme: parts[0].Scheme,
		Arch:   parts[0].Arch,
	}
	for _, r := range parts {
		if r == nil {
			continue
		}
		out.Matches += r.Matches
		out.PartitionNS += r.PartitionNS
		out.BuildNS += r.BuildNS
		out.ProbeNS += r.ProbeNS
		out.MergeNS += r.MergeNS
		out.TransferNS += r.TransferNS
		out.TotalNS += r.TotalNS
		out.EstimatedNS += r.EstimatedNS
		out.LockOverheadNS += r.LockOverheadNS
		out.EstPartitionNS += r.EstPartitionNS
		out.EstBuildNS += r.EstBuildNS
		out.EstProbeNS += r.EstProbeNS
		out.Cache.Accesses += r.Cache.Accesses
		out.Cache.Misses += r.Cache.Misses
		out.ZeroCopyBytes += r.ZeroCopyBytes
		out.SpilledPartitions += r.SpilledPartitions
		out.SpillBytes += r.SpillBytes
		out.SpillNS += r.SpillNS
		out.AllocStats.Allocs += r.AllocStats.Allocs
		out.AllocStats.Words += r.AllocStats.Words
		out.AllocStats.GlobalAtomics += r.AllocStats.GlobalAtomics
		out.AllocStats.LocalOps += r.AllocStats.LocalOps
		out.AllocStats.WastedWords += r.AllocStats.WastedWords
	}
	return out
}
