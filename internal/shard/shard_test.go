package shard

import (
	"reflect"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// Split must place every tuple exactly once, in its key's fixed partition,
// preserving relative order and the original (RID, Key) pairs.
func TestSplitPartitionsEveryTupleOnce(t *testing.T) {
	g := rel.Gen{N: 1 << 12, Seed: 3}
	r := g.Build()
	parts := Split(r)

	total := 0
	for p, pr := range parts {
		total += pr.Len()
		for i, k := range pr.Keys {
			if PartitionOf(k) != p {
				t.Fatalf("partition %d holds key %d owned by partition %d", p, k, PartitionOf(k))
			}
			_ = i
		}
	}
	if total != r.Len() {
		t.Fatalf("split scattered %d of %d tuples", total, r.Len())
	}

	// Reassembling by walking r and popping from each partition in order
	// must reproduce the original pairs: order within a partition is r's.
	var next [Partitions]int
	for i, k := range r.Keys {
		p := PartitionOf(k)
		j := next[p]
		if parts[p].Keys[j] != k || parts[p].RIDs[j] != r.RIDs[i] {
			t.Fatalf("tuple %d (rid %d, key %d) not preserved in partition %d slot %d",
				i, r.RIDs[i], k, p, j)
		}
		next[p]++
	}
}

// The split is a pure function of the relation: the shard count never
// appears, so two splits of the same data are deeply equal.
func TestSplitDeterministic(t *testing.T) {
	g := rel.Gen{N: 4096, Dist: rel.HighSkew, Seed: 11}
	r := g.Probe(rel.Gen{N: 4096, Seed: 10}.Build(), 0.5)
	a, b := Split(r), Split(r)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Split is not deterministic")
	}
}

func TestOwnerContiguousAndComplete(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 5, 8} {
		prev := 0
		seen := make(map[int]bool)
		for p := 0; p < Partitions; p++ {
			o := Owner(p, shards)
			if o < 0 || o >= shards {
				t.Fatalf("Owner(%d, %d) = %d out of range", p, shards, o)
			}
			if o < prev {
				t.Fatalf("Owner(%d, %d) = %d is not monotone (prev %d)", p, shards, o, prev)
			}
			prev = o
			seen[o] = true
		}
		if len(seen) != shards {
			t.Fatalf("shards=%d: only %d shards own a partition", shards, len(seen))
		}
	}
}

func TestClamp(t *testing.T) {
	for _, tc := range [][2]int{{-1, 1}, {0, 1}, {1, 1}, {4, 4}, {Partitions, Partitions}, {Partitions + 5, Partitions}} {
		if got := Clamp(tc[0]); got != tc[1] {
			t.Fatalf("Clamp(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

// MergeResults sums in slice order: merging [a, b] must equal merging
// [a, b] again bit for bit, and the totals must be the ordered sums.
func TestMergeResultsOrderedSums(t *testing.T) {
	a := &core.Result{Matches: 3, TotalNS: 1.25, EstimatedNS: 1}
	a.BuildNS, a.ProbeNS = 0.5, 0.75
	a.Cache.Accesses, a.Cache.Misses = 10, 2
	a.ZeroCopyBytes = 64
	b := &core.Result{Matches: 4, TotalNS: 2.5, EstimatedNS: 2}
	b.BuildNS, b.ProbeNS = 1.5, 1.0
	b.Cache.Accesses, b.Cache.Misses = 20, 5
	b.ZeroCopyBytes = 128

	m := MergeResults([]*core.Result{a, b, nil})
	if m.Matches != 7 || m.TotalNS != 3.75 || m.BuildNS != 2.0 || m.ProbeNS != 1.75 {
		t.Fatalf("bad merge: %+v", m)
	}
	if m.Cache.Accesses != 30 || m.Cache.Misses != 7 || m.ZeroCopyBytes != 192 {
		t.Fatalf("bad counter merge: %+v", m)
	}
	again := MergeResults([]*core.Result{a, b, nil})
	if !reflect.DeepEqual(m, again) {
		t.Fatal("MergeResults is not deterministic")
	}
	if empty := MergeResults(nil); empty.Matches != 0 {
		t.Fatalf("empty merge: %+v", empty)
	}
}

// Per-partition counts over a split must reproduce the whole join's count:
// equi-join matches never cross partitions.
func TestSplitPreservesJoinCount(t *testing.T) {
	bg := rel.Gen{N: 1 << 12, Seed: 21}
	r := bg.Build()
	s := rel.Gen{N: 1 << 13, Dist: rel.LowSkew, Seed: 22}.Probe(r, 0.75)
	want := rel.NaiveJoinCount(r, s)

	rp, sp := Split(r), Split(s)
	var got int64
	for p := 0; p < Partitions; p++ {
		got += rel.NaiveJoinCount(rp[p], sp[p])
	}
	if got != want {
		t.Fatalf("per-partition join count %d != whole-relation count %d", got, want)
	}
}

// SplitAt at every repartitioning level the spill path can reach must
// place every tuple exactly once in its key's level partition, be a pure
// function of the relation, and agree with Split at level 0.
func TestSplitAtLevelsPartitionEveryTupleOnce(t *testing.T) {
	g := rel.Gen{N: 1 << 12, Dist: rel.LowSkew, Seed: 21}
	r := g.Build()
	if a, b := Split(r), SplitAt(r, 0); !reflect.DeepEqual(a, b) {
		t.Fatal("SplitAt(r, 0) differs from Split(r)")
	}
	for level := 0; level <= 3; level++ {
		parts := SplitAt(r, level)
		total := 0
		for p, pr := range parts {
			total += pr.Len()
			for _, k := range pr.Keys {
				if PartitionAt(k, level) != p {
					t.Fatalf("level %d partition %d holds key %d owned by %d",
						level, p, k, PartitionAt(k, level))
				}
			}
		}
		if total != r.Len() {
			t.Fatalf("level %d split scattered %d of %d tuples", level, total, r.Len())
		}
		if again := SplitAt(r, level); !reflect.DeepEqual(parts, again) {
			t.Fatalf("SplitAt at level %d is not deterministic", level)
		}
	}
}

// TestSplitAtDecorrelatedSeeds is the property the spill path's recursion
// rests on: every key of a level-0 partition shares that level's hash
// slot, so re-splitting it at level 0 lands everything back in one
// sub-partition — while level 1, hashing with a decorrelated seed,
// actually subdivides it.
func TestSplitAtDecorrelatedSeeds(t *testing.T) {
	r := rel.Gen{N: 1 << 13, Seed: 22}.Build()
	for p, part := range Split(r) {
		if part.Len() < Partitions {
			continue
		}
		nonEmpty := func(parts [Partitions]rel.Relation) int {
			n := 0
			for _, pr := range parts {
				if pr.Len() > 0 {
					n++
				}
			}
			return n
		}
		if got := nonEmpty(SplitAt(part, 0)); got != 1 {
			t.Errorf("partition %d re-split at level 0 spans %d partitions, want the degenerate 1", p, got)
		}
		if got := nonEmpty(SplitAt(part, 1)); got < 2 {
			t.Errorf("partition %d split at level 1 spans %d partitions, want a real subdivision", p, got)
		}
	}
}

// TestSplitAtPreservesJoinCount: a join decomposed over any repartitioning
// level sums to the undecomposed count — the equi-join distributes over
// key-disjoint partitions at every level, which is what lets an oversized
// partition recurse without changing a single match.
func TestSplitAtPreservesJoinCount(t *testing.T) {
	build := rel.Gen{N: 3000, Dist: rel.HighSkew, Seed: 23}.Build()
	probe := rel.Gen{N: 4000, Dist: rel.LowSkew, Seed: 24}.Probe(build, 0.7)
	want := rel.NaiveJoinCount(build, probe)
	for level := 0; level <= 3; level++ {
		bp, pp := SplitAt(build, level), SplitAt(probe, level)
		var got int64
		for p := 0; p < Partitions; p++ {
			got += rel.NaiveJoinCount(bp[p], pp[p])
		}
		if got != want {
			t.Errorf("level %d decomposed join counts %d, undecomposed %d", level, got, want)
		}
	}
}
