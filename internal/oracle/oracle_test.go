package oracle

import (
	"reflect"
	"testing"

	"apujoin/internal/rel"
)

func TestJoinCountAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := rel.Gen{N: 500, Seed: seed}.Build()
		s := rel.Gen{N: 700, Dist: rel.HighSkew, Seed: seed + 10}.Probe(r, 0.5)
		if got, want := JoinCount(r, s), rel.NaiveJoinCount(r, s); got != want {
			t.Errorf("seed %d: JoinCount %d != NaiveJoinCount %d", seed, got, want)
		}
	}
}

// TestJoinReferenceOrder pins the canonical intermediate order on a
// hand-checkable example with duplicate build keys.
func TestJoinReferenceOrder(t *testing.T) {
	r := rel.Relation{RIDs: []int32{0, 1, 2}, Keys: []int32{7, 5, 7}}
	s := rel.Relation{RIDs: []int32{0, 1, 2, 3}, Keys: []int32{5, 9, 7, 5}}
	got := Join(r, s)
	want := rel.Relation{RIDs: []int32{0, 1, 2, 3}, Keys: []int32{5, 7, 7, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Join = %+v, want %+v", got, want)
	}
	if int64(got.Len()) != JoinCount(r, s) {
		t.Errorf("Join len %d != JoinCount %d", got.Len(), JoinCount(r, s))
	}
}

// TestMaterializeMatchesOracle: the engine's intermediate materialization
// equals the independently written reference, tuple for tuple.
func TestMaterializeMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := rel.Gen{N: 300, Seed: seed}.Build()
		s := rel.Gen{N: 450, Dist: rel.LowSkew, Seed: seed + 20}.Probe(r, 0.7)
		got, want := rel.JoinMaterialize(r, s), Join(r, s)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: JoinMaterialize diverges from the oracle join", seed)
		}
	}
	// Duplicate build keys multiply output tuples.
	r := rel.Relation{RIDs: []int32{0, 1, 2}, Keys: []int32{4, 4, 9}}
	s := rel.Relation{RIDs: []int32{0, 1}, Keys: []int32{4, 9}}
	if got, want := rel.JoinMaterialize(r, s), Join(r, s); !reflect.DeepEqual(got, want) {
		t.Errorf("duplicate-key JoinMaterialize = %+v, want %+v", got, want)
	}
}

func TestPipelineCount(t *testing.T) {
	a := rel.Relation{Keys: []int32{1, 2, 3}}
	b := rel.Relation{Keys: []int32{2, 2, 3, 5}}
	c := rel.Relation{Keys: []int32{2, 3, 3, 3}}
	// key 2: 1·2·1 = 2; key 3: 1·1·3 = 3.
	if got := PipelineCount([]rel.Relation{a, b, c}); got != 5 {
		t.Errorf("PipelineCount = %d, want 5", got)
	}
	// Order independence.
	if got := PipelineCount([]rel.Relation{c, a, b}); got != 5 {
		t.Errorf("reordered PipelineCount = %d, want 5", got)
	}
	// Degenerate forms.
	if got := PipelineCount(nil); got != 0 {
		t.Errorf("empty PipelineCount = %d, want 0", got)
	}
	if got := PipelineCount([]rel.Relation{a, b}); got != rel.NaiveJoinCount(a, b) {
		t.Errorf("pairwise PipelineCount = %d, want %d", got, rel.NaiveJoinCount(a, b))
	}
	// Chaining the pairwise oracle through materialized intermediates must
	// agree with the closed form.
	inter := Join(a, b)
	if got := JoinCount(inter, c); got != 5 {
		t.Errorf("chained oracle count = %d, want 5", got)
	}
}
