// Package oracle is the brute-force reference the randomized tests compare
// the engine against. Every function here is written for obviousness, not
// speed — nested loops and plain maps, sharing no code with the join
// kernels, the planner or the materialization path it checks — so a bug in
// the engine cannot cancel out against the same bug in its oracle. The
// fuzz harness (FuzzJoinAgainstOracle in the root package) generates small
// relations across the skew/selectivity space and asserts every algorithm ×
// scheme combination, and every multi-way pipeline, agrees with these
// functions exactly.
package oracle

import "apujoin/internal/rel"

// JoinCount returns |R ⋈ S| on the key columns by exhaustive comparison.
func JoinCount(r, s rel.Relation) int64 {
	var total int64
	for _, sk := range s.Keys {
		for _, rk := range r.Keys {
			if rk == sk {
				total++
			}
		}
	}
	return total
}

// Join materializes R ⋈ S by exhaustive comparison, in the canonical
// intermediate order (probe order, a probe tuple's matches in build order,
// dense RIDs) — the reference for rel.JoinMaterialize.
func Join(r, s rel.Relation) rel.Relation {
	var out rel.Relation
	for _, sk := range s.Keys {
		for _, rk := range r.Keys {
			if rk == sk {
				out.RIDs = append(out.RIDs, int32(len(out.RIDs)))
				out.Keys = append(out.Keys, sk)
			}
		}
	}
	return out
}

// PipelineCount returns the cardinality of the multi-way equi-join
// R1 ⋈ R2 ⋈ ... ⋈ Rn on the shared key attribute: Σ_k Π_i count_i(k).
// The count is order-independent — the same for every join order a
// pipeline might choose — which is exactly what makes it an oracle for
// the cost-based orderer: reordering may change every simulated time but
// never this number.
func PipelineCount(rels []rel.Relation) int64 {
	if len(rels) == 0 {
		return 0
	}
	prod := make(map[int32]int64, rels[0].Len())
	for _, k := range rels[0].Keys {
		prod[k]++
	}
	for _, r := range rels[1:] {
		counts := make(map[int32]int64, r.Len())
		for _, k := range r.Keys {
			counts[k]++
		}
		for k, p := range prod {
			if c := counts[k]; c > 0 {
				prod[k] = p * c
			} else {
				delete(prod, k)
			}
		}
	}
	var total int64
	for _, p := range prod {
		total += p
	}
	return total
}
