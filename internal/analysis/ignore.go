package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Ignore is one parsed suppression pragma:
//
//	//apulint:ignore <analyzer>(<reason>)
//
// A pragma suppresses diagnostics of the named analyzer on its own line
// (trailing-comment form) and on the line directly below it (standalone-
// comment form) — so it is written either at the end of the offending
// line or on its own line immediately above. The reason is mandatory
// prose explaining why the flagged construct is nevertheless correct; the
// driver fails bare pragmas, unknown analyzer names, and pragmas that no
// longer suppress anything, so every in-tree exception stays justified
// and enumerable via `apulint -list-ignores`.
type Ignore struct {
	Pos      token.Position
	Analyzer string
	Reason   string // empty means the pragma is bare (an error)
	used     bool
}

// covers reports whether the pragma's scope includes the given line.
func (ig *Ignore) covers(line int) bool {
	return line == ig.Pos.Line || line == ig.Pos.Line+1
}

// pragmaRE matches the pragma inside a //-comment's text. The reason
// group is what the parentheses wrap; a pragma with no parentheses, or
// empty ones, is bare.
var pragmaRE = regexp.MustCompile(`^apulint:ignore\s+([A-Za-z0-9_-]+)\s*(?:\((.*)\))?\s*$`)

// parseIgnores extracts every pragma in a file. Only //-style comments
// are considered, and the pragma must be the comment's entire content
// (fixture files may append an analysistest-style "// want ..."
// expectation, which is stripped before matching).
func parseIgnores(fset *token.FileSet, file *ast.File) []*Ignore {
	var out []*Ignore
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//") {
				continue // block comments cannot carry pragmas
			}
			text := strings.TrimPrefix(c.Text, "//")
			if i := strings.Index(text, "// want"); i >= 0 {
				text = strings.TrimSpace(text[:i])
			}
			m := pragmaRE.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			out = append(out, &Ignore{
				Pos:      fset.Position(c.Pos()),
				Analyzer: m[1],
				Reason:   strings.TrimSpace(m[2]),
			})
		}
	}
	return out
}
