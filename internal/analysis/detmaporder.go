package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMapOrder enforces the deterministic-iteration contract in
// result-producing packages: `for range` over a map is flagged unless the
// loop is one of two provably order-insensitive shapes —
//
//  1. collect-then-sort: the body only appends to one slice, and a later
//     statement in the same block sorts that slice before the function
//     returns it anywhere;
//  2. integer accumulation: the body only increments/adds into integer
//     variables (integer addition is exactly commutative; floats are not,
//     which is floatsum's business).
//
// Anything else must be restructured over sorted keys or carry an
// //apulint:ignore detmaporder(reason) pragma. This is the compile-time
// face of TestWorkersInvariance/TestShardInvariance: map iteration order
// is randomized per run, so any map-ordered effect that reaches a result
// or the wire breaks bit-identity across runs, workers, and shards.
var DetMapOrder = &Analyzer{
	Name: "detmaporder",
	Doc: "flag map iteration in result-producing packages unless the loop is " +
		"a collect-then-sort or integer-counting shape",
	Run: runDetMapOrder,
}

func runDetMapOrder(pass *Pass) error {
	if !inScope(resultProducing, pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Statement lists live in blocks and in switch/select clause
			// bodies; a range loop can head any of them.
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rng) {
					continue
				}
				if isCounterLoop(pass, rng.Body) {
					continue
				}
				if collected, target := isCollectLoop(rng.Body); collected && sortedLater(pass, list[i+1:], target) {
					continue
				}
				pass.Reportf(rng.Pos(), "map iteration order is randomized: restructure over sorted keys (collect + sort) or justify with //apulint:ignore detmaporder(reason)")
			}
			return true
		})
	}
	return nil
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isCounterLoop reports whether every statement in the body is an
// integer increment/accumulation (n++, n--, n += expr with an integer
// target) — order-insensitive because integer addition commutes exactly.
func isCounterLoop(pass *Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if (s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN) || len(s.Lhs) != 1 {
				return false
			}
			if !isIntegerExpr(pass, s.Lhs[0]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isCollectLoop reports whether every statement in the body is
// `x = append(x, ...)` for one identifier x, returning that identifier.
func isCollectLoop(body *ast.BlockStmt) (bool, *ast.Ident) {
	var target *ast.Ident
	if len(body.List) == 0 {
		return false, nil
	}
	for _, stmt := range body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return false, nil
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return false, nil
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false, nil
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false, nil
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return false, nil
		}
		if target != nil && target.Name != lhs.Name {
			return false, nil
		}
		target = lhs
	}
	return true, target
}

// sortedLater reports whether a statement after the loop (in the same
// block) sorts the collected slice: a call to sort.Slice/SliceStable/
// Sort/Strings/Ints/Float64s or slices.Sort/SortFunc/SortStableFunc whose
// first argument is the target identifier.
func sortedLater(pass *Pass, rest []ast.Stmt, target *ast.Ident) bool {
	if target == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isSortCall(pass, call.Fun) {
				return true
			}
			arg, ok := call.Args[0].(*ast.Ident)
			if ok && (pass.TypesInfo.Uses[arg] == obj || arg.Name == target.Name) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

var sortFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func isSortCall(pass *Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
	if !ok {
		return false
	}
	names, ok := sortFuncs[pkgName.Imported().Path()]
	return ok && names[sel.Sel.Name]
}
