package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the stream. -export makes the go tool compile (or reuse from the
// build cache) every package and report its export-data file, which is how
// the type checker resolves imports without any network or module
// downloads.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the export files
// go list reported.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// typeCheck parses and type-checks one listed package against the export
// index. Only non-test files are analyzed: GoFiles is exactly the compiled
// production source, which is where the determinism contracts bind (tests
// legitimately spawn goroutines, read wall clocks, and iterate maps).
func typeCheck(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}, nil
}

// Load type-checks every package of the module rooted at dir matched by
// patterns (plus nothing else: dependencies contribute export data only).
// The returned slice is sorted by import path so analysis output is
// deterministic.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var module []listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			module = append(module, p)
		}
	}
	if len(module) == 0 {
		return nil, fmt.Errorf("no module packages matched %v under %s", patterns, dir)
	}
	sort.Slice(module, func(i, j int) bool { return module[i].ImportPath < module[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	pkgs := make([]*Package, 0, len(module))
	for _, lp := range module {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixture type-checks a single directory of Go files that is not part
// of the module build (an analysistest-style fixture under testdata),
// pretending it lives at import path asPath so path-scoped analyzers
// treat it as the package under test. Imports are resolved the same way
// Load resolves them: `go list -export` run from moduleDir supplies the
// export data for whatever the fixture imports.
func LoadFixture(moduleDir, fixtureDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	// First pass with a throwaway FileSet: collect the import set so the
	// export data can be resolved before the real type-checking parse.
	scanFset := token.NewFileSet()
	imported := make(map[string]bool)
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(fixtureDir, e.Name())
		f, err := parser.ParseFile(scanFset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		names = append(names, e.Name())
		for _, imp := range f.Imports {
			imported[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", fixtureDir)
	}
	exports := make(map[string]string)
	if len(imported) > 0 {
		patterns := make([]string, 0, len(imported))
		for p := range imported {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	pkg, err := typeCheck(fset, imp, listedPackage{
		ImportPath: asPath,
		Dir:        fixtureDir,
		GoFiles:    names,
	})
	if err != nil {
		return nil, err
	}
	return pkg, nil
}
