package analysis

import (
	"strings"
	"testing"
)

// TestTreeIsClean runs the full analyzer suite over the real module —
// the same sweep `apulint ./...` and the CI lint job perform — and
// requires zero findings. This is the contract the suite exists for:
// a violation anywhere in production code fails `go test ./...`, not
// just the lint job.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}

	// Every in-tree suppression must carry a reason (bare pragmas are
	// findings above, but assert the audit surface directly too) and
	// name a real analyzer.
	igs := ListIgnores(pkgs)
	for _, ig := range igs {
		if strings.TrimSpace(ig.Reason) == "" {
			t.Errorf("%s:%d: bare suppression pragma", ig.Pos.Filename, ig.Pos.Line)
		}
		if _, ok := ByName(ig.Analyzer); !ok {
			t.Errorf("%s:%d: pragma names unknown analyzer %q", ig.Pos.Filename, ig.Pos.Line, ig.Analyzer)
		}
	}
	t.Logf("tree clean; %d justified suppression(s)", len(igs))
}

// TestLoadModulePackages pins the loader's view of the module: the
// packages the determinism contracts bind to must be present and
// type-checked.
func TestLoadModulePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is not short")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
		if p.Pkg == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: incomplete package", p.Path)
		}
	}
	for _, path := range resultProducing {
		if !seen[path] {
			t.Errorf("result-producing package %s not loaded", path)
		}
	}
	for _, path := range []string{"apujoin/internal/sched", "apujoin/internal/httpapi", "apujoin/cmd/apulint"} {
		if !seen[path] {
			t.Errorf("package %s not loaded", path)
		}
	}
}
