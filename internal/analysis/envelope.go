package analysis

import (
	"go/ast"
	"go/types"
)

// Envelope enforces the unified JSON envelope inside internal/httpapi:
// every byte a handler puts on the wire must flow through the envelope
// writers (writeResult / writeError, and their shared writeJSON core).
// Outside those three functions the analyzer flags http.Error /
// http.NotFound / http.Redirect / http.ServeFile / http.ServeContent,
// json.NewEncoder over a ResponseWriter, and direct
// ResponseWriter.Write / WriteHeader calls. The contract is wire-level:
// clients match on {"result":...} / {"error":{code,message}}, and a
// single http.Error slipped into a new handler ships a bare text/plain
// body that breaks them — cheaper to refuse at compile time than to
// notice in an integration test.
var Envelope = &Analyzer{
	Name: "envelope",
	Doc: "flag HTTP response writes in internal/httpapi that bypass the " +
		"writeResult/writeError envelope helpers",
	Run: runEnvelope,
}

// envelopeWriters are the functions allowed to touch the ResponseWriter
// directly — the envelope implementation itself.
var envelopeWriters = map[string]bool{
	"writeJSON": true, "writeResult": true, "writeError": true,
}

// rawHTTPHelpers are net/http package functions that write a
// non-envelope response body or status.
var rawHTTPHelpers = map[string]bool{
	"Error": true, "NotFound": true, "Redirect": true,
	"ServeFile": true, "ServeContent": true,
}

func runEnvelope(pass *Pass) error {
	if !inScope(envelopeScope, pass.Path) {
		return nil
	}
	respWriter := responseWriterType(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv == nil && envelopeWriters[fn.Name.Name] {
				continue // the envelope implementation itself
			}
			checkEnvelopeBody(pass, fn.Body, respWriter)
		}
	}
	return nil
}

// responseWriterType resolves net/http.ResponseWriter from the package's
// imports; nil when the package does not import net/http (then only the
// selector-based checks apply).
func responseWriterType(pass *Pass) *types.Interface {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "net/http" {
			if obj := imp.Scope().Lookup("ResponseWriter"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
	}
	return nil
}

func checkEnvelopeBody(pass *Pass, body *ast.BlockStmt, respWriter *types.Interface) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Package-level helpers: http.Error etc., json.NewEncoder(w).
		if pkgIdent, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName); ok {
				switch pkgName.Imported().Path() {
				case "net/http":
					if rawHTTPHelpers[sel.Sel.Name] {
						pass.Reportf(call.Pos(), "http.%s bypasses the JSON envelope: respond through writeResult/writeError", sel.Sel.Name)
					}
				case "encoding/json":
					if sel.Sel.Name == "NewEncoder" && len(call.Args) == 1 && implementsResponseWriter(pass, call.Args[0], respWriter) {
						pass.Reportf(call.Pos(), "json.NewEncoder over a ResponseWriter bypasses the envelope: respond through writeResult/writeError")
					}
				}
				return true
			}
		}
		// Method calls on a ResponseWriter: w.Write / w.WriteHeader.
		if sel.Sel.Name == "Write" || sel.Sel.Name == "WriteHeader" {
			if implementsResponseWriter(pass, sel.X, respWriter) {
				pass.Reportf(call.Pos(), "direct ResponseWriter.%s bypasses the envelope: respond through writeResult/writeError", sel.Sel.Name)
			}
		}
		return true
	})
}

// implementsResponseWriter reports whether e's static type satisfies
// net/http.ResponseWriter.
func implementsResponseWriter(pass *Pass, e ast.Expr, respWriter *types.Interface) bool {
	if respWriter == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, respWriter)
}
