// Package selfcheck is a deliberately mis-annotated fixture used by
// TestCheckFixtureReportsMismatches to prove the expectation harness is
// non-vacuous: the go statement below has no want clause (an unexpected
// finding) and the want clause below sits on a clean line (an unmet
// expectation). Do not "fix" the annotations — their wrongness is the
// point.
package selfcheck

func spawn(f func()) {
	go f()
}

func clean() {} // want "this never fires"
