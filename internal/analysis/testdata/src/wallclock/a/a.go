// Fixture for the wallclock analyzer: wall-clock reads and global
// math/rand use are flagged in the simulated-time core; injected-seed
// randomness and time arithmetic are not.
package core

import (
	"math/rand"
	"time"
)

func now() int64 {
	return time.Now().UnixNano() // want `time.Now in the simulated-time core`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in the simulated-time core`
}

func until(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time.Until in the simulated-time core`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn in the simulated-time core`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle in the simulated-time core`
}

// The injected-seed constructors and everything hanging off a *rand.Rand
// are deterministic and allowed.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func zipf(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 2, 1, 100)
	return z.Uint64()
}

// Duration arithmetic never reads the clock.
func scale(d time.Duration) time.Duration {
	return 3 * d / time.Millisecond * time.Millisecond
}

// Reporting metadata may read the wall clock with a justification.
func stamped() time.Time {
	//apulint:ignore wallclock(fixture: registration timestamp surfaced as metadata only)
	return time.Now()
}
