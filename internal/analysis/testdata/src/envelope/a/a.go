// Fixture for the envelope analyzer: inside internal/httpapi every
// response must flow through the envelope writers; the writers themselves
// are the only functions allowed to touch the ResponseWriter.
package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
)

// The envelope implementation is allowlisted by name.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeResult(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, map[string]any{"result": v})
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": map[string]any{"message": err.Error()}})
}

// Handlers that respond through the envelope are clean.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeResult(w, http.StatusOK, map[string]int{"n": 1})
}

// Reading or setting headers is not writing a response.
func headerOK(w http.ResponseWriter) {
	w.Header().Set("X-Request-ID", "42")
}

func badError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error bypasses the JSON envelope`
}

func badNotFound(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want `http.NotFound bypasses the JSON envelope`
}

func badEncoder(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode("x") // want `json.NewEncoder over a ResponseWriter bypasses the envelope`
}

func badWrite(w http.ResponseWriter) {
	_, _ = w.Write([]byte("raw")) // want `direct ResponseWriter.Write bypasses the envelope`
}

func badWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent) // want `direct ResponseWriter.WriteHeader bypasses the envelope`
}

// Encoding to something that is not a ResponseWriter is fine.
func encodeElsewhere(v any) ([]byte, error) {
	return json.Marshal(v)
}

// A justified pragma suppresses (e.g. a streaming endpoint that cannot
// buffer an envelope).
func justifiedStream(w http.ResponseWriter) {
	//apulint:ignore envelope(fixture: streaming endpoint, envelope documented out-of-band)
	_, _ = w.Write([]byte("chunk"))
}
