// Fixture for the detmaporder analyzer: loaded at a result-producing
// import path. Lines annotated `// want` must be flagged; everything else
// must pass.
package core

import (
	"slices"
	"sort"
)

func plain(m map[string]int) {
	for k := range m { // want `map iteration order is randomized`
		_ = k
	}
}

// The canonical collect-then-sort shape is order-insensitive and allowed.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Collecting without a later sort leaks map order into the result.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

// sort.Slice and slices.Sort count as sorting the collected slice.
func collectSortSlice(m map[string]int) []string {
	keys := []string{}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectSlicesSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

// Integer counting commutes exactly and is allowed.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// A justified pragma (standalone form, line above) suppresses cleanly.
func justified(m map[string]int) {
	//apulint:ignore detmaporder(fixture: deletes a key set, surviving contents are order-independent)
	for k := range m {
		delete(m, k)
	}
}

// Trailing-comment pragma form suppresses its own line.
func justifiedTrailing(m map[string]int) {
	for k := range m { //apulint:ignore detmaporder(fixture: deletes a key set, surviving contents are order-independent)
		delete(m, k)
	}
}

// Range statements heading a switch-case body are still seen.
func inSwitch(m map[string]int, mode int) {
	switch mode {
	case 1:
		for k := range m { // want `map iteration order is randomized`
			_ = k
		}
	}
}

// Slice iteration is ordered and never flagged.
func sliceLoop(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
