// Fixture for the driver's pragma hygiene: bare pragmas, stale pragmas,
// and pragmas naming unknown analyzers are findings in their own right,
// and a bare pragma does not actually suppress.
package core

func bare(m map[string]int) {
	//apulint:ignore detmaporder // want `bare apulint:ignore detmaporder pragma`
	for k := range m { // want `map iteration order is randomized`
		_ = k
	}
}

func stale(xs []int) {
	//apulint:ignore detmaporder(slice iteration is ordered, nothing here to suppress) // want `stale apulint:ignore detmaporder pragma`
	for _, x := range xs {
		_ = x
	}
}

func unknown(m map[string]int) {
	//apulint:ignore nosuchcheck(reason present but analyzer does not exist) // want `unknown analyzer "nosuchcheck"`
	for k := range m { // want `map iteration order is randomized`
		_ = k
	}
}
