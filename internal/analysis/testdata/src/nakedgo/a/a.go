// Fixture for the nakedgo analyzer, loaded at a path outside the
// sched/cluster/cmd allowlist.
package core

func spawn(f func()) {
	go f() // want `bare go statement outside sched/cluster/cmd`
}

func spawnClosure(done chan struct{}) {
	go func() { // want `bare go statement outside sched/cluster/cmd`
		close(done)
	}()
}

// A justified pragma suppresses.
func justified(f func(), done chan struct{}) {
	//apulint:ignore nakedgo(fixture: joined by the channel receive on the next line)
	go func() { f(); close(done) }()
	<-done
}

// Calling a function is not spawning one.
func call(f func()) {
	f()
}
