// Scope fixture: one bare go statement, no pragma, no want annotations.
// Loaded at an allowed path (internal/sched, internal/cluster, cmd/...)
// it must produce zero findings; loaded anywhere else, exactly one.
package scope

func spawn(f func()) {
	go f()
}
