// Fixture for the floatsum analyzer: floating-point accumulation inside
// map-iteration order is flagged; integer accumulation, per-iteration
// locals, and ordered (slice) reductions are not.
package core

func sumFloat(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation in map-iteration order`
	}
	return total
}

func sumFloatExplicit(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation in map-iteration order`
	}
	return total
}

func productFloat(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point accumulation in map-iteration order`
	}
	return p
}

// Integer addition commutes exactly: not flagged (and detmaporder
// whitelists the loop shape).
func sumInt(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// A float declared inside the body resets every iteration and cannot
// carry a cross-iteration, order-dependent sum.
func perIteration(m map[string]float64) float64 {
	last := 0.0
	for _, v := range m {
		x := 0.0
		x += v
		last = x
	}
	return last
}

// Accumulating through an ordered inner loop is still map-ordered when
// the outer loop ranges a map.
func nested(m map[string][]float64) float64 {
	var total float64
	for _, vs := range m {
		for _, v := range vs {
			total += v // want `floating-point accumulation in map-iteration order`
		}
	}
	return total
}

// Field targets accumulate across iterations too.
type acc struct{ S float64 }

func fieldTarget(m map[string]float64, a *acc) {
	for _, v := range m {
		a.S += v // want `floating-point accumulation in map-iteration order`
	}
}

// Ordered reduction over a slice is the sanctioned shape.
func sliceSum(xs []float64) float64 {
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

// A justified pragma suppresses (reasons are mandatory; bare ones fail).
func justified(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v //apulint:ignore floatsum(fixture: tolerance analysis only, result never compared bit-for-bit)
	}
	return t
}
