package analysis

import "strings"

// modulePath anchors the package-path scopes below. Fixtures under
// testdata are loaded with pretend paths inside this module so the
// analyzers treat them exactly like the real packages they stand in for.
const modulePath = "apujoin"

// resultProducing is the set of packages whose outputs reach query
// results or the wire, where iteration order is part of the determinism
// contract (results and simulated times bit-identical for any
// worker/shard count). detmaporder and floatsum bind here.
var resultProducing = []string{
	modulePath + "/internal/core",
	modulePath + "/internal/rel",
	modulePath + "/internal/shard",
	modulePath + "/internal/plan",
	modulePath + "/internal/catalog",
	modulePath + "/internal/service",
	modulePath + "/internal/httpapi",
}

// simulatedTime is the set of packages that compute under the simulated
// clock (Acct) with injected seeds, where a wall-clock or global-rand
// read silently breaks reproducibility. wallclock binds here.
var simulatedTime = []string{
	modulePath + "/internal/core",
	modulePath + "/internal/htab",
	modulePath + "/internal/sched",
	modulePath + "/internal/alloc",
	modulePath + "/internal/radix",
	modulePath + "/internal/hash",
	modulePath + "/internal/mem",
	modulePath + "/internal/cost",
	modulePath + "/internal/rel",
	modulePath + "/internal/shard",
	modulePath + "/internal/plan",
	modulePath + "/internal/catalog",
}

// goAllowed is where bare go statements are legitimate: the scheduler
// (which is the sanctioned concurrency layer), the cluster transport, and
// binaries' own serving loops. nakedgo flags everything else.
var goAllowed = []string{
	modulePath + "/internal/sched",
	modulePath + "/internal/cluster",
	modulePath + "/cmd/",
}

// envelopeScope is where the unified JSON envelope is law.
var envelopeScope = []string{
	modulePath + "/internal/httpapi",
}

// inScope reports whether path is covered by the scope list. An entry
// with a trailing slash is a prefix (a package subtree); anything else
// matches exactly.
func inScope(scope []string, path string) bool {
	for _, s := range scope {
		if strings.HasSuffix(s, "/") {
			if strings.HasPrefix(path, s) {
				return true
			}
		} else if path == s {
			return true
		}
	}
	return false
}
