package analysis

import "go/ast"

// NakedGo enforces pool-routed parallelism: a bare `go` statement is
// flagged everywhere except internal/sched (the sanctioned concurrency
// layer — worker-count invariance is provable exactly because all
// parallel work flows through sched.Pool's deterministic partitioning),
// internal/cluster (the network transport's health loops and fan-out),
// and cmd/ binaries (serving loops and signal handlers). A goroutine
// spawned anywhere else either duplicates the pool badly (unbounded, no
// morsel accounting, no cancellation) or races the determinism contract;
// if one is genuinely needed, it must say why with
// //apulint:ignore nakedgo(reason).
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "flag bare go statements outside internal/sched, internal/cluster, and cmd/",
	Run:  runNakedGo,
}

func runNakedGo(pass *Pass) error {
	if inScope(goAllowed, pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare go statement outside sched/cluster/cmd: route parallelism through sched.Pool so worker-count invariance stays provable")
			}
			return true
		})
	}
	return nil
}
