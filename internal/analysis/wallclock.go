package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock keeps the simulated-time core deterministic: inside the
// packages that compute under the simulated clock (core, htab, sched,
// alloc, radix, hash, mem, cost, rel, shard, plan, catalog), any
// reference to time.Now/Since/Until or to math/rand's global-state
// convenience functions is flagged. Simulated results must be a pure
// function of inputs and injected seeds — rand.New(rand.NewSource(seed))
// and friends are fine, the process-global generator and the wall clock
// are not. Wall-time reads that are genuinely reporting metadata (never
// entering a simulated quantity) carry an
// //apulint:ignore wallclock(reason) pragma.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag wall-clock reads and global math/rand use in the simulated-time core",
	Run:  runWallClock,
}

// wallclockTime is the set of time-package functions that read the wall
// clock.
var wallclockTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors are the math/rand names that take explicit
// seeds/sources and therefore stay deterministic. Everything else
// exported from math/rand reads or seeds process-global state.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// v2 additions; harmless to allow for v1 too.
	"NewPCG": true, "NewChaCha8": true,
}

func runWallClock(pass *Pass) error {
	if !inScope(simulatedTime, pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if wallclockTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s in the simulated-time core: results must be a pure function of inputs and seeds — use the simulated clock (Acct), or justify reporting metadata with //apulint:ignore wallclock(reason)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				// Only package-level functions touch the global
				// generator; type names (rand.Rand, rand.Zipf) and the
				// seeded constructors are deterministic.
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc && !seededConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "global math/rand.%s in the simulated-time core: use rand.New(rand.NewSource(seed)) with an injected seed", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
