package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) []*Ignore {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return parseIgnores(fset, f)
}

func TestParseIgnores(t *testing.T) {
	src := `package p

//apulint:ignore detmaporder(keys deleted, order-insensitive)
var a int

var b int //apulint:ignore wallclock(trailing form)

//apulint:ignore nakedgo
var c int

// Not pragmas:
// apulint:ignore spaced out (leading space before the directive)
//apulint:ignoretypo detmaporder(x)
var d int
`
	igs := parseOne(t, src)
	if len(igs) != 3 {
		t.Fatalf("want 3 pragmas, got %d: %+v", len(igs), igs)
	}
	if igs[0].Analyzer != "detmaporder" || igs[0].Reason != "keys deleted, order-insensitive" {
		t.Errorf("pragma 0 parsed as %+v", igs[0])
	}
	if igs[1].Analyzer != "wallclock" || igs[1].Reason != "trailing form" {
		t.Errorf("pragma 1 parsed as %+v", igs[1])
	}
	if igs[2].Analyzer != "nakedgo" || igs[2].Reason != "" {
		t.Errorf("bare pragma parsed as %+v", igs[2])
	}
}

func TestIgnoreCovers(t *testing.T) {
	ig := &Ignore{Pos: token.Position{Line: 10}}
	for line, want := range map[int]bool{9: false, 10: true, 11: true, 12: false} {
		if got := ig.covers(line); got != want {
			t.Errorf("covers(%d) = %v, want %v", line, got, want)
		}
	}
}

func TestParseIgnoresStripsWantClause(t *testing.T) {
	src := "package p\n\n//apulint:ignore detmaporder // want `bare`\nvar a int\n"
	igs := parseOne(t, src)
	if len(igs) != 1 || igs[0].Analyzer != "detmaporder" || igs[0].Reason != "" {
		t.Fatalf("want one bare detmaporder pragma, got %+v", igs)
	}
}
