package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package, applies the pragma
// suppression rules, and returns the surviving findings sorted by
// position. The returned findings include pragma-hygiene errors (bare
// pragmas, unknown analyzer names, pragmas that suppress nothing)
// attributed to the synthetic "pragma" analyzer — a suppression that
// cannot justify itself is itself a diagnostic.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := analyzePackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// analyzePackage runs the analyzers over one package and applies the
// suppression and pragma-hygiene rules. Exposed to the fixture test
// driver so pragma behaviour is testable exactly as shipped.
func analyzePackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	// Pragmas indexed per file; a diagnostic can only be suppressed by a
	// pragma in the file that contains it.
	ignores := make(map[string][]*Ignore)
	for _, f := range pkg.Files {
		for _, ig := range parseIgnores(pkg.Fset, f) {
			ignores[ig.Pos.Filename] = append(ignores[ig.Pos.Filename], ig)
		}
	}

	var findings []Finding
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Path:      pkg.Path,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if ig := matchIgnore(ignores[pos.Filename], a.Name, pos.Line); ig != nil {
				ig.used = true
				if ig.Reason != "" {
					continue // justified suppression
				}
				// A bare pragma suppresses nothing; fall through so the
				// underlying diagnostic still surfaces alongside the
				// hygiene error reported below.
			}
			findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
		}
	}

	// Pragma hygiene: every pragma must name a real analyzer, carry a
	// reason, and still suppress at least one diagnostic.
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, ig := range ignores[name] {
			switch {
			case ig.Reason == "":
				findings = append(findings, Finding{Pos: ig.Pos, Analyzer: "pragma",
					Message: fmt.Sprintf("bare apulint:ignore %s pragma: a suppression needs a (reason)", ig.Analyzer)})
			case !known(analyzers, ig.Analyzer):
				findings = append(findings, Finding{Pos: ig.Pos, Analyzer: "pragma",
					Message: fmt.Sprintf("apulint:ignore names unknown analyzer %q", ig.Analyzer)})
			case !ig.used:
				findings = append(findings, Finding{Pos: ig.Pos, Analyzer: "pragma",
					Message: fmt.Sprintf("stale apulint:ignore %s pragma: it suppresses nothing — remove it", ig.Analyzer)})
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// matchIgnore finds the first pragma for analyzer whose scope covers line.
func matchIgnore(igs []*Ignore, analyzer string, line int) *Ignore {
	for _, ig := range igs {
		if ig.Analyzer == analyzer && ig.covers(line) {
			return ig
		}
	}
	return nil
}

func known(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ListIgnores enumerates every suppression pragma in the loaded packages,
// sorted by position — the audit surface behind `apulint -list-ignores`.
func ListIgnores(pkgs []*Package) []Ignore {
	var out []Ignore
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, ig := range parseIgnores(pkg.Fset, f) {
				out = append(out, *ig)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
