package analysis

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// This file is the suite's analysistest: fixtures under testdata/src/<dir>
// are loaded with a pretend import path (so path-scoped analyzers treat
// them as the package they stand in for), run through the full driver —
// including pragma suppression and hygiene — and their findings are
// compared against trailing expectations of the form
//
//	code() // want "regexp" "another regexp"
//
// exactly one expectation per expected finding on that line. The
// expectation syntax and semantics mirror golang.org/x/tools'
// analysistest so fixtures survive a migration onto the upstream
// framework unchanged.

var (
	moduleRootOnce sync.Once
	moduleRootDir  string
	moduleRootErr  error
)

// ModuleRoot locates the module directory (where go.mod lives), which is
// where fixture import resolution and whole-tree runs anchor.
func ModuleRoot() (string, error) {
	moduleRootOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			moduleRootErr = fmt.Errorf("go env GOMOD: %v", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			moduleRootErr = fmt.Errorf("not inside a module")
			return
		}
		moduleRootDir = filepath.Dir(gomod)
	})
	return moduleRootDir, moduleRootErr
}

// expectation is one parsed `// want "re"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseExpectations scans fixture source files for want clauses.
func parseExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			patterns, err := splitQuoted(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, p, err)
				}
				out = append(out, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return out, nil
}

// splitQuoted parses a sequence of double-quoted or backquoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern in %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	return out, nil
}

// CheckFixture loads testdata/src/<fixture> (relative to the analysis
// package directory) at the pretend import path asPath, runs the given
// analyzers through the full driver, and returns a list of mismatches
// between findings and want expectations (empty means the fixture
// behaves exactly as annotated).
func CheckFixture(fixture, asPath string, analyzers ...*Analyzer) ([]string, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", fixture)
	pkg, err := LoadFixture(root, dir, asPath)
	if err != nil {
		return nil, err
	}
	findings, err := analyzePackage(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	expects, err := parseExpectations(dir)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.met || e.file != f.Pos.Filename || e.line != f.Pos.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for _, e := range expects {
		if !e.met {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matched want %q", e.file, e.line, e.re))
		}
	}
	return problems, nil
}
