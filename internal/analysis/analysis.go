// Package analysis is apujoin's static-analysis suite: a family of
// project-specific analyzers that enforce, at compile time, the contracts
// the runtime invariance tests (TestWorkersInvariance, TestShardInvariance,
// TestClusterInvariance) can only check one seed at a time:
//
//   - detmaporder: no unordered map iteration in result-producing packages
//     (results must be bit-identical for any worker/shard count),
//   - floatsum: no floating-point accumulation inside unordered loops
//     (simulated times sum in fixed partition order),
//   - nakedgo: all parallelism routed through sched.Pool,
//   - wallclock: no wall-clock or global-randomness reads in the
//     simulated-time core,
//   - envelope: every apujoind HTTP response flows through the unified
//     JSON envelope writers.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so migrating onto the upstream framework is a
// mechanical rename, but the implementation is standard library only:
// packages are type-checked from source with imports resolved through the
// compiler's export data (go list -export), so the linter needs no module
// downloads and runs offline.
//
// Suppressions are explicit and audited: a diagnostic is silenced only by
// a same- or previous-line pragma
//
//	//apulint:ignore <analyzer>(<reason>)
//
// and the driver itself rejects pragmas with no reason, pragmas naming an
// unknown analyzer, and pragmas that no longer suppress anything, so the
// set of justified exceptions stays enumerable (apulint -list-ignores) and
// cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects a single package through its
// Pass and reports diagnostics; it must not retain the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, used in pragmas and output
	Doc  string // one-paragraph contract description
	Run  func(*Pass) error
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetMapOrder, FloatSum, NakedGo, WallClock, Envelope}
}

// ByName resolves an analyzer name; it reports false for unknown names
// (the driver turns unknown pragma targets into errors with this).
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Path      string // import path ("apujoin/internal/core")
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic that survived suppression filtering (or a
// pragma-hygiene error synthesized by the driver), resolved to a concrete
// file position.
type Finding struct {
	Pos      token.Position
	Analyzer string // reporting analyzer, or "pragma" for hygiene errors
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}
