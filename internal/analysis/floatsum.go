package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum enforces the fixed-order float-reduction contract: inside the
// body of a map-range loop (directly or nested), no floating-point
// accumulator declared outside that loop may be updated with
// `+=`/`-=`/`*=`/`/=` or the `x = x + ...` form. Floating-point addition
// does not commute in the last bit, so a map-ordered float reduction
// yields a different total on every run — exactly the failure
// shard.MergeResults prevents by summing simulated times in fixed
// partition order, and the contract behind the wire-level `total_ms`
// string equality the cluster smoke test asserts. detmaporder suppression
// does not extend here: a justified map iteration still must not fold
// floats.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc: "flag floating-point accumulation inside unordered (map-range) " +
		"loops in result-producing packages",
	Run: runFloatSum,
}

func runFloatSum(pass *Pass) error {
	if !inScope(resultProducing, pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass, rng) {
				return true
			}
			checkFloatAccum(pass, rng)
			// Keep walking so nested map ranges get their own visit
			// (checkFloatAccum does not descend into them).
			return true
		})
	}
	return nil
}

// checkFloatAccum walks one map-range body and reports float
// accumulations into variables declared outside the loop.
func checkFloatAccum(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		// A nested map range is its own unordered region and gets its own
		// top-level visit; don't double-report its accumulations here.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng && rangesOverMap(pass, inner) {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(asg.Lhs) == 1 && isFloatAccumulator(pass, asg.Lhs[0], rng) {
				pass.Reportf(asg.Pos(), "floating-point accumulation in map-iteration order: float addition does not commute — reduce in a fixed order (sorted keys or partition order)")
			}
		case token.ASSIGN:
			// x = x + y (or x - y): self-referencing float update.
			if len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			if !isFloatAccumulator(pass, asg.Lhs[0], rng) {
				return true
			}
			if selfReferencing(pass, asg.Lhs[0], asg.Rhs[0]) {
				pass.Reportf(asg.Pos(), "floating-point accumulation in map-iteration order: float addition does not commute — reduce in a fixed order (sorted keys or partition order)")
			}
		}
		return true
	})
}

// isFloatAccumulator reports whether e is a float-typed assignment target
// that outlives one loop iteration: any selector/index expression, or an
// identifier whose declaration sits outside the loop body (a variable
// declared inside the body resets every iteration and cannot carry a
// cross-iteration, order-dependent sum).
func isFloatAccumulator(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			return false // per-iteration local, order-insensitive
		}
	}
	return true
}

// selfReferencing reports whether rhs mentions the same object (or, for
// non-identifier targets, a syntactically identical expression) as lhs —
// the `x = x + y` accumulation shape.
func selfReferencing(pass *Pass, lhs, rhs ast.Expr) bool {
	lhsObj := objOf(pass, lhs)
	lhsStr := types.ExprString(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if lhsObj != nil {
			if id, ok := e.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == lhsObj {
				found = true
				return false
			}
		}
		if types.ExprString(e) == lhsStr {
			found = true
			return false
		}
		return true
	})
	return found
}

func objOf(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
