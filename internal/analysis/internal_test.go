package analysis

// White-box tests for the driver plumbing: finding formatting and
// ordering, want-clause parsing, and the loader's failure paths. The
// analyzer behaviour itself is covered by the fixture suites in
// analyzers_test.go; these tests pin down the harness they run on.

import (
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Analyzer: "nakedgo",
		Message:  "bare go statement",
	}
	want := "a/b.go:3:7: bare go statement [nakedgo]"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSplitQuoted(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr string
	}{
		{in: `"one"`, want: []string{"one"}},
		{in: `"one" "two"`, want: []string{"one", "two"}},
		{in: "`raw re`", want: []string{"raw re"}},
		{in: "\"a\" `b` \"c\"", want: []string{"a", "b", "c"}},
		{in: `"escaped \" quote"`, want: []string{`escaped " quote`}},
		{in: ``, want: nil},
		{in: `"unterminated`, wantErr: "unterminated quoted"},
		{in: "`unterminated", wantErr: "unterminated backquoted"},
		{in: `bare words`, wantErr: "must be quoted"},
		{in: `"ok" trailing`, wantErr: "must be quoted"},
	}
	for _, c := range cases {
		got, err := splitQuoted(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("splitQuoted(%q) error = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("splitQuoted(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitQuoted(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseExpectations(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n" +
		"func f() {} // want \"first\" `second`\n" +
		"func g() {} // no clause here\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-Go entries are skipped, not parsed.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte(`// want "ignored"`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseExpectations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].re.String() != "first" || got[1].re.String() != "second" {
		t.Fatalf("parseExpectations = %+v, want the two clauses from a.go", got)
	}
	if got[0].line != 2 || got[1].line != 2 {
		t.Errorf("want clauses anchored to line %d and %d, want line 2", got[0].line, got[1].line)
	}
}

func TestParseExpectationsErrors(t *testing.T) {
	if _, err := parseExpectations(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir: expected error")
	}

	badQuote := t.TempDir()
	if err := os.WriteFile(filepath.Join(badQuote, "a.go"), []byte("package p\n// want unquoted\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseExpectations(badQuote); err == nil || !strings.Contains(err.Error(), "must be quoted") {
		t.Errorf("bad quoting: error = %v", err)
	}

	badRE := t.TempDir()
	if err := os.WriteFile(filepath.Join(badRE, "a.go"), []byte("package p\n// want \"(\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseExpectations(badRE); err == nil || !strings.Contains(err.Error(), "bad want pattern") {
		t.Errorf("bad regexp: error = %v", err)
	}
}

func TestSortFindings(t *testing.T) {
	mk := func(file string, line, col int, analyzer string) Finding {
		return Finding{Pos: token.Position{Filename: file, Line: line, Column: col}, Analyzer: analyzer}
	}
	fs := []Finding{
		mk("b.go", 1, 1, "nakedgo"),
		mk("a.go", 2, 1, "wallclock"),
		mk("a.go", 1, 9, "wallclock"),
		mk("a.go", 1, 1, "wallclock"),
		mk("a.go", 1, 1, "detmaporder"),
	}
	sortFindings(fs)
	want := []Finding{
		mk("a.go", 1, 1, "detmaporder"),
		mk("a.go", 1, 1, "wallclock"),
		mk("a.go", 1, 9, "wallclock"),
		mk("a.go", 2, 1, "wallclock"),
		mk("b.go", 1, 1, "nakedgo"),
	}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("sortFindings order:\n got %v\nwant %v", fs, want)
	}
}

func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("ModuleRoot() = %q has no go.mod: %v", root, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(root, "./no/such/dir/..."); err == nil {
		t.Error("Load with a pattern matching nothing: expected error")
	}
	// Patterns that resolve only outside the module yield no packages to
	// analyze, which is an error, not an empty success.
	if _, err := Load(root, "fmt"); err == nil {
		t.Error("Load of a stdlib-only pattern: expected error")
	}
}

func TestLoadFixtureErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := LoadFixture(root, filepath.Join(t.TempDir(), "missing"), "example.com/x"); err == nil {
		t.Error("missing fixture dir: expected error")
	}

	if _, err := LoadFixture(root, t.TempDir(), "example.com/x"); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("empty fixture dir: error = %v", err)
	}

	syntaxErr := t.TempDir()
	if err := os.WriteFile(filepath.Join(syntaxErr, "a.go"), []byte("package p\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFixture(root, syntaxErr, "example.com/x"); err == nil {
		t.Error("syntax error in fixture: expected error")
	}

	badImport := t.TempDir()
	if err := os.WriteFile(filepath.Join(badImport, "a.go"),
		[]byte("package p\n\nimport \"no.such.module/pkg\"\n\nvar _ = pkg.X\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFixture(root, badImport, "example.com/x"); err == nil {
		t.Error("unresolvable import in fixture: expected error")
	}

	typeErr := t.TempDir()
	if err := os.WriteFile(filepath.Join(typeErr, "a.go"),
		[]byte("package p\n\nvar x int = \"not an int\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFixture(root, typeErr, "example.com/x"); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("type error in fixture: error = %v", err)
	}
}

// TestCheckFixtureReportsMismatches proves the harness is non-vacuous:
// the selfcheck fixture deliberately pairs a finding with no want clause
// and a want clause with no finding, and CheckFixture must flag both.
func TestCheckFixtureReportsMismatches(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	problems, err := CheckFixture("selfcheck/a", "example.com/selfcheck", NakedGo)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly 2 (one unexpected finding, one unmet want)", problems)
	}
	var unexpected, unmet bool
	for _, p := range problems {
		if strings.Contains(p, "unexpected finding") {
			unexpected = true
		}
		if strings.Contains(p, "no finding matched want") {
			unmet = true
		}
	}
	if !unexpected || !unmet {
		t.Errorf("problems = %v, want one of each mismatch kind", problems)
	}
}

func TestCheckFixtureMissingDir(t *testing.T) {
	if _, err := CheckFixture("no/such/fixture", "example.com/x", NakedGo); err == nil {
		t.Error("missing fixture: expected error")
	}
}
