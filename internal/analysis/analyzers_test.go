package analysis

import "testing"

// runFixture asserts that a fixture's findings match its want annotations
// exactly — every annotated line flagged, nothing else flagged.
func runFixture(t *testing.T, fixture, asPath string, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckFixture(fixture, asPath, analyzers...)
	if err != nil {
		t.Fatalf("%s as %s: %v", fixture, asPath, err)
	}
	for _, p := range problems {
		t.Errorf("%s as %s: %s", fixture, asPath, p)
	}
}

// fixtureFindings runs the driver over a fixture and returns the raw
// findings (for scope tests, where the same source must flag at one
// import path and pass at another).
func fixtureFindings(t *testing.T, fixture, asPath string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(root, root+"/internal/analysis/testdata/src/"+fixture, asPath)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analyzePackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestDetMapOrder(t *testing.T) {
	runFixture(t, "detmaporder/a", "apujoin/internal/core", DetMapOrder)
}

func TestDetMapOrderPragmaHygiene(t *testing.T) {
	runFixture(t, "detmaporder/pragma", "apujoin/internal/catalog", DetMapOrder)
}

func TestDetMapOrderOutOfScope(t *testing.T) {
	// The same violations are silent outside the result-producing
	// packages — but the now-stale pragmas surface as hygiene errors, so
	// assert on the analyzer's own findings only.
	for _, f := range fixtureFindings(t, "detmaporder/a", "apujoin/internal/device", DetMapOrder) {
		if f.Analyzer == DetMapOrder.Name {
			t.Errorf("out-of-scope package flagged: %s", f)
		}
	}
}

func TestFloatSum(t *testing.T) {
	runFixture(t, "floatsum/a", "apujoin/internal/shard", FloatSum)
}

func TestNakedGo(t *testing.T) {
	runFixture(t, "nakedgo/a", "apujoin/internal/core", NakedGo)
}

func TestNakedGoScope(t *testing.T) {
	for _, asPath := range []string{
		"apujoin/internal/sched",
		"apujoin/internal/cluster",
		"apujoin/cmd/apujoind",
	} {
		if fs := fixtureFindings(t, "nakedgo/scope", asPath, NakedGo); len(fs) != 0 {
			t.Errorf("%s: allowed package flagged: %v", asPath, fs)
		}
	}
	fs := fixtureFindings(t, "nakedgo/scope", "apujoin/internal/service", NakedGo)
	if len(fs) != 1 {
		t.Errorf("disallowed package: want exactly 1 finding, got %v", fs)
	}
}

func TestWallClock(t *testing.T) {
	runFixture(t, "wallclock/a", "apujoin/internal/core", WallClock)
}

func TestWallClockOutOfScope(t *testing.T) {
	// The service layer legitimately reads wall time (admission stamps,
	// health checks): the analyzer must not bind there.
	for _, f := range fixtureFindings(t, "wallclock/a", "apujoin/internal/service", WallClock) {
		if f.Analyzer == WallClock.Name {
			t.Errorf("out-of-scope package flagged: %s", f)
		}
	}
}

func TestEnvelope(t *testing.T) {
	runFixture(t, "envelope/a", "apujoin/internal/httpapi", Envelope)
}

func TestEnvelopeOutOfScope(t *testing.T) {
	for _, f := range fixtureFindings(t, "envelope/a", "apujoin/internal/service", Envelope) {
		if f.Analyzer == Envelope.Name {
			t.Errorf("out-of-scope package flagged: %s", f)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nosuchcheck"); ok {
		t.Error("ByName accepted an unknown analyzer")
	}
}
