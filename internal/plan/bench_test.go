package plan

import (
	"context"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// BenchmarkPlannerAmortization measures what the plan cache buys in steady
// state. cold plans every query from scratch (a fresh planner per
// iteration: fingerprint miss → pilot run + candidate searches, the cost
// an unplanned core.Run pays too); warm shares one planner primed outside
// the timer, so every iteration hits the cache and the query runs with the
// pilot and the grid searches amortized away. Both execute the identical
// injected plan, so matches and every simulated time are bit-identical —
// the ns/op gap is pure plan-time host cost, and sim_ns/op (recorded in
// BENCH_plan.json) is constant across the two by construction.
func BenchmarkPlannerAmortization(b *testing.B) {
	r := rel.Gen{N: 1 << 17, Seed: 1}.Build()
	s := rel.Gen{N: 1 << 17, Seed: 2}.Probe(r, 1.0)
	opt := core.Options{Delta: 0.1, PilotItems: 1 << 13}

	var refMatches int64
	var refSimNS float64
	runPlanned := func(b *testing.B, p *Planner) {
		b.Helper()
		pl, _, _, err := p.Plan(context.Background(), r, s, opt)
		if err != nil {
			b.Fatal(err)
		}
		o := opt
		o.Plan = pl
		res, err := core.Run(r, s, o)
		if err != nil {
			b.Fatal(err)
		}
		if refMatches == 0 {
			refMatches, refSimNS = res.Matches, res.TotalNS
		} else if res.Matches != refMatches || res.TotalNS != refSimNS {
			b.Fatalf("cache state changed results: matches %d (want %d), simNS %.0f (want %.0f)",
				res.Matches, refMatches, res.TotalNS, refSimNS)
		}
	}

	b.Run("cold", func(b *testing.B) {
		b.SetBytes(r.Bytes() + s.Bytes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPlanned(b, New(4)) // fresh planner: every query pays the pilot
		}
		b.ReportMetric(refSimNS, "sim_ns/op")
	})

	b.Run("warm", func(b *testing.B) {
		p := New(4)
		runPlanned(b, p) // prime the cache outside the timer
		b.SetBytes(r.Bytes() + s.Bytes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPlanned(b, p) // cache hit: no pilot, no searches
		}
		b.ReportMetric(refSimNS, "sim_ns/op")
		if st := p.Stats(); st.Misses != 1 {
			b.Fatalf("warm path missed the cache %d times", st.Misses)
		}
	})
}

// BenchmarkPipelineOrdering measures what the greedy cost-based join
// orderer buys on a 3-relation pipeline whose declaration order is
// deliberately bad: the selectivity-1 wide join first. ordered runs the
// chain in OrderPipeline's order, declared as written; both execute the
// identical pairwise joins otherwise and both report their deterministic
// summed simulated time as sim_ns/op (gated by bench-check — the ordered
// chain regressing toward the declared one breaks the build). The final
// match counts are asserted equal: ordering must never change results.
func BenchmarkPipelineOrdering(b *testing.B) {
	r0 := rel.Gen{N: 1 << 16, Seed: 1}.Build()
	r1 := rel.Gen{N: 1 << 16, Seed: 2}.Probe(r0, 1.0) // wide: every tuple matches
	r2 := rel.Gen{N: 1 << 14, Seed: 3}.Probe(r0, 0.1) // selective and small
	rels := []rel.Relation{r0, r1, r2}
	opt := core.Options{Delta: 0.25, PilotItems: 1 << 12}

	// Pair workloads measured once, the way the catalog measures at ingest.
	type pair struct{ i, j int }
	workloads := make(map[pair]Workload)
	for i := range rels {
		for j := range rels {
			if i != j {
				workloads[pair{i, j}] = MeasureWorkload(rels[i], rels[j])
			}
		}
	}
	pr := make([]PipeRel, len(rels))
	for i, rl := range rels {
		pr[i] = PipeRel{Tuples: rl.Len()}
	}
	order, ordered := OrderPipeline(pr, func(i, j int) (Workload, bool) {
		w, ok := workloads[pair{i, j}]
		return w, ok
	})
	if !ordered {
		b.Fatal("orderer fell back to declaration order despite full statistics")
	}

	runChain := func(b *testing.B, order []int) (matches int64, simNS float64) {
		b.Helper()
		cur := rels[order[0]]
		for t := 1; t < len(order); t++ {
			res, err := core.Run(cur, rels[order[t]], opt)
			if err != nil {
				b.Fatal(err)
			}
			simNS += res.TotalNS
			matches = res.Matches
			if t < len(order)-1 {
				cur = rel.JoinMaterialize(cur, rels[order[t]])
			}
		}
		return matches, simNS
	}

	var orderedMatches, declaredMatches int64
	b.Run("ordered", func(b *testing.B) {
		var simNS float64
		for i := 0; i < b.N; i++ {
			orderedMatches, simNS = runChain(b, order)
		}
		b.ReportMetric(simNS, "sim_ns/op")
	})
	b.Run("declared", func(b *testing.B) {
		var simNS float64
		for i := 0; i < b.N; i++ {
			declaredMatches, simNS = runChain(b, []int{0, 1, 2})
		}
		b.ReportMetric(simNS, "sim_ns/op")
	})
	if orderedMatches != declaredMatches {
		b.Fatalf("ordering changed the multi-way count: %d vs %d", orderedMatches, declaredMatches)
	}
}
