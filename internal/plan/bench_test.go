package plan

import (
	"context"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// BenchmarkPlannerAmortization measures what the plan cache buys in steady
// state. cold plans every query from scratch (a fresh planner per
// iteration: fingerprint miss → pilot run + candidate searches, the cost
// an unplanned core.Run pays too); warm shares one planner primed outside
// the timer, so every iteration hits the cache and the query runs with the
// pilot and the grid searches amortized away. Both execute the identical
// injected plan, so matches and every simulated time are bit-identical —
// the ns/op gap is pure plan-time host cost, and sim_ns/op (recorded in
// BENCH_plan.json) is constant across the two by construction.
func BenchmarkPlannerAmortization(b *testing.B) {
	r := rel.Gen{N: 1 << 17, Seed: 1}.Build()
	s := rel.Gen{N: 1 << 17, Seed: 2}.Probe(r, 1.0)
	opt := core.Options{Delta: 0.1, PilotItems: 1 << 13}

	var refMatches int64
	var refSimNS float64
	runPlanned := func(b *testing.B, p *Planner) {
		b.Helper()
		pl, _, _, err := p.Plan(context.Background(), r, s, opt)
		if err != nil {
			b.Fatal(err)
		}
		o := opt
		o.Plan = pl
		res, err := core.Run(r, s, o)
		if err != nil {
			b.Fatal(err)
		}
		if refMatches == 0 {
			refMatches, refSimNS = res.Matches, res.TotalNS
		} else if res.Matches != refMatches || res.TotalNS != refSimNS {
			b.Fatalf("cache state changed results: matches %d (want %d), simNS %.0f (want %.0f)",
				res.Matches, refMatches, res.TotalNS, refSimNS)
		}
	}

	b.Run("cold", func(b *testing.B) {
		b.SetBytes(r.Bytes() + s.Bytes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPlanned(b, New(4)) // fresh planner: every query pays the pilot
		}
		b.ReportMetric(refSimNS, "sim_ns/op")
	})

	b.Run("warm", func(b *testing.B) {
		p := New(4)
		runPlanned(b, p) // prime the cache outside the timer
		b.SetBytes(r.Bytes() + s.Bytes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runPlanned(b, p) // cache hit: no pilot, no searches
		}
		b.ReportMetric(refSimNS, "sim_ns/op")
		if st := p.Stats(); st.Misses != 1 {
			b.Fatalf("warm path missed the cache %d times", st.Misses)
		}
	})
}
