package plan

import "math"

// PipeRel describes one pipeline input to the join orderer: its
// cardinality and the heaviest key's sampled share (the catalog's
// ingest-time HeavyShare) — pairwise statistics come through PairStats.
type PipeRel struct {
	Tuples int
	// HeavyShare estimates heavy-key multiplicity: two relations that both
	// duplicate a heavy key join quadratically in it (≈ share_i·|i| ×
	// share_j·|j| output tuples), a blowup the selectivity bucket alone
	// cannot see. Shares below the uniform/low-skew boundary are sampling
	// noise and ignored.
	HeavyShare float64
}

// PairStats reports the workload buckets of the pair (build i, probe j) —
// the quantized selectivity and probe-side skew the relation catalog
// measured at ingest (Catalog.Workload) — or ok=false when the pair's
// statistics are unknown (an inline source the catalog never saw). The
// orderer treats any unknown pair as "no statistics" and falls back to
// declaration order: guessing selectivities would make the chosen order,
// and with it every simulated time, depend on estimation luck.
type PairStats func(build, probe int) (w Workload, ok bool)

// skewCostPenalty inflates a probe side's cost term per skew bucket: a
// skewed probe hammers few buckets, and the measured-minus-estimated gap
// the paper attributes to latching (Sec. 5.4) grows with that contention.
// The penalty only orders candidates — it never enters a simulated time.
const skewCostPenalty = 0.15

// OrderPipeline picks a left-deep execution order for a multi-way join
// pipeline: order[0] ⋈ order[1] runs first, every later order[t] probes the
// materialized intermediate. The heuristic is the classic greedy
// minimum-intermediate rule over the catalog's ingest-time statistics:
//
//   - the estimated output of build i ⋈ probe j is sel(i,j)·|j| plus the
//     heavy-key collision term hc(i)·hc(j), where hc is the relation's
//     estimated heavy-key multiplicity (1 when effectively uniform) — two
//     skewed relations joined against each other multiply their heavy
//     copies, a quadratic blowup the orderer must price;
//   - the estimated output of intermediate ⋈ k uses min_{a∈done} sel(a,k) —
//     joining with more relations can only shrink the surviving key set —
//     plus the chain's accumulated heavy multiplicity times hc(k);
//   - ties break on the step's work term (build+probe tuples, the probe
//     side inflated by its skew bucket), then on declaration order, so the
//     result is deterministic.
//
// ordered reports whether statistics drove the choice; when any pair the
// greedy search would consult is unknown, the declaration order comes back
// unchanged with ordered=false. Ordering never changes a pipeline's final
// match count — only the sizes of the intermediates and with them the
// simulated (and host) cost of the steps.
func OrderPipeline(rels []PipeRel, stats PairStats) (order []int, ordered bool) {
	order, _, ordered = OrderPipelineEst(rels, stats)
	return order, ordered
}

// OrderPipelineEst is OrderPipeline, additionally returning the greedy
// search's own per-step output estimates: ests[t-1] is the estimated match
// count of step t (the quantity the search minimized when it picked that
// step). The runtime compares each estimate against the step's observed
// matches to decide mid-pipeline re-planning; ests is nil when ordered is
// false (no statistics, no estimates).
func OrderPipelineEst(rels []PipeRel, stats PairStats) (order []int, ests []float64, ordered bool) {
	n := len(rels)
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	if n < 2 || stats == nil {
		return order, nil, false
	}

	// Collect the full pairwise statistics up front; one unknown pair
	// means declaration order (the greedy frontier can consult any pair).
	sel := make([][]float64, n)
	skew := make([][]int, n)
	for i := range sel {
		sel[i] = make([]float64, n)
		skew[i] = make([]int, n)
		for j := range sel[i] {
			if i == j {
				continue
			}
			w, ok := stats(i, j)
			if !ok {
				return order, nil, false
			}
			sel[i][j] = float64(w.SelBucket) / selBuckets
			skew[i][j] = w.SkewBucket
		}
	}
	probeCost := func(i, j int) float64 {
		return float64(rels[j].Tuples) * (1 + skewCostPenalty*float64(skew[i][j]))
	}
	// hc is a relation's estimated heavy-key multiplicity: share × tuples
	// for genuinely skewed data, 1 (a unique key) when the sampled share
	// sits below the uniform/low-skew boundary.
	hc := func(i int) float64 {
		if rels[i].HeavyShare < skewLowThreshold {
			return 1
		}
		return rels[i].HeavyShare * float64(rels[i].Tuples)
	}

	// First step: the ordered pair minimizing the estimated intermediate.
	bi, bj := 0, 1
	bestOut, bestCost, bestHC := -1.0, 0.0, 1.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			collide := hc(i) * hc(j)
			out := sel[i][j]*float64(rels[j].Tuples) + collide
			cost := float64(rels[i].Tuples) + probeCost(i, j)
			if bestOut < 0 || out < bestOut || (out == bestOut && cost < bestCost) {
				bi, bj, bestOut, bestCost = i, j, out, cost
				bestHC = math.Min(collide, out)
			}
		}
	}
	order[0], order[1] = bi, bj
	done := []int{bi, bj}
	used := make([]bool, n)
	used[bi], used[bj] = true, true
	interEst, interHC := bestOut, bestHC

	tail, tailEsts := orderTail(rels, sel, skew, done, used, interEst, interHC)
	copy(order[2:], tail)
	ests = append([]float64{bestOut}, tailEsts...)
	return order, ests, true
}

// estHC is a relation's estimated heavy-key multiplicity (OrderPipeline's
// hc): share × tuples for genuinely skewed data, 1 below the low-skew
// boundary.
func estHC(r PipeRel) float64 {
	if r.HeavyShare < skewLowThreshold {
		return 1
	}
	return r.HeavyShare * float64(r.Tuples)
}

// OrderRemaining re-runs the orderer's greedy tail mid-pipeline: inter
// describes the CURRENT intermediate with its observed (not estimated)
// cardinality, done lists the source indices already consumed, and
// remaining the indices still to probe. The returned slice is a
// permutation of remaining, with ests[i] the estimated match count of its
// i-th step (as OrderPipelineEst reports them); ordered=false (remaining
// unchanged, ests nil) when any consulted pair lacks statistics, exactly
// as OrderPipeline degrades. The final match count is unaffected by the
// order — re-planning only resizes the remaining intermediates, now
// anchored on a true cardinality instead of a compounded estimate.
func OrderRemaining(inter PipeRel, rels []PipeRel, done, remaining []int, stats PairStats) (order []int, ests []float64, ordered bool) {
	order = append([]int(nil), remaining...)
	if len(remaining) < 2 || stats == nil {
		return order, nil, false
	}
	n := len(rels)
	sel := make([][]float64, n)
	skew := make([][]int, n)
	for i := range sel {
		sel[i] = make([]float64, n)
		skew[i] = make([]int, n)
	}
	// Only the (done ∪ picked, remaining) pairs are consulted; one unknown
	// pair keeps the current order, as OrderPipeline would.
	for _, a := range append(append([]int(nil), done...), remaining...) {
		for _, k := range remaining {
			if a == k {
				continue
			}
			w, ok := stats(a, k)
			if !ok {
				return order, nil, false
			}
			sel[a][k] = float64(w.SelBucket) / selBuckets
			skew[a][k] = w.SkewBucket
		}
	}
	used := make([]bool, n)
	for i := range used {
		used[i] = true
	}
	for _, k := range remaining {
		used[k] = false
	}
	// The observed intermediate anchors the tail: its cardinality is exact,
	// and its heavy multiplicity is unknown (its keys already survived every
	// prior join), so the collision term restarts from the estimator's
	// uniform baseline.
	tail, tailEsts := orderTail(rels, sel, skew, append([]int(nil), done...), used, float64(inter.Tuples), estHC(inter))
	return tail, tailEsts, true
}

// orderTail is the shared greedy tail of OrderPipeline and OrderRemaining:
// repeatedly pick the unused relation minimizing the estimated next
// intermediate, given the accumulated chain estimate, and return the picks
// in order alongside each pick's estimated output.
func orderTail(rels []PipeRel, sel [][]float64, skew [][]int, done []int, used []bool, interEst, interHC float64) ([]int, []float64) {
	n := len(rels)
	remaining := 0
	for k := 0; k < n; k++ {
		if !used[k] {
			remaining++
		}
	}
	tail := make([]int, 0, remaining)
	ests := make([]float64, 0, remaining)
	probeCost := func(i, j int) float64 {
		return float64(rels[j].Tuples) * (1 + skewCostPenalty*float64(skew[i][j]))
	}
	hc := func(i int) float64 { return estHC(rels[i]) }

	// Later steps: the remaining relation minimizing the next intermediate.
	for t := 0; t < remaining; t++ {
		bk := -1
		bestOut, bestCost, bestHC := -1.0, 0.0, 1.0
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			f, pc := 1.0, 0.0
			for _, a := range done {
				if s := sel[a][k]; s < f {
					f = s
				}
				if c := probeCost(a, k); c > pc {
					pc = c
				}
			}
			collide := interHC * hc(k)
			out := f*float64(rels[k].Tuples) + collide
			cost := interEst + pc
			if bk < 0 || out < bestOut || (out == bestOut && cost < bestCost) {
				bk, bestOut, bestCost = k, out, cost
				bestHC = math.Min(collide, out)
			}
		}
		tail = append(tail, bk)
		ests = append(ests, bestOut)
		done = append(done, bk)
		used[bk] = true
		interEst, interHC = bestOut, bestHC
	}
	return tail, ests
}
