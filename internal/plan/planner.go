package plan

import (
	"context"

	"apujoin/internal/core"
	"apujoin/internal/rel"
)

// Planner pairs the fingerprint function with a plan cache: the unit the
// service layer owns and every auto-planned query consults.
type Planner struct {
	cache *Cache
}

// New returns a planner over a fresh cache of the given capacity
// (<= 0 selects DefaultCacheCapacity).
func New(capacity int) *Planner {
	return &Planner{cache: NewCache(capacity)}
}

// Plan returns the execution plan for the workload: the cached plan when
// the fingerprint is resident (no pilot, no searches), otherwise the plan
// core.BuildPlan constructs, which is cached before returning. hit reports
// whether this call avoided the build (resident entry or coalesced onto a
// concurrent identical miss). ctx bounds the caller's wait — see
// Cache.GetOrBuild for the exact cancellation semantics.
func (p *Planner) Plan(ctx context.Context, r, s rel.Relation, opt core.Options) (pl *core.Plan, fp Fingerprint, hit bool, err error) {
	return p.PlanWorkload(ctx, r, s, opt, MeasureWorkload(r, s))
}

// PlanWorkload is Plan with the workload's skew/selectivity buckets
// supplied by the caller instead of measured here — the relation catalog's
// path, where the buckets were computed once at ingest. A catalog-mediated
// query therefore fingerprints without reading either relation.
func (p *Planner) PlanWorkload(ctx context.Context, r, s rel.Relation, opt core.Options, w Workload) (pl *core.Plan, fp Fingerprint, hit bool, err error) {
	fp = OfWorkload(r, s, opt, w)
	pl, hit, err = p.cache.GetOrBuild(ctx, fp, func() (*core.Plan, error) {
		return core.BuildPlan(r, s, opt)
	})
	return pl, fp, hit, err
}

// Observe records one execution's predicted-vs-simulated error against
// the cached plan that predicted it; see Cache.Observe.
func (p *Planner) Observe(fp Fingerprint, predictedNS, simulatedNS float64) bool {
	return p.cache.Observe(fp, predictedNS, simulatedNS)
}

// Stats snapshots the underlying cache counters.
func (p *Planner) Stats() CacheStats { return p.cache.Stats() }
