// Package plan is the adaptive planner in front of the join engine: it
// fingerprints a workload (device pair, relation sizes, tuple widths and
// measured skew/selectivity buckets), builds the cheapest full execution
// plan on a cache miss — one pilot run plus the cost-model optimizers over
// both algorithms and every applicable co-processing scheme, via
// core.BuildPlan — and memoizes the plan in a bounded LRU so subsequent
// queries with the same fingerprint skip the pilot and the grid searches
// entirely.
//
// The determinism contract extends through the planner: the same
// fingerprint always maps to the same plan (core.BuildPlan is
// deterministic and ties break in a fixed candidate order), and the same
// plan injected into the same query yields bit-identical results, so
// cache mediation is invisible in every simulated number.
package plan

import (
	"math"

	"apujoin/internal/alloc"
	"apujoin/internal/core"
	"apujoin/internal/mem"
	"apujoin/internal/rel"
)

// WorkloadSample bounds how many probe tuples the workload measurement
// touches; sampling is strided (rel.Relation.KeySample) so clustered or
// sorted inputs are covered evenly. The build relation is scanned once
// (cheap next to a pilot) so the selectivity measurement is exact
// membership, not an estimate over a second sample. Exported so the
// relation catalog samples at the identical positions at ingest and its
// precomputed buckets equal the per-query measurement bit for bit.
const WorkloadSample = 4096

// Skew-bucket thresholds on the sampled heavy-hitter share, placed between
// the paper's workload classes (uniform, s=10 low skew, s=25 high skew).
const (
	skewLowThreshold  = 0.05
	skewHighThreshold = 0.175
)

// selBuckets is the selectivity quantization: round(sel × selBuckets)
// yields buckets wide enough (1/8) that sampling noise on 4Ki probes
// cannot flap a bucket unless the true selectivity sits on a boundary.
const selBuckets = 8

// Fingerprint identifies a workload shape for plan reuse. Two queries with
// equal fingerprints get the same plan: the fields cover everything
// core.BuildPlan consumes — the device pair and architecture, the planning
// knobs that shape profiles and searches, the relation sizes and tuple
// widths, and the measured distribution buckets. Data seeds and worker
// counts are deliberately absent: they change neither profiles nor chosen
// ratios. The struct is comparable and used directly as the cache key.
type Fingerprint struct {
	CPU  string
	GPU  string
	Arch core.Arch
	// Cache is the shared-L2 model the candidates are priced against; its
	// three parameters shift every hit ratio the estimates use.
	Cache mem.CacheModel

	Separate  bool
	Grouping  bool
	Groups    int
	CountOnly bool
	FullGrid  bool
	// DeltaMilli is the ratio-grid granularity δ in thousandths, so the
	// key stays integral.
	DeltaMilli  int
	AllocKind   alloc.Strategy
	AllocBlock  int
	PilotItems  int
	RadixTarget int64
	HashShift   uint

	R          int
	S          int
	TupleBytes int

	// SkewBucket classifies the sampled heavy-hitter share of the probe
	// keys: 0 ≈ uniform, 1 ≈ the paper's low skew (s=10), 2 ≈ high skew
	// (s=25). SelBucket is round(measured selectivity × selBuckets).
	SkewBucket int
	SelBucket  int
}

// Workload is the measured (data-dependent) part of a fingerprint: the
// quantized probe-side skew and join selectivity. It is what the relation
// catalog precomputes at ingest so catalog-referenced queries fingerprint
// without touching the relations at all.
type Workload struct {
	// SkewBucket classifies the sampled heavy-hitter share of the probe
	// keys: 0 ≈ uniform, 1 ≈ the paper's low skew (s=10), 2 ≈ high skew
	// (s=25). SelBucket is round(measured selectivity × selBuckets).
	SkewBucket int `json:"skew_bucket"`
	SelBucket  int `json:"sel_bucket"`
}

// MeasureWorkload measures the workload buckets of one R ⋈ S pair: the
// probe-side skew (heavy-hitter share of a strided key sample) and the
// join selectivity (exact membership of the sampled probe keys in the full
// build key set, tested by scanning R once against the small sample map —
// O(|R|) time, O(sample) memory). Quantization makes equivalent relations
// from different seeds land in the same bucket.
func MeasureWorkload(r, s rel.Relation) Workload {
	if s.Len() == 0 || r.Len() == 0 {
		return Workload{}
	}
	sample := s.KeySample(WorkloadSample)
	present := make(map[int32]bool, len(sample))
	for _, k := range sample {
		present[k] = false
	}
	for _, k := range r.Keys {
		if v, ok := present[k]; ok && !v {
			present[k] = true
		}
	}
	return Workload{
		SkewBucket: SkewBucketOf(sample),
		SelBucket:  SelBucketOf(sample, func(k int32) bool { return present[k] }),
	}
}

// SkewBucketOf classifies a probe key sample by its heavy-hitter share,
// with thresholds placed between the paper's workload classes.
func SkewBucketOf(sample []int32) int {
	if len(sample) == 0 {
		return 0
	}
	counts := make(map[int32]int, len(sample))
	maxCount := 0
	for _, k := range sample {
		counts[k]++
		if counts[k] > maxCount {
			maxCount = counts[k]
		}
	}
	switch share := float64(maxCount) / float64(len(sample)); {
	case share < skewLowThreshold:
		return 0
	case share < skewHighThreshold:
		return 1
	default:
		return 2
	}
}

// SelBucketOf quantizes the fraction of sampled probe keys for which
// contains reports membership in the build key set. The catalog passes a
// binary search over its ingest-time key index; the inline path passes a
// lookup into the map MeasureWorkload filled by scanning R — both report
// the same memberships, so the buckets agree.
func SelBucketOf(sample []int32, contains func(int32) bool) int {
	if len(sample) == 0 {
		return 0
	}
	matched := 0
	for _, k := range sample {
		if contains(k) {
			matched++
		}
	}
	return int(math.Round(float64(matched) / float64(len(sample)) * selBuckets))
}

// Of computes the fingerprint of one workload, measuring the skew and
// selectivity buckets from the relations. The cost is one strided pass
// over a probe sample plus one scan of the build keys — far below the
// pilot run the fingerprint exists to amortize; OfWorkload skips even that
// when the buckets were measured at catalog ingest.
func Of(r, s rel.Relation, opt core.Options) Fingerprint {
	return OfWorkload(r, s, opt, MeasureWorkload(r, s))
}

// OfWorkload is Of with the measured buckets supplied by the caller — the
// relation catalog's path, where skew and selectivity were measured once
// at ingest and every query of the pair reuses them. Options are defaulted
// first, so an explicit default and an unset field fingerprint alike.
func OfWorkload(r, s rel.Relation, opt core.Options, w Workload) Fingerprint {
	opt.Plan = nil
	opt.SetDefaults()
	fp := Fingerprint{
		CPU:   opt.CPU.Name,
		GPU:   opt.GPU.Name,
		Arch:  opt.Arch,
		Cache: opt.Cache,

		Separate:    opt.SeparateTables,
		Grouping:    opt.Grouping,
		Groups:      opt.Groups,
		CountOnly:   opt.CountOnly,
		FullGrid:    opt.FullGrid,
		DeltaMilli:  int(math.Round(opt.Delta * 1000)),
		AllocKind:   opt.Alloc.Strategy,
		AllocBlock:  opt.Alloc.BlockBytes,
		PilotItems:  opt.PilotItems,
		RadixTarget: opt.RadixTargetBytes,
		HashShift:   opt.HashShift,

		R:          r.Len(),
		S:          s.Len(),
		TupleBytes: 8, // two int32 columns per tuple
	}
	fp.SkewBucket, fp.SelBucket = w.SkewBucket, w.SelBucket
	return fp
}

// PairWorkload folds stored ingest-time statistics of a (build, probe)
// pair into the planner's workload buckets without touching either
// relation: the probe's stored skew bucket, plus the selectivity bucket of
// its stored key sample against the build side's membership test. The
// relation catalog and the sharded router both fingerprint through it, so
// their buckets agree with MeasureWorkload on the same data by
// construction — and with each other, which keeps plan-cache slots shared
// between inline, catalog-resident and sharded queries of the same shape.
func PairWorkload(probeSample []int32, probeSkewBucket int, buildContains func(int32) bool) Workload {
	return Workload{
		SkewBucket: probeSkewBucket,
		SelBucket:  SelBucketOf(probeSample, buildContains),
	}
}
